# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race stress chaos bench bench-report bench-planner bench-dynamic bench-parallel bench-serve bench-sharded vet fmt fmt-check lint vuln experiments-unit experiments-small clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# MVCC stress tests (concurrent census vs mutating writer, maintainer
# convergence, live-engine ingest) plus the work-stealing determinism
# tests with randomized steal timing, repeated under the race detector.
stress:
	$(GO) test -race -shuffle=on -count=3 -run 'Stress|Stealing|Shard' ./internal/core/ ./internal/storage/

# Crash-recovery soak: scripted filesystem faults (torn writes, failed
# fsyncs, crash-after-op) against the dynamic store, checking
# replay-or-truncate recovery and degraded-mode serving. Set CHAOS_ITERS
# / CHAOS_SEED to widen or reproduce a run.
chaos:
	./scripts/chaos_soak.sh

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Headline workloads as machine-readable JSON (checked in as BENCH_<n>.json),
# including the speedup against the recorded pre-CSR seed baseline.
bench-report:
	$(GO) run ./cmd/benchreport -o BENCH_1.json

# Query-planner metrics: optimization overhead per query and the
# cost-based vs boolean-heuristic head-to-head.
bench-planner:
	$(GO) run ./cmd/benchreport -suite 2 -o BENCH_2.json

# Dynamic-graph metrics: snapshot-acquisition overhead vs direct graph
# access, and incremental census maintenance vs full recompute over a
# mutation stream.
bench-dynamic:
	$(GO) run ./cmd/benchreport -suite 4 -o BENCH_4.json

# Worker-scaling table: the BENCH_4 census workload at 1/2/4/8 workers
# against the pre-kernel baseline (speedup and allocation-reduction
# acceptance ratios at the 4-worker point).
bench-parallel:
	$(GO) run ./cmd/benchreport -suite 6 -o BENCH_6.json

# Serving metrics: prepared-vs-unprepared latency, result-cache hit
# latency, and HTTP handler QPS at 1/4/8 concurrent clients.
bench-serve:
	$(GO) run ./cmd/benchreport -suite 7 -o BENCH_7.json

# Sharded-store metrics: durable ingest throughput at 1/2/4/8 shards,
# parallel replay-on-open, and census latency parity on a pinned sharded
# snapshot (the >=2x-at-4-shards criterion assumes >=4 CPUs; the report
# records gomaxprocs).
bench-sharded:
	$(GO) run ./cmd/benchreport -suite 8 -o BENCH_8.json

vet:
	$(GO) vet ./...

# Full static-analysis gate: vet, staticcheck (skipped with a notice if
# not installed locally; CI always runs it), and the repo's own egolint
# suite (cmd/egolint) enforcing the invariants in doc/INVARIANTS.md.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	$(GO) run ./cmd/egolint ./...

# Known-vulnerability scan; skipped with a notice if govulncheck is not
# installed locally (CI installs and runs it).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

fmt:
	gofmt -w .

# Fails listing any file gofmt would change (CI's formatting gate).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
	echo "gofmt drift in:"; echo "$$out"; exit 1; fi

# Regenerate the paper's figures (seconds / minutes respectively).
experiments-unit:
	$(GO) run ./cmd/experiments -fig all -scale unit

experiments-small:
	$(GO) run ./cmd/experiments -fig all -scale small -v

clean:
	$(GO) clean ./...
