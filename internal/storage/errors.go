package storage

import "fmt"

// CorruptFileError reports a graph file that failed structural validation:
// checksum mismatch, bad magic, inconsistent header geometry, or section
// contents referencing out-of-range nodes, edges, or labels. Open returns
// it (wrapped) for any file that is syntactically readable but unsafe to
// serve; a corrupt file never panics the reader or drives allocations past
// the file's own size.
type CorruptFileError struct {
	// Path is the file that failed validation.
	Path string
	// Detail describes the first violated invariant.
	Detail string
}

func (e *CorruptFileError) Error() string {
	return fmt.Sprintf("storage: %s: corrupt graph file: %s", e.Path, e.Detail)
}

// corrupt builds a *CorruptFileError for the store's file.
func (st *Store) corrupt(format string, args ...any) error {
	return &CorruptFileError{Path: st.path, Detail: fmt.Sprintf(format, args...)}
}
