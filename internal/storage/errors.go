package storage

import (
	"errors"
	"fmt"
	"syscall"
)

// CorruptFileError reports a graph file that failed structural validation:
// checksum mismatch, bad magic, inconsistent header geometry, or section
// contents referencing out-of-range nodes, edges, or labels. Open returns
// it (wrapped) for any file that is syntactically readable but unsafe to
// serve; a corrupt file never panics the reader or drives allocations past
// the file's own size.
type CorruptFileError struct {
	// Path is the file that failed validation.
	Path string
	// Detail describes the first violated invariant.
	Detail string
}

func (e *CorruptFileError) Error() string {
	return fmt.Sprintf("storage: %s: corrupt graph file: %s", e.Path, e.Detail)
}

// corrupt builds a *CorruptFileError for the store's file.
func (st *Store) corrupt(format string, args ...any) error {
	return &CorruptFileError{Path: st.path, Detail: fmt.Sprintf(format, args...)}
}

// TransientError classifies a storage failure as plausibly recoverable by
// retrying: the condition (disk full, interrupted syscall, resource
// exhaustion) can clear without replacing hardware or files. The
// graph.Writer's publish path retries transient WAL appends with bounded
// exponential backoff before entering degraded mode; every other storage
// failure is treated as permanent and degrades immediately.
type TransientError struct {
	// Op names the failed operation ("wal append", "wal sync", ...).
	Op string
	// Path is the file the operation targeted.
	Path string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("storage: transient %s failure on %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the underlying failure for errors.Is/As chains.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient marks the error retryable; graph.IsTransient keys off this
// method so the graph package never has to import storage.
func (e *TransientError) Transient() bool { return true }

// isTransientErrno reports whether err is a syscall-level condition worth
// retrying: disk full (an operator or the log compactor can free space),
// interrupted or would-block syscalls, and timeouts. EIO and everything
// else — bad descriptors, corrupt media, closed files — is permanent.
func isTransientErrno(err error) bool {
	for _, errno := range []syscall.Errno{syscall.ENOSPC, syscall.EDQUOT, syscall.EINTR, syscall.EAGAIN, syscall.ETIMEDOUT} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// classifyIO wraps a failed storage operation's error: transient
// conditions become *TransientError (retryable), everything else passes
// through unchanged (permanent).
func classifyIO(op, path string, err error) error {
	if err == nil {
		return nil
	}
	if isTransientErrno(err) {
		return &TransientError{Op: op, Path: path, Err: err}
	}
	return err
}
