package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// seedShardGraph is the deterministic base graph for sharded-store tests.
func seedShardGraph() *graph.Graph {
	g := graph.New(false)
	g.AddNodes(8)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.SetLabel(0, "seed")
	return g
}

// publishShardBatches drives count deterministic mixed batches through a
// store's writer, touching every shard (node creations spread over the
// hash), and returns the last acknowledged epoch.
func publishShardBatches(t *testing.T, ds *DynamicStore, seed int64, count int) uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := ds.Writer()
	last := uint64(0)
	for b := 0; b < count; b++ {
		nodes := ds.Snapshot().NumNodes() + w.Pending()
		first := w.AddNodes(2)
		w.AddEdge(first, graph.NodeID(rng.Intn(nodes)))
		w.AddEdge(first+1, graph.NodeID(rng.Intn(nodes)))
		w.SetLabel(graph.NodeID(rng.Intn(nodes)), fmt.Sprintf("l%d", b%3))
		w.SetNodeAttr(graph.NodeID(rng.Intn(nodes)), "b", fmt.Sprintf("%d", b))
		snap, err := w.Publish()
		if err != nil {
			t.Fatalf("publish %d: %v", b, err)
		}
		last = snap.Epoch()
	}
	return last
}

func TestShardedDynamicCreateReplayParity(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("P%d", shards), func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "g.egoc")
			ds, err := CreateDynamicSharded(base, seedShardGraph(), shards)
			if err != nil {
				t.Fatal(err)
			}
			ds.SetCompactAtBytes(0)
			if ds.Shards() != shards {
				t.Fatalf("Shards() = %d want %d", ds.Shards(), shards)
			}
			last := publishShardBatches(t, ds, 42, 9)
			want := fingerprintDyn(ds.Snapshot().Graph())
			ds.Close()

			ds2, err := OpenDynamic(base)
			if err != nil {
				t.Fatal(err)
			}
			defer ds2.Close()
			if ds2.Shards() != shards {
				t.Fatalf("reopened Shards() = %d want %d", ds2.Shards(), shards)
			}
			if got := ds2.Snapshot().Epoch(); got != last {
				t.Fatalf("recovered epoch %d want %d", got, last)
			}
			if got := fingerprintDyn(ds2.Snapshot().Graph()); got != want {
				t.Fatalf("replayed state diverges:\ngot:\n%s\nwant:\n%s", got, want)
			}
			// The epoch sequence resumes.
			ds2.Writer().AddNode()
			snap, err := ds2.Writer().Publish()
			if err != nil || snap.Epoch() != last+1 {
				t.Fatalf("post-recovery publish: %v epoch %d want %d", err, snap.Epoch(), last+1)
			}
		})
	}
}

// TestShardedOneShardByteIdentity pins the compatibility contract: a
// 1-shard store's image and log bytes are exactly what the unsharded
// writer-plus-log pipeline produces, so pre-sharding stores and 1-shard
// stores are interchangeable on disk.
func TestShardedOneShardByteIdentity(t *testing.T) {
	dir := t.TempDir()
	shardedBase := filepath.Join(dir, "sharded.egoc")
	plainBase := filepath.Join(dir, "plain.egoc")

	ds, err := CreateDynamicSharded(shardedBase, seedShardGraph(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ds.SetCompactAtBytes(0)
	publishShardBatches(t, ds, 7, 5)
	ds.Close()

	// The reference pipeline: plain Writer over an identical base image,
	// appending the identical deltas through the v1 log.
	if err := Save(plainBase, seedShardGraph()); err != nil {
		t.Fatal(err)
	}
	crc, err := baseImageCRC(fault.OS{}, plainBase)
	if err != nil {
		t.Fatal(err)
	}
	l, err := CreateLogFS(fault.OS{}, plainBase+".log", crc, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.NewWriter(seedShardGraph())
	w.SetWAL(l)
	rng := rand.New(rand.NewSource(7))
	snapNodes := 8
	for b := 0; b < 5; b++ {
		nodes := snapNodes + w.Pending()
		first := w.AddNodes(2)
		w.AddEdge(first, graph.NodeID(rng.Intn(nodes)))
		w.AddEdge(first+1, graph.NodeID(rng.Intn(nodes)))
		w.SetLabel(graph.NodeID(rng.Intn(nodes)), fmt.Sprintf("l%d", b%3))
		w.SetNodeAttr(graph.NodeID(rng.Intn(nodes)), "b", fmt.Sprintf("%d", b))
		snap, err := w.Publish()
		if err != nil {
			t.Fatal(err)
		}
		snapNodes = snap.NumNodes()
	}
	l.Close()

	for _, pair := range [][2]string{
		{shardedBase, plainBase},
		{shardedBase + ".log", plainBase + ".log"},
	} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s and %s differ (%d vs %d bytes)", pair[0], pair[1], len(a), len(b))
		}
	}
	// No v2 segments appear for the 1-shard layout.
	if _, err := os.Stat(shardedBase + ".log.0"); !os.IsNotExist(err) {
		t.Fatalf("unexpected v2 segment for 1-shard store: %v", err)
	}
}

// TestShardedTornMultiSegmentAppend cuts the tail of one segment — the
// crash-between-segment-fsyncs case — and checks the whole last epoch is
// rolled back everywhere, not replayed partially.
func TestShardedTornMultiSegmentAppend(t *testing.T) {
	const shards = 4
	base := filepath.Join(t.TempDir(), "g.egoc")
	ds, err := CreateDynamicSharded(base, seedShardGraph(), shards)
	if err != nil {
		t.Fatal(err)
	}
	ds.SetCompactAtBytes(0)
	last := publishShardBatches(t, ds, 99, 6)
	prevFP := ""
	{
		// Reference state at epoch last-1: replay everything but the
		// final batch on a scratch copy.
		refDir := t.TempDir()
		refBase := filepath.Join(refDir, "g.egoc")
		rds, err := CreateDynamicSharded(refBase, seedShardGraph(), shards)
		if err != nil {
			t.Fatal(err)
		}
		rds.SetCompactAtBytes(0)
		publishShardBatches(t, rds, 99, 5)
		prevFP = fingerprintDyn(rds.Snapshot().Graph())
		rds.Close()
	}
	ds.Close()

	// Find a segment whose final record belongs to the last epoch and
	// tear bytes off its tail.
	torn := false
	for s := 0; s < shards; s++ {
		path := segPath(base, s)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		recs, _, err := scanSegmentRecords(path, data[segHeaderSize:], 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 || recs[len(recs)-1].epoch != last {
			continue
		}
		if err := os.Truncate(path, int64(len(data))-3); err != nil {
			t.Fatal(err)
		}
		torn = true
		break
	}
	if !torn {
		t.Fatal("no segment carried the final epoch")
	}

	ds2, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if got := ds2.Snapshot().Epoch(); got != last-1 {
		t.Fatalf("recovered epoch %d after torn segment, want %d", got, last-1)
	}
	if got := fingerprintDyn(ds2.Snapshot().Graph()); got != prevFP {
		t.Fatalf("torn-append recovery state diverges:\ngot:\n%s\nwant:\n%s", got, prevFP)
	}
	// The rolled-back epoch number is reused by the next publish.
	ds2.Writer().AddNode()
	snap, err := ds2.Writer().Publish()
	if err != nil || snap.Epoch() != last {
		t.Fatalf("post-recovery publish: %v epoch %d want %d", err, snap.Epoch(), last)
	}
}

// TestShardedStaleSegmentRecovery restores one pre-compaction segment
// after a compaction — the crash-mid-segment-swap state — and checks the
// open discards it (its batches are folded into the image) without
// touching the other shards.
func TestShardedStaleSegmentRecovery(t *testing.T) {
	const shards = 4
	base := filepath.Join(t.TempDir(), "g.egoc")
	ds, err := CreateDynamicSharded(base, seedShardGraph(), shards)
	if err != nil {
		t.Fatal(err)
	}
	ds.SetCompactAtBytes(0)
	last := publishShardBatches(t, ds, 5, 6)

	// Keep pre-compaction copies of every segment.
	stale := make([][]byte, shards)
	for s := range stale {
		if stale[s], err = os.ReadFile(segPath(base, s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	want := fingerprintDyn(ds.Snapshot().Graph())
	ds.Close()

	// "Un-swap" one segment: its header CRC binds the old image.
	if err := os.WriteFile(segPath(base, 2), stale[2], 0o644); err != nil {
		t.Fatal(err)
	}

	ds2, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if got := ds2.Snapshot().Epoch(); got != last {
		t.Fatalf("recovered epoch %d with stale segment, want %d", got, last)
	}
	if got := fingerprintDyn(ds2.Snapshot().Graph()); got != want {
		t.Fatalf("stale-segment recovery diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
	ds2.Writer().AddNode()
	if snap, err := ds2.Writer().Publish(); err != nil || snap.Epoch() != last+1 {
		t.Fatalf("post-recovery publish: %v", err)
	}
}

// TestShardedMidHoleIsCorrupt builds a segment set where a non-final
// epoch is incomplete; that is structural corruption, not a torn tail.
func TestShardedMidHoleIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "g.egoc")
	if err := SaveShardedFS(fault.OS{}, base, seedShardGraph(), 3); err != nil {
		t.Fatal(err)
	}
	crc, err := baseImageCRC(fault.OS{}, base)
	if err != nil {
		t.Fatal(err)
	}
	l, err := CreateShardedLog(base, crc, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	one := []graph.Op{{Kind: graph.OpSetLabel, A: 0, Val: "x"}}
	// Epoch 1 on shard 0, epoch 2 on shard 1, epoch 3 on shard 0.
	for _, shard := range []int{0, 1, 0} {
		if err := l.AppendShardBatch([]graph.ShardBatch{{Shard: shard, Index: []uint32{0}, Ops: one}}, 1); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Cut shard 1's only record: epoch 2 vanishes mid-sequence.
	data, err := os.ReadFile(segPath(base, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath(base, 1), int64(len(data)-4)); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDynamic(base)
	var cf *CorruptFileError
	if !errors.As(err, &cf) {
		t.Fatalf("mid-sequence hole opened with err=%v, want *CorruptFileError", err)
	}
}

// TestShardedAppendFaultIsolatesShard drives an ENOSPC fault into one
// segment's fsync: the append must fail with that shard identified and
// transient classification, every segment must rewind to a clean
// boundary, and the writer must degrade only the failing lane.
func TestShardedAppendFaultIsolatesShard(t *testing.T) {
	const shards = 4
	inj := fault.NewInjector(fault.OS{}, 1)
	base := filepath.Join(t.TempDir(), "g.egoc")
	ds, err := CreateDynamicShardedFS(inj, base, seedShardGraph(), shards)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.SetCompactAtBytes(0)
	w := ds.Writer()
	w.WALRetry = graph.RetryPolicy{MaxAttempts: 2}
	last := publishShardBatches(t, ds, 3, 3)

	// Fail every fsync of one shard's segment file.
	const victim = 2
	inj.SetRules(fault.Rule{Op: fault.OpSync, Path: fmt.Sprintf(".log.%d", victim), Err: syscall.ENOSPC})

	// Stage nodes until one lands on the victim shard and one elsewhere.
	part := w.Partitioner()
	victimHit, otherHit := false, false
	for i := 0; !victimHit || !otherHit; i++ {
		n := w.AddNode()
		if part.Shard(n) == victim {
			victimHit = true
		} else {
			otherHit = true
		}
		if i > 1000 {
			t.Fatal("partitioner never hit both lanes")
		}
	}
	if _, err := w.Publish(); err == nil {
		t.Fatal("publish succeeded with a failing segment")
	} else if !graph.IsTransient(err) {
		t.Fatalf("segment ENOSPC not classified transient: %v", err)
	}
	degraded := w.DegradedShards()
	if len(degraded) != 1 || degraded[0] != victim {
		t.Fatalf("degraded shards = %v, want [%d]", degraded, victim)
	}

	// The routed retry publishes the healthy lanes' creations that the
	// watermark admits; the victim lane's ops stay pending.
	if w.PendingShard(victim) == 0 {
		t.Fatal("victim lane lost its pending ops")
	}

	// Clearing the fault and the degraded mark drains everything.
	inj.ClearRules()
	w.ClearDegraded()
	snap, err := w.Publish()
	if err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	if w.Pending() != 0 {
		t.Fatalf("pending ops after recovery: %d", w.Pending())
	}
	if snap.Epoch() <= last {
		t.Fatalf("epoch did not advance: %d", snap.Epoch())
	}

	// Reopen parity: everything acknowledged replays.
	want := fingerprintDyn(snap.Graph())
	wantEpoch := snap.Epoch()
	ds.Close()
	ds2, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if got := ds2.Snapshot().Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d want %d", got, wantEpoch)
	}
	if got := fingerprintDyn(ds2.Snapshot().Graph()); got != want {
		t.Fatalf("recovery after shard fault diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestShardedCompactCycle compacts a sharded store and keeps writing:
// segments restart empty and bound to the new image, and reopening
// replays only the post-compaction tail.
func TestShardedCompactCycle(t *testing.T) {
	const shards = 2
	base := filepath.Join(t.TempDir(), "g.egoc")
	ds, err := CreateDynamicSharded(base, seedShardGraph(), shards)
	if err != nil {
		t.Fatal(err)
	}
	ds.SetCompactAtBytes(0)
	publishShardBatches(t, ds, 11, 5)
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	if records, _, baseEpoch := ds.LogStats(); records != 0 || baseEpoch != ds.Snapshot().Epoch() {
		t.Fatalf("post-compaction log shape: %d records, base epoch %d (snapshot epoch %d)", records, baseEpoch, ds.Snapshot().Epoch())
	}
	last := publishShardBatches(t, ds, 13, 4)
	want := fingerprintDyn(ds.Snapshot().Graph())
	ds.Close()

	ds2, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if got := ds2.Snapshot().Epoch(); got != last {
		t.Fatalf("recovered epoch %d want %d", got, last)
	}
	if got := fingerprintDyn(ds2.Snapshot().Graph()); got != want {
		t.Fatalf("post-compaction replay diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestShardCountRoundTrip checks the header carries the shard count and
// unsharded images keep reading as one shard.
func TestShardCountRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, shards := range []int{1, 2, 16, 255} {
		path := filepath.Join(dir, fmt.Sprintf("g%d.egoc", shards))
		if err := SaveShardedFS(fault.OS{}, path, seedShardGraph(), shards); err != nil {
			t.Fatal(err)
		}
		got, err := imageShardCountFS(fault.OS{}, path)
		if err != nil {
			t.Fatal(err)
		}
		if got != shards {
			t.Fatalf("shard count round trip: got %d want %d", got, shards)
		}
		// The store reader agrees.
		st, err := Open(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.ShardCount() != shards {
			t.Fatalf("Store.ShardCount() = %d want %d", st.ShardCount(), shards)
		}
		st.Close()
	}
	if _, err := CreateDynamicSharded(filepath.Join(dir, "over.egoc"), seedShardGraph(), MaxShards+1); err == nil {
		t.Fatal("shard count beyond the header field was accepted")
	}
}
