package storage

import "egocensus/internal/graph"

// This file makes Store a plan.Source: the query planner can price and
// EXPLAIN queries against a disk store using only the resident indexes,
// deferring full materialization until a query actually executes.

// GraphStats derives the planner's statistics snapshot from the resident
// adjacency index and label vector — no payload reads, no
// materialization. Each node's adjacency record is an 8-byte count
// header followed by 8 bytes per stored half-edge, so its degree is
// recoverable from consecutive index offsets alone. The snapshot is
// memoized.
func (st *Store) GraphStats() (*graph.Stats, error) {
	if st.stats != nil {
		return st.stats, nil
	}
	s := &graph.Stats{
		Edges:       st.NumEdges(),
		Directed:    st.Directed(),
		LabelCounts: map[string]int{},
	}
	for n := 0; n < st.NumNodes(); n++ {
		d := int((st.adjIndex[n+1]-st.adjIndex[n])/8) - 1
		s.AddDegree(d)
		if l := graph.LabelID(st.nodeLabel[n]); l != graph.NoLabel {
			s.LabelCounts[st.labels.Name(l)]++
		}
	}
	st.stats = s
	return s, nil
}

// Graph materializes the stored graph on first use and caches it, so
// repeated queries over one store pay the load once.
func (st *Store) Graph() (*graph.Graph, error) {
	if st.graph != nil {
		return st.graph, nil
	}
	g, err := st.Materialize()
	if err != nil {
		return nil, err
	}
	st.graph = g
	return g, nil
}
