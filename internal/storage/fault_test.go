package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// These tests drive the mutation log and the MVCC writer through
// fault.Injector plans: scripted sync failures, torn writes at every byte
// of a record frame, and crash-after-op halts. They pin down the
// replay-or-truncate recovery contract and the transient/permanent error
// classification the writer's retry policy depends on.

func faultBatch(i int) []graph.Op {
	return []graph.Op{
		{Kind: graph.OpAddNode},
		{Kind: graph.OpSetNodeAttr, A: int32(i), Key: "seq", Val: fmt.Sprintf("b%d", i)},
	}
}

// countingReplay returns an apply func plus the slice it fills.
func countingReplay(got *[]graph.Delta) func(graph.Delta) error {
	return func(d graph.Delta) error {
		*got = append(*got, d)
		return nil
	}
}

func TestLogFailedSyncIsTransientAndRetryable(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "m.log")
	// Sync #1 is the header fsync in CreateLog; #2 is the first append's.
	inj := fault.NewInjector(fault.OS{}, 1,
		fault.Rule{Op: fault.OpSync, Path: ".log", From: 2, Count: 1, Err: syscall.ENOSPC})
	l, err := CreateLogFS(inj, p, 0xFEED, 7)
	if err != nil {
		t.Fatal(err)
	}
	err = l.AppendBatch(faultBatch(1))
	if err == nil {
		t.Fatal("append with failing sync succeeded")
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("want *TransientError, got %T: %v", err, err)
	}
	if !graph.IsTransient(err) {
		t.Fatalf("graph.IsTransient = false for %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("errors.Is(err, ENOSPC) = false for %v", err)
	}
	// The failed frame was truncated and the offset rewound, so the same
	// batch retries cleanly at the same epoch.
	if err := l.AppendBatch(faultBatch(1)); err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if l.Records() != 1 || l.LastEpoch() != 8 {
		t.Fatalf("records=%d lastEpoch=%d, want 1/8", l.Records(), l.LastEpoch())
	}
	l.Close()

	var got []graph.Delta
	l2, err := OpenLog(p, 0xFEED, countingReplay(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 1 || got[0].Epoch != 8 {
		t.Fatalf("replayed %d records (first epoch %v), want 1 at epoch 8", len(got), got)
	}
}

func TestLogTornWriteEveryCut(t *testing.T) {
	const baseCRC, baseEpoch = 0xC0FFEE, 40
	ops3 := faultBatch(3)
	recLen := len(appendLogRecord(nil, baseEpoch+3, ops3))
	for keep := 0; keep <= recLen; keep++ {
		t.Run(fmt.Sprintf("keep=%d", keep), func(t *testing.T) {
			dir := t.TempDir()
			p := filepath.Join(dir, "m.log")
			// Write #1 is the header; #4 is the third record. The torn
			// prefix really reaches disk, and the rewind truncate fails too,
			// so recovery sees exactly the crash artifact.
			inj := fault.NewInjector(fault.OS{}, 1,
				fault.Rule{Op: fault.OpWrite, Path: ".log", From: 4, Count: 1, Err: syscall.EIO, KeepBytes: keep},
				fault.Rule{Op: fault.OpTruncate, Path: ".log", Err: syscall.EIO})
			l, err := CreateLogFS(inj, p, baseCRC, baseEpoch)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 2; i++ {
				if err := l.AppendBatch(faultBatch(i)); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			if err := l.AppendBatch(ops3); err == nil {
				t.Fatal("torn append reported success")
			}
			// Truncation failed, so the log marks itself broken rather than
			// risk appending after a partial frame.
			if err := l.AppendBatch(faultBatch(4)); err == nil {
				t.Fatal("append after unrecoverable tear succeeded")
			}
			l.Close()

			wantRecs, wantEpoch := 2, uint64(baseEpoch+2)
			if keep == recLen {
				// The full frame reached disk before the error: recovery
				// must replay it (replay branch of replay-or-truncate).
				wantRecs, wantEpoch = 3, baseEpoch+3
			}
			var got []graph.Delta
			l2, err := OpenLog(p, baseCRC, countingReplay(&got))
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			if len(got) != wantRecs || l2.Records() != wantRecs || l2.LastEpoch() != wantEpoch {
				t.Fatalf("recovered %d deltas (log: %d records, last epoch %d), want %d/%d",
					len(got), l2.Records(), l2.LastEpoch(), wantRecs, wantEpoch)
			}
			for i, d := range got {
				if d.Epoch != uint64(baseEpoch+1+i) {
					t.Fatalf("delta %d has epoch %d, want %d", i, d.Epoch, baseEpoch+1+i)
				}
			}
			// The recovered log is positioned at a clean boundary: appends
			// resume the epoch sequence.
			if err := l2.AppendBatch(faultBatch(9)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if l2.Records() != wantRecs+1 || l2.LastEpoch() != wantEpoch+1 {
				t.Fatalf("post-recovery append: records=%d lastEpoch=%d", l2.Records(), l2.LastEpoch())
			}
			l2.Close()
		})
	}
}

func TestLogSyncFailureHaltKeepsDurableRecord(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "m.log")
	// The third append's write completes, its fsync fails, and the process
	// dies before the truncate can undo anything: the frame's bytes are on
	// disk, so recovery legitimately replays an epoch the writer never
	// acknowledged. This is why crash recovery accepts epoch last+1.
	inj := fault.NewInjector(fault.OS{}, 1,
		fault.Rule{Op: fault.OpSync, Path: ".log", From: 4, Count: 1, Err: syscall.EIO, Halt: true})
	l, err := CreateLogFS(inj, p, 0xBEEF, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := l.AppendBatch(faultBatch(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	err = l.AppendBatch(faultBatch(3))
	if err == nil {
		t.Fatal("append with halted filesystem succeeded")
	}
	if graph.IsTransient(err) {
		t.Fatalf("unrecoverable tear classified transient: %v", err)
	}
	if !inj.Halted() {
		t.Fatal("injector did not halt")
	}
	l.Close()

	var got []graph.Delta
	l2, err := OpenLog(p, 0xBEEF, countingReplay(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 3 || l2.LastEpoch() != 3 {
		t.Fatalf("recovered %d records, last epoch %d; want the durable-but-unacked record replayed (3/3)",
			len(got), l2.LastEpoch())
	}
}

func TestWriterRetriesTransientWALFailures(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "m.log")
	// Syncs #2 and #3 (the first two append attempts) fail with ENOSPC;
	// attempt three lands. The publish must succeed without degrading.
	inj := fault.NewInjector(fault.OS{}, 1,
		fault.Rule{Op: fault.OpSync, Path: ".log", From: 2, Count: 2, Err: syscall.ENOSPC})
	l, err := CreateLogFS(inj, p, 0xAB, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	w := graph.NewWriter(graph.New(false))
	w.WALRetry = graph.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	w.SetWAL(l)
	w.AddNode()
	snap, err := w.Publish()
	if err != nil {
		t.Fatalf("publish with transient faults: %v", err)
	}
	if snap.Epoch() != 1 || snap.NumNodes() != 1 {
		t.Fatalf("snapshot epoch=%d nodes=%d, want 1/1", snap.Epoch(), snap.NumNodes())
	}
	if fired := inj.RuleFired(0); fired != 2 {
		t.Fatalf("rule fired %d times, want 2", fired)
	}
	if w.Degraded() != nil {
		t.Fatalf("writer degraded after successful retry: %v", w.Degraded())
	}
	if l.Records() != 1 || l.LastEpoch() != 1 {
		t.Fatalf("log records=%d lastEpoch=%d, want 1/1", l.Records(), l.LastEpoch())
	}
}

func TestWriterDegradesOnPermanentWALFailure(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "m.log")
	inj := fault.NewInjector(fault.OS{}, 1,
		fault.Rule{Op: fault.OpSync, Path: ".log", From: 2, Err: syscall.EIO})
	l, err := CreateLogFS(inj, p, 0xAB, 0)
	if err != nil {
		t.Fatal(err)
	}

	w := graph.NewWriter(graph.New(false))
	w.WALRetry = graph.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	w.SetWAL(l)
	pinned := w.Snapshot()
	w.AddNode()
	_, err = w.Publish()
	var de *graph.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("want *DegradedError, got %T: %v", err, err)
	}
	if de.Epoch != 0 {
		t.Fatalf("degraded at epoch %d, want 0", de.Epoch)
	}
	// EIO is permanent: exactly one attempt, no retries.
	if fired := inj.RuleFired(0); fired != 1 {
		t.Fatalf("rule fired %d times, want 1 (no retry of permanent errors)", fired)
	}
	// Degraded publishes fail fast without touching the WAL again.
	if _, err2 := w.Publish(); !errors.Is(err2, err) && err2 != err {
		t.Fatalf("second publish error %v, want the sticky %v", err2, err)
	}
	if fired := inj.RuleFired(0); fired != 1 {
		t.Fatalf("degraded publish reached the WAL (rule fired %d times)", fired)
	}
	// Readers are untouched: the pinned snapshot and fresh acquisitions
	// both serve epoch 0.
	if pinned.Epoch() != 0 || w.Snapshot().Epoch() != 0 {
		t.Fatal("degraded writer disturbed reader snapshots")
	}
	if !w.Stats().Degraded {
		t.Fatal("Stats().Degraded = false")
	}

	// Operator fixes the disk, clears the plan, re-arms the writer: the
	// retained pending batch publishes.
	inj.ClearRules()
	if !w.ClearDegraded() {
		t.Fatal("ClearDegraded reported not-degraded")
	}
	snap, err := w.Publish()
	if err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	if snap.Epoch() != 1 || snap.NumNodes() != 1 {
		t.Fatalf("recovered snapshot epoch=%d nodes=%d, want 1/1", snap.Epoch(), snap.NumNodes())
	}
	l.Close()

	var got []graph.Delta
	l2, err := OpenLog(p, 0xAB, countingReplay(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 1 || got[0].Epoch != 1 {
		t.Fatalf("log holds %d records after recovery, want the published batch at epoch 1", len(got))
	}
}

func TestSaveToleratesDirectorySyncFailure(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "g.egoc")
	// Sync #1 is the temp file's; #2 is the directory's. The latter is
	// best-effort by design (logged once per process, never fatal).
	inj := fault.NewInjector(fault.OS{}, 1,
		fault.Rule{Op: fault.OpSync, From: 2, Count: 1, Err: syscall.EIO})
	g := graph.New(false)
	g.AddNodes(3)
	g.AddEdge(0, 1)
	if err := SaveFS(inj, p, g); err != nil {
		t.Fatalf("save with failing directory fsync: %v", err)
	}
	if fired := inj.RuleFired(0); fired != 1 {
		t.Fatalf("directory-sync rule fired %d times, want 1", fired)
	}
	g2, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != 1 {
		t.Fatalf("roundtrip got %d nodes / %d edges", g2.NumNodes(), g2.NumEdges())
	}
}

// FuzzMutlogFaultRecovery crashes the filesystem at a fuzzed point while
// appending and asserts the recovery invariants: OpenLog never panics,
// replays every fsynced record, at most one unacknowledged-but-durable
// record beyond that, keeps epochs contiguous, and leaves the log
// appendable.
func FuzzMutlogFaultRecovery(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(10), false)
	f.Add(int64(2), uint8(2), uint8(0), true)
	f.Add(int64(3), uint8(5), uint8(200), true)
	f.Add(int64(4), uint8(1), uint8(3), false)
	f.Fuzz(func(t *testing.T, seed int64, occ, keep uint8, syncFail bool) {
		dir := t.TempDir()
		p := filepath.Join(dir, "f.log")
		op := fault.OpWrite
		if syncFail {
			op = fault.OpSync
		}
		inj := fault.NewInjector(fault.OS{}, seed,
			fault.Rule{Op: op, Path: ".log", From: int(occ%8) + 1, Count: 1, Err: syscall.EIO, KeepBytes: int(keep), Halt: true},
			fault.Rule{Op: fault.OpTruncate, Path: ".log", Err: syscall.EIO})
		const baseCRC, baseEpoch = 0x5EED, 3
		l, err := CreateLogFS(inj, p, baseCRC, baseEpoch)
		if err != nil {
			// The crash hit the header write: there is no log to recover.
			return
		}
		appended := 0
		for i := 0; i < 4; i++ {
			if err := l.AppendBatch(faultBatch(i)); err == nil {
				appended++
			}
		}
		l.Close()

		recovered := 0
		l2, err := OpenLog(p, baseCRC, func(graph.Delta) error { recovered++; return nil })
		if err != nil {
			t.Fatalf("recovery failed (seed=%d occ=%d keep=%d sync=%v): %v", seed, occ, keep, syncFail, err)
		}
		if recovered < appended || recovered > appended+1 {
			t.Fatalf("recovered %d records from %d acknowledged appends", recovered, appended)
		}
		if l2.Records() != recovered || l2.LastEpoch() != baseEpoch+uint64(recovered) {
			t.Fatalf("log records=%d lastEpoch=%d after recovering %d", l2.Records(), l2.LastEpoch(), recovered)
		}
		if err := l2.AppendBatch(faultBatch(9)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		l2.Close()

		final := 0
		l3, err := OpenLog(p, baseCRC, func(graph.Delta) error { final++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		l3.Close()
		if final != recovered+1 {
			t.Fatalf("after post-recovery append: %d records, want %d", final, recovered+1)
		}
	})
}
