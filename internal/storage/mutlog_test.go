package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"egocensus/internal/graph"
)

// fingerprintDyn canonicalizes a graph's observable state (structure,
// labels, attrs) for equality checks across replay/recovery.
func fingerprintDyn(g *graph.Graph) string {
	var b []byte
	b = append(b, fmt.Sprintf("n=%d m=%d d=%v\n", g.NumNodes(), g.NumEdges(), g.Directed())...)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		b = append(b, fmt.Sprintf("e%d:%d-%d\n", e, ed.From, ed.To)...)
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		b = append(b, fmt.Sprintf("v%d:%s:%v\n", n, g.LabelString(id), g.NodeAttrs(id))...)
	}
	return string(b)
}

func openDynAt(t *testing.T, dir string) (*DynamicStore, string) {
	t.Helper()
	base := filepath.Join(dir, "g.egoc")
	if _, err := os.Stat(base); os.IsNotExist(err) {
		g := graph.New(false)
		g.AddNodes(4)
		g.AddEdge(0, 1)
		ds, err := CreateDynamic(base, g)
		if err != nil {
			t.Fatal(err)
		}
		return ds, base
	}
	ds, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	return ds, base
}

func TestDynamicPublishReplay(t *testing.T) {
	dir := t.TempDir()
	ds, base := openDynAt(t, dir)
	w := ds.Writer()
	a := w.AddNode() // node 4
	w.AddEdge(a, 0)
	w.SetLabel(a, "hub")
	w.SetNodeAttr(a, "name", "added")
	if _, err := w.Publish(); err != nil {
		t.Fatal(err)
	}
	w.AddEdge(1, 2)
	s2, err := w.Publish()
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintDyn(s2.Graph())
	wantEpoch := s2.Epoch()
	// Unpublished ops must not survive.
	w.AddNode()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	s := ds2.Snapshot()
	if s.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch = %d want %d", s.Epoch(), wantEpoch)
	}
	if got := fingerprintDyn(s.Graph()); got != want {
		t.Fatalf("recovered state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The recovered writer keeps going from the same epoch sequence.
	ds2.Writer().AddNode()
	s3, err := ds2.Writer().Publish()
	if err != nil || s3.Epoch() != wantEpoch+1 {
		t.Fatalf("post-recovery publish: %v epoch=%d want %d", err, s3.Epoch(), wantEpoch+1)
	}
}

// TestDynamicCrashTornTail simulates a crash mid-log-append: every proper
// prefix of the final record must recover to the state before that batch,
// with no *CorruptFileError.
func TestDynamicCrashTornTail(t *testing.T) {
	dir := t.TempDir()
	ds, base := openDynAt(t, dir)
	w := ds.Writer()
	w.AddEdge(1, 2)
	s1, err := w.Publish()
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintDyn(s1.Graph())
	wantEpoch := s1.Epoch()
	b := w.AddNode()
	w.AddEdge(b, 3)
	w.SetLabel(b, "late")
	if _, err := w.Publish(); err != nil {
		t.Fatal(err)
	}
	intactSize := func() int64 {
		fi, err := os.Stat(base + ".log")
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}()
	full, err := os.ReadFile(base + ".log")
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()

	// Find where the last record begins by reopening at each candidate
	// truncation point: every size in (lastRecordStart, intactSize) is a
	// torn tail. Walk a spread of cut points including off-by-ones.
	var lastStart int64
	{
		// The first publish produced record 1; its frame length can be
		// recomputed by scanning from the header.
		deltas, validLen, err := scanLogRecords(base+".log", full[logHeaderSize:], 0)
		if err != nil || len(deltas) != 2 {
			t.Fatalf("scan: %v (%d records)", err, len(deltas))
		}
		_ = validLen
		// Rescan with only the first record's bytes to find its end.
		for cut := int64(logHeaderSize) + 1; cut < int64(len(full)); cut++ {
			d, _, err := scanLogRecords(base+".log", full[logHeaderSize:cut], 0)
			if err == nil && len(d) == 1 {
				lastStart = cut
				break
			}
		}
	}
	if lastStart == 0 {
		t.Fatal("could not locate record boundary")
	}

	for _, cut := range []int64{lastStart, lastStart + 1, (lastStart + intactSize) / 2, intactSize - 1} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			if err := os.WriteFile(base+".log", full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			ds2, err := OpenDynamic(base)
			if err != nil {
				var cfe *CorruptFileError
				if errors.As(err, &cfe) {
					t.Fatalf("torn tail reported as corruption: %v", err)
				}
				t.Fatal(err)
			}
			defer ds2.Close()
			s := ds2.Snapshot()
			if s.Epoch() != wantEpoch {
				t.Fatalf("recovered epoch = %d want %d", s.Epoch(), wantEpoch)
			}
			if got := fingerprintDyn(s.Graph()); got != want {
				t.Fatalf("torn-tail recovery state differs:\ngot:\n%s\nwant:\n%s", got, want)
			}
			// The truncated tail must not poison later appends.
			ds2.Writer().AddNode()
			if _, err := ds2.Writer().Publish(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDynamicCorruptRecordIsCorruptError(t *testing.T) {
	dir := t.TempDir()
	ds, base := openDynAt(t, dir)
	ds.Writer().AddEdge(2, 3)
	if _, err := ds.Writer().Publish(); err != nil {
		t.Fatal(err)
	}
	ds.Writer().AddEdge(0, 3)
	if _, err := ds.Writer().Publish(); err != nil {
		t.Fatal(err)
	}
	ds.Close()

	logPath := base + ".log"
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	// Flipping a bit inside the FIRST record's payload while fixing up its
	// CRC would be structural corruption; simpler: corrupt the op kind and
	// recompute nothing — the CRC then fails on a NON-final record, which
	// still truncates at that point (prefix semantics). Instead corrupt
	// the header magic: unambiguous structural damage.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if err := os.WriteFile(logPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDynamic(base)
	var cfe *CorruptFileError
	if !errors.As(err, &cfe) {
		t.Fatalf("bad magic: err = %T (%v), want *CorruptFileError", err, err)
	}
}

func TestDynamicCompactAndStaleLogRecovery(t *testing.T) {
	dir := t.TempDir()
	ds, base := openDynAt(t, dir)
	w := ds.Writer()
	for i := 0; i < 5; i++ {
		n := w.AddNode()
		w.AddEdge(n, 0)
		w.SetLabel(n, "x")
		if _, err := w.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	preCompact := fingerprintDyn(ds.Snapshot().Graph())
	epoch := ds.Snapshot().Epoch()

	// Keep a copy of the pre-compaction log to simulate the crash window.
	oldLog, err := os.ReadFile(base + ".log")
	if err != nil {
		t.Fatal(err)
	}

	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	if rec, _, baseEpoch := ds.LogStats(); rec != 0 || baseEpoch != epoch {
		t.Fatalf("post-compact log: records=%d baseEpoch=%d want 0,%d", rec, baseEpoch, epoch)
	}
	// Published state unchanged by compaction, and appends continue.
	if got := fingerprintDyn(ds.Snapshot().Graph()); got != preCompact {
		t.Fatal("compaction changed the published state")
	}
	w.AddEdge(0, 1)
	if _, err := w.Publish(); err != nil {
		t.Fatal(err)
	}
	postAppend := fingerprintDyn(ds.Snapshot().Graph())
	ds.Close()

	// Normal reopen after compaction.
	ds2, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintDyn(ds2.Snapshot().Graph()); got != postAppend {
		t.Fatal("reopen after compaction lost state")
	}
	if ds2.Snapshot().Epoch() != epoch+1 {
		t.Fatalf("epoch = %d want %d", ds2.Snapshot().Epoch(), epoch+1)
	}
	ds2.Close()

	// Crash window: new base image on disk, but the OLD log (pre-compact)
	// still in place. The CRC binding must flag it stale; recovery serves
	// the compacted image and resumes past the stale log's epochs.
	if err := os.WriteFile(base+".log", oldLog, 0o644); err != nil {
		t.Fatal(err)
	}
	ds3, err := OpenDynamic(base)
	if err != nil {
		t.Fatalf("stale-log recovery failed: %v", err)
	}
	defer ds3.Close()
	if got := fingerprintDyn(ds3.Snapshot().Graph()); got != preCompact {
		t.Fatal("stale-log recovery did not serve the compacted base image")
	}
	if got := ds3.Snapshot().Epoch(); got < epoch {
		t.Fatalf("epoch went backwards after stale-log recovery: %d < %d", got, epoch)
	}
	ds3.Writer().AddNode()
	if _, err := ds3.Writer().Publish(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	ds, _ := openDynAt(t, dir)
	defer ds.Close()
	ds.SetCompactAtBytes(256)
	w := ds.Writer()
	for i := 0; i < 50; i++ {
		n := w.AddNode()
		w.AddEdge(n, 0)
		w.SetNodeAttr(n, "padpadpadpadpad", "valvalvalvalval")
		if _, err := w.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	// The compactor runs asynchronously; poll until the log shrank below
	// the threshold plus one batch, bounded by the test deadline.
	for {
		if _, bytes, _ := ds.LogStats(); bytes < 1024 {
			break
		}
	}
}

func TestLogEncodeDecodeRoundTrip(t *testing.T) {
	ops := []graph.Op{
		{Kind: graph.OpAddNode},
		{Kind: graph.OpAddEdge, A: 3, B: 7},
		{Kind: graph.OpSetLabel, A: 2, Val: "label-值"},
		{Kind: graph.OpSetNodeAttr, A: 1, Key: "k", Val: ""},
		{Kind: graph.OpSetEdgeAttr, A: 0, Key: "", Val: "v"},
	}
	rec := appendLogRecord(nil, 42, ops)
	deltas, n, err := scanLogRecords("mem", rec, 41)
	if err != nil || n != len(rec) || len(deltas) != 1 {
		t.Fatalf("scan: %v n=%d deltas=%d", err, n, len(deltas))
	}
	if deltas[0].Epoch != 42 || len(deltas[0].Ops) != len(ops) {
		t.Fatalf("decoded %+v", deltas[0])
	}
	for i, op := range deltas[0].Ops {
		if op != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, op, ops[i])
		}
	}
}
