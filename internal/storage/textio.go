package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// This file implements a human-readable text format for graph exchange
// (SNAP-style edge lists extended with attributes), so real datasets can
// be imported without the binary tooling.
//
// Format, one record per line, tab- or space-separated, '#' comments:
//
//	graph (un)directed          -- optional header, default undirected
//	node <id> [key=value ...]   -- optional; declares attributes/labels
//	edge <id1> <id2> [key=value ...]
//	<id1> <id2>                 -- bare pair shorthand for edge
//
// Node IDs are arbitrary non-negative integers; they are densified in
// first-appearance order on load. The "label" attribute sets the node
// label.

// WriteText encodes g to w in the text format.
func WriteText(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	dir := "undirected"
	if g.Directed() {
		dir = "directed"
	}
	fmt.Fprintf(bw, "# egocensus text graph\ngraph %s\n", dir)
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		attrs := g.NodeAttrs(id)
		fmt.Fprintf(bw, "node %d%s\n", n, renderAttrs(attrs))
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		attrs := g.EdgeAttrs(graph.EdgeID(e))
		fmt.Fprintf(bw, "edge %d %d%s\n", ed.From, ed.To, renderAttrs(attrs))
	}
	return bw.Flush()
}

func renderAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteByte('\t')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(attrs[k])
	}
	return b.String()
}

// ReadText decodes a graph from the text format.
func ReadText(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *graph.Graph
	ids := map[string]graph.NodeID{}
	ensureGraph := func(directed bool) {
		if g == nil {
			g = graph.New(directed)
		}
	}
	node := func(token string) (graph.NodeID, error) {
		if id, ok := ids[token]; ok {
			return id, nil
		}
		if _, err := strconv.ParseUint(token, 10, 32); err != nil {
			return 0, fmt.Errorf("storage: invalid node id %q", token)
		}
		ensureGraph(false)
		id := g.AddNode()
		ids[token] = id
		return id, nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		applyAttrs := func(set func(k, v string), from int) error {
			for _, f := range fields[from:] {
				eq := strings.IndexByte(f, '=')
				if eq <= 0 {
					return fmt.Errorf("storage: line %d: malformed attribute %q", lineNo, f)
				}
				set(f[:eq], f[eq+1:])
			}
			return nil
		}
		switch fields[0] {
		case "graph":
			if g != nil {
				return nil, fmt.Errorf("storage: line %d: graph header must come first", lineNo)
			}
			if len(fields) != 2 || (fields[1] != "directed" && fields[1] != "undirected") {
				return nil, fmt.Errorf("storage: line %d: want 'graph directed|undirected'", lineNo)
			}
			ensureGraph(fields[1] == "directed")
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("storage: line %d: node needs an id", lineNo)
			}
			id, err := node(fields[1])
			if err != nil {
				return nil, err
			}
			if err := applyAttrs(func(k, v string) { g.SetNodeAttr(id, k, v) }, 2); err != nil {
				return nil, err
			}
		case "edge":
			if len(fields) < 3 {
				return nil, fmt.Errorf("storage: line %d: edge needs two ids", lineNo)
			}
			if err := addTextEdge(&g, node, fields[1], fields[2], fields[3:], lineNo); err != nil {
				return nil, err
			}
		default:
			// Bare "<id1> <id2>" shorthand.
			if len(fields) < 2 {
				return nil, fmt.Errorf("storage: line %d: unrecognized record %q", lineNo, fields[0])
			}
			if err := addTextEdge(&g, node, fields[0], fields[1], fields[2:], lineNo); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		g = graph.New(false)
	}
	return g, nil
}

// addTextEdge resolves both endpoints (which may lazily create the graph,
// hence the pointer-to-pointer) and adds the edge with its attributes.
func addTextEdge(gp **graph.Graph, node func(string) (graph.NodeID, error), a, b string, attrs []string, lineNo int) error {
	from, err := node(a)
	if err != nil {
		return err
	}
	to, err := node(b)
	if err != nil {
		return err
	}
	g := *gp
	e := g.AddEdge(from, to)
	for _, f := range attrs {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return fmt.Errorf("storage: line %d: malformed attribute %q", lineNo, f)
		}
		g.SetEdgeAttr(e, f[:eq], f[eq+1:])
	}
	return nil
}

// SaveText writes g to path in the text format.
func SaveText(path string, g *graph.Graph) error {
	return SaveTextFS(fault.OS{}, path, g)
}

// SaveTextFS is SaveText through an explicit filesystem seam, so fault
// injection covers text exports like every other storage write path.
func SaveTextFS(fsys fault.FS, path string, g *graph.Graph) (err error) {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteText(f, g)
}

// LoadText reads a text-format graph from path.
func LoadText(path string) (*graph.Graph, error) {
	return LoadTextFS(fault.OS{}, path)
}

// LoadTextFS is LoadText through an explicit filesystem seam.
func LoadTextFS(fsys fault.FS, path string) (*graph.Graph, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadText(f)
}
