package storage

import (
	"path/filepath"
	"strings"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

func TestTextRoundTrip(t *testing.T) {
	g := sampleGraph()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveText(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadText(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestTextRoundTripDirected(t *testing.T) {
	g := graph.New(true)
	a, b := g.AddNode(), g.AddNode()
	g.SetLabel(a, "x")
	e := g.AddEdge(a, b)
	g.SetEdgeAttr(e, "w", "2")
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveText(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadText(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestTextBareEdgeList(t *testing.T) {
	src := `
# a SNAP-style edge list
0 1
1 2
2 0
`
	g, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 || g.Directed() {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestTextSparseIDsDensified(t *testing.T) {
	src := "100 5\n5 7\n"
	g, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d want 3 (densified)", g.NumNodes())
	}
	// first-appearance order: 100 -> 0, 5 -> 1, 7 -> 2
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("edges not mapped")
	}
}

func TestTextAttributes(t *testing.T) {
	src := `graph directed
node 0 label=author name=alice
node 1 label=author
edge 0 1 since=2003
`
	g, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("directed header ignored")
	}
	if g.LabelString(0) != "author" {
		t.Fatal("label attr not applied")
	}
	if v, _ := g.NodeAttr(0, "name"); v != "alice" {
		t.Fatal("node attr missing")
	}
	if v, _ := g.EdgeAttr(0, "since"); v != "2003" {
		t.Fatal("edge attr missing")
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"graph sideways\n",
		"node\n",
		"edge 0\n",
		"node 0 broken\n",
		"edge 0 1 =x\n",
		"0 1\ngraph directed\n", // header after records
		"zz 1\n",
		"justoneword\n",
	}
	for _, src := range cases {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestTextEmptyInput(t *testing.T) {
	g, err := ReadText(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 {
		t.Fatal("empty input should give empty graph")
	}
}

func TestTextLargeGraph(t *testing.T) {
	g := gen.PreferentialAttachment(500, 4, 2)
	gen.AssignLabels(g, 3, 3)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveText(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadText(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

// FuzzReadText asserts the text reader never panics and that accepted
// graphs round-trip through WriteText.
func FuzzReadText(f *testing.F) {
	seeds := []string{
		"graph directed\nnode 0 label=x\nedge 0 1 w=2\n",
		"0 1\n1 2\n2 0\n",
		"# comment only\n",
		"node 5\n",
		"edge 1\n",
		"graph sideways\n",
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadText(strings.NewReader(src))
		if err != nil || g == nil {
			return
		}
		var buf strings.Builder
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to render: %v", err)
		}
		g2, err := ReadText(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("rendered graph does not re-parse: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
		}
	})
}
