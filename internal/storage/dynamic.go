package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// DynamicStore is the durable backing of a mutating graph: a base .egoc
// image plus append-only mutation-log sidecars, fronted by a
// graph.ShardedWriter. Opening replays the log onto the base image and
// resumes the epoch sequence; every publish is WAL-appended and fsynced
// before it becomes visible, so a crash at any point recovers exactly the
// last published snapshot. A background compactor folds the log into the
// base image (reusing Save's atomic temp-file/rename discipline) once the
// log outgrows CompactAtBytes.
//
// The store's shard count is fixed at creation and recorded in the image
// header. An unsharded (1-shard) store keeps the historical layout — a
// single <base>.log sidecar in the v1 record format, byte-identical to
// what the pre-sharding code wrote — and existing single-log stores open
// unchanged. A P-shard store persists each epoch across P independent
// segment files <base>.log.0 … <base>.log.P-1 (see shardlog.go), replays
// them in parallel on open, and compacts all P together.
//
// Every log header carries the trailing CRC32 of the base image it
// extends. That binding makes crash recovery around compaction
// unambiguous: a crash between the base-image rename and the log swap
// leaves a new image with old logs, which the CRC mismatch identifies as
// stale — their batches are already folded into the image, so they are
// discarded and fresh logs are started at the epoch where they ended. In
// the sharded layout the swap is per segment, so the mismatch is resolved
// per segment too.
type DynamicStore struct {
	fsys     fault.FS
	basePath string
	logPath  string
	shards   int
	w        *graph.ShardedWriter

	mu     sync.Mutex // serializes Compact and Close; publishes take the writer's own lock
	log    mutLog
	closed bool

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	// CompactAtBytes is the log size that triggers background compaction;
	// <= 0 disables the background compactor (Compact stays available).
	compactAtBytes int64
}

// mutLog is what DynamicStore needs from a mutation log, satisfied by
// both the single-file *Log and the per-shard *ShardedLog.
type mutLog interface {
	graph.WAL
	Records() int
	Size() int64
	BaseEpoch() uint64
	LastEpoch() uint64
	Close() error
}

// DefaultCompactAtBytes is the log size at which OpenDynamic's background
// compactor folds the log into the base image.
const DefaultCompactAtBytes = 4 << 20

// MaxShards bounds a dynamic store's shard count (the image header stores
// it in 16 bits).
const MaxShards = 1<<16 - 1

// CreateDynamic initializes an unsharded dynamic store at basePath from
// g: the base image is saved atomically, an empty mutation log is created
// beside it, and the opened store is returned. Fails if basePath already
// exists.
func CreateDynamic(basePath string, g *graph.Graph) (*DynamicStore, error) {
	return CreateDynamicShardedFS(fault.OS{}, basePath, g, 1)
}

// CreateDynamicFS is CreateDynamic through an explicit filesystem seam.
func CreateDynamicFS(fsys fault.FS, basePath string, g *graph.Graph) (*DynamicStore, error) {
	return CreateDynamicShardedFS(fsys, basePath, g, 1)
}

// CreateDynamicSharded initializes a dynamic store partitioned across
// shards mutation-log lanes. The shard count is recorded in the image
// header and fixed for the store's lifetime; shards <= 1 creates the
// historical unsharded layout.
func CreateDynamicSharded(basePath string, g *graph.Graph, shards int) (*DynamicStore, error) {
	return CreateDynamicShardedFS(fault.OS{}, basePath, g, shards)
}

// CreateDynamicShardedFS is CreateDynamicSharded through a filesystem
// seam.
func CreateDynamicShardedFS(fsys fault.FS, basePath string, g *graph.Graph, shards int) (*DynamicStore, error) {
	if shards > MaxShards {
		return nil, fmt.Errorf("storage: shard count %d exceeds %d", shards, MaxShards)
	}
	if _, err := fsys.Stat(basePath); err == nil {
		return nil, fmt.Errorf("storage: %s already exists", basePath)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if err := SaveShardedFS(fsys, basePath, g, shards); err != nil {
		return nil, err
	}
	return OpenDynamicFS(fsys, basePath)
}

// OpenDynamic opens the dynamic store at basePath: the base image is
// materialized, the sidecar log (if any) is replayed onto it — truncating
// a torn tail from a crashed append, discarding a stale log from a
// crashed compaction — and a writer resumes at the recovered epoch. The
// store's layout (unsharded or P-shard) comes from the image header.
// The returned store's background compactor is active with the default
// threshold; tune it with SetCompactAtBytes.
func OpenDynamic(basePath string) (*DynamicStore, error) {
	return OpenDynamicFS(fault.OS{}, basePath)
}

// imageShardCountFS reads just enough of an image header to learn its
// shard count.
func imageShardCountFS(fsys fault.FS, path string) (int, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var buf [10]byte
	if _, err := f.ReadAt(buf[:], 0); err != nil {
		return 0, &CorruptFileError{Path: path, Detail: "header unreadable"}
	}
	for i := range Magic {
		if buf[i] != Magic[i] {
			return 0, &CorruptFileError{Path: path, Detail: fmt.Sprintf("bad magic %q", buf[:6])}
		}
	}
	h := header{Flags: binary.LittleEndian.Uint32(buf[6:])}
	return h.shardCount(), nil
}

// OpenDynamicFS is OpenDynamic through an explicit filesystem seam: the
// chaos harness opens stores over a fault.Injector to drive scripted
// crash, torn-write and errno faults through every recovery path.
func OpenDynamicFS(fsys fault.FS, basePath string) (*DynamicStore, error) {
	g, err := LoadFS(fsys, basePath)
	if err != nil {
		return nil, err
	}
	shards, err := imageShardCountFS(fsys, basePath)
	if err != nil {
		return nil, err
	}
	baseCRC, err := baseImageCRC(fsys, basePath)
	if err != nil {
		return nil, err
	}
	logPath := basePath + ".log"
	apply := func(d graph.Delta) error {
		for _, op := range d.Ops {
			if err := graph.ApplyOp(g, op); err != nil {
				return err
			}
		}
		return nil
	}

	var log mutLog
	lastEpoch := uint64(0)
	if shards > 1 {
		sl, err := OpenShardedLogFS(fsys, basePath, baseCRC, shards, apply)
		if err != nil {
			return nil, err
		}
		log = sl
		lastEpoch = sl.LastEpoch()
	} else {
		switch _, statErr := fsys.Stat(logPath); {
		case os.IsNotExist(statErr):
			l, err := CreateLogFS(fsys, logPath, baseCRC, 0)
			if err != nil {
				return nil, err
			}
			log = l
		case statErr != nil:
			return nil, statErr
		default:
			l, err := OpenLogFS(fsys, logPath, baseCRC, apply)
			if err != nil {
				// A CRC-binding mismatch means a compaction crashed after
				// renaming the new base image but before swapping the log:
				// the old log's batches are already folded into the image.
				// Discard it, but resume the epoch sequence past its last
				// record.
				staleCRC, staleLast, scanErr := logBaseCRCFS(fsys, logPath)
				if scanErr != nil || staleCRC == baseCRC {
					return nil, err
				}
				if l, err = CreateLogFS(fsys, logPath, baseCRC, staleLast); err != nil {
					return nil, err
				}
			}
			log = l
			lastEpoch = l.LastEpoch()
		}
	}

	ds := &DynamicStore{
		fsys:           fsys,
		basePath:       basePath,
		logPath:        logPath,
		shards:         shards,
		log:            log,
		compactCh:      make(chan struct{}, 1),
		done:           make(chan struct{}),
		compactAtBytes: DefaultCompactAtBytes,
	}
	ds.w = graph.NewShardedWriterAt(g, lastEpoch, shards)
	ds.w.SetWAL(log)
	// Nudge the compactor after every publish; the send never blocks the
	// publish path (the channel holds one pending nudge).
	ds.w.Subscribe(func(*graph.Snapshot, graph.Delta) {
		select {
		case ds.compactCh <- struct{}{}:
		default:
		}
	})
	ds.wg.Add(1)
	go ds.compactor()
	return ds, nil
}

// Writer returns the store's single mutation path. Batches published
// through it are durable before they are visible. With one shard the
// writer behaves exactly like the plain graph.Writer; with P shards a
// failed segment degrades only the lane that owns it.
func (ds *DynamicStore) Writer() *graph.ShardedWriter { return ds.w }

// Snapshot returns the current published version (O(1)).
func (ds *DynamicStore) Snapshot() *graph.Snapshot { return ds.w.Snapshot() }

// Shards returns the store's shard count (1 for the unsharded layout).
func (ds *DynamicStore) Shards() int { return ds.shards }

// SetCompactAtBytes adjusts the background compaction threshold; <= 0
// disables background compaction.
func (ds *DynamicStore) SetCompactAtBytes(n int64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.compactAtBytes = n
}

// LogStats reports the mutation log's current shape for monitoring. For
// sharded stores the numbers aggregate every segment.
func (ds *DynamicStore) LogStats() (records int, bytes int64, baseEpoch uint64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.log.Records(), ds.log.Size(), ds.log.BaseEpoch()
}

func (ds *DynamicStore) compactor() {
	defer ds.wg.Done()
	for {
		select {
		case <-ds.done:
			return
		case <-ds.compactCh:
			ds.mu.Lock()
			need := !ds.closed && ds.compactAtBytes > 0 && ds.log.Size() >= ds.compactAtBytes
			ds.mu.Unlock()
			if need {
				// Best-effort: a failed background compaction leaves the
				// log growing; the next publish re-nudges.
				_ = ds.Compact()
			}
		}
	}
}

// Compact folds the mutation log into the base image: the current
// snapshot is saved atomically as the new base (with the same shard
// count), then — under the writer's publish barrier, so no batch can slip
// between — fresh empty logs bound to the new image replace the old ones.
// Publishes are briefly blocked during the save; readers never are.
// Crash-safe at every step: the image save and each log swap are
// temp-file-plus-rename, and stale old logs left by a crash in between
// are detected by their CRC binding on the next open — per segment in the
// sharded layout, since the P segment renames cannot be atomic together.
func (ds *DynamicStore) Compact() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return fmt.Errorf("storage: dynamic store %s is closed", ds.basePath)
	}
	err := ds.w.Barrier(^uint64(0), func(cur *graph.Snapshot, _ []graph.Delta) (graph.WAL, error) {
		if err := SaveShardedFS(ds.fsys, ds.basePath, cur.Graph(), ds.shards); err != nil {
			return nil, err
		}
		newCRC, err := baseImageCRC(ds.fsys, ds.basePath)
		if err != nil {
			return nil, err
		}
		if ds.shards > 1 {
			tmpBase := ds.basePath + ".compact"
			nl, err := CreateShardedLogFS(ds.fsys, tmpBase, newCRC, cur.Epoch(), ds.shards)
			if err != nil {
				return nil, err
			}
			if err := nl.renameSegmentsInto(ds.basePath); err != nil {
				nl.Close()
				nl.removeSegments()
				return nil, err
			}
			ds.log.Close()
			ds.log = nl
			return nl, nil
		}
		tmp := ds.logPath + ".compact"
		nl, err := CreateLogFS(ds.fsys, tmp, newCRC, cur.Epoch())
		if err != nil {
			return nil, err
		}
		if err := nl.renameLogInto(ds.logPath); err != nil {
			nl.Close()
			ds.fsys.Remove(tmp)
			return nil, err
		}
		ds.log.Close()
		ds.log = nl
		return nl, nil
	})
	return err
}

// Close publishes nothing, stops the background compactor, and releases
// the log. Pending unpublished writer ops are discarded (publish first if
// they matter); everything already published is durable.
func (ds *DynamicStore) Close() error {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return nil
	}
	ds.closed = true
	close(ds.done)
	ds.mu.Unlock()
	ds.wg.Wait()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.log.Close()
}
