package storage

import (
	"fmt"
	"os"
	"sync"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// DynamicStore is the durable backing of a mutating graph: a base .egoc
// image plus an append-only mutation-log sidecar (<base>.log), fronted by
// a graph.Writer. Opening replays the log onto the base image and resumes
// the epoch sequence; every publish is WAL-appended and fsynced before it
// becomes visible, so a crash at any point recovers exactly the last
// published snapshot. A background compactor folds the log into the base
// image (reusing Save's atomic temp-file/rename discipline) once the log
// outgrows CompactAtBytes.
//
// The log header carries the trailing CRC32 of the base image it extends.
// That binding makes crash recovery around compaction unambiguous: a
// crash between the base-image rename and the log swap leaves a new image
// with an old log, which the CRC mismatch identifies as stale — its
// batches are already folded into the image, so it is discarded and a
// fresh log is started at the epoch where it ended.
type DynamicStore struct {
	fsys     fault.FS
	basePath string
	logPath  string
	w        *graph.Writer

	mu     sync.Mutex // serializes Compact and Close; publishes take the writer's own lock
	log    *Log
	closed bool

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	// CompactAtBytes is the log size that triggers background compaction;
	// <= 0 disables the background compactor (Compact stays available).
	compactAtBytes int64
}

// DefaultCompactAtBytes is the log size at which OpenDynamic's background
// compactor folds the log into the base image.
const DefaultCompactAtBytes = 4 << 20

// CreateDynamic initializes a dynamic store at basePath from g: the base
// image is saved atomically, an empty mutation log is created beside it,
// and the opened store is returned. Fails if basePath already exists.
func CreateDynamic(basePath string, g *graph.Graph) (*DynamicStore, error) {
	return CreateDynamicFS(fault.OS{}, basePath, g)
}

// CreateDynamicFS is CreateDynamic through an explicit filesystem seam.
func CreateDynamicFS(fsys fault.FS, basePath string, g *graph.Graph) (*DynamicStore, error) {
	if _, err := fsys.Stat(basePath); err == nil {
		return nil, fmt.Errorf("storage: %s already exists", basePath)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if err := SaveFS(fsys, basePath, g); err != nil {
		return nil, err
	}
	return OpenDynamicFS(fsys, basePath)
}

// OpenDynamic opens the dynamic store at basePath: the base image is
// materialized, the sidecar log (if any) is replayed onto it — truncating
// a torn tail from a crashed append, discarding a stale log from a
// crashed compaction — and a Writer resumes at the recovered epoch. The
// returned store's background compactor is active with the default
// threshold; tune it with SetCompactAtBytes.
func OpenDynamic(basePath string) (*DynamicStore, error) {
	return OpenDynamicFS(fault.OS{}, basePath)
}

// OpenDynamicFS is OpenDynamic through an explicit filesystem seam: the
// chaos harness opens stores over a fault.Injector to drive scripted
// crash, torn-write and errno faults through every recovery path.
func OpenDynamicFS(fsys fault.FS, basePath string) (*DynamicStore, error) {
	g, err := LoadFS(fsys, basePath)
	if err != nil {
		return nil, err
	}
	baseCRC, err := baseImageCRC(fsys, basePath)
	if err != nil {
		return nil, err
	}
	logPath := basePath + ".log"

	var log *Log
	lastEpoch := uint64(0)
	switch _, statErr := fsys.Stat(logPath); {
	case os.IsNotExist(statErr):
		if log, err = CreateLogFS(fsys, logPath, baseCRC, 0); err != nil {
			return nil, err
		}
	case statErr != nil:
		return nil, statErr
	default:
		log, err = OpenLogFS(fsys, logPath, baseCRC, func(d graph.Delta) error {
			for _, op := range d.Ops {
				if err := graph.ApplyOp(g, op); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			// A CRC-binding mismatch means a compaction crashed after
			// renaming the new base image but before swapping the log: the
			// old log's batches are already folded into the image. Discard
			// it, but resume the epoch sequence past its last record.
			staleCRC, staleLast, scanErr := logBaseCRCFS(fsys, logPath)
			if scanErr != nil || staleCRC == baseCRC {
				return nil, err
			}
			if log, err = CreateLogFS(fsys, logPath, baseCRC, staleLast); err != nil {
				return nil, err
			}
		}
		lastEpoch = log.LastEpoch()
	}

	ds := &DynamicStore{
		fsys:           fsys,
		basePath:       basePath,
		logPath:        logPath,
		log:            log,
		compactCh:      make(chan struct{}, 1),
		done:           make(chan struct{}),
		compactAtBytes: DefaultCompactAtBytes,
	}
	ds.w = graph.NewWriterAt(g, lastEpoch)
	ds.w.SetWAL(log)
	// Nudge the compactor after every publish; the send never blocks the
	// publish path (the channel holds one pending nudge).
	ds.w.Subscribe(func(*graph.Snapshot, graph.Delta) {
		select {
		case ds.compactCh <- struct{}{}:
		default:
		}
	})
	ds.wg.Add(1)
	go ds.compactor()
	return ds, nil
}

// Writer returns the store's single mutation path. Batches published
// through it are durable before they are visible.
func (ds *DynamicStore) Writer() *graph.Writer { return ds.w }

// Snapshot returns the current published version (O(1)).
func (ds *DynamicStore) Snapshot() *graph.Snapshot { return ds.w.Snapshot() }

// SetCompactAtBytes adjusts the background compaction threshold; <= 0
// disables background compaction.
func (ds *DynamicStore) SetCompactAtBytes(n int64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.compactAtBytes = n
}

// LogStats reports the mutation log's current shape for monitoring.
func (ds *DynamicStore) LogStats() (records int, bytes int64, baseEpoch uint64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.log.Records(), ds.log.Size(), ds.log.BaseEpoch()
}

func (ds *DynamicStore) compactor() {
	defer ds.wg.Done()
	for {
		select {
		case <-ds.done:
			return
		case <-ds.compactCh:
			ds.mu.Lock()
			need := !ds.closed && ds.compactAtBytes > 0 && ds.log.Size() >= ds.compactAtBytes
			ds.mu.Unlock()
			if need {
				// Best-effort: a failed background compaction leaves the
				// log growing; the next publish re-nudges.
				_ = ds.Compact()
			}
		}
	}
}

// Compact folds the mutation log into the base image: the current
// snapshot is saved atomically as the new base, then — under the writer's
// publish barrier, so no batch can slip between — a fresh empty log bound
// to the new image replaces the old one. Publishes are briefly blocked
// during the save; readers never are. Crash-safe at every step: both the
// image save and the log swap are temp-file-plus-rename, and a stale
// old log left by a crash in between is detected by its CRC binding on
// the next open.
func (ds *DynamicStore) Compact() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return fmt.Errorf("storage: dynamic store %s is closed", ds.basePath)
	}
	err := ds.w.Barrier(^uint64(0), func(cur *graph.Snapshot, _ []graph.Delta) (graph.WAL, error) {
		if err := SaveFS(ds.fsys, ds.basePath, cur.Graph()); err != nil {
			return nil, err
		}
		newCRC, err := baseImageCRC(ds.fsys, ds.basePath)
		if err != nil {
			return nil, err
		}
		tmp := ds.logPath + ".compact"
		nl, err := CreateLogFS(ds.fsys, tmp, newCRC, cur.Epoch())
		if err != nil {
			return nil, err
		}
		if err := nl.renameLogInto(ds.logPath); err != nil {
			nl.Close()
			ds.fsys.Remove(tmp)
			return nil, err
		}
		ds.log.Close()
		ds.log = nl
		return nl, nil
	})
	return err
}

// Close publishes nothing, stops the background compactor, and releases
// the log. Pending unpublished writer ops are discarded (publish first if
// they matter); everything already published is durable.
func (ds *DynamicStore) Close() error {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return nil
	}
	ds.closed = true
	close(ds.done)
	ds.mu.Unlock()
	ds.wg.Wait()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.log.Close()
}
