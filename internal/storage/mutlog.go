package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// The mutation log is the durability half of the dynamic store: an
// append-only sidecar segment next to a base .egoc image. Each record is
// one published Writer batch, framed as
//
//	[u32 payload length][payload][u32 CRC32(payload)]
//
// with a payload of
//
//	u64 epoch, u32 op count, then per op:
//	u8 kind, u32 A, u32 B, str16 key, str16 val
//
// after an 18-byte header: the 6-byte magic "EGOLv1", the u32 trailing
// CRC of the base image this log extends (binding the pair so a log is
// never replayed onto the wrong base), and the u64 base epoch.
//
// Records are fsynced before the writer publishes the batch in memory, so
// the log always covers every published epoch. Replay-on-open therefore
// recovers exactly the last published snapshot; a torn tail (partial
// frame or CRC mismatch on the final record — the signature of a crash
// mid-append) is silently truncated, while structural damage to the
// header or to a CRC-valid record yields a *CorruptFileError like any
// other unsafe file.

// LogMagic identifies egocensus mutation-log files (format version 1).
var LogMagic = [6]byte{'E', 'G', 'O', 'L', 'v', '1'}

const (
	logHeaderSize = 6 + 4 + 8
	// maxLogRecordBytes bounds a single record's payload so a torn or
	// garbage length prefix cannot drive allocations past sanity.
	maxLogRecordBytes = 1 << 28
)

// Log is an open mutation-log segment positioned for appending. It
// implements graph.WAL, so it plugs directly into graph.Writer.SetWAL.
type Log struct {
	fsys      fault.FS
	path      string
	f         fault.File
	baseCRC   uint32
	baseEpoch uint64

	// mu guards the mutable tail state: appends run under the graph
	// writer's publish lock, but monitoring reads (Size, Records,
	// LastEpoch) arrive from other goroutines.
	mu        sync.Mutex
	lastEpoch uint64
	records   int
	size      int64
	broken    error // sticky failure after an unrecoverable partial append
	buf       []byte
}

// CreateLog creates (or truncates) a mutation log at path extending a
// base image with trailing CRC baseCRC, whose state is epoch baseEpoch.
// The header is fsynced before returning.
func CreateLog(path string, baseCRC uint32, baseEpoch uint64) (*Log, error) {
	return CreateLogFS(fault.OS{}, path, baseCRC, baseEpoch)
}

// CreateLogFS is CreateLog through an explicit filesystem seam.
func CreateLogFS(fsys fault.FS, path string, baseCRC uint32, baseEpoch uint64) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{fsys: fsys, path: path, f: f, baseCRC: baseCRC, baseEpoch: baseEpoch, lastEpoch: baseEpoch}
	var hdr [logHeaderSize]byte
	copy(hdr[:], LogMagic[:])
	binary.LittleEndian.PutUint32(hdr[6:], baseCRC)
	binary.LittleEndian.PutUint64(hdr[10:], baseEpoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}
	l.size = logHeaderSize
	return l, nil
}

// OpenLog opens an existing mutation log, validates its header against
// the expected base-image CRC, replays every intact record through apply
// (oldest first), truncates any torn tail, and returns the log positioned
// for appending.
//
// A missing file is not an error here — callers decide whether to create
// one. A header that is short, has bad magic, or binds a different base
// image yields *CorruptFileError (the dynamic store intercepts the
// stale-pair case separately via LogBaseCRC). A CRC-valid record that
// fails to decode, or whose epoch breaks the contiguous sequence, is also
// *CorruptFileError: that is structural damage, not a crash artifact.
func OpenLog(path string, baseCRC uint32, apply func(graph.Delta) error) (*Log, error) {
	return OpenLogFS(fault.OS{}, path, baseCRC, apply)
}

// OpenLogFS is OpenLog through an explicit filesystem seam.
func OpenLogFS(fsys fault.FS, path string, baseCRC uint32, apply func(graph.Delta) error) (*Log, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	corrupt := func(format string, args ...any) error {
		return &CorruptFileError{Path: path, Detail: fmt.Sprintf(format, args...)}
	}
	if len(data) < logHeaderSize {
		return nil, corrupt("mutation log shorter than its %d-byte header (%d bytes)", logHeaderSize, len(data))
	}
	if string(data[:6]) != string(LogMagic[:]) {
		return nil, corrupt("bad mutation-log magic %q", data[:6])
	}
	gotCRC := binary.LittleEndian.Uint32(data[6:])
	if gotCRC != baseCRC {
		return nil, corrupt("mutation log extends base image with CRC %08x, not %08x", gotCRC, baseCRC)
	}
	baseEpoch := binary.LittleEndian.Uint64(data[10:])

	deltas, validLen, err := scanLogRecords(path, data[logHeaderSize:], baseEpoch)
	if err != nil {
		return nil, err
	}
	lastEpoch := baseEpoch
	for _, d := range deltas {
		if apply != nil {
			if err := apply(d); err != nil {
				return nil, corrupt("replaying epoch %d: %v", d.Epoch, err)
			}
		}
		lastEpoch = d.Epoch
	}

	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	size := int64(logHeaderSize) + int64(validLen)
	if size < int64(len(data)) {
		// Torn tail from a crash mid-append: drop it so the next append
		// starts at a record boundary.
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{
		fsys:      fsys,
		path:      path,
		f:         f,
		baseCRC:   baseCRC,
		baseEpoch: baseEpoch,
		lastEpoch: lastEpoch,
		records:   len(deltas),
		size:      size,
	}, nil
}

// LogBaseCRC reads just the base-image binding of the log at path, so the
// dynamic store can detect a stale log (left behind by a crash between a
// compaction's base-image save and its log swap) without replaying it.
// It also scans for the last intact epoch, which bounds the epoch
// sequence a fresh log must resume from.
func LogBaseCRC(path string) (baseCRC uint32, lastEpoch uint64, err error) {
	return logBaseCRCFS(fault.OS{}, path)
}

func logBaseCRCFS(fsys fault.FS, path string) (baseCRC uint32, lastEpoch uint64, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < logHeaderSize || string(data[:6]) != string(LogMagic[:]) {
		return 0, 0, &CorruptFileError{Path: path, Detail: "mutation log header unreadable"}
	}
	baseCRC = binary.LittleEndian.Uint32(data[6:])
	baseEpoch := binary.LittleEndian.Uint64(data[10:])
	deltas, _, err := scanLogRecords(path, data[logHeaderSize:], baseEpoch)
	if err != nil {
		return 0, 0, err
	}
	lastEpoch = baseEpoch
	if n := len(deltas); n > 0 {
		lastEpoch = deltas[n-1].Epoch
	}
	return baseCRC, lastEpoch, nil
}

// scanLogRecords parses the record region, returning the decoded deltas
// and the byte length of the valid prefix. An incomplete final frame or a
// final-frame CRC mismatch ends the scan silently (torn tail); a frame
// that passes its CRC but fails to decode is a *CorruptFileError.
func scanLogRecords(path string, rec []byte, baseEpoch uint64) ([]graph.Delta, int, error) {
	var deltas []graph.Delta
	pos := 0
	prevEpoch := baseEpoch
	for {
		if len(rec)-pos < 4 {
			break // torn or clean end
		}
		plen := int(binary.LittleEndian.Uint32(rec[pos:]))
		if plen > maxLogRecordBytes || len(rec)-pos-4 < plen+4 {
			break // torn tail: length prefix written before the payload survived
		}
		payload := rec[pos+4 : pos+4+plen]
		wantCRC := binary.LittleEndian.Uint32(rec[pos+4+plen:])
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break // torn tail: payload bytes incomplete on disk
		}
		d, err := decodeLogPayload(payload)
		if err != nil {
			return nil, 0, &CorruptFileError{Path: path, Detail: fmt.Sprintf("record %d: %v", len(deltas), err)}
		}
		if d.Epoch != prevEpoch+1 {
			return nil, 0, &CorruptFileError{Path: path, Detail: fmt.Sprintf("record %d: epoch %d breaks sequence after %d", len(deltas), d.Epoch, prevEpoch)}
		}
		prevEpoch = d.Epoch
		deltas = append(deltas, d)
		pos += 4 + plen + 4
	}
	return deltas, pos, nil
}

func decodeLogPayload(p []byte) (graph.Delta, error) {
	var d graph.Delta
	if len(p) < 12 {
		return d, fmt.Errorf("payload shorter than its %d-byte preamble", 12)
	}
	d.Epoch = binary.LittleEndian.Uint64(p)
	count := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	// Each op occupies at least 13 bytes, so a count beyond len/13 cannot
	// be satisfied by the payload.
	if count < 0 || count > len(p)/13 {
		return d, fmt.Errorf("op count %d exceeds payload capacity", count)
	}
	d.Ops = make([]graph.Op, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 9 {
			return d, fmt.Errorf("op %d: truncated fixed fields", i)
		}
		op := graph.Op{
			Kind: graph.OpKind(p[0]),
			A:    int32(binary.LittleEndian.Uint32(p[1:])),
			B:    int32(binary.LittleEndian.Uint32(p[5:])),
		}
		if op.Kind < graph.OpAddNode || op.Kind > graph.OpSetEdgeAttr {
			return d, fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
		p = p[9:]
		var err error
		if op.Key, p, err = takeStr16(p); err != nil {
			return d, fmt.Errorf("op %d key: %w", i, err)
		}
		if op.Val, p, err = takeStr16(p); err != nil {
			return d, fmt.Errorf("op %d val: %w", i, err)
		}
		d.Ops = append(d.Ops, op)
	}
	if len(p) != 0 {
		return d, fmt.Errorf("%d trailing bytes after %d ops", len(p), count)
	}
	return d, nil
}

func takeStr16(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("truncated length")
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p)-2 < n {
		return "", nil, fmt.Errorf("string of %d bytes overruns payload", n)
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// AppendBatch encodes ops as the next epoch's record, appends it, and
// fsyncs before returning — this is the graph.WAL hook, called by
// graph.Writer.Publish before the batch becomes visible in memory. On a
// write failure the partial frame is truncated away (and the file offset
// rewound to the record boundary, so a retried append never leaves a
// zero-filled hole behind a torn prefix); if even that fails the log
// marks itself broken and refuses further appends rather than risk a
// malformed middle.
//
// Failures are classified for the writer's retry policy: conditions that
// can clear (ENOSPC and friends) come back as *TransientError once the
// log is restored to a clean record boundary, everything else — including
// any failure to restore the boundary — is permanent.
func (l *Log) AppendBatch(ops []graph.Op) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("storage: mutation log %s unusable after write failure: %w", l.path, l.broken)
	}
	epoch := l.lastEpoch + 1
	l.buf = appendLogRecord(l.buf[:0], epoch, ops)
	if _, err := l.f.Write(l.buf); err != nil {
		return l.rewind("wal append", err)
	}
	if err := l.f.Sync(); err != nil {
		return l.rewind("wal sync", err)
	}
	l.lastEpoch = epoch
	l.records++
	l.size += int64(len(l.buf))
	return nil
}

// rewind restores the log to its last durable record boundary after a
// failed append: the partial frame is truncated away and the write offset
// rewound. Success makes the original failure safely retryable (returned
// classified); failure marks the log broken and returns a permanent
// error.
func (l *Log) rewind(op string, cause error) error {
	if err := l.f.Truncate(l.size); err != nil {
		l.broken = err
		return fmt.Errorf("storage: %s failed (%v) and the partial frame could not be truncated: %w", op, cause, err)
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.broken = err
		return fmt.Errorf("storage: %s failed (%v) and the log offset could not be rewound: %w", op, cause, err)
	}
	return classifyIO(op, l.path, cause)
}

// appendLogRecord frames one batch: length, payload, payload CRC.
func appendLogRecord(b []byte, epoch uint64, ops []graph.Op) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length placeholder
	p0 := len(b)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for _, op := range ops {
		b = append(b, byte(op.Kind))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.A))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.B))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(op.Key)))
		b = append(b, op.Key...)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(op.Val)))
		b = append(b, op.Val...)
	}
	payload := b[p0:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
}

// BaseEpoch returns the epoch of the base image this log extends.
func (l *Log) BaseEpoch() uint64 { return l.baseEpoch }

// LastEpoch returns the epoch of the newest appended record (BaseEpoch
// when the log is empty).
func (l *Log) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastEpoch
}

// Records returns the number of intact records.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Size returns the log's on-disk size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close releases the log's file handle.
func (l *Log) Close() error { return l.f.Close() }

// baseImageCRC reads the trailing CRC32 of a .egoc base image, the value
// a sidecar log's header must match.
func baseImageCRC(fsys fault.FS, path string) (uint32, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if fi.Size() < 4 {
		return 0, &CorruptFileError{Path: path, Detail: "file too small to carry a trailing CRC"}
	}
	var b [4]byte
	if _, err := f.ReadAt(b[:], fi.Size()-4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// renameLogInto atomically replaces dst with the log's current file: the
// log must have been created at a temporary sibling path. After the
// rename the open handle keeps appending to the same inode, now visible
// at dst.
func (l *Log) renameLogInto(dst string) error {
	if err := l.fsys.Rename(l.path, dst); err != nil {
		return err
	}
	l.path = dst
	syncDir(l.fsys, filepath.Dir(dst))
	return nil
}
