package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// Sharded mutation logs: a P-shard dynamic store persists each published
// epoch as up to P independent segment records, one per shard that had
// ops, in files <base>.log.0 … <base>.log.P-1. Each segment is framed
// like the v1 log —
//
//	[u32 payload length][payload][u32 CRC32(payload)]
//
// — but with a v2 payload that makes cross-segment reassembly and torn
// multi-segment appends detectable:
//
//	u64 epoch, u32 totalOps (whole epoch, all segments),
//	u32 count (this segment), then per op:
//	u32 batch index, u8 kind, u32 A, u32 B, str16 key, str16 val
//
// after a 26-byte header: the 6-byte magic "EGOLv2", the u32 trailing CRC
// of the base image (the same binding the v1 log uses), the u64 base
// epoch, and u32 shard / u32 shard-count.
//
// The writer fsyncs every segment of an epoch before publishing it, and a
// crash between segment fsyncs leaves the epoch incomplete in at least
// one segment. Replay detects that by summing the per-segment counts
// against totalOps: an incomplete newest epoch is a torn append — it was
// never published, so its records are truncated from every segment — while
// an incomplete older epoch is structural corruption. Within a segment,
// epochs are strictly increasing but may skip (a shard with no ops in an
// epoch writes nothing; a degraded shard is routed around entirely).

// ShardLogMagic identifies sharded mutation-log segments (format v2).
var ShardLogMagic = [6]byte{'E', 'G', 'O', 'L', 'v', '2'}

const segHeaderSize = 6 + 4 + 8 + 4 + 4

// segPath returns shard i's segment path for a store at basePath.
func segPath(basePath string, shard int) string {
	return fmt.Sprintf("%s.log.%d", basePath, shard)
}

// logSegment is one shard's open segment, positioned for appending.
type logSegment struct {
	fsys      fault.FS
	path      string
	f         fault.File
	shard     int
	baseEpoch uint64
	size      int64
	records   int
	broken    error
	buf       []byte
}

// ShardedLog is the set of per-shard segments of one sharded store. It
// implements graph.ShardWAL: AppendShardBatch persists one epoch across
// the segments in parallel, restoring every segment's record boundary if
// any of them fails so the epoch is retryable, and identifying the
// failing shard so the writer degrades only that lane.
type ShardedLog struct {
	fsys     fault.FS
	basePath string
	baseCRC  uint32
	shards   int

	mu        sync.Mutex
	segs      []*logSegment
	lastEpoch uint64
	records   int
	size      int64
}

// CreateShardedLog creates fresh (truncated) segments for every shard.
func CreateShardedLog(basePath string, baseCRC uint32, baseEpoch uint64, shards int) (*ShardedLog, error) {
	return CreateShardedLogFS(fault.OS{}, basePath, baseCRC, baseEpoch, shards)
}

// CreateShardedLogFS is CreateShardedLog through a filesystem seam. The
// segment files land at basePath+".log.<shard>"; compaction creates them
// under a temporary basePath and renames them into place.
func CreateShardedLogFS(fsys fault.FS, basePath string, baseCRC uint32, baseEpoch uint64, shards int) (*ShardedLog, error) {
	l := &ShardedLog{fsys: fsys, basePath: basePath, baseCRC: baseCRC, shards: shards, lastEpoch: baseEpoch}
	for s := 0; s < shards; s++ {
		seg, err := createSegment(fsys, segPath(basePath, s), baseCRC, baseEpoch, s, shards)
		if err != nil {
			l.Close()
			return nil, err
		}
		l.segs = append(l.segs, seg)
		l.size += seg.size
	}
	return l, nil
}

func createSegment(fsys fault.FS, path string, baseCRC uint32, baseEpoch uint64, shard, shards int) (*logSegment, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:], ShardLogMagic[:])
	binary.LittleEndian.PutUint32(hdr[6:], baseCRC)
	binary.LittleEndian.PutUint64(hdr[10:], baseEpoch)
	binary.LittleEndian.PutUint32(hdr[18:], uint32(shard))
	binary.LittleEndian.PutUint32(hdr[22:], uint32(shards))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}
	return &logSegment{fsys: fsys, path: path, f: f, shard: shard, baseEpoch: baseEpoch, size: segHeaderSize}, nil
}

// segRecord is one decoded segment record plus its frame's byte range.
type segRecord struct {
	epoch    uint64
	totalOps int
	index    []uint32
	ops      []graph.Op
	start    int // offset of the frame within the record region
	end      int
}

// scanSegmentRecords parses a segment's record region with the same
// torn-tail semantics as the v1 scan: an incomplete or CRC-failing final
// frame ends the scan silently; structural damage in a CRC-valid record
// is corruption. Epochs must be strictly increasing and past the
// segment's base epoch, but may skip.
func scanSegmentRecords(path string, rec []byte, baseEpoch uint64) ([]segRecord, int, error) {
	var out []segRecord
	pos := 0
	prev := baseEpoch
	for {
		if len(rec)-pos < 4 {
			break
		}
		plen := int(binary.LittleEndian.Uint32(rec[pos:]))
		if plen > maxLogRecordBytes || len(rec)-pos-4 < plen+4 {
			break
		}
		payload := rec[pos+4 : pos+4+plen]
		wantCRC := binary.LittleEndian.Uint32(rec[pos+4+plen:])
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		r, err := decodeSegPayload(payload)
		if err != nil {
			return nil, 0, &CorruptFileError{Path: path, Detail: fmt.Sprintf("record %d: %v", len(out), err)}
		}
		if r.epoch <= prev {
			return nil, 0, &CorruptFileError{Path: path, Detail: fmt.Sprintf("record %d: epoch %d not after %d", len(out), r.epoch, prev)}
		}
		prev = r.epoch
		r.start, r.end = pos, pos+4+plen+4
		out = append(out, r)
		pos = r.end
	}
	return out, pos, nil
}

func decodeSegPayload(p []byte) (segRecord, error) {
	var r segRecord
	if len(p) < 16 {
		return r, fmt.Errorf("payload shorter than its 16-byte preamble")
	}
	r.epoch = binary.LittleEndian.Uint64(p)
	r.totalOps = int(binary.LittleEndian.Uint32(p[8:]))
	count := int(binary.LittleEndian.Uint32(p[12:]))
	p = p[16:]
	// Each op occupies at least 17 bytes (index + fixed op fields + two
	// empty strings), bounding count by the payload size.
	if count < 0 || count > len(p)/17 {
		return r, fmt.Errorf("op count %d exceeds payload capacity", count)
	}
	if r.totalOps < count {
		return r, fmt.Errorf("segment count %d exceeds epoch total %d", count, r.totalOps)
	}
	r.index = make([]uint32, 0, count)
	r.ops = make([]graph.Op, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 13 {
			return r, fmt.Errorf("op %d: truncated fixed fields", i)
		}
		idx := binary.LittleEndian.Uint32(p)
		if int(idx) >= r.totalOps {
			return r, fmt.Errorf("op %d: batch index %d out of range [0,%d)", i, idx, r.totalOps)
		}
		op := graph.Op{
			Kind: graph.OpKind(p[4]),
			A:    int32(binary.LittleEndian.Uint32(p[5:])),
			B:    int32(binary.LittleEndian.Uint32(p[9:])),
		}
		if op.Kind < graph.OpAddNode || op.Kind > graph.OpSetEdgeAttr {
			return r, fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
		p = p[13:]
		var err error
		if op.Key, p, err = takeStr16(p); err != nil {
			return r, fmt.Errorf("op %d key: %w", i, err)
		}
		if op.Val, p, err = takeStr16(p); err != nil {
			return r, fmt.Errorf("op %d val: %w", i, err)
		}
		r.index = append(r.index, idx)
		r.ops = append(r.ops, op)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%d trailing bytes after %d ops", len(p), count)
	}
	return r, nil
}

// segScan is one segment's open-time scan result.
type segScan struct {
	shard     int
	state     int // segGood, segStale, segMissing
	baseEpoch uint64
	lastSeen  uint64 // newest epoch seen (stale segments too)
	records   []segRecord
	validLen  int // valid record-region bytes (good segments)
	data      []byte
}

const (
	segGood = iota
	segStale
	segMissing
)

// OpenShardedLog opens the segment set of a sharded store, replaying
// every complete epoch through apply in publish order.
func OpenShardedLog(basePath string, baseCRC uint32, shards int, apply func(graph.Delta) error) (*ShardedLog, error) {
	return OpenShardedLogFS(fault.OS{}, basePath, baseCRC, shards, apply)
}

// OpenShardedLogFS is OpenShardedLog through a filesystem seam. Recovery
// semantics, per segment and across them:
//
//   - A torn final frame in a segment (crash mid-append) is truncated.
//   - The newest epoch incomplete across segments (crash between segment
//     fsyncs — the op counts don't sum to its recorded total) is a torn
//     multi-segment append: never published, its records are truncated
//     from every segment. An incomplete older epoch is corruption.
//   - A segment whose header binds a different base image is stale (a
//     compaction crashed between the image rename and the segment swap):
//     its batches are already folded into the image, so it is discarded
//     and recreated empty, with the epoch sequence resuming past
//     everything seen.
//   - A missing segment file is recreated empty the same way.
func OpenShardedLogFS(fsys fault.FS, basePath string, baseCRC uint32, shards int, apply func(graph.Delta) error) (*ShardedLog, error) {
	scans := make([]*segScan, shards)
	var readErr error
	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(shards)
	// Parallel replay-on-open, phase one: every segment is read, CRC-checked
	// and decoded concurrently; only the cross-segment merge is sequential.
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			scan, err := scanSegmentFile(fsys, segPath(basePath, s), baseCRC, s)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && readErr == nil {
				readErr = err
			}
			scans[s] = scan
		}(s)
	}
	wg.Wait()
	if readErr != nil {
		return nil, readErr
	}

	// Merge the good segments' records into per-epoch batches.
	type epochParts struct {
		totalOps int
		have     int
		recs     []*segRecord
		shards   []int
	}
	byEpoch := map[uint64]*epochParts{}
	minGoodBase := uint64(0)
	haveGood := false
	resume := uint64(0)
	for _, sc := range scans {
		if sc.state != segGood {
			// A stale segment's epoch watermark survives even though its
			// records are discarded: after a compaction crash with no
			// segment swapped yet, it is the only evidence of the epoch
			// the new image already folded in.
			if sc.lastSeen > resume {
				resume = sc.lastSeen
			}
			continue
		}
		// Good segments contribute only their base epoch here; their
		// replayed epochs raise resume below, AFTER a torn newest epoch
		// (complete in this segment, torn in a sibling) is dropped.
		if !haveGood || sc.baseEpoch < minGoodBase {
			minGoodBase = sc.baseEpoch
		}
		haveGood = true
		if sc.baseEpoch > resume {
			resume = sc.baseEpoch
		}
		for i := range sc.records {
			r := &sc.records[i]
			ep := byEpoch[r.epoch]
			if ep == nil {
				ep = &epochParts{totalOps: r.totalOps}
				byEpoch[r.epoch] = ep
			} else if ep.totalOps != r.totalOps {
				return nil, &CorruptFileError{Path: segPath(basePath, sc.shard),
					Detail: fmt.Sprintf("epoch %d records disagree on total op count (%d vs %d)", r.epoch, r.totalOps, ep.totalOps)}
			}
			ep.have += len(r.ops)
			ep.recs = append(ep.recs, r)
			ep.shards = append(ep.shards, sc.shard)
		}
	}
	epochs := make([]uint64, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })

	// Drop a torn newest epoch; reject holes anywhere else.
	if n := len(epochs); n > 0 {
		if last := byEpoch[epochs[n-1]]; last.have < last.totalOps {
			for i, r := range last.recs {
				sc := scans[last.shards[i]]
				if r.end != sc.validLen {
					return nil, &CorruptFileError{Path: segPath(basePath, last.shards[i]),
						Detail: fmt.Sprintf("incomplete epoch %d is not the segment tail", epochs[n-1])}
				}
				sc.validLen = r.start
				sc.records = sc.records[:len(sc.records)-1]
			}
			delete(byEpoch, epochs[n-1])
			epochs = epochs[:n-1]
		}
	}
	for i, e := range epochs {
		ep := byEpoch[e]
		if ep.have != ep.totalOps {
			return nil, &CorruptFileError{Path: basePath + ".log.*",
				Detail: fmt.Sprintf("epoch %d holds %d of %d ops", e, ep.have, ep.totalOps)}
		}
		if want := minGoodBase + 1 + uint64(i); e != want {
			return nil, &CorruptFileError{Path: basePath + ".log.*",
				Detail: fmt.Sprintf("epoch %d breaks sequence (expected %d)", e, want)}
		}
		if e > resume {
			resume = e
		}
	}

	// Replay complete epochs in order, reassembling publish order from the
	// batch indexes.
	for _, e := range epochs {
		ep := byEpoch[e]
		ops := make([]graph.Op, ep.totalOps)
		seen := make([]bool, ep.totalOps)
		for _, r := range ep.recs {
			for i, op := range r.ops {
				idx := r.index[i]
				if seen[idx] {
					return nil, &CorruptFileError{Path: basePath + ".log.*",
						Detail: fmt.Sprintf("epoch %d: duplicate batch index %d", e, idx)}
				}
				seen[idx] = true
				ops[idx] = op
			}
		}
		if apply != nil {
			if err := apply(graph.Delta{Epoch: e, Ops: ops}); err != nil {
				return nil, &CorruptFileError{Path: basePath + ".log.*", Detail: fmt.Sprintf("replaying epoch %d: %v", e, err)}
			}
		}
	}

	// Open good segments for appending (truncating torn tails), recreate
	// stale and missing ones bound to the current image at the resume
	// epoch.
	l := &ShardedLog{fsys: fsys, basePath: basePath, baseCRC: baseCRC, shards: shards, lastEpoch: resume}
	for _, sc := range scans {
		var seg *logSegment
		var err error
		path := segPath(basePath, sc.shard)
		if sc.state == segGood {
			seg, err = openSegmentTail(fsys, path, sc)
		} else {
			seg, err = createSegment(fsys, path, baseCRC, resume, sc.shard, shards)
		}
		if err != nil {
			l.Close()
			return nil, err
		}
		l.segs = append(l.segs, seg)
		l.records += seg.records
		l.size += seg.size
	}
	return l, nil
}

// scanSegmentFile reads and classifies one segment file.
func scanSegmentFile(fsys fault.FS, path string, baseCRC uint32, shard int) (*segScan, error) {
	sc := &segScan{shard: shard}
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		sc.state = segMissing
		return sc, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) < segHeaderSize || string(data[:6]) != string(ShardLogMagic[:]) {
		return nil, &CorruptFileError{Path: path, Detail: "segment header unreadable"}
	}
	gotCRC := binary.LittleEndian.Uint32(data[6:])
	sc.baseEpoch = binary.LittleEndian.Uint64(data[10:])
	if got := int(binary.LittleEndian.Uint32(data[18:])); got != shard {
		return nil, &CorruptFileError{Path: path, Detail: fmt.Sprintf("segment claims shard %d, expected %d", got, shard)}
	}
	records, validLen, err := scanSegmentRecords(path, data[segHeaderSize:], sc.baseEpoch)
	if err != nil {
		return nil, err
	}
	sc.records, sc.validLen, sc.data = records, validLen, data
	sc.lastSeen = sc.baseEpoch
	if n := len(records); n > 0 {
		sc.lastSeen = records[n-1].epoch
	}
	if gotCRC != baseCRC {
		sc.state = segStale
		sc.records = nil
		return sc, nil
	}
	sc.state = segGood
	return sc, nil
}

// openSegmentTail opens a good segment for appending, truncating
// everything past its valid record region.
func openSegmentTail(fsys fault.FS, path string, sc *segScan) (*logSegment, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	size := int64(segHeaderSize) + int64(sc.validLen)
	if size < int64(len(sc.data)) {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &logSegment{
		fsys:      fsys,
		path:      path,
		f:         f,
		shard:     sc.shard,
		baseEpoch: sc.baseEpoch,
		size:      size,
		records:   len(sc.records),
	}, nil
}

// shardSegmentError wires a segment failure to the writer's per-shard
// degraded mode: graph.ShardedWriter extracts FailedShard and degrades
// only that lane. Transience classification passes through Unwrap.
type shardSegmentError struct {
	shard int
	err   error
}

func (e *shardSegmentError) Error() string {
	return fmt.Sprintf("storage: shard %d segment: %v", e.shard, e.err)
}
func (e *shardSegmentError) Unwrap() error    { return e.err }
func (e *shardSegmentError) FailedShard() int { return e.shard }

// AppendShardBatch implements graph.ShardWAL: one epoch's per-shard
// records are encoded, written and fsynced in parallel, and the epoch
// advances only if every segment append succeeds. On any failure every
// touched segment is rewound to its prior record boundary, so the whole
// epoch is retryable; the returned error carries the failing shard.
func (l *ShardedLog) AppendShardBatch(parts []graph.ShardBatch, totalOps int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range parts {
		if p.Shard < 0 || p.Shard >= len(l.segs) {
			return fmt.Errorf("storage: shard %d out of range [0,%d)", p.Shard, len(l.segs))
		}
		if seg := l.segs[p.Shard]; seg.broken != nil {
			return &shardSegmentError{shard: p.Shard, err: fmt.Errorf("segment unusable after write failure: %w", seg.broken)}
		}
	}
	epoch := l.lastEpoch + 1
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for i := range parts {
		go func(i int) {
			defer wg.Done()
			p := &parts[i]
			seg := l.segs[p.Shard]
			seg.buf = appendSegRecord(seg.buf[:0], epoch, totalOps, p.Index, p.Ops)
			if _, err := seg.f.Write(seg.buf); err != nil {
				errs[i] = err
				return
			}
			errs[i] = seg.f.Sync()
		}(i)
	}
	wg.Wait()

	failAt := -1
	for i, err := range errs {
		if err != nil {
			failAt = i
			break
		}
	}
	if failAt < 0 {
		l.lastEpoch = epoch
		for i := range parts {
			seg := l.segs[parts[i].Shard]
			seg.records++
			seg.size += int64(len(seg.buf))
			l.records++
			l.size += int64(len(seg.buf))
		}
		return nil
	}
	// Rewind every touched segment — including the ones that succeeded —
	// so a retry (or a routed-around publish) starts every segment at a
	// clean record boundary.
	for i := range parts {
		seg := l.segs[parts[i].Shard]
		if err := seg.rewind(); err != nil && errs[i] == nil {
			errs[i] = err
		}
	}
	shard := parts[failAt].Shard
	seg := l.segs[shard]
	if seg.broken != nil {
		return &shardSegmentError{shard: shard, err: fmt.Errorf("append failed (%v) and the boundary could not be restored: %w", errs[failAt], seg.broken)}
	}
	return &shardSegmentError{shard: shard, err: classifyIO("wal segment append", seg.path, errs[failAt])}
}

// rewind restores a segment to its last durable record boundary after a
// failed (or aborted) append. Failure marks the segment broken.
func (seg *logSegment) rewind() error {
	if err := seg.f.Truncate(seg.size); err != nil {
		seg.broken = err
		return err
	}
	if _, err := seg.f.Seek(seg.size, io.SeekStart); err != nil {
		seg.broken = err
		return err
	}
	return nil
}

// appendSegRecord frames one shard's slice of an epoch.
func appendSegRecord(b []byte, epoch uint64, totalOps int, index []uint32, ops []graph.Op) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length placeholder
	p0 := len(b)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(totalOps))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for i, op := range ops {
		b = binary.LittleEndian.AppendUint32(b, index[i])
		b = append(b, byte(op.Kind))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.A))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.B))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(op.Key)))
		b = append(b, op.Key...)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(op.Val)))
		b = append(b, op.Val...)
	}
	payload := b[p0:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
}

// AppendBatch implements the plain graph.WAL interface for completeness:
// the whole batch lands on segment 0 with identity indexes. The sharded
// writer always uses AppendShardBatch; this path exists so a ShardedLog
// can stand in anywhere a WAL is expected.
func (l *ShardedLog) AppendBatch(ops []graph.Op) error {
	index := make([]uint32, len(ops))
	for i := range index {
		index[i] = uint32(i)
	}
	return l.AppendShardBatch([]graph.ShardBatch{{Shard: 0, Index: index, Ops: ops}}, len(ops))
}

// renameSegmentsInto atomically moves every segment file to the segment
// paths of dst (the store base path), replacing what is there. Used by
// compaction: the segments must have been created under a temporary base
// path in the same directory. Renames happen shard by shard; a crash
// mid-way leaves a mix of old (stale, CRC-bound to the previous image)
// and new segments, which the next open resolves per segment.
func (l *ShardedLog) renameSegmentsInto(dst string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segs {
		to := segPath(dst, seg.shard)
		if err := l.fsys.Rename(seg.path, to); err != nil {
			return err
		}
		seg.path = to
	}
	l.basePath = dst
	syncDir(l.fsys, filepath.Dir(dst))
	return nil
}

// removeSegments deletes every segment file (cleanup of an abandoned
// compaction target).
func (l *ShardedLog) removeSegments() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segs {
		l.fsys.Remove(seg.path)
	}
}

// LastEpoch returns the newest appended epoch (the base epoch when all
// segments are empty).
func (l *ShardedLog) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastEpoch
}

// BaseEpoch returns the epoch the segment set resumes from: the minimum
// of the per-segment base epochs.
func (l *ShardedLog) BaseEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	base := uint64(0)
	for i, seg := range l.segs {
		if i == 0 || seg.baseEpoch < base {
			base = seg.baseEpoch
		}
	}
	return base
}

// Records returns the total intact record count across segments.
func (l *ShardedLog) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Size returns the combined on-disk size of every segment.
func (l *ShardedLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Shards returns the segment count.
func (l *ShardedLog) Shards() int { return l.shards }

// Close releases every segment's file handle.
func (l *ShardedLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	for _, seg := range l.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
