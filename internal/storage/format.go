// Package storage provides the disk-resident graph representation: a
// binary, seekable file format holding label dictionary, adjacency lists,
// edge table and attributes, with a CRC-checked header. The paper's
// prototype ran over a disk-based graph engine (Neo4j); this package plays
// that role for the Go reproduction. Save/Load materialize whole graphs;
// Store (store.go) serves adjacency lists on demand through a block cache
// without loading the graph into memory.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"path/filepath"
	"sync"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// Magic identifies egocensus graph files (format version 1).
var Magic = [6]byte{'E', 'G', 'O', 'C', 'v', '1'}

const flagDirected = 1

// shardShift positions the shard count in the header's upper Flags bits.
// Unsharded images write 0 there (the historical value), so a 1-shard
// store is byte-identical to the pre-sharding format and old images read
// back as shard count 1.
const shardShift = 16

// header is the fixed-size file header. All integers are little-endian.
type header struct {
	Flags     uint32
	NumNodes  uint64
	NumEdges  uint64
	NumLabels uint32

	LabelTableOff uint64
	NodeLabelOff  uint64
	AdjIndexOff   uint64
	AdjDataOff    uint64
	EdgeTableOff  uint64
	NodeAttrOff   uint64
	EdgeAttrOff   uint64
	CRCOff        uint64 // offset of the trailing CRC32 (== payload size)
}

const headerSize = 6 + 4 + 8 + 8 + 4 + 8*8

func (h *header) directed() bool { return h.Flags&flagDirected != 0 }

// shardCount decodes the image's shard count (1 when unsharded).
func (h *header) shardCount() int {
	if s := int(h.Flags >> shardShift); s > 1 {
		return s
	}
	return 1
}

// countingWriter tracks the number of bytes written and feeds the CRC.
type countingWriter struct {
	w   *bufio.Writer
	n   uint64
	crc uint32
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (cw *countingWriter) u16(v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

func (cw *countingWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

func (cw *countingWriter) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

func (cw *countingWriter) str16(s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("storage: string too long (%d bytes)", len(s))
	}
	if err := cw.u16(uint16(len(s))); err != nil {
		return err
	}
	_, err := cw.Write([]byte(s))
	return err
}

// Save writes g to path in the binary format. The write is atomic: the
// file is assembled in a temporary sibling, fsynced, and renamed over
// path, so a crash mid-save leaves either the old file or the new one —
// never a torn mixture.
func Save(path string, g *graph.Graph) error {
	return SaveFS(fault.OS{}, path, g)
}

// SaveFS is Save through an explicit filesystem seam; tests and the chaos
// harness substitute a fault.Injector to exercise the atomic-save
// recovery paths.
func SaveFS(fsys fault.FS, path string, g *graph.Graph) error {
	return SaveShardedFS(fsys, path, g, 1)
}

// SaveSharded is Save with a shard count recorded in the image header:
// opening the image as a dynamic store later creates (or replays) one
// mutation-log segment per shard. shards <= 1 writes the historical
// unsharded bytes.
func SaveSharded(path string, g *graph.Graph, shards int) error {
	return SaveShardedFS(fault.OS{}, path, g, shards)
}

// SaveShardedFS is SaveFS recording a shard count in the image header.
// The shard count is fixed at store creation: compaction re-saves with
// the same count, and opens reject nothing — the partitioner is derived
// from whatever the header says. shards <= 1 writes the historical
// unsharded header bytes.
func SaveShardedFS(fsys fault.FS, path string, g *graph.Graph, shards int) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".egoc-save-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if err := writeSharded(tmp, g, shards); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	syncDir(fsys, dir)
	return nil
}

// dirSyncWarn rate-limits the directory-fsync warning to once per
// process: the fallback is deliberate (some filesystems reject directory
// fsync and the data is already durable), but silently dropping the error
// hid genuine fault-injection and disk problems.
var dirSyncWarn sync.Once

// syncDir fsyncs a directory so a just-completed rename is durable.
// Best-effort with the documented lenient-filesystem fallback, but the
// first failure per process is logged instead of silently dropped.
func syncDir(fsys fault.FS, dir string) {
	d, err := fsys.Open(dir)
	if err == nil {
		err = d.Sync()
		d.Close()
	}
	if err != nil {
		dirSyncWarn.Do(func() {
			log.Printf("storage: directory fsync of %s failed (continuing; rename durability relies on the filesystem): %v", dir, err)
		})
	}
}

// Write encodes g to w. w must also be an io.Seeker if the caller wants a
// valid header; Write buffers sections in memory offsets and writes
// front-to-back, so any Writer works.
func Write(w io.Writer, g *graph.Graph) error {
	return writeSharded(w, g, 1)
}

// writeSharded is Write with the shard count encoded in the header flags
// (counts <= 1 write the historical zero bits).
func writeSharded(w io.Writer, g *graph.Graph, shards int) error {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	var h header
	if g.Directed() {
		h.Flags |= flagDirected
	}
	if shards > 1 {
		h.Flags |= uint32(shards) << shardShift
	}
	h.NumNodes = uint64(g.NumNodes())
	h.NumEdges = uint64(g.NumEdges())
	h.NumLabels = uint32(g.Labels().Size())

	// The header is written first with final values, so compute section
	// offsets up front by sizing each section.
	labelTableSize := uint64(0)
	for i := 0; i < g.Labels().Size(); i++ {
		labelTableSize += 2 + uint64(len(g.Labels().Name(graph.LabelID(i))))
	}
	nodeLabelSize := 4 * h.NumNodes
	adjIndexSize := 8 * (h.NumNodes + 1)
	adjDataSize := uint64(0)
	for n := 0; n < g.NumNodes(); n++ {
		adjDataSize += 8 // out count + in count
		adjDataSize += 8 * uint64(len(g.Out(graph.NodeID(n))))
		if g.Directed() {
			adjDataSize += 8 * uint64(len(g.In(graph.NodeID(n))))
		}
	}
	edgeTableSize := 8 * h.NumEdges

	nodeAttrSize, nodeAttrEntries := attrSectionSize(g.NumNodes(), func(i int) map[string]string {
		m := g.NodeAttrs(graph.NodeID(i))
		delete(m, graph.LabelAttr) // labels live in the label sections
		return m
	})
	edgeAttrSize, edgeAttrEntries := attrSectionSize(g.NumEdges(), func(i int) map[string]string {
		return g.EdgeAttrs(graph.EdgeID(i))
	})

	h.LabelTableOff = headerSize
	h.NodeLabelOff = h.LabelTableOff + labelTableSize
	h.AdjIndexOff = h.NodeLabelOff + nodeLabelSize
	h.AdjDataOff = h.AdjIndexOff + adjIndexSize
	h.EdgeTableOff = h.AdjDataOff + adjDataSize
	h.NodeAttrOff = h.EdgeTableOff + edgeTableSize
	h.EdgeAttrOff = h.NodeAttrOff + nodeAttrSize
	h.CRCOff = h.EdgeAttrOff + edgeAttrSize

	// Header.
	if _, err := cw.Write(Magic[:]); err != nil {
		return err
	}
	for _, v32 := range []uint32{h.Flags} {
		if err := cw.u32(v32); err != nil {
			return err
		}
	}
	if err := cw.u64(h.NumNodes); err != nil {
		return err
	}
	if err := cw.u64(h.NumEdges); err != nil {
		return err
	}
	if err := cw.u32(h.NumLabels); err != nil {
		return err
	}
	for _, off := range []uint64{h.LabelTableOff, h.NodeLabelOff, h.AdjIndexOff, h.AdjDataOff, h.EdgeTableOff, h.NodeAttrOff, h.EdgeAttrOff, h.CRCOff} {
		if err := cw.u64(off); err != nil {
			return err
		}
	}

	// Label table.
	for i := 0; i < g.Labels().Size(); i++ {
		if err := cw.str16(g.Labels().Name(graph.LabelID(i))); err != nil {
			return err
		}
	}
	// Node labels.
	for n := 0; n < g.NumNodes(); n++ {
		if err := cw.u32(uint32(g.Label(graph.NodeID(n)))); err != nil {
			return err
		}
	}
	// Adjacency index: per-node offsets into the adjacency data section,
	// plus a final sentinel.
	off := uint64(0)
	for n := 0; n < g.NumNodes(); n++ {
		if err := cw.u64(off); err != nil {
			return err
		}
		off += 8 + 8*uint64(len(g.Out(graph.NodeID(n))))
		if g.Directed() {
			off += 8 * uint64(len(g.In(graph.NodeID(n))))
		}
	}
	if err := cw.u64(off); err != nil {
		return err
	}
	// Adjacency data.
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		out := g.Out(id)
		var in []graph.Half
		if g.Directed() {
			in = g.In(id)
		}
		if err := cw.u32(uint32(len(out))); err != nil {
			return err
		}
		if err := cw.u32(uint32(len(in))); err != nil {
			return err
		}
		for _, half := range out {
			if err := cw.u32(uint32(half.To)); err != nil {
				return err
			}
			if err := cw.u32(uint32(half.Edge)); err != nil {
				return err
			}
		}
		for _, half := range in {
			if err := cw.u32(uint32(half.To)); err != nil {
				return err
			}
			if err := cw.u32(uint32(half.Edge)); err != nil {
				return err
			}
		}
	}
	// Edge table.
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if err := cw.u32(uint32(ed.From)); err != nil {
			return err
		}
		if err := cw.u32(uint32(ed.To)); err != nil {
			return err
		}
	}
	// Attribute sections.
	if err := writeAttrSection(cw, nodeAttrEntries); err != nil {
		return err
	}
	if err := writeAttrSection(cw, edgeAttrEntries); err != nil {
		return err
	}
	if cw.n != h.CRCOff {
		return fmt.Errorf("storage: section size accounting error: wrote %d, expected %d", cw.n, h.CRCOff)
	}
	// Trailing CRC over everything written so far.
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], cw.crc)
	if _, err := bw.Write(b[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// attrEntry is one object's attribute map, in file order.
type attrEntry struct {
	id    uint32
	pairs [][2]string
}

func attrSectionSize(n int, get func(i int) map[string]string) (uint64, []attrEntry) {
	size := uint64(4) // entry count
	var entries []attrEntry
	for i := 0; i < n; i++ {
		m := get(i)
		if len(m) == 0 {
			continue
		}
		e := attrEntry{id: uint32(i)}
		// Deterministic order.
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			e.pairs = append(e.pairs, [2]string{k, m[k]})
		}
		entries = append(entries, e)
		size += 4 + 2 // id + pair count
		for _, p := range e.pairs {
			size += 2 + uint64(len(p[0])) + 2 + uint64(len(p[1]))
		}
	}
	return size, entries
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func writeAttrSection(cw *countingWriter, entries []attrEntry) error {
	if err := cw.u32(uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := cw.u32(e.id); err != nil {
			return err
		}
		if err := cw.u16(uint16(len(e.pairs))); err != nil {
			return err
		}
		for _, p := range e.pairs {
			if err := cw.str16(p[0]); err != nil {
				return err
			}
			if err := cw.str16(p[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads a graph file fully into memory.
func Load(path string) (*graph.Graph, error) {
	return LoadFS(fault.OS{}, path)
}

// LoadFS is Load through an explicit filesystem seam.
func LoadFS(fsys fault.FS, path string) (*graph.Graph, error) {
	st, err := OpenFS(fsys, path, DefaultCacheBlocks)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Materialize()
}
