package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"egocensus/internal/fault"
	"egocensus/internal/graph"
)

// BlockSize is the unit of the store's read cache.
const BlockSize = 8192

// DefaultCacheBlocks is the default cache capacity (blocks).
const DefaultCacheBlocks = 1024

// Store serves a graph file without materializing it: the header, label
// dictionary, per-node labels, adjacency index and attribute indexes are
// resident; adjacency and attribute payloads are read on demand through a
// fixed-capacity block cache.
type Store struct {
	f    fault.File
	path string
	size int64
	h    header

	labels    *graph.LabelDict
	nodeLabel []uint32
	adjIndex  []uint64 // NumNodes+1 offsets into the adjacency data

	nodeAttrAt map[uint32]int64 // node -> file offset of its attr entry
	edgeAttrAt map[uint32]int64

	cache *blockCache

	stats *graph.Stats // memoized planner snapshot (source.go)
	graph *graph.Graph // memoized materialization (source.go)

	// Stats counts cache behaviour for tests and tuning.
	Stats CacheStats
}

// CacheStats reports block cache behaviour.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Open opens a graph file, verifies its checksum, validates the header
// geometry and section contents, and loads the resident indexes.
// cacheBlocks bounds the block cache (<= 0 uses DefaultCacheBlocks). A
// file that fails any structural check yields a *CorruptFileError; no
// corrupt input panics the reader or allocates beyond the file's size.
func Open(path string, cacheBlocks int) (*Store, error) {
	return OpenFS(fault.OS{}, path, cacheBlocks)
}

// OpenFS is Open through an explicit filesystem seam.
func OpenFS(fsys fault.FS, path string, cacheBlocks int) (*Store, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	st := &Store{f: f, path: path}
	if err := st.init(cacheBlocks); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

func (st *Store) init(cacheBlocks int) error {
	info, err := st.f.Stat()
	if err != nil {
		return err
	}
	st.size = info.Size()
	if cacheBlocks <= 0 {
		cacheBlocks = DefaultCacheBlocks
	}
	st.cache = newBlockCache(cacheBlocks)

	if err := st.verifyCRC(); err != nil {
		return err
	}
	if err := st.readHeader(); err != nil {
		return err
	}
	if err := st.readLabelTable(); err != nil {
		return err
	}
	if err := st.readNodeLabels(); err != nil {
		return err
	}
	if err := st.readAdjIndex(); err != nil {
		return err
	}
	var err2 error
	st.nodeAttrAt, err2 = st.indexAttrSection(st.h.NodeAttrOff, st.h.EdgeAttrOff, st.h.NumNodes)
	if err2 != nil {
		return err2
	}
	st.edgeAttrAt, err2 = st.indexAttrSection(st.h.EdgeAttrOff, st.h.CRCOff, st.h.NumEdges)
	return err2
}

func (st *Store) verifyCRC() error {
	if st.size < headerSize+4 {
		return st.corrupt("file too small (%d bytes)", st.size)
	}
	if _, err := st.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	h := crc32.NewIEEE()
	if _, err := io.CopyN(h, st.f, st.size-4); err != nil {
		return err
	}
	var tail [4]byte
	if _, err := st.f.ReadAt(tail[:], st.size-4); err != nil {
		return err
	}
	if got, want := h.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return st.corrupt("checksum mismatch: file %08x computed %08x", want, got)
	}
	return nil
}

func (st *Store) readHeader() error {
	buf := make([]byte, headerSize)
	if _, err := st.f.ReadAt(buf, 0); err != nil {
		return err
	}
	for i := range Magic {
		if buf[i] != Magic[i] {
			return st.corrupt("bad magic %q", buf[:6])
		}
	}
	p := 6
	st.h.Flags = binary.LittleEndian.Uint32(buf[p:])
	p += 4
	st.h.NumNodes = binary.LittleEndian.Uint64(buf[p:])
	p += 8
	st.h.NumEdges = binary.LittleEndian.Uint64(buf[p:])
	p += 8
	st.h.NumLabels = binary.LittleEndian.Uint32(buf[p:])
	p += 4
	offs := []*uint64{&st.h.LabelTableOff, &st.h.NodeLabelOff, &st.h.AdjIndexOff, &st.h.AdjDataOff, &st.h.EdgeTableOff, &st.h.NodeAttrOff, &st.h.EdgeAttrOff, &st.h.CRCOff}
	for _, o := range offs {
		*o = binary.LittleEndian.Uint64(buf[p:])
		p += 8
	}
	return st.validateHeader()
}

// validateHeader checks the header's internal geometry before any count
// drives an allocation: node and edge counts must fit the 32-bit on-disk
// ID width, fixed-size sections must have exactly the offsets their
// counts imply, and every section boundary must be monotonic and inside
// the file. After this check, resident-index allocations (4·NumNodes
// node labels, 8·(NumNodes+1) adjacency index) are bounded by the file's
// own size.
func (st *Store) validateHeader() error {
	h := &st.h
	if h.NumNodes >= 1<<32 {
		return st.corrupt("node count %d exceeds 32-bit id space", h.NumNodes)
	}
	if h.NumEdges >= 1<<32 {
		return st.corrupt("edge count %d exceeds 32-bit id space", h.NumEdges)
	}
	if h.NumLabels == 0 {
		return st.corrupt("label table must contain the reserved empty label")
	}
	if h.CRCOff != uint64(st.size-4) {
		return st.corrupt("header CRC offset %d does not match file size %d", h.CRCOff, st.size)
	}
	if h.LabelTableOff != headerSize {
		return st.corrupt("label table offset %d != header size %d", h.LabelTableOff, headerSize)
	}
	// Every boundary must be monotonic and inside the file; afterwards,
	// section sizes are safe to compute as differences (no uint64
	// overflow) and are bounded by the file size.
	offs := []uint64{h.LabelTableOff, h.NodeLabelOff, h.AdjIndexOff, h.AdjDataOff, h.EdgeTableOff, h.NodeAttrOff, h.EdgeAttrOff, h.CRCOff}
	prev := uint64(0)
	for _, o := range offs {
		if o < prev || o > uint64(st.size) {
			return st.corrupt("section offsets %v not monotonic within file size %d", offs, st.size)
		}
		prev = o
	}
	// The fixed-size sections (node labels, adjacency index, edge table)
	// must match their counts exactly, and each variable section must at
	// least hold its length prefixes (2 bytes per label string, 4 bytes
	// per attr section count).
	if h.NodeLabelOff-h.LabelTableOff < 2*uint64(h.NumLabels) {
		return st.corrupt("label table [%d,%d) too small for %d labels", h.LabelTableOff, h.NodeLabelOff, h.NumLabels)
	}
	if h.AdjIndexOff-h.NodeLabelOff != 4*h.NumNodes {
		return st.corrupt("node label section [%d,%d) does not hold %d nodes", h.NodeLabelOff, h.AdjIndexOff, h.NumNodes)
	}
	if h.AdjDataOff-h.AdjIndexOff != 8*(h.NumNodes+1) {
		return st.corrupt("adjacency index [%d,%d) does not hold %d+1 offsets", h.AdjIndexOff, h.AdjDataOff, h.NumNodes)
	}
	if h.NodeAttrOff-h.EdgeTableOff != 8*h.NumEdges {
		return st.corrupt("edge table [%d,%d) does not hold %d edges", h.EdgeTableOff, h.NodeAttrOff, h.NumEdges)
	}
	if h.EdgeAttrOff-h.NodeAttrOff < 4 || h.CRCOff-h.EdgeAttrOff < 4 {
		return st.corrupt("attribute sections [%d,%d,%d) truncated", h.NodeAttrOff, h.EdgeAttrOff, h.CRCOff)
	}
	return nil
}

func (st *Store) readLabelTable() error {
	st.labels = graph.NewLabelDict()
	off := int64(st.h.LabelTableOff)
	end := int64(st.h.NodeLabelOff)
	for i := uint32(0); i < st.h.NumLabels; i++ {
		if off >= end {
			return st.corrupt("label table overruns its section at label %d", i)
		}
		s, n, err := st.readStr16(off)
		if err != nil {
			return err
		}
		off += n
		if i == 0 {
			if s != "" {
				return st.corrupt("label 0 must be the empty label")
			}
			continue
		}
		st.labels.Intern(s)
	}
	if off != end {
		return st.corrupt("label table ends at %d, section at %d", off, end)
	}
	// Intern dedupes, so a repeated name would silently shift every later
	// label ID off by one.
	if st.labels.Size() != int(st.h.NumLabels) {
		return st.corrupt("label table holds duplicate names (%d distinct of %d)", st.labels.Size(), st.h.NumLabels)
	}
	return nil
}

func (st *Store) readNodeLabels() error {
	buf := make([]byte, 4*st.h.NumNodes)
	if len(buf) > 0 {
		if _, err := st.f.ReadAt(buf, int64(st.h.NodeLabelOff)); err != nil {
			return err
		}
	}
	st.nodeLabel = make([]uint32, st.h.NumNodes)
	for i := range st.nodeLabel {
		st.nodeLabel[i] = binary.LittleEndian.Uint32(buf[4*i:])
		if st.nodeLabel[i] >= st.h.NumLabels {
			return st.corrupt("node %d label %d out of range (%d labels)", i, st.nodeLabel[i], st.h.NumLabels)
		}
	}
	return nil
}

func (st *Store) readAdjIndex() error {
	buf := make([]byte, 8*(st.h.NumNodes+1))
	if _, err := st.f.ReadAt(buf, int64(st.h.AdjIndexOff)); err != nil {
		return err
	}
	st.adjIndex = make([]uint64, st.h.NumNodes+1)
	adjSize := st.h.EdgeTableOff - st.h.AdjDataOff
	prev := uint64(0)
	for i := range st.adjIndex {
		st.adjIndex[i] = binary.LittleEndian.Uint64(buf[8*i:])
		if st.adjIndex[i] < prev || st.adjIndex[i] > adjSize {
			return st.corrupt("adjacency index entry %d (%d) not monotonic within data size %d", i, st.adjIndex[i], adjSize)
		}
		prev = st.adjIndex[i]
	}
	if st.adjIndex[0] != 0 || st.adjIndex[st.h.NumNodes] != adjSize {
		return st.corrupt("adjacency index spans [%d,%d), data section holds %d bytes", st.adjIndex[0], st.adjIndex[st.h.NumNodes], adjSize)
	}
	return nil
}

// indexAttrSection scans an attribute section once, recording the file
// offset of each entry. end bounds the section and maxID the valid object
// ids, so a corrupt count or entry errors instead of scanning into later
// sections or indexing attributes for nonexistent objects.
func (st *Store) indexAttrSection(sectionOff, end, maxID uint64) (map[uint32]int64, error) {
	idx := make(map[uint32]int64)
	off := int64(sectionOff)
	count, err := st.readU32(off)
	if err != nil {
		return nil, err
	}
	if uint64(count) > maxID {
		return nil, st.corrupt("attribute section at %d claims %d entries for %d objects", sectionOff, count, maxID)
	}
	off += 4
	for i := uint32(0); i < count; i++ {
		if uint64(off) >= end {
			return nil, st.corrupt("attribute section at %d overruns its end %d at entry %d", sectionOff, end, i)
		}
		id, err := st.readU32(off)
		if err != nil {
			return nil, err
		}
		if uint64(id) >= maxID {
			return nil, st.corrupt("attribute entry for object %d out of range (%d objects)", id, maxID)
		}
		if _, dup := idx[id]; dup {
			return nil, st.corrupt("duplicate attribute entry for object %d", id)
		}
		idx[id] = off
		off += 4
		pairs, err := st.readU16(off)
		if err != nil {
			return nil, err
		}
		off += 2
		for p := uint16(0); p < pairs; p++ {
			for s := 0; s < 2; s++ {
				l, err := st.readU16(off)
				if err != nil {
					return nil, err
				}
				off += 2 + int64(l)
			}
		}
	}
	if uint64(off) != end {
		return nil, st.corrupt("attribute section [%d,%d) ends at %d", sectionOff, end, off)
	}
	return idx, nil
}

// Close releases the underlying file.
func (st *Store) Close() error { return st.f.Close() }

// Directed reports whether the stored graph is directed.
func (st *Store) Directed() bool { return st.h.directed() }

// ShardCount returns the shard count recorded at store creation (1 for
// unsharded and pre-sharding images).
func (st *Store) ShardCount() int { return st.h.shardCount() }

// NumNodes returns the node count.
func (st *Store) NumNodes() int { return int(st.h.NumNodes) }

// NumEdges returns the edge count.
func (st *Store) NumEdges() int { return int(st.h.NumEdges) }

// Labels returns the label dictionary.
func (st *Store) Labels() *graph.LabelDict { return st.labels }

// Label returns the label of node n.
func (st *Store) Label(n graph.NodeID) graph.LabelID {
	return graph.LabelID(st.nodeLabel[n])
}

// Adjacency reads node n's adjacency lists from disk (through the cache).
func (st *Store) Adjacency(n graph.NodeID) (out, in []graph.Half, err error) {
	if n < 0 || uint64(n) >= st.h.NumNodes {
		return nil, nil, fmt.Errorf("storage: node %d out of range", n)
	}
	off := int64(st.h.AdjDataOff + st.adjIndex[n])
	slot := st.adjIndex[n+1] - st.adjIndex[n]
	if slot < 8 {
		return nil, nil, st.corrupt("adjacency slot for node %d holds %d bytes", n, slot)
	}
	outCount, err := st.readU32(off)
	if err != nil {
		return nil, nil, err
	}
	inCount, err := st.readU32(off + 4)
	if err != nil {
		return nil, nil, err
	}
	// The declared counts must fill the node's slot exactly, so a corrupt
	// count can neither read a neighbor's data nor drive an allocation
	// past the slot.
	if 8+8*(uint64(outCount)+uint64(inCount)) != slot {
		return nil, nil, st.corrupt("adjacency counts %d+%d do not fill node %d's %d-byte slot", outCount, inCount, n, slot)
	}
	off += 8
	read := func(count uint32, at int64) ([]graph.Half, error) {
		if count == 0 {
			return nil, nil
		}
		buf, err := st.readRange(at, int(count)*8)
		if err != nil {
			return nil, err
		}
		halves := make([]graph.Half, count)
		for i := range halves {
			halves[i].To = graph.NodeID(binary.LittleEndian.Uint32(buf[8*i:]))
			halves[i].Edge = graph.EdgeID(binary.LittleEndian.Uint32(buf[8*i+4:]))
			if uint64(halves[i].To) >= st.h.NumNodes || uint64(halves[i].Edge) >= st.h.NumEdges {
				return nil, st.corrupt("adjacency of node %d references node %d / edge %d out of range", n, halves[i].To, halves[i].Edge)
			}
		}
		return halves, nil
	}
	out, err = read(outCount, off)
	if err != nil {
		return nil, nil, err
	}
	in, err = read(inCount, off+int64(outCount)*8)
	if err != nil {
		return nil, nil, err
	}
	return out, in, nil
}

// EdgeEndpoints reads edge e's endpoints.
func (st *Store) EdgeEndpoints(e graph.EdgeID) (from, to graph.NodeID, err error) {
	if e < 0 || uint64(e) >= st.h.NumEdges {
		return 0, 0, fmt.Errorf("storage: edge %d out of range", e)
	}
	buf, err := st.readRange(int64(st.h.EdgeTableOff)+int64(e)*8, 8)
	if err != nil {
		return 0, 0, err
	}
	from = graph.NodeID(binary.LittleEndian.Uint32(buf))
	to = graph.NodeID(binary.LittleEndian.Uint32(buf[4:]))
	// Endpoint validation here keeps Materialize from panicking the graph
	// builder on a corrupt edge table.
	if uint64(from) >= st.h.NumNodes || uint64(to) >= st.h.NumNodes {
		return 0, 0, st.corrupt("edge %d endpoints (%d,%d) out of range (%d nodes)", e, from, to, st.h.NumNodes)
	}
	return from, to, nil
}

// NodeAttrs reads the attributes of node n (excluding the label).
func (st *Store) NodeAttrs(n graph.NodeID) (map[string]string, error) {
	return st.readAttrs(st.nodeAttrAt, uint32(n))
}

// EdgeAttrs reads the attributes of edge e.
func (st *Store) EdgeAttrs(e graph.EdgeID) (map[string]string, error) {
	return st.readAttrs(st.edgeAttrAt, uint32(e))
}

func (st *Store) readAttrs(idx map[uint32]int64, id uint32) (map[string]string, error) {
	off, ok := idx[id]
	if !ok {
		return nil, nil
	}
	off += 4 // skip id
	pairs, err := st.readU16(off)
	if err != nil {
		return nil, err
	}
	off += 2
	m := make(map[string]string, pairs)
	for p := uint16(0); p < pairs; p++ {
		k, n, err := st.readStr16(off)
		if err != nil {
			return nil, err
		}
		off += n
		v, n, err := st.readStr16(off)
		if err != nil {
			return nil, err
		}
		off += n
		m[k] = v
	}
	return m, nil
}

// Materialize loads the entire stored graph into memory.
func (st *Store) Materialize() (*graph.Graph, error) {
	g := graph.New(st.Directed())
	g.AddNodes(st.NumNodes())
	for n := 0; n < st.NumNodes(); n++ {
		id := graph.NodeID(n)
		if l := st.Label(id); l != graph.NoLabel {
			g.SetLabel(id, st.labels.Name(l))
		}
		attrs, err := st.NodeAttrs(id)
		if err != nil {
			return nil, err
		}
		for k, v := range attrs {
			g.SetNodeAttr(id, k, v)
		}
	}
	for e := 0; e < st.NumEdges(); e++ {
		from, to, err := st.EdgeEndpoints(graph.EdgeID(e))
		if err != nil {
			return nil, err
		}
		eid := g.AddEdge(from, to)
		if eid != graph.EdgeID(e) {
			return nil, fmt.Errorf("storage: edge id drift (%d != %d)", eid, e)
		}
		attrs, err := st.EdgeAttrs(graph.EdgeID(e))
		if err != nil {
			return nil, err
		}
		for k, v := range attrs {
			g.SetEdgeAttr(eid, k, v)
		}
	}
	return g, nil
}

// --- low-level cached reads ---

func (st *Store) readU16(off int64) (uint16, error) {
	b, err := st.readRange(off, 2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (st *Store) readU32(off int64) (uint32, error) {
	b, err := st.readRange(off, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (st *Store) readStr16(off int64) (string, int64, error) {
	l, err := st.readU16(off)
	if err != nil {
		return "", 0, err
	}
	if l == 0 {
		return "", 2, nil
	}
	b, err := st.readRange(off+2, int(l))
	if err != nil {
		return "", 0, err
	}
	return string(b), 2 + int64(l), nil
}

// readRange returns length bytes starting at off, served from the block
// cache. The returned slice is freshly allocated.
func (st *Store) readRange(off int64, length int) ([]byte, error) {
	if off < 0 || off+int64(length) > st.size {
		return nil, fmt.Errorf("storage: read [%d,%d) out of file bounds %d", off, off+int64(length), st.size)
	}
	out := make([]byte, 0, length)
	for length > 0 {
		blockID := off / BlockSize
		blockOff := int(off % BlockSize)
		block, err := st.block(blockID)
		if err != nil {
			return nil, err
		}
		n := len(block) - blockOff
		if n > length {
			n = length
		}
		out = append(out, block[blockOff:blockOff+n]...)
		off += int64(n)
		length -= n
	}
	return out, nil
}

func (st *Store) block(id int64) ([]byte, error) {
	if b, ok := st.cache.get(id); ok {
		st.Stats.Hits++
		return b, nil
	}
	st.Stats.Misses++
	off := id * BlockSize
	size := int64(BlockSize)
	if off+size > st.size {
		size = st.size - off
	}
	buf := make([]byte, size)
	if _, err := st.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	st.cache.put(id, buf)
	return buf, nil
}

// blockCache is a fixed-capacity cache with CLOCK (second chance)
// eviction.
type blockCache struct {
	capacity int
	entries  map[int64]*cacheEntry
	ring     []*cacheEntry
	hand     int
}

type cacheEntry struct {
	id   int64
	data []byte
	used bool
}

func newBlockCache(capacity int) *blockCache {
	if capacity < 1 {
		capacity = 1
	}
	return &blockCache{capacity: capacity, entries: make(map[int64]*cacheEntry, capacity)}
}

func (c *blockCache) get(id int64) ([]byte, bool) {
	e, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	e.used = true
	return e.data, true
}

func (c *blockCache) put(id int64, data []byte) {
	if e, ok := c.entries[id]; ok {
		e.data = data
		e.used = true
		return
	}
	e := &cacheEntry{id: id, data: data, used: true}
	if len(c.ring) < c.capacity {
		c.ring = append(c.ring, e)
		c.entries[id] = e
		return
	}
	// CLOCK eviction: advance the hand, clearing use bits, until an
	// unused entry is found.
	for {
		victim := c.ring[c.hand]
		if victim.used {
			victim.used = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.entries, victim.id)
		c.ring[c.hand] = e
		c.entries[id] = e
		c.hand = (c.hand + 1) % len(c.ring)
		return
	}
}
