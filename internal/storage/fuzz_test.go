package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

// validStoreBytes encodes a small property graph — labels, node and edge
// attributes — exercising every section of the format.
func validStoreBytes(tb testing.TB) []byte {
	g := gen.ErdosRenyi(12, 24, 3)
	gen.AssignLabels(g, 2, 7)
	g.SetNodeAttr(0, "name", "zero")
	g.SetNodeAttr(3, "age", "9")
	if g.NumEdges() > 0 {
		g.SetEdgeAttr(0, "w", "3")
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// patchCRC recomputes the trailing checksum so mutations reach the
// header/section validation behind the CRC gate.
func patchCRC(data []byte) []byte {
	if len(data) < headerSize+4 {
		return data
	}
	out := append([]byte(nil), data...)
	sum := crc32.ChecksumIEEE(out[:len(out)-4])
	binary.LittleEndian.PutUint32(out[len(out)-4:], sum)
	return out
}

// FuzzOpenStore feeds mutated .egoc bytes to Open: a corrupt file must be
// rejected with an error — never a panic — and a file that opens must be
// fully servable (materialization, adjacency, attributes) without
// panicking. Each input is tried both raw and with its trailing CRC
// recomputed, so mutations also explore the structural validation behind
// the checksum gate.
func FuzzOpenStore(f *testing.F) {
	valid := validStoreBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerSize+4])
	f.Add([]byte{})
	f.Add([]byte("not a graph file at all"))
	flipped := append([]byte(nil), valid...)
	flipped[headerSize/2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		for i, variant := range [][]byte{data, patchCRC(data)} {
			path := filepath.Join(dir, "f"+string(rune('0'+i))+".egoc")
			if err := os.WriteFile(path, variant, 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := Open(path, 4)
			if err != nil {
				continue // rejected; the only requirement is no panic
			}
			// The file passed validation: every access path must work
			// without panicking or erroring into undefined state.
			for n := 0; n < st.NumNodes(); n++ {
				id := graph.NodeID(n)
				st.Label(id)
				if _, _, err := st.Adjacency(id); err != nil {
					break
				}
				if _, err := st.NodeAttrs(id); err != nil {
					break
				}
			}
			for e := 0; e < st.NumEdges(); e++ {
				if _, _, err := st.EdgeEndpoints(graph.EdgeID(e)); err != nil {
					break
				}
			}
			st.Materialize()
			st.Close()
		}
	})
}

func TestOpenCorruptTyped(t *testing.T) {
	valid := validStoreBytes(t)
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string][]byte{
		"truncated": valid[:len(valid)-10],
		"tiny":      valid[:8],
		"bitflip":   append([]byte(nil), valid...),
	}
	cases["bitflip"][len(valid)/2] ^= 0x10
	// A header lying about its node count must fail validation even with
	// a correct checksum.
	lying := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(lying[10:], 1<<40)
	cases["lying-header"] = patchCRC(lying)
	for name, data := range cases {
		path := write(name+".egoc", data)
		_, err := Open(path, 0)
		if err == nil {
			t.Fatalf("%s: corrupt file opened", name)
		}
		var cfe *CorruptFileError
		if !errors.As(err, &cfe) {
			t.Fatalf("%s: err = %T (%v), want *CorruptFileError", name, err, err)
		}
		if cfe.Path != path || cfe.Detail == "" {
			t.Fatalf("%s: incomplete error %+v", name, cfe)
		}
	}
}

func TestSaveAtomic(t *testing.T) {
	g := sampleGraph()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.egoc")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	// Overwriting an existing file must go through the same tmp+rename
	// path and leave no temporaries behind.
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.egoc" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after save: %v", names)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("saved file unreadable: %v", err)
	}
}
