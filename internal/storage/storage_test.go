package storage

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

func sampleGraph() *graph.Graph {
	g := gen.PreferentialAttachment(120, 3, 7)
	gen.AssignLabels(g, 4, 8)
	gen.AssignSigns(g, 0.3, 9)
	g.SetNodeAttr(0, "name", "hub")
	g.SetNodeAttr(5, "age", "42")
	return g
}

func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.egoc")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

func assertGraphsEqual(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.Directed() != b.Directed() || a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %v/%d/%d vs %v/%d/%d",
			a.Directed(), a.NumNodes(), a.NumEdges(), b.Directed(), b.NumNodes(), b.NumEdges())
	}
	for n := 0; n < a.NumNodes(); n++ {
		id := graph.NodeID(n)
		if a.LabelString(id) != b.LabelString(id) {
			t.Fatalf("node %d label %q vs %q", n, a.LabelString(id), b.LabelString(id))
		}
		aa, ba := a.NodeAttrs(id), b.NodeAttrs(id)
		if len(aa) != len(ba) {
			t.Fatalf("node %d attrs %v vs %v", n, aa, ba)
		}
		for k, v := range aa {
			if ba[k] != v {
				t.Fatalf("node %d attr %s: %q vs %q", n, k, v, ba[k])
			}
		}
		ao, bo := a.Out(id), b.Out(id)
		if len(ao) != len(bo) {
			t.Fatalf("node %d out degree %d vs %d", n, len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("node %d half-edge %d: %v vs %v", n, i, ao[i], bo[i])
			}
		}
	}
	for e := 0; e < a.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if a.Edge(id) != b.Edge(id) {
			t.Fatalf("edge %d endpoints differ", e)
		}
		aa, ba := a.EdgeAttrs(id), b.EdgeAttrs(id)
		for k, v := range aa {
			if ba[k] != v {
				t.Fatalf("edge %d attr %s: %q vs %q", e, k, v, ba[k])
			}
		}
		if len(aa) != len(ba) {
			t.Fatalf("edge %d attrs differ", e)
		}
	}
}

func TestRoundTripUndirected(t *testing.T) {
	g := sampleGraph()
	assertGraphsEqual(t, g, roundTrip(t, g))
}

func TestRoundTripDirected(t *testing.T) {
	g := graph.New(true)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.SetLabel(a, "x")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	g.SetEdgeAttr(0, "w", "3")
	assertGraphsEqual(t, g, roundTrip(t, g))
}

func TestRoundTripEmptyAndTiny(t *testing.T) {
	assertGraphsEqual(t, graph.New(false), roundTrip(t, graph.New(false)))
	one := graph.New(false)
	one.AddNode()
	assertGraphsEqual(t, one, roundTrip(t, one))
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 60, seed)
		gen.AssignLabels(g, 3, seed+1)
		g2 := roundTrip(t, g)
		if g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() {
			return false
		}
		for n := 0; n < g.NumNodes(); n++ {
			if g.LabelString(graph.NodeID(n)) != g2.LabelString(graph.NodeID(n)) {
				return false
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			if g.Edge(graph.EdgeID(e)) != g2.Edge(graph.EdgeID(e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreOnDemandAccess(t *testing.T) {
	g := sampleGraph()
	path := filepath.Join(t.TempDir(), "g.egoc")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumNodes() != g.NumNodes() || st.NumEdges() != g.NumEdges() || st.Directed() != g.Directed() {
		t.Fatal("store header mismatch")
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		if st.Label(id) != g.Label(id) {
			t.Fatalf("node %d label mismatch", n)
		}
		out, in, err := st.Adjacency(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(g.Out(id)) {
			t.Fatalf("node %d out mismatch", n)
		}
		for i, h := range g.Out(id) {
			if out[i] != h {
				t.Fatalf("node %d half %d mismatch", n, i)
			}
		}
		if in != nil {
			t.Fatal("undirected store should have nil in-lists")
		}
	}
	attrs, err := st.NodeAttrs(0)
	if err != nil || attrs["name"] != "hub" {
		t.Fatalf("node attrs via store: %v %v", attrs, err)
	}
	attrs, err = st.NodeAttrs(1)
	if err != nil || len(attrs) != 0 {
		t.Fatalf("empty node attrs via store: %v %v", attrs, err)
	}
	from, to, err := st.EdgeEndpoints(0)
	if err != nil || (graph.Edge{From: from, To: to}) != g.Edge(0) {
		t.Fatalf("edge endpoints via store: %d %d %v", from, to, err)
	}
	eattrs, err := st.EdgeAttrs(0)
	if err != nil || (eattrs["sign"] != "+" && eattrs["sign"] != "-") {
		t.Fatalf("edge attrs via store: %v %v", eattrs, err)
	}
}

func TestStoreCacheBounded(t *testing.T) {
	g := gen.PreferentialAttachment(2000, 5, 3)
	path := filepath.Join(t.TempDir(), "g.egoc")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, 4) // tiny cache forces eviction
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for n := 0; n < st.NumNodes(); n++ {
		if _, _, err := st.Adjacency(graph.NodeID(n)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats.Misses == 0 || st.Stats.Hits == 0 {
		t.Fatalf("cache stats implausible: %+v", st.Stats)
	}
	if len(st.cache.entries) > 4 {
		t.Fatalf("cache exceeded capacity: %d", len(st.cache.entries))
	}
	// Re-reading the same node should hit the cache.
	before := st.Stats.Hits
	if _, _, err := st.Adjacency(graph.NodeID(st.NumNodes() - 1)); err != nil {
		t.Fatal(err)
	}
	if st.Stats.Hits == before {
		t.Fatal("expected a cache hit on repeat access")
	}
}

func TestCorruptionDetected(t *testing.T) {
	g := sampleGraph()
	path := filepath.Join(t.TempDir(), "g.egoc")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("corrupted file should fail checksum")
	}
}

func TestBadMagicAndTruncation(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.egoc")
	if err := os.WriteFile(bad, []byte("not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, 0); err == nil {
		t.Fatal("tiny file should fail")
	}
	g := sampleGraph()
	path := filepath.Join(dir, "g.egoc")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("truncated file should fail")
	}
}

func TestStoreRangeErrors(t *testing.T) {
	g := sampleGraph()
	path := filepath.Join(t.TempDir(), "g.egoc")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, _, err := st.Adjacency(graph.NodeID(st.NumNodes())); err == nil {
		t.Fatal("out-of-range node should error")
	}
	if _, _, err := st.EdgeEndpoints(graph.EdgeID(st.NumEdges())); err == nil {
		t.Fatal("out-of-range edge should error")
	}
}
