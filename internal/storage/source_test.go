package storage

import (
	"path/filepath"
	"reflect"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

func TestStoreGraphStatsMatchesCompute(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := gen.ErdosRenyi(80, 200, 17)
		if directed {
			d := graph.New(true)
			d.AddNodes(g.NumNodes())
			for e := 0; e < g.NumEdges(); e++ {
				ed := g.Edge(graph.EdgeID(e))
				d.AddEdge(ed.From, ed.To)
			}
			g = d
		}
		gen.AssignLabels(g, 3, 18)
		path := filepath.Join(t.TempDir(), "g.egoc")
		if err := Save(path, g); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, 16)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		before := st.Stats
		got, err := st.GraphStats()
		if err != nil {
			t.Fatal(err)
		}
		// Statistics from the resident indexes must equal statistics of the
		// materialized graph — and must not have read any payload blocks.
		if st.Stats != before {
			t.Fatalf("directed=%v: GraphStats touched the block cache: %+v -> %+v", directed, before, st.Stats)
		}
		full, err := st.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		want := graph.ComputeStats(full)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("directed=%v: store stats %+v != computed %+v", directed, got, want)
		}
		again, _ := st.GraphStats()
		if again != got {
			t.Fatal("GraphStats not memoized")
		}
	}
}

func TestStoreGraphMemoized(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 19)
	path := filepath.Join(t.TempDir(), "g.egoc")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g1, err := st.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := st.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("Graph() not memoized")
	}
	if g1.NumNodes() != g.NumNodes() || g1.NumEdges() != g.NumEdges() {
		t.Fatal("materialized graph mismatch")
	}
}
