package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// This file is the server's self-healing layer: per-statement circuit
// breakers that stop hammering a query whose executions keep failing
// internally, a latency ring that turns recent p50 into an honest
// Retry-After under load shedding, and the tri-state health model
// (ok | degraded | unhealthy) the /healthz endpoint reports.
//
// The split of responsibility: "degraded" comes from the storage write
// path (the graph writer is read-only after an unrecoverable WAL failure;
// queries still serve snapshots, so the probe stays 200), while
// "unhealthy" means the query path itself is failing — consecutive
// internal errors or panics — and flips the probe to 503 so a load
// balancer rotates the instance out.

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-prepared-statement circuit breaker. Consecutive
// internal execution errors trip it open; while open, requests for the
// statement are rejected immediately with 503 and the cooldown's
// remainder as Retry-After. After the cooldown one probe request is let
// through (half-open): success closes the breaker, another internal
// error re-opens it for a fresh cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state       int
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       uint64
}

// admit asks whether a request for this statement may proceed. When the
// breaker is open it returns ok=false and how long the caller should
// tell the client to wait; otherwise ok=true, with probe marking the
// single half-open trial request (the caller must report its outcome).
func (b *breaker) admit(now time.Time) (probe bool, retryAfter time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false, 0, true
	case breakerOpen:
		if remaining := b.cooldown - now.Sub(b.openedAt); remaining > 0 {
			return false, remaining, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0, true
	default: // half-open
		if b.probing {
			// One probe at a time; everyone else keeps waiting a beat.
			return false, b.cooldown / 2, false
		}
		b.probing = true
		return true, 0, true
	}
}

// report records an execution outcome. Only internal failures (panics,
// executor bugs) count against the breaker — user errors like bad
// parameters or timeouts say nothing about the statement's health.
func (b *breaker) report(probe, internalErr bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if !internalErr {
		if b.state != breakerOpen {
			b.state = breakerClosed
		}
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.consecutive >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = now
		b.trips++
	}
}

// snapshot returns (open, trips) for stats without holding the lock long.
func (b *breaker) snapshot(now time.Time) (open bool, trips uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	open = b.state == breakerOpen && now.Sub(b.openedAt) < b.cooldown ||
		b.state == breakerHalfOpen
	return open, b.trips
}

// breakerFor returns the circuit breaker for a query text, creating it
// on first use. Breakers live alongside the prepared-statement cache and
// share its lifetime.
func (s *Server) breakerFor(text string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.breakers[text]; ok {
		return b
	}
	b := &breaker{threshold: s.cfg.breakerThreshold(), cooldown: s.cfg.breakerCooldown()}
	s.breakers[text] = b
	return b
}

// breakerStats aggregates open/trip counts across all statements.
func (s *Server) breakerStats() (open int, trips uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for _, b := range s.breakers {
		o, t := b.snapshot(now)
		if o {
			open++
		}
		trips += t
	}
	return open, trips
}

// latencyRing keeps the last N successful query latencies for percentile
// estimates. Fixed-size, lock-per-op; the write path touches it once per
// completed request.
type latencyRing struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int
	idx int
}

func (r *latencyRing) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.idx] = d
	r.idx = (r.idx + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// p50 returns the median recorded latency, 0 when nothing is recorded.
func (r *latencyRing) p50() time.Duration {
	r.mu.Lock()
	tmp := make([]time.Duration, r.n)
	copy(tmp, r.buf[:r.n])
	r.mu.Unlock()
	if len(tmp) == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[len(tmp)/2]
}

// retryAfterSeconds derives the 429 Retry-After hint from live load: the
// number of drain waves ahead of a newly queued request (queue depth over
// execution slots) times the recent p50 latency, clamped to [1s, 60s]. An
// idle or unmeasured server answers the old constant 1.
func (s *Server) retryAfterSeconds() int {
	p50 := s.lat.p50()
	if p50 <= 0 {
		return 1
	}
	waves := (s.queued.Load() + int64(s.cfg.maxInFlight())) / int64(s.cfg.maxInFlight())
	secs := int(math.Ceil((time.Duration(waves) * p50).Seconds()))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// retryAfterFromCooldown converts a breaker cooldown remainder to whole
// seconds, at least 1.
func retryAfterFromCooldown(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		return 1
	}
	return secs
}

// health evaluates the tri-state model. Order matters: a failing query
// path is unhealthy even if the writer also happens to be degraded,
// because serving wrong/no answers is worse than serving stale ones.
func (s *Server) health() (status string, code int, detail string) {
	if n := s.consecInternal.Load(); n >= int64(s.cfg.unhealthyAfter()) {
		return "unhealthy", 503, fmt.Sprintf("%d consecutive internal query failures", n)
	}
	if s.cfg.WriteHealth != nil {
		if err := s.cfg.WriteHealth(); err != nil {
			return "degraded", 200, err.Error()
		}
	}
	return "ok", 200, ""
}
