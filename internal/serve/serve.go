// Package serve is the HTTP/JSON serving front end over a census engine:
// a concurrent query endpoint with prepared-statement reuse, admission
// control, and per-request resource knobs. cmd/egoserve wires it to a
// stored graph; tests and benchmarks drive the handler directly.
//
// Endpoints:
//
//	POST /v1/query — execute a census request (see QueryRequest)
//	GET  /v1/stats — graph version, cache counters, admission gauges
//	GET  /healthz  — liveness probe
//
// Every request with exactly one SELECT runs through a prepared statement
// cached by query text, so repeated requests share the engine's
// epoch-keyed plan and result caches. Multi-statement scripts fall back
// to one-shot execution (and cannot carry parameters).
//
// Admission control bounds the work in flight: at most MaxInFlight
// queries execute concurrently, at most MaxQueue more wait for a slot,
// and everything beyond that is rejected immediately with HTTP 429 — the
// server sheds load instead of queueing unboundedly.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"egocensus/internal/core"
)

// Config tunes the server; the zero value picks sensible defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default:
	// GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot (default: 4×
	// MaxInFlight). Requests arriving beyond the queue are rejected with
	// HTTP 429.
	MaxQueue int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default: 30s). MaxTimeout caps what a request may ask for
	// (default: 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes bounds the request body (default: 1 MiB).
	MaxBodyBytes int64
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 4 * c.maxInFlight()
}

func (c Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout > 0 {
		return c.DefaultTimeout
	}
	return 30 * time.Second
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return 5 * time.Minute
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Query is the census text: optional PATTERN definitions and one or
	// more SELECT statements. Single-SELECT requests are served through a
	// prepared statement and may reference $name parameters.
	Query string `json:"query"`
	// Params binds the statement's $name parameters.
	Params map[string]string `json:"params,omitempty"`
	// TimeoutMillis bounds evaluation wall-clock time for this request
	// (0: the server default).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// MaxRows caps result rows for this request (0: unlimited).
	MaxRows int `json:"max_rows,omitempty"`
	// NoCache bypasses the result cache: the query runs fully and its
	// table is not stored.
	NoCache bool `json:"no_cache,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	Tables []core.TableJSON `json:"tables"`
	// ElapsedMicros is the server-side wall time of the whole request
	// (admission wait included).
	ElapsedMicros int64 `json:"elapsed_us"`
}

// ErrorResponse is the body of a failed request.
type ErrorResponse struct {
	Error string `json:"error"`
	// Partial carries the rows a deadline- or limit-stopped query produced
	// before it was cut off.
	Partial *core.TableJSON `json:"partial,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Epoch      uint64          `json:"epoch"`
	Nodes      int             `json:"nodes"`
	Edges      int             `json:"edges"`
	Cache      core.CacheStats `json:"cache"`
	InFlight   int64           `json:"in_flight"`
	Queued     int64           `json:"queued"`
	Requests   uint64          `json:"requests"`
	Rejected   uint64          `json:"rejected"`
	Statements int             `json:"prepared_statements"`
}

// Server is the HTTP front end over one engine. Create with New; it
// implements http.Handler.
type Server struct {
	e   *core.Engine
	cfg Config
	mux *http.ServeMux

	sem      chan struct{}
	queued   atomic.Int64
	inFlight atomic.Int64
	requests atomic.Uint64
	rejected atomic.Uint64

	mu       sync.Mutex
	prepared map[string]*core.Prepared
}

// New returns a server over e.
func New(e *core.Engine, cfg Config) *Server {
	s := &Server{
		e:        e,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.maxInFlight()),
		prepared: map[string]*core.Prepared{},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errBusy is the admission-control rejection.
var errBusy = errors.New("serve: saturated — execution slots and wait queue are full")

// acquire admits one execution: immediately when a slot is free, after a
// bounded wait when the queue has room, and with errBusy otherwise.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	free := func() { s.inFlight.Add(-1); <-s.sem }
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return free, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.maxQueue()) {
		s.queued.Add(-1)
		return nil, errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return free, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// preparedFor returns the cached prepared statement for a query text,
// preparing it on first use. Serialized so concurrent first requests for
// one text never race on pattern definition.
func (s *Server) preparedFor(text string) (*core.Prepared, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.prepared[text]; ok {
		return p, nil
	}
	p, err := s.e.Prepare(text)
	if err != nil {
		return nil, err
	}
	s.prepared[text] = p
	return p, nil
}

// statementCount reports the prepared-statement cache size.
func (s *Server) statementCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.prepared)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	var req QueryRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.maxBodyBytes()+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	if int64(len(body)) > s.cfg.maxBodyBytes() {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: body exceeds %d bytes", s.cfg.maxBodyBytes()))
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty query"))
		return
	}

	release, err := s.acquire(r.Context())
	if err != nil {
		s.rejected.Add(1)
		status := http.StatusTooManyRequests
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = 499 // client went away while queued
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, status, err)
		return
	}
	defer release()

	timeout := s.cfg.defaultTimeout()
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if max := s.cfg.maxTimeout(); timeout > max {
		timeout = max
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	tables, err := s.execute(ctx, &req)
	if err != nil {
		status, resp := errorResponse(err)
		writeJSON(w, status, resp)
		return
	}
	out := QueryResponse{Tables: make([]core.TableJSON, len(tables))}
	for i, t := range tables {
		out.Tables[i] = core.NewTableJSON(t)
	}
	out.ElapsedMicros = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, out)
}

// execute routes a request through the prepared path (single SELECT) or
// the script path (multi-statement, parameter-free).
func (s *Server) execute(ctx context.Context, req *QueryRequest) ([]*core.Table, error) {
	p, err := s.preparedFor(req.Query)
	if errors.Is(err, core.ErrNotOneSelect) {
		if len(req.Params) > 0 {
			return nil, errors.New("serve: params require a single-SELECT query")
		}
		return s.e.ExecuteContext(ctx, req.Query)
	}
	if err != nil {
		return nil, err
	}
	opts := core.ExecOptions{NoResultCache: req.NoCache}
	if req.MaxRows > 0 {
		limits := s.e.Opt.Limits
		limits.MaxResultRows = req.MaxRows
		opts.Limits = &limits
	}
	params := req.Params
	if params == nil {
		params = map[string]string{}
	}
	t, err := p.ExecuteContext(ctx, params, opts)
	if err != nil {
		return nil, err
	}
	return []*core.Table{t}, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Cache:      s.e.CacheStats(),
		InFlight:   s.inFlight.Load(),
		Queued:     s.queued.Load(),
		Requests:   s.requests.Load(),
		Rejected:   s.rejected.Load(),
		Statements: s.statementCount(),
	}
	if st, err := s.e.Stats(); err == nil {
		resp.Epoch, resp.Nodes, resp.Edges = st.Epoch, st.Nodes, st.Edges
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// errorResponse maps an execution failure to a status code, attaching
// partial results to deadline/limit stops.
func errorResponse(err error) (int, ErrorResponse) {
	resp := ErrorResponse{Error: err.Error()}
	var ce *core.CanceledError
	var le *core.LimitError
	var pe *core.ParamError
	var ie *core.InternalError
	switch {
	case errors.As(err, &ce):
		resp.Partial = partialJSON(ce.PartialTable)
		return http.StatusGatewayTimeout, resp
	case errors.As(err, &le):
		resp.Partial = partialJSON(le.PartialTable)
		return http.StatusUnprocessableEntity, resp
	case errors.As(err, &pe):
		return http.StatusBadRequest, resp
	case errors.As(err, &ie):
		// Keep stacks out of responses; the handler's error string carries
		// the query.
		return http.StatusInternalServerError, ErrorResponse{Error: "internal execution error"}
	default:
		return http.StatusBadRequest, resp
	}
}

func partialJSON(t *core.Table) *core.TableJSON {
	if t == nil {
		return nil
	}
	j := core.NewTableJSON(t)
	return &j
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
