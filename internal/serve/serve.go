// Package serve is the HTTP/JSON serving front end over a census engine:
// a concurrent query endpoint with prepared-statement reuse, admission
// control, and per-request resource knobs. cmd/egoserve wires it to a
// stored graph; tests and benchmarks drive the handler directly.
//
// Endpoints:
//
//	POST /v1/query — execute a census request (see QueryRequest)
//	GET  /v1/stats — graph version, cache counters, admission gauges
//	GET  /healthz  — liveness probe
//
// Every request with exactly one SELECT runs through a prepared statement
// cached by query text, so repeated requests share the engine's
// epoch-keyed plan and result caches. Multi-statement scripts fall back
// to one-shot execution (and cannot carry parameters).
//
// Admission control bounds the work in flight: at most MaxInFlight
// queries execute concurrently, at most MaxQueue more wait for a slot,
// and everything beyond that is rejected immediately with HTTP 429 — the
// server sheds load instead of queueing unboundedly.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"egocensus/internal/core"
)

// Config tunes the server; the zero value picks sensible defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default:
	// GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot (default: 4×
	// MaxInFlight). Requests arriving beyond the queue are rejected with
	// HTTP 429.
	MaxQueue int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default: 30s). MaxTimeout caps what a request may ask for
	// (default: 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes bounds the request body (default: 1 MiB).
	MaxBodyBytes int64
	// BreakerThreshold is how many consecutive internal errors trip a
	// statement's circuit breaker open (default: 5; negative disables the
	// breakers).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects before
	// letting a half-open probe through (default: 5s).
	BreakerCooldown time.Duration
	// UnhealthyAfter is how many consecutive internal failures (any
	// statement, panics included) flip /healthz to 503 (default: 3).
	UnhealthyAfter int
	// WriteHealth, when set, reports the storage write path's health; a
	// non-nil result marks the server degraded (read-only) on /healthz
	// without failing the probe. cmd/egoserve wires the graph writer's
	// Degraded method here.
	WriteHealth func() error
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 4 * c.maxInFlight()
}

func (c Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout > 0 {
		return c.DefaultTimeout
	}
	return 30 * time.Second
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return 5 * time.Minute
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

func (c Config) breakerThreshold() int {
	if c.BreakerThreshold != 0 {
		return c.BreakerThreshold
	}
	return 5
}

func (c Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 5 * time.Second
}

func (c Config) unhealthyAfter() int {
	if c.UnhealthyAfter > 0 {
		return c.UnhealthyAfter
	}
	return 3
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Query is the census text: optional PATTERN definitions and one or
	// more SELECT statements. Single-SELECT requests are served through a
	// prepared statement and may reference $name parameters.
	Query string `json:"query"`
	// Params binds the statement's $name parameters.
	Params map[string]string `json:"params,omitempty"`
	// TimeoutMillis bounds evaluation wall-clock time for this request
	// (0: the server default).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// MaxRows caps result rows for this request (0: unlimited).
	MaxRows int `json:"max_rows,omitempty"`
	// NoCache bypasses the result cache: the query runs fully and its
	// table is not stored.
	NoCache bool `json:"no_cache,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	Tables []core.TableJSON `json:"tables"`
	// ElapsedMicros is the server-side wall time of the whole request
	// (admission wait included).
	ElapsedMicros int64 `json:"elapsed_us"`
}

// ErrorResponse is the body of a failed request.
type ErrorResponse struct {
	Error string `json:"error"`
	// Partial carries the rows a deadline- or limit-stopped query produced
	// before it was cut off.
	Partial *core.TableJSON `json:"partial,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Epoch      uint64          `json:"epoch"`
	Nodes      int             `json:"nodes"`
	Edges      int             `json:"edges"`
	Cache      core.CacheStats `json:"cache"`
	InFlight   int64           `json:"in_flight"`
	Queued     int64           `json:"queued"`
	Requests   uint64          `json:"requests"`
	Rejected   uint64          `json:"rejected"`
	Statements int             `json:"prepared_statements"`
	// Health mirrors /healthz: "ok", "degraded", or "unhealthy".
	Health string `json:"health"`
	// Panics counts handler panics caught by the recovery middleware.
	Panics uint64 `json:"panics"`
	// OpenBreakers and BreakerTrips describe the per-statement circuit
	// breakers: how many are currently rejecting, and lifetime trips.
	OpenBreakers int    `json:"open_breakers"`
	BreakerTrips uint64 `json:"breaker_trips"`
	// P50Micros is the median latency of the recent successful queries.
	P50Micros int64 `json:"p50_us"`
	// PlanEvictions and ResultEvictions flatten the caches' lifetime
	// eviction counters (also nested under Cache) so monitors can alert
	// on cache churn without digging into the nested objects.
	PlanEvictions   uint64 `json:"plan_evictions"`
	ResultEvictions uint64 `json:"result_evictions"`
}

// Server is the HTTP front end over one engine. Create with New; it
// implements http.Handler.
type Server struct {
	e   *core.Engine
	cfg Config
	mux *http.ServeMux

	sem      chan struct{}
	queued   atomic.Int64
	inFlight atomic.Int64
	requests atomic.Uint64
	rejected atomic.Uint64

	// Self-healing state (health.go): caught panics, the
	// consecutive-internal-failure gauge behind the unhealthy state, and
	// the recent-latency ring behind adaptive Retry-After.
	panics         atomic.Uint64
	consecInternal atomic.Int64
	lat            latencyRing

	mu       sync.Mutex
	prepared map[string]*core.Prepared
	breakers map[string]*breaker
}

// New returns a server over e.
func New(e *core.Engine, cfg Config) *Server {
	s := &Server{
		e:        e,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.maxInFlight()),
		prepared: map[string]*core.Prepared{},
		breakers: map[string]*breaker{},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler. All routes run under panic
// recovery: a panicking handler becomes a 500 (when the response has not
// started), counts toward the unhealthy threshold, and never takes the
// process down with it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			s.consecInternal.Add(1)
			log.Printf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if !sw.wrote {
				writeJSON(sw, http.StatusInternalServerError, ErrorResponse{Error: "internal server error"})
			}
		}
	}()
	s.mux.ServeHTTP(sw, r)
}

// statusWriter tracks whether the response has started, so the panic
// middleware knows if a 500 can still be written.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

// errBusy is the admission-control rejection.
var errBusy = errors.New("serve: saturated — execution slots and wait queue are full")

// acquire admits one execution: immediately when a slot is free, after a
// bounded wait when the queue has room, and with errBusy otherwise.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	free := func() { s.inFlight.Add(-1); <-s.sem }
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return free, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.maxQueue()) {
		s.queued.Add(-1)
		return nil, errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return free, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// preparedFor returns the cached prepared statement for a query text,
// preparing it on first use. Serialized so concurrent first requests for
// one text never race on pattern definition.
func (s *Server) preparedFor(text string) (*core.Prepared, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.prepared[text]; ok {
		return p, nil
	}
	p, err := s.e.Prepare(text)
	if err != nil {
		return nil, err
	}
	s.prepared[text] = p
	return p, nil
}

// statementCount reports the prepared-statement cache size.
func (s *Server) statementCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.prepared)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	var req QueryRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.maxBodyBytes()+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	if int64(len(body)) > s.cfg.maxBodyBytes() {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: body exceeds %d bytes", s.cfg.maxBodyBytes()))
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty query"))
		return
	}

	// Circuit breaker: a statement that keeps failing internally is
	// rejected up front instead of burning an execution slot every time.
	var br *breaker
	probe := false
	if s.cfg.breakerThreshold() > 0 {
		br = s.breakerFor(req.Query)
		var wait time.Duration
		var ok bool
		if probe, wait, ok = br.admit(time.Now()); !ok {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterFromCooldown(wait)))
			writeError(w, http.StatusServiceUnavailable,
				errors.New("serve: circuit breaker open — this query has been failing internally; retry after the cooldown"))
			return
		}
	}

	release, err := s.acquire(r.Context())
	if err != nil {
		s.rejected.Add(1)
		if br != nil {
			br.report(probe, false, time.Now())
		}
		status := http.StatusTooManyRequests
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = 499 // client went away while queued
		}
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, status, err)
		return
	}
	defer release()

	timeout := s.cfg.defaultTimeout()
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if max := s.cfg.maxTimeout(); timeout > max {
		timeout = max
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	tables, err := s.execute(ctx, &req)
	internal := false
	if err != nil {
		var ie *core.InternalError
		internal = errors.As(err, &ie)
	}
	if br != nil {
		br.report(probe, internal, time.Now())
	}
	if internal {
		s.consecInternal.Add(1)
	} else if err == nil {
		s.consecInternal.Store(0)
		s.lat.add(time.Since(start))
	}
	if err != nil {
		status, resp := errorResponse(err)
		writeJSON(w, status, resp)
		return
	}
	out := QueryResponse{Tables: make([]core.TableJSON, len(tables))}
	for i, t := range tables {
		out.Tables[i] = core.NewTableJSON(t)
	}
	out.ElapsedMicros = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, out)
}

// execute routes a request through the prepared path (single SELECT) or
// the script path (multi-statement, parameter-free).
func (s *Server) execute(ctx context.Context, req *QueryRequest) ([]*core.Table, error) {
	p, err := s.preparedFor(req.Query)
	if errors.Is(err, core.ErrNotOneSelect) {
		if len(req.Params) > 0 {
			return nil, errors.New("serve: params require a single-SELECT query")
		}
		return s.e.ExecuteContext(ctx, req.Query)
	}
	if err != nil {
		return nil, err
	}
	opts := core.ExecOptions{NoResultCache: req.NoCache}
	if req.MaxRows > 0 {
		limits := s.e.Opt.Limits
		limits.MaxResultRows = req.MaxRows
		opts.Limits = &limits
	}
	params := req.Params
	if params == nil {
		params = map[string]string{}
	}
	t, err := p.ExecuteContext(ctx, params, opts)
	if err != nil {
		return nil, err
	}
	return []*core.Table{t}, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cache := s.e.CacheStats()
	resp := StatsResponse{
		Cache:           cache,
		PlanEvictions:   cache.Plan.Evictions,
		ResultEvictions: cache.Result.Evictions,
		InFlight:        s.inFlight.Load(),
		Queued:          s.queued.Load(),
		Requests:        s.requests.Load(),
		Rejected:        s.rejected.Load(),
		Statements:      s.statementCount(),
	}
	if st, err := s.e.Stats(); err == nil {
		resp.Epoch, resp.Nodes, resp.Edges = st.Epoch, st.Nodes, st.Edges
	}
	resp.Health, _, _ = s.health()
	resp.Panics = s.panics.Load()
	resp.OpenBreakers, resp.BreakerTrips = s.breakerStats()
	resp.P50Micros = s.lat.p50().Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports the tri-state health model: 200 "ok", 200
// "degraded: <cause>" (writes are read-only, queries fine — probes must
// not kill a serving replica over a storage fault), or 503 "unhealthy:
// <cause>" when the query path itself keeps failing.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code, detail := s.health()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	if detail != "" {
		fmt.Fprintf(w, "%s: %s\n", status, detail)
		return
	}
	io.WriteString(w, status+"\n")
}

// errorResponse maps an execution failure to a status code, attaching
// partial results to deadline/limit stops.
func errorResponse(err error) (int, ErrorResponse) {
	resp := ErrorResponse{Error: err.Error()}
	var ce *core.CanceledError
	var le *core.LimitError
	var pe *core.ParamError
	var ie *core.InternalError
	switch {
	case errors.As(err, &ce):
		resp.Partial = partialJSON(ce.PartialTable)
		return http.StatusGatewayTimeout, resp
	case errors.As(err, &le):
		resp.Partial = partialJSON(le.PartialTable)
		return http.StatusUnprocessableEntity, resp
	case errors.As(err, &pe):
		return http.StatusBadRequest, resp
	case errors.As(err, &ie):
		// Keep stacks out of responses; the handler's error string carries
		// the query.
		return http.StatusInternalServerError, ErrorResponse{Error: "internal execution error"}
	default:
		return http.StatusBadRequest, resp
	}
}

func partialJSON(t *core.Table) *core.TableJSON {
	if t == nil {
		return nil
	}
	j := core.NewTableJSON(t)
	return &j
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
