package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// healthQuery is a distinct valid statement for health tests, so breaker
// state keyed on serveQuery never interferes.
const healthQuery = `
PATTERN wedge { ?A-?B; ?B-?C; }
SELECT ID, COUNTP(wedge, SUBGRAPH(ID, 1)) FROM nodes
`

func TestBreakerLifecycle(t *testing.T) {
	b := &breaker{threshold: 2, cooldown: time.Minute}
	now := time.Unix(1000, 0)

	if _, _, ok := b.admit(now); !ok {
		t.Fatal("fresh breaker rejected")
	}
	b.report(false, true, now)
	if _, _, ok := b.admit(now); !ok {
		t.Fatal("breaker tripped below threshold")
	}
	b.report(false, true, now)

	// Two consecutive internal errors: open. Rejections carry the
	// cooldown remainder.
	probe, wait, ok := b.admit(now.Add(10 * time.Second))
	if ok || probe {
		t.Fatalf("open breaker admitted (probe=%v)", probe)
	}
	if wait != 50*time.Second {
		t.Fatalf("retry hint %v, want the 50s cooldown remainder", wait)
	}

	// Cooldown elapsed: exactly one half-open probe goes through, the
	// rest keep getting rejected until it reports.
	later := now.Add(2 * time.Minute)
	probe, _, ok = b.admit(later)
	if !ok || !probe {
		t.Fatalf("cooled-down breaker did not offer a probe (ok=%v probe=%v)", ok, probe)
	}
	if _, _, ok := b.admit(later); ok {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe fails: straight back to open for a fresh cooldown.
	b.report(true, true, later)
	if _, _, ok := b.admit(later.Add(time.Second)); ok {
		t.Fatal("breaker admitted right after a failed probe")
	}

	// Next probe succeeds: closed, normal traffic resumes.
	again := later.Add(2 * time.Minute)
	probe, _, ok = b.admit(again)
	if !ok || !probe {
		t.Fatal("no probe after second cooldown")
	}
	b.report(true, false, again)
	if probe, _, ok := b.admit(again); !ok || probe {
		t.Fatalf("closed breaker still probing (ok=%v probe=%v)", ok, probe)
	}
	if open, trips := b.snapshot(again); open || trips != 2 {
		t.Fatalf("snapshot open=%v trips=%d, want closed with 2 trips", open, trips)
	}
}

func TestServeBreakerOpenRejectsWith503(t *testing.T) {
	s := testServer(t, Config{BreakerCooldown: time.Minute})
	// Trip the statement's breaker directly — real internal errors need
	// an executor bug, which is exactly what the breaker is for.
	br := s.breakerFor(serveQuery)
	for i := 0; i < s.cfg.breakerThreshold(); i++ {
		br.report(false, true, time.Now())
	}
	w, _ := postQuery(t, s, QueryRequest{Query: serveQuery, Params: map[string]string{"k": "odd"}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 from the open breaker: %s", w.Code, w.Body.String())
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After = %q, want a 1..60s hint", w.Header().Get("Retry-After"))
	}
	// Other statements are unaffected.
	if w, resp := postQuery(t, s, QueryRequest{Query: healthQuery}); resp == nil {
		t.Fatalf("independent statement rejected: %d %s", w.Code, w.Body.String())
	}
	if open, _ := s.breakerStats(); open != 1 {
		t.Fatalf("open breakers = %d, want 1", open)
	}
}

func TestServePanicRecoveryAndUnhealthy(t *testing.T) {
	s := testServer(t, Config{UnhealthyAfter: 2})
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	for i := 0; i < 2; i++ {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/boom", nil))
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("panic request %d: status %d, want 500", i, w.Code)
		}
		if !strings.Contains(w.Body.String(), "internal server error") {
			t.Fatalf("panic response leaked or was empty: %s", w.Body.String())
		}
	}
	if s.panics.Load() != 2 {
		t.Fatalf("panics = %d, want 2", s.panics.Load())
	}

	// Two consecutive internal failures cross UnhealthyAfter: the probe
	// fails so a balancer stops routing here.
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "unhealthy") {
		t.Fatalf("healthz after panics: %d %q, want 503 unhealthy", w.Code, w.Body.String())
	}

	// One successful query heals the gauge.
	if w, resp := postQuery(t, s, QueryRequest{Query: healthQuery}); resp == nil {
		t.Fatalf("healing query failed: %d %s", w.Code, w.Body.String())
	}
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("healthz after recovery: %d %q, want 200 ok", w.Code, w.Body.String())
	}
}

func TestServeHealthzDegraded(t *testing.T) {
	var writeErr error
	s := testServer(t, Config{WriteHealth: func() error { return writeErr }})

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("healthy probe: %d %q", w.Code, w.Body.String())
	}

	// Storage write path degrades: probe stays 200 (reads still serve)
	// but reports the read-only state and its cause.
	writeErr = errors.New("wal append exhausted retries: no space left on device")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("degraded probe must not 503 (queries serve): got %d", w.Code)
	}
	body := w.Body.String()
	if !strings.HasPrefix(body, "degraded: ") || !strings.Contains(body, "no space left") {
		t.Fatalf("degraded body %q", body)
	}
	// Queries keep working while degraded.
	if w, resp := postQuery(t, s, QueryRequest{Query: healthQuery}); resp == nil {
		t.Fatalf("query during degraded mode failed: %d %s", w.Code, w.Body.String())
	}
	// Stats mirrors the state.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if !strings.Contains(rec.Body.String(), `"health":"degraded"`) {
		t.Fatalf("stats body lacks degraded health: %s", rec.Body.String())
	}

	// Writer recovers: probe flips back.
	writeErr = nil
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("recovered probe: %d %q", w.Code, w.Body.String())
	}
}

func TestAdaptiveRetryAfter(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 4})
	// No latency samples yet: the conservative constant.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("unmeasured retry-after = %d, want 1", got)
	}
	// p50 2s, empty queue: one drain wave.
	for i := 0; i < 8; i++ {
		s.lat.add(2 * time.Second)
	}
	if got := s.retryAfterSeconds(); got != 2 {
		t.Fatalf("idle retry-after = %d, want 2 (one wave x 2s p50)", got)
	}
	// Deep queue: 12 queued / 4 slots = 3 more waves ahead of you.
	s.queued.Store(12)
	if got := s.retryAfterSeconds(); got != 8 {
		t.Fatalf("queued retry-after = %d, want 8 (4 waves x 2s)", got)
	}
	// Clamp at 60s no matter how bad it looks.
	s.queued.Store(10000)
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("clamped retry-after = %d, want 60", got)
	}
	s.queued.Store(0)
}

func TestLatencyRingP50(t *testing.T) {
	var r latencyRing
	if r.p50() != 0 {
		t.Fatal("empty ring reported a percentile")
	}
	r.add(1 * time.Millisecond)
	r.add(3 * time.Millisecond)
	r.add(2 * time.Millisecond)
	if got := r.p50(); got != 2*time.Millisecond {
		t.Fatalf("p50 = %v, want 2ms", got)
	}
	// Overwrite the whole ring with a new regime: the median follows.
	for i := 0; i < 200; i++ {
		r.add(50 * time.Millisecond)
	}
	if got := r.p50(); got != 50*time.Millisecond {
		t.Fatalf("p50 after wrap = %v, want 50ms", got)
	}
}
