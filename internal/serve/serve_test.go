package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"egocensus/internal/core"
	"egocensus/internal/graph"
)

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.New(false)
	g.AddNodes(30)
	for i := 0; i < 70; i++ {
		a := graph.NodeID(rng.Intn(30))
		b := graph.NodeID(rng.Intn(30))
		if a != b {
			g.AddEdge(a, b)
		}
	}
	for i := 0; i < 30; i++ {
		kind := "even"
		if i%2 == 1 {
			kind = "odd"
		}
		g.SetNodeAttr(graph.NodeID(i), "kind", kind)
	}
	return New(core.NewEngine(g), cfg)
}

func postQuery(t *testing.T, s *Server, req QueryRequest) (*httptest.ResponseRecorder, *QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	r := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		return w, nil
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, w.Body.String())
	}
	return w, &resp
}

const serveQuery = `
PATTERN tri { ?A-?B; ?B-?C; ?C-?A; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k
`

func TestServeQueryPreparedReuse(t *testing.T) {
	s := testServer(t, Config{})
	w, resp := postQuery(t, s, QueryRequest{Query: serveQuery, Params: map[string]string{"k": "odd"}})
	if resp == nil {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Tables) != 1 {
		t.Fatalf("tables = %d", len(resp.Tables))
	}
	cold := resp.Tables[0]
	if cold.Stats.PlanCached || cold.Stats.ResultCached {
		t.Fatalf("cold request reported cache hits: %+v", cold.Stats)
	}

	// Same text, same params: whole table from the result cache.
	_, resp = postQuery(t, s, QueryRequest{Query: serveQuery, Params: map[string]string{"k": "odd"}})
	if !resp.Tables[0].Stats.ResultCached {
		t.Fatalf("repeat request missed the result cache: %+v", resp.Tables[0].Stats)
	}
	// Same text, new params: prepared + plan reused, census re-runs.
	_, resp = postQuery(t, s, QueryRequest{Query: serveQuery, Params: map[string]string{"k": "even"}})
	st := resp.Tables[0].Stats
	if !st.PlanCached || st.ResultCached {
		t.Fatalf("rebound request: %+v", st)
	}
	if n := s.statementCount(); n != 1 {
		t.Fatalf("prepared statements = %d, want 1", n)
	}
}

func TestServeMultiStatementFallback(t *testing.T) {
	s := testServer(t, Config{})
	query := `
PATTERN e1 { ?A-?B; }
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes;
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 2)) FROM nodes
`
	w, resp := postQuery(t, s, QueryRequest{Query: query})
	if resp == nil {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(resp.Tables))
	}
	// Params cannot ride the script path.
	w, _ = postQuery(t, s, QueryRequest{Query: query, Params: map[string]string{"k": "x"}})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("script + params: status %d", w.Code)
	}
}

func TestServeBadRequests(t *testing.T) {
	s := testServer(t, Config{})
	cases := []struct {
		name string
		req  QueryRequest
		want int
	}{
		{"empty", QueryRequest{}, http.StatusBadRequest},
		{"parse error", QueryRequest{Query: "SELEC oops"}, http.StatusBadRequest},
		{"missing param", QueryRequest{Query: serveQuery}, http.StatusBadRequest},
		{"unknown param", QueryRequest{Query: serveQuery, Params: map[string]string{"k": "odd", "zz": "1"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w, _ := postQuery(t, s, tc.req); w.Code != tc.want {
			t.Errorf("%s: status %d want %d (%s)", tc.name, w.Code, tc.want, w.Body.String())
		}
	}
	// Malformed JSON.
	r := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader([]byte("{")))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", w.Code)
	}
}

func TestServeMaxRowsLimit(t *testing.T) {
	s := testServer(t, Config{})
	query := `
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes
`
	w, _ := postQuery(t, s, QueryRequest{Query: query, MaxRows: 3, NoCache: true})
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("row-limited query: status %d (%s)", w.Code, w.Body.String())
	}
	var resp ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Partial == nil || len(resp.Partial.Rows) == 0 {
		t.Fatalf("limit stop should carry partial rows: %+v", resp)
	}
}

func TestServeAdmissionControl(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 1, MaxQueue: 1})

	// Occupy the only execution slot and the only queue slot directly.
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// This waiter fills the single queue slot until cancelled.
		if _, err := s.acquire(waiterCtx); err == nil {
			t.Error("queued waiter acquired while slot held")
		}
	}()
	for s.queued.Load() == 0 {
		runtime.Gosched()
	}

	// Slot busy, queue full: the request is shed with 429.
	w, _ := postQuery(t, s, QueryRequest{Query: serveQuery, Params: map[string]string{"k": "odd"}})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d (%s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	cancelWaiter()
	wg.Wait()
	release()

	// Drained: the same request succeeds.
	w, resp := postQuery(t, s, QueryRequest{Query: serveQuery, Params: map[string]string{"k": "odd"}})
	if resp == nil {
		t.Fatalf("after drain: status %d (%s)", w.Code, w.Body.String())
	}
	if s.rejected.Load() == 0 {
		t.Fatal("rejection counter not incremented")
	}
}

func TestServeStatsAndHealth(t *testing.T) {
	s := testServer(t, Config{})
	if _, resp := postQuery(t, s, QueryRequest{Query: serveQuery, Params: map[string]string{"k": "odd"}}); resp == nil {
		t.Fatal("seed query failed")
	}
	r := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("stats: status %d", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 30 || st.Requests == 0 || st.Statements != 1 {
		t.Fatalf("stats = %+v", st)
	}

	r = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
}

// TestStressServeConcurrentClients hammers one server from many goroutines
// with mixed bindings while a tiny queue forces rejections; every accepted
// response must be well-formed and every rejection must be a clean 429.
func TestStressServeConcurrentClients(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 2, MaxQueue: 2})
	var wg sync.WaitGroup
	var ok, shed int
	var mu sync.Mutex
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := "odd"
				if (c+i)%2 == 0 {
					k = "even"
				}
				w, resp := postQuery(t, s, QueryRequest{Query: serveQuery, Params: map[string]string{"k": k}})
				mu.Lock()
				switch {
				case resp != nil:
					ok++
				case w.Code == http.StatusTooManyRequests:
					shed++
				default:
					t.Errorf("client %d: status %d (%s)", c, w.Code, w.Body.String())
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
	t.Logf("served %d, shed %d", ok, shed)
}
