package measures

import (
	"math"
	"math/rand"
	"testing"

	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

func TestDegreeReduction(t *testing.T) {
	g := gen.ErdosRenyi(40, 90, 3)
	for _, alg := range []core.Algorithm{core.NDPvot, core.PTOpt} {
		deg, err := Degree(g, alg, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < g.NumNodes(); n++ {
			if deg[n] != int64(len(g.Neighbors(graph.NodeID(n)))) {
				t.Fatalf("%s: node %d degree %d want %d", alg, n, deg[n], len(g.Neighbors(graph.NodeID(n))))
			}
		}
	}
}

func TestClusteringCoefficientReduction(t *testing.T) {
	g := gen.ErdosRenyi(30, 70, 5)
	cc, err := ClusteringCoefficient(g, 1, core.NDPvot, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		nbrs := g.Neighbors(id)
		k := len(nbrs)
		var want float64
		if k >= 2 {
			set := map[graph.NodeID]bool{}
			for _, m := range nbrs {
				set[m] = true
			}
			links := 0
			for e := 0; e < g.NumEdges(); e++ {
				ed := g.Edge(graph.EdgeID(e))
				if set[ed.From] && set[ed.To] {
					links++
				}
			}
			want = float64(links) / (float64(k) * float64(k-1) / 2)
		}
		if math.Abs(cc[n]-want) > 1e-12 {
			t.Fatalf("node %d: cc %v want %v", n, cc[n], want)
		}
	}
}

func TestKClusteringCoefficientDefinition(t *testing.T) {
	// k-clustering coefficient: edges among the k-hop alters over alter
	// pairs. Verify the census-based value against a direct computation on
	// the extracted neighborhood.
	g := gen.ErdosRenyi(25, 55, 7)
	k := 2
	cc, err := ClusteringCoefficient(g, k, core.PTOpt, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		reach := g.KHopNodes(id, k)
		alters := len(reach) - 1
		var want float64
		if alters >= 2 {
			within := 0
			for e := 0; e < g.NumEdges(); e++ {
				ed := g.Edge(graph.EdgeID(e))
				if ed.From == id || ed.To == id {
					continue
				}
				_, inA := reach[ed.From]
				_, inB := reach[ed.To]
				if inA && inB {
					within++
				}
			}
			want = float64(within) / (float64(alters) * float64(alters-1) / 2)
		}
		if math.Abs(cc[n]-want) > 1e-12 {
			t.Fatalf("node %d: k-cc %v want %v", n, cc[n], want)
		}
	}
}

func TestJaccardReduction(t *testing.T) {
	g := gen.ErdosRenyi(20, 45, 9)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		a := graph.NodeID(rng.Intn(g.NumNodes()))
		b := graph.NodeID(rng.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		got, err := Jaccard(g, a, b, core.PTOpt, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Direct closed-neighborhood Jaccard.
		na := g.KHopNodes(a, 1)
		nb := g.KHopNodes(b, 1)
		inter := 0
		for n := range na {
			if _, ok := nb[n]; ok {
				inter++
			}
		}
		union := len(na) + len(nb) - inter
		want := 0.0
		if union > 0 {
			want = float64(inter) / float64(union)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("J(%d,%d) = %v want %v", a, b, got, want)
		}
	}
}

func brokerGraph() *graph.Graph {
	// A -> B -> C open triads across two orgs.
	g := graph.New(true)
	for i := 0; i < 6; i++ {
		g.AddNode()
	}
	// org1: 0,1,2 ; org2: 3,4,5
	for i := 0; i < 3; i++ {
		g.SetLabel(graph.NodeID(i), "org1")
		g.SetLabel(graph.NodeID(i+3), "org2")
	}
	g.AddEdge(0, 1) // org1 -> org1
	g.AddEdge(1, 2) // 0->1->2 coordinator (broker 1)
	g.AddEdge(3, 1) // org2 -> org1
	// 3->1->2: A outside, B,C inside => gatekeeper (broker 1)
	g.AddEdge(1, 4) // org1 -> org2
	// 0->1->4: A,B inside, C outside => representative (broker 1)
	// 3->1->4: A,C same org2, B org1 => consultant (broker 1)
	g.AddEdge(5, 3) // org2 -> org2
	return g
}

func TestBrokerageScores(t *testing.T) {
	g := brokerGraph()
	want := map[BrokerageRole]map[graph.NodeID]int64{
		Coordinator:    {1: 1},       // 0->1->2
		Gatekeeper:     {1: 1},       // 3->1->2
		Representative: {1: 1, 3: 1}, // 0->1->4 and 5->3->1
		Consultant:     {1: 1},       // 3->1->4
		Liaison:        {},
	}
	all, err := AllBrokerageScores(g, core.NDPvot, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for role, scores := range all {
		for n := 0; n < g.NumNodes(); n++ {
			if scores[n] != want[role][graph.NodeID(n)] {
				t.Fatalf("%s: node %d = %d want %d", role, n, scores[n], want[role][graph.NodeID(n)])
			}
		}
	}
}

func TestBrokerageClosedTriadExcluded(t *testing.T) {
	g := brokerGraph()
	g.AddEdge(0, 2) // closes the coordinator triad 0->1->2
	scores, err := BrokerageScores(g, Coordinator, core.PTOpt, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if scores[1] != 0 {
		t.Fatalf("closed triad should not count: %d", scores[1])
	}
}

func TestBrokerageRolesAgreeAcrossAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New(true)
	for i := 0; i < 40; i++ {
		n := g.AddNode()
		g.SetLabel(n, []string{"org1", "org2", "org3"}[rng.Intn(3)])
	}
	seen := map[[2]graph.NodeID]bool{}
	for len(seen) < 120 {
		a := graph.NodeID(rng.Intn(40))
		b := graph.NodeID(rng.Intn(40))
		if a == b || seen[[2]graph.NodeID{a, b}] {
			continue
		}
		seen[[2]graph.NodeID{a, b}] = true
		g.AddEdge(a, b)
	}
	for _, role := range BrokerageRoles {
		var want []int64
		for _, alg := range []core.Algorithm{core.NDBas, core.NDPvot, core.PTBas, core.PTOpt} {
			scores, err := BrokerageScores(g, role, alg, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", role, alg, err)
			}
			if want == nil {
				want = scores
				continue
			}
			for n := range want {
				if scores[n] != want[n] {
					t.Fatalf("%s/%s: node %d = %d want %d", role, alg, n, scores[n], want[n])
				}
			}
		}
	}
}

func TestBrokerageRequiresDirected(t *testing.T) {
	g := gen.ErdosRenyi(10, 15, 1)
	if _, err := BrokerageScores(g, Coordinator, core.NDPvot, core.Options{}); err == nil {
		t.Fatal("undirected graph should be rejected")
	}
}
