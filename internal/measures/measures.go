// Package measures implements the classic ego-centric measures that
// Section I of the paper shows to be special cases of pattern census
// queries — degree, (k-)clustering coefficient, Jaccard coefficient, and
// the brokerage role scores of Fig 1(c) — each expressed and evaluated as
// the corresponding census. The package both demonstrates the reductions
// and provides ready-made analysis tools; its tests verify every reduction
// against a direct computation.
package measures

import (
	"fmt"

	"egocensus/internal/core"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// Degree computes each node's degree as a census: single-node pattern in
// the 1-hop neighborhood, minus one for the ego itself.
func Degree(g *graph.Graph, alg core.Algorithm, opt core.Options) ([]int64, error) {
	spec := core.Spec{Pattern: pattern.SingleNode("single_node", ""), K: 1}
	res, err := core.Count(g, spec, alg, opt)
	if err != nil {
		return nil, err
	}
	out := make([]int64, g.NumNodes())
	for n := range out {
		out[n] = res.Counts[n] - 1
	}
	return out, nil
}

// ClusteringCoefficient computes each node's k-clustering coefficient
// (Jiang & Claramunt; k=1 is the standard local clustering coefficient) as
// two censuses: edges among the k-hop neighborhood versus nodes in it.
//
// The coefficient is E / (N*(N-1)/2) where N and E are the node and edge
// counts of S(n, k) excluding the ego and its incident edges.
func ClusteringCoefficient(g *graph.Graph, k int, alg core.Algorithm, opt core.Options) ([]float64, error) {
	nodeSpec := core.Spec{Pattern: pattern.SingleNode("single_node", ""), K: k}
	nodes, err := core.Count(g, nodeSpec, alg, opt)
	if err != nil {
		return nil, err
	}
	edgeSpec := core.Spec{Pattern: pattern.SingleEdge("single_edge", nil), K: k}
	edges, err := core.Count(g, edgeSpec, alg, opt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, g.NumNodes())
	for n := range out {
		id := graph.NodeID(n)
		// Exclude the ego and its incident edges within the neighborhood.
		alters := nodes.Counts[n] - 1
		if alters < 2 {
			continue
		}
		within := edges.Counts[n] - egoIncidentWithin(g, id, k)
		out[n] = float64(within) / (float64(alters) * float64(alters-1) / 2)
	}
	return out, nil
}

// egoIncidentWithin counts edges incident on the ego with the other
// endpoint inside N_k (for k >= 1 that is simply the ego's distinct
// neighbor count, since neighbors are within 1 <= k hops).
func egoIncidentWithin(g *graph.Graph, n graph.NodeID, k int) int64 {
	if k < 1 {
		return 0
	}
	return int64(len(g.Neighbors(n)))
}

// Jaccard computes the Jaccard coefficient of a node pair from two
// pairwise censuses (|N1 ∩ N1| / |N1 ∪ N1| over closed 1-hop
// neighborhoods), as sketched in Section I.
func Jaccard(g *graph.Graph, a, b graph.NodeID, alg core.Algorithm, opt core.Options) (float64, error) {
	pairs := []core.Pair{core.MakePair(a, b)}
	inter := core.PairSpec{
		Spec:  core.Spec{Pattern: pattern.SingleNode("single_node", ""), K: 1},
		Mode:  core.Intersection,
		Pairs: pairs,
	}
	ri, err := core.CountPairs(g, inter, alg, opt)
	if err != nil {
		return 0, err
	}
	union := inter
	union.Mode = core.Union
	ru, err := core.CountPairs(g, union, alg, opt)
	if err != nil {
		return 0, err
	}
	u := ru.Counts[core.MakePair(a, b)]
	if u == 0 {
		return 0, nil
	}
	return float64(ri.Counts[core.MakePair(a, b)]) / float64(u), nil
}

// BrokerageRole names one of the Fig 1(c) broker types for the open triad
// A -> B -> C with broker B. (The "itinerant broker"/consultant role of
// Gould–Fernandez requires B outside with A and C in one shared
// organization.)
type BrokerageRole string

// The five Gould–Fernandez brokerage roles.
const (
	Coordinator    BrokerageRole = "coordinator"    // A, B, C same org
	Gatekeeper     BrokerageRole = "gatekeeper"     // A outside; B, C same org
	Representative BrokerageRole = "representative" // A, B same org; C outside
	Consultant     BrokerageRole = "consultant"     // A, C same org; B outside
	Liaison        BrokerageRole = "liaison"        // all three different
)

// BrokerageRoles lists all roles.
var BrokerageRoles = []BrokerageRole{Coordinator, Gatekeeper, Representative, Consultant, Liaison}

// brokeragePattern builds the open-triad pattern for a role, with the
// "broker" subpattern on the middle node.
func brokeragePattern(role BrokerageRole) (*pattern.Pattern, error) {
	p := pattern.New("triad_" + string(role))
	a := p.MustAddNode("A", "")
	b := p.MustAddNode("B", "")
	c := p.MustAddNode("C", "")
	p.MustAddEdge(a, b, true, false)
	p.MustAddEdge(b, c, true, false)
	p.MustAddEdge(a, c, true, true)
	eq := func(x, y int) pattern.Predicate {
		return pattern.Predicate{Op: pattern.OpEq, L: pattern.NodeAttr(x, "LABEL"), R: pattern.NodeAttr(y, "LABEL")}
	}
	ne := func(x, y int) pattern.Predicate {
		return pattern.Predicate{Op: pattern.OpNe, L: pattern.NodeAttr(x, "LABEL"), R: pattern.NodeAttr(y, "LABEL")}
	}
	switch role {
	case Coordinator:
		p.AddPredicate(eq(a, b))
		p.AddPredicate(eq(b, c))
	case Gatekeeper:
		p.AddPredicate(ne(a, b))
		p.AddPredicate(eq(b, c))
	case Representative:
		p.AddPredicate(eq(a, b))
		p.AddPredicate(ne(b, c))
	case Consultant:
		p.AddPredicate(eq(a, c))
		p.AddPredicate(ne(a, b))
		p.AddPredicate(ne(b, c))
	case Liaison:
		p.AddPredicate(ne(a, b))
		p.AddPredicate(ne(b, c))
		p.AddPredicate(ne(a, c))
	default:
		return nil, fmt.Errorf("measures: unknown brokerage role %q", role)
	}
	if err := p.AddSubpattern("broker", []int{b}); err != nil {
		return nil, err
	}
	return p, nil
}

// BrokerageScores counts, for every node, the open directed triads
// A -> B -> C in which the node is the broker B of the given role — a
// COUNTSP census at k=0 (Table I row 4 generalized to all five roles).
// The graph must be directed with organizations as node labels.
func BrokerageScores(g *graph.Graph, role BrokerageRole, alg core.Algorithm, opt core.Options) ([]int64, error) {
	if !g.Directed() {
		return nil, fmt.Errorf("measures: brokerage requires a directed graph")
	}
	p, err := brokeragePattern(role)
	if err != nil {
		return nil, err
	}
	spec := core.Spec{Pattern: p, Subpattern: "broker", K: 0}
	res, err := core.Count(g, spec, alg, opt)
	if err != nil {
		return nil, err
	}
	return res.Counts, nil
}

// AllBrokerageScores runs every role census and returns scores[role][n].
func AllBrokerageScores(g *graph.Graph, alg core.Algorithm, opt core.Options) (map[BrokerageRole][]int64, error) {
	out := make(map[BrokerageRole][]int64, len(BrokerageRoles))
	for _, role := range BrokerageRoles {
		scores, err := BrokerageScores(g, role, alg, opt)
		if err != nil {
			return nil, err
		}
		out[role] = scores
	}
	return out, nil
}
