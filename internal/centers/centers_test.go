package centers

import (
	"testing"
	"testing/quick"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

func TestBuildByDegreePicksHubs(t *testing.T) {
	g := graph.New(false)
	hub := g.AddNode()
	for i := 0; i < 5; i++ {
		l := g.AddNode()
		g.AddEdge(hub, l)
	}
	idx := Build(g, 1, ByDegree, 0)
	if idx.Len() != 1 || idx.Centers[0] != hub {
		t.Fatalf("centers = %v, want [%d]", idx.Centers, hub)
	}
	if idx.FromCenter(0, hub) != 0 || idx.FromCenter(0, 1) != 1 {
		t.Fatal("distance row wrong")
	}
}

func TestBuildZeroCenters(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	idx := Build(g, 0, ByDegree, 0)
	if idx.Len() != 0 {
		t.Fatal("0 centers should produce empty index")
	}
	if _, ok := idx.Bound(0, 1); ok {
		t.Fatal("empty index should not produce bounds")
	}
}

func TestBuildClampsToNumNodes(t *testing.T) {
	g := gen.ErdosRenyi(5, 6, 1)
	idx := Build(g, 50, ByDegree, 0)
	if idx.Len() != 5 {
		t.Fatalf("centers = %d want 5", idx.Len())
	}
}

func TestRandomStrategyDistinct(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 2)
	idx := Build(g, 10, Random, 7)
	if idx.Len() != 10 {
		t.Fatalf("centers = %d", idx.Len())
	}
	seen := map[graph.NodeID]bool{}
	for _, c := range idx.Centers {
		if seen[c] {
			t.Fatal("duplicate random center")
		}
		seen[c] = true
	}
}

func TestBoundIsValidUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.PreferentialAttachment(40, 2, seed)
		idx := Build(g, 4, ByDegree, seed)
		a := graph.NodeID(uint64(seed) % 40)
		b := graph.NodeID((uint64(seed) >> 7) % 40)
		bound, ok := idx.Bound(a, b)
		if !ok {
			return true // disconnected; nothing to verify
		}
		actual := g.HopDistance(a, b, -1)
		return actual >= 0 && int32(actual) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundUnreachable(t *testing.T) {
	g := graph.New(false)
	a := g.AddNode()
	b := g.AddNode()
	c := g.AddNode()
	g.AddEdge(a, b)
	idx := Build(g, 1, ByDegree, 0)
	if _, ok := idx.Bound(a, c); ok {
		t.Fatal("bound to isolated node should be unavailable")
	}
}
