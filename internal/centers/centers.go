// Package centers implements the center-based distance machinery of
// Section IV-B4: a small set of important nodes is picked apriori (highest
// degree, per the paper, or random for the RND-CNTR ablation), exact BFS
// distances from every center to every node are precomputed, and the
// triangle inequality turns those rows into upper bounds on arbitrary
// node-to-node distances.
package centers

import (
	"math/rand"
	"sort"

	"egocensus/internal/graph"
)

// Strategy selects how centers are chosen.
type Strategy int

const (
	// ByDegree picks the highest-degree nodes (the paper's DEG-CNTR).
	ByDegree Strategy = iota
	// Random picks uniform random nodes (the paper's RND-CNTR ablation).
	Random
)

// Index holds a set of centers and their precomputed distance rows.
type Index struct {
	// Centers lists the chosen center nodes.
	Centers []graph.NodeID
	// Dist[i][n] is the hop distance from Centers[i] to node n (-1 when
	// unreachable).
	Dist [][]int32
}

// Build selects numCenters centers with the given strategy and runs one
// full BFS per center. numCenters = 0 yields an empty index (centers
// disabled), matching the paper's "0 centers" configuration.
func Build(g *graph.Graph, numCenters int, strategy Strategy, seed int64) *Index {
	idx := &Index{}
	if numCenters <= 0 || g.NumNodes() == 0 {
		return idx
	}
	if numCenters > g.NumNodes() {
		numCenters = g.NumNodes()
	}
	switch strategy {
	case ByDegree:
		order := make([]graph.NodeID, g.NumNodes())
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := g.Degree(order[i]), g.Degree(order[j])
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
		idx.Centers = append(idx.Centers, order[:numCenters]...)
	case Random:
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(g.NumNodes())
		for _, i := range perm[:numCenters] {
			idx.Centers = append(idx.Centers, graph.NodeID(i))
		}
	default:
		panic("centers: unknown strategy")
	}
	idx.Dist = make([][]int32, len(idx.Centers))
	for i, c := range idx.Centers {
		idx.Dist[i] = g.Distances(c)
	}
	return idx
}

// Len returns the number of centers.
func (idx *Index) Len() int { return len(idx.Centers) }

// Bound returns an upper bound on d(a, b) through the centers:
// min_c d(a,c) + d(c,b). The second result is false when no center reaches
// both nodes (bound unavailable).
func (idx *Index) Bound(a, b graph.NodeID) (int32, bool) {
	best := int32(-1)
	for i := range idx.Centers {
		da, db := idx.Dist[i][a], idx.Dist[i][b]
		if da < 0 || db < 0 {
			continue
		}
		if s := da + db; best < 0 || s < best {
			best = s
		}
	}
	return best, best >= 0
}

// FromCenter returns d(Centers[i], n).
func (idx *Index) FromCenter(i int, n graph.NodeID) int32 { return idx.Dist[i][n] }
