// Package lint is egolint: a suite of custom static analyzers that
// machine-enforce this repository's correctness invariants — the fault.FS
// storage seam, deterministic merge-path iteration, end-to-end context
// plumbing, wrap-transparent error handling, and pointer-only snapshot
// state. doc/INVARIANTS.md catalogues each invariant; cmd/egolint is the
// driver CI runs.
//
// The analyzers are written against internal/lint/analysis, a minimal
// stdlib-only mirror of golang.org/x/tools/go/analysis (unavailable in
// this build environment); porting to the upstream framework is an import
// swap.
package lint

import (
	"go/token"
	"sort"

	"egocensus/internal/lint/analysis"
	"egocensus/internal/lint/load"
)

// A Finding is one confirmed, unsuppressed violation.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("egolint" for
	// malformed directives).
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message describes it.
	Message string
}

// Analyzers returns the full egolint suite, sorted by name.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CtxFlow,
		DetRange,
		ErrWrapCheck,
		FaultFS,
		SnapGuard,
	}
}

// AnalyzerNames returns the names of the given analyzers plus the
// reserved directive-checker name, as a set.
func AnalyzerNames(as []*analysis.Analyzer) map[string]bool {
	names := map[string]bool{}
	for _, a := range as {
		names[a.Name] = true
	}
	return names
}

// Run applies the analyzers to every package, resolves //egolint:allow
// suppressions, and returns the surviving findings sorted by position.
// Malformed directives surface as findings under the name "egolint".
//
// Suppression is resolved against the full suite's name set, so an
// //egolint:allow for an analyzer not in this run is still recognized
// (and a typo is still an error) when running a subset via -run.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := AnalyzerNames(Analyzers())
	var findings []Finding
	for _, pkg := range pkgs {
		sup, bad := parseDirectives(pkg, known)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if sup.suppressed(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
