package lint

import (
	"go/ast"

	"egocensus/internal/lint/analysis"
)

// faultFSPkgs are the packages whose storage I/O must flow through the
// fault.FS seam: the persistence layer itself and the graph core (whose
// WAL retry and degraded-mode logic must stay injectable). internal/fault
// is the seam's implementation and is deliberately out of scope.
var faultFSPkgs = map[string]bool{
	storagePkgPath: true,
	graphPkgPath:   true,
}

// faultFSBanned is the set of direct os-package entry points that create,
// mutate, or stat files. Predicate helpers (os.IsNotExist), error
// sentinels (os.ErrNotExist), flag constants (os.O_RDWR), and types
// (os.FileInfo) stay allowed: they don't perform I/O, so they can't dodge
// fault injection.
var faultFSBanned = map[string]bool{
	"Open":       true,
	"OpenFile":   true,
	"Create":     true,
	"CreateTemp": true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"Truncate":   true,
	"Stat":       true,
	"Lstat":      true,
	"ReadFile":   true,
	"WriteFile":  true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
	"ReadDir":    true,
	"Chmod":      true,
	"Chtimes":    true,
}

// FaultFS flags direct os file-I/O calls inside internal/storage and
// internal/graph that bypass the fault.FS seam (PR 8). Every byte those
// packages put on or take off disk must be interceptable by the fault
// injector, or the crash-recovery soak (cmd/chaos) silently loses
// coverage of that path.
var FaultFS = &analysis.Analyzer{
	Name: "faultfs",
	Doc: "flag direct os file-I/O in storage/graph that bypasses the fault.FS seam\n\n" +
		"internal/storage and internal/graph must perform file I/O through a\n" +
		"fault.FS (fault.OS{} in production) so the deterministic fault injector\n" +
		"and the chaos harness can intercept every durability-relevant operation.",
	Run: runFaultFS,
}

func runFaultFS(pass *analysis.Pass) (interface{}, error) {
	if !faultFSPkgs[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(pass, call)
			if !ok || pkg != "os" || !faultFSBanned[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s bypasses the fault.FS seam; route through a fault.FS (fault.OS{} in production) so fault injection covers this path, or annotate //egolint:allow faultfs <reason>", name)
			return true
		})
	}
	return nil, nil
}
