package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"egocensus/internal/lint/analysis"
)

// ErrWrapCheck enforces wrap-transparent error handling. The engine's
// typed errors (*CanceledError, *LimitError, *TransientError,
// *CorruptFileError, *DegradedError, ...) carry structured state —
// partial counts, progress, epochs — that callers recover with
// errors.As; storage and serve wrap them repeatedly on the way up. Three
// shapes silently break that chain:
//
//  1. fmt.Errorf("...: %v", err) — formats the error into a string, so
//     errors.Is/As can no longer see through it. Use %w.
//  2. err == SomeErr / err != SomeErr — identity comparison fails once
//     the sentinel is wrapped. Use errors.Is. (Comparisons to nil are
//     fine.)
//  3. err.(*SomeError) — a direct type assertion fails once wrapped.
//     Use errors.As. (Type switches are not flagged: exhaustive
//     unwrap-free dispatch over freshly produced errors is idiomatic.)
var ErrWrapCheck = &analysis.Analyzer{
	Name: "errwrapcheck",
	Doc: "flag error handling that breaks under wrapping\n\n" +
		"fmt.Errorf must use %w (not %v/%s) for wrapped errors; sentinel\n" +
		"comparisons must use errors.Is; concrete-type extraction must use\n" +
		"errors.As. The typed-error contracts in internal/core/errors.go only\n" +
		"survive wrapping if every layer preserves the chain.",
	Run: runErrWrapCheck,
}

func runErrWrapCheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.BinaryExpr:
				checkErrCompare(pass, n)
			case *ast.TypeAssertExpr:
				checkErrAssert(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkErrorf flags fmt.Errorf calls that pass an error argument but no
// %w verb in a constant format string.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := pkgFunc(pass, call)
	if !ok || pkg != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if implementsError(pass.TypesInfo.Types[arg].Type) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error argument without %%w, severing the errors.Is/As chain; use %%w (or annotate //egolint:allow errwrapcheck <reason> if flattening is intended)")
			return
		}
	}
}

// checkErrCompare flags ==/!= between two error-typed operands (nil
// comparisons excluded).
func checkErrCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	xt := pass.TypesInfo.Types[be.X].Type
	yt := pass.TypesInfo.Types[be.Y].Type
	if !implementsError(xt) || !implementsError(yt) {
		return
	}
	pass.Reportf(be.Pos(),
		"comparing errors with %s fails once the sentinel is wrapped; use errors.Is (or annotate //egolint:allow errwrapcheck <reason> for intentional identity comparison)", be.Op)
}

// checkErrAssert flags x.(*ConcreteError) where x is the error interface
// and the asserted type implements error. Type switches produce
// TypeAssertExprs with a nil Type and are skipped.
func checkErrAssert(pass *analysis.Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return
	}
	if !isErrorType(pass.TypesInfo.Types[ta.X].Type) {
		return
	}
	at := pass.TypesInfo.Types[ta.Type].Type
	if !implementsError(at) || isErrorType(at) {
		return
	}
	pass.Reportf(ta.Pos(),
		"type-asserting an error to a concrete error type fails once it is wrapped; use errors.As (or annotate //egolint:allow errwrapcheck <reason>)")
}
