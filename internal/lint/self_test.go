package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"egocensus/internal/lint"
	"egocensus/internal/lint/load"
)

// TestRepoLintsClean is the smoke test the acceptance criteria require:
// the full analyzer suite over the entire repository, exactly as
// cmd/egolint runs it in CI, must produce zero findings. A failure here
// means a new violation landed without a fix or an //egolint:allow
// annotation — see doc/INVARIANTS.md.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	root := moduleRootT(t)
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s (egolint:%s)", f.Pos, f.Message, f.Analyzer)
	}
}

func moduleRootT(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above working directory")
		}
		dir = parent
	}
}
