// Package snap is a snapguard fixture: it imports the real
// internal/graph package and exercises every flagged copy shape plus the
// sanctioned pointer forms.
package snap

import (
	"egocensus/internal/graph"
)

// byValueParam copies the snapshot at every call.
func byValueParam(s graph.Snapshot) uint64 { // want `declaring graph\.Snapshot by value forks epoch-stamped shared state`
	return s.Epoch()
}

// byValueVar declares a zero-value snapshot outside its constructors.
func byValueVar() {
	var s graph.Snapshot // want `declaring graph\.Snapshot by value forks epoch-stamped shared state`
	_ = s
}

// derefCopy forks the pointed-to snapshot.
func derefCopy(p *graph.Snapshot) {
	s := *p // want `dereferencing copies graph\.Snapshot by value`
	_ = s
}

// literalConstruct bypasses Freeze / Writer publishes.
func literalConstruct() {
	_ = graph.Snapshot{} // want `constructing graph\.Snapshot outside internal/graph bypasses its constructors`
}

// graphField embeds the mutable core by value.
type graphField struct {
	g graph.Graph // want `declaring graph\.Graph by value forks epoch-stamped shared state`
}

// pointerForms shows the sanctioned shapes: pointers everywhere, reads
// through the pointer (auto-deref and explicit) copy nothing.
func pointerForms(p *graph.Snapshot) (uint64, *graph.Graph) {
	var q *graph.Snapshot = p
	e := q.Epoch() + (*q).Epoch()
	return e, p.Graph()
}

func suppressedSite(p *graph.Snapshot) {
	s := *p //egolint:allow snapguard fixture: sanctioned copy in a test harness
	_ = s
}
