// Package errx is an errwrapcheck fixture.
package errx

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// TimeoutError is a typed error like the engine's *CanceledError family.
type TimeoutError struct{ Seconds int }

func (e *TimeoutError) Error() string { return fmt.Sprintf("timeout after %ds", e.Seconds) }

func flattensError(err error) error {
	return fmt.Errorf("decode failed: %v", err) // want `fmt\.Errorf formats an error argument without %w`
}

func wrapsError(err error) error {
	return fmt.Errorf("decode failed: %w", err)
}

func noErrorArgs(n int) error {
	return fmt.Errorf("bad count %d of %v", n, []int{1})
}

func comparesIdentity(err error) bool {
	return err == errSentinel // want `comparing errors with == fails once the sentinel is wrapped`
}

func comparesInequality(err error) bool {
	if err != nil { // nil comparisons are fine
		return err != errSentinel // want `comparing errors with != fails once the sentinel is wrapped`
	}
	return false
}

func usesErrorsIs(err error) bool {
	return errors.Is(err, errSentinel)
}

func assertsConcrete(err error) int {
	if te, ok := err.(*TimeoutError); ok { // want `type-asserting an error to a concrete error type fails once it is wrapped`
		return te.Seconds
	}
	return 0
}

func usesErrorsAs(err error) int {
	var te *TimeoutError
	if errors.As(err, &te) {
		return te.Seconds
	}
	return 0
}

// typeSwitchAllowed: exhaustive dispatch over freshly produced errors is
// idiomatic and not flagged.
func typeSwitchAllowed(err error) string {
	switch err.(type) {
	case *TimeoutError:
		return "timeout"
	default:
		return "other"
	}
}

func suppressedSite(err error) error {
	return fmt.Errorf("terminal boundary: %v", err) //egolint:allow errwrapcheck fixture: flattening intended at this boundary
}
