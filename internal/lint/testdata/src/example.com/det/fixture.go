// Package det is a detrange fixture outside the default-deterministic
// packages: only functions opted in with //egolint:deterministic are
// checked.
package det

// mergeCounts is annotated onto the deterministic merge path.
//
//egolint:deterministic fixture: simulated merge helper
func mergeCounts(m map[int]int64, dst []int64) {
	for k, v := range m { // want `map iteration order is randomized`
		dst[k] += v
	}
}

// unannotated functions in ordinary packages may range over maps freely.
func unannotated(m map[int]int64) int64 {
	var sum int64
	for _, v := range m {
		sum += v
	}
	return sum
}
