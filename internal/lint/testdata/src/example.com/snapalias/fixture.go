// Package snapalias verifies snapguard sees through the public facade's
// `Snapshot = graph.Snapshot` alias: copying egocensus.Snapshot is the
// same violation as copying graph.Snapshot.
package snapalias

import (
	"egocensus"
)

func aliasByValue(s egocensus.Snapshot) uint64 { // want `declaring graph\.Snapshot by value forks epoch-stamped shared state`
	return s.Epoch()
}

func aliasPointerFine(s *egocensus.Snapshot) uint64 {
	return s.Epoch()
}
