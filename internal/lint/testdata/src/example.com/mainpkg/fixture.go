// Package main is a ctxflow fixture: fresh context roots are the
// expected shape at the program's entry point, so nothing here is
// flagged.
package main

import "context"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = run(ctx)
	_ = context.TODO()
}

func run(ctx context.Context) error { return ctx.Err() }
