// Package dirbad verifies that misspelled or malformed egolint
// directives are findings themselves: a typo must never silently disable
// a check.
package dirbad

func typoDirective() {
	//egolint:alow ctxflow oops // want `unknown egolint directive`
}

func unknownAnalyzer() {
	//egolint:allow nosuchanalyzer reason // want `malformed //egolint:allow directive`
}

func missingNames() {
	//egolint:allow // want `malformed //egolint:allow directive`
}
