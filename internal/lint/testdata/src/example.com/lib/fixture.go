// Package lib is a ctxflow fixture: a library package where fresh
// context roots are banned.
package lib

import "context"

func mintsBackground() error {
	ctx := context.Background() // want `context\.Background\(\) in a library package severs cancellation plumbing`
	return work(ctx)
}

func mintsTODO() error {
	return work(context.TODO()) // want `context\.TODO\(\) in a library package severs cancellation plumbing`
}

// threaded shows the correct shape: the caller's context flows through.
func threaded(ctx context.Context) error {
	return work(ctx)
}

// Convenience is the sanctioned exception — a public wrapper whose whole
// job is to supply the root.
func Convenience() error {
	return threaded(context.Background()) //egolint:allow ctxflow fixture: public non-Context convenience wrapper
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
