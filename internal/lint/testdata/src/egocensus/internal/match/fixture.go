// Package match is a detrange fixture: it carries the import path
// egocensus/internal/match, which is deterministic by default, so every
// function here is on the merge path without an opt-in directive.
package match

import "sort"

func rangesOverMap(m map[int]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is randomized`
		sum += v
	}
	return sum
}

// collectThenSort is the sanctioned idiom: the range body only appends,
// and the caller sorts before the order can leak.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func slicesAreFine(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}

func suppressedSite(m map[int]int) int {
	n := 0
	//egolint:allow detrange fixture: order-insensitive count
	for range m {
		n++
	}
	return n
}
