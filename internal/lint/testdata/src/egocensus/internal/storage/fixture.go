// Package storage is a faultfs fixture: it carries the import path
// egocensus/internal/storage, so the analyzer treats it as the real
// persistence layer.
package storage

import "os"

func bypassesSeam(path string) error {
	f, err := os.Create(path) // want `direct os\.Create bypasses the fault\.FS seam`
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := os.Open(path); err != nil { // want `direct os\.Open bypasses the fault\.FS seam`
		return err
	}
	if err := os.Rename(path, path+".bak"); err != nil { // want `direct os\.Rename bypasses the fault\.FS seam`
		return err
	}
	_, err = os.Stat(path) // want `direct os\.Stat bypasses the fault\.FS seam`
	return err
}

// predicatesAllowed shows the negative cases: error predicates,
// sentinels, flag constants, and types from os perform no I/O and stay
// legal.
func predicatesAllowed(err error) (bool, os.FileMode) {
	if os.IsNotExist(err) {
		return true, 0
	}
	_ = os.O_WRONLY | os.O_CREATE
	var fi os.FileInfo
	_ = fi
	return false, os.FileMode(0o644)
}

// suppressedSite shows an annotated exemption: the directive names the
// analyzer and gives a reason, so the finding is silenced.
func suppressedSite(path string) error {
	_, err := os.Stat(path) //egolint:allow faultfs fixture: sanctioned direct stat
	return err
}

// suppressedAbove shows the standalone-directive form applying to the
// following line.
func suppressedAbove(path string) error {
	//egolint:allow faultfs fixture: sanctioned direct remove
	return os.Remove(path)
}
