package lint

import (
	"go/ast"

	"egocensus/internal/lint/analysis"
)

// SnapGuard flags value copies of the epoch-stamped MVCC types
// graph.Snapshot and graph.Graph outside internal/graph. Both types are
// published by pointer: a Snapshot is an (epoch, *Graph) pair whose
// identity is the atomic pointer the Writer swaps, and a Graph carries
// frozen-flag and lazily CAS-published CSR/profile state. Copying either
// by value forks that state — two "identical" snapshots whose lazily
// built caches diverge, or a Graph whose frozen bit is copied while its
// shared adjacency is still aliased. Constructors inside internal/graph
// (Freeze, the Writer's publish path) are the only sanctioned producers.
//
// The analyzer flags three shapes outside internal/graph: dereferencing
// a *Snapshot/*Graph into a value, declaring a variable/field/parameter/
// result of bare Snapshot/Graph type, and constructing one with a
// composite literal. The facade's `Snapshot = graph.Snapshot` alias is
// resolved before matching, so egocensus.Snapshot is guarded too.
var SnapGuard = &analysis.Analyzer{
	Name: "snapguard",
	Doc: "flag value copies of epoch-stamped snapshot state outside internal/graph\n\n" +
		"graph.Snapshot and graph.Graph travel by pointer; a value copy forks\n" +
		"frozen/epoch/CSR-cache state that must stay shared. Only internal/graph\n" +
		"constructors may produce them.",
	Run: runSnapGuard,
}

func runSnapGuard(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == graphPkgPath {
		return nil, nil
	}
	for _, f := range pass.Files {
		// Selector bases auto-dereference without copying: (*s).Epoch()
		// reads through the pointer, so its StarExpr is exempt.
		selectorBase := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				base := sel.X
				for {
					if p, ok := base.(*ast.ParenExpr); ok {
						base = p.X
						continue
					}
					break
				}
				selectorBase[base] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StarExpr:
				tv, ok := pass.TypesInfo.Types[n]
				if !ok || !tv.IsValue() || selectorBase[ast.Expr(n)] {
					return true
				}
				if name := guardedGraphType(tv.Type); name != "" {
					pass.Reportf(n.Pos(),
						"dereferencing copies graph.%s by value, forking epoch-stamped shared state; keep the pointer (or annotate //egolint:allow snapguard <reason>)", name)
				}
			case *ast.Field:
				reportGuardedType(pass, n.Type, "declaring")
			case *ast.ValueSpec:
				if n.Type != nil {
					reportGuardedType(pass, n.Type, "declaring")
				}
			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[n]
				if !ok {
					return true
				}
				if name := guardedGraphType(tv.Type); name != "" {
					pass.Reportf(n.Pos(),
						"constructing graph.%s outside internal/graph bypasses its constructors; use graph.Freeze or a Writer publish (or annotate //egolint:allow snapguard <reason>)", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// reportGuardedType flags a type expression denoting a bare guarded type.
func reportGuardedType(pass *analysis.Pass, typeExpr ast.Expr, verb string) {
	tv, ok := pass.TypesInfo.Types[typeExpr]
	if !ok || !tv.IsType() {
		return
	}
	if name := guardedGraphType(tv.Type); name != "" {
		pass.Reportf(typeExpr.Pos(),
			"%s graph.%s by value forks epoch-stamped shared state; use *graph.%s (or annotate //egolint:allow snapguard <reason>)", verb, name, name)
	}
}
