package lint

import (
	"go/ast"

	"egocensus/internal/lint/analysis"
)

// CtxFlow flags context.Background() and context.TODO() in library
// packages. PR 3 threaded context.Context from the public API through the
// operator pipeline into every census driver and the worker pool; a
// Background() minted mid-pipeline severs that chain, so a caller's
// cancel or deadline silently stops propagating. Fresh roots belong in
// package main (cmd/, examples/) and in tests — both outside this
// analyzer's scope (test files are never loaded). The sanctioned
// exception, annotated //egolint:allow ctxflow, is a public non-Context
// convenience wrapper whose whole job is to supply the root for callers
// that opted out of cancellation.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background/TODO in library packages\n\n" +
		"Library code must thread the caller's context.Context; minting a fresh\n" +
		"root mid-pipeline breaks cancellation and deadline propagation end to\n" +
		"end. Allowed in package main and tests.",
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(pass, call)
			if !ok || pkg != "context" || (name != "Background" && name != "TODO") {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() in a library package severs cancellation plumbing; accept a context.Context from the caller, or annotate //egolint:allow ctxflow <reason> if this is a sanctioned root", name)
			return true
		})
	}
	return nil, nil
}
