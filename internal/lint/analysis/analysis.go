// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that egolint's analyzers are
// written against. The container this repo builds in has no module proxy
// access and an empty module cache, so the real x/tools package cannot be
// vendored; this package mirrors its core types (Analyzer, Pass,
// Diagnostic) closely enough that the analyzers port to the upstream
// framework by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, a doc string, and a Run
// function applied to one type-checked package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //egolint:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary, the rest elaborates.
	Doc string

	// Run applies the check to one package and reports diagnostics
	// through pass.Report. The returned value is unused by egolint (the
	// upstream API threads it to dependent analyzers) but kept for
	// signature compatibility.
	Run func(*Pass) (interface{}, error)
}

// A Pass provides one analyzed package to an Analyzer's Run function:
// syntax, types, and a sink for diagnostics.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	// Test files are not loaded.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type information for Files (Types, Defs, Uses,
	// Selections, Implicits, and Scopes are populated).
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver applies
	// //egolint:allow suppression after the fact, so analyzers report
	// every violation they see.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos is where the violation occurs.
	Pos token.Pos

	// Message describes the violation and, by convention, how to fix or
	// suppress it.
	Message string
}
