package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"egocensus/internal/lint/load"
)

// Egolint understands three comment directives (catalogued in
// doc/INVARIANTS.md):
//
//	//egolint:allow <name>[,<name>...] [reason]
//	    Suppress the named analyzers on the directive's line — or, when
//	    the comment stands alone on its line, on the following line.
//	    A reason is expected on every suppression; reviews enforce it.
//
//	//egolint:allowfile <name>[,<name>...] [reason]
//	    Suppress the named analyzers for the whole file.
//
//	//egolint:deterministic [reason]
//	    In a function's doc comment: opt the function onto the
//	    deterministic merge path, enabling the detrange analyzer inside
//	    it regardless of package. Consumed by detrange directly.
//
// Misspelled or malformed egolint: directives are themselves findings
// (analyzer name "egolint"), so a typo cannot silently disable a check.

const (
	allowPrefix     = "//egolint:allow "
	allowFilePrefix = "//egolint:allowfile "
	detPrefix       = "//egolint:deterministic"
	anyPrefix       = "//egolint:"
)

// suppressions records, for one package, which analyzers are silenced
// where. Lines are 1-based per file path.
type suppressions struct {
	// byLine[path][line] holds analyzer names allowed on that line.
	byLine map[string]map[int][]string
	// byFile[path] holds analyzer names allowed anywhere in the file.
	byFile map[string][]string
}

func (s *suppressions) suppressed(name string, pos token.Position) bool {
	for _, a := range s.byFile[pos.Filename] {
		if a == name {
			return true
		}
	}
	for _, a := range s.byLine[pos.Filename][pos.Line] {
		if a == name {
			return true
		}
	}
	return false
}

// parseDirectives scans a package's comments for egolint directives,
// returning the suppression table plus a finding for every malformed
// directive.
func parseDirectives(pkg *load.Package, known map[string]bool) (*suppressions, []Finding) {
	sup := &suppressions{
		byLine: map[string]map[int][]string{},
		byFile: map[string][]string{},
	}
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{
			Analyzer: "egolint",
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				text := c.Text
				if !strings.HasPrefix(text, anyPrefix) {
					continue
				}
				switch {
				case strings.HasPrefix(text, allowPrefix):
					names, ok := parseNames(text[len(allowPrefix):], known)
					if !ok {
						report(c.Slash, "malformed //egolint:allow directive: want //egolint:allow <analyzer>[,<analyzer>...] <reason>")
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					line := pos.Line
					if standsAlone(pkg.Sources[pos.Filename], pos) {
						line++
					}
					m := sup.byLine[pos.Filename]
					if m == nil {
						m = map[int][]string{}
						sup.byLine[pos.Filename] = m
					}
					m[line] = append(m[line], names...)
				case strings.HasPrefix(text, allowFilePrefix):
					names, ok := parseNames(text[len(allowFilePrefix):], known)
					if !ok {
						report(c.Slash, "malformed //egolint:allowfile directive: want //egolint:allowfile <analyzer>[,<analyzer>...] <reason>")
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					sup.byFile[pos.Filename] = append(sup.byFile[pos.Filename], names...)
				case text == detPrefix || strings.HasPrefix(text, detPrefix+" "):
					// Consumed by detrange via function doc comments;
					// validated here only for placement-independent
					// syntax (no arguments besides an optional reason).
				case text == strings.TrimSpace(allowPrefix):
					report(c.Slash, "malformed //egolint:allow directive: want //egolint:allow <analyzer>[,<analyzer>...] <reason>")
				case text == strings.TrimSpace(allowFilePrefix):
					report(c.Slash, "malformed //egolint:allowfile directive: want //egolint:allowfile <analyzer>[,<analyzer>...] <reason>")
				default:
					report(c.Slash, "unknown egolint directive "+firstWord(text)+": want //egolint:allow, //egolint:allowfile, or //egolint:deterministic")
				}
			}
		}
	}
	return sup, bad
}

// parseNames splits the comma-separated analyzer list heading a
// directive's argument text and validates every name against the known
// set. The remainder (the reason) is free text.
func parseNames(args string, known map[string]bool) ([]string, bool) {
	args = strings.TrimSpace(args)
	list := args
	if i := strings.IndexAny(args, " \t"); i >= 0 {
		list = args[:i]
	}
	if list == "" {
		return nil, false
	}
	names := strings.Split(list, ",")
	for _, n := range names {
		if !known[n] {
			return nil, false
		}
	}
	return names, true
}

// standsAlone reports whether only whitespace precedes the comment on
// its line, i.e. the directive is not trailing a statement.
func standsAlone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return len(strings.TrimSpace(string(src[start:pos.Offset]))) == 0
}

func firstWord(s string) string {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i]
	}
	return s
}

// docHasDeterministic reports whether a function's doc comment carries
// the //egolint:deterministic directive. Shared by detrange.
func docHasDeterministic(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, detPrefix) {
			return true
		}
	}
	return false
}
