package lint_test

import (
	"testing"

	"egocensus/internal/lint"
	"egocensus/internal/lint/analysistest"
)

// Each analyzer gets golden coverage over fixtures under testdata/src:
// positive cases (`// want` annotations), negative cases (legal shapes
// with no annotation), and directive-suppressed cases (violations
// silenced by //egolint:allow). Fixtures whose analyzers are
// package-scoped carry the real import paths (egocensus/internal/...).

func TestFaultFS(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.FaultFS, "egocensus/internal/storage")
}

func TestDetRangeDefaultPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.DetRange, "egocensus/internal/match")
}

func TestDetRangeDirectiveOptIn(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.DetRange, "example.com/det")
}

func TestCtxFlowLibrary(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.CtxFlow, "example.com/lib")
}

func TestCtxFlowMainAllowed(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.CtxFlow, "example.com/mainpkg")
}

func TestErrWrapCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.ErrWrapCheck, "example.com/errx")
}

func TestSnapGuard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.SnapGuard, "example.com/snap")
}

func TestSnapGuardFacadeAlias(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.SnapGuard, "example.com/snapalias")
}

// TestDirectiveErrors verifies malformed/unknown egolint directives are
// findings in their own right (reported under the reserved name
// "egolint"), regardless of which analyzer runs.
func TestDirectiveErrors(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.CtxFlow, "example.com/dirbad")
}

func TestAnalyzersHaveDocsAndUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if a.Name == "egolint" {
			t.Errorf("analyzer name %q collides with the reserved directive-checker name", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
