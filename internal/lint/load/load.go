// Package load turns Go packages on disk into type-checked syntax for
// egolint's analyzers, using only the standard library. It shells out to
// `go list -export -deps -json` — which compiles export data for every
// dependency into the build cache and reports the file paths — then
// parses each target package from source and type-checks it with a
// go/importer gc importer whose lookup function reads that export data.
// This is the same loading strategy golang.org/x/tools/go/packages uses
// under LoadAllSyntax, without the dependency.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path (e.g. egocensus/internal/graph).
	PkgPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset maps positions in Files.
	Fset *token.FileSet
	// Files is the parsed syntax of the package's non-test Go files,
	// with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type information for Files.
	Info *types.Info
	// Sources holds each file's raw bytes, keyed by the path recorded
	// in Fset. Directive handling uses it to decide whether a comment
	// stands alone on its line.
	Sources map[string][]byte
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over args and returns
// the decoded package stream.
func goList(dir string, args []string) ([]listedPkg, error) {
	cmdArgs := append([]string{"list", "-export", "-deps", "-json"}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %w\n%s", strings.Join(args, " "), err, stderr.Bytes())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves import paths
// through the given ImportPath -> export-data-file map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses the named files and type-checks them as one package.
func check(fset *token.FileSet, pkgPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	sources := make(map[string][]byte, len(goFiles))
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sources[path] = src
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Sources: sources,
	}, nil
}

// Packages loads, parses, and type-checks the packages matched by the go
// package patterns (e.g. "./...") relative to dir, which must lie inside
// a module. Test files are not included. The returned slice is sorted by
// import path.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, append([]string{"--"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// Dir loads the single package rooted at pkgDir — a directory that need
// not be part of any module (analysistest fixtures live under testdata,
// which the go tool ignores). Imports are resolved by running go list in
// moduleDir, so fixtures may import both the standard library and this
// module's own packages. pkgPath is the import path to assign.
func Dir(moduleDir, pkgDir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", pkgDir)
	}
	sort.Strings(goFiles)

	// A fixture's imports aren't known until parsed, so parse once with
	// a throwaway FileSet to collect them, list their export data, then
	// parse and check for real.
	imports := map[string]bool{}
	tmpFset := token.NewFileSet()
	for _, name := range goFiles {
		f, err := parser.ParseFile(tmpFset, filepath.Join(pkgDir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(moduleDir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	return check(fset, pkgPath, pkgDir, goFiles, exportImporter(fset, exports))
}
