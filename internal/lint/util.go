package lint

import (
	"go/ast"
	"go/types"

	"egocensus/internal/lint/analysis"
)

// pkgFunc resolves a call expression to (package path, function name) if
// its callee is a selector on an imported package (e.g. os.Open). The
// boolean is false for method calls, local calls, and conversions.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t's method set satisfies error.
// Untyped nil and invalid types report false.
func implementsError(t types.Type) bool {
	if t == nil || t == types.Typ[types.Invalid] {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorIface)
}

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, errorIface) || types.Identical(t.Underlying(), errorIface)
}

// guardedGraphType returns the name of the epoch-stamped
// internal/graph type t denotes (after stripping aliases), or "" if t is
// not one. Only value types match; pointers to them are the sanctioned
// form and pass.
func guardedGraphType(t types.Type) string {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != graphPkgPath {
		return ""
	}
	switch obj.Name() {
	case "Snapshot", "Graph":
		return obj.Name()
	}
	return ""
}

const (
	modulePath     = "egocensus"
	graphPkgPath   = modulePath + "/internal/graph"
	storagePkgPath = modulePath + "/internal/storage"
	matchPkgPath   = modulePath + "/internal/match"
)
