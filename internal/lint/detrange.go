package lint

import (
	"go/ast"
	"go/types"

	"egocensus/internal/lint/analysis"
)

// detRangePkgs are deterministic by default: every function in them is on
// the bit-identical merge path. Elsewhere, functions opt in with an
// //egolint:deterministic doc directive — the merge helpers in
// internal/core/pool.go and the census drivers' merge sections carry it.
var detRangePkgs = map[string]bool{
	matchPkgPath: true,
}

// DetRange flags `range` over a map inside deterministic-path functions.
// The repo's core contract (PR 1, PR 5) is that every census driver and
// every merge is bit-identical across runs, worker counts, and steal
// timing; Go map iteration order is randomized per run, so a map range on
// that path is a determinism bug unless its effect is order-insensitive.
// The one recognized-benign shape is the collect-then-sort idiom — a
// range whose body only appends keys/values to a slice (the caller is
// expected to sort it). Anything else needs an //egolint:allow detrange
// annotation arguing order-insensitivity.
var DetRange = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag map iteration on the deterministic merge path\n\n" +
		"Functions in internal/match, plus any function whose doc comment carries\n" +
		"//egolint:deterministic, must not range over maps: iteration order is\n" +
		"randomized and would break bit-identical census results. Collect keys\n" +
		"into a slice and sort, or annotate //egolint:allow detrange with an\n" +
		"order-insensitivity argument.",
	Run: runDetRange,
}

func runDetRange(pass *analysis.Pass) (interface{}, error) {
	pkgDefault := detRangePkgs[pass.Pkg.Path()]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pkgDefault && !docHasDeterministic(fd.Doc) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.Types[rng.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if isCollectLoop(rng) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"map iteration order is randomized and this function is on the deterministic merge path; collect keys into a slice and sort, or annotate //egolint:allow detrange <order-insensitivity reason>")
				return true
			})
		}
	}
	return nil, nil
}

// isCollectLoop recognizes the sanctioned collect-then-sort prelude: a
// range whose body consists solely of append-assignments, e.g.
//
//	for k := range m { keys = append(keys, k) }
//
// The iteration order leaks only into slice order, which the caller
// sorts before use; any other statement shape may observe the order.
func isCollectLoop(rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	for _, stmt := range rng.Body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return false
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
	}
	return true
}
