// Package analysistest runs one egolint analyzer over a fixture package
// under testdata/src and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	f, err := os.Create(path) // want `direct os\.Create bypasses`
//
// Each want comment holds one or more quoted regular expressions; every
// diagnostic on that line must match exactly one of them and vice versa.
// Fixtures are loaded through the same pipeline as cmd/egolint —
// including //egolint:allow suppression — so directive-suppressed cases
// are testable as lines with no want.
//
// A fixture's directory under testdata/src is its import path, so a
// fixture that must trigger a package-scoped analyzer (e.g. faultfs,
// which only fires inside egocensus/internal/storage) lives at
// testdata/src/egocensus/internal/storage. Fixtures may import the real
// module's packages; imports resolve against the enclosing module.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"egocensus/internal/lint"
	"egocensus/internal/lint/analysis"
	"egocensus/internal/lint/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads testdata/src/<pkgRel> as package path <pkgRel>, applies the
// analyzer (with directive suppression), and compares findings against
// the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgRel string) {
	t.Helper()
	moduleDir, err := moduleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgDir := filepath.Join(testdata, "src", filepath.FromSlash(pkgRel))
	pkg, err := load.Dir(moduleDir, pkgDir, pkgRel)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", pkgRel, err)
	}
	findings, err := lint.Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if !wants.match(key, f.Message) {
			t.Errorf("%s: unexpected finding: %s (egolint:%s)", f.Pos, f.Message, f.Analyzer)
		}
	}
	for key, res := range wants.byLine {
		for _, w := range res {
			if !w.matched {
				t.Errorf("%s: no finding matched want %q", key, w.re.String())
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	byLine map[string][]*want
}

func (ws *wantSet) match(key, message string) bool {
	for _, w := range ws.byLine[key] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans the fixture's comments for want annotations.
func collectWants(pkg *load.Package) (*wantSet, error) {
	ws := &wantSet{byLine: map[string][]*want{}}
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				patterns, err := parseWantPatterns(text[i+len("// want "):])
				if err != nil {
					return nil, fmt.Errorf("%s: %w", pos, err)
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp: %w", pos, err)
					}
					ws.byLine[key] = append(ws.byLine[key], &want{re: re})
				}
			}
		}
	}
	return ws, nil
}

// parseWantPatterns extracts the quoted regexps ("..." or `...`)
// following a want marker.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '"', '`':
			quote := s[0]
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' && quote == '"' {
					i++
					continue
				}
				if s[i] == quote {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %w", s[:end+1], err)
			}
			out = append(out, pat)
			s = s[end+1:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted strings, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want marker with no patterns")
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
