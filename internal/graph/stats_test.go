package graph

import (
	"math"
	"testing"
)

// statsGraph builds a small undirected graph with known degrees:
// a star 0-{1,2,3} plus edge 1-2, so degrees are 3,2,2,1.
func statsGraph() *Graph {
	g := New(false)
	g.AddNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	g.SetLabel(0, "hub")
	g.SetLabel(1, "leaf")
	g.SetLabel(2, "leaf")
	return g
}

func TestComputeStatsMoments(t *testing.T) {
	s := ComputeStats(statsGraph())
	if s.Nodes != 4 || s.Edges != 4 || s.Directed {
		t.Fatalf("counts: %+v", s)
	}
	if s.MaxDegree != 3 {
		t.Fatalf("MaxDegree = %d", s.MaxDegree)
	}
	// Brute-force falling moments over degrees {3,2,2,1}.
	degrees := []int{3, 2, 2, 1}
	for j := 0; j <= MaxMoment; j++ {
		want := 0.0
		for _, d := range degrees {
			ff := 1.0
			for x := 0; x < j; x++ {
				ff *= float64(d - x)
			}
			if ff > 0 {
				want += ff
			}
		}
		if got := s.FallingMoment(j); math.Abs(got-want) > 1e-9 {
			t.Fatalf("moment %d = %v want %v", j, got, want)
		}
	}
	if got := s.MeanDegree(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("MeanDegree = %v", got)
	}
	// Branching = Σd(d-1)/Σd = (6+2+2+0)/8.
	if got := s.Branching(); math.Abs(got-10.0/8) > 1e-9 {
		t.Fatalf("Branching = %v", got)
	}
}

func TestStatsLabels(t *testing.T) {
	s := ComputeStats(statsGraph())
	if s.NumLabels() != 2 {
		t.Fatalf("NumLabels = %d", s.NumLabels())
	}
	if got := s.LabelFreq("leaf"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("LabelFreq(leaf) = %v", got)
	}
	if got := s.LabelFreq("nosuch"); got != 0 {
		t.Fatalf("LabelFreq(nosuch) = %v", got)
	}
	// Σ freq² over {hub: 1/4, leaf: 2/4}; the unlabeled node contributes 0.
	want := 0.25*0.25 + 0.5*0.5
	if got := s.LabelMatchProb(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("LabelMatchProb = %v want %v", got, want)
	}
}

func TestStatsAddDegreeMatchesCompute(t *testing.T) {
	g := statsGraph()
	want := ComputeStats(g)
	var s Stats
	for n := 0; n < g.NumNodes(); n++ {
		s.AddDegree(g.Degree(NodeID(n)))
	}
	if s.Nodes != want.Nodes || s.MaxDegree != want.MaxDegree || s.DegreeMoments != want.DegreeMoments {
		t.Fatalf("AddDegree accumulation %+v != ComputeStats %+v", s, *want)
	}
}

func TestNeighborhoodEstimatesCapped(t *testing.T) {
	s := ComputeStats(statsGraph())
	// Deep neighborhoods cannot exceed |V| nodes or Σd half-edges.
	if got := s.NeighborhoodNodes(10); got > float64(s.Nodes) {
		t.Fatalf("NeighborhoodNodes(10) = %v exceeds |V|", got)
	}
	if got := s.NeighborhoodEdges(10); got > s.DegreeMoments[1] {
		t.Fatalf("NeighborhoodEdges(10) = %v exceeds Σd", got)
	}
	// One hop from a random node reaches on average 1 + mean degree.
	if got := s.NeighborhoodNodes(1); math.Abs(got-3) > 1e-9 {
		t.Fatalf("NeighborhoodNodes(1) = %v want 3", got)
	}
	if s.NeighborhoodNodes(0) != 1 {
		t.Fatal("NeighborhoodNodes(0) must be the focal node alone")
	}
}

func TestEdgeProb(t *testing.T) {
	s := ComputeStats(statsGraph())
	// Undirected: 2|E| / n(n-1) = 8/12.
	if got := s.EdgeProb(); math.Abs(got-8.0/12) > 1e-9 {
		t.Fatalf("EdgeProb = %v", got)
	}
}
