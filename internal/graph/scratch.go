package graph

import (
	"math"
	"sync"
)

// Scratch is reusable flat working memory for neighborhood traversals: an
// epoch-stamped visited array, a distance array, and a frontier/result
// slice. Stamping a fresh epoch per traversal makes "reset" O(1), so a
// pooled Scratch amortizes all per-call allocation away — the census
// drivers run one k-hop extraction per focal node and recycle scratches
// through a sync.Pool across workers.
//
// A Scratch backs at most one live Reach: the next traversal on the same
// Scratch invalidates the previous result. A Scratch must not be shared
// between goroutines.
type Scratch struct {
	mark  []int32  // mark[n] == epoch ⇒ n reached in the current traversal
	dist  []int32  // hop distance, valid only when marked
	nodes []NodeID // reached nodes in BFS order; backs Reach.Nodes
	epoch int32
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// AcquireScratch returns a pooled Scratch ready for traversals over graphs
// with at most n nodes. Release it when done.
func AcquireScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.grow(n)
	return s
}

// Release returns the Scratch to the pool. The caller must not use the
// Scratch, or any Reach borrowed from it, afterwards.
func (s *Scratch) Release() { scratchPool.Put(s) }

func (s *Scratch) grow(n int) {
	if len(s.mark) < n {
		s.mark = make([]int32, n)
		s.dist = make([]int32, n)
		s.epoch = 0
	}
}

// begin starts a new traversal: grows the arrays to the graph size and
// stamps a fresh epoch (clearing marks only on the ~never-taken epoch
// wraparound).
func (s *Scratch) begin(n int) {
	s.grow(n)
	if s.epoch == math.MaxInt32 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	s.nodes = s.nodes[:0]
}

// Reach is the result of a k-hop traversal: the reached node set with
// O(1) membership and hop-distance lookup and the nodes listed in BFS
// order. It borrows its storage from the Scratch that produced it and is
// valid until that Scratch starts another traversal or is released.
type Reach struct {
	// Nodes lists the reached nodes in BFS order, source first.
	Nodes []NodeID

	mark  []int32
	dist  []int32
	epoch int32
}

// Len returns the number of reached nodes (|N_k(src)| + 1 for the source).
func (r Reach) Len() int { return len(r.Nodes) }

// Contains reports whether n was reached.
func (r Reach) Contains(n NodeID) bool {
	return int(n) < len(r.mark) && r.mark[n] == r.epoch
}

// Dist returns the hop distance of n from the source, or -1 when n was not
// reached.
func (r Reach) Dist(n NodeID) int32 {
	if int(n) >= len(r.mark) || r.mark[n] != r.epoch {
		return -1
	}
	return r.dist[n]
}

// Members returns the reached nodes in BFS order (the Nodes field; the
// method form satisfies the match package's NodeSet interface).
func (r Reach) Members() []NodeID { return r.Nodes }

// KHop computes the k-hop neighborhood of src — N_k(src) plus src itself —
// using s as working memory (maxDepth < 0 means unbounded). It is the
// allocation-free replacement for KHopNodes on the census hot paths: the
// returned Reach borrows s's arrays and is valid until the next traversal
// on s.
func (g *Graph) KHop(src NodeID, maxDepth int, s *Scratch) Reach {
	g.mustNode(src)
	c := g.ensureCSR()
	s.begin(len(g.out))
	s.mark[src] = s.epoch
	s.dist[src] = 0
	s.nodes = append(s.nodes, src)
	for head := 0; head < len(s.nodes); head++ {
		n := s.nodes[head]
		d := s.dist[n]
		if maxDepth >= 0 && int(d) == maxDepth {
			continue
		}
		for _, nb := range c.all(n) {
			if s.mark[nb] != s.epoch {
				s.mark[nb] = s.epoch
				s.dist[nb] = d + 1
				s.nodes = append(s.nodes, nb)
			}
		}
	}
	return Reach{Nodes: s.nodes, mark: s.mark, dist: s.dist, epoch: s.epoch}
}
