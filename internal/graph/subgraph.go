package graph

import "sort"

// Subgraph is an extracted neighborhood subgraph: a Graph plus the mapping
// between its dense local node IDs and the original graph's node IDs.
// Subgraphs are what the node-driven baseline census algorithm (ND-BAS)
// runs pattern matching on.
type Subgraph struct {
	// G is the extracted graph. Its node IDs are local.
	G *Graph
	// ToGlobal maps local node IDs to node IDs of the source graph.
	ToGlobal []NodeID
	// ToLocal maps source node IDs to local IDs.
	ToLocal map[NodeID]NodeID
}

// InducedSubgraph extracts the subgraph of g incident on the given node
// set: all the nodes, and every edge of g whose endpoints are both in the
// set. Node attributes and labels are copied; edge attributes are copied.
func (g *Graph) InducedSubgraph(nodes []NodeID) *Subgraph {
	ordered := append([]NodeID(nil), nodes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	sg := &Subgraph{
		G:        New(g.directed),
		ToGlobal: ordered,
		ToLocal:  make(map[NodeID]NodeID, len(ordered)),
	}
	for i, n := range ordered {
		local := sg.G.AddNode()
		sg.ToLocal[n] = local
		if g.labels[n] != NoLabel {
			sg.G.SetLabel(local, g.labelDict.Name(g.labels[n]))
		}
		for k, v := range g.nodeAttrs[n] {
			sg.G.SetNodeAttr(local, k, v)
		}
		_ = i
	}
	for _, n := range ordered {
		for _, h := range g.out[n] {
			to, ok := sg.ToLocal[h.To]
			if !ok {
				continue
			}
			if !g.directed {
				// Emit each undirected edge once: when n is the smaller
				// endpoint (ties: self loop).
				if h.To < n {
					continue
				}
				if h.To == n && g.edgs[h.Edge].From != n {
					continue
				}
			}
			e := sg.G.AddEdge(sg.ToLocal[n], to)
			for k, v := range g.edgeAttrs[h.Edge] {
				sg.G.SetEdgeAttr(e, k, v)
			}
		}
	}
	return sg
}

// EgoSubgraph extracts S(n, k): the induced subgraph on the nodes reachable
// from n within k hops (including n).
func (g *Graph) EgoSubgraph(n NodeID, k int) *Subgraph {
	reach := g.KHopNodes(n, k)
	nodes := make([]NodeID, 0, len(reach))
	for m := range reach {
		nodes = append(nodes, m)
	}
	return g.InducedSubgraph(nodes)
}

// EgoIntersection extracts the induced subgraph on N_k(a) ∩ N_k(b)
// (including a or b themselves when they fall in both neighborhoods).
func (g *Graph) EgoIntersection(a, b NodeID, k int) *Subgraph {
	ra := g.KHopNodes(a, k)
	rb := g.KHopNodes(b, k)
	nodes := make([]NodeID, 0)
	for m := range ra {
		if _, ok := rb[m]; ok {
			nodes = append(nodes, m)
		}
	}
	return g.InducedSubgraph(nodes)
}

// EgoUnion extracts the induced subgraph on N_k(a) ∪ N_k(b).
func (g *Graph) EgoUnion(a, b NodeID, k int) *Subgraph {
	ra := g.KHopNodes(a, k)
	rb := g.KHopNodes(b, k)
	nodes := make([]NodeID, 0, len(ra)+len(rb))
	for m := range ra {
		nodes = append(nodes, m)
	}
	for m := range rb {
		if _, ok := ra[m]; !ok {
			nodes = append(nodes, m)
		}
	}
	return g.InducedSubgraph(nodes)
}
