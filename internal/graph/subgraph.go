package graph

import "sort"

// Subgraph is an extracted neighborhood subgraph: a Graph plus the mapping
// between its dense local node IDs and the original graph's node IDs.
// Subgraphs are what the node-driven baseline census algorithm (ND-BAS)
// runs pattern matching on when the matcher cannot match in place.
type Subgraph struct {
	// G is the extracted graph. Its node IDs are local.
	G *Graph
	// ToGlobal maps local node IDs to node IDs of the source graph.
	ToGlobal []NodeID
	// ToLocal maps source node IDs to local IDs.
	ToLocal map[NodeID]NodeID
}

// InducedSubgraph extracts the subgraph of g incident on the given node
// set: all the nodes, and every edge of g whose endpoints are both in the
// set. Node attributes and labels are copied; edge attributes are copied.
//
// The extracted graph shares a clone of g's label dictionary (so label IDs
// transfer without re-interning) and its adjacency lists are carved from a
// single arena allocation — this is the inner loop of the node-driven
// baseline and the pairwise evaluators.
func (g *Graph) InducedSubgraph(nodes []NodeID) *Subgraph {
	ordered := append([]NodeID(nil), nodes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	n := len(ordered)

	sub := &Graph{
		directed:  g.directed,
		labelDict: g.labelDict.Clone(),
		out:       make([][]Half, n),
		labels:    make([]LabelID, n),
		nodeAttrs: make([]map[string]string, n),
	}
	if g.directed {
		sub.in = make([][]Half, n)
	}
	sg := &Subgraph{G: sub, ToGlobal: ordered, ToLocal: make(map[NodeID]NodeID, n)}

	// Dense membership + local-ID lookup via pooled scratch (mark stamps
	// membership, dist carries the local ID).
	s := AcquireScratch(len(g.out))
	defer s.Release()
	s.begin(len(g.out))
	for i, gn := range ordered {
		s.mark[gn] = s.epoch
		s.dist[gn] = int32(i)
		sg.ToLocal[gn] = NodeID(i)
		sub.labels[i] = g.labels[gn]
		if m := g.nodeAttrs[gn]; m != nil {
			cp := make(map[string]string, len(m))
			for k, v := range m {
				cp[k] = v
			}
			sub.nodeAttrs[i] = cp
		}
	}

	// keepEdge reproduces the single-emission rule: directed graphs emit
	// every out half; undirected graphs emit each edge at its smaller
	// endpoint (ties: the half whose stored From is this node — self loops).
	keepEdge := func(gn NodeID, h Half) bool {
		if s.mark[h.To] != s.epoch {
			return false
		}
		if g.directed {
			return true
		}
		if h.To < gn {
			return false
		}
		return h.To != gn || g.edgs[h.Edge].From == gn
	}

	// Pass 1: count halves per local node and total edges, then carve the
	// adjacency lists out of one arena.
	outDeg := make([]int32, n)
	var inDeg []int32
	if g.directed {
		inDeg = make([]int32, n)
	}
	nEdges := 0
	for _, gn := range ordered {
		for _, h := range g.out[gn] {
			if !keepEdge(gn, h) {
				continue
			}
			nEdges++
			from := s.dist[gn]
			to := s.dist[h.To]
			outDeg[from]++
			if g.directed {
				inDeg[to]++
			} else if from != to {
				outDeg[to]++
			}
		}
	}
	totalOut := 0
	for _, d := range outDeg {
		totalOut += int(d)
	}
	outArena := make([]Half, totalOut)
	off := 0
	for i, d := range outDeg {
		sub.out[i] = outArena[off : off : off+int(d)]
		off += int(d)
	}
	if g.directed {
		totalIn := 0
		for _, d := range inDeg {
			totalIn += int(d)
		}
		inArena := make([]Half, totalIn)
		off = 0
		for i, d := range inDeg {
			sub.in[i] = inArena[off : off : off+int(d)]
			off += int(d)
		}
	}

	// Pass 2: materialize edges in the same order AddEdge would have.
	sub.edgs = make([]Edge, 0, nEdges)
	sub.edgeAttrs = make([]map[string]string, 0, nEdges)
	for _, gn := range ordered {
		for _, h := range g.out[gn] {
			if !keepEdge(gn, h) {
				continue
			}
			from := NodeID(s.dist[gn])
			to := NodeID(s.dist[h.To])
			id := EdgeID(len(sub.edgs))
			sub.edgs = append(sub.edgs, Edge{From: from, To: to})
			var attrs map[string]string
			if m := g.edgeAttrs[h.Edge]; m != nil {
				attrs = make(map[string]string, len(m))
				for k, v := range m {
					attrs[k] = v
				}
			}
			sub.edgeAttrs = append(sub.edgeAttrs, attrs)
			sub.out[from] = append(sub.out[from], Half{To: to, Edge: id})
			if g.directed {
				sub.in[to] = append(sub.in[to], Half{To: from, Edge: id})
			} else if from != to {
				sub.out[to] = append(sub.out[to], Half{To: from, Edge: id})
			}
		}
	}
	return sg
}

// EgoSubgraph extracts S(n, k): the induced subgraph on the nodes reachable
// from n within k hops (including n).
func (g *Graph) EgoSubgraph(n NodeID, k int) *Subgraph {
	s := AcquireScratch(g.NumNodes())
	defer s.Release()
	reach := g.KHop(n, k, s)
	return g.InducedSubgraph(reach.Nodes)
}

// EgoIntersection extracts the induced subgraph on N_k(a) ∩ N_k(b)
// (including a or b themselves when they fall in both neighborhoods).
func (g *Graph) EgoIntersection(a, b NodeID, k int) *Subgraph {
	sa := AcquireScratch(g.NumNodes())
	defer sa.Release()
	sb := AcquireScratch(g.NumNodes())
	defer sb.Release()
	ra := g.KHop(a, k, sa)
	rb := g.KHop(b, k, sb)
	if rb.Len() < ra.Len() {
		ra, rb = rb, ra
	}
	nodes := make([]NodeID, 0, ra.Len())
	for _, m := range ra.Nodes {
		if rb.Contains(m) {
			nodes = append(nodes, m)
		}
	}
	return g.InducedSubgraph(nodes)
}

// EgoUnion extracts the induced subgraph on N_k(a) ∪ N_k(b).
func (g *Graph) EgoUnion(a, b NodeID, k int) *Subgraph {
	sa := AcquireScratch(g.NumNodes())
	defer sa.Release()
	sb := AcquireScratch(g.NumNodes())
	defer sb.Release()
	ra := g.KHop(a, k, sa)
	rb := g.KHop(b, k, sb)
	nodes := make([]NodeID, 0, ra.Len()+rb.Len())
	nodes = append(nodes, ra.Nodes...)
	for _, m := range rb.Nodes {
		if !ra.Contains(m) {
			nodes = append(nodes, m)
		}
	}
	return g.InducedSubgraph(nodes)
}
