package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// WAL is the durability hook a Writer calls before publishing a batch:
// AppendBatch must make the ops durable (storage.Log implements it with an
// fsynced append-only segment). A publish whose WAL append fails is
// aborted — the ops stay pending and no new snapshot appears — so every
// published epoch is recoverable by replay.
type WAL interface {
	AppendBatch(ops []Op) error
}

// Writer is the single mutation path of the MVCC graph core. It batches
// mutations (AddNode/AddEdge/SetLabel/Set*Attr assign IDs immediately but
// stay invisible to readers) and Publish applies the batch copy-on-write
// to the current snapshot's frozen graph, atomically installing the next
// epoch. Readers acquire versions with Snapshot() — an atomic pointer
// load — and are never blocked by the writer, nor the writer by readers.
//
// Copy-on-write granularity is the dirty tail: a publish copies the
// per-node slice headers (O(nodes) memcpy) plus only the adjacency rows,
// label column, and attribute maps the batch actually touched; everything
// else is shared structurally with the parent version. The CSR traversal
// view is extended with a delta overlay (csr.go) instead of rebuilt, and a
// background compaction folds the overlay flat once it outgrows
// CompactOverlayAt rows.
//
// A Writer's mutation and publish methods may be called from any one
// goroutine at a time (they lock internally, so multiple ingest goroutines
// are also safe); reads need no coordination whatsoever.
type Writer struct {
	// CompactOverlayAt bounds the CSR delta overlay: after a publish
	// leaves more overlay rows than this, a background goroutine compacts
	// the snapshot's CSR to flat arrays. 0 picks a default of
	// max(256, nodes/8). Negative disables background compaction.
	CompactOverlayAt int

	// WALRetry bounds the retries of transient WAL-append failures
	// (degraded.go). Set before sharing the writer; the zero value picks
	// the defaults (4 attempts, 2ms..50ms exponential backoff + jitter).
	WALRetry RetryPolicy

	mu      sync.Mutex
	cur     atomic.Pointer[Snapshot]
	pending []Op

	// degraded is the sticky read-only failure state (degraded.go); rng
	// drives the retry jitter. Both are guarded by mu.
	degraded *DegradedError
	rng      *rand.Rand

	// Staged object counts: IDs handed out for ops not yet published.
	stagedNodes int
	stagedEdges int

	wal     WAL
	history []Delta // published batches retained while a WAL is attached
	subs    []func(*Snapshot, Delta)

	opsPublished atomic.Int64
	compacting   atomic.Bool
	compactions  atomic.Int64
}

// NewWriter freezes g as the epoch-0 snapshot and returns its writer. The
// caller must not retain mutating access to g; all further mutation goes
// through the writer.
func NewWriter(g *Graph) *Writer {
	w := &Writer{stagedNodes: g.NumNodes(), stagedEdges: g.NumEdges()}
	w.cur.Store(Freeze(g))
	return w
}

// NewWriterAt is NewWriter with an explicit starting epoch, used when the
// graph was recovered by replaying a mutation log: the writer resumes the
// log's epoch sequence so version numbers stay monotonic across restarts.
func NewWriterAt(g *Graph, epoch uint64) *Writer {
	w := &Writer{stagedNodes: g.NumNodes(), stagedEdges: g.NumEdges()}
	w.cur.Store(FreezeAt(g, epoch))
	return w
}

// SetWAL attaches a durability hook: every subsequent Publish appends its
// batch to wal before installing the snapshot, and the writer starts
// retaining published deltas for log compaction (Barrier). Attach before
// the first publish; batches published earlier are not re-appended.
func (w *Writer) SetWAL(wal WAL) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wal = wal
}

// Snapshot returns the current published version: an O(1) atomic load.
// The snapshot is immutable; hold it as long as needed.
func (w *Writer) Snapshot() *Snapshot { return w.cur.Load() }

// Subscribe registers fn to run synchronously after every publish, in
// registration order, with the new snapshot and the batch that produced
// it. fn runs under the writer's publish lock: it must not call back into
// the writer. The incremental census maintainer consumes deltas this way.
func (w *Writer) Subscribe(fn func(*Snapshot, Delta)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.subs = append(w.subs, fn)
}

// Pending returns the number of buffered, unpublished ops.
func (w *Writer) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// AddNode stages a node append and returns the ID it will have once
// published.
func (w *Writer) AddNode() NodeID {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := NodeID(w.stagedNodes)
	w.stagedNodes++
	w.pending = append(w.pending, Op{Kind: OpAddNode})
	return id
}

// AddNodes stages n node appends and returns the first staged ID.
func (w *Writer) AddNodes(n int) NodeID {
	w.mu.Lock()
	defer w.mu.Unlock()
	first := NodeID(w.stagedNodes)
	for i := 0; i < n; i++ {
		w.stagedNodes++
		w.pending = append(w.pending, Op{Kind: OpAddNode})
	}
	return first
}

// AddEdge stages an edge append (from -> to for directed graphs) and
// returns its future EdgeID. Endpoints may be staged nodes not yet
// published.
func (w *Writer) AddEdge(from, to NodeID) EdgeID {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mustStagedNode(from)
	w.mustStagedNode(to)
	id := EdgeID(w.stagedEdges)
	w.stagedEdges++
	w.pending = append(w.pending, Op{Kind: OpAddEdge, A: int32(from), B: int32(to)})
	return id
}

// SetLabel stages a label assignment.
func (w *Writer) SetLabel(n NodeID, label string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mustStagedNode(n)
	w.pending = append(w.pending, Op{Kind: OpSetLabel, A: int32(n), Val: label})
}

// SetNodeAttr stages a node attribute assignment; the reserved "label"
// key routes to SetLabel, mirroring Graph.SetNodeAttr.
func (w *Writer) SetNodeAttr(n NodeID, key, value string) {
	if key == LabelAttr {
		w.SetLabel(n, value)
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mustStagedNode(n)
	w.pending = append(w.pending, Op{Kind: OpSetNodeAttr, A: int32(n), Key: key, Val: value})
}

// SetEdgeAttr stages an edge attribute assignment.
func (w *Writer) SetEdgeAttr(e EdgeID, key, value string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e < 0 || int(e) >= w.stagedEdges {
		panic(fmt.Sprintf("graph: edge %d out of staged range [0,%d)", e, w.stagedEdges))
	}
	w.pending = append(w.pending, Op{Kind: OpSetEdgeAttr, A: int32(e), Key: key, Val: value})
}

func (w *Writer) mustStagedNode(n NodeID) {
	if n < 0 || int(n) >= w.stagedNodes {
		panic(fmt.Sprintf("graph: node %d out of staged range [0,%d)", n, w.stagedNodes))
	}
}

// Publish makes the pending batch durable (when a WAL is attached),
// applies it copy-on-write, and atomically installs the next snapshot.
// With nothing pending it returns the current snapshot unchanged.
//
// A transient WAL failure (storage classifies; see IsTransient) is
// retried under WALRetry before anything is given up. An unrecoverable
// failure aborts the publish — no snapshot appears, the ops stay pending
// — and flips the writer into read-only degraded mode: this and every
// subsequent Publish returns the same *DegradedError until
// ClearDegraded. Readers are never affected; Snapshot() stays an atomic
// load of the last published version throughout.
func (w *Writer) Publish() (*Snapshot, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	base := w.cur.Load()
	if w.degraded != nil {
		return base, w.degraded
	}
	if len(w.pending) == 0 {
		return base, nil
	}
	if w.wal != nil {
		if err := w.appendWAL(w.pending); err != nil {
			w.degraded = &DegradedError{Cause: err, Epoch: base.epoch, Since: time.Now()}
			return base, w.degraded
		}
	}
	next := applyBatch(base.g, w.pending, base.epoch+1)
	snap := &Snapshot{epoch: base.epoch + 1, g: next}
	delta := Delta{Epoch: snap.epoch, Ops: w.pending}
	w.cur.Store(snap)
	w.opsPublished.Add(int64(len(w.pending)))
	if w.wal != nil {
		w.history = append(w.history, delta)
	}
	w.pending = nil
	for _, fn := range w.subs {
		fn(snap, delta)
	}
	w.maybeCompact(next)
	return snap, nil
}

// maybeCompact kicks off a background CSR compaction when the new
// snapshot's delta overlay outgrew its bound. At most one compaction runs
// at a time; a snapshot published mid-compaction is picked up by the next
// publish's check.
func (w *Writer) maybeCompact(g *Graph) {
	if w.CompactOverlayAt < 0 {
		return
	}
	rows, built := g.CSRInfo()
	if !built {
		return
	}
	limit := w.CompactOverlayAt
	if limit == 0 {
		limit = g.NumNodes() / 8
		if limit < 256 {
			limit = 256
		}
	}
	if rows <= limit || !w.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		g.CompactCSR()
		w.compactions.Add(1)
		w.compacting.Store(false)
	}()
}

// Barrier runs fn under the publish lock — no publish can interleave —
// with the current snapshot and the retained deltas newer than epoch
// `since` (oldest first). If fn returns a non-nil WAL it replaces the
// writer's hook and the retained history is trimmed to the tail fn saw:
// this is the log-compaction handshake (storage.DynamicStore saves the
// base image at an epoch, then swaps in a fresh log seeded with the tail).
func (w *Writer) Barrier(since uint64, fn func(cur *Snapshot, tail []Delta) (WAL, error)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var tail []Delta
	for _, d := range w.history {
		if d.Epoch > since {
			tail = append(tail, d)
		}
	}
	nw, err := fn(w.cur.Load(), tail)
	if err != nil {
		return err
	}
	if nw != nil {
		w.wal = nw
		w.history = tail
	}
	return nil
}

// WriterStats is a point-in-time view of the writer for monitoring
// (egosh's \snapshot command).
type WriterStats struct {
	// Epoch is the current published version.
	Epoch uint64
	// Nodes and Edges are the staged counts, including unpublished ops.
	Nodes, Edges int
	// PendingOps is the buffered batch size.
	PendingOps int
	// OpsPublished is the lifetime total of published ops.
	OpsPublished int64
	// OverlayRows is the current snapshot's CSR delta-overlay size;
	// CSRBuilt reports whether that snapshot has a CSR view at all.
	OverlayRows int
	CSRBuilt    bool
	// Compactions counts completed background CSR compactions.
	Compactions int64
	// Degraded reports read-only degraded mode (see Writer.Degraded).
	Degraded bool
}

// Stats snapshots the writer's monitoring counters.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := w.cur.Load()
	rows, built := snap.g.CSRInfo()
	return WriterStats{
		Epoch:        snap.epoch,
		Nodes:        w.stagedNodes,
		Edges:        w.stagedEdges,
		PendingOps:   len(w.pending),
		OpsPublished: w.opsPublished.Load(),
		OverlayRows:  rows,
		CSRBuilt:     built,
		Compactions:  w.compactions.Load(),
		Degraded:     w.degraded != nil,
	}
}

// applyBatch produces the next frozen graph version from base and a
// mutation batch, sharing storage copy-on-write:
//
//   - The per-node slice headers are copied (so header cells are owned);
//     the per-node []Half rows stay shared until the batch's first append
//     to that row. In-place appends into a shared row's spare capacity are
//     safe: cells beyond a published version's length are invisible to it,
//     and the single-writer discipline makes append chains linear.
//   - The edge table, label column, attribute columns, and label
//     dictionary are shared outright and copied lazily on the batch's
//     first in-place overwrite (SetLabel on a pre-existing node, attribute
//     writes, new label interning).
//   - The CSR view is extended with overlay rows for the touched nodes
//     instead of being rebuilt (extendCSR).
//
// base must be frozen; the returned graph is frozen and epoch-stamped.
func applyBatch(base *Graph, ops []Op, epoch uint64) *Graph {
	baseNodes := len(base.out)
	baseEdges := len(base.edgs)
	adds := 0
	for _, op := range ops {
		if op.Kind == OpAddNode {
			adds++
		}
	}

	c := &Graph{
		directed:  base.directed,
		epoch:     epoch,
		labelDict: base.labelDict,
		edgs:      base.edgs,
		labels:    base.labels,
		nodeAttrs: base.nodeAttrs,
		edgeAttrs: base.edgeAttrs,
	}
	c.out = make([][]Half, baseNodes, baseNodes+adds)
	copy(c.out, base.out)
	if base.directed {
		c.in = make([][]Half, baseNodes, baseNodes+adds)
		copy(c.in, base.in)
	}

	var (
		ownLabels, ownDict           bool
		ownNodeAttrs, ownEdgeAttrs   bool
		ownedNodeMaps, ownedEdgeMaps map[int32]bool
		dirty                        = make(map[NodeID]struct{}, 2*len(ops))
	)

	setLabel := func(n int32, name string) {
		if int(n) < baseNodes && !ownLabels {
			c.labels = append([]LabelID(nil), c.labels...)
			ownLabels = true
		}
		if !ownDict {
			if _, ok := c.labelDict.Lookup(name); !ok {
				c.labelDict = c.labelDict.Clone()
				ownDict = true
			}
		}
		c.labels[n] = c.labelDict.Intern(name)
	}

	for _, op := range ops {
		switch op.Kind {
		case OpAddNode:
			c.out = append(c.out, nil)
			if c.directed {
				c.in = append(c.in, nil)
			}
			c.labels = append(c.labels, NoLabel)
			c.nodeAttrs = append(c.nodeAttrs, nil)
		case OpAddEdge:
			from, to := NodeID(op.A), NodeID(op.B)
			id := EdgeID(len(c.edgs))
			c.edgs = append(c.edgs, Edge{From: from, To: to})
			c.edgeAttrs = append(c.edgeAttrs, nil)
			c.out[from] = append(c.out[from], Half{To: to, Edge: id})
			if c.directed {
				c.in[to] = append(c.in[to], Half{To: from, Edge: id})
			} else if from != to {
				c.out[to] = append(c.out[to], Half{To: from, Edge: id})
			}
			dirty[from] = struct{}{}
			dirty[to] = struct{}{}
		case OpSetLabel:
			setLabel(op.A, op.Val)
		case OpSetNodeAttr:
			if op.Key == LabelAttr {
				setLabel(op.A, op.Val)
				continue
			}
			if int(op.A) < baseNodes && !ownNodeAttrs {
				c.nodeAttrs = append([]map[string]string(nil), c.nodeAttrs...)
				ownNodeAttrs = true
			}
			if ownedNodeMaps == nil {
				ownedNodeMaps = map[int32]bool{}
			}
			c.nodeAttrs[op.A] = cowSet(c.nodeAttrs[op.A], ownedNodeMaps, op.A, op.Key, op.Val)
		case OpSetEdgeAttr:
			if int(op.A) < baseEdges && !ownEdgeAttrs {
				c.edgeAttrs = append([]map[string]string(nil), c.edgeAttrs...)
				ownEdgeAttrs = true
			}
			if ownedEdgeMaps == nil {
				ownedEdgeMaps = map[int32]bool{}
			}
			c.edgeAttrs[op.A] = cowSet(c.edgeAttrs[op.A], ownedEdgeMaps, op.A, op.Key, op.Val)
		}
	}

	if bc := base.csr.Load(); bc != nil {
		c.csr.Store(extendCSR(bc, c, dirty))
	}
	c.frozen = true
	return c
}

// cowSet writes key=value into an attribute map owned by this batch,
// copying a map shared with earlier versions on first touch.
func cowSet(m map[string]string, owned map[int32]bool, id int32, key, value string) map[string]string {
	switch {
	case m == nil:
		m = make(map[string]string, 2)
		owned[id] = true
	case !owned[id]:
		cp := make(map[string]string, len(m)+1)
		for k, v := range m {
			cp[k] = v
		}
		m = cp
		owned[id] = true
	}
	m[key] = value
	return m
}
