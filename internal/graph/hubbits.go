package graph

import (
	"sync"

	"egocensus/internal/bitset"
)

// Hub bitmaps: dense neighbor membership bitmaps cached for high-degree
// nodes. The CN matcher's candidate-neighbor construction intersects
// N(n) with a candidate set; for a hub the scalar path probes deg(n)
// adjacency entries, while a word-AND over two bitmaps costs ~n/64
// operations regardless of degree — exactly the skewed-workload case
// preferential-attachment graphs produce.
//
// The cache hangs off the CSR view, so its lifetime is one snapshot
// epoch: publishing a snapshot derives a fresh csr (extendCSR) and
// mutation drops it (invalidateCSR), either way discarding the bitmaps.
// Only undirected graphs are cached — there the out/in/all views
// coincide and a single bitmap answers every direction; directed
// adjacency keeps the sorted-list kernels.

// hubCache holds one neighbor bitmap per hub node, nil for non-hubs.
// words is the plane width: Words(numNodes) at build time.
type hubCache struct {
	rows  [][]uint64
	words int
}

// HubDegreeThreshold returns the degree above which a node's neighbor
// set is worth materializing as a bitmap in a graph of n nodes: when the
// degree exceeds the bitmap word count, the AND kernel touches fewer
// words than the scalar probe loop touches adjacency entries. The floor
// keeps tiny graphs from declaring everything a hub.
func HubDegreeThreshold(n int) int {
	if w := bitset.Words(n); w > 32 {
		return w
	}
	return 32
}

// buildHubCache scans the CSR view once and materializes bitmaps for
// nodes past the threshold. Parallel edges collapse into one bit.
func buildHubCache(c *csr, numNodes int) *hubCache {
	words := bitset.Words(numNodes)
	hc := &hubCache{rows: make([][]uint64, numNodes), words: words}
	thresh := HubDegreeThreshold(numNodes)
	for n := 0; n < numNodes; n++ {
		nbrs := c.out(NodeID(n))
		if len(nbrs) < thresh {
			continue
		}
		row := make([]uint64, words)
		for _, m := range nbrs {
			bitset.SetBit(row, int(m))
		}
		hc.rows[n] = row
	}
	return hc
}

// buildHubCacheParallel is buildHubCache with the row construction split
// across `workers` goroutines on node stripes. Rows are independent and
// the stripe split changes only which goroutine builds a row, so the
// cache is identical to the sequential build.
func buildHubCacheParallel(c *csr, numNodes, workers int) *hubCache {
	if workers <= 1 || numNodes < 1024 {
		return buildHubCache(c, numNodes)
	}
	words := bitset.Words(numNodes)
	hc := &hubCache{rows: make([][]uint64, numNodes), words: words}
	thresh := HubDegreeThreshold(numNodes)
	var wg sync.WaitGroup
	wg.Add(workers)
	stripe := (numNodes + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(lo int) {
			defer wg.Done()
			hi := lo + stripe
			if hi > numNodes {
				hi = numNodes
			}
			for n := lo; n < hi; n++ {
				nbrs := c.out(NodeID(n))
				if len(nbrs) < thresh {
					continue
				}
				row := make([]uint64, words)
				for _, m := range nbrs {
					bitset.SetBit(row, int(m))
				}
				hc.rows[n] = row
			}
		}(w * stripe)
	}
	wg.Wait()
	return hc
}

// BuildHubBitmapsParallel eagerly materializes the hub-neighbor bitmaps
// with up to `workers` goroutines (no-op for directed graphs, falls back
// to the sequential build for small graphs). The result is identical to
// BuildHubBitmaps; sharded stores use it so replay-on-open and the first
// census after a publish pay the build across cores.
func (g *Graph) BuildHubBitmapsParallel(workers int) {
	if g.directed {
		return
	}
	c := g.ensureCSR()
	if c.hubs.Load() != nil {
		return
	}
	hc := buildHubCacheParallel(c, g.NumNodes(), workers)
	c.hubs.CompareAndSwap(nil, hc)
}

// ensureHubs returns the CSR view's hub cache, building it on first use.
// Concurrent builders race benignly: the build is deterministic and the
// first published pointer wins.
func (g *Graph) ensureHubs(c *csr) *hubCache {
	if hc := c.hubs.Load(); hc != nil {
		return hc
	}
	hc := buildHubCache(c, g.NumNodes())
	if !c.hubs.CompareAndSwap(nil, hc) {
		if cur := c.hubs.Load(); cur != nil {
			return cur
		}
	}
	return hc
}

// BuildHubBitmaps eagerly materializes the hub-neighbor bitmaps for the
// current topology (no-op for directed graphs). Call it alongside
// BuildCSR before fanning census work out to workers so they share one
// prebuilt cache.
func (g *Graph) BuildHubBitmaps() {
	if g.directed {
		return
	}
	g.ensureHubs(g.ensureCSR())
}

// HubBitmap returns the cached neighbor bitmap of n — bit m set iff m is
// adjacent to n — or nil when n is below the hub threshold or the graph
// is directed. The returned words are owned by the graph, must not be
// modified, and are invalidated by graph mutation.
func (g *Graph) HubBitmap(n NodeID) []uint64 {
	if g.directed {
		return nil
	}
	g.mustNode(n)
	hc := g.ensureHubs(g.ensureCSR())
	if int(n) >= len(hc.rows) {
		return nil
	}
	return hc.rows[n]
}

// HubRows returns the full hub-bitmap table for the current topology:
// rows[n] is n's neighbor bitmap, nil below the threshold. Hot loops use
// this to amortize the per-call cache lookup of HubBitmap. Returns nil
// for directed graphs. The table and its rows are owned by the graph.
func (g *Graph) HubRows() [][]uint64 {
	if g.directed {
		return nil
	}
	return g.ensureHubs(g.ensureCSR()).rows
}

// HubCount reports how many nodes currently have cached bitmaps, for
// monitoring and tests.
func (g *Graph) HubCount() int {
	if g.directed {
		return 0
	}
	hc := g.ensureHubs(g.ensureCSR())
	count := 0
	for _, r := range hc.rows {
		if r != nil {
			count++
		}
	}
	return count
}
