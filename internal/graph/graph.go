// Package graph provides the property-graph substrate used by the
// ego-centric pattern census engine: an adjacency-list graph with node and
// edge attributes, a label dictionary, node profiles, and neighborhood
// traversal primitives.
//
// The graph may be directed or undirected. Nodes are identified by dense
// NodeID values assigned at insertion time; edges by dense EdgeID values.
// Attributes are free-form string key/value pairs; the special node
// attribute "label" is interned through a label dictionary because the
// matching algorithms index on it.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// NodeID identifies a node in a Graph. IDs are dense: valid IDs are
// 0 .. NumNodes()-1.
type NodeID int32

// EdgeID identifies an edge in a Graph. IDs are dense: valid IDs are
// 0 .. NumEdges()-1.
type EdgeID int32

// LabelID is an interned node label. NoLabel marks unlabeled nodes.
type LabelID int32

// NoLabel is the LabelID of nodes without a "label" attribute.
const NoLabel LabelID = 0

// LabelAttr is the reserved node attribute name holding the node label.
const LabelAttr = "label"

// Half is one directed half-edge in an adjacency list.
type Half struct {
	To   NodeID
	Edge EdgeID
}

// Edge is a stored edge. For undirected graphs From/To record insertion
// order but carry no direction semantics.
type Edge struct {
	From NodeID
	To   NodeID
}

// Graph is an in-memory adjacency-list property graph.
//
// For undirected graphs, each edge appears in the Out list of both
// endpoints and In lists are unused. For directed graphs, Out holds
// outgoing and In incoming half-edges.
type Graph struct {
	directed bool

	// frozen marks the graph immutable: it is the read view of a published
	// Snapshot (snapshot.go) and every mutator panics. Lazy derived indexes
	// (CSR, profiles) still build on demand — they are guarded by atomics,
	// so concurrent readers of a frozen graph never race.
	frozen bool
	// epoch is the snapshot version this frozen graph was published at
	// (0 for graphs never owned by a Writer).
	epoch uint64

	out  [][]Half
	in   [][]Half // directed graphs only
	edgs []Edge

	labels    []LabelID // per node
	labelDict *LabelDict

	nodeAttrs []map[string]string // lazily allocated per node
	edgeAttrs []map[string]string // lazily allocated per edge

	profiles atomic.Pointer[profileRows] // lazily built label profiles (profile.go)

	csr atomic.Pointer[csr] // lazily built flat adjacency view (csr.go)
}

// New returns an empty graph. If directed is true, edges added with AddEdge
// are directed from -> to.
func New(directed bool) *Graph {
	return &Graph{directed: directed, labelDict: NewLabelDict()}
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Frozen reports whether the graph is an immutable snapshot view.
func (g *Graph) Frozen() bool { return g.frozen }

// mustMutable panics when the graph has been frozen as a snapshot: all
// mutation must go through a Writer, which clones before it writes.
func (g *Graph) mustMutable() {
	if g.frozen {
		panic(fmt.Sprintf("graph: mutation of frozen snapshot (epoch %d); mutate through a Writer", g.epoch))
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edgs) }

// Labels returns the label dictionary.
func (g *Graph) Labels() *LabelDict { return g.labelDict }

// AddNode adds a node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.mustMutable()
	id := NodeID(len(g.out))
	g.out = append(g.out, nil)
	if g.directed {
		g.in = append(g.in, nil)
	}
	g.labels = append(g.labels, NoLabel)
	g.nodeAttrs = append(g.nodeAttrs, nil)
	g.invalidateProfiles()
	g.invalidateCSR()
	return id
}

// AddNodes adds n nodes and returns the ID of the first.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.out))
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return first
}

// AddEdge adds an edge between from and to and returns its ID. Self loops
// and parallel edges are permitted by the representation; the census
// semantics of the paper assume simple graphs, and the generators in
// internal/gen only produce simple graphs.
func (g *Graph) AddEdge(from, to NodeID) EdgeID {
	g.mustMutable()
	g.mustNode(from)
	g.mustNode(to)
	id := EdgeID(len(g.edgs))
	g.edgs = append(g.edgs, Edge{From: from, To: to})
	g.edgeAttrs = append(g.edgeAttrs, nil)
	g.out[from] = append(g.out[from], Half{To: to, Edge: id})
	if g.directed {
		g.in[to] = append(g.in[to], Half{To: from, Edge: id})
	} else if from != to {
		g.out[to] = append(g.out[to], Half{To: from, Edge: id})
	}
	g.invalidateProfiles()
	g.invalidateCSR()
	return id
}

func (g *Graph) mustNode(n NodeID) {
	if n < 0 || int(n) >= len(g.out) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", n, len(g.out)))
	}
}

// HasEdge reports whether an edge from -> to exists (any edge between the
// endpoints for undirected graphs).
func (g *Graph) HasEdge(from, to NodeID) bool {
	g.mustNode(from)
	g.mustNode(to)
	// Scan the shorter list when undirected.
	list := g.out[from]
	if !g.directed && len(g.out[to]) < len(list) {
		list, from, to = g.out[to], to, from
	}
	for _, h := range list {
		if h.To == to {
			return true
		}
	}
	return false
}

// FindEdge returns the ID of an edge from -> to, or -1 if none exists.
func (g *Graph) FindEdge(from, to NodeID) EdgeID {
	g.mustNode(from)
	g.mustNode(to)
	for _, h := range g.out[from] {
		if h.To == to {
			return h.Edge
		}
	}
	return -1
}

// Out returns the outgoing half-edges of n (all incident half-edges for
// undirected graphs). The returned slice is owned by the graph and must not
// be modified.
func (g *Graph) Out(n NodeID) []Half {
	g.mustNode(n)
	return g.out[n]
}

// In returns the incoming half-edges of n. For undirected graphs it is the
// same as Out.
func (g *Graph) In(n NodeID) []Half {
	g.mustNode(n)
	if !g.directed {
		return g.out[n]
	}
	return g.in[n]
}

// Degree returns the degree of n: out-degree + in-degree for directed
// graphs, number of incident edges for undirected graphs.
func (g *Graph) Degree(n NodeID) int {
	g.mustNode(n)
	if g.directed {
		return len(g.out[n]) + len(g.in[n])
	}
	return len(g.out[n])
}

// Edge returns the endpoints of edge e.
func (g *Graph) Edge(e EdgeID) Edge {
	if e < 0 || int(e) >= len(g.edgs) {
		panic(fmt.Sprintf("graph: edge %d out of range [0,%d)", e, len(g.edgs)))
	}
	return g.edgs[e]
}

// SetLabel sets the label attribute of n, interning it in the dictionary.
func (g *Graph) SetLabel(n NodeID, label string) {
	g.mustMutable()
	g.mustNode(n)
	g.labels[n] = g.labelDict.Intern(label)
	g.invalidateProfiles()
}

// Label returns the interned label of n (NoLabel if unset).
func (g *Graph) Label(n NodeID) LabelID {
	g.mustNode(n)
	return g.labels[n]
}

// LabelString returns the string label of n ("" if unset).
func (g *Graph) LabelString(n NodeID) string {
	return g.labelDict.Name(g.Label(n))
}

// SetNodeAttr sets an attribute on node n. Setting LabelAttr is equivalent
// to SetLabel.
func (g *Graph) SetNodeAttr(n NodeID, key, value string) {
	g.mustMutable()
	g.mustNode(n)
	if key == LabelAttr {
		g.SetLabel(n, value)
		return
	}
	if g.nodeAttrs[n] == nil {
		g.nodeAttrs[n] = make(map[string]string, 2)
	}
	g.nodeAttrs[n][key] = value
}

// NodeAttr returns an attribute of node n. The LabelAttr key returns the
// label. ok is false when the attribute is unset.
func (g *Graph) NodeAttr(n NodeID, key string) (value string, ok bool) {
	g.mustNode(n)
	if key == LabelAttr {
		if g.labels[n] == NoLabel {
			return "", false
		}
		return g.labelDict.Name(g.labels[n]), true
	}
	if g.nodeAttrs[n] == nil {
		return "", false
	}
	v, ok := g.nodeAttrs[n][key]
	return v, ok
}

// NodeAttrs returns a copy of all attributes of node n, including the label.
func (g *Graph) NodeAttrs(n NodeID) map[string]string {
	g.mustNode(n)
	m := make(map[string]string, len(g.nodeAttrs[n])+1)
	for k, v := range g.nodeAttrs[n] {
		m[k] = v
	}
	if g.labels[n] != NoLabel {
		m[LabelAttr] = g.labelDict.Name(g.labels[n])
	}
	return m
}

// SetEdgeAttr sets an attribute on edge e.
func (g *Graph) SetEdgeAttr(e EdgeID, key, value string) {
	g.mustMutable()
	if e < 0 || int(e) >= len(g.edgs) {
		panic(fmt.Sprintf("graph: edge %d out of range [0,%d)", e, len(g.edgs)))
	}
	if g.edgeAttrs[e] == nil {
		g.edgeAttrs[e] = make(map[string]string, 2)
	}
	g.edgeAttrs[e][key] = value
}

// EdgeAttr returns an attribute of edge e.
func (g *Graph) EdgeAttr(e EdgeID, key string) (value string, ok bool) {
	if e < 0 || int(e) >= len(g.edgs) {
		panic(fmt.Sprintf("graph: edge %d out of range [0,%d)", e, len(g.edgs)))
	}
	if g.edgeAttrs[e] == nil {
		return "", false
	}
	v, ok := g.edgeAttrs[e][key]
	return v, ok
}

// EdgeAttrs returns a copy of all attributes of edge e.
func (g *Graph) EdgeAttrs(e EdgeID) map[string]string {
	if e < 0 || int(e) >= len(g.edgs) {
		panic(fmt.Sprintf("graph: edge %d out of range [0,%d)", e, len(g.edgs)))
	}
	m := make(map[string]string, len(g.edgeAttrs[e]))
	for k, v := range g.edgeAttrs[e] {
		m[k] = v
	}
	return m
}

// Neighbors returns the sorted distinct neighbor IDs of n (union of in and
// out neighbors for directed graphs), excluding n itself unless a self loop
// exists.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	g.mustNode(n)
	all := g.ensureCSR().all(n)
	out := append(make([]NodeID, 0, len(all)), all...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Compact duplicates (parallel edges, reciprocal directed pairs).
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		directed:  g.directed,
		out:       make([][]Half, len(g.out)),
		edgs:      append([]Edge(nil), g.edgs...),
		labels:    append([]LabelID(nil), g.labels...),
		labelDict: g.labelDict.Clone(),
		nodeAttrs: make([]map[string]string, len(g.nodeAttrs)),
		edgeAttrs: make([]map[string]string, len(g.edgeAttrs)),
	}
	for i, l := range g.out {
		c.out[i] = append([]Half(nil), l...)
	}
	if g.directed {
		c.in = make([][]Half, len(g.in))
		for i, l := range g.in {
			c.in[i] = append([]Half(nil), l...)
		}
	}
	for i, m := range g.nodeAttrs {
		if m != nil {
			c.nodeAttrs[i] = make(map[string]string, len(m))
			for k, v := range m {
				c.nodeAttrs[i][k] = v
			}
		}
	}
	for i, m := range g.edgeAttrs {
		if m != nil {
			c.edgeAttrs[i] = make(map[string]string, len(m))
			for k, v := range m {
				c.edgeAttrs[i][k] = v
			}
		}
	}
	return c
}
