package graph

// Profile is a node's neighborhood label profile: Profile[l] is the number
// of neighbors carrying label l (Section III-A of the paper). Index 0
// counts unlabeled neighbors.
type Profile []int32

// Contains reports whether every per-label count of sub is <= the
// corresponding count of p, i.e. profile(sub) ⊑ profile(p). sub may be
// shorter than p (missing entries are zero); any excess entries in sub must
// be zero.
func (p Profile) Contains(sub Profile) bool {
	for l, c := range sub {
		if c == 0 {
			continue
		}
		if l >= len(p) || p[l] < c {
			return false
		}
	}
	return true
}

// profileRows is the cached per-node profile table, held behind an atomic
// pointer so frozen snapshots can build it lazily under concurrent readers
// (same publication discipline as the CSR view).
type profileRows [][]int32

// BuildProfiles computes and caches the label profile of every node. It is
// called lazily by NodeProfile; call it eagerly to front-load the cost
// (mirroring the paper's stored profile index). Concurrent callers may race
// to build; the build is idempotent and any published pointer is valid.
func (g *Graph) BuildProfiles() { g.ensureProfiles() }

func (g *Graph) ensureProfiles() profileRows {
	if p := g.profiles.Load(); p != nil {
		return *p
	}
	nl := g.labelDict.Size()
	profiles := make(profileRows, len(g.out))
	flat := make([]int32, len(g.out)*nl)
	for n := range g.out {
		row := flat[n*nl : (n+1)*nl : (n+1)*nl]
		for _, h := range g.out[n] {
			row[g.labels[h.To]]++
		}
		if g.directed {
			for _, h := range g.in[n] {
				row[g.labels[h.To]]++
			}
		}
		profiles[n] = row
	}
	if !g.profiles.CompareAndSwap(nil, &profiles) {
		if cur := g.profiles.Load(); cur != nil {
			return *cur
		}
	}
	return profiles
}

// invalidateProfiles drops the profile table after a mutation.
func (g *Graph) invalidateProfiles() { g.profiles.Store(nil) }

// NodeProfile returns the (cached) neighborhood label profile of n. Both
// in- and out-neighbors contribute for directed graphs. A neighbor reached
// through parallel edges (or both edge directions) is counted once per
// half-edge, matching the adjacency-list representation the matching
// algorithms traverse.
func (g *Graph) NodeProfile(n NodeID) Profile {
	g.mustNode(n)
	return g.ensureProfiles()[n]
}
