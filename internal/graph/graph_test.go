package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func path(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(false)
	g.AddNodes(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

func TestAddNodeEdge(t *testing.T) {
	g := New(false)
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d want 0,1", a, b)
	}
	e := g.AddEdge(a, b)
	if e != 0 {
		t.Fatalf("edge id = %d want 0", e)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts = %d,%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("undirected edge should be visible from both endpoints")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatalf("degrees = %d,%d", g.Degree(a), g.Degree(b))
	}
}

func TestDirectedEdges(t *testing.T) {
	g := New(true)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b)
	if !g.HasEdge(a, b) {
		t.Fatal("missing a->b")
	}
	if g.HasEdge(b, a) {
		t.Fatal("unexpected b->a")
	}
	if len(g.Out(a)) != 1 || len(g.In(b)) != 1 || len(g.In(a)) != 0 {
		t.Fatal("adjacency lists wrong")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatalf("directed degree = %d,%d", g.Degree(a), g.Degree(b))
	}
}

func TestFindEdge(t *testing.T) {
	g := path(t, 3)
	if g.FindEdge(0, 1) != 0 || g.FindEdge(1, 2) != 1 {
		t.Fatal("FindEdge returned wrong IDs")
	}
	if g.FindEdge(0, 2) != -1 {
		t.Fatal("FindEdge should return -1 for missing edge")
	}
}

func TestLabels(t *testing.T) {
	g := New(false)
	n := g.AddNode()
	if g.Label(n) != NoLabel || g.LabelString(n) != "" {
		t.Fatal("fresh node should be unlabeled")
	}
	g.SetLabel(n, "author")
	if g.LabelString(n) != "author" {
		t.Fatalf("label = %q", g.LabelString(n))
	}
	m := g.AddNode()
	g.SetNodeAttr(m, LabelAttr, "author")
	if g.Label(m) != g.Label(n) {
		t.Fatal("labels should intern to the same ID")
	}
}

func TestNodeAttrs(t *testing.T) {
	g := New(false)
	n := g.AddNode()
	if _, ok := g.NodeAttr(n, "x"); ok {
		t.Fatal("unset attr should report ok=false")
	}
	g.SetNodeAttr(n, "x", "1")
	if v, ok := g.NodeAttr(n, "x"); !ok || v != "1" {
		t.Fatalf("attr = %q,%v", v, ok)
	}
	g.SetLabel(n, "L")
	attrs := g.NodeAttrs(n)
	if attrs["x"] != "1" || attrs[LabelAttr] != "L" {
		t.Fatalf("attrs = %v", attrs)
	}
	if v, ok := g.NodeAttr(n, LabelAttr); !ok || v != "L" {
		t.Fatalf("label via NodeAttr = %q,%v", v, ok)
	}
}

func TestEdgeAttrs(t *testing.T) {
	g := path(t, 2)
	e := EdgeID(0)
	if _, ok := g.EdgeAttr(e, "sign"); ok {
		t.Fatal("unset edge attr should report ok=false")
	}
	g.SetEdgeAttr(e, "sign", "-")
	if v, ok := g.EdgeAttr(e, "sign"); !ok || v != "-" {
		t.Fatalf("edge attr = %q,%v", v, ok)
	}
	if got := g.EdgeAttrs(e); got["sign"] != "-" {
		t.Fatalf("EdgeAttrs = %v", got)
	}
}

func TestNeighbors(t *testing.T) {
	g := New(true)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, b)
	g.AddEdge(c, a)
	got := g.Neighbors(a)
	want := []NodeID{b, c}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(a) = %v want %v", got, want)
	}
}

func TestProfile(t *testing.T) {
	g := New(false)
	a, b, c, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.SetLabel(b, "x")
	g.SetLabel(c, "x")
	g.SetLabel(d, "y")
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(a, d)
	p := g.NodeProfile(a)
	lx, _ := g.Labels().Lookup("x")
	ly, _ := g.Labels().Lookup("y")
	if p[lx] != 2 || p[ly] != 1 || p[NoLabel] != 0 {
		t.Fatalf("profile = %v", p)
	}
}

func TestProfileContains(t *testing.T) {
	cases := []struct {
		p, sub Profile
		want   bool
	}{
		{Profile{0, 2, 1}, Profile{0, 1, 1}, true},
		{Profile{0, 2, 1}, Profile{0, 3, 0}, false},
		{Profile{0, 2}, Profile{0, 0, 1}, false},
		{Profile{0, 2}, Profile{0, 0, 0}, true},
		{Profile{0, 2, 1}, Profile{}, true},
	}
	for i, c := range cases {
		if got := c.p.Contains(c.sub); got != c.want {
			t.Errorf("case %d: Contains = %v want %v", i, got, c.want)
		}
	}
}

func TestProfileInvalidatedOnMutation(t *testing.T) {
	g := New(false)
	a, b := g.AddNode(), g.AddNode()
	g.SetLabel(b, "x")
	_ = g.NodeProfile(a)
	c := g.AddNode()
	g.SetLabel(c, "x")
	g.AddEdge(a, c)
	lx, _ := g.Labels().Lookup("x")
	if got := g.NodeProfile(a)[lx]; got != 1 {
		t.Fatalf("profile after mutation = %d want 1", got)
	}
	g.AddEdge(a, b)
	if got := g.NodeProfile(a)[lx]; got != 2 {
		t.Fatalf("profile after second edge = %d want 2", got)
	}
}

func TestBFSOrderAndDepth(t *testing.T) {
	g := path(t, 5)
	var order []NodeID
	var depths []int
	g.BFS(0, 2, func(n NodeID, d int) bool {
		order = append(order, n)
		depths = append(depths, d)
		return true
	})
	if !reflect.DeepEqual(order, []NodeID{0, 1, 2}) {
		t.Fatalf("order = %v", order)
	}
	if !reflect.DeepEqual(depths, []int{0, 1, 2}) {
		t.Fatalf("depths = %v", depths)
	}
}

func TestBFSEarlyStop(t *testing.T) {
	g := path(t, 5)
	count := 0
	g.BFS(0, -1, func(n NodeID, d int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visited %d nodes, want 2", count)
	}
}

func TestBFSDirectedIgnoresDirection(t *testing.T) {
	g := New(true)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(b, a) // a reachable only via incoming edge
	g.AddEdge(b, c)
	reach := g.KHopNodes(a, 2)
	if len(reach) != 3 || reach[c] != 2 {
		t.Fatalf("reach = %v", reach)
	}
}

func TestKHopNodes(t *testing.T) {
	g := path(t, 6)
	reach := g.KHopNodes(2, 2)
	want := map[NodeID]int{0: 2, 1: 1, 2: 0, 3: 1, 4: 2}
	if !reflect.DeepEqual(reach, want) {
		t.Fatalf("KHopNodes = %v want %v", reach, want)
	}
}

func TestDistances(t *testing.T) {
	g := path(t, 4)
	iso := g.AddNode()
	d := g.Distances(0)
	want := []int32{0, 1, 2, 3, -1}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("Distances = %v want %v", d, want)
	}
	if g.HopDistance(0, 3, -1) != 3 {
		t.Fatal("HopDistance wrong")
	}
	if g.HopDistance(0, iso, -1) != -1 {
		t.Fatal("HopDistance to isolated node should be -1")
	}
	if g.HopDistance(0, 3, 2) != -1 {
		t.Fatal("HopDistance beyond cutoff should be -1")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(false)
	n := make([]NodeID, 4)
	for i := range n {
		n[i] = g.AddNode()
	}
	g.SetLabel(n[1], "x")
	g.AddEdge(n[0], n[1])
	e := g.AddEdge(n[1], n[2])
	g.SetEdgeAttr(e, "w", "5")
	g.AddEdge(n[2], n[3])
	sg := g.InducedSubgraph([]NodeID{n[0], n[1], n[2]})
	if sg.G.NumNodes() != 3 || sg.G.NumEdges() != 2 {
		t.Fatalf("subgraph size = %d nodes %d edges", sg.G.NumNodes(), sg.G.NumEdges())
	}
	l1 := sg.ToLocal[n[1]]
	if sg.G.LabelString(l1) != "x" {
		t.Fatal("label not copied")
	}
	le := sg.G.FindEdge(sg.ToLocal[n[1]], sg.ToLocal[n[2]])
	if le < 0 {
		le = sg.G.FindEdge(sg.ToLocal[n[2]], sg.ToLocal[n[1]])
	}
	if v, _ := sg.G.EdgeAttr(le, "w"); v != "5" {
		t.Fatal("edge attr not copied")
	}
	if sg.ToGlobal[l1] != n[1] {
		t.Fatal("ToGlobal inconsistent")
	}
}

func TestEgoSubgraph(t *testing.T) {
	g := path(t, 6)
	sg := g.EgoSubgraph(2, 1)
	if sg.G.NumNodes() != 3 || sg.G.NumEdges() != 2 {
		t.Fatalf("S(2,1) = %d nodes %d edges", sg.G.NumNodes(), sg.G.NumEdges())
	}
}

func TestEgoIntersectionUnion(t *testing.T) {
	g := path(t, 5)
	inter := g.EgoIntersection(0, 4, 2)
	if inter.G.NumNodes() != 1 { // only node 2
		t.Fatalf("intersection nodes = %d want 1", inter.G.NumNodes())
	}
	uni := g.EgoUnion(0, 4, 2)
	if uni.G.NumNodes() != 5 || uni.G.NumEdges() != 4 {
		t.Fatalf("union = %d nodes %d edges", uni.G.NumNodes(), uni.G.NumEdges())
	}
}

func TestClone(t *testing.T) {
	g := path(t, 3)
	g.SetLabel(0, "a")
	g.SetNodeAttr(1, "k", "v")
	g.SetEdgeAttr(0, "w", "1")
	c := g.Clone()
	c.AddEdge(0, 2)
	c.SetNodeAttr(1, "k", "other")
	if g.HasEdge(0, 2) {
		t.Fatal("clone mutation leaked into original")
	}
	if v, _ := g.NodeAttr(1, "k"); v != "v" {
		t.Fatal("clone attr mutation leaked")
	}
	if c.LabelString(0) != "a" {
		t.Fatal("label not cloned")
	}
}

func TestDirectedClone(t *testing.T) {
	g := New(true)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b)
	c := g.Clone()
	if !c.Directed() || !c.HasEdge(a, b) || c.HasEdge(b, a) {
		t.Fatal("directed clone wrong")
	}
}

// randomGraph builds a simple undirected graph from a seed.
func randomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(false)
	g.AddNodes(n)
	seen := map[[2]NodeID]bool{}
	for i := 0; i < m; i++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]NodeID{a, b}] {
			continue
		}
		seen[[2]NodeID{a, b}] = true
		g.AddEdge(a, b)
	}
	return g
}

// Property: BFS distances match Distances() for every reachable node.
func TestBFSMatchesDistancesProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 60)
		src := NodeID(uint64(seed) % 30)
		ref := g.Distances(src)
		ok := true
		g.BFS(src, -1, func(n NodeID, d int) bool {
			if int32(d) != ref[n] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ego subgraph's edge set equals the edges of g with both
// endpoints within k hops.
func TestEgoSubgraphEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 50)
		src := NodeID(int(uint64(seed)>>8) % 25)
		k := int(uint64(seed)>>16)%3 + 1
		sg := g.EgoSubgraph(src, k)
		reach := g.KHopNodes(src, k)
		want := 0
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(EdgeID(e))
			if _, ok := reach[ed.From]; !ok {
				continue
			}
			if _, ok := reach[ed.To]; !ok {
				continue
			}
			want++
		}
		return sg.G.NumEdges() == want && sg.G.NumNodes() == len(reach)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadIDs(t *testing.T) {
	g := New(false)
	g.AddNode()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("AddEdge", func() { g.AddEdge(0, 5) })
	mustPanic("Out", func() { g.Out(-1) })
	mustPanic("Edge", func() { g.Edge(0) })
	mustPanic("EdgeAttr", func() { g.EdgeAttr(3, "x") })
}

func TestWriteDOT(t *testing.T) {
	g := New(false)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.SetLabel(a, "x")
	g.SetNodeAttr(b, "highlight", "red")
	g.AddEdge(a, b)
	e := g.AddEdge(b, c)
	g.SetEdgeAttr(e, "sign", "-")
	var buf strings.Builder
	if err := g.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`graph "test"`, "0 -- 1", "style=dashed", "0:x", "fillcolor=\"red\""} {
		if !strings.Contains(out, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, out)
		}
	}
	d := New(true)
	x, y := d.AddNode(), d.AddNode()
	d.AddEdge(x, y)
	buf.Reset()
	if err := d.WriteDOT(&buf, "d"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") || !strings.Contains(buf.String(), "0 -> 1") {
		t.Fatalf("directed DOT wrong:\n%s", buf.String())
	}
}
