package graph

// Partitioner is the deterministic node→shard map of a sharded graph.
// The shard count is fixed when a store is created and recorded in the
// store header, so the same node always lands on the same shard across
// restarts, replicas, and (eventually) machines. The hash is part of the
// on-disk contract — mutation-log segments are routed by it — and must
// never change for an existing shard count.
//
// The zero value is a valid single-shard partitioner: every node maps to
// shard 0 and Enabled reports false, so unsharded code paths pay one
// predictable branch and nothing else.
type Partitioner struct {
	shards int
}

// NewPartitioner returns a partitioner over `shards` shards; counts below
// one clamp to one (the unsharded identity).
func NewPartitioner(shards int) Partitioner {
	if shards < 1 {
		shards = 1
	}
	return Partitioner{shards: shards}
}

// Shards returns the shard count (1 for the zero value).
func (p Partitioner) Shards() int {
	if p.shards < 1 {
		return 1
	}
	return p.shards
}

// Enabled reports whether the partitioner actually splits the graph
// (more than one shard).
func (p Partitioner) Enabled() bool { return p.shards > 1 }

// Shard maps a node to its owning shard. Deterministic: a splitmix64
// finalizer over the ID, reduced modulo the shard count. The finalizer
// decorrelates the dense ID sequence so consecutively ingested nodes
// spread across shards instead of striping.
func (p Partitioner) Shard(n NodeID) int {
	if p.shards <= 1 {
		return 0
	}
	return int(mix64(uint64(n)) % uint64(p.shards))
}

// ShardEdge maps an edge to the shard that persists its attribute
// mutations. Edge routing is independent of node ownership — it only
// decides which mutation-log segment carries the op and which shard's
// degraded state gates it — so a plain hash of the edge ID suffices.
func (p Partitioner) ShardEdge(e EdgeID) int {
	if p.shards <= 1 {
		return 0
	}
	return int(mix64(uint64(e)^0x9E3779B97F4A7C15) % uint64(p.shards))
}

// mix64 is the splitmix64 finalizer, the same mixer the deterministic
// RND() stream uses (core.rndStream).
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
