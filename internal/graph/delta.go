package graph

import "fmt"

// OpKind identifies one mutation kind in a Writer batch.
type OpKind uint8

// The mutation kinds a Writer batches and a mutation log persists.
const (
	// OpAddNode appends one node (its ID is implied by position: the
	// graph's node count when the op applies).
	OpAddNode OpKind = iota + 1
	// OpAddEdge appends the edge A->B (A-B undirected).
	OpAddEdge
	// OpSetLabel sets node A's label to Val.
	OpSetLabel
	// OpSetNodeAttr sets node A's attribute Key to Val.
	OpSetNodeAttr
	// OpSetEdgeAttr sets edge A's attribute Key to Val.
	OpSetEdgeAttr
)

// Op is one buffered mutation. Ops are replayable: applying a batch to the
// graph version it was created against reproduces the published version
// exactly, which is what the mutation log's replay-on-open relies on.
type Op struct {
	Kind OpKind
	// A is the target node (OpAddEdge: source; OpSetEdgeAttr: edge ID).
	A int32
	// B is the edge target for OpAddEdge.
	B int32
	// Key is the attribute key for the Set*Attr ops.
	Key string
	// Val is the label or attribute value.
	Val string
}

// Delta is one published mutation batch: the ops applied between epoch-1
// and epoch. Subscribers (incremental census maintenance) and the mutation
// log both consume deltas.
type Delta struct {
	// Epoch is the version whose snapshot first contains this batch.
	Epoch uint64
	// Ops are the batch's mutations in application order.
	Ops []Op
}

// ApplyOp applies one op to a mutable graph (mutation-log replay and
// maintenance replicas). The op must be well formed for the graph's
// current shape; a malformed op returns an error without partial effects.
func ApplyOp(g *Graph, op Op) error {
	switch op.Kind {
	case OpAddNode:
		g.AddNode()
	case OpAddEdge:
		if err := checkNode(g, op.A); err != nil {
			return err
		}
		if err := checkNode(g, op.B); err != nil {
			return err
		}
		g.AddEdge(NodeID(op.A), NodeID(op.B))
	case OpSetLabel:
		if err := checkNode(g, op.A); err != nil {
			return err
		}
		g.SetLabel(NodeID(op.A), op.Val)
	case OpSetNodeAttr:
		if err := checkNode(g, op.A); err != nil {
			return err
		}
		g.SetNodeAttr(NodeID(op.A), op.Key, op.Val)
	case OpSetEdgeAttr:
		if op.A < 0 || int(op.A) >= g.NumEdges() {
			return fmt.Errorf("graph: op references edge %d out of range [0,%d)", op.A, g.NumEdges())
		}
		g.SetEdgeAttr(EdgeID(op.A), op.Key, op.Val)
	default:
		return fmt.Errorf("graph: unknown op kind %d", op.Kind)
	}
	return nil
}

func checkNode(g *Graph, n int32) error {
	if n < 0 || int(n) >= g.NumNodes() {
		return fmt.Errorf("graph: op references node %d out of range [0,%d)", n, g.NumNodes())
	}
	return nil
}
