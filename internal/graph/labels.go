package graph

// LabelDict interns node label strings to dense LabelIDs. ID 0 (NoLabel) is
// reserved for the empty/unset label.
type LabelDict struct {
	names []string
	ids   map[string]LabelID
}

// NewLabelDict returns a dictionary containing only the reserved NoLabel
// entry.
func NewLabelDict() *LabelDict {
	return &LabelDict{
		names: []string{""},
		ids:   map[string]LabelID{"": NoLabel},
	}
}

// Intern returns the LabelID for name, assigning a new one if needed.
func (d *LabelDict) Intern(name string) LabelID {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := LabelID(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// Lookup returns the LabelID for name without interning; ok is false when
// the label is unknown.
func (d *LabelDict) Lookup(name string) (id LabelID, ok bool) {
	id, ok = d.ids[name]
	return id, ok
}

// Name returns the string for a LabelID ("" for NoLabel or out-of-range).
func (d *LabelDict) Name(id LabelID) string {
	if id < 0 || int(id) >= len(d.names) {
		return ""
	}
	return d.names[id]
}

// Size returns the number of interned labels including NoLabel.
func (d *LabelDict) Size() int { return len(d.names) }

// Clone returns a deep copy of the dictionary.
func (d *LabelDict) Clone() *LabelDict {
	c := &LabelDict{
		names: append([]string(nil), d.names...),
		ids:   make(map[string]LabelID, len(d.ids)),
	}
	for k, v := range d.ids {
		c.ids[k] = v
	}
	return c
}
