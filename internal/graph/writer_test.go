package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// graphFingerprint captures everything a census reader can observe about a
// graph version, via public read methods only, in a canonical form.
func graphFingerprint(g *Graph) string {
	var b []byte
	b = append(b, fmt.Sprintf("directed=%v n=%d m=%d\n", g.Directed(), g.NumNodes(), g.NumEdges())...)
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		out := append([]NodeID(nil), g.OutNeighbors(id)...)
		in := append([]NodeID(nil), g.InNeighbors(id)...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
		b = append(b, fmt.Sprintf("node %d label=%q out=%v in=%v attrs=%v\n",
			n, g.LabelString(id), out, in, sortedAttrs(g.NodeAttrs(id)))...)
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := EdgeID(e)
		ed := g.Edge(id)
		b = append(b, fmt.Sprintf("edge %d %d->%d attrs=%v\n", e, ed.From, ed.To, sortedAttrs(g.EdgeAttrs(id)))...)
	}
	return string(b)
}

func sortedAttrs(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, k+"="+v)
	}
	sort.Strings(out)
	return out
}

// replayOps applies a flat op sequence to a fresh mutable graph.
func replayOps(t *testing.T, directed bool, deltas []Delta) *Graph {
	t.Helper()
	g := New(directed)
	for _, d := range deltas {
		for _, op := range d.Ops {
			if err := ApplyOp(g, op); err != nil {
				t.Fatalf("replay epoch %d: %v", d.Epoch, err)
			}
		}
	}
	return g
}

func TestFrozenGraphPanicsOnMutation(t *testing.T) {
	g := path(t, 3)
	Freeze(g)
	mutators := map[string]func(){
		"AddNode":     func() { g.AddNode() },
		"AddEdge":     func() { g.AddEdge(0, 2) },
		"SetLabel":    func() { g.SetLabel(0, "x") },
		"SetNodeAttr": func() { g.SetNodeAttr(0, "k", "v") },
		"SetEdgeAttr": func() { g.SetEdgeAttr(0, "k", "v") },
	}
	for name, fn := range mutators {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen graph did not panic", name)
				}
			}()
			fn()
		}()
	}
	// Reads must keep working.
	if g.NumNodes() != 3 || len(g.AllNeighbors(1)) != 2 {
		t.Fatal("reads broken after freeze")
	}
}

func TestWriterPublishVisibility(t *testing.T) {
	w := NewWriter(New(false))
	s0 := w.Snapshot()
	if s0.Epoch() != 0 || s0.NumNodes() != 0 {
		t.Fatalf("epoch0 = %d nodes=%d", s0.Epoch(), s0.NumNodes())
	}

	a := w.AddNode()
	b := w.AddNode()
	w.AddEdge(a, b)
	w.SetLabel(a, "red")

	// Nothing visible before publish.
	if got := w.Snapshot(); got != s0 || got.NumNodes() != 0 {
		t.Fatal("pending ops leaked into published snapshot")
	}
	if w.Pending() != 4 {
		t.Fatalf("pending = %d want 4", w.Pending())
	}

	s1, err := w.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch() != 1 || s1.NumNodes() != 2 || s1.NumEdges() != 1 {
		t.Fatalf("s1 = epoch %d n=%d m=%d", s1.Epoch(), s1.NumNodes(), s1.NumEdges())
	}
	if s1.Graph().LabelString(a) != "red" {
		t.Fatalf("label = %q", s1.Graph().LabelString(a))
	}
	// s0 still frozen at its version.
	if s0.NumNodes() != 0 {
		t.Fatal("epoch-0 snapshot mutated")
	}
	// Publishing with nothing pending is a no-op.
	s1b, err := w.Publish()
	if err != nil || s1b != s1 {
		t.Fatalf("empty publish: %v %p vs %p", err, s1b, s1)
	}
}

func TestWriterSnapshotIsolationAcrossEpochs(t *testing.T) {
	for _, directed := range []bool{false, true} {
		t.Run(fmt.Sprintf("directed=%v", directed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			w := NewWriter(New(directed))
			var deltas []Delta
			w.Subscribe(func(_ *Snapshot, d Delta) { deltas = append(deltas, d) })
			w.AddNodes(8)
			if _, err := w.Publish(); err != nil {
				t.Fatal(err)
			}

			type held struct {
				snap *Snapshot
				fp   string
			}
			var pinned []held

			labels := []string{"a", "b", "c"}
			for epoch := 0; epoch < 30; epoch++ {
				for op := 0; op < 5; op++ {
					switch rng.Intn(5) {
					case 0:
						w.AddNode()
					case 1:
						n := w.Snapshot() // current staged range via stats
						_ = n
						u := NodeID(rng.Intn(w.Stats().Nodes))
						v := NodeID(rng.Intn(w.Stats().Nodes))
						w.AddEdge(u, v)
					case 2:
						w.SetLabel(NodeID(rng.Intn(w.Stats().Nodes)), labels[rng.Intn(len(labels))])
					case 3:
						w.SetNodeAttr(NodeID(rng.Intn(w.Stats().Nodes)), "k"+labels[rng.Intn(3)], fmt.Sprint(epoch))
					case 4:
						if w.Stats().Edges > 0 {
							w.SetEdgeAttr(EdgeID(rng.Intn(w.Stats().Edges)), "w", fmt.Sprint(epoch))
						}
					}
				}
				s, err := w.Publish()
				if err != nil {
					t.Fatal(err)
				}
				// Touch the CSR so later publishes extend it with overlays.
				if s.NumNodes() > 0 {
					s.Graph().AllNeighbors(0)
				}
				pinned = append(pinned, held{s, graphFingerprint(s.Graph())})
			}

			// Every pinned snapshot must still fingerprint identically, and
			// match an independent replay of its delta prefix.
			for i, h := range pinned {
				if got := graphFingerprint(h.snap.Graph()); got != h.fp {
					t.Fatalf("snapshot %d (epoch %d) changed after later publishes:\nbefore:\n%s\nafter:\n%s",
						i, h.snap.Epoch(), h.fp, got)
				}
				ref := replayOps(t, directed, deltas[:h.snap.Epoch()])
				if got, want := h.fp, graphFingerprint(ref); got != want {
					t.Fatalf("snapshot epoch %d diverges from replay:\nsnapshot:\n%s\nreplay:\n%s",
						h.snap.Epoch(), got, want)
				}
			}
		})
	}
}

func TestWriterOverlayMatchesCompactCSR(t *testing.T) {
	for _, directed := range []bool{false, true} {
		t.Run(fmt.Sprintf("directed=%v", directed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := New(directed)
			g.AddNodes(20)
			for i := 0; i < 30; i++ {
				g.AddEdge(NodeID(rng.Intn(20)), NodeID(rng.Intn(20)))
			}
			w := NewWriter(g)
			w.CompactOverlayAt = -1 // keep overlays so the test exercises them
			w.Snapshot().Graph().BuildCSR()

			for round := 0; round < 10; round++ {
				for i := 0; i < 4; i++ {
					if rng.Intn(3) == 0 {
						w.AddNode()
					}
					w.AddEdge(NodeID(rng.Intn(w.Stats().Nodes)), NodeID(rng.Intn(w.Stats().Nodes)))
				}
				s, err := w.Publish()
				if err != nil {
					t.Fatal(err)
				}
				if rows, built := s.Overlay(); !built || rows == 0 {
					t.Fatalf("round %d: expected overlay rows, got rows=%d built=%v", round, rows, built)
				}
				overlayFP := graphFingerprint(s.Graph())
				s.Graph().CompactCSR()
				if rows, _ := s.Overlay(); rows != 0 {
					t.Fatalf("round %d: overlay not folded by CompactCSR", round)
				}
				if got := graphFingerprint(s.Graph()); got != overlayFP {
					t.Fatalf("round %d: overlay view differs from compacted view:\noverlay:\n%s\ncompact:\n%s",
						round, overlayFP, got)
				}
			}
		})
	}
}

func TestWriterProfilesPerSnapshot(t *testing.T) {
	w := NewWriter(New(false))
	a := w.AddNode()
	b := w.AddNode()
	w.AddEdge(a, b)
	w.SetLabel(b, "x")
	s1, _ := w.Publish()
	p1 := append(Profile(nil), s1.Graph().NodeProfile(a)...)

	c := w.AddNode()
	w.AddEdge(a, c)
	w.SetLabel(c, "x")
	s2, _ := w.Publish()

	if !reflect.DeepEqual(append(Profile(nil), s1.Graph().NodeProfile(a)...), p1) {
		t.Fatal("epoch-1 profile changed after later publish")
	}
	xID, ok := s2.Graph().Labels().Lookup("x")
	if !ok {
		t.Fatal("label x missing at epoch 2")
	}
	if got := s2.Graph().NodeProfile(a)[xID]; got != 2 {
		t.Fatalf("epoch-2 profile[x] = %d want 2", got)
	}
	if got := s1.Graph().NodeProfile(a)[xID]; got != 1 {
		t.Fatalf("epoch-1 profile[x] = %d want 1", got)
	}
}

func TestWriterStagedValidation(t *testing.T) {
	w := NewWriter(New(false))
	a := w.AddNode()
	// Edge to a staged (unpublished) node is fine.
	w.AddEdge(a, a)
	for name, fn := range map[string]func(){
		"edge-oob":  func() { w.AddEdge(a, 5) },
		"label-oob": func() { w.SetLabel(9, "x") },
		"eattr-oob": func() { w.SetEdgeAttr(7, "k", "v") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWriterWALOrdering(t *testing.T) {
	var appended [][]Op
	fail := false
	w := NewWriter(New(false))
	w.SetWAL(walFunc(func(ops []Op) error {
		if fail {
			return fmt.Errorf("disk full")
		}
		appended = append(appended, append([]Op(nil), ops...))
		return nil
	}))

	w.AddNode()
	if _, err := w.Publish(); err != nil {
		t.Fatal(err)
	}
	if len(appended) != 1 || len(appended[0]) != 1 {
		t.Fatalf("wal batches = %v", appended)
	}

	// A failing WAL append must abort the publish, keep ops pending, and
	// (the failure being permanent — no Transient marker) degrade the
	// writer to read-only.
	w.AddNode()
	fail = true
	var de *DegradedError
	if _, err := w.Publish(); !errors.As(err, &de) {
		t.Fatalf("publish err = %v, want *DegradedError", err)
	}
	if got := w.Snapshot().NumNodes(); got != 1 {
		t.Fatalf("snapshot advanced past failed WAL append: nodes=%d", got)
	}
	if w.Pending() != 1 {
		t.Fatalf("pending = %d want 1 (retained for retry)", w.Pending())
	}
	// Degraded mode is sticky: the WAL being healthy again changes
	// nothing until the operator clears it.
	fail = false
	if _, err := w.Publish(); !errors.As(err, &de) {
		t.Fatalf("publish while degraded: err = %v, want *DegradedError", err)
	}
	if w.Degraded() == nil || !w.Stats().Degraded {
		t.Fatal("degraded state not reported")
	}
	if !w.ClearDegraded() {
		t.Fatal("ClearDegraded returned false on a degraded writer")
	}
	s, err := w.Publish()
	if err != nil || s.NumNodes() != 2 {
		t.Fatalf("retry publish: %v nodes=%d", err, s.NumNodes())
	}

	// Barrier exposes history newer than the requested epoch.
	var tailEpochs []uint64
	if err := w.Barrier(1, func(cur *Snapshot, tail []Delta) (WAL, error) {
		for _, d := range tail {
			tailEpochs = append(tailEpochs, d.Epoch)
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tailEpochs, []uint64{2}) {
		t.Fatalf("barrier tail = %v want [2]", tailEpochs)
	}
}

type walFunc func(ops []Op) error

func (f walFunc) AppendBatch(ops []Op) error { return f(ops) }

func TestWriterBackgroundCompaction(t *testing.T) {
	g := New(false)
	g.AddNodes(64)
	w := NewWriter(g)
	w.CompactOverlayAt = 4
	w.Snapshot().Graph().BuildCSR()

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		w.AddEdge(NodeID(rng.Intn(64)), NodeID(rng.Intn(64)))
		if _, err := w.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction is asynchronous; wait for the in-flight one, then verify
	// at least one ran and the view stayed correct.
	for w.compacting.Load() {
	}
	if w.Stats().Compactions == 0 {
		t.Fatal("no background compaction ran despite CompactOverlayAt=4")
	}
	s := w.Snapshot()
	fp := graphFingerprint(s.Graph())
	s.Graph().CompactCSR()
	if got := graphFingerprint(s.Graph()); got != fp {
		t.Fatal("compacted view diverges from overlay view")
	}
}
