package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// scriptOp drives the same mutation against a Writer and a ShardedWriter.
type scriptOp struct {
	kind byte // 'n' node, 'e' edge, 'l' label, 'a' node attr, 'x' edge attr, 'p' publish
	a, b int
	k, v string
}

func randomScript(rng *rand.Rand, n int) []scriptOp {
	var script []scriptOp
	nodes, edges := 0, 0
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 3 || nodes < 2:
			script = append(script, scriptOp{kind: 'n'})
			nodes++
		case r < 6:
			script = append(script, scriptOp{kind: 'e', a: rng.Intn(nodes), b: rng.Intn(nodes)})
			edges++
		case r < 7:
			script = append(script, scriptOp{kind: 'l', a: rng.Intn(nodes), v: fmt.Sprintf("L%d", rng.Intn(4))})
		case r < 8:
			script = append(script, scriptOp{kind: 'a', a: rng.Intn(nodes), k: "k", v: fmt.Sprintf("v%d", i)})
		case r < 9 && edges > 0:
			script = append(script, scriptOp{kind: 'x', a: rng.Intn(edges), k: "w", v: fmt.Sprintf("%d", i)})
		default:
			script = append(script, scriptOp{kind: 'p'})
		}
	}
	return script
}

type mutator interface {
	AddNode() NodeID
	AddEdge(from, to NodeID) EdgeID
	SetLabel(n NodeID, label string)
	SetNodeAttr(n NodeID, key, value string)
	SetEdgeAttr(e EdgeID, key, value string)
	Publish() (*Snapshot, error)
	Snapshot() *Snapshot
}

func runScript(t *testing.T, m mutator, script []scriptOp) (nodeIDs []NodeID, edgeIDs []EdgeID, epochs []string) {
	t.Helper()
	for _, s := range script {
		switch s.kind {
		case 'n':
			nodeIDs = append(nodeIDs, m.AddNode())
		case 'e':
			edgeIDs = append(edgeIDs, m.AddEdge(nodeIDs[s.a], nodeIDs[s.b]))
		case 'l':
			m.SetLabel(nodeIDs[s.a], s.v)
		case 'a':
			m.SetNodeAttr(nodeIDs[s.a], s.k, s.v)
		case 'x':
			m.SetEdgeAttr(edgeIDs[s.a], s.k, s.v)
		case 'p':
			snap, err := m.Publish()
			if err != nil {
				t.Fatalf("publish: %v", err)
			}
			epochs = append(epochs, fmt.Sprintf("epoch %d\n%s", snap.Epoch(), graphFingerprint(snap.Graph())))
		}
	}
	snap, err := m.Publish()
	if err != nil {
		t.Fatalf("final publish: %v", err)
	}
	epochs = append(epochs, fmt.Sprintf("epoch %d\n%s", snap.Epoch(), graphFingerprint(snap.Graph())))
	return nodeIDs, edgeIDs, epochs
}

// TestShardedWriterParity holds ShardedWriter to Writer's observable
// behavior — same assigned IDs, same epochs, same per-epoch fingerprints
// — for the single-shard compatibility path and for P=4 with parallel
// application.
func TestShardedWriterParity(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("directed=%v/shards=%d", directed, shards), func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				script := randomScript(rng, 400)
				w := NewWriter(New(directed))
				sw := NewShardedWriter(New(directed), shards)
				sw.ApplyWorkers = 4
				wn, we, weps := runScript(t, w, script)
				sn, se, seps := runScript(t, sw, script)
				if !reflect.DeepEqual(wn, sn) || !reflect.DeepEqual(we, se) {
					t.Fatalf("assigned IDs diverge")
				}
				if !reflect.DeepEqual(weps, seps) {
					t.Fatalf("epoch fingerprints diverge:\nwriter:\n%s\nsharded:\n%s", weps[len(weps)-1], seps[len(seps)-1])
				}
			})
		}
	}
}

// TestShardedWriterWALOrdering checks the plain-WAL path appends exactly
// the op sequence a Writer would, and that per-shard segment batches
// reassemble to that sequence via their batch indexes.
func TestShardedWriterWALOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	script := randomScript(rng, 300)

	var flatW, flatS [][]Op
	w := NewWriter(New(false))
	w.SetWAL(walFunc(func(ops []Op) error {
		flatW = append(flatW, append([]Op(nil), ops...))
		return nil
	}))
	runScript(t, w, script)

	sw := NewShardedWriter(New(false), 1)
	sw.SetWAL(walFunc(func(ops []Op) error {
		flatS = append(flatS, append([]Op(nil), ops...))
		return nil
	}))
	runScript(t, sw, script)
	if !reflect.DeepEqual(flatW, flatS) {
		t.Fatalf("P=1 WAL batches diverge from Writer's")
	}

	// P=4 through a ShardWAL: reassembling each epoch's segment records by
	// batch index must reproduce the same flat op sequence.
	var epochs [][]Op
	sw4 := NewShardedWriter(New(false), 4)
	sw4.SetWAL(&shardWALRecorder{onEpoch: func(ops []Op) { epochs = append(epochs, ops) }})
	runScript(t, sw4, script)
	if !reflect.DeepEqual(flatW, epochs) {
		t.Fatalf("P=4 reassembled WAL batches diverge from Writer's")
	}
}

// shardWALRecorder implements ShardWAL, reassembling each epoch's parts.
type shardWALRecorder struct {
	onEpoch func([]Op)
	fail    map[int]error
}

func (r *shardWALRecorder) AppendBatch(ops []Op) error {
	r.onEpoch(append([]Op(nil), ops...))
	return nil
}

func (r *shardWALRecorder) AppendShardBatch(parts []ShardBatch, totalOps int) error {
	for _, p := range parts {
		if err := r.fail[p.Shard]; err != nil {
			return &segmentFault{shard: p.Shard, err: err}
		}
	}
	ops := make([]Op, totalOps)
	seen := 0
	for _, p := range parts {
		for i, op := range p.Ops {
			ops[p.Index[i]] = op
			seen++
		}
	}
	if seen != totalOps {
		return fmt.Errorf("short batch: %d of %d ops", seen, totalOps)
	}
	if r.onEpoch != nil {
		r.onEpoch(ops)
	}
	return nil
}

type segmentFault struct {
	shard int
	err   error
}

func (f *segmentFault) Error() string    { return fmt.Sprintf("shard %d: %v", f.shard, f.err) }
func (f *segmentFault) Unwrap() error    { return f.err }
func (f *segmentFault) FailedShard() int { return f.shard }

// TestShardedWriterConcurrentIngest stages from several goroutines while
// another publishes continuously; the final graph must contain every
// staged object under the IDs staging returned. Run under -race.
func TestShardedWriterConcurrentIngest(t *testing.T) {
	sw := NewShardedWriter(New(false), 4)
	const workers, perWorker = 4, 200
	type star struct {
		center NodeID
		leaves []NodeID
		edges  []EdgeID
	}
	stars := make([][]star, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	stop := make(chan struct{})
	var pubErr error
	var pubWg sync.WaitGroup
	pubWg.Add(1)
	go func() {
		defer pubWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := sw.Publish(); err != nil && pubErr == nil {
					pubErr = err
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := star{center: sw.AddNode()}
				for l := 0; l < 3; l++ {
					leaf := sw.AddNode()
					s.leaves = append(s.leaves, leaf)
					s.edges = append(s.edges, sw.AddEdge(s.center, leaf))
				}
				sw.SetLabel(s.center, "C")
				stars[w] = append(stars[w], s)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pubWg.Wait()
	if pubErr != nil {
		t.Fatalf("publisher: %v", pubErr)
	}
	snap, err := sw.Publish()
	if err != nil {
		t.Fatalf("final publish: %v", err)
	}
	g := snap.Graph()
	if got, want := g.NumNodes(), workers*perWorker*4; got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), workers*perWorker*3; got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	for w := range stars {
		for _, s := range stars[w] {
			if g.LabelString(s.center) != "C" {
				t.Fatalf("node %d lost its label", s.center)
			}
			for i, e := range s.edges {
				ed := g.Edge(e)
				if ed.From != s.center || ed.To != s.leaves[i] {
					t.Fatalf("edge %d = %d->%d, want %d->%d", e, ed.From, ed.To, s.center, s.leaves[i])
				}
			}
		}
	}
}

// TestShardedWriterDegradedShardIsolation drives one shard's segment into
// a permanent failure and checks (a) only that shard degrades, (b) later
// publishes route healthy shards' ops around it subject to dense-ID
// holds, and (c) clearing the fault catches up to the full graph.
func TestShardedWriterDegradedShardIsolation(t *testing.T) {
	const shards = 4
	rec := &shardWALRecorder{fail: map[int]error{}}
	sw := NewShardedWriter(New(false), shards)
	sw.SetWAL(rec)

	// Seed nodes across every shard, published while healthy.
	var nodes []NodeID
	for i := 0; i < 64; i++ {
		nodes = append(nodes, sw.AddNode())
	}
	if _, err := sw.Publish(); err != nil {
		t.Fatalf("seed publish: %v", err)
	}

	// Find a victim shard that owns at least one seeded node.
	part := sw.Partitioner()
	victim := part.Shard(nodes[0])
	rec.fail[victim] = errors.New("injected ENOSPC")

	// Stage attrs on every node: victim-shard ops will stick, others
	// publish after the first (failing) attempt.
	for _, n := range nodes {
		sw.SetNodeAttr(n, "touched", "yes")
	}
	if _, err := sw.Publish(); err == nil {
		t.Fatal("publish with failing shard should error")
	}
	if got := sw.DegradedShards(); len(got) != 1 || got[0] != victim {
		t.Fatalf("DegradedShards = %v, want [%d]", got, victim)
	}

	snap, err := sw.Publish() // routes around the degraded lane
	if err != nil {
		t.Fatalf("routed publish: %v", err)
	}
	g := snap.Graph()
	for _, n := range nodes {
		want := part.Shard(n) != victim
		if got := g.NodeAttrs(n)["touched"] == "yes"; got != want {
			t.Fatalf("node %d (shard %d): touched=%v, want %v", n, part.Shard(n), got, want)
		}
	}

	// New creations: the first held creation (a node hashing to the
	// victim) gates every later creation, keeping IDs dense.
	var newNodes []NodeID
	for i := 0; i < 32; i++ {
		newNodes = append(newNodes, sw.AddNode())
	}
	firstHeld := -1
	for i, n := range newNodes {
		if part.Shard(n) == victim {
			firstHeld = i
			break
		}
	}
	snap, err = sw.Publish()
	if firstHeld == 0 {
		// Everything was held: the publish makes no progress and reports
		// the degraded shard instead.
		if err == nil {
			t.Fatal("fully held publish should surface the degraded error")
		}
		snap = sw.Snapshot()
	} else if err != nil {
		t.Fatalf("creation publish: %v", err)
	}
	wantNodes := len(nodes) + len(newNodes)
	if firstHeld >= 0 {
		wantNodes = len(nodes) + firstHeld
	}
	if got := snap.Graph().NumNodes(); got != wantNodes {
		t.Fatalf("published nodes = %d, want %d (first held creation at %d)", got, wantNodes, firstHeld)
	}

	// Recovery: clear the fault; everything held must publish, and the
	// result must match a from-scratch replay of the recorded WAL.
	delete(rec.fail, victim)
	if !sw.ClearDegraded() {
		t.Fatal("ClearDegraded reported no degraded shard")
	}
	snap, err = sw.Publish()
	if err != nil {
		t.Fatalf("recovery publish: %v", err)
	}
	g = snap.Graph()
	if got := g.NumNodes(); got != len(nodes)+len(newNodes) {
		t.Fatalf("recovered nodes = %d, want %d", got, len(nodes)+len(newNodes))
	}
	for _, n := range nodes {
		if g.NodeAttrs(n)["touched"] != "yes" {
			t.Fatalf("node %d attr lost after recovery", n)
		}
	}
	if sw.Pending() != 0 {
		t.Fatalf("pending = %d after recovery", sw.Pending())
	}
}

// TestRouteBatchWatermarks exercises the pure dense-ID routing rules.
func TestRouteBatchWatermarks(t *testing.T) {
	deg := make([]*DegradedError, 3)
	deg[1] = &DegradedError{}
	mk := func(lane int, kind OpKind, id, a, b int32) pubOp {
		return pubOp{seqOp: seqOp{id: id, op: Op{Kind: kind, A: a, B: b}}, lane: lane}
	}
	merged := []pubOp{
		mk(0, OpAddNode, 10, 0, 0),     // publishes
		mk(1, OpAddNode, 11, 0, 0),     // held: degraded lane → nodeWM=11
		mk(2, OpAddNode, 12, 0, 0),     // held: id >= nodeWM
		mk(0, OpAddEdge, 5, 10, 3),     // publishes (endpoints < 11)
		mk(2, OpAddEdge, 6, 11, 3),     // held: endpoint >= nodeWM → edgeWM=6
		mk(0, OpAddEdge, 7, 10, 10),    // held: id >= edgeWM
		mk(2, OpSetLabel, 0, 10, 0),    // publishes
		mk(2, OpSetLabel, 0, 12, 0),    // held: references held node
		mk(0, OpSetEdgeAttr, 0, 5, 0),  // publishes
		mk(0, OpSetEdgeAttr, 0, 6, 0),  // held: references held edge
		mk(1, OpSetNodeAttr, 0, 10, 0), // held: degraded lane
	}
	pub, held := routeBatch(merged, deg)
	if len(pub) != 4 || len(held) != 7 {
		t.Fatalf("pub=%d held=%d, want 4/7", len(pub), len(held))
	}
	for _, po := range pub {
		if po.lane == 1 {
			t.Fatal("degraded-lane op published")
		}
	}
	// Without degraded lanes everything publishes untouched.
	pub, held = routeBatch(merged, make([]*DegradedError, 3))
	if len(pub) != len(merged) || held != nil {
		t.Fatalf("healthy route: pub=%d held=%d", len(pub), len(held))
	}
}

// TestComputeStatsShardedMatches checks per-shard statistics merge to the
// whole-graph snapshot.
func TestComputeStatsShardedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(false)
	for i := 0; i < 500; i++ {
		g.AddNode()
	}
	for i := 0; i < 1500; i++ {
		g.AddEdge(NodeID(rng.Intn(500)), NodeID(rng.Intn(500)))
	}
	for i := 0; i < 200; i++ {
		g.SetLabel(NodeID(rng.Intn(500)), fmt.Sprintf("L%d", rng.Intn(5)))
	}
	want := ComputeStats(g)
	part := NewPartitioner(4)
	got := ComputeStatsSharded(g, part, 4)
	if got.Nodes != want.Nodes || got.Edges != want.Edges || got.MaxDegree != want.MaxDegree {
		t.Fatalf("counts diverge: got %+v want %+v", got, want)
	}
	if !reflect.DeepEqual(got.LabelCounts, want.LabelCounts) {
		t.Fatalf("label counts diverge")
	}
	for j := range want.DegreeMoments {
		d := got.DegreeMoments[j] - want.DegreeMoments[j]
		if d < -1e-6 || d > 1e-6 {
			t.Fatalf("moment %d diverges: %v vs %v", j, got.DegreeMoments[j], want.DegreeMoments[j])
		}
	}
	// Shard snapshots are disjoint: node counts must sum exactly.
	sum := 0
	for s := 0; s < part.Shards(); s++ {
		sum += ComputeStatsShard(g, part, s).Nodes
	}
	if sum != want.Nodes {
		t.Fatalf("shard node counts sum to %d, want %d", sum, want.Nodes)
	}
}

// TestPartitionerDeterminism pins the hash: shard assignment is part of
// the on-disk contract and must never drift.
func TestPartitionerDeterminism(t *testing.T) {
	p := NewPartitioner(4)
	want := []int{3, 1, 2, 1, 2, 2, 0, 3}
	for i, w := range want {
		if got := p.Shard(NodeID(i)); got != w {
			t.Fatalf("Shard(%d) = %d, want %d (hash drifted — on-disk contract)", i, got, w)
		}
	}
	if NewPartitioner(1).Shard(12345) != 0 || (Partitioner{}).Shard(7) != 0 {
		t.Fatal("single-shard partitioner must map everything to 0")
	}
}
