package graph

import "sync"

// applyBatchSharded is the shard-parallel applyBatch used by
// ShardedWriter for P > 1: it must produce a graph identical (field for
// field) to the sequential applyBatch, and the parity tests hold it to
// that.
//
// The work splits into two passes around the batch's only contended
// state, the per-node adjacency rows:
//
//   - Pass one (sequential) performs every append that is cheap and
//     order-dependent — the node header extension, edge table, label
//     column, attribute columns, and dictionary interning — while
//     collecting each adjacency-row append into the owning shard's list
//     (a row belongs to Partitioner.Shard of its node).
//   - Pass two (parallel) replays the per-shard lists: each worker owns a
//     disjoint set of shards, so every []Half row is appended to by
//     exactly one goroutine, in the original op order. The copy-on-write
//     row-sharing rules of applyBatch carry over unchanged because row
//     ownership, not op order, is what makes in-place appends safe.
//
// The CSR overlay extension runs after the barrier, exactly as in the
// sequential path.
func applyBatchSharded(base *Graph, ops []Op, epoch uint64, part Partitioner, workers int) *Graph {
	baseNodes := len(base.out)
	baseEdges := len(base.edgs)
	adds := 0
	for _, op := range ops {
		if op.Kind == OpAddNode {
			adds++
		}
	}

	c := &Graph{
		directed:  base.directed,
		epoch:     epoch,
		labelDict: base.labelDict,
		edgs:      base.edgs,
		labels:    base.labels,
		nodeAttrs: base.nodeAttrs,
		edgeAttrs: base.edgeAttrs,
	}
	c.out = make([][]Half, baseNodes, baseNodes+adds)
	copy(c.out, base.out)
	if base.directed {
		c.in = make([][]Half, baseNodes, baseNodes+adds)
		copy(c.in, base.in)
	}

	var (
		ownLabels, ownDict           bool
		ownNodeAttrs, ownEdgeAttrs   bool
		ownedNodeMaps, ownedEdgeMaps map[int32]bool
		dirty                        = make(map[NodeID]struct{}, 2*len(ops))
	)

	setLabel := func(n int32, name string) {
		if int(n) < baseNodes && !ownLabels {
			c.labels = append([]LabelID(nil), c.labels...)
			ownLabels = true
		}
		if !ownDict {
			if _, ok := c.labelDict.Lookup(name); !ok {
				c.labelDict = c.labelDict.Clone()
				ownDict = true
			}
		}
		c.labels[n] = c.labelDict.Intern(name)
	}

	// rowHalf is one deferred adjacency append: Half h onto row's out list
	// (or in list for the directed reverse entry).
	type rowHalf struct {
		row NodeID
		h   Half
		in  bool
	}
	shards := part.Shards()
	perShard := make([][]rowHalf, shards)

	for _, op := range ops {
		switch op.Kind {
		case OpAddNode:
			c.out = append(c.out, nil)
			if c.directed {
				c.in = append(c.in, nil)
			}
			c.labels = append(c.labels, NoLabel)
			c.nodeAttrs = append(c.nodeAttrs, nil)
		case OpAddEdge:
			from, to := NodeID(op.A), NodeID(op.B)
			id := EdgeID(len(c.edgs))
			c.edgs = append(c.edgs, Edge{From: from, To: to})
			c.edgeAttrs = append(c.edgeAttrs, nil)
			fs := part.Shard(from)
			perShard[fs] = append(perShard[fs], rowHalf{row: from, h: Half{To: to, Edge: id}})
			if c.directed {
				ts := part.Shard(to)
				perShard[ts] = append(perShard[ts], rowHalf{row: to, h: Half{To: from, Edge: id}, in: true})
			} else if from != to {
				ts := part.Shard(to)
				perShard[ts] = append(perShard[ts], rowHalf{row: to, h: Half{To: from, Edge: id}})
			}
			dirty[from] = struct{}{}
			dirty[to] = struct{}{}
		case OpSetLabel:
			setLabel(op.A, op.Val)
		case OpSetNodeAttr:
			if op.Key == LabelAttr {
				setLabel(op.A, op.Val)
				continue
			}
			if int(op.A) < baseNodes && !ownNodeAttrs {
				c.nodeAttrs = append([]map[string]string(nil), c.nodeAttrs...)
				ownNodeAttrs = true
			}
			if ownedNodeMaps == nil {
				ownedNodeMaps = map[int32]bool{}
			}
			c.nodeAttrs[op.A] = cowSet(c.nodeAttrs[op.A], ownedNodeMaps, op.A, op.Key, op.Val)
		case OpSetEdgeAttr:
			if int(op.A) < baseEdges && !ownEdgeAttrs {
				c.edgeAttrs = append([]map[string]string(nil), c.edgeAttrs...)
				ownEdgeAttrs = true
			}
			if ownedEdgeMaps == nil {
				ownedEdgeMaps = map[int32]bool{}
			}
			c.edgeAttrs[op.A] = cowSet(c.edgeAttrs[op.A], ownedEdgeMaps, op.A, op.Key, op.Val)
		}
	}

	// Pass two: shard-parallel adjacency appends. Worker w owns shards
	// s ≡ w (mod workers); rows of one shard never appear in another
	// shard's list, so the appends are disjoint by construction.
	if workers > shards {
		workers = shards
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for s := w; s < shards; s += workers {
				for _, rh := range perShard[s] {
					if rh.in {
						c.in[rh.row] = append(c.in[rh.row], rh.h)
					} else {
						c.out[rh.row] = append(c.out[rh.row], rh.h)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if bc := base.csr.Load(); bc != nil {
		c.csr.Store(extendCSR(bc, c, dirty))
	}
	c.frozen = true
	return c
}
