package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for visualization:
// node labels become DOT labels, a "sign" edge attribute of "-" renders
// dashed, and any "highlight" node attribute colors the node. Intended for
// small graphs and neighborhood subgraphs (e.g. g.EgoSubgraph(n, k).G).
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	kind, sep := "graph", "--"
	if g.directed {
		kind, sep = "digraph", "->"
	}
	fmt.Fprintf(bw, "%s %q {\n", kind, name)
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		var attrs []string
		label := g.LabelString(id)
		if label != "" {
			attrs = append(attrs, fmt.Sprintf("label=%q", fmt.Sprintf("%d:%s", n, label)))
		}
		if hl, ok := g.NodeAttr(id, "highlight"); ok && hl != "" {
			attrs = append(attrs, "style=filled", fmt.Sprintf("fillcolor=%q", hl))
		}
		if len(attrs) > 0 {
			fmt.Fprintf(bw, "  %d [%s];\n", n, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(bw, "  %d;\n", n)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(EdgeID(e))
		var attrs []string
		if sign, ok := g.EdgeAttr(EdgeID(e), "sign"); ok && sign == "-" {
			attrs = append(attrs, "style=dashed")
		}
		if len(attrs) > 0 {
			fmt.Fprintf(bw, "  %d %s %d [%s];\n", ed.From, sep, ed.To, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(bw, "  %d %s %d;\n", ed.From, sep, ed.To)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
