package graph

import "sync"

// Stats is an immutable statistical snapshot of a graph: counts, degree
// moments, and label frequencies. It is what the query planner's cost
// model consumes — cheap to compute (one pass over the degree and label
// vectors), and buildable from a disk store's resident indexes without
// materializing the graph (see storage.Store.GraphStats).
type Stats struct {
	// Nodes and Edges are |V| and |E|.
	Nodes int
	Edges int
	// Directed reports the edge semantics.
	Directed bool
	// MaxDegree is the largest node degree (out+in for directed graphs).
	MaxDegree int
	// DegreeMoments[j] holds the j-th falling-factorial degree moment
	// Σ_u d_u·(d_u-1)···(d_u-j+1). Index 0 is the node count and index 1
	// the degree sum (2|E| for undirected graphs). Falling factorials are
	// what the configuration-model match estimates need: the probability
	// that nodes u and v are adjacent is approximately d_u·d_v / Σd, and
	// picking j distinct neighbors of u contributes d_u^(j).
	DegreeMoments [MaxMoment + 1]float64
	// LabelCounts maps each label name to the number of nodes carrying it.
	// Unlabeled nodes are not counted.
	LabelCounts map[string]int
	// Epoch identifies the snapshot version these statistics describe.
	// Versioned sources stamp it from the snapshot they were computed
	// against; static sources leave it zero. Plan caches key on it so a
	// plan costed against stale statistics is never reused after a
	// publish.
	Epoch uint64
}

// MaxMoment is the highest falling-factorial degree moment tracked.
// Pattern nodes of higher degree clamp to it.
const MaxMoment = 4

// ComputeStats takes a statistics snapshot of g in one pass.
func ComputeStats(g *Graph) *Stats {
	s := &Stats{
		Edges:       g.NumEdges(),
		Directed:    g.Directed(),
		LabelCounts: map[string]int{},
	}
	for i := 0; i < g.NumNodes(); i++ {
		n := NodeID(i)
		s.AddDegree(g.Degree(n))
		if l := g.Label(n); l != NoLabel {
			s.LabelCounts[g.Labels().Name(l)]++
		}
	}
	return s
}

// ComputeStatsShard takes the statistics snapshot of one shard: degree
// moments and label counts over the shard's nodes, and the edges whose
// source endpoint the shard owns (so shard edge counts sum to |E|
// without double counting). Merging every shard's snapshot with
// MergeStats reproduces the whole-graph statistics.
func ComputeStatsShard(g *Graph, part Partitioner, shard int) *Stats {
	s := &Stats{
		Directed:    g.Directed(),
		LabelCounts: map[string]int{},
	}
	for i := 0; i < g.NumNodes(); i++ {
		n := NodeID(i)
		if part.Shard(n) != shard {
			continue
		}
		s.AddDegree(g.Degree(n))
		if l := g.Label(n); l != NoLabel {
			s.LabelCounts[g.Labels().Name(l)]++
		}
	}
	for e := range g.edgs {
		if part.Shard(g.edgs[e].From) == shard {
			s.Edges++
		}
	}
	return s
}

// MergeStats combines disjoint per-shard snapshots into the whole-graph
// snapshot: counts and moments sum, the max degree is the max, and the
// label frequencies union. Epoch is left zero for the caller to stamp.
func MergeStats(parts []*Stats) *Stats {
	s := &Stats{LabelCounts: map[string]int{}}
	for _, p := range parts {
		if p == nil {
			continue
		}
		s.Directed = p.Directed
		s.Nodes += p.Nodes
		s.Edges += p.Edges
		if p.MaxDegree > s.MaxDegree {
			s.MaxDegree = p.MaxDegree
		}
		for j := range s.DegreeMoments {
			s.DegreeMoments[j] += p.DegreeMoments[j]
		}
		for name, c := range p.LabelCounts {
			s.LabelCounts[name] += c
		}
	}
	return s
}

// ComputeStatsSharded computes the whole-graph statistics shard-parallel:
// one goroutine per shard (capped at workers) builds its shard's
// snapshot, and the results merge. Falls back to the sequential
// ComputeStats when the partitioner is disabled or only one worker is
// available, so unsharded paths get byte-for-byte the same statistics.
func ComputeStatsSharded(g *Graph, part Partitioner, workers int) *Stats {
	shards := part.Shards()
	if !part.Enabled() || workers <= 1 {
		return ComputeStats(g)
	}
	parts := make([]*Stats, shards)
	var wg sync.WaitGroup
	if workers > shards {
		workers = shards
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for s := w; s < shards; s += workers {
				parts[s] = ComputeStatsShard(g, part, s)
			}
		}(w)
	}
	wg.Wait()
	return MergeStats(parts)
}

// AddDegree folds one node of degree d into the snapshot. Builders that
// derive degrees without a Graph (e.g. a disk store's adjacency index) use
// it to accumulate the moments; ComputeStats uses it internally.
func (s *Stats) AddDegree(d int) {
	s.Nodes++
	if d > s.MaxDegree {
		s.MaxDegree = d
	}
	ff := 1.0
	s.DegreeMoments[0]++
	for j := 1; j <= MaxMoment; j++ {
		if d-j+1 <= 0 {
			break
		}
		ff *= float64(d - j + 1)
		s.DegreeMoments[j] += ff
	}
}

// MeanDegree returns the average degree (0 for the empty graph).
func (s *Stats) MeanDegree() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return s.DegreeMoments[1] / float64(s.Nodes)
}

// FallingMoment returns Σ_u d_u^(j), clamping j to the tracked range.
func (s *Stats) FallingMoment(j int) float64 {
	if j < 0 {
		j = 0
	}
	if j > MaxMoment {
		j = MaxMoment
	}
	return s.DegreeMoments[j]
}

// Branching is the expected BFS expansion factor after the first hop:
// E[d·(d-1)] / E[d], the mean residual degree of a neighbor reached by
// following a random edge. Heavy-tailed graphs have Branching much larger
// than MeanDegree, which is why neighborhood sizes explode with k.
func (s *Stats) Branching() float64 {
	if s.DegreeMoments[1] == 0 {
		return 0
	}
	return s.DegreeMoments[2] / s.DegreeMoments[1]
}

// LabelFreq returns the fraction of nodes carrying the label (0 when the
// label is unknown or the graph is empty).
func (s *Stats) LabelFreq(name string) float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.LabelCounts[name]) / float64(s.Nodes)
}

// NumLabels returns the number of distinct labels in use.
func (s *Stats) NumLabels() int { return len(s.LabelCounts) }

// LabelMatchProb is the probability that two independently drawn nodes
// carry the same (non-empty) label: Σ_L freq(L)². It estimates the
// selectivity of label-equality predicates such as [?A.LABEL=?B.LABEL].
func (s *Stats) LabelMatchProb() float64 {
	p := 0.0
	for _, c := range s.LabelCounts {
		f := float64(c) / float64(s.Nodes)
		p += f * f
	}
	return p
}

// NeighborhoodNodes estimates the expected size of a k-hop neighborhood
// |S(n, k)| via the branching process d̄ · b^(j-1) per hop, capped at |V|.
func (s *Stats) NeighborhoodNodes(k int) float64 {
	n := float64(s.Nodes)
	if n == 0 {
		return 0
	}
	total, frontier := 1.0, 1.0
	expand := s.MeanDegree()
	for j := 1; j <= k; j++ {
		frontier *= expand
		total += frontier
		if total >= n {
			return n
		}
		b := s.Branching()
		if b < 1 {
			b = 1
		}
		expand = b
	}
	return total
}

// NeighborhoodEdges estimates the half-edges touched by a k-hop BFS:
// every reached node scans its adjacency list. Capped at the total
// half-edge count.
func (s *Stats) NeighborhoodEdges(k int) float64 {
	e := s.NeighborhoodNodes(k) * s.MeanDegree()
	if cap := s.DegreeMoments[1]; e > cap {
		return cap
	}
	return e
}

// EdgeProb is the probability that an ordered pair of distinct random
// nodes is adjacent under a uniform (Erdős–Rényi) model. The cost model
// uses the configuration-model estimate instead where degrees matter.
func (s *Stats) EdgeProb() float64 {
	n := float64(s.Nodes)
	if n < 2 {
		return 0
	}
	if s.Directed {
		return float64(s.Edges) / (n * (n - 1))
	}
	return 2 * float64(s.Edges) / (n * (n - 1))
}
