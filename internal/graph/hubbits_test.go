package graph

import (
	"testing"

	"egocensus/internal/bitset"
)

func TestHubBitmapContents(t *testing.T) {
	g := New(false)
	const n = 300
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	// Node 0 is a hub: adjacent to every odd node. Everything else stays
	// below the threshold.
	for i := 1; i < n; i += 2 {
		g.AddEdge(0, NodeID(i))
	}
	g.BuildHubBitmaps()
	if g.HubCount() != 1 {
		t.Fatalf("HubCount = %d, want 1", g.HubCount())
	}
	bm := g.HubBitmap(0)
	if bm == nil {
		t.Fatal("HubBitmap(0) = nil for hub")
	}
	for i := 1; i < n; i++ {
		want := i%2 == 1
		if got := bitset.TestBit(bm, i); got != want {
			t.Fatalf("hub bitmap bit %d = %v, want %v", i, got, want)
		}
	}
	if g.HubBitmap(1) != nil {
		t.Fatal("low-degree node has a bitmap")
	}
}

func TestHubBitmapInvalidatedByMutation(t *testing.T) {
	g := New(false)
	const n = 200
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i))
	}
	bm := g.HubBitmap(0)
	if bm == nil {
		t.Fatal("no hub bitmap before mutation")
	}
	// Adding a node grows the universe; the rebuilt cache must reflect it.
	id := g.AddNode()
	g.AddEdge(0, id)
	bm2 := g.HubBitmap(0)
	if bm2 == nil {
		t.Fatal("no hub bitmap after mutation")
	}
	if !bitset.TestBit(bm2, int(id)) {
		t.Fatal("rebuilt bitmap missing new neighbor")
	}
}

func TestHubBitmapDirectedDisabled(t *testing.T) {
	g := New(true)
	for i := 0; i < 100; i++ {
		g.AddNode()
	}
	for i := 1; i < 100; i++ {
		g.AddEdge(0, NodeID(i))
	}
	g.BuildHubBitmaps()
	if g.HubBitmap(0) != nil {
		t.Fatal("directed graph returned a hub bitmap")
	}
	if g.HubCount() != 0 {
		t.Fatal("directed graph reported hubs")
	}
}

func TestHubBitmapParallelEdgesCollapse(t *testing.T) {
	g := New(false)
	const n = 100
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i))
		g.AddEdge(0, NodeID(i)) // parallel
	}
	bm := g.HubBitmap(0)
	if bm == nil {
		t.Fatal("no hub bitmap")
	}
	if got := bitset.CountWords(bm); got != n-1 {
		t.Fatalf("bitmap popcount = %d, want %d (parallel edges must collapse)", got, n-1)
	}
}
