package graph

import "sync/atomic"

// csr is a compressed-sparse-row mirror of the adjacency lists: one flat
// offsets array and one flat targets array per direction, built once per
// graph topology and invalidated by mutation (AddNode/AddEdge). The flat
// layout removes the per-node slice-header indirection of [][]Half and
// keeps neighbor scans on contiguous cache lines, which is what the hot
// traversal paths (BFS, k-hop extraction, CN matching) iterate.
//
// Three views exist:
//
//   - out: out-neighbors (all incident neighbors for undirected graphs),
//   - in:  in-neighbors (directed only; aliases out when undirected),
//   - all: the direction-ignoring union used by neighborhood traversal
//     (out followed by in; may repeat a neighbor for reciprocal directed
//     edge pairs, exactly like the adjacency lists it mirrors — traversals
//     deduplicate through their visited marks).
type csr struct {
	outOff []int32
	outTo  []NodeID
	inOff  []int32
	inTo   []NodeID
	allOff []int32
	allTo  []NodeID

	// Delta overlay (snapshot publication, writer.go). The flat arrays
	// above describe baseN nodes as of some earlier snapshot; over holds
	// replacement rows for nodes whose adjacency changed since (and for
	// nodes added since, when they have edges). A nil over is the common
	// fully-compacted case and costs one predictable branch per access.
	// Nodes >= baseN absent from over have no incident edges.
	baseN int
	over  map[NodeID]csrRow

	// hubs caches neighbor bitmaps for high-degree nodes (hubbits.go).
	// Tied to this csr instance, so a snapshot publish or mutation that
	// replaces the view discards the cache with it.
	hubs atomic.Pointer[hubCache]
}

// csrRow is one node's overlaid adjacency, mirroring the three flat views.
type csrRow struct {
	out, in, all []NodeID
}

func (c *csr) out(n NodeID) []NodeID {
	if c.over != nil {
		if r, ok := c.over[n]; ok {
			return r.out
		}
		if int(n) >= c.baseN {
			return nil
		}
	}
	return c.outTo[c.outOff[n]:c.outOff[n+1]]
}

func (c *csr) in(n NodeID) []NodeID {
	if c.over != nil {
		if r, ok := c.over[n]; ok {
			return r.in
		}
		if int(n) >= c.baseN {
			return nil
		}
	}
	return c.inTo[c.inOff[n]:c.inOff[n+1]]
}

func (c *csr) all(n NodeID) []NodeID {
	if c.over != nil {
		if r, ok := c.over[n]; ok {
			return r.all
		}
		if int(n) >= c.baseN {
			return nil
		}
	}
	return c.allTo[c.allOff[n]:c.allOff[n+1]]
}

// csrRowOf rebuilds one node's overlay row from the adjacency lists.
func csrRowOf(g *Graph, n NodeID) csrRow {
	out := make([]NodeID, len(g.out[n]))
	for i, h := range g.out[n] {
		out[i] = h.To
	}
	if !g.directed {
		return csrRow{out: out, in: out, all: out}
	}
	in := make([]NodeID, len(g.in[n]))
	for i, h := range g.in[n] {
		in[i] = h.To
	}
	all := make([]NodeID, 0, len(out)+len(in))
	all = append(append(all, out...), in...)
	return csrRow{out: out, in: in, all: all}
}

// extendCSR derives the CSR view of a freshly published snapshot from its
// parent's view: the flat arrays are shared and only the dirty nodes get
// overlay rows, so a publish never pays an O(nodes+edges) rebuild. The
// parent view may itself carry an overlay; its rows are inherited unless
// re-dirtied.
func extendCSR(base *csr, g *Graph, dirty map[NodeID]struct{}) *csr {
	c := &csr{
		outOff: base.outOff, outTo: base.outTo,
		inOff: base.inOff, inTo: base.inTo,
		allOff: base.allOff, allTo: base.allTo,
		baseN: base.baseN,
		over:  make(map[NodeID]csrRow, len(base.over)+len(dirty)),
	}
	for n, r := range base.over {
		c.over[n] = r
	}
	for n := range dirty {
		c.over[n] = csrRowOf(g, n)
	}
	return c
}

// overlaySize returns the number of overlay rows (0 when compacted).
func (c *csr) overlaySize() int {
	if c == nil {
		return 0
	}
	return len(c.over)
}

// buildCSR flattens the adjacency lists.
func buildCSR(g *Graph) *csr {
	n := len(g.out)
	c := &csr{outOff: make([]int32, n+1), baseN: n}
	total := 0
	for i, l := range g.out {
		c.outOff[i] = int32(total)
		total += len(l)
	}
	c.outOff[n] = int32(total)
	c.outTo = make([]NodeID, total)
	pos := 0
	for _, l := range g.out {
		for _, h := range l {
			c.outTo[pos] = h.To
			pos++
		}
	}
	if !g.directed {
		c.inOff, c.inTo = c.outOff, c.outTo
		c.allOff, c.allTo = c.outOff, c.outTo
		return c
	}
	c.inOff = make([]int32, n+1)
	total = 0
	for i, l := range g.in {
		c.inOff[i] = int32(total)
		total += len(l)
	}
	c.inOff[n] = int32(total)
	c.inTo = make([]NodeID, total)
	pos = 0
	for _, l := range g.in {
		for _, h := range l {
			c.inTo[pos] = h.To
			pos++
		}
	}
	// Union view: out halves then in halves per node.
	c.allOff = make([]int32, n+1)
	total = 0
	for i := 0; i < n; i++ {
		c.allOff[i] = int32(total)
		total += len(g.out[i]) + len(g.in[i])
	}
	c.allOff[n] = int32(total)
	c.allTo = make([]NodeID, total)
	pos = 0
	for i := 0; i < n; i++ {
		for _, h := range g.out[i] {
			c.allTo[pos] = h.To
			pos++
		}
		for _, h := range g.in[i] {
			c.allTo[pos] = h.To
			pos++
		}
	}
	return c
}

// ensureCSR returns the graph's CSR view, building it on first use after a
// mutation. Concurrent callers may race to build; the build is idempotent
// and the first published pointer wins, so readers never observe a stale
// view (mutations clear the pointer before returning).
func (g *Graph) ensureCSR() *csr {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	if !g.csr.CompareAndSwap(nil, c) {
		if cur := g.csr.Load(); cur != nil {
			return cur
		}
	}
	return c
}

// BuildCSR eagerly (re)builds the flat CSR adjacency view. Call it before
// fanning traversal work out to goroutines so workers share one prebuilt
// view instead of racing to construct it; it is otherwise built lazily by
// the first traversal.
func (g *Graph) BuildCSR() { g.ensureCSR() }

// invalidateCSR drops the CSR view after a topology mutation.
func (g *Graph) invalidateCSR() { g.csr.Store(nil) }

// CompactCSR rebuilds the flat CSR view from scratch, folding any delta
// overlay back into contiguous arrays. On a frozen snapshot this is safe
// under concurrent readers: the rebuilt view is equivalent and replaces
// the overlay atomically (readers that already hold the overlay pointer
// keep using it, also correct). The Writer calls this in the background
// once a snapshot's overlay outgrows overlayCompactAt.
func (g *Graph) CompactCSR() { g.csr.Store(buildCSR(g)) }

// CSRInfo reports the current CSR view's state for monitoring: how many
// nodes are served from the delta overlay, and whether a view has been
// built at all.
func (g *Graph) CSRInfo() (overlayRows int, built bool) {
	c := g.csr.Load()
	return c.overlaySize(), c != nil
}

// OutNeighbors returns the out-neighbor IDs of n as a slice into the flat
// CSR view (all incident neighbors for undirected graphs). The slice is
// owned by the graph, must not be modified, and is invalidated by graph
// mutation. One entry per half-edge: parallel edges repeat.
func (g *Graph) OutNeighbors(n NodeID) []NodeID {
	g.mustNode(n)
	return g.ensureCSR().out(n)
}

// InNeighbors returns the in-neighbor IDs of n (same as OutNeighbors for
// undirected graphs), with the same sharing rules as OutNeighbors.
func (g *Graph) InNeighbors(n NodeID) []NodeID {
	g.mustNode(n)
	return g.ensureCSR().in(n)
}

// AllNeighbors returns the direction-ignoring neighbor IDs of n (out
// followed by in for directed graphs), with the same sharing rules as
// OutNeighbors. A neighbor connected by reciprocal directed edges appears
// twice; traversals deduplicate through their visited marks.
func (g *Graph) AllNeighbors(n NodeID) []NodeID {
	g.mustNode(n)
	return g.ensureCSR().all(n)
}
