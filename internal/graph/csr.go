package graph

// csr is a compressed-sparse-row mirror of the adjacency lists: one flat
// offsets array and one flat targets array per direction, built once per
// graph topology and invalidated by mutation (AddNode/AddEdge). The flat
// layout removes the per-node slice-header indirection of [][]Half and
// keeps neighbor scans on contiguous cache lines, which is what the hot
// traversal paths (BFS, k-hop extraction, CN matching) iterate.
//
// Three views exist:
//
//   - out: out-neighbors (all incident neighbors for undirected graphs),
//   - in:  in-neighbors (directed only; aliases out when undirected),
//   - all: the direction-ignoring union used by neighborhood traversal
//     (out followed by in; may repeat a neighbor for reciprocal directed
//     edge pairs, exactly like the adjacency lists it mirrors — traversals
//     deduplicate through their visited marks).
type csr struct {
	outOff []int32
	outTo  []NodeID
	inOff  []int32
	inTo   []NodeID
	allOff []int32
	allTo  []NodeID
}

func (c *csr) out(n NodeID) []NodeID { return c.outTo[c.outOff[n]:c.outOff[n+1]] }
func (c *csr) in(n NodeID) []NodeID  { return c.inTo[c.inOff[n]:c.inOff[n+1]] }
func (c *csr) all(n NodeID) []NodeID { return c.allTo[c.allOff[n]:c.allOff[n+1]] }

// buildCSR flattens the adjacency lists.
func buildCSR(g *Graph) *csr {
	n := len(g.out)
	c := &csr{outOff: make([]int32, n+1)}
	total := 0
	for i, l := range g.out {
		c.outOff[i] = int32(total)
		total += len(l)
	}
	c.outOff[n] = int32(total)
	c.outTo = make([]NodeID, total)
	pos := 0
	for _, l := range g.out {
		for _, h := range l {
			c.outTo[pos] = h.To
			pos++
		}
	}
	if !g.directed {
		c.inOff, c.inTo = c.outOff, c.outTo
		c.allOff, c.allTo = c.outOff, c.outTo
		return c
	}
	c.inOff = make([]int32, n+1)
	total = 0
	for i, l := range g.in {
		c.inOff[i] = int32(total)
		total += len(l)
	}
	c.inOff[n] = int32(total)
	c.inTo = make([]NodeID, total)
	pos = 0
	for _, l := range g.in {
		for _, h := range l {
			c.inTo[pos] = h.To
			pos++
		}
	}
	// Union view: out halves then in halves per node.
	c.allOff = make([]int32, n+1)
	total = 0
	for i := 0; i < n; i++ {
		c.allOff[i] = int32(total)
		total += len(g.out[i]) + len(g.in[i])
	}
	c.allOff[n] = int32(total)
	c.allTo = make([]NodeID, total)
	pos = 0
	for i := 0; i < n; i++ {
		for _, h := range g.out[i] {
			c.allTo[pos] = h.To
			pos++
		}
		for _, h := range g.in[i] {
			c.allTo[pos] = h.To
			pos++
		}
	}
	return c
}

// ensureCSR returns the graph's CSR view, building it on first use after a
// mutation. Concurrent callers may race to build; the build is idempotent
// and the first published pointer wins, so readers never observe a stale
// view (mutations clear the pointer before returning).
func (g *Graph) ensureCSR() *csr {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	if !g.csr.CompareAndSwap(nil, c) {
		if cur := g.csr.Load(); cur != nil {
			return cur
		}
	}
	return c
}

// BuildCSR eagerly (re)builds the flat CSR adjacency view. Call it before
// fanning traversal work out to goroutines so workers share one prebuilt
// view instead of racing to construct it; it is otherwise built lazily by
// the first traversal.
func (g *Graph) BuildCSR() { g.ensureCSR() }

// invalidateCSR drops the CSR view after a topology mutation.
func (g *Graph) invalidateCSR() { g.csr.Store(nil) }

// OutNeighbors returns the out-neighbor IDs of n as a slice into the flat
// CSR view (all incident neighbors for undirected graphs). The slice is
// owned by the graph, must not be modified, and is invalidated by graph
// mutation. One entry per half-edge: parallel edges repeat.
func (g *Graph) OutNeighbors(n NodeID) []NodeID {
	g.mustNode(n)
	return g.ensureCSR().out(n)
}

// InNeighbors returns the in-neighbor IDs of n (same as OutNeighbors for
// undirected graphs), with the same sharing rules as OutNeighbors.
func (g *Graph) InNeighbors(n NodeID) []NodeID {
	g.mustNode(n)
	return g.ensureCSR().in(n)
}

// AllNeighbors returns the direction-ignoring neighbor IDs of n (out
// followed by in for directed graphs), with the same sharing rules as
// OutNeighbors. A neighbor connected by reciprocal directed edges appears
// twice; traversals deduplicate through their visited marks.
func (g *Graph) AllNeighbors(n NodeID) []NodeID {
	g.mustNode(n)
	return g.ensureCSR().all(n)
}
