package graph

// A Snapshot is an immutable, epoch-stamped version of a graph: the read
// view of the MVCC pair Writer/Snapshot. Acquiring one is O(1) (an atomic
// pointer load inside Writer.Snapshot), holding one pins that version
// forever — later publishes never mutate it — and every read method of the
// underlying Graph is safe to call from any number of goroutines.
//
// Snapshots are produced by a Writer (writer.go) or by Freeze. The frozen
// Graph they wrap shares its adjacency storage with neighboring versions
// through copy-on-write of the dirty tail, so holding many snapshots of a
// slowly-mutating graph costs far less than many clones.
type Snapshot struct {
	epoch uint64
	g     *Graph
}

// Freeze marks g immutable and wraps it as an epoch-0 snapshot. After
// Freeze, every mutator on g panics; reads (including lazy CSR/profile
// builds) are safe under concurrency. Use a Writer to continue mutating:
// NewWriter freezes its graph and hands back fresh versions per publish.
func Freeze(g *Graph) *Snapshot {
	g.frozen = true
	return &Snapshot{epoch: g.epoch, g: g}
}

// FreezeAt is Freeze with an explicit epoch stamp. Storage replay uses it
// to resume the epoch sequence of a reopened mutation log instead of
// restarting from zero.
func FreezeAt(g *Graph, epoch uint64) *Snapshot {
	g.epoch = epoch
	g.frozen = true
	return &Snapshot{epoch: epoch, g: g}
}

// Epoch returns the snapshot's version number: 0 for the Writer's initial
// graph, incremented by every publish.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Graph returns the frozen graph this snapshot wraps. It must only be
// read; mutators panic.
func (s *Snapshot) Graph() *Graph { return s.g }

// NumNodes returns the node count of this version.
func (s *Snapshot) NumNodes() int { return s.g.NumNodes() }

// NumEdges returns the edge count of this version.
func (s *Snapshot) NumEdges() int { return s.g.NumEdges() }

// Directed reports whether the underlying graph is directed.
func (s *Snapshot) Directed() bool { return s.g.Directed() }

// Overlay reports the state of this version's CSR delta overlay: the
// number of nodes served from overlay rows rather than the shared flat
// arrays, and whether a CSR view exists at all (it builds lazily on the
// first traversal when the publish could not extend a parent view).
func (s *Snapshot) Overlay() (overlayRows int, built bool) {
	return s.g.CSRInfo()
}
