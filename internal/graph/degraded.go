package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// This file is the write-path fault policy of the MVCC core: transient
// WAL-append failures are retried with bounded exponential backoff and
// jitter, and an unrecoverable failure — a permanent error, or a
// transient one that survives every retry — flips the writer into an
// explicit read-only degraded mode. Degraded means exactly one thing:
// publishes fail fast with the same *DegradedError until an operator
// resolves the storage fault and calls ClearDegraded. Everything else
// keeps working — pending ops are retained for the post-recovery retry,
// staged mutations still accumulate, and snapshot reads (the whole query
// path) are untouched, because readers never depend on the writer.

// IsTransient reports whether err is classified retryable by the storage
// layer (or any WAL implementation): some error in its chain exposes
// `Transient() bool` returning true. storage.TransientError is the
// canonical implementation; the interface check keeps this package free
// of a storage import.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy bounds the writer's WAL-append retries. The zero value
// picks the defaults; a negative MaxAttempts disables retrying (one
// attempt, no backoff).
type RetryPolicy struct {
	// MaxAttempts is the total number of append attempts, the first
	// included (0: default 4; negative: 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry (0: default 2ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0: default 50ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) attempts() int {
	switch {
	case p.MaxAttempts > 0:
		return p.MaxAttempts
	case p.MaxAttempts < 0:
		return 1
	}
	return 4
}

// backoff returns the sleep before retry number retry (1-based):
// exponential doubling from BaseDelay, capped at MaxDelay, with equal
// jitter (half fixed, half uniform random) so a fleet of writers hitting
// one faulted disk does not retry in lockstep.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	base, max := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if max <= 0 {
		max = 50 * time.Millisecond
	}
	d := base << (retry - 1)
	if d > max || d <= 0 {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// DegradedError reports that the writer is in read-only degraded mode:
// an earlier publish exhausted its WAL retries (or hit a permanent
// storage failure) and every subsequent publish fails fast with this
// error until ClearDegraded. Reads are unaffected — pinned snapshots and
// new Snapshot() acquisitions keep serving the last published epoch.
type DegradedError struct {
	// Cause is the unrecoverable WAL failure that tripped degraded mode.
	Cause error
	// Epoch is the last successfully published version; everything up to
	// it is durable and being served.
	Epoch uint64
	// Since is when the writer degraded.
	Since time.Time
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("graph: writer degraded (read-only) since %s at epoch %d: %v",
		e.Since.Format(time.RFC3339), e.Epoch, e.Cause)
}

// Unwrap exposes the storage failure that tripped degraded mode.
func (e *DegradedError) Unwrap() error { return e.Cause }

// Degraded returns the writer's degraded state: nil while healthy, the
// *DegradedError (as an error, typed nil never escapes) once the write
// path has failed unrecoverably. Serving layers poll this for health
// reporting.
func (w *Writer) Degraded() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.degraded == nil {
		return nil
	}
	return w.degraded
}

// ClearDegraded re-arms a degraded writer after the underlying storage
// fault is resolved (space freed, volume remounted, log compacted onto a
// healthy device). Pending ops were retained, so the next Publish retries
// the batch that originally failed. It reports whether the writer was
// degraded.
func (w *Writer) ClearDegraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	was := w.degraded != nil
	w.degraded = nil
	return was
}

// appendWAL drives one batch through the WAL under the retry policy:
// transient failures back off and retry up to the policy's attempt
// budget, permanent failures return immediately. Called with w.mu held.
func (w *Writer) appendWAL(ops []Op) error {
	policy := w.WALRetry
	var err error
	for attempt := 1; ; attempt++ {
		if err = w.wal.AppendBatch(ops); err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= policy.attempts() {
			return err
		}
		if w.rng == nil {
			w.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		if d := policy.backoff(attempt, w.rng); d > 0 {
			time.Sleep(d)
		}
	}
}
