package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ShardBatch is one shard's slice of a published epoch: the ops routed to
// that shard plus each op's position in the whole merged batch. The
// positions let replay reassemble the exact publish order from P
// independently written log segments.
type ShardBatch struct {
	// Shard is the partitioner shard (and log segment) these ops belong to.
	Shard int
	// Index[i] is Ops[i]'s position in the whole epoch's merged batch.
	Index []uint32
	// Ops are the shard's ops in batch order.
	Ops []Op
}

// ShardWAL is the per-shard durability hook of a ShardedWriter: one epoch
// is appended as P independent segment records (only non-empty shards
// write), all fsynced before the publish becomes visible. An append that
// fails on any segment must restore every segment to its prior record
// boundary before returning, so the whole epoch can be retried; the
// returned error should implement ShardFault to confine degraded mode to
// the failing shard. storage.ShardedLog implements this contract.
type ShardWAL interface {
	WAL
	// AppendShardBatch appends one epoch across the shard segments.
	// totalOps is the whole batch's op count (recorded in every segment so
	// replay can detect a torn multi-segment append).
	AppendShardBatch(parts []ShardBatch, totalOps int) error
}

// ShardFault is implemented by WAL errors that identify the shard whose
// segment failed, so the writer degrades only that shard. Errors without
// it degrade every shard (the single-log case).
type ShardFault interface {
	FailedShard() int
}

// seqOp is one staged op with its global staging sequence number and, for
// creations, the dense ID it was assigned. Sequence numbers restore the
// global staging order when the per-shard lanes are merged at publish.
type seqOp struct {
	seq uint64
	id  int32 // assigned NodeID/EdgeID for OpAddNode/OpAddEdge; 0 otherwise
	op  Op
}

// pubOp is a merged, publish-ordered op with its originating lane.
type pubOp struct {
	seqOp
	lane int
}

// swLane is one shard's staging lane: its pending ops in sequence order
// and its sticky degraded state. Guarded by the writer's stage mutex.
type swLane struct {
	pending  []seqOp
	degraded *DegradedError
}

// ShardedWriter is the mutation path of an N-way sharded graph. It stages
// ops into P per-shard lanes (routed by a deterministic Partitioner) and
// publishes them under a single global epoch with a two-phase publish:
// phase one freezes every lane's tail into one sequence-ordered batch and
// appends it as per-shard WAL segment records in parallel; phase two
// applies the batch copy-on-write — shard-parallel for P > 1 — and
// installs the composed snapshot with one atomic pointer store. Readers
// acquire whole-graph snapshots exactly as with Writer and can never
// observe mixed epochs: there is only one published pointer.
//
// Degraded mode is per shard: when one shard's segment append fails
// unrecoverably, only that lane turns sticky read-only. Later publishes
// route around it — ops staged to healthy shards still publish, except
// ops that would break dense ID assignment (creations at or after the
// first stuck creation, and ops referencing such IDs), which are held
// back until the stuck shard is cleared. With P = 1 this collapses to
// Writer's whole-writer degraded behavior.
//
// A ShardedWriter over one shard is bit-identical to Writer: same op
// order, same WAL bytes (it appends through the plain WAL interface),
// same copy-on-write application, same snapshots.
//
// Unlike Writer, staging and publish take different locks, so ingest
// goroutines keep staging while a publish is fsyncing its segments.
type ShardedWriter struct {
	// CompactOverlayAt bounds the CSR delta overlay exactly as
	// Writer.CompactOverlayAt does.
	CompactOverlayAt int

	// WALRetry bounds the retries of transient WAL-append failures.
	WALRetry RetryPolicy

	// ApplyWorkers bounds the parallelism of phase-two batch application;
	// 0 picks min(shards, GOMAXPROCS). 1 forces the sequential apply (the
	// P=1 compatibility path uses it implicitly).
	ApplyWorkers int

	part Partitioner

	// stageMu guards the staging state: lanes, counters, and the sequence
	// clock. Held only for the few appends of one staged op — never across
	// a WAL fsync or batch application.
	stageMu     sync.Mutex
	lanes       []swLane
	seq         uint64
	stagedNodes int
	stagedEdges int

	// pubMu serializes Publish and Barrier; rng drives retry jitter.
	pubMu sync.Mutex
	cur   atomic.Pointer[Snapshot]
	rng   *rand.Rand

	wal     WAL
	history []Delta
	subs    []func(*Snapshot, Delta)

	opsPublished atomic.Int64
	compacting   atomic.Bool
	compactions  atomic.Int64
}

// NewShardedWriter freezes g as the epoch-0 snapshot of a graph sharded
// `shards` ways and returns its writer. The caller must not retain
// mutating access to g.
func NewShardedWriter(g *Graph, shards int) *ShardedWriter {
	return NewShardedWriterAt(g, 0, shards)
}

// NewShardedWriterAt is NewShardedWriter with an explicit starting epoch,
// used when the graph was recovered by replaying per-shard mutation logs.
func NewShardedWriterAt(g *Graph, epoch uint64, shards int) *ShardedWriter {
	p := NewPartitioner(shards)
	w := &ShardedWriter{
		part:        p,
		lanes:       make([]swLane, p.Shards()),
		stagedNodes: g.NumNodes(),
		stagedEdges: g.NumEdges(),
	}
	w.cur.Store(FreezeAt(g, epoch))
	return w
}

// Partitioner returns the writer's node→shard map.
func (w *ShardedWriter) Partitioner() Partitioner { return w.part }

// Shards returns the shard count.
func (w *ShardedWriter) Shards() int { return w.part.Shards() }

// SetWAL attaches the durability hook. A ShardWAL gets per-shard segment
// appends; a plain WAL (the single-log compatibility path) gets the
// merged batch exactly as Writer would append it.
func (w *ShardedWriter) SetWAL(wal WAL) {
	w.pubMu.Lock()
	defer w.pubMu.Unlock()
	w.wal = wal
}

// Snapshot returns the current published version: an O(1) atomic load.
// The composed snapshot covers every shard at one epoch.
func (w *ShardedWriter) Snapshot() *Snapshot { return w.cur.Load() }

// Subscribe registers fn to run synchronously after every publish, with
// the same contract as Writer.Subscribe.
func (w *ShardedWriter) Subscribe(fn func(*Snapshot, Delta)) {
	w.pubMu.Lock()
	defer w.pubMu.Unlock()
	w.subs = append(w.subs, fn)
}

// Pending returns the number of buffered, unpublished ops across all
// lanes.
func (w *ShardedWriter) Pending() int {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	n := 0
	for i := range w.lanes {
		n += len(w.lanes[i].pending)
	}
	return n
}

// PendingShard returns one shard's buffered op count.
func (w *ShardedWriter) PendingShard(shard int) int {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	if shard < 0 || shard >= len(w.lanes) {
		return 0
	}
	return len(w.lanes[shard].pending)
}

// stage appends one allocated op to its lane. Caller holds stageMu.
func (w *ShardedWriter) stage(lane int, id int32, op Op) {
	s := w.seq
	w.seq++
	w.lanes[lane].pending = append(w.lanes[lane].pending, seqOp{seq: s, id: id, op: op})
}

// AddNode stages a node append and returns the ID it will have once
// published. The node's shard is Partitioner.Shard of that ID.
func (w *ShardedWriter) AddNode() NodeID {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	id := NodeID(w.stagedNodes)
	w.stagedNodes++
	w.stage(w.part.Shard(id), int32(id), Op{Kind: OpAddNode})
	return id
}

// AddNodes stages n node appends and returns the first staged ID.
func (w *ShardedWriter) AddNodes(n int) NodeID {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	first := NodeID(w.stagedNodes)
	for i := 0; i < n; i++ {
		id := NodeID(w.stagedNodes)
		w.stagedNodes++
		w.stage(w.part.Shard(id), int32(id), Op{Kind: OpAddNode})
	}
	return first
}

// AddEdge stages an edge append and returns its future EdgeID. The op is
// routed to the source endpoint's shard.
func (w *ShardedWriter) AddEdge(from, to NodeID) EdgeID {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	w.mustStagedNode(from)
	w.mustStagedNode(to)
	id := EdgeID(w.stagedEdges)
	w.stagedEdges++
	w.stage(w.part.Shard(from), int32(id), Op{Kind: OpAddEdge, A: int32(from), B: int32(to)})
	return id
}

// SetLabel stages a label assignment, routed to n's shard.
func (w *ShardedWriter) SetLabel(n NodeID, label string) {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	w.mustStagedNode(n)
	w.stage(w.part.Shard(n), 0, Op{Kind: OpSetLabel, A: int32(n), Val: label})
}

// SetNodeAttr stages a node attribute assignment; the reserved "label"
// key routes to SetLabel, mirroring Writer.SetNodeAttr.
func (w *ShardedWriter) SetNodeAttr(n NodeID, key, value string) {
	if key == LabelAttr {
		w.SetLabel(n, value)
		return
	}
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	w.mustStagedNode(n)
	w.stage(w.part.Shard(n), 0, Op{Kind: OpSetNodeAttr, A: int32(n), Key: key, Val: value})
}

// SetEdgeAttr stages an edge attribute assignment, routed by
// Partitioner.ShardEdge.
func (w *ShardedWriter) SetEdgeAttr(e EdgeID, key, value string) {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	if e < 0 || int(e) >= w.stagedEdges {
		panic(fmt.Sprintf("graph: edge %d out of staged range [0,%d)", e, w.stagedEdges))
	}
	w.stage(w.part.ShardEdge(e), 0, Op{Kind: OpSetEdgeAttr, A: int32(e), Key: key, Val: value})
}

func (w *ShardedWriter) mustStagedNode(n NodeID) {
	if n < 0 || int(n) >= w.stagedNodes {
		panic(fmt.Sprintf("graph: node %d out of staged range [0,%d)", n, w.stagedNodes))
	}
}

// freeze cuts every lane's pending tail under the stage lock, returning
// the merged batch in global staging order plus the current degraded set.
// Staging resumes immediately; the frozen ops are owned by the publish.
func (w *ShardedWriter) freeze() (merged []pubOp, degraded []*DegradedError) {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	total := 0
	for i := range w.lanes {
		total += len(w.lanes[i].pending)
	}
	degraded = make([]*DegradedError, len(w.lanes))
	parts := make([][]seqOp, len(w.lanes))
	for i := range w.lanes {
		parts[i] = w.lanes[i].pending
		w.lanes[i].pending = nil
		degraded[i] = w.lanes[i].degraded
	}
	if total == 0 {
		return nil, degraded
	}
	// K-way merge by sequence number; each lane is already in sequence
	// order (staging appends under one clock, requeue prepends older ops).
	merged = make([]pubOp, 0, total)
	heads := make([]int, len(parts))
	for len(merged) < total {
		best, bestSeq := -1, uint64(0)
		for i, p := range parts {
			if heads[i] >= len(p) {
				continue
			}
			if s := p[heads[i]].seq; best < 0 || s < bestSeq {
				best, bestSeq = i, s
			}
		}
		merged = append(merged, pubOp{seqOp: parts[best][heads[best]], lane: best})
		heads[best]++
	}
	return merged, degraded
}

// requeue returns unpublished ops to the front of their lanes, preserving
// sequence order ahead of anything staged since the freeze.
func (w *ShardedWriter) requeue(ops []pubOp) {
	if len(ops) == 0 {
		return
	}
	perLane := make([][]seqOp, len(w.lanes))
	for _, po := range ops {
		perLane[po.lane] = append(perLane[po.lane], po.seqOp)
	}
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	for i, back := range perLane {
		if len(back) == 0 {
			continue
		}
		w.lanes[i].pending = append(back, w.lanes[i].pending...)
	}
}

// routeBatch splits a merged batch into the publishable prefix-by-density
// and the held remainder. With no degraded lanes everything publishes.
// Ops in degraded lanes are held; so is any op that would break dense ID
// assignment if published without them: creations at or after the first
// held creation of their kind, and references to IDs those would assign.
func routeBatch(merged []pubOp, degraded []*DegradedError) (pub, held []pubOp) {
	any := false
	for _, d := range degraded {
		if d != nil {
			any = true
			break
		}
	}
	if !any {
		return merged, nil
	}
	const noWM = int32(1<<31 - 1)
	nodeWM, edgeWM := noWM, noWM
	pub = make([]pubOp, 0, len(merged))
	for _, po := range merged {
		bad := degraded[po.lane] != nil
		switch po.op.Kind {
		case OpAddNode:
			bad = bad || po.id >= nodeWM
			if bad && po.id < nodeWM {
				nodeWM = po.id
			}
		case OpAddEdge:
			bad = bad || po.id >= edgeWM || po.op.A >= nodeWM || po.op.B >= nodeWM
			if bad && po.id < edgeWM {
				edgeWM = po.id
			}
		case OpSetLabel, OpSetNodeAttr:
			bad = bad || po.op.A >= nodeWM
		case OpSetEdgeAttr:
			bad = bad || po.op.A >= edgeWM
		}
		if bad {
			held = append(held, po)
		} else {
			pub = append(pub, po)
		}
	}
	return pub, held
}

// firstDegraded returns the lowest-shard degraded error in the set.
func firstDegraded(degraded []*DegradedError) *DegradedError {
	for _, d := range degraded {
		if d != nil {
			return d
		}
	}
	return nil
}

// Publish makes the frozen batch durable across the shard segments,
// applies it (shard-parallel for P > 1), and atomically installs the next
// composed snapshot. With nothing pending it returns the current snapshot
// unchanged.
//
// Per-shard degraded semantics: an unrecoverable segment-append failure
// flips only the failing shard's lane into sticky read-only mode (the
// whole writer when the failure does not identify a shard). The failing
// publish aborts with a *DegradedError and every op stays pending; later
// publishes route around degraded lanes, publishing what dense ID
// assignment allows and holding the rest until ClearDegraded. A publish
// that makes progress returns the new snapshot and a nil error even while
// some shards are stuck — poll Degraded/DegradedShards for health.
func (w *ShardedWriter) Publish() (*Snapshot, error) {
	w.pubMu.Lock()
	defer w.pubMu.Unlock()
	base := w.cur.Load()
	merged, degraded := w.freeze()
	if len(merged) == 0 {
		if d := firstDegraded(degraded); d != nil {
			return base, d
		}
		return base, nil
	}
	pub, held := routeBatch(merged, degraded)
	if len(pub) == 0 {
		w.requeue(merged)
		return base, firstDegraded(degraded)
	}
	if w.wal != nil {
		if err := w.appendWAL(pub); err != nil {
			w.requeue(merged)
			w.setDegraded(err, base.epoch)
			return base, w.Degraded()
		}
	}
	ops := make([]Op, len(pub))
	for i, po := range pub {
		ops[i] = po.op
	}
	next := w.applyPublished(base.g, ops, base.epoch+1)
	snap := &Snapshot{epoch: base.epoch + 1, g: next}
	delta := Delta{Epoch: snap.epoch, Ops: ops}
	w.cur.Store(snap)
	w.opsPublished.Add(int64(len(ops)))
	if w.wal != nil {
		w.history = append(w.history, delta)
	}
	for _, fn := range w.subs {
		fn(snap, delta)
	}
	w.maybeCompact(next)
	w.requeue(held)
	return snap, nil
}

// applyPublished applies one publish-ordered batch. The single-shard
// path delegates to the exact sequential applyBatch Writer uses, keeping
// P=1 bit-identical; sharded graphs use the shard-parallel variant.
func (w *ShardedWriter) applyPublished(base *Graph, ops []Op, epoch uint64) *Graph {
	workers := w.applyWorkers()
	if !w.part.Enabled() || workers <= 1 {
		return applyBatch(base, ops, epoch)
	}
	return applyBatchSharded(base, ops, epoch, w.part, workers)
}

func (w *ShardedWriter) applyWorkers() int {
	if w.ApplyWorkers > 0 {
		return w.ApplyWorkers
	}
	n := runtime.GOMAXPROCS(0)
	if s := w.part.Shards(); n > s {
		n = s
	}
	return n
}

// appendWAL drives one batch through the WAL under the retry policy,
// splitting it into per-shard segment records when the WAL supports them.
// Called with pubMu held.
func (w *ShardedWriter) appendWAL(pub []pubOp) error {
	swal, sharded := w.wal.(ShardWAL)
	sharded = sharded && w.part.Enabled()
	var parts []ShardBatch
	var flat []Op
	if sharded {
		byLane := make([]ShardBatch, len(w.lanes))
		for i := range byLane {
			byLane[i].Shard = i
		}
		for idx, po := range pub {
			b := &byLane[po.lane]
			b.Index = append(b.Index, uint32(idx))
			b.Ops = append(b.Ops, po.op)
		}
		for _, b := range byLane {
			if len(b.Ops) > 0 {
				parts = append(parts, b)
			}
		}
	} else {
		flat = make([]Op, len(pub))
		for i, po := range pub {
			flat[i] = po.op
		}
	}
	policy := w.WALRetry
	var err error
	for attempt := 1; ; attempt++ {
		if sharded {
			err = swal.AppendShardBatch(parts, len(pub))
		} else {
			err = w.wal.AppendBatch(flat)
		}
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= policy.attempts() {
			return err
		}
		if w.rng == nil {
			w.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		if d := policy.backoff(attempt, w.rng); d > 0 {
			time.Sleep(d)
		}
	}
}

// setDegraded marks the failing shard's lane (or every lane when the
// error does not identify one) sticky read-only.
func (w *ShardedWriter) setDegraded(cause error, epoch uint64) {
	shard := -1
	var sf ShardFault
	if errors.As(cause, &sf) {
		shard = sf.FailedShard()
	}
	d := &DegradedError{Cause: cause, Epoch: epoch, Since: time.Now()}
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	if shard >= 0 && shard < len(w.lanes) {
		w.lanes[shard].degraded = d
		return
	}
	for i := range w.lanes {
		w.lanes[i].degraded = d
	}
}

// Degraded returns the writer's degraded state: nil while every shard is
// healthy, the lowest degraded shard's *DegradedError otherwise. With
// P > 1 a non-nil result means at most that shard's writes are stuck;
// healthy shards keep publishing.
func (w *ShardedWriter) Degraded() error {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	for i := range w.lanes {
		if d := w.lanes[i].degraded; d != nil {
			return d
		}
	}
	return nil
}

// DegradedShards lists the currently degraded shards (nil when healthy).
func (w *ShardedWriter) DegradedShards() []int {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	var out []int
	for i := range w.lanes {
		if w.lanes[i].degraded != nil {
			out = append(out, i)
		}
	}
	return out
}

// ClearDegraded re-arms every degraded shard after the underlying storage
// fault is resolved. Held ops were retained in sequence order, so the
// next Publish retries them. It reports whether any shard was degraded.
func (w *ShardedWriter) ClearDegraded() bool {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	was := false
	for i := range w.lanes {
		if w.lanes[i].degraded != nil {
			was = true
			w.lanes[i].degraded = nil
		}
	}
	return was
}

// maybeCompact mirrors Writer.maybeCompact: background CSR compaction
// once the delta overlay outgrows its bound.
func (w *ShardedWriter) maybeCompact(g *Graph) {
	if w.CompactOverlayAt < 0 {
		return
	}
	rows, built := g.CSRInfo()
	if !built {
		return
	}
	limit := w.CompactOverlayAt
	if limit == 0 {
		limit = g.NumNodes() / 8
		if limit < 256 {
			limit = 256
		}
	}
	if rows <= limit || !w.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		g.CompactCSR()
		w.compactions.Add(1)
		w.compacting.Store(false)
	}()
}

// Barrier runs fn under the publish lock with the current snapshot and
// the retained deltas newer than epoch `since`, exactly like
// Writer.Barrier — the log-compaction handshake.
func (w *ShardedWriter) Barrier(since uint64, fn func(cur *Snapshot, tail []Delta) (WAL, error)) error {
	w.pubMu.Lock()
	defer w.pubMu.Unlock()
	var tail []Delta
	for _, d := range w.history {
		if d.Epoch > since {
			tail = append(tail, d)
		}
	}
	nw, err := fn(w.cur.Load(), tail)
	if err != nil {
		return err
	}
	if nw != nil {
		w.wal = nw
		w.history = tail
	}
	return nil
}

// ShardStat is one shard's point-in-time staging state.
type ShardStat struct {
	// Shard is the partitioner shard index.
	Shard int
	// PendingOps is the lane's buffered op count (including held ops).
	PendingOps int
	// Degraded reports the lane's sticky read-only state.
	Degraded bool
}

// ShardStats snapshots every lane's staging state for monitoring.
func (w *ShardedWriter) ShardStats() []ShardStat {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	out := make([]ShardStat, len(w.lanes))
	for i := range w.lanes {
		out[i] = ShardStat{
			Shard:      i,
			PendingOps: len(w.lanes[i].pending),
			Degraded:   w.lanes[i].degraded != nil,
		}
	}
	return out
}

// Stats snapshots the writer's monitoring counters in the same shape
// Writer reports, so the shells and serving layers need one code path.
func (w *ShardedWriter) Stats() WriterStats {
	w.stageMu.Lock()
	pending := 0
	deg := false
	for i := range w.lanes {
		pending += len(w.lanes[i].pending)
		deg = deg || w.lanes[i].degraded != nil
	}
	nodes, edges := w.stagedNodes, w.stagedEdges
	w.stageMu.Unlock()
	snap := w.cur.Load()
	rows, built := snap.g.CSRInfo()
	return WriterStats{
		Epoch:        snap.epoch,
		Nodes:        nodes,
		Edges:        edges,
		PendingOps:   pending,
		OpsPublished: w.opsPublished.Load(),
		OverlayRows:  rows,
		CSRBuilt:     built,
		Compactions:  w.compactions.Load(),
		Degraded:     deg,
	}
}
