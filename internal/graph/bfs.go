package graph

// Reachability in this package ignores edge direction: the paper defines
// the k-hop neighborhood of n as the subgraph incident on the nodes
// reachable from n in k hops or less, and treats directedness as a pattern
// matching concern, not a traversal concern.

// BFSVisitor receives nodes in breadth-first order together with their
// hop distance from the source. Returning false stops the traversal.
type BFSVisitor func(n NodeID, dist int) bool

// BFS traverses the graph breadth-first from src up to maxDepth hops
// (maxDepth < 0 means unbounded) and invokes visit for every reached node,
// including src at distance 0.
func (g *Graph) BFS(src NodeID, maxDepth int, visit BFSVisitor) {
	g.mustNode(src)
	dist := make(map[NodeID]int, 64)
	dist[src] = 0
	queue := []NodeID{src}
	if !visit(src, 0) {
		return
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		d := dist[n]
		if maxDepth >= 0 && d == maxDepth {
			continue
		}
		for _, h := range g.neighborsAll(n) {
			if _, seen := dist[h]; seen {
				continue
			}
			dist[h] = d + 1
			if !visit(h, d+1) {
				return
			}
			queue = append(queue, h)
		}
	}
}

// neighborsAll iterates neighbors ignoring direction (out then in for
// directed graphs). Duplicates are possible for reciprocal edge pairs; BFS
// callers deduplicate through their visited sets.
func (g *Graph) neighborsAll(n NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.out[n]))
	for _, h := range g.out[n] {
		out = append(out, h.To)
	}
	if g.directed {
		for _, h := range g.in[n] {
			out = append(out, h.To)
		}
	}
	return out
}

// KHopNodes returns the set of nodes reachable from n within k hops
// (including n itself, which is at distance 0), as a map from node to its
// hop distance. This is N_k(n) in the paper's notation, plus n.
func (g *Graph) KHopNodes(n NodeID, k int) map[NodeID]int {
	res := make(map[NodeID]int, 64)
	g.BFS(n, k, func(m NodeID, d int) bool {
		res[m] = d
		return true
	})
	return res
}

// Distances computes single-source shortest hop distances from src to all
// nodes, returned as a slice indexed by NodeID with -1 for unreachable
// nodes. Used to build the center distance index.
func (g *Graph) Distances(src NodeID) []int32 {
	g.mustNode(src)
	dist := make([]int32, len(g.out))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, 256)
	queue = append(queue, src)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		d := dist[n]
		for _, h := range g.out[n] {
			if dist[h.To] < 0 {
				dist[h.To] = d + 1
				queue = append(queue, h.To)
			}
		}
		if g.directed {
			for _, h := range g.in[n] {
				if dist[h.To] < 0 {
					dist[h.To] = d + 1
					queue = append(queue, h.To)
				}
			}
		}
	}
	return dist
}

// HopDistance returns the undirected shortest hop distance between a and b,
// or -1 if b is unreachable from a. The search is cut off beyond maxDepth
// hops when maxDepth >= 0.
func (g *Graph) HopDistance(a, b NodeID, maxDepth int) int {
	found := -1
	g.BFS(a, maxDepth, func(n NodeID, d int) bool {
		if n == b {
			found = d
			return false
		}
		return true
	})
	return found
}
