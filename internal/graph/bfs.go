package graph

// Reachability in this package ignores edge direction: the paper defines
// the k-hop neighborhood of n as the subgraph incident on the nodes
// reachable from n in k hops or less, and treats directedness as a pattern
// matching concern, not a traversal concern.
//
// All traversals run on the flat CSR adjacency view (csr.go) with pooled
// epoch-stamped scratch arrays (scratch.go): no per-call map or frontier
// allocation survives on the hot paths.

// BFSVisitor receives nodes in breadth-first order together with their
// hop distance from the source. Returning false stops the traversal.
type BFSVisitor func(n NodeID, dist int) bool

// BFS traverses the graph breadth-first from src up to maxDepth hops
// (maxDepth < 0 means unbounded) and invokes visit for every reached node,
// including src at distance 0.
func (g *Graph) BFS(src NodeID, maxDepth int, visit BFSVisitor) {
	g.mustNode(src)
	c := g.ensureCSR()
	s := AcquireScratch(len(g.out))
	defer s.Release()
	s.begin(len(g.out))
	s.mark[src] = s.epoch
	s.dist[src] = 0
	s.nodes = append(s.nodes, src)
	if !visit(src, 0) {
		return
	}
	for head := 0; head < len(s.nodes); head++ {
		n := s.nodes[head]
		d := s.dist[n]
		if maxDepth >= 0 && int(d) == maxDepth {
			continue
		}
		for _, nb := range c.all(n) {
			if s.mark[nb] == s.epoch {
				continue
			}
			s.mark[nb] = s.epoch
			s.dist[nb] = d + 1
			if !visit(nb, int(d)+1) {
				return
			}
			s.nodes = append(s.nodes, nb)
		}
	}
}

// KHopNodes returns the set of nodes reachable from n within k hops
// (including n itself, which is at distance 0), as a map from node to its
// hop distance. This is N_k(n) in the paper's notation, plus n.
//
// The map form exists for convenience; performance-sensitive callers use
// KHop, which returns a dense Reach without allocating a map.
func (g *Graph) KHopNodes(n NodeID, k int) map[NodeID]int {
	s := AcquireScratch(len(g.out))
	defer s.Release()
	r := g.KHop(n, k, s)
	res := make(map[NodeID]int, r.Len())
	for _, m := range r.Nodes {
		res[m] = int(r.dist[m])
	}
	return res
}

// Distances computes single-source shortest hop distances from src to all
// nodes, returned as a slice indexed by NodeID with -1 for unreachable
// nodes. Used to build the center distance index.
func (g *Graph) Distances(src NodeID) []int32 {
	g.mustNode(src)
	c := g.ensureCSR()
	dist := make([]int32, len(g.out))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	s := AcquireScratch(len(g.out))
	defer s.Release()
	queue := s.nodes[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		d := dist[n]
		for _, nb := range c.all(n) {
			if dist[nb] < 0 {
				dist[nb] = d + 1
				queue = append(queue, nb)
			}
		}
	}
	s.nodes = queue[:0]
	return dist
}

// HopDistance returns the undirected shortest hop distance between a and b,
// or -1 if b is unreachable from a. The search is cut off beyond maxDepth
// hops when maxDepth >= 0.
func (g *Graph) HopDistance(a, b NodeID, maxDepth int) int {
	found := -1
	g.BFS(a, maxDepth, func(n NodeID, d int) bool {
		if n == b {
			found = d
			return false
		}
		return true
	})
	return found
}
