// Package fault is the filesystem seam under internal/storage: an
// interface over exactly the file operations the storage layer performs
// (open, create, write, sync, rename, remove, truncate, read), a
// passthrough implementation over the os package, and a deterministic,
// seedable fault injector (inject.go) that executes scripted failure
// plans — fail the Nth sync, tear a write short, return ENOSPC/EIO, add
// latency, halt the filesystem after an operation to simulate a crash.
// Every durability and recovery path in storage becomes testable without
// build tags: production code takes the OS implementation, tests and the
// chaos harness (cmd/chaos) substitute an Injector.
package fault

import (
	"io"
	"os"
)

// File is the per-handle surface storage uses. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer

	// Name returns the path the file was opened with.
	Name() string
	// Stat returns the file's metadata.
	Stat() (os.FileInfo, error)
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS is the filesystem surface storage uses. Implementations must be safe
// for concurrent use: the dynamic store's background compactor runs
// alongside the writer's WAL appends.
type FS interface {
	// Open opens a file (or directory, for directory fsync) read-only.
	Open(name string) (File, error)
	// OpenFile is the generalized open.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat returns metadata for the named file.
	Stat(name string) (os.FileInfo, error)
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
}

// OS is the passthrough FS over the real filesystem; the zero value is
// ready to use.
type OS struct{}

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
