package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"
)

// Op names one injectable filesystem operation kind.
type Op uint8

// The operation kinds an Injector can match.
const (
	OpOpen Op = iota // Open, OpenFile, CreateTemp
	OpRead           // Read, ReadAt, ReadFile
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpStat
	numOps
)

var opNames = [numOps]string{"open", "read", "write", "sync", "rename", "remove", "truncate", "stat"}

// String returns the op's lowercase name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ErrHalted is returned by every operation after the injector halts — the
// simulated process death. Bytes already on disk stay exactly as the
// preceding operations left them.
var ErrHalted = errors.New("fault: filesystem halted (simulated crash)")

// InjectedError wraps the scripted failure a rule returns, so tests can
// tell an injected fault from a real one. Unwrap exposes the scripted
// cause (syscall.ENOSPC, syscall.EIO, ...), keeping errors.Is chains
// intact.
type InjectedError struct {
	Op   Op
	Path string
	Err  error
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s failure on %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the scripted cause.
func (e *InjectedError) Unwrap() error { return e.Err }

// Rule is one entry of a scripted failure plan. A rule matches an
// operation by kind and path substring; occurrences of matching
// operations are counted per rule, and the rule fires on occurrences
// [From, From+Count) (From 0 means 1, Count 0 means every occurrence from
// From on), gated by Prob when set. What firing does:
//
//   - Delay alone: sleep, then perform the operation normally (latency
//     injection).
//   - Err set: fail the operation with that error (wrapped in
//     *InjectedError). A failing write first writes KeepBytes prefix
//     bytes for real — a torn write, leaving a genuinely partial frame on
//     disk.
//   - Halt set with Err nil: perform the operation fully, then halt the
//     filesystem (crash-after-op). With Err set, the operation fails and
//     then the filesystem halts.
type Rule struct {
	// Op is the operation kind to match.
	Op Op
	// Path matches operations whose path contains this substring; empty
	// matches every path.
	Path string
	// From is the first matching occurrence (1-based) the rule fires on;
	// 0 means the first.
	From int
	// Count bounds how many occurrences fire; 0 means unlimited.
	Count int
	// Prob gates each firing with a seeded coin flip; <= 0 means always.
	Prob float64
	// Err is the failure to inject; nil makes the rule delay-only (or
	// crash-after-op when Halt is set).
	Err error
	// KeepBytes is how many prefix bytes a failing write persists before
	// the error (torn write). Only meaningful for OpWrite with Err set.
	KeepBytes int
	// Delay is slept before the operation (fired or passed through).
	Delay time.Duration
	// Halt stops the whole filesystem after this rule fires.
	Halt bool
}

func (r *Rule) window() (from, to int) {
	from = r.From
	if from <= 0 {
		from = 1
	}
	if r.Count <= 0 {
		return from, int(^uint(0) >> 1)
	}
	return from, from + r.Count
}

// Injector wraps an FS with a scripted failure plan. It is safe for
// concurrent use; with a single caller the fault sequence is fully
// deterministic for a given seed and plan.
type Injector struct {
	inner FS

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []Rule
	fired  []int
	seen   []int // occurrence counters, parallel to rules
	ops    [numOps]int64
	halted bool
}

// NewInjector wraps inner with a failure plan. seed drives the
// probability gates (Rule.Prob) deterministically.
func NewInjector(inner FS, seed int64, rules ...Rule) *Injector {
	inj := &Injector{inner: inner, rng: rand.New(rand.NewSource(seed))}
	inj.SetRules(rules...)
	return inj
}

// SetRules replaces the plan and resets its occurrence counters; firing
// statistics of the old plan are discarded.
func (inj *Injector) SetRules(rules ...Rule) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.rules = append([]Rule(nil), rules...)
	inj.fired = make([]int, len(rules))
	inj.seen = make([]int, len(rules))
}

// ClearRules drops the plan: the filesystem behaves normally afterwards
// (unless halted).
func (inj *Injector) ClearRules() { inj.SetRules() }

// Halt stops the filesystem: every subsequent operation returns
// ErrHalted, simulating the process dying at this instant. On-disk state
// is whatever the completed operations left behind.
func (inj *Injector) Halt() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.halted = true
}

// Halted reports whether the filesystem has halted.
func (inj *Injector) Halted() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.halted
}

// RuleFired returns how many times rule i has fired.
func (inj *Injector) RuleFired(i int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if i < 0 || i >= len(inj.fired) {
		return 0
	}
	return inj.fired[i]
}

// OpCount returns how many operations of the given kind have been
// attempted (including halted and failed ones).
func (inj *Injector) OpCount(op Op) int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if int(op) >= len(inj.ops) {
		return 0
	}
	return inj.ops[op]
}

// decision is what the plan says about one operation.
type decision struct {
	delay     time.Duration
	err       error // nil: proceed normally
	keepBytes int
	haltAfter bool
}

// decide consults the plan for one operation. It updates occurrence and
// firing counters under the injector lock; the caller performs the real
// operation (and any sleep) outside it.
func (inj *Injector) decide(op Op, path string) decision {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.ops[op]++
	if inj.halted {
		return decision{err: ErrHalted}
	}
	for i := range inj.rules {
		r := &inj.rules[i]
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		inj.seen[i]++
		from, to := r.window()
		if inj.seen[i] < from || inj.seen[i] >= to {
			continue
		}
		if r.Prob > 0 && inj.rng.Float64() >= r.Prob {
			continue
		}
		inj.fired[i]++
		d := decision{delay: r.Delay, keepBytes: r.KeepBytes, haltAfter: r.Halt}
		if r.Err != nil {
			d.err = &InjectedError{Op: op, Path: path, Err: r.Err}
		}
		if r.Halt && r.Err != nil {
			// Fail-and-halt: the failure is the last thing the process sees.
			inj.halted = true
		}
		return d
	}
	return decision{}
}

// haltNow flips the halted flag after a crash-after-op rule completed its
// operation.
func (inj *Injector) haltNow() {
	inj.mu.Lock()
	inj.halted = true
	inj.mu.Unlock()
}

// Open implements FS.
func (inj *Injector) Open(name string) (File, error) {
	d := inj.decide(OpOpen, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	f, err := inj.inner.Open(name)
	if d.haltAfter {
		inj.haltNow()
	}
	if err != nil {
		return nil, err
	}
	return &injFile{inj: inj, f: f, path: name}, nil
}

// OpenFile implements FS.
func (inj *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	d := inj.decide(OpOpen, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	f, err := inj.inner.OpenFile(name, flag, perm)
	if d.haltAfter {
		inj.haltNow()
	}
	if err != nil {
		return nil, err
	}
	return &injFile{inj: inj, f: f, path: name}, nil
}

// CreateTemp implements FS.
func (inj *Injector) CreateTemp(dir, pattern string) (File, error) {
	d := inj.decide(OpOpen, dir+"/"+pattern)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	f, err := inj.inner.CreateTemp(dir, pattern)
	if d.haltAfter {
		inj.haltNow()
	}
	if err != nil {
		return nil, err
	}
	return &injFile{inj: inj, f: f, path: f.Name()}, nil
}

// Rename implements FS.
func (inj *Injector) Rename(oldpath, newpath string) error {
	d := inj.decide(OpRename, newpath)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	err := inj.inner.Rename(oldpath, newpath)
	if d.haltAfter {
		inj.haltNow()
	}
	return err
}

// Remove implements FS.
func (inj *Injector) Remove(name string) error {
	d := inj.decide(OpRemove, name)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	err := inj.inner.Remove(name)
	if d.haltAfter {
		inj.haltNow()
	}
	return err
}

// Stat implements FS.
func (inj *Injector) Stat(name string) (os.FileInfo, error) {
	d := inj.decide(OpStat, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	fi, err := inj.inner.Stat(name)
	if d.haltAfter {
		inj.haltNow()
	}
	return fi, err
}

// ReadFile implements FS.
func (inj *Injector) ReadFile(name string) ([]byte, error) {
	d := inj.decide(OpRead, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	b, err := inj.inner.ReadFile(name)
	if d.haltAfter {
		inj.haltNow()
	}
	return b, err
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// injFile threads a handle's operations back through the injector.
type injFile struct {
	inj  *Injector
	f    File
	path string
}

func (jf *injFile) Name() string { return jf.f.Name() }

func (jf *injFile) Read(p []byte) (int, error) {
	d := jf.inj.decide(OpRead, jf.path)
	sleep(d.delay)
	if d.err != nil {
		return 0, d.err
	}
	n, err := jf.f.Read(p)
	if d.haltAfter {
		jf.inj.haltNow()
	}
	return n, err
}

func (jf *injFile) ReadAt(p []byte, off int64) (int, error) {
	d := jf.inj.decide(OpRead, jf.path)
	sleep(d.delay)
	if d.err != nil {
		return 0, d.err
	}
	n, err := jf.f.ReadAt(p, off)
	if d.haltAfter {
		jf.inj.haltNow()
	}
	return n, err
}

func (jf *injFile) Write(p []byte) (int, error) {
	d := jf.inj.decide(OpWrite, jf.path)
	sleep(d.delay)
	if d.err != nil {
		n := 0
		if keep := d.keepBytes; keep > 0 {
			if keep > len(p) {
				keep = len(p)
			}
			// The torn prefix really reaches the file, so recovery code
			// sees a genuinely partial frame on disk.
			n, _ = jf.f.Write(p[:keep])
		}
		return n, d.err
	}
	n, err := jf.f.Write(p)
	if d.haltAfter {
		jf.inj.haltNow()
	}
	return n, err
}

func (jf *injFile) Seek(offset int64, whence int) (int64, error) {
	return jf.f.Seek(offset, whence)
}

func (jf *injFile) Sync() error {
	d := jf.inj.decide(OpSync, jf.path)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	err := jf.f.Sync()
	if d.haltAfter {
		jf.inj.haltNow()
	}
	return err
}

func (jf *injFile) Truncate(size int64) error {
	d := jf.inj.decide(OpTruncate, jf.path)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	err := jf.f.Truncate(size)
	if d.haltAfter {
		jf.inj.haltNow()
	}
	return err
}

// Close always passes through: closing a dead process's descriptors has
// no durability effect, and letting it succeed keeps tests leak-free.
func (jf *injFile) Close() error { return jf.f.Close() }

func (jf *injFile) Stat() (os.FileInfo, error) { return jf.f.Stat() }
