package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeThrough(t *testing.T, fs FS, path string, chunks ...[]byte) (written int, lastErr error) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, c := range chunks {
		n, err := f.Write(c)
		written += n
		if err != nil {
			return written, err
		}
		if err := f.Sync(); err != nil {
			return written, err
		}
	}
	return written, nil
}

func TestInjectNthSync(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, 1, Rule{Op: OpSync, From: 2, Count: 1, Err: syscall.EIO})
	_, err := writeThrough(t, inj, filepath.Join(dir, "a"), []byte("one"), []byte("two"), []byte("three"))
	if err == nil {
		t.Fatal("second sync should have failed")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Op != OpSync {
		t.Fatalf("err = %v, want injected sync failure", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("errors.Is(err, EIO) = false for %v", err)
	}
	if got := inj.RuleFired(0); got != 1 {
		t.Fatalf("rule fired %d times, want 1", got)
	}
	// Outside the window the same file keeps working.
	if _, err := writeThrough(t, inj, filepath.Join(dir, "b"), []byte("x"), []byte("y"), []byte("z")); err != nil {
		t.Fatalf("unrelated syncs failed: %v", err)
	}
}

func TestInjectTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	inj := NewInjector(OS{}, 1, Rule{Op: OpWrite, From: 2, Count: 1, Err: syscall.EIO, KeepBytes: 3})
	n, err := writeThrough(t, inj, path, []byte("aaaa"), []byte("bbbbbb"))
	if err == nil {
		t.Fatal("second write should have failed")
	}
	if n != 4+3 {
		t.Fatalf("written = %d, want 7 (full first chunk + 3-byte torn prefix)", n)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "aaaabbb" {
		t.Fatalf("on-disk bytes %q, want torn prefix %q", data, "aaaabbb")
	}
}

func TestInjectHaltAfterOp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h")
	inj := NewInjector(OS{}, 1, Rule{Op: OpWrite, From: 2, Count: 1, Halt: true})
	// The second write itself succeeds (crash-after-op), then everything
	// halts.
	n, err := writeThrough(t, inj, path, []byte("11"), []byte("22"), []byte("33"))
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if n != 4 {
		t.Fatalf("written = %d, want 4 (both completed writes)", n)
	}
	if !inj.Halted() {
		t.Fatal("injector not halted")
	}
	if _, err := inj.Open(path); !errors.Is(err, ErrHalted) {
		t.Fatalf("open after halt = %v, want ErrHalted", err)
	}
	// The real bytes survive the crash.
	data, _ := os.ReadFile(path)
	if string(data) != "1122" {
		t.Fatalf("on-disk bytes %q, want %q", data, "1122")
	}
}

func TestInjectPathFilterAndRename(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, 1,
		Rule{Op: OpRename, Path: ".log", Err: syscall.ENOSPC},
	)
	src := filepath.Join(dir, "a.tmp")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Rename to a non-matching destination passes through.
	if err := inj.Rename(src, filepath.Join(dir, "a.dat")); err != nil {
		t.Fatalf("unmatched rename failed: %v", err)
	}
	// Rename to a matching destination is rejected with the scripted errno.
	err := inj.Rename(filepath.Join(dir, "a.dat"), filepath.Join(dir, "a.log"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("matched rename: err = %v, want ENOSPC", err)
	}
}

func TestInjectProbDeterministic(t *testing.T) {
	run := func() []int {
		dir := t.TempDir()
		inj := NewInjector(OS{}, 42, Rule{Op: OpSync, Prob: 0.5, Err: syscall.EIO})
		var failedAt []int
		f, err := inj.OpenFile(filepath.Join(dir, "p"), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for i := 0; i < 32; i++ {
			if err := f.Sync(); err != nil {
				failedAt = append(failedAt, i)
			}
		}
		return failedAt
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 32 {
		t.Fatalf("p=0.5 plan fired %d/32 times; gate not probabilistic", len(a))
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("same seed, different fault sequence: %v vs %v", a, b)
		}
	}
}

func TestInjectorReset(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, 1, Rule{Op: OpSync, Err: syscall.EIO})
	if _, err := writeThrough(t, inj, filepath.Join(dir, "r"), []byte("x")); err == nil {
		t.Fatal("sync should fail under the plan")
	}
	inj.ClearRules()
	if _, err := writeThrough(t, inj, filepath.Join(dir, "r"), []byte("x")); err != nil {
		t.Fatalf("sync after ClearRules failed: %v", err)
	}
	if inj.OpCount(OpSync) != 2 {
		t.Fatalf("sync op count = %d, want 2", inj.OpCount(OpSync))
	}
}
