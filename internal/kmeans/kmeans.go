// Package kmeans is a small dense-vector K-means implementation (MacQueen /
// Lloyd iterations) used by the pattern-driven census algorithm to cluster
// pattern matches by their center-distance feature vectors (Section IV-B5).
package kmeans

import "math/rand"

// Result describes a clustering: the assignment of each point to a cluster
// and the final centroids.
type Result struct {
	// Assign[i] is the cluster index of point i.
	Assign []int
	// Centroids holds the final cluster centroids.
	Centroids [][]float64
}

// Cluster groups points into k clusters with at most maxIter Lloyd
// iterations. Points must share a dimension. k is clamped to [1,
// len(points)]; centroids are seeded by random distinct points. The run is
// deterministic given seed.
func Cluster(points [][]float64, k, maxIter int, seed int64) Result {
	return ClusterStop(points, k, maxIter, seed, nil)
}

// ClusterStop is Cluster with a cancellation poll: a non-nil stop is
// consulted between assignment rows, and once it returns true the
// iteration abandons and the current (possibly unconverged) assignment is
// returned. Points not yet assigned in the first sweep report cluster 0.
// The census layer threads its guard through here because the assignment
// phase is the dominant cost of match clustering — O(iter·n·k·dim) — and
// would otherwise run to completion after a cancel.
func ClusterStop(points [][]float64, k, maxIter int, seed int64, stop func() bool) Result {
	n := len(points)
	if n == 0 {
		return Result{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	rng := rand.New(rand.NewSource(seed))

	centroids := make([][]float64, k)
	perm := rng.Perm(n)
	for i := 0; i < k; i++ {
		centroids[i] = append([]float64(nil), points[perm[i]]...)
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}

	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			if stop != nil && i%64 == 0 && stop() {
				return stoppedResult(assign, centroids)
			}
			best, bestD := 0, sqDist(p, centroids[0])
			for c := 1; c < k; c++ {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		for c := 0; c < k; c++ {
			counts[c] = 0
			for d := 0; d < dim; d++ {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random point.
				copy(centroids[c], points[rng.Intn(n)])
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return Result{Assign: assign, Centroids: centroids}
}

// stoppedResult finalizes an interrupted clustering: points the first
// sweep never reached (assignment -1) are folded into cluster 0 so the
// result is always a valid assignment.
func stoppedResult(assign []int, centroids [][]float64) Result {
	for i, c := range assign {
		if c < 0 {
			assign[i] = 0
		}
	}
	return Result{Assign: assign, Centroids: centroids}
}

// RandomAssign assigns points to k clusters uniformly at random — the
// RND-CLUST ablation of Fig 4(g).
func RandomAssign(n, k int, seed int64) []int {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(k)
	}
	return assign
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
