package kmeans

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTwoWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{100 + rng.Float64(), 100 + rng.Float64()})
	}
	res := Cluster(points, 2, 20, 42)
	first := res.Assign[0]
	for i := 1; i < 50; i++ {
		if res.Assign[i] != first {
			t.Fatalf("point %d left its cluster", i)
		}
	}
	second := res.Assign[50]
	if second == first {
		t.Fatal("clusters should be separated")
	}
	for i := 51; i < 100; i++ {
		if res.Assign[i] != second {
			t.Fatalf("point %d left its cluster", i)
		}
	}
}

func TestClusterEdgeCases(t *testing.T) {
	if res := Cluster(nil, 3, 10, 0); res.Assign != nil {
		t.Fatal("empty input should give empty result")
	}
	points := [][]float64{{1}, {2}, {3}}
	res := Cluster(points, 0, 10, 0) // k clamps to 1
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 must put everything in cluster 0")
		}
	}
	res = Cluster(points, 10, 10, 0) // k clamps to n
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d want 3", len(res.Centroids))
	}
}

func TestClusterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var points [][]float64
	for i := 0; i < 40; i++ {
		points = append(points, []float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	a := Cluster(points, 4, 10, 9)
	b := Cluster(points, 4, 10, 9)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed should give same clustering")
		}
	}
}

func TestAssignmentsInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		k := 1 + rng.Intn(8)
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		res := Cluster(points, k, 10, seed)
		if len(res.Assign) != n {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= len(res.Centroids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomAssign(t *testing.T) {
	assign := RandomAssign(100, 5, 3)
	if len(assign) != 100 {
		t.Fatal("length wrong")
	}
	seen := map[int]bool{}
	for _, a := range assign {
		if a < 0 || a >= 5 {
			t.Fatalf("assignment %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) < 2 {
		t.Fatal("random assignment suspiciously degenerate")
	}
	zeroK := RandomAssign(10, 0, 3) // clamps to 1
	for _, a := range zeroK {
		if a != 0 {
			t.Fatal("k=0 should clamp to single cluster")
		}
	}
}
