package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// lexer tokenizes query text. Comments run from "--" to end of line.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekAt(off int) rune {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d:%d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (lx *lexer) next() (Token, error) {
	// skip whitespace and comments
	for lx.pos < len(lx.src) {
		r := lx.peek()
		if unicode.IsSpace(r) {
			lx.advance()
			continue
		}
		if r == '-' && lx.peekAt(1) == '-' {
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			continue
		}
		break
	}
	tok := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	r := lx.peek()
	switch {
	case isIdentStart(r):
		var b strings.Builder
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			b.WriteRune(lx.advance())
		}
		tok.Kind = TokIdent
		tok.Text = b.String()
		return tok, nil
	case unicode.IsDigit(r):
		var b strings.Builder
		for lx.pos < len(lx.src) && (unicode.IsDigit(lx.peek()) || lx.peek() == '.') {
			b.WriteRune(lx.advance())
		}
		tok.Kind = TokNumber
		tok.Text = b.String()
		return tok, nil
	case r == '?':
		lx.advance()
		if !isIdentStart(lx.peek()) {
			return tok, lx.errorf("expected variable name after '?'")
		}
		var b strings.Builder
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			b.WriteRune(lx.advance())
		}
		tok.Kind = TokVariable
		tok.Text = b.String()
		return tok, nil
	case r == '$':
		lx.advance()
		if !isIdentStart(lx.peek()) {
			return tok, lx.errorf("expected parameter name after '$'")
		}
		var b strings.Builder
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			b.WriteRune(lx.advance())
		}
		tok.Kind = TokParam
		tok.Text = b.String()
		return tok, nil
	case r == '\'' || r == '"':
		quote := lx.advance()
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return tok, lx.errorf("unterminated string")
			}
			c := lx.advance()
			if c == quote {
				break
			}
			b.WriteRune(c)
		}
		tok.Kind = TokString
		tok.Text = b.String()
		return tok, nil
	}
	lx.advance()
	switch r {
	case '{':
		tok.Kind = TokLBrace
	case '}':
		tok.Kind = TokRBrace
	case '(':
		tok.Kind = TokLParen
	case ')':
		tok.Kind = TokRParen
	case '[':
		tok.Kind = TokLBracket
	case ']':
		tok.Kind = TokRBracket
	case ';':
		tok.Kind = TokSemi
	case ',':
		tok.Kind = TokComma
	case '.':
		tok.Kind = TokDot
	case '*':
		tok.Kind = TokStar
	case '-':
		if lx.peek() == '>' {
			lx.advance()
			tok.Kind = TokArrow
		} else {
			tok.Kind = TokDash
		}
	case '!':
		switch {
		case lx.peek() == '-' && lx.peekAt(1) == '>':
			lx.advance()
			lx.advance()
			tok.Kind = TokBangArrow
		case lx.peek() == '-':
			lx.advance()
			tok.Kind = TokBangDash
		case lx.peek() == '=':
			lx.advance()
			tok.Kind = TokNe
		default:
			return tok, lx.errorf("unexpected '!'")
		}
	case '=':
		tok.Kind = TokEq
	case '<':
		switch lx.peek() {
		case '=':
			lx.advance()
			tok.Kind = TokLe
		case '>':
			lx.advance()
			tok.Kind = TokNe
		default:
			tok.Kind = TokLt
		}
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			tok.Kind = TokGe
		} else {
			tok.Kind = TokGt
		}
	default:
		return tok, lx.errorf("unexpected character %q", r)
	}
	return tok, nil
}
