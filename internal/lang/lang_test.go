package lang

import (
	"strings"
	"testing"

	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return s
}

// The four rows of Table I, verbatim from the paper.
const tableI = `
PATTERN single_node {?A;}
SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes

PATTERN single_edge {?A-?B;}
SELECT n1.ID, n2.ID,
  COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2

PATTERN square {
  ?A-?B; ?B-?C;
  ?C-?D; ?D-?A;
}
SELECT ID, COUNTP(square, SUBGRAPH(ID, 2)) FROM nodes

PATTERN triad {
  ?A->?B; ?B->?C; ?A!->?C;
  [?A.LABEL=?B.LABEL];
  [?B.LABEL=?C.LABEL];
  SUBPATTERN coordinator {?B;}
}
SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes
`

func TestParseTableI(t *testing.T) {
	s := mustParse(t, tableI)
	if len(s.Patterns) != 4 {
		t.Fatalf("patterns = %d want 4", len(s.Patterns))
	}
	qs := s.Queries()
	if len(qs) != 4 {
		t.Fatalf("queries = %d want 4", len(qs))
	}

	// Row 1: single node census.
	agg, err := qs[0].CountItem()
	if err != nil {
		t.Fatal(err)
	}
	if agg.PatternName != "single_node" || agg.Neighborhood.Kind != NSubgraph || agg.Neighborhood.K != 2 {
		t.Fatalf("row 1 aggregate wrong: %+v", agg)
	}
	if s.Patterns["single_node"].NumNodes() != 1 {
		t.Fatal("single_node should have one node")
	}

	// Row 2: pairwise intersection.
	agg, _ = qs[1].CountItem()
	if agg.Neighborhood.Kind != NIntersection || agg.Neighborhood.K != 1 {
		t.Fatalf("row 2 neighborhood wrong: %+v", agg.Neighborhood)
	}
	if len(qs[1].Aliases) != 2 || qs[1].Aliases[0] != "n1" || qs[1].Aliases[1] != "n2" {
		t.Fatalf("row 2 aliases = %v", qs[1].Aliases)
	}

	// Row 3: square.
	sq := s.Patterns["square"]
	if sq.NumNodes() != 4 || len(sq.Edges()) != 4 {
		t.Fatalf("square shape wrong: %d nodes %d edges", sq.NumNodes(), len(sq.Edges()))
	}

	// Row 4: coordinator triad.
	triad := s.Patterns["triad"]
	if triad.NumNodes() != 3 {
		t.Fatal("triad nodes wrong")
	}
	var negated, directed int
	for _, e := range triad.Edges() {
		if e.Negated {
			negated++
		}
		if e.Directed {
			directed++
		}
	}
	if negated != 1 || directed != 3 {
		t.Fatalf("triad edges: %d directed %d negated", directed, negated)
	}
	if len(triad.Predicates()) != 2 {
		t.Fatalf("triad predicates = %d want 2", len(triad.Predicates()))
	}
	sub, ok := triad.Subpattern("coordinator")
	if !ok || len(sub) != 1 {
		t.Fatalf("coordinator subpattern = %v %v", sub, ok)
	}
	agg, _ = qs[3].CountItem()
	if agg.Subpattern != "coordinator" || agg.Neighborhood.K != 0 {
		t.Fatalf("row 4 aggregate wrong: %+v", agg)
	}
}

func TestLabelConstantPushdown(t *testing.T) {
	s := mustParse(t, `
PATTERN p {
  ?A-?B;
  [?A.LABEL='author'];
  [?B.age > 30];
}
SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes
`)
	p := s.Patterns["p"]
	if p.Node(0).Label != "author" {
		t.Fatalf("label not pushed down: %+v", p.Node(0))
	}
	if len(p.Predicates()) != 1 {
		t.Fatalf("predicates = %d want 1 (only the age filter)", len(p.Predicates()))
	}
	// Reversed operand order pushes down too.
	s2 := mustParse(t, `
PATTERN q { ?A; ['x' = ?A.label]; }
SELECT ID, COUNTP(q, SUBGRAPH(ID, 0)) FROM nodes`)
	if s2.Patterns["q"].Node(0).Label != "x" {
		t.Fatal("reversed label constant not pushed down")
	}
}

func TestEdgeAttributePredicate(t *testing.T) {
	s := mustParse(t, `
PATTERN unstable {
  ?A-?B; ?B-?C; ?A-?C;
  [EDGE(?A,?B).sign = '-'];
}
SELECT ID, COUNTP(unstable, SUBGRAPH(ID, 2)) FROM nodes`)
	p := s.Patterns["unstable"]
	if len(p.Predicates()) != 1 {
		t.Fatal("edge predicate missing")
	}
	pr := p.Predicates()[0]
	if pr.L.EdgeFrom < 0 || pr.L.Attr != "sign" {
		t.Fatalf("edge operand wrong: %+v", pr.L)
	}
}

func TestParseWhere(t *testing.T) {
	s := mustParse(t, `
PATTERN n {?A;}
SELECT ID, COUNTP(n, SUBGRAPH(ID, 1)) FROM nodes
WHERE (RND() < 0.5 AND age >= 18) OR NOT label = 'bot'`)
	q := s.Queries()[0]
	if q.Where == nil {
		t.Fatal("WHERE missing")
	}
	if !UsesRnd(q.Where) {
		t.Fatal("UsesRnd should detect RND()")
	}
	rendered := q.Where.exprString()
	for _, frag := range []string{"RND()", "OR", "AND", "NOT"} {
		if !strings.Contains(rendered, frag) {
			t.Fatalf("rendered WHERE missing %q: %s", frag, rendered)
		}
	}
}

func TestEvalWhere(t *testing.T) {
	g := graph.New(false)
	a := g.AddNode()
	g.SetNodeAttr(a, "age", "25")
	g.SetLabel(a, "person")
	b := g.AddNode()
	g.SetNodeAttr(b, "age", "7")

	src := `
PATTERN n {?A;}
SELECT n1.ID, n2.ID, COUNTP(n, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2
WHERE n1.age > n2.age AND n1.ID != n2.ID`
	q := mustParse(t, src).Queries()[0]
	bind := []Binding{{Alias: "n1", Node: a}, {Alias: "n2", Node: b}}
	ok, err := EvalWhere(q.Where, g, bind, nil)
	if err != nil || !ok {
		t.Fatalf("EvalWhere = %v, %v; want true", ok, err)
	}
	// Swapped: 7 > 25 is false.
	bind = []Binding{{Alias: "n1", Node: b}, {Alias: "n2", Node: a}}
	ok, err = EvalWhere(q.Where, g, bind, nil)
	if err != nil || ok {
		t.Fatalf("EvalWhere = %v, %v; want false", ok, err)
	}
}

func TestEvalWhereMissingAttr(t *testing.T) {
	g := graph.New(false)
	a := g.AddNode()
	q := mustParse(t, `
PATTERN n {?A;}
SELECT ID, COUNTP(n, SUBGRAPH(ID, 1)) FROM nodes WHERE age > 10`).Queries()[0]
	ok, err := EvalWhere(q.Where, g, []Binding{{Node: a}}, nil)
	if err != nil || ok {
		t.Fatalf("missing attribute should fail the predicate: %v %v", ok, err)
	}
}

func TestEvalWhereRnd(t *testing.T) {
	g := graph.New(false)
	a := g.AddNode()
	q := mustParse(t, `
PATTERN n {?A;}
SELECT ID, COUNTP(n, SUBGRAPH(ID, 1)) FROM nodes WHERE RND() < 0.5`).Queries()[0]
	ok, err := EvalWhere(q.Where, g, []Binding{{Node: a}}, func() float64 { return 0.3 })
	if err != nil || !ok {
		t.Fatalf("RND 0.3 < 0.5 should pass: %v %v", ok, err)
	}
	ok, err = EvalWhere(q.Where, g, []Binding{{Node: a}}, func() float64 { return 0.9 })
	if err != nil || ok {
		t.Fatalf("RND 0.9 < 0.5 should fail: %v %v", ok, err)
	}
	if _, err := EvalWhere(q.Where, g, []Binding{{Node: a}}, nil); err == nil {
		t.Fatal("RND without a stream should error")
	}
}

func TestEvalWhereIDComparison(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(10)
	q := mustParse(t, `
PATTERN n {?A;}
SELECT n1.ID, n2.ID, COUNTP(n, SUBGRAPH-UNION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID`).Queries()[0]
	check := func(a, b graph.NodeID, want bool) {
		t.Helper()
		ok, err := EvalWhere(q.Where, g, []Binding{{Alias: "n1", Node: a}, {Alias: "n2", Node: b}}, nil)
		if err != nil || ok != want {
			t.Fatalf("ID compare (%d,%d) = %v, %v; want %v", a, b, ok, err, want)
		}
	}
	check(5, 3, true)
	check(3, 5, false)
	check(9, 9, false)
	// Numeric (not lexicographic) comparison: 10 > 9.
	check(9, 2, true)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown pattern", `SELECT ID, COUNTP(nope, SUBGRAPH(ID, 1)) FROM nodes`},
		{"unknown subpattern", `PATTERN p {?A;} SELECT ID, COUNTSP(s, p, SUBGRAPH(ID, 1)) FROM nodes`},
		{"arity mismatch pair", `PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) FROM nodes`},
		{"arity mismatch single", `PATTERN p {?A;} SELECT n1.ID, COUNTP(p, SUBGRAPH(n1.ID, 1)) FROM nodes AS n1, nodes AS n2`},
		{"bad alias", `PATTERN p {?A;} SELECT zz.ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes`},
		{"bad alias in where", `PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE zz.age > 1`},
		{"no aggregate", `PATTERN p {?A;} SELECT ID FROM nodes`},
		{"three relations", `PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes AS a, nodes AS b, nodes AS c`},
		{"duplicate pattern", `PATTERN p {?A;} PATTERN p {?B;}`},
		{"disconnected pattern", `PATTERN p {?A; ?B;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes`},
		{"self loop", `PATTERN p {?A-?A;}`},
		{"subpattern unknown var", `PATTERN p {?A; SUBPATTERN s {?Z;}}`},
		{"bad neighborhood", `PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH-FOO(ID, 1)) FROM nodes`},
		{"negative radius lexes as error", `PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, x)) FROM nodes`},
		{"anchor not ID", `PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(age, 1)) FROM nodes`},
		{"unterminated string", `PATTERN p {?A; [?A.label='x]}`},
		{"garbage", `FOO BAR`},
		{"lone question mark", `PATTERN p {? ;}`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseWithCatalog(t *testing.T) {
	p := pattern.Clique("clq3", 3, nil)
	s, err := ParseWith(`SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes`,
		map[string]*pattern.Pattern{"clq3": p})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Queries()) != 1 {
		t.Fatal("query missing")
	}
}

func TestComments(t *testing.T) {
	s := mustParse(t, `
-- the simplest pattern
PATTERN n {?A;} -- trailing comment
SELECT ID, COUNTP(n, SUBGRAPH(ID, 1)) FROM nodes`)
	if len(s.Patterns) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestSelectStringRoundTrip(t *testing.T) {
	srcs := []string{
		`PATTERN n {?A;} SELECT ID, COUNTP(n, SUBGRAPH(ID, 2)) FROM nodes`,
		`PATTERN n {?A;} SELECT n1.ID, n2.ID, COUNTP(n, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID`,
		`PATTERN t {?A->?B; ?B->?C; SUBPATTERN mid {?B;}} SELECT ID, COUNTSP(mid, t, SUBGRAPH(ID, 0)) FROM nodes WHERE RND() < 0.25`,
	}
	for _, src := range srcs {
		s1 := mustParse(t, src)
		q1 := s1.Queries()[0]
		printed := q1.String()
		// Re-parse the printed query with the same pattern catalog.
		s2, err := ParseWith(printed, s1.Patterns)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", printed, err)
		}
		q2 := s2.Queries()[0]
		if q2.String() != printed {
			t.Fatalf("print/parse not a fixpoint:\n%s\n%s", printed, q2.String())
		}
	}
}

func TestPatternStringParsesBack(t *testing.T) {
	src := `
PATTERN triad {
  ?A->?B; ?B->?C; ?A!->?C;
  [?A.age>?B.age];
  SUBPATTERN mid {?B;}
}`
	s1 := mustParse(t, src)
	printed := s1.Patterns["triad"].String()
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("pattern String() does not re-parse: %v\n%s", err, printed)
	}
	p2 := s2.Patterns["triad"]
	if p2.NumNodes() != 3 || len(p2.Edges()) != 3 || len(p2.Predicates()) != 1 {
		t.Fatalf("round-tripped pattern differs: %s", p2.String())
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Lex("PATTERN p\n{?A;}")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[2].Line != 2 {
		t.Fatalf("positions wrong: %+v", toks[:3])
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	s := mustParse(t, `
pattern n {?A;}
select id, countp(n, subgraph(id, 1)) from nodes where rnd() < 1`)
	if len(s.Queries()) != 1 {
		t.Fatal("lower-case keywords should parse")
	}
}
