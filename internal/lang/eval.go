package lang

import (
	"fmt"
	"strconv"
	"strings"

	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// Binding binds a FROM-clause alias to a concrete focal node.
type Binding struct {
	Alias string
	Node  graph.NodeID
}

// EvalWhere evaluates a parameter-free WHERE expression for the given
// focal bindings. rnd supplies the value of RND() (called at most once per
// occurrence); it may be nil when the expression contains no RND().
func EvalWhere(e Expr, g *graph.Graph, bindings []Binding, rnd func() float64) (bool, error) {
	return EvalWhereParams(e, g, bindings, rnd, nil)
}

// EvalWhereParams is EvalWhere with $name parameter bindings: every
// ParamOperand resolves through params; referencing an unbound parameter
// is an error.
func EvalWhereParams(e Expr, g *graph.Graph, bindings []Binding, rnd func() float64, params map[string]string) (bool, error) {
	switch x := e.(type) {
	case *BoolExpr:
		l, err := EvalWhereParams(x.L, g, bindings, rnd, params)
		if err != nil {
			return false, err
		}
		// Short-circuit.
		if x.Op == "AND" && !l {
			return false, nil
		}
		if x.Op == "OR" && l {
			return true, nil
		}
		return EvalWhereParams(x.R, g, bindings, rnd, params)
	case *NotExpr:
		v, err := EvalWhereParams(x.E, g, bindings, rnd, params)
		return !v, err
	case *CmpExpr:
		lv, lok, err := operandValue(x.L, g, bindings, rnd, params)
		if err != nil {
			return false, err
		}
		rv, rok, err := operandValue(x.R, g, bindings, rnd, params)
		if err != nil {
			return false, err
		}
		if !lok || !rok {
			return false, nil // missing attribute: predicate fails
		}
		return pattern.Compare(x.Op, lv, rv), nil
	}
	return false, fmt.Errorf("lang: unknown expression type %T", e)
}

func operandValue(o Operand, g *graph.Graph, bindings []Binding, rnd func() float64, params map[string]string) (string, bool, error) {
	switch x := o.(type) {
	case LitOperand:
		return x.Value, true, nil
	case ParamOperand:
		v, ok := params[x.Name]
		if !ok {
			return "", false, fmt.Errorf("lang: unbound parameter $%s", x.Name)
		}
		return v, true, nil
	case RndOperand:
		if rnd == nil {
			return "", false, fmt.Errorf("lang: RND() not available in this context")
		}
		return strconv.FormatFloat(rnd(), 'f', -1, 64), true, nil
	case ColOperand:
		n, err := resolveBinding(x.Ref.Alias, bindings)
		if err != nil {
			return "", false, err
		}
		if strings.EqualFold(x.Ref.Name, "ID") {
			return strconv.Itoa(int(n)), true, nil
		}
		attr := x.Ref.Name
		if strings.EqualFold(attr, graph.LabelAttr) {
			attr = graph.LabelAttr
		}
		v, ok := g.NodeAttr(n, attr)
		return v, ok, nil
	}
	return "", false, fmt.Errorf("lang: unknown operand type %T", o)
}

func resolveBinding(alias string, bindings []Binding) (graph.NodeID, error) {
	if alias == "" {
		if len(bindings) == 0 {
			return 0, fmt.Errorf("lang: no focal binding available")
		}
		return bindings[0].Node, nil
	}
	for _, b := range bindings {
		if b.Alias == alias {
			return b.Node, nil
		}
	}
	return 0, fmt.Errorf("lang: unbound alias %q", alias)
}

// UsesRnd reports whether the expression contains an RND() call — the
// engine uses this to set up the deterministic per-node random stream.
func UsesRnd(e Expr) bool {
	switch x := e.(type) {
	case *BoolExpr:
		return UsesRnd(x.L) || UsesRnd(x.R)
	case *NotExpr:
		return UsesRnd(x.E)
	case *CmpExpr:
		_, l := x.L.(RndOperand)
		_, r := x.R.(RndOperand)
		return l || r
	}
	return false
}
