package lang

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that anything it accepts
// renders back to parseable text (run with `go test -fuzz=FuzzParse`;
// the seed corpus runs under plain `go test`).
func FuzzParse(f *testing.F) {
	seeds := []string{
		tableI,
		`PATTERN p {?A;}`,
		`PATTERN p {?A-?B; [?A.LABEL='x'];} SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes`,
		`SELECT n1.ID, n2.ID, COUNTP(q, SUBGRAPH-UNION(n1.ID, n2.ID, 3)) FROM nodes AS n1, nodes AS n2 WHERE RND() < 0.5`,
		`PATTERN t {?A->?B; ?A!->?C; ?B-?C; SUBPATTERN s {?B;}}`,
		`PATTERN x {?A-?B; [EDGE(?A,?B).sign='-'];} SELECT ID, COUNTP(x, SUBGRAPH(ID, 1)) FROM nodes ORDER BY COUNT DESC LIMIT 5`,
		"PATTERN p {?A;} -- comment\nSELECT ID, COUNTP(p, SUBGRAPH(ID, 0)) FROM nodes;",
		`}{][)(;;;???`,
		`"unterminated`,
		`PATTERN`,
		strings.Repeat("(", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err != nil || script == nil {
			return
		}
		// Accepted input: every query must render to re-parseable text.
		for _, q := range script.Queries() {
			printed := q.String()
			if _, err := ParseWith(printed, script.Patterns); err != nil {
				t.Fatalf("accepted %q but re-parse of %q failed: %v", src, printed, err)
			}
		}
		for _, p := range script.Patterns {
			printed := p.String()
			if _, err := Parse(printed); err != nil {
				t.Fatalf("pattern render %q does not re-parse: %v", printed, err)
			}
		}
	})
}
