package lang

import (
	"fmt"
	"strconv"
	"strings"

	"egocensus/internal/pattern"
)

// Parse parses a script: any number of PATTERN definitions and SELECT
// queries. Pattern names referenced by queries must be defined in the same
// script or pre-registered via ParseWith.
func Parse(src string) (*Script, error) {
	return ParseWith(src, nil)
}

// ParseWith parses a script against a pre-populated pattern catalog
// (patterns defined by earlier scripts in the same session).
func ParseWith(src string, catalog map[string]*pattern.Pattern) (*Script, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, script: &Script{Patterns: map[string]*pattern.Pattern{}}}
	for name, pat := range catalog {
		p.script.Patterns[name] = pat
	}
	for !p.at(TokEOF) {
		switch {
		case p.atKeyword("PATTERN"):
			st, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			p.script.Statements = append(p.script.Statements, st)
		case p.atKeyword("SELECT"):
			st, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			p.script.Statements = append(p.script.Statements, st)
		case p.atKeyword("EXPLAIN"):
			p.advance()
			if !p.atKeyword("SELECT") {
				return nil, p.errorf("EXPLAIN must be followed by SELECT")
			}
			st, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			st.Explain = true
			p.script.Statements = append(p.script.Statements, st)
		case p.at(TokSemi):
			p.advance()
		default:
			return nil, p.errorf("expected PATTERN or SELECT, found %s", p.cur())
		}
	}
	return p.script, nil
}

type parser struct {
	toks   []Token
	pos    int
	script *Script
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().Kind == TokIdent && strings.EqualFold(p.cur().Text, kw)
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	t := p.cur()
	return fmt.Errorf("line %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

// parsePattern parses: PATTERN name { items }.
func (p *parser) parsePattern() (*PatternStmt, error) {
	if err := p.expectKeyword("PATTERN"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	name := nameTok.Text
	if _, dup := p.script.Patterns[name]; dup {
		return nil, p.errorf("pattern %s already defined", name)
	}
	pat := pattern.New(name)
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	// nodeIdx resolves (or lazily creates) pattern nodes by variable.
	nodeIdx := func(variable string) (int, error) {
		if idx, ok := pat.NodeIndex(variable); ok {
			return idx, nil
		}
		return pat.AddNode(variable, "")
	}
	for !p.at(TokRBrace) {
		switch {
		case p.at(TokVariable):
			v := p.advance()
			from, err := nodeIdx(v.Text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			switch p.cur().Kind {
			case TokSemi:
				p.advance() // bare node declaration
			case TokDash, TokArrow, TokBangDash, TokBangArrow:
				op := p.advance()
				to, err2 := p.expect(TokVariable)
				if err2 != nil {
					return nil, err2
				}
				toIdx, err2 := nodeIdx(to.Text)
				if err2 != nil {
					return nil, p.errorf("%v", err2)
				}
				directed := op.Kind == TokArrow || op.Kind == TokBangArrow
				negated := op.Kind == TokBangDash || op.Kind == TokBangArrow
				if err2 := pat.AddEdge(from, toIdx, directed, negated); err2 != nil {
					return nil, p.errorf("%v", err2)
				}
				if _, err2 := p.expect(TokSemi); err2 != nil {
					return nil, err2
				}
			default:
				return nil, p.errorf("expected ';' or edge operator after ?%s, found %s", v.Text, p.cur())
			}
		case p.at(TokLBracket):
			if err := p.parsePatternPredicate(pat, nodeIdx); err != nil {
				return nil, err
			}
		case p.atKeyword("SUBPATTERN"):
			if err := p.parseSubpattern(pat); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unexpected %s in pattern body", p.cur())
		}
	}
	p.advance() // }
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	p.script.Patterns[name] = pat
	return &PatternStmt{Pattern: pat}, nil
}

// parsePatternPredicate parses: [operand cmp operand] ';'?
// Predicates of the form ?A.LABEL = 'const' on an unconstrained node are
// pushed down into the node's label (the footnote-1 optimization); all
// other predicates are kept as match-time filters.
func (p *parser) parsePatternPredicate(pat *pattern.Pattern, nodeIdx func(string) (int, error)) error {
	p.advance() // [
	l, err := p.parsePatternOperand(pat, nodeIdx)
	if err != nil {
		return err
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return err
	}
	r, err := p.parsePatternOperand(pat, nodeIdx)
	if err != nil {
		return err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return err
	}
	if p.at(TokSemi) {
		p.advance()
	}
	// Label-constant pushdown.
	if op == pattern.OpEq {
		if idx, c, ok := labelConst(l, r); ok && pat.Node(idx).Label == "" {
			pat.SetLabel(idx, c)
			return nil
		}
	}
	pat.AddPredicate(pattern.Predicate{Op: op, L: l, R: r})
	return nil
}

// labelConst recognizes ?A.LABEL = 'const' in either operand order.
func labelConst(l, r pattern.Operand) (nodeIdx int, c string, ok bool) {
	isLabelRef := func(o pattern.Operand) bool {
		return o.Node >= 0 && strings.EqualFold(o.Attr, "label")
	}
	isConst := func(o pattern.Operand) bool {
		return o.Node < 0 && o.EdgeFrom < 0 && o.ParamName == ""
	}
	switch {
	case isLabelRef(l) && isConst(r):
		return l.Node, r.Const, true
	case isLabelRef(r) && isConst(l):
		return r.Node, l.Const, true
	}
	return 0, "", false
}

// parsePatternOperand parses ?A.attr | EDGE(?A,?B).attr | literal.
func (p *parser) parsePatternOperand(pat *pattern.Pattern, nodeIdx func(string) (int, error)) (pattern.Operand, error) {
	switch {
	case p.at(TokVariable):
		v := p.advance()
		idx, err := nodeIdx(v.Text)
		if err != nil {
			return pattern.Operand{}, p.errorf("%v", err)
		}
		if _, err := p.expect(TokDot); err != nil {
			return pattern.Operand{}, err
		}
		attr, err := p.expect(TokIdent)
		if err != nil {
			return pattern.Operand{}, err
		}
		return pattern.NodeAttr(idx, attr.Text), nil
	case p.atKeyword("EDGE"):
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return pattern.Operand{}, err
		}
		a, err := p.expect(TokVariable)
		if err != nil {
			return pattern.Operand{}, err
		}
		ai, err := nodeIdx(a.Text)
		if err != nil {
			return pattern.Operand{}, p.errorf("%v", err)
		}
		if _, err := p.expect(TokComma); err != nil {
			return pattern.Operand{}, err
		}
		b, err := p.expect(TokVariable)
		if err != nil {
			return pattern.Operand{}, err
		}
		bi, err := nodeIdx(b.Text)
		if err != nil {
			return pattern.Operand{}, p.errorf("%v", err)
		}
		if _, err := p.expect(TokRParen); err != nil {
			return pattern.Operand{}, err
		}
		if _, err := p.expect(TokDot); err != nil {
			return pattern.Operand{}, err
		}
		attr, err := p.expect(TokIdent)
		if err != nil {
			return pattern.Operand{}, err
		}
		return pattern.EdgeAttr(ai, bi, attr.Text), nil
	case p.at(TokString), p.at(TokNumber):
		t := p.advance()
		return pattern.Const(t.Text), nil
	case p.at(TokParam):
		t := p.advance()
		return pattern.Param(t.Text), nil
	}
	return pattern.Operand{}, p.errorf("expected operand, found %s", p.cur())
}

func (p *parser) parseCmpOp() (pattern.CmpOp, error) {
	switch p.cur().Kind {
	case TokEq:
		p.advance()
		return pattern.OpEq, nil
	case TokNe:
		p.advance()
		return pattern.OpNe, nil
	case TokLt:
		p.advance()
		return pattern.OpLt, nil
	case TokLe:
		p.advance()
		return pattern.OpLe, nil
	case TokGt:
		p.advance()
		return pattern.OpGt, nil
	case TokGe:
		p.advance()
		return pattern.OpGe, nil
	}
	return 0, p.errorf("expected comparison operator, found %s", p.cur())
}

// parseSubpattern parses: SUBPATTERN name { ?A; ?B; }
func (p *parser) parseSubpattern(pat *pattern.Pattern) error {
	p.advance() // SUBPATTERN
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	var nodes []int
	for !p.at(TokRBrace) {
		v, err := p.expect(TokVariable)
		if err != nil {
			return err
		}
		idx, ok := pat.NodeIndex(v.Text)
		if !ok {
			return p.errorf("subpattern %s references undefined variable ?%s", name.Text, v.Text)
		}
		nodes = append(nodes, idx)
		if p.at(TokSemi) {
			p.advance()
		}
	}
	p.advance() // }
	if err := pat.AddSubpattern(name.Text, nodes); err != nil {
		return p.errorf("%v", err)
	}
	return nil
}

// parseSelect parses a census SELECT statement.
func (p *parser) parseSelect() (*SelectStmt, error) {
	p.advance() // SELECT
	st := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.at(TokComma) {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectKeyword("NODES"); err != nil {
			return nil, err
		}
		alias := ""
		if p.atKeyword("AS") {
			p.advance()
			a, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			alias = a.Text
		}
		st.Aliases = append(st.Aliases, alias)
		if !p.at(TokComma) {
			break
		}
		p.advance()
	}
	if len(st.Aliases) > 2 {
		return nil, p.errorf("at most two nodes relations are supported (single-node or pairwise census)")
	}
	if p.atKeyword("WHERE") {
		p.advance()
		e, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.atKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		ob := &OrderBy{}
		if p.atKeyword("COUNT") {
			p.advance()
			ob.ByCount = true
		} else {
			ref, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			ob.Col = ref
		}
		switch {
		case p.atKeyword("DESC"):
			p.advance()
			ob.Desc = true
		case p.atKeyword("ASC"):
			p.advance()
		}
		st.Order = ob
	}
	if p.atKeyword("LIMIT") {
		p.advance()
		nTok, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(nTok.Text)
		if err != nil || n <= 0 {
			return nil, p.errorf("invalid LIMIT %q", nTok.Text)
		}
		st.Limit = n
	}
	if p.at(TokSemi) {
		p.advance()
	}
	if err := p.validateSelect(st); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	switch {
	case p.atKeyword("COUNTP"):
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return SelectItem{}, err
		}
		patName, err := p.expect(TokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return SelectItem{}, err
		}
		nb, err := p.parseNeighborhood()
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Count: &CountAgg{PatternName: patName.Text, Neighborhood: nb}}, nil
	case p.atKeyword("COUNTSP"):
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return SelectItem{}, err
		}
		subName, err := p.expect(TokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return SelectItem{}, err
		}
		patName, err := p.expect(TokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return SelectItem{}, err
		}
		nb, err := p.parseNeighborhood()
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Count: &CountAgg{
			Subpattern:   subName.Text,
			PatternName:  patName.Text,
			Neighborhood: nb,
		}}, nil
	case p.at(TokIdent):
		ref, err := p.parseColumnRef()
		if err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Col: &ref}, nil
	}
	return SelectItem{}, p.errorf("expected column or COUNTP/COUNTSP, found %s", p.cur())
}

// parseColumnRef parses ID or alias.col.
func (p *parser) parseColumnRef() (ColumnRef, error) {
	first, err := p.expect(TokIdent)
	if err != nil {
		return ColumnRef{}, err
	}
	if p.at(TokDot) {
		p.advance()
		second, err := p.expect(TokIdent)
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Alias: first.Text, Name: second.Text}, nil
	}
	return ColumnRef{Name: first.Text}, nil
}

// parseNeighborhood parses SUBGRAPH(ref, k) or
// SUBGRAPH-INTERSECTION/UNION(ref1, ref2, k). The hyphenated names lex as
// IDENT DASH IDENT.
func (p *parser) parseNeighborhood() (Neighborhood, error) {
	if !p.atKeyword("SUBGRAPH") {
		return Neighborhood{}, p.errorf("expected SUBGRAPH, SUBGRAPH-INTERSECTION or SUBGRAPH-UNION, found %s", p.cur())
	}
	p.advance()
	nb := Neighborhood{Kind: NSubgraph}
	if p.at(TokDash) {
		p.advance()
		mod, err := p.expect(TokIdent)
		if err != nil {
			return nb, err
		}
		switch strings.ToUpper(mod.Text) {
		case "INTERSECTION":
			nb.Kind = NIntersection
		case "UNION":
			nb.Kind = NUnion
		default:
			return nb, p.errorf("unknown neighborhood SUBGRAPH-%s", mod.Text)
		}
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nb, err
	}
	wantRefs := 1
	if nb.Kind != NSubgraph {
		wantRefs = 2
	}
	for i := 0; i < wantRefs; i++ {
		ref, err := p.parseColumnRef()
		if err != nil {
			return nb, err
		}
		nb.Refs = append(nb.Refs, ref)
		if _, err := p.expect(TokComma); err != nil {
			return nb, err
		}
	}
	kTok, err := p.expect(TokNumber)
	if err != nil {
		return nb, err
	}
	k, err := strconv.Atoi(kTok.Text)
	if err != nil || k < 0 {
		return nb, p.errorf("invalid radius %q", kTok.Text)
	}
	nb.K = k
	if _, err := p.expect(TokRParen); err != nil {
		return nb, err
	}
	return nb, nil
}

// WHERE expression grammar: or := and (OR and)*; and := unary (AND unary)*;
// unary := NOT unary | '(' or ')' | comparison.
func (p *parser) parseOrExpr() (Expr, error) {
	l, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		r, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		l = &BoolExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAndExpr() (Expr, error) {
	l, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		r, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BoolExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnaryExpr() (Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		e, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.at(TokLParen) {
		p.advance()
		e, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	l, err := p.parseWhereOperand()
	if err != nil {
		return nil, err
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	r, err := p.parseWhereOperand()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) parseWhereOperand() (Operand, error) {
	switch {
	case p.atKeyword("RND"):
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return RndOperand{}, nil
	case p.at(TokIdent):
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		return ColOperand{Ref: ref}, nil
	case p.at(TokString), p.at(TokNumber):
		t := p.advance()
		return LitOperand{Value: t.Text}, nil
	case p.at(TokParam):
		t := p.advance()
		return ParamOperand{Name: t.Text}, nil
	}
	return nil, p.errorf("expected WHERE operand, found %s", p.cur())
}

// validateSelect checks cross-references: the pattern exists, the
// subpattern exists, the neighborhood arity matches the FROM clause, and
// column/neighborhood references use declared aliases.
func (p *parser) validateSelect(st *SelectStmt) error {
	aggs := st.CountItems()
	if len(aggs) == 0 {
		return p.errorf("query has no COUNTP/COUNTSP aggregate")
	}
	for _, agg := range aggs {
		pat, ok := p.script.Patterns[agg.PatternName]
		if !ok {
			return p.errorf("unknown pattern %q", agg.PatternName)
		}
		if agg.Subpattern != "" {
			if _, ok := pat.Subpattern(agg.Subpattern); !ok {
				return p.errorf("pattern %s has no subpattern %q", agg.PatternName, agg.Subpattern)
			}
		}
	}
	first := aggs[0]
	for _, agg := range aggs[1:] {
		if !sameNeighborhood(first.Neighborhood, agg.Neighborhood) {
			return p.errorf("all aggregates in one query must share the same search neighborhood")
		}
	}
	wantRefs := 1
	if first.Neighborhood.Kind != NSubgraph {
		wantRefs = 2
	}
	if len(st.Aliases) != wantRefs {
		return p.errorf("%s requires %d nodes relation(s) in FROM, found %d",
			first.Neighborhood.Kind, wantRefs, len(st.Aliases))
	}
	validAlias := func(a string) bool {
		if a == "" {
			return len(st.Aliases) == 1
		}
		for _, x := range st.Aliases {
			if x == a {
				return true
			}
		}
		return false
	}
	for _, r := range first.Neighborhood.Refs {
		if !strings.EqualFold(r.Name, "ID") {
			return p.errorf("neighborhood anchors must reference ID, found %s", r)
		}
		if !validAlias(r.Alias) {
			return p.errorf("unknown alias %q in neighborhood reference", r.Alias)
		}
	}
	for _, it := range st.Items {
		if it.Col != nil && !validAlias(it.Col.Alias) {
			return p.errorf("unknown alias %q in select list", it.Col.Alias)
		}
	}
	if st.Order != nil && !st.Order.ByCount && !validAlias(st.Order.Col.Alias) {
		return p.errorf("unknown alias %q in ORDER BY", st.Order.Col.Alias)
	}
	var checkExpr func(e Expr) error
	checkExpr = func(e Expr) error {
		switch x := e.(type) {
		case *BoolExpr:
			if err := checkExpr(x.L); err != nil {
				return err
			}
			return checkExpr(x.R)
		case *NotExpr:
			return checkExpr(x.E)
		case *CmpExpr:
			for _, o := range []Operand{x.L, x.R} {
				if c, ok := o.(ColOperand); ok && !validAlias(c.Ref.Alias) {
					return p.errorf("unknown alias %q in WHERE clause", c.Ref.Alias)
				}
			}
		}
		return nil
	}
	if st.Where != nil {
		if err := checkExpr(st.Where); err != nil {
			return err
		}
	}
	return nil
}

// sameNeighborhood reports whether two neighborhoods are identical.
func sameNeighborhood(a, b Neighborhood) bool {
	if a.Kind != b.Kind || a.K != b.K || len(a.Refs) != len(b.Refs) {
		return false
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			return false
		}
	}
	return true
}
