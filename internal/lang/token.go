// Package lang implements the paper's SQL-based declarative language for
// ego-centric pattern census queries (Section II): PATTERN definitions
// with variables, undirected/directed/negated edges, attribute predicates
// and subpatterns, and SELECT statements with the COUNTP/COUNTSP
// aggregates over SUBGRAPH, SUBGRAPH-INTERSECTION and SUBGRAPH-UNION
// search neighborhoods, focal-node restriction via WHERE (including the
// RND() < R sampling predicate used in the paper's selectivity
// experiments).
package lang

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokVariable // ?A
	TokParam    // $name
	TokNumber
	TokString // 'x' or "x"

	TokLBrace   // {
	TokRBrace   // }
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokDot      // .
	TokStar     // *

	TokDash      // -
	TokArrow     // ->
	TokBangDash  // !-
	TokBangArrow // !->

	TokEq // =
	TokNe // != or <>
	TokLt // <
	TokLe // <=
	TokGt // >
	TokGe // >=
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokVariable:
		return "variable"
	case TokParam:
		return "parameter"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokSemi:
		return "';'"
	case TokComma:
		return "','"
	case TokDot:
		return "'.'"
	case TokStar:
		return "'*'"
	case TokDash:
		return "'-'"
	case TokArrow:
		return "'->'"
	case TokBangDash:
		return "'!-'"
	case TokBangArrow:
		return "'!->'"
	case TokEq:
		return "'='"
	case TokNe:
		return "'!='"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}
