package lang

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"egocensus/internal/pattern"
)

// Fingerprint is a canonical 128-bit key for a census query. Two query
// texts that normalize to the same AST — same SELECT shape, same WHERE
// predicate, same referenced pattern definitions — share a fingerprint
// regardless of whitespace, comments, keyword case, or the values later
// bound to $name parameter slots. The plan and result caches key on it.
type Fingerprint [16]byte

func (f Fingerprint) String() string { return fmt.Sprintf("%x", f[:]) }

// QueryFingerprint computes the canonical fingerprint of a query against
// a pattern catalog. The catalog must contain every pattern the query's
// COUNTP/COUNTSP aggregates reference; the referenced definitions are
// folded into the key so a redefined pattern yields a different
// fingerprint. Parameter slots contribute their names, never values.
func QueryFingerprint(q *SelectStmt, catalog map[string]*pattern.Pattern) (Fingerprint, error) {
	var fp Fingerprint
	buf := make([]byte, 0, 256)
	buf = append(buf, 'Q', 1) // format tag + version
	if q.Explain {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}

	buf = appendUvarint(buf, uint64(len(q.Items)))
	seen := map[string]bool{}
	for _, it := range q.Items {
		if it.Col != nil {
			buf = append(buf, 'c')
			buf = appendString(buf, it.Col.Alias)
			buf = appendString(buf, strings.ToUpper(it.Col.Name))
			continue
		}
		c := it.Count
		if c.Subpattern != "" {
			buf = append(buf, 's')
			buf = appendString(buf, c.Subpattern)
		} else {
			buf = append(buf, 'p')
		}
		buf = appendString(buf, c.PatternName)
		if !seen[c.PatternName] {
			seen[c.PatternName] = true
			pat := catalog[c.PatternName]
			if pat == nil {
				return fp, fmt.Errorf("lang: fingerprint: pattern %q not in catalog", c.PatternName)
			}
			buf = pat.AppendCanonical(buf)
		}
		buf = appendUvarint(buf, uint64(c.Neighborhood.Kind))
		buf = appendUvarint(buf, uint64(len(c.Neighborhood.Refs)))
		for _, r := range c.Neighborhood.Refs {
			buf = appendString(buf, r.Alias)
			buf = appendString(buf, strings.ToUpper(r.Name))
		}
		buf = appendUvarint(buf, uint64(c.Neighborhood.K))
	}

	buf = appendUvarint(buf, uint64(len(q.Aliases)))
	for _, a := range q.Aliases {
		buf = appendString(buf, a)
	}

	buf = appendExpr(buf, q.Where)

	if q.Order != nil {
		buf = append(buf, 'O')
		if q.Order.ByCount {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
			buf = appendString(buf, q.Order.Col.Alias)
			buf = appendString(buf, strings.ToUpper(q.Order.Col.Name))
		}
		if q.Order.Desc {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	} else {
		buf = append(buf, 'o')
	}
	buf = appendUvarint(buf, uint64(q.Limit))

	h := fnv.New128a()
	h.Write(buf)
	h.Sum(fp[:0])
	return fp, nil
}

func appendExpr(dst []byte, e Expr) []byte {
	switch x := e.(type) {
	case nil:
		return append(dst, 'n')
	case *BoolExpr:
		dst = append(dst, 'B')
		dst = appendString(dst, x.Op)
		dst = appendExpr(dst, x.L)
		return appendExpr(dst, x.R)
	case *NotExpr:
		dst = append(dst, 'N')
		return appendExpr(dst, x.E)
	case *CmpExpr:
		dst = append(dst, 'C')
		dst = appendUvarint(dst, uint64(x.Op))
		dst = appendOperand(dst, x.L)
		return appendOperand(dst, x.R)
	}
	// Unknown node types still hash deterministically via their rendering.
	dst = append(dst, 'X')
	return appendString(dst, ExprString(e))
}

func appendOperand(dst []byte, o Operand) []byte {
	switch x := o.(type) {
	case ColOperand:
		dst = append(dst, 'r')
		dst = appendString(dst, x.Ref.Alias)
		return appendString(dst, strings.ToUpper(x.Ref.Name))
	case LitOperand:
		dst = append(dst, 'l')
		return appendString(dst, x.Value)
	case RndOperand:
		return append(dst, 'R')
	case ParamOperand:
		// Parameter slots hash by name only: the fingerprint is stable
		// across executions with different bound values.
		dst = append(dst, 'P')
		return appendString(dst, x.Name)
	}
	dst = append(dst, 'x')
	return appendString(dst, o.String())
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// QueryParams returns the sorted, deduplicated $name parameters the query
// references — in its WHERE clause and in every pattern its aggregates
// count. Missing catalog entries are skipped (Prepare validates those).
func QueryParams(q *SelectStmt, catalog map[string]*pattern.Pattern) []string {
	seen := map[string]bool{}
	for _, name := range CollectParams(q.Where) {
		seen[name] = true
	}
	for _, c := range q.CountItems() {
		if pat := catalog[c.PatternName]; pat != nil {
			for _, name := range pat.ParamNames() {
				seen[name] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
