package lang

import (
	"strings"
	"testing"
)

// Exhaustive malformed-input cases: every parse path must fail cleanly
// with a positioned error, never panic.
func TestParserErrorPaths(t *testing.T) {
	cases := []string{
		// pattern bodies
		`PATTERN`,
		`PATTERN p`,
		`PATTERN p {`,
		`PATTERN p {?A`,
		`PATTERN p {?A-}`,
		`PATTERN p {?A-?B}`,
		`PATTERN p {?A ?B;}`,
		`PATTERN p {5;}`,
		`PATTERN p {?A; [?A.];}`,
		`PATTERN p {?A; [?A.label];}`,
		`PATTERN p {?A; [?A.label=];}`,
		`PATTERN p {?A; [?A.label='x'};`,
		`PATTERN p {?A; [=?A.label];}`,
		`PATTERN p {?A; [EDGE(?A).w='1'];}`,
		`PATTERN p {?A; [EDGE(?A,?B.w='1'];}`,
		`PATTERN p {?A; [EDGE(?A,?B)w='1'];}`,
		`PATTERN p {?A; [EDGE(?A,?B).='1'];}`,
		`PATTERN p {?A; SUBPATTERN {?A;}}`,
		`PATTERN p {?A; SUBPATTERN s ?A;}`,
		`PATTERN p {?A; SUBPATTERN s {5;}}`,
		// select statements
		`SELECT`,
		`SELECT FROM nodes`,
		`PATTERN p {?A;} SELECT ID COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes`,
		`PATTERN p {?A;} SELECT ID, COUNTP FROM nodes`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p SUBGRAPH(ID, 1)) FROM nodes`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, NEIGHBORHOOD(ID, 1)) FROM nodes`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID 1)) FROM nodes`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1) FROM nodes`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1))`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM edges`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes AS`,
		`PATTERN p {?A;} SELECT ID, COUNTSP(s, p) FROM nodes`,
		`PATTERN p {?A;} SELECT ID, COUNTSP(s p, SUBGRAPH(ID, 1)) FROM nodes`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH-UNION(ID, 1)) FROM nodes`,
		// where clauses
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE age`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE age >`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE (age > 1`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE RND( < 1`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE RND() <`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE NOT`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE ; > 1`,
		// order/limit
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes ORDER BY`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes LIMIT`,
		`PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes LIMIT x`,
		// lexer errors
		`PATTERN p {?A; [?A.label ! 'x'];}`,
		`PATTERN p {?A;} SELECT #`,
		"PATTERN p {?A; [?A.label='x\x00",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []TokenKind{
		TokEOF, TokIdent, TokVariable, TokNumber, TokString,
		TokLBrace, TokRBrace, TokLParen, TokRParen, TokLBracket, TokRBracket,
		TokSemi, TokComma, TokDot, TokStar,
		TokDash, TokArrow, TokBangDash, TokBangArrow,
		TokEq, TokNe, TokLt, TokLe, TokGt, TokGe,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "token(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate token name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(TokenKind(99).String(), "token(") {
		t.Error("unknown kind should render numerically")
	}
	tok := Token{Kind: TokIdent, Text: "hello"}
	if !strings.Contains(tok.String(), "hello") {
		t.Errorf("token string = %q", tok.String())
	}
	if (Token{Kind: TokSemi}).String() != "';'" {
		t.Error("textless token should render its kind")
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := Lex(`= != <> < <= > >= - -> !- !-> *`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokEq, TokNe, TokNe, TokLt, TokLe, TokGt, TokGe,
		TokDash, TokArrow, TokBangDash, TokBangArrow, TokStar, TokEOF}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %d want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %s want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexerDoubleQuotedStrings(t *testing.T) {
	toks, err := Lex(`"double" 'single'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "double" || toks[1].Text != "single" {
		t.Fatalf("strings = %q %q", toks[0].Text, toks[1].Text)
	}
}

func TestNeighborhoodKindString(t *testing.T) {
	if NSubgraph.String() != "SUBGRAPH" ||
		NIntersection.String() != "SUBGRAPH-INTERSECTION" ||
		NUnion.String() != "SUBGRAPH-UNION" {
		t.Fatal("neighborhood kind strings wrong")
	}
}

func TestEvalWhereUnboundAlias(t *testing.T) {
	q := mustParse(t, `
PATTERN n {?A;}
SELECT n1.ID, n2.ID, COUNTP(n, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID`).Queries()[0]
	// Bindings missing n2: evaluation must error, not panic.
	if _, err := EvalWhere(q.Where, nil, []Binding{{Alias: "n1", Node: 0}}, nil); err == nil {
		t.Fatal("unbound alias should error")
	}
	if _, err := EvalWhere(q.Where, nil, nil, nil); err == nil {
		t.Fatal("empty bindings should error")
	}
}
