package lang

import (
	"reflect"
	"testing"

	"egocensus/internal/graph"
)

func fingerprintOf(t *testing.T, src string) Fingerprint {
	t.Helper()
	s := mustParse(t, src)
	qs := s.Queries()
	if len(qs) != 1 {
		t.Fatalf("want one query, got %d", len(qs))
	}
	fp, err := QueryFingerprint(qs[0], s.Patterns)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

func TestFingerprintStableAcrossFormatting(t *testing.T) {
	a := fingerprintOf(t, `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes WHERE degree > '3'
`)
	b := fingerprintOf(t, `
PATTERN p {
  ?A - ?B;   -- same edge, different layout
}
select id,
  countp(p, subgraph(id, 2))
from nodes where degree > '3'
`)
	if a != b {
		t.Fatalf("formatting changed fingerprint: %s vs %s", a, b)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fingerprintOf(t, `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes
`)
	cases := map[string]string{
		"radius": `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 3)) FROM nodes
`,
		"pattern shape": `
PATTERN p { ?A->?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes
`,
		"pattern predicate": `
PATTERN p { ?A-?B; [?A.LABEL='x']; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes
`,
		"where clause": `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes WHERE kind = 'gene'
`,
		"limit": `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes LIMIT 5
`,
		"order": `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes ORDER BY COUNT DESC
`,
		"explain": `
PATTERN p { ?A-?B; }
EXPLAIN SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes
`,
	}
	for name, src := range cases {
		if got := fingerprintOf(t, src); got == base {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
}

func TestFingerprintIgnoresParamValuesButNotNames(t *testing.T) {
	// Same slot name: identical key regardless of what will be bound.
	a := fingerprintOf(t, `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes WHERE kind = $k
`)
	b := fingerprintOf(t, `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes WHERE kind = $k
`)
	if a != b {
		t.Fatal("identical parameterized queries disagree")
	}
	c := fingerprintOf(t, `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes WHERE kind = $other
`)
	if a == c {
		t.Fatal("renaming the parameter slot should change the fingerprint")
	}
	// A parameter slot is not the same key as a literal.
	d := fingerprintOf(t, `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes WHERE kind = 'k'
`)
	if a == d {
		t.Fatal("parameter slot and literal should not collide")
	}
}

func TestFingerprintMissingPattern(t *testing.T) {
	s := mustParse(t, `
PATTERN p { ?A-?B; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes
`)
	if _, err := QueryFingerprint(s.Queries()[0], nil); err == nil {
		t.Fatal("expected error for missing catalog entry")
	}
}

func TestQueryParams(t *testing.T) {
	s := mustParse(t, `
PATTERN p { ?A-?B; [?A.kind=$pk]; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes WHERE label = $wl AND label != $pk
`)
	got := QueryParams(s.Queries()[0], s.Patterns)
	want := []string{"pk", "wl"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QueryParams = %v want %v", got, want)
	}
}

func TestEvalWhereParams(t *testing.T) {
	g := graph.New(false)
	n := g.AddNode()
	g.SetNodeAttr(n, "kind", "gene")
	s := mustParse(t, `
PATTERN p { ?A; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k
`)
	q := s.Queries()[0]
	bind := []Binding{{Alias: "", Node: n}}

	ok, err := EvalWhereParams(q.Where, g, bind, nil, map[string]string{"k": "gene"})
	if err != nil || !ok {
		t.Fatalf("bound match: ok=%v err=%v", ok, err)
	}
	ok, err = EvalWhereParams(q.Where, g, bind, nil, map[string]string{"k": "protein"})
	if err != nil || ok {
		t.Fatalf("bound mismatch: ok=%v err=%v", ok, err)
	}
	if _, err = EvalWhereParams(q.Where, g, bind, nil, nil); err == nil {
		t.Fatal("unbound parameter should error")
	}
	if names := CollectParams(q.Where); len(names) != 1 || names[0] != "k" {
		t.Fatalf("CollectParams = %v", names)
	}
}
