package lang

import (
	"fmt"
	"sort"
	"strings"

	"egocensus/internal/pattern"
)

// Statement is a parsed top-level statement: a PATTERN definition or a
// SELECT query.
type Statement interface{ stmt() }

// PatternStmt is a PATTERN definition.
type PatternStmt struct {
	Pattern *pattern.Pattern
}

func (*PatternStmt) stmt() {}

// NeighborhoodKind selects the search neighborhood constructor.
type NeighborhoodKind int

// Neighborhood kinds.
const (
	NSubgraph NeighborhoodKind = iota
	NIntersection
	NUnion
)

func (k NeighborhoodKind) String() string {
	switch k {
	case NIntersection:
		return "SUBGRAPH-INTERSECTION"
	case NUnion:
		return "SUBGRAPH-UNION"
	default:
		return "SUBGRAPH"
	}
}

// Neighborhood is a parsed search neighborhood: SUBGRAPH(ref, k) or
// SUBGRAPH-INTERSECTION/UNION(ref1, ref2, k).
type Neighborhood struct {
	Kind NeighborhoodKind
	// Refs holds the focal node references ("ID", or "n1.ID") — one for
	// SUBGRAPH, two for INTERSECTION/UNION.
	Refs []ColumnRef
	K    int
}

// CountAgg is a COUNTP or COUNTSP aggregate.
type CountAgg struct {
	// Subpattern is empty for COUNTP.
	Subpattern   string
	PatternName  string
	Neighborhood Neighborhood
}

// ColumnRef references a column, optionally qualified by a FROM alias:
// ID, n1.ID, n2.age.
type ColumnRef struct {
	Alias string // "" when unqualified
	Name  string
}

func (c ColumnRef) String() string {
	if c.Alias == "" {
		return c.Name
	}
	return c.Alias + "." + c.Name
}

// SelectItem is one item of the SELECT list: a column reference or the
// count aggregate.
type SelectItem struct {
	Col   *ColumnRef
	Count *CountAgg
}

// OrderBy is an optional ORDER BY clause. The census language orders by
// the count aggregate (ORDER BY COUNT) or by a column reference.
type OrderBy struct {
	// ByCount orders by the COUNTP/COUNTSP value; otherwise Col is used.
	ByCount bool
	Col     ColumnRef
	Desc    bool
}

// SelectStmt is a parsed census query.
type SelectStmt struct {
	// Explain marks an EXPLAIN-prefixed query: the engine reports the
	// evaluation plan instead of running the census.
	Explain bool
	Items   []SelectItem
	// Aliases holds the FROM-clause aliases in order; len 1 for
	// single-node censuses, 2 for pairwise. Unaliased "FROM nodes" yields
	// a single empty alias.
	Aliases []string
	Where   Expr // nil when absent
	// Order is the optional ORDER BY clause (nil when absent).
	Order *OrderBy
	// Limit bounds the result rows; 0 means unlimited.
	Limit int
}

func (*SelectStmt) stmt() {}

// CountItem returns the first count aggregate of the query.
func (s *SelectStmt) CountItem() (*CountAgg, error) {
	aggs := s.CountItems()
	if len(aggs) == 0 {
		return nil, fmt.Errorf("query has no COUNTP/COUNTSP aggregate")
	}
	return aggs[0], nil
}

// CountItems returns every count aggregate of the query in SELECT-list
// order. Multiple aggregates are allowed when they share the same search
// neighborhood (validated at parse time).
func (s *SelectStmt) CountItems() []*CountAgg {
	var out []*CountAgg
	for _, it := range s.Items {
		if it.Count != nil {
			out = append(out, it.Count)
		}
	}
	return out
}

// Expr is a WHERE-clause expression.
type Expr interface {
	exprString() string
}

// ExprString renders a WHERE expression in query syntax ("" for nil). The
// planning layer uses it to label FocalSelect plan nodes.
func ExprString(e Expr) string {
	if e == nil {
		return ""
	}
	return e.exprString()
}

// BoolExpr combines two expressions with AND/OR.
type BoolExpr struct {
	Op   string // "AND" | "OR"
	L, R Expr
}

func (e *BoolExpr) exprString() string {
	return "(" + e.L.exprString() + " " + e.Op + " " + e.R.exprString() + ")"
}

// NotExpr negates an expression.
type NotExpr struct{ E Expr }

func (e *NotExpr) exprString() string { return "NOT " + e.E.exprString() }

// CmpExpr compares two operands.
type CmpExpr struct {
	Op   pattern.CmpOp
	L, R Operand
}

func (e *CmpExpr) exprString() string {
	return e.L.String() + e.Op.String() + e.R.String()
}

// Operand is a WHERE-clause operand.
type Operand interface {
	String() string
}

// ColOperand references a column of the focal node(s).
type ColOperand struct{ Ref ColumnRef }

func (o ColOperand) String() string { return o.Ref.String() }

// LitOperand is a literal string or number.
type LitOperand struct{ Value string }

func (o LitOperand) String() string { return "'" + o.Value + "'" }

// RndOperand is the RND() pseudo-random sampling function of Section V-A5.
type RndOperand struct{}

func (RndOperand) String() string { return "RND()" }

// ParamOperand is a $name placeholder bound at execution time. Prepared
// queries compile once with the slot open and substitute a value per call.
type ParamOperand struct{ Name string }

func (o ParamOperand) String() string { return "$" + o.Name }

// CollectParams returns the sorted, deduplicated $name parameters the
// expression references (nil-safe, empty for parameter-free expressions).
func CollectParams(e Expr) []string {
	seen := map[string]bool{}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BoolExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *CmpExpr:
			for _, o := range []Operand{x.L, x.R} {
				if p, ok := o.(ParamOperand); ok {
					seen[p.Name] = true
				}
			}
		}
	}
	if e != nil {
		walk(e)
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Script is a parsed sequence of statements with a pattern catalog.
type Script struct {
	Statements []Statement
	Patterns   map[string]*pattern.Pattern
}

// Queries returns the SELECT statements of the script in order.
func (s *Script) Queries() []*SelectStmt {
	var out []*SelectStmt
	for _, st := range s.Statements {
		if q, ok := st.(*SelectStmt); ok {
			out = append(out, q)
		}
	}
	return out
}

// String renders a SELECT statement in query syntax (used in tests for
// the parse/print/parse fixpoint).
func (s *SelectStmt) String() string {
	var b strings.Builder
	if s.Explain {
		b.WriteString("EXPLAIN ")
	}
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Col != nil {
			b.WriteString(it.Col.String())
			continue
		}
		c := it.Count
		if c.Subpattern != "" {
			fmt.Fprintf(&b, "COUNTSP(%s, %s, ", c.Subpattern, c.PatternName)
		} else {
			fmt.Fprintf(&b, "COUNTP(%s, ", c.PatternName)
		}
		b.WriteString(c.Neighborhood.Kind.String())
		b.WriteString("(")
		for j, r := range c.Neighborhood.Refs {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(r.String())
		}
		fmt.Fprintf(&b, ", %d))", c.Neighborhood.K)
	}
	b.WriteString(" FROM ")
	for i, a := range s.Aliases {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("nodes")
		if a != "" {
			b.WriteString(" AS " + a)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.exprString())
	}
	if s.Order != nil {
		b.WriteString(" ORDER BY ")
		if s.Order.ByCount {
			b.WriteString("COUNT")
		} else {
			b.WriteString(s.Order.Col.String())
		}
		if s.Order.Desc {
			b.WriteString(" DESC")
		} else {
			b.WriteString(" ASC")
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
