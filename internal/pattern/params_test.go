package pattern

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func paramPattern(t *testing.T) *Pattern {
	t.Helper()
	p := New("labeled_edge")
	a, err := p.AddNode("A", "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.AddNode("B", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(a, b, false, false); err != nil {
		t.Fatal(err)
	}
	p.AddPredicate(Predicate{Op: OpEq, L: NodeAttr(a, "kind"), R: Param("k")})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParamNamesAndHasParams(t *testing.T) {
	p := paramPattern(t)
	if !p.HasParams() {
		t.Fatal("HasParams = false")
	}
	if got := p.ParamNames(); !reflect.DeepEqual(got, []string{"k"}) {
		t.Fatalf("ParamNames = %v", got)
	}

	q := New("plain")
	if _, err := q.AddNode("A", ""); err != nil {
		t.Fatal(err)
	}
	if q.HasParams() || len(q.ParamNames()) != 0 {
		t.Fatal("parameter-free pattern reports params")
	}
}

func TestBindParams(t *testing.T) {
	p := paramPattern(t)

	bound, err := p.BindParams(map[string]string{"k": "gene"})
	if err != nil {
		t.Fatal(err)
	}
	if bound == p {
		t.Fatal("binding should clone, not mutate")
	}
	if p.HasParams() == false {
		t.Fatal("original mutated by BindParams")
	}
	if bound.HasParams() {
		t.Fatal("bound clone still has params")
	}
	if !strings.Contains(bound.String(), "'gene'") {
		t.Fatalf("bound render missing substituted literal: %s", bound.String())
	}

	if _, err := p.BindParams(nil); err == nil {
		t.Fatal("missing parameter should error")
	}

	// No-op fast path for parameter-free patterns.
	q := New("plain")
	if _, err := q.AddNode("A", ""); err != nil {
		t.Fatal(err)
	}
	same, err := q.BindParams(nil)
	if err != nil || same != q {
		t.Fatalf("parameter-free bind should return receiver: %v %v", same, err)
	}
}

func TestAppendCanonicalStability(t *testing.T) {
	a := paramPattern(t)
	b := paramPattern(t)
	ca := a.AppendCanonical(nil)
	cb := b.AppendCanonical(nil)
	if !bytes.Equal(ca, cb) {
		t.Fatal("identical patterns produced different canonical bytes")
	}

	// Bound values change the canonical encoding (they are constants);
	// the open slot encodes by name.
	bound, err := a.BindParams(map[string]string{"k": "gene"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ca, bound.AppendCanonical(nil)) {
		t.Fatal("bound pattern canonical bytes should differ from open slot")
	}

	// Structural change is visible.
	c := paramPattern(t)
	n, err := c.AddNode("C", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddEdge(0, n, true, false); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ca, c.AppendCanonical(nil)) {
		t.Fatal("structural change not reflected in canonical bytes")
	}
}
