package pattern

import "fmt"

// This file provides programmatic constructors for the patterns of the
// paper's Figure 3 and Table I, reused by tests, benchmarks, and examples.
// A labels argument of nil builds the unlabeled variant; otherwise one
// label per node is required.

func varName(i int) string { return string(rune('A'+i%26)) + suffix(i) }

func suffix(i int) string {
	if i < 26 {
		return ""
	}
	return fmt.Sprintf("%d", i/26)
}

func labeled(p *Pattern, n int, labels []string) []int {
	if labels != nil && len(labels) != n {
		panic(fmt.Sprintf("pattern %s: want %d labels, got %d", p.Name, n, len(labels)))
	}
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		l := ""
		if labels != nil {
			l = labels[i]
		}
		idx[i] = p.MustAddNode(varName(i), l)
	}
	return idx
}

// SingleNode builds the single_node pattern of Table I row 1.
func SingleNode(name, label string) *Pattern {
	p := New(name)
	var labels []string
	if label != "" {
		labels = []string{label}
	}
	labeled(p, 1, labels)
	return p
}

// SingleEdge builds the single_edge pattern of Table I row 2.
func SingleEdge(name string, labels []string) *Pattern {
	p := New(name)
	idx := labeled(p, 2, labels)
	p.MustAddEdge(idx[0], idx[1], false, false)
	return p
}

// Clique builds an n-clique; n=3 with labels is the paper's clq3, n=4 clq4,
// n=3 unlabeled is clq3-unlb.
func Clique(name string, n int, labels []string) *Pattern {
	p := New(name)
	idx := labeled(p, n, labels)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p.MustAddEdge(idx[i], idx[j], false, false)
		}
	}
	return p
}

// Square builds the 4-cycle sqr pattern of Figure 3 / Table I row 3.
func Square(name string, labels []string) *Pattern {
	p := New(name)
	idx := labeled(p, 4, labels)
	p.MustAddEdge(idx[0], idx[1], false, false)
	p.MustAddEdge(idx[1], idx[2], false, false)
	p.MustAddEdge(idx[2], idx[3], false, false)
	p.MustAddEdge(idx[3], idx[0], false, false)
	return p
}

// Chain builds a simple path on n nodes.
func Chain(name string, n int, labels []string) *Pattern {
	p := New(name)
	idx := labeled(p, n, labels)
	for i := 0; i+1 < n; i++ {
		p.MustAddEdge(idx[i], idx[i+1], false, false)
	}
	return p
}

// Star builds a star with one hub and n-1 leaves.
func Star(name string, n int, labels []string) *Pattern {
	p := New(name)
	idx := labeled(p, n, labels)
	for i := 1; i < n; i++ {
		p.MustAddEdge(idx[0], idx[i], false, false)
	}
	return p
}

// CoordinatorTriad builds the brokerage triad of Table I row 4:
// ?A->?B; ?B->?C; ?A!->?C with all three nodes sharing the same LABEL, and
// a "coordinator" subpattern containing the middle node ?B.
func CoordinatorTriad(name string) *Pattern {
	p := New(name)
	a := p.MustAddNode("A", "")
	b := p.MustAddNode("B", "")
	c := p.MustAddNode("C", "")
	p.MustAddEdge(a, b, true, false)
	p.MustAddEdge(b, c, true, false)
	p.MustAddEdge(a, c, true, true)
	p.AddPredicate(Predicate{Op: OpEq, L: NodeAttr(a, "LABEL"), R: NodeAttr(b, "LABEL")})
	p.AddPredicate(Predicate{Op: OpEq, L: NodeAttr(b, "LABEL"), R: NodeAttr(c, "LABEL")})
	if err := p.AddSubpattern("coordinator", []int{b}); err != nil {
		panic(err)
	}
	return p
}

// UnstableTriangle builds the structural-balance pattern: a triangle with
// an odd number of negative "sign" edges is unstable. oddNeg picks which of
// the two unstable configurations to build: 1 or 3 negative edges.
func UnstableTriangle(name string, numNeg int) *Pattern {
	if numNeg != 1 && numNeg != 3 {
		panic("pattern: unstable triangles have 1 or 3 negative edges")
	}
	p := Clique(name, 3, nil)
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	for i, pr := range pairs {
		sign := "+"
		if i < numNeg {
			sign = "-"
		}
		p.AddPredicate(Predicate{Op: OpEq, L: EdgeAttr(pr[0], pr[1], "sign"), R: Const(sign)})
	}
	return p
}
