package pattern

import (
	"reflect"
	"strings"
	"testing"

	"egocensus/internal/graph"
)

func TestAddNodeDuplicateVar(t *testing.T) {
	p := New("t")
	if _, err := p.AddNode("A", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddNode("A", ""); err == nil {
		t.Fatal("duplicate variable should error")
	}
	if _, err := p.AddNode("", ""); err == nil {
		t.Fatal("empty variable should error")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	p := New("t")
	a := p.MustAddNode("A", "")
	if err := p.AddEdge(a, a, false, false); err == nil {
		t.Fatal("self loop should error")
	}
	if err := p.AddEdge(a, 5, false, false); err == nil {
		t.Fatal("out of range endpoint should error")
	}
}

func TestValidateConnectivity(t *testing.T) {
	p := New("t")
	a := p.MustAddNode("A", "")
	b := p.MustAddNode("B", "")
	if err := p.Validate(); err == nil {
		t.Fatal("disconnected pattern should fail validation")
	}
	p.MustAddEdge(a, b, false, true) // negated edge does not connect
	if err := p.Validate(); err == nil {
		t.Fatal("negated edges must not count for connectivity")
	}
	p.MustAddEdge(a, b, false, false)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := New("empty").Validate(); err == nil {
		t.Fatal("empty pattern should fail validation")
	}
}

func TestPositiveNeighbors(t *testing.T) {
	p := CoordinatorTriad("triad")
	// A->B, B->C positive; A!->C negated.
	if got := p.PositiveNeighbors(0); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("N(A) = %v", got)
	}
	if got := p.PositiveNeighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("N(B) = %v", got)
	}
}

func TestDistancesAndPivot(t *testing.T) {
	p := Chain("chain5", 5, nil)
	d := p.Distances()
	if d[0][4] != 4 || d[1][3] != 2 || d[2][2] != 0 {
		t.Fatalf("distances wrong: %v", d)
	}
	pivot, ecc := p.Pivot(nil)
	if pivot != 2 || ecc != 2 {
		t.Fatalf("pivot = %d ecc = %d, want middle node with ecc 2", pivot, ecc)
	}
	// Restricted pivot selection (subpattern handling).
	pivot, ecc = p.Pivot([]int{0, 1})
	if pivot != 1 || ecc != 3 {
		t.Fatalf("restricted pivot = %d ecc = %d", pivot, ecc)
	}
}

func TestPivotClique(t *testing.T) {
	p := Clique("clq3", 3, nil)
	_, ecc := p.Pivot(nil)
	if ecc != 1 {
		t.Fatalf("clique eccentricity = %d want 1", ecc)
	}
}

func TestSearchOrderConnectedPrefix(t *testing.T) {
	for _, p := range []*Pattern{
		Chain("c6", 6, nil),
		Clique("k4", 4, nil),
		Square("sq", nil),
		Star("st5", 5, nil),
		CoordinatorTriad("triad"),
	} {
		order := p.SearchOrder()
		if len(order) != p.NumNodes() {
			t.Fatalf("%s: order length %d", p.Name, len(order))
		}
		seen := map[int]bool{order[0]: true}
		for _, idx := range order[1:] {
			connected := false
			for _, nb := range p.PositiveNeighbors(idx) {
				if seen[nb] {
					connected = true
					break
				}
			}
			if !connected {
				t.Fatalf("%s: node %d not connected to prefix in order %v", p.Name, idx, order)
			}
			seen[idx] = true
		}
	}
}

func TestSearchOrderPrefersConstrained(t *testing.T) {
	p := New("t")
	a := p.MustAddNode("A", "")
	b := p.MustAddNode("B", "x")
	p.MustAddEdge(a, b, false, false)
	if got := p.SearchOrder()[0]; got != b {
		t.Fatalf("order starts at %d, want labeled node %d", got, b)
	}
}

func TestSubpattern(t *testing.T) {
	p := Clique("k3", 3, nil)
	if err := p.AddSubpattern("s", []int{2, 0}); err != nil {
		t.Fatal(err)
	}
	got, ok := p.Subpattern("s")
	if !ok || !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Subpattern = %v,%v", got, ok)
	}
	if err := p.AddSubpattern("s", []int{1}); err == nil {
		t.Fatal("duplicate subpattern should error")
	}
	if err := p.AddSubpattern("t", nil); err == nil {
		t.Fatal("empty subpattern should error")
	}
	if err := p.AddSubpattern("u", []int{9}); err == nil {
		t.Fatal("out-of-range subpattern should error")
	}
}

func TestPredicateEval(t *testing.T) {
	g := graph.New(false)
	a, b := g.AddNode(), g.AddNode()
	g.SetLabel(a, "x")
	g.SetLabel(b, "x")
	g.SetNodeAttr(a, "age", "30")
	g.SetNodeAttr(b, "age", "9")
	e := g.AddEdge(a, b)
	g.SetEdgeAttr(e, "sign", "-")

	p := New("t")
	pa := p.MustAddNode("A", "")
	pb := p.MustAddNode("B", "")
	p.MustAddEdge(pa, pb, false, false)
	m := Match{a, b}

	cases := []struct {
		pred Predicate
		want bool
	}{
		{Predicate{OpEq, NodeAttr(pa, "LABEL"), NodeAttr(pb, "LABEL")}, true},
		{Predicate{OpEq, NodeAttr(pa, "label"), Const("x")}, true},
		{Predicate{OpNe, NodeAttr(pa, "LABEL"), NodeAttr(pb, "LABEL")}, false},
		// numeric comparison: 30 > 9 numerically, but "30" < "9" as strings
		{Predicate{OpGt, NodeAttr(pa, "age"), NodeAttr(pb, "age")}, true},
		{Predicate{OpLt, NodeAttr(pa, "age"), Const("100")}, true},
		{Predicate{OpEq, EdgeAttr(pa, pb, "sign"), Const("-")}, true},
		{Predicate{OpEq, EdgeAttr(pb, pa, "sign"), Const("-")}, true}, // either direction
		{Predicate{OpEq, NodeAttr(pa, "missing"), Const("x")}, false},
	}
	for i, c := range cases {
		if got := c.pred.Eval(g, m); got != c.want {
			t.Errorf("case %d (%s): got %v want %v", i, c.pred.render(p), got, c.want)
		}
	}
}

func TestCompareStringFallback(t *testing.T) {
	if !Compare(OpLt, "apple", "banana") {
		t.Fatal("string compare failed")
	}
	if Compare(OpEq, "1.0", "one") {
		t.Fatal("mixed numeric/string must fall back to string compare")
	}
	if !Compare(OpEq, "1.0", "1") {
		t.Fatal("numeric equality should coerce")
	}
	if !Compare(OpGe, "5", "5") || !Compare(OpLe, "5", "5") || Compare(OpNe, "5", "5.0") {
		t.Fatal("numeric comparisons wrong")
	}
}

func TestEvalAllNegatedEdges(t *testing.T) {
	g := graph.New(false)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, b)
	g.AddEdge(b, c)

	p := New("path-no-chord")
	pa := p.MustAddNode("A", "")
	pb := p.MustAddNode("B", "")
	pc := p.MustAddNode("C", "")
	p.MustAddEdge(pa, pb, false, false)
	p.MustAddEdge(pb, pc, false, false)
	p.MustAddEdge(pa, pc, false, true)

	if !p.EvalAll(g, Match{a, b, c}) {
		t.Fatal("open path should satisfy the negated chord")
	}
	g.AddEdge(a, c)
	if p.EvalAll(g, Match{a, b, c}) {
		t.Fatal("closing the chord should violate the negated edge")
	}
}

func TestEvalAllDirectedNegation(t *testing.T) {
	g := graph.New(true)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(b, a) // only b->a exists

	p := New("t")
	pa := p.MustAddNode("A", "")
	pb := p.MustAddNode("B", "")
	p.MustAddEdge(pa, pb, true, true) // assert no a->b
	// keep connectivity via a positive undirected edge
	p.MustAddEdge(pa, pb, false, false)
	if !p.EvalAll(g, Match{a, b}) {
		t.Fatal("directed negation should only consider a->b")
	}
	g.AddEdge(a, b)
	if p.EvalAll(g, Match{a, b}) {
		t.Fatal("a->b now exists; negation must fail")
	}
}

func TestMatchKeyDedup(t *testing.T) {
	p := Clique("k3", 3, nil)
	m1 := Match{5, 7, 9}
	m2 := Match{9, 5, 7} // automorphic re-assignment of the same triangle
	if p.Key(m1, nil) != p.Key(m2, nil) {
		t.Fatal("automorphic embeddings of a clique must share a key")
	}
	m3 := Match{5, 7, 10}
	if p.Key(m1, nil) == p.Key(m3, nil) {
		t.Fatal("different subgraphs must have different keys")
	}
	// With a subpattern image, automorphic re-assignments are distinct.
	if p.Key(m1, []int{0}) == p.Key(m2, []int{0}) {
		t.Fatal("subpattern image must distinguish automorphic embeddings")
	}
}

func TestMatchKeyDirectionMatters(t *testing.T) {
	p := New("t")
	a := p.MustAddNode("A", "")
	b := p.MustAddNode("B", "")
	p.MustAddEdge(a, b, true, false)
	k1 := p.Key(Match{1, 2}, nil)
	k2 := p.Key(Match{2, 1}, nil)
	if k1 == k2 {
		t.Fatal("directed edge image must be orientation-sensitive")
	}
}

func TestLibraryShapes(t *testing.T) {
	if p := Clique("clq4", 4, []string{"a", "b", "c", "d"}); p.NumNodes() != 4 || len(p.Edges()) != 6 {
		t.Fatal("clq4 shape wrong")
	}
	if p := Square("sqr", nil); p.NumNodes() != 4 || len(p.Edges()) != 4 {
		t.Fatal("sqr shape wrong")
	}
	if p := Star("star", 5, nil); len(p.PositiveNeighbors(0)) != 4 {
		t.Fatal("star hub degree wrong")
	}
	if p := SingleNode("n", "x"); p.NumNodes() != 1 || p.Node(0).Label != "x" {
		t.Fatal("single node wrong")
	}
	if p := SingleEdge("e", nil); len(p.Edges()) != 1 {
		t.Fatal("single edge wrong")
	}
	triad := CoordinatorTriad("triad")
	if err := triad.Validate(); err != nil {
		t.Fatal(err)
	}
	ut := UnstableTriangle("ut", 1)
	if len(ut.Predicates()) != 3 {
		t.Fatal("unstable triangle predicates missing")
	}
}

func TestStringRendersSyntax(t *testing.T) {
	p := CoordinatorTriad("triad")
	s := p.String()
	for _, frag := range []string{"PATTERN triad {", "?A->?B;", "?A!->?C;", "SUBPATTERN coordinator {?B;}"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() missing %q:\n%s", frag, s)
		}
	}
	single := SingleNode("n", "")
	if !strings.Contains(single.String(), "?A;") {
		t.Fatalf("single node render: %s", single.String())
	}
}

func TestLabeledPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong label count")
		}
	}()
	Clique("bad", 3, []string{"a"})
}
