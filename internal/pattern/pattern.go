// Package pattern models the pattern graphs of the census language: nodes
// bound to variables, undirected / directed / negated edges, attribute
// predicates, and subpatterns (Section II of the paper). It also provides
// the structural machinery the evaluation algorithms need: pattern distance
// matrices, eccentricity-minimizing pivot selection, connected-prefix
// search orders, and canonical match keys for deduplicating automorphic
// embeddings.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"egocensus/internal/graph"
)

// Node is a pattern node: a variable with an optional label constraint.
type Node struct {
	Var   string // variable name, e.g. "A"
	Label string // required node label; "" means unconstrained
}

// Edge is a pattern edge between the nodes at indices From and To.
// A Negated edge asserts the corresponding graph edge must NOT exist; it
// does not contribute to pattern connectivity.
type Edge struct {
	From, To int
	Directed bool
	Negated  bool
}

// Pattern is a pattern graph.
type Pattern struct {
	Name  string
	nodes []Node
	edges []Edge
	preds []Predicate
	subs  map[string][]int // subpattern name -> node indices

	varIndex map[string]int
	adj      [][]int // positive-edge neighbor indices (both directions), deduplicated
}

// New returns an empty pattern with the given name.
func New(name string) *Pattern {
	return &Pattern{Name: name, varIndex: map[string]int{}, subs: map[string][]int{}}
}

// AddNode adds a pattern node and returns its index. The label constraint
// may be empty. Duplicate variables are rejected.
func (p *Pattern) AddNode(variable, label string) (int, error) {
	if variable == "" {
		return 0, fmt.Errorf("pattern %s: empty variable name", p.Name)
	}
	if _, dup := p.varIndex[variable]; dup {
		return 0, fmt.Errorf("pattern %s: duplicate variable ?%s", p.Name, variable)
	}
	idx := len(p.nodes)
	p.nodes = append(p.nodes, Node{Var: variable, Label: label})
	p.varIndex[variable] = idx
	p.adj = nil
	return idx, nil
}

// MustAddNode is AddNode for programmatic pattern construction.
func (p *Pattern) MustAddNode(variable, label string) int {
	idx, err := p.AddNode(variable, label)
	if err != nil {
		panic(err)
	}
	return idx
}

// SetLabel sets (or clears) the label constraint of node idx.
func (p *Pattern) SetLabel(idx int, label string) {
	p.nodes[idx].Label = label
}

// NodeIndex resolves a variable name to its node index.
func (p *Pattern) NodeIndex(variable string) (int, bool) {
	idx, ok := p.varIndex[variable]
	return idx, ok
}

// AddEdge adds an edge between existing node indices.
func (p *Pattern) AddEdge(from, to int, directed, negated bool) error {
	if from < 0 || from >= len(p.nodes) || to < 0 || to >= len(p.nodes) {
		return fmt.Errorf("pattern %s: edge endpoint out of range", p.Name)
	}
	if from == to {
		return fmt.Errorf("pattern %s: self loop on ?%s", p.Name, p.nodes[from].Var)
	}
	p.edges = append(p.edges, Edge{From: from, To: to, Directed: directed, Negated: negated})
	p.adj = nil
	return nil
}

// MustAddEdge is AddEdge for programmatic pattern construction.
func (p *Pattern) MustAddEdge(from, to int, directed, negated bool) {
	if err := p.AddEdge(from, to, directed, negated); err != nil {
		panic(err)
	}
}

// AddPredicate attaches an attribute predicate.
func (p *Pattern) AddPredicate(pred Predicate) { p.preds = append(p.preds, pred) }

// AddSubpattern registers a named subpattern over the given node indices.
func (p *Pattern) AddSubpattern(name string, nodes []int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("pattern %s: subpattern %s is empty", p.Name, name)
	}
	if _, dup := p.subs[name]; dup {
		return fmt.Errorf("pattern %s: duplicate subpattern %s", p.Name, name)
	}
	for _, idx := range nodes {
		if idx < 0 || idx >= len(p.nodes) {
			return fmt.Errorf("pattern %s: subpattern %s node out of range", p.Name, name)
		}
	}
	sorted := append([]int(nil), nodes...)
	sort.Ints(sorted)
	p.subs[name] = sorted
	return nil
}

// Subpattern returns the sorted node indices of a named subpattern.
func (p *Pattern) Subpattern(name string) ([]int, bool) {
	s, ok := p.subs[name]
	return s, ok
}

// SubpatternNames returns the sorted names of all subpatterns.
func (p *Pattern) SubpatternNames() []string {
	names := make([]string, 0, len(p.subs))
	for n := range p.subs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumNodes returns the number of pattern nodes.
func (p *Pattern) NumNodes() int { return len(p.nodes) }

// Node returns the node at index i.
func (p *Pattern) Node(i int) Node { return p.nodes[i] }

// Edges returns the pattern's edges (shared slice; do not modify).
func (p *Pattern) Edges() []Edge { return p.edges }

// Predicates returns the pattern's predicates (shared slice; do not modify).
func (p *Pattern) Predicates() []Predicate { return p.preds }

// PositiveNeighbors returns the deduplicated indices of nodes connected to
// i by a non-negated edge in either direction.
func (p *Pattern) PositiveNeighbors(i int) []int {
	p.buildAdj()
	return p.adj[i]
}

func (p *Pattern) buildAdj() {
	if p.adj != nil {
		return
	}
	adj := make([][]int, len(p.nodes))
	seen := make([]map[int]bool, len(p.nodes))
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	add := func(a, b int) {
		if !seen[a][b] {
			seen[a][b] = true
			adj[a] = append(adj[a], b)
		}
	}
	for _, e := range p.edges {
		if e.Negated {
			continue
		}
		add(e.From, e.To)
		add(e.To, e.From)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	p.adj = adj
}

// Validate checks the structural invariants the evaluation algorithms rely
// on: at least one node, and connectivity through positive edges.
func (p *Pattern) Validate() error {
	if len(p.nodes) == 0 {
		return fmt.Errorf("pattern %s: no nodes", p.Name)
	}
	p.buildAdj()
	visited := make([]bool, len(p.nodes))
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range p.adj[n] {
			if !visited[m] {
				visited[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	if count != len(p.nodes) {
		return fmt.Errorf("pattern %s: not connected through positive edges", p.Name)
	}
	for _, pred := range p.preds {
		if err := pred.validate(p); err != nil {
			return err
		}
	}
	return nil
}

// Distances returns the all-pairs hop-distance matrix over positive edges
// (direction ignored). Entry [i][j] is the hop count, or NumNodes() (an
// unreachable sentinel larger than any real distance) if disconnected —
// Validate rejects such patterns.
func (p *Pattern) Distances() [][]int {
	p.buildAdj()
	n := len(p.nodes)
	d := make([][]int, n)
	for i := range d {
		row := make([]int, n)
		for j := range row {
			row[j] = n
		}
		row[i] = 0
		queue := []int{i}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range p.adj[u] {
				if row[v] > row[u]+1 {
					row[v] = row[u] + 1
					queue = append(queue, v)
				}
			}
		}
		d[i] = row
	}
	return d
}

// Pivot returns the eccentricity-minimizing pattern node restricted to the
// candidate set (Section IV-A1: v = argmin_x max_y d(x,y)), along with its
// eccentricity max_v. candidates nil means all nodes.
func (p *Pattern) Pivot(candidates []int) (pivot, maxDist int) {
	d := p.Distances()
	if candidates == nil {
		candidates = make([]int, len(p.nodes))
		for i := range candidates {
			candidates[i] = i
		}
	}
	pivot, maxDist = -1, int(^uint(0)>>1)
	for _, i := range candidates {
		ecc := 0
		for j := range p.nodes {
			if d[i][j] > ecc {
				ecc = d[i][j]
			}
		}
		if ecc < maxDist {
			pivot, maxDist = i, ecc
		}
	}
	return pivot, maxDist
}

// SearchOrder returns a permutation of node indices such that every prefix
// is connected through positive edges (required by the match-extraction
// join of Algorithm 1). The heuristic starts from the most constrained node
// (label constraint, then highest positive degree) and greedily appends the
// neighbor with the most edges into the prefix.
func (p *Pattern) SearchOrder() []int {
	p.buildAdj()
	n := len(p.nodes)
	if n == 0 {
		return nil
	}
	score := func(i int) int {
		s := len(p.adj[i]) * 2
		if p.nodes[i].Label != "" {
			s++
		}
		return s
	}
	start := 0
	for i := 1; i < n; i++ {
		if score(i) > score(start) {
			start = i
		}
	}
	order := []int{start}
	inOrder := make([]bool, n)
	inOrder[start] = true
	for len(order) < n {
		best, bestLinks := -1, -1
		for i := 0; i < n; i++ {
			if inOrder[i] {
				continue
			}
			links := 0
			for _, j := range p.adj[i] {
				if inOrder[j] {
					links++
				}
			}
			if links == 0 {
				continue
			}
			if links > bestLinks || (links == bestLinks && score(i) > score(best)) {
				best, bestLinks = i, links
			}
		}
		if best < 0 {
			// Disconnected pattern; Validate would have rejected it, but
			// degrade gracefully by appending remaining nodes.
			for i := 0; i < n; i++ {
				if !inOrder[i] {
					best = i
					break
				}
			}
		}
		order = append(order, best)
		inOrder[best] = true
	}
	return order
}

// String renders the pattern in the language's PATTERN syntax.
func (p *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PATTERN %s {\n", p.Name)
	if len(p.edges) == 0 {
		for _, n := range p.nodes {
			fmt.Fprintf(&b, "  ?%s;\n", n.Var)
		}
	}
	for _, e := range p.edges {
		op := "-"
		if e.Directed {
			op = "->"
		}
		if e.Negated {
			op = "!" + op
		}
		fmt.Fprintf(&b, "  ?%s%s?%s;\n", p.nodes[e.From].Var, op, p.nodes[e.To].Var)
	}
	for _, n := range p.nodes {
		if n.Label != "" {
			fmt.Fprintf(&b, "  [?%s.LABEL='%s'];\n", n.Var, n.Label)
		}
	}
	for _, pred := range p.preds {
		fmt.Fprintf(&b, "  [%s];\n", pred.render(p))
	}
	for _, name := range p.SubpatternNames() {
		vars := make([]string, 0)
		for _, idx := range p.subs[name] {
			vars = append(vars, "?"+p.nodes[idx].Var)
		}
		fmt.Fprintf(&b, "  SUBPATTERN %s {%s;}\n", name, strings.Join(vars, ";"))
	}
	b.WriteString("}")
	return b.String()
}

// Match is an embedding of a pattern into a database graph: Match[i] is the
// image of pattern node i.
type Match []graph.NodeID

// Key returns a canonical identity for the *subgraph* a match denotes, used
// to deduplicate automorphic embeddings: the sorted node set plus the image
// of every (non-negated) pattern edge, plus — when a subpattern is
// designated — the ordered subpattern image, so that automorphic
// re-assignments of the subpattern count separately (Table I row 4
// semantics). subNodes is nil when no subpattern is in play.
func (p *Pattern) Key(m Match, subNodes []int) string {
	nodes := make([]int, len(m))
	for i, v := range m {
		nodes[i] = int(v)
	}
	sort.Ints(nodes)
	var b strings.Builder
	for _, v := range nodes {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte('|')
	type pair struct{ a, b int }
	eps := make([]pair, 0, len(p.edges))
	for _, e := range p.edges {
		if e.Negated {
			continue
		}
		a, bb := int(m[e.From]), int(m[e.To])
		if !e.Directed && a > bb {
			a, bb = bb, a
		}
		// Directed and undirected image edges are kept distinct.
		if e.Directed {
			eps = append(eps, pair{a, -bb - 1})
		} else {
			eps = append(eps, pair{a, bb})
		}
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].a != eps[j].a {
			return eps[i].a < eps[j].a
		}
		return eps[i].b < eps[j].b
	})
	for _, e := range eps {
		fmt.Fprintf(&b, "%d:%d,", e.a, e.b)
	}
	if subNodes != nil {
		b.WriteByte('|')
		for _, idx := range subNodes {
			fmt.Fprintf(&b, "%d,", m[idx])
		}
	}
	return b.String()
}

// AppendKey appends a compact binary encoding of the same match identity as
// Key to dst and returns the extended buffer: two AppendKey results for the
// same pattern are equal exactly when the Key strings are. The census
// deduplication loops call it with a reused buffer instead of Key, which
// allocates a formatted string per embedding.
func (p *Pattern) AppendKey(dst []byte, m Match, subNodes []int) []byte {
	// Sorted node multiset. Patterns are small; insertion sort in a stack
	// buffer avoids the sort.Ints allocation.
	var nbuf [12]int32
	nodes := nbuf[:0]
	for _, v := range m {
		nodes = append(nodes, int32(v))
	}
	insertionSortInt32(nodes)
	for _, v := range nodes {
		dst = appendInt32(dst, v)
	}
	// Canonical positive-edge image list, encoded like Key: directed edges
	// flip the second endpoint to -b-1 so orientation participates in
	// identity.
	var ebuf [24]int32
	eps := ebuf[:0]
	for _, e := range p.edges {
		if e.Negated {
			continue
		}
		a, b := int32(m[e.From]), int32(m[e.To])
		if !e.Directed && a > b {
			a, b = b, a
		}
		if e.Directed {
			b = -b - 1
		}
		eps = append(eps, a, b)
	}
	insertionSortPairs(eps)
	for _, v := range eps {
		dst = appendInt32(dst, v)
	}
	// All sections are fixed-width per pattern, so no separators are needed
	// for injectivity.
	for _, idx := range subNodes {
		dst = appendInt32(dst, int32(m[idx]))
	}
	return dst
}

func appendInt32(dst []byte, v int32) []byte {
	u := uint32(v)
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

func insertionSortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// insertionSortPairs sorts a flat (a, b) pair list lexicographically.
func insertionSortPairs(s []int32) {
	for i := 2; i < len(s); i += 2 {
		for j := i; j > 0 && (s[j] < s[j-2] || (s[j] == s[j-2] && s[j+1] < s[j-1])); j -= 2 {
			s[j], s[j-2] = s[j-2], s[j]
			s[j+1], s[j-1] = s[j-1], s[j+1]
		}
	}
}
