package pattern

import (
	"fmt"
	"strconv"
	"strings"

	"egocensus/internal/graph"
)

// CmpOp is a comparison operator in an attribute predicate.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in query syntax.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Operand is one side of a predicate: a node attribute reference
// (?A.attr), an edge attribute reference (EDGE(?A,?B).attr), a constant,
// or an unbound $name parameter slot.
type Operand struct {
	// Node >= 0 selects a node-attribute reference on that pattern node.
	Node int
	// EdgeFrom/EdgeTo >= 0 select an edge-attribute reference on the edge
	// between those pattern nodes (in either direction for undirected
	// pattern edges).
	EdgeFrom, EdgeTo int
	// Attr is the attribute name for node/edge references.
	Attr string
	// Const holds the literal for constant operands.
	Const string
	// ParamName marks an unbound parameter slot ($name): the pattern
	// cannot be matched until BindParams substitutes a constant.
	ParamName string
}

// NodeAttr returns an operand referencing attr of pattern node idx.
func NodeAttr(idx int, attr string) Operand {
	return Operand{Node: idx, EdgeFrom: -1, EdgeTo: -1, Attr: attr}
}

// EdgeAttr returns an operand referencing attr of the pattern edge between
// nodes a and b.
func EdgeAttr(a, b int, attr string) Operand {
	return Operand{Node: -1, EdgeFrom: a, EdgeTo: b, Attr: attr}
}

// Const returns a constant operand.
func Const(v string) Operand {
	return Operand{Node: -1, EdgeFrom: -1, EdgeTo: -1, Const: v}
}

// Param returns an unbound parameter-slot operand ($name); BindParams
// substitutes the value at execution time.
func Param(name string) Operand {
	return Operand{Node: -1, EdgeFrom: -1, EdgeTo: -1, ParamName: name}
}

func (o Operand) isConst() bool { return o.Node < 0 && o.EdgeFrom < 0 && o.ParamName == "" }

func (o Operand) isParam() bool { return o.ParamName != "" }

// Predicate is a comparison between two operands, evaluated on a candidate
// match.
type Predicate struct {
	Op   CmpOp
	L, R Operand
}

func (pr Predicate) validate(p *Pattern) error {
	for _, o := range []Operand{pr.L, pr.R} {
		if o.Node >= len(p.nodes) || o.EdgeFrom >= len(p.nodes) || o.EdgeTo >= len(p.nodes) {
			return fmt.Errorf("pattern %s: predicate references unknown node", p.Name)
		}
		if o.EdgeFrom >= 0 && o.EdgeTo < 0 {
			return fmt.Errorf("pattern %s: malformed edge operand", p.Name)
		}
	}
	return nil
}

func (o Operand) render(p *Pattern) string {
	switch {
	case o.Node >= 0:
		return fmt.Sprintf("?%s.%s", p.nodes[o.Node].Var, o.Attr)
	case o.EdgeFrom >= 0:
		return fmt.Sprintf("EDGE(?%s,?%s).%s", p.nodes[o.EdgeFrom].Var, p.nodes[o.EdgeTo].Var, o.Attr)
	case o.isParam():
		return "$" + o.ParamName
	default:
		return "'" + o.Const + "'"
	}
}

func (pr Predicate) render(p *Pattern) string {
	return pr.L.render(p) + pr.Op.String() + pr.R.render(p)
}

// value resolves the operand against a match; ok is false when the
// referenced attribute or edge is absent (the predicate then fails).
func (o Operand) value(g *graph.Graph, m Match) (string, bool) {
	switch {
	case o.isParam():
		// Unbound parameter slots never match; executions must substitute
		// them via BindParams first.
		return "", false
	case o.Node >= 0:
		attr := o.Attr
		if strings.EqualFold(attr, graph.LabelAttr) {
			attr = graph.LabelAttr
		}
		return g.NodeAttr(m[o.Node], attr)
	case o.EdgeFrom >= 0:
		e := g.FindEdge(m[o.EdgeFrom], m[o.EdgeTo])
		if e < 0 {
			e = g.FindEdge(m[o.EdgeTo], m[o.EdgeFrom])
		}
		if e < 0 {
			return "", false
		}
		return g.EdgeAttr(e, o.Attr)
	default:
		return o.Const, true
	}
}

// Eval evaluates the predicate on match m in g. Comparisons are numeric
// when both sides parse as numbers, string otherwise. Missing attributes
// make the predicate false.
func (pr Predicate) Eval(g *graph.Graph, m Match) bool {
	lv, lok := pr.L.value(g, m)
	rv, rok := pr.R.value(g, m)
	if !lok || !rok {
		return false
	}
	return Compare(pr.Op, lv, rv)
}

// Compare applies op to two attribute values with numeric coercion.
func Compare(op CmpOp, l, r string) bool {
	if lf, errL := strconv.ParseFloat(l, 64); errL == nil {
		if rf, errR := strconv.ParseFloat(r, 64); errR == nil {
			switch op {
			case OpEq:
				return lf == rf
			case OpNe:
				return lf != rf
			case OpLt:
				return lf < rf
			case OpLe:
				return lf <= rf
			case OpGt:
				return lf > rf
			case OpGe:
				return lf >= rf
			}
		}
	}
	switch op {
	case OpEq:
		return l == r
	case OpNe:
		return l != r
	case OpLt:
		return l < r
	case OpLe:
		return l <= r
	case OpGt:
		return l > r
	case OpGe:
		return l >= r
	}
	return false
}

// EvalAll reports whether every pattern predicate holds on m, and that
// every negated pattern edge is absent from g under m. This is the "final
// filtering step" of the paper's footnote 1.
func (p *Pattern) EvalAll(g *graph.Graph, m Match) bool {
	for _, e := range p.edges {
		if !e.Negated {
			continue
		}
		if e.Directed {
			if g.FindEdge(m[e.From], m[e.To]) >= 0 {
				return false
			}
		} else {
			if g.FindEdge(m[e.From], m[e.To]) >= 0 || g.FindEdge(m[e.To], m[e.From]) >= 0 {
				return false
			}
		}
	}
	for _, pr := range p.preds {
		if !pr.Eval(g, m) {
			return false
		}
	}
	return true
}
