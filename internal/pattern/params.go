package pattern

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file implements query parameterization for pattern predicates
// ($name slots in attribute values) and the canonical binary encoding the
// prepared-query fingerprint is built over. Parameter slots are part of a
// pattern's identity; the values bound to them are not.

// HasParams reports whether any predicate operand is an unbound $name slot.
func (p *Pattern) HasParams() bool {
	for _, pred := range p.preds {
		if pred.L.isParam() || pred.R.isParam() {
			return true
		}
	}
	return false
}

// ParamNames returns the sorted, deduplicated names of the pattern's
// parameter slots (empty for a fully bound pattern).
func (p *Pattern) ParamNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, pred := range p.preds {
		for _, o := range []Operand{pred.L, pred.R} {
			if o.isParam() && !seen[o.ParamName] {
				seen[o.ParamName] = true
				out = append(out, o.ParamName)
			}
		}
	}
	sort.Strings(out)
	return out
}

// BindParams substitutes parameter slots with constants from vals,
// returning a new pattern safe to match. A pattern without slots is
// returned unchanged (no copy). Missing values are an error; extra entries
// in vals are ignored.
func (p *Pattern) BindParams(vals map[string]string) (*Pattern, error) {
	if !p.HasParams() {
		return p, nil
	}
	bind := func(o Operand) (Operand, error) {
		if !o.isParam() {
			return o, nil
		}
		v, ok := vals[o.ParamName]
		if !ok {
			return o, fmt.Errorf("pattern %s: missing parameter $%s", p.Name, o.ParamName)
		}
		return Const(v), nil
	}
	preds := make([]Predicate, len(p.preds))
	for i, pred := range p.preds {
		l, err := bind(pred.L)
		if err != nil {
			return nil, err
		}
		r, err := bind(pred.R)
		if err != nil {
			return nil, err
		}
		preds[i] = Predicate{Op: pred.Op, L: l, R: r}
	}
	b := &Pattern{
		Name:     p.Name,
		nodes:    p.nodes,
		edges:    p.edges,
		preds:    preds,
		subs:     p.subs,
		varIndex: p.varIndex,
	}
	return b, nil
}

// AppendCanonical appends a deterministic binary encoding of the pattern's
// structure to dst: nodes (variable, label) in index order, edges in
// declaration order, predicates in declaration order, and subpatterns in
// sorted-name order. Parameter slots encode by name only — two patterns
// differing only in bound values encode identically, which is exactly what
// the prepared-query fingerprint needs.
func (p *Pattern) AppendCanonical(dst []byte) []byte {
	var num [binary.MaxVarintLen64]byte
	putInt := func(v int) {
		n := binary.PutVarint(num[:], int64(v))
		dst = append(dst, num[:n]...)
	}
	putStr := func(s string) {
		putInt(len(s))
		dst = append(dst, s...)
	}
	putOperand := func(o Operand) {
		switch {
		case o.Node >= 0:
			dst = append(dst, 'n')
			putInt(o.Node)
			putStr(o.Attr)
		case o.EdgeFrom >= 0:
			dst = append(dst, 'e')
			putInt(o.EdgeFrom)
			putInt(o.EdgeTo)
			putStr(o.Attr)
		case o.isParam():
			dst = append(dst, '$')
			putStr(o.ParamName)
		default:
			dst = append(dst, 'c')
			putStr(o.Const)
		}
	}
	putStr(p.Name)
	putInt(len(p.nodes))
	for _, n := range p.nodes {
		putStr(n.Var)
		putStr(n.Label)
	}
	putInt(len(p.edges))
	for _, e := range p.edges {
		putInt(e.From)
		putInt(e.To)
		flags := byte(0)
		if e.Directed {
			flags |= 1
		}
		if e.Negated {
			flags |= 2
		}
		dst = append(dst, flags)
	}
	putInt(len(p.preds))
	for _, pred := range p.preds {
		putInt(int(pred.Op))
		putOperand(pred.L)
		putOperand(pred.R)
	}
	names := p.SubpatternNames()
	putInt(len(names))
	for _, name := range names {
		putStr(name)
		putInt(len(p.subs[name]))
		for _, idx := range p.subs[name] {
			putInt(idx)
		}
	}
	return dst
}
