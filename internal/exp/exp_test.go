package exp

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func runFig(t *testing.T, id string) []Measurement {
	t.Helper()
	fig, err := FigureByID(id)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := fig.Run(Config{Scale: Unit, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatalf("figure %s produced no measurements", id)
	}
	return ms
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"unit", "Small", "PAPER"} {
		if _, err := ParseScale(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale should error")
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	if len(figs) != 9 {
		t.Fatalf("figures = %d want 9", len(figs))
	}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.Run == nil {
			t.Fatalf("incomplete figure %+v", f)
		}
	}
	if _, err := FigureByID("nope"); err == nil {
		t.Fatal("unknown figure should error")
	}
}

// CN and GQL must agree on match counts within each (size, pattern) cell.
func TestFig4aConsistency(t *testing.T) {
	ms := runFig(t, "4a")
	byCell := map[string]map[string]string{}
	for _, m := range ms {
		size, _ := m.Get("size")
		pat, _ := m.Get("pattern")
		alg, _ := m.Get("alg")
		matches, _ := m.Get("matches")
		key := size + "/" + pat
		if byCell[key] == nil {
			byCell[key] = map[string]string{}
		}
		byCell[key][alg] = matches
	}
	for cell, algs := range byCell {
		if algs["CN"] != algs["GQL"] {
			t.Fatalf("cell %s: CN found %s matches, GQL %s", cell, algs["CN"], algs["GQL"])
		}
	}
}

func TestFig4bConsistency(t *testing.T) {
	ms := runFig(t, "4b")
	byPattern := map[string]map[string]string{}
	for _, m := range ms {
		pat, _ := m.Get("pattern")
		alg, _ := m.Get("alg")
		matches, _ := m.Get("matches")
		if byPattern[pat] == nil {
			byPattern[pat] = map[string]string{}
		}
		byPattern[pat][alg] = matches
	}
	if len(byPattern) != 3 {
		t.Fatalf("patterns = %d want 3", len(byPattern))
	}
	for pat, algs := range byPattern {
		if algs["CN"] != algs["GQL"] {
			t.Fatalf("pattern %s: CN %s vs GQL %s", pat, algs["CN"], algs["GQL"])
		}
	}
}

// All census algorithms within a (size) cell must report the same total
// count — the cross-algorithm consistency the paper's plots rely on.
func TestFig4cTotalsAgree(t *testing.T) {
	ms := runFig(t, "4c")
	bySize := map[string]map[string]string{}
	for _, m := range ms {
		size, _ := m.Get("size")
		alg, _ := m.Get("alg")
		total, _ := m.Get("totalCount")
		if bySize[size] == nil {
			bySize[size] = map[string]string{}
		}
		bySize[size][alg] = total
	}
	for size, algs := range bySize {
		var want string
		for alg, total := range algs {
			if want == "" {
				want = total
			} else if total != want {
				t.Fatalf("size %s: %s total %s differs from %s", size, alg, total, want)
			}
		}
	}
	// ND-BAS appears only at the smallest size by default.
	ndBasSizes := map[string]bool{}
	for _, m := range ms {
		if alg, _ := m.Get("alg"); alg == "ND-BAS" {
			size, _ := m.Get("size")
			ndBasSizes[size] = true
		}
	}
	if len(ndBasSizes) != 1 {
		t.Fatalf("ND-BAS should run at exactly one size, ran at %v", ndBasSizes)
	}
}

func TestFig4dTotalsAgree(t *testing.T) {
	ms := runFig(t, "4d")
	bySize := map[string]string{}
	for _, m := range ms {
		size, _ := m.Get("size")
		total, _ := m.Get("totalCount")
		if want, ok := bySize[size]; ok && want != total {
			alg, _ := m.Get("alg")
			t.Fatalf("size %s alg %s: total %s differs from %s", size, alg, total, want)
		}
		bySize[size] = total
	}
}

func TestFig4eSelectivityShape(t *testing.T) {
	ms := runFig(t, "4e")
	// Node-driven totals must grow with R; every algorithm must agree on
	// totals at the same R.
	byR := map[string]map[string]string{}
	for _, m := range ms {
		r, _ := m.Get("R")
		alg, _ := m.Get("alg")
		total, _ := m.Get("totalCount")
		if byR[r] == nil {
			byR[r] = map[string]string{}
		}
		byR[r][alg] = total
	}
	for r, algs := range byR {
		var want string
		for alg, total := range algs {
			if want == "" {
				want = total
			} else if total != want {
				t.Fatalf("R=%s: %s total %s differs from %s", r, alg, total, want)
			}
		}
	}
	if len(byR) != 5 {
		t.Fatalf("R points = %d want 5", len(byR))
	}
}

func TestFig4fCellsAndConsistency(t *testing.T) {
	ms := runFig(t, "4f")
	if len(ms) != 14 { // 2 strategies x 7 center counts
		t.Fatalf("measurements = %d want 14", len(ms))
	}
	var want string
	for _, m := range ms {
		total, _ := m.Get("totalCount")
		if want == "" {
			want = total
		} else if total != want {
			t.Fatalf("totals differ across center configurations: %s vs %s", total, want)
		}
	}
}

func TestFig4gVariants(t *testing.T) {
	ms := runFig(t, "4g")
	variants := map[string]int{}
	var want string
	for _, m := range ms {
		v, _ := m.Get("variant")
		variants[v]++
		total, _ := m.Get("totalCount")
		if want == "" {
			want = total
		} else if total != want {
			t.Fatalf("totals differ across clustering variants")
		}
	}
	if variants["NO-CLUST"] != 1 || variants["RND-CLUST"] != 4 || variants["OPT-CLUST"] != 4 {
		t.Fatalf("variant cells wrong: %v", variants)
	}
}

func TestFig4hShape(t *testing.T) {
	ms := runFig(t, "4h")
	// 9 measures x 3 algorithms (unit scale includes ND-BAS) + jaccard +
	// random.
	if len(ms) != 9*3+2 {
		t.Fatalf("measurements = %d want %d", len(ms), 9*3+2)
	}
	precision := map[string]float64{}
	for _, m := range ms {
		name, _ := m.Get("measure")
		alg, _ := m.Get("alg")
		p50s, ok := m.Get("p@50")
		if !ok {
			t.Fatalf("%s missing p@50", name)
		}
		p50, err := strconv.ParseFloat(p50s, 64)
		if err != nil {
			t.Fatal(err)
		}
		if alg == "PT-OPT" || alg == "-" {
			precision[name] = p50
		}
		// Same measure must yield identical precision regardless of the
		// evaluation algorithm.
		if alg == "PT-BAS" || alg == "ND-BAS" {
			if precision[name] != p50 {
				t.Fatalf("measure %s: %s precision %.4f differs from PT-OPT %.4f", name, alg, p50, precision[name])
			}
		}
	}
	// Shape checks from the paper: common-neighborhood measures beat the
	// random predictor, and node@2 is a strong predictor.
	if precision["random"] >= precision["node@2"] {
		t.Fatalf("random (%.4f) should not beat node@2 (%.4f)", precision["random"], precision["node@2"])
	}
	if precision["node@2"] <= 0 {
		t.Fatal("node@2 precision should be positive")
	}
}

func TestFigExt(t *testing.T) {
	ms := runFig(t, "ext")
	byExp := map[string]int{}
	for _, m := range ms {
		name, _ := m.Get("experiment")
		byExp[name]++
	}
	for _, want := range []string{"shortcuts", "workers-ptopt", "count-many", "incremental", "approx", "signature"} {
		if byExp[want] == 0 {
			t.Fatalf("experiment %s missing: %v", want, byExp)
		}
	}
	// Approximation at rate 1.0 must be exact.
	for _, m := range ms {
		if cfg, _ := m.Get("config"); cfg == "rate=1.00" {
			if rel, _ := m.Get("relError"); rel != "0.0000" {
				t.Fatalf("rate 1.0 relError = %s", rel)
			}
		}
	}
	// Signature pruning must keep a strict subset.
	for _, m := range ms {
		if name, _ := m.Get("experiment"); name == "signature" {
			kept, _ := m.Get("keptFrac")
			var f float64
			if _, err := fmt.Sscanf(kept, "%f", &f); err != nil || f <= 0 || f >= 1 {
				t.Fatalf("keptFrac = %s", kept)
			}
		}
	}
}

func TestPrintRendersTable(t *testing.T) {
	fig, _ := FigureByID("4f")
	ms := []Measurement{
		{Labels: []KV{{"strategy", "DEG-CNTR"}, {"centers", "12"}}, Seconds: 1.5,
			Values: []KV{{"matches", "10"}}},
	}
	var buf bytes.Buffer
	Print(&buf, fig, ms)
	out := buf.String()
	for _, frag := range []string{"Figure 4f", "strategy", "centers", "seconds", "DEG-CNTR", "1.5000"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("printed table missing %q:\n%s", frag, out)
		}
	}
}

func TestMeasurementLabel(t *testing.T) {
	m := Measurement{Labels: []KV{{"a", "1"}, {"b", "2"}}}
	if m.Label() != "a=1 b=2" {
		t.Fatalf("Label() = %q", m.Label())
	}
	if _, ok := m.Get("c"); ok {
		t.Fatal("missing key should not resolve")
	}
}
