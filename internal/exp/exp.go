// Package exp regenerates the paper's evaluation (Figure 4(a)–(h) and the
// in-text comparisons): workload generation, parameter sweeps, timed runs
// of every algorithm, and printable result series. It is shared by
// cmd/experiments and the repository's benchmark suite.
//
// Every experiment runs at one of three scales: "unit" finishes in seconds
// (CI, benchmarks), "small" in minutes, and "paper" reproduces the paper's
// graph sizes (up to 1M nodes / 5M edges; expect long runs — the paper's
// own GQL square measurement took 37 hours).
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Scale selects experiment sizing.
type Scale string

// Scales.
const (
	Unit  Scale = "unit"
	Small Scale = "small"
	Paper Scale = "paper"
)

// ParseScale validates a scale name.
func ParseScale(s string) (Scale, error) {
	switch Scale(strings.ToLower(s)) {
	case Unit:
		return Unit, nil
	case Small:
		return Small, nil
	case Paper:
		return Paper, nil
	}
	return "", fmt.Errorf("exp: unknown scale %q (want unit, small or paper)", s)
}

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  int64
	// IncludeNDBas forces the ND-BAS baseline into experiments where it
	// is normally restricted to the smallest size (it is orders of
	// magnitude slower; the paper reports 218x at 20K nodes).
	IncludeNDBas bool
}

// KV is one labeled dimension of a measurement (e.g. size=20000).
type KV struct {
	Key   string
	Value string
}

// Measurement is one timed/valued data point of a figure.
type Measurement struct {
	Labels  []KV
	Seconds float64
	// Values holds named metrics beyond runtime (e.g. matches=1234,
	// precision=0.42).
	Values []KV
}

// Label renders the labels as "k=v k=v".
func (m Measurement) Label() string {
	parts := make([]string, len(m.Labels))
	for i, kv := range m.Labels {
		parts[i] = kv.Key + "=" + kv.Value
	}
	return strings.Join(parts, " ")
}

// Get returns a label or value by key.
func (m Measurement) Get(key string) (string, bool) {
	for _, kv := range m.Labels {
		if kv.Key == key {
			return kv.Value, true
		}
	}
	for _, kv := range m.Values {
		if kv.Key == key {
			return kv.Value, true
		}
	}
	return "", false
}

// Figure is one reproducible experiment.
type Figure struct {
	ID    string
	Title string
	Run   func(cfg Config, progress io.Writer) ([]Measurement, error)
}

// Figures returns all experiments in paper order.
func Figures() []Figure {
	return []Figure{
		{"4a", "CN vs GQL pattern matching, varying graph size (labeled, 4 labels, clq3 & clq4)", Fig4a},
		{"4b", "CN vs GQL pattern matching, varying pattern (labeled 1M-node graph at paper scale)", Fig4b},
		{"4c", "Pattern census, varying graph size (unlabeled clq3-unlb, k=2, all algorithms)", Fig4c},
		{"4d", "Pattern census, varying graph size (labeled clq3, k=2)", Fig4d},
		{"4e", "Pattern census, varying focal node selectivity (WHERE RND() < R)", Fig4e},
		{"4f", "Effect of number and choice of centers on PT-OPT (DEG-CNTR vs RND-CNTR)", Fig4f},
		{"4g", "Effect of pattern match clustering on PT-OPT (NO/RND/OPT-CLUST, varying cluster count)", Fig4g},
		{"4h", "DBLP-style link prediction: 9 census measures vs Jaccard vs random, precision@50/@600", Fig4h},
		{"ext", "Extensions: shortcut ablation, workers, batching, incremental, approximation, signatures", FigExt},
	}
}

// FigureByID looks up an experiment.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("exp: unknown figure %q", id)
}

// Print renders measurements as an aligned table.
func Print(w io.Writer, fig Figure, ms []Measurement) {
	fmt.Fprintf(w, "== Figure %s: %s ==\n", fig.ID, fig.Title)
	// Collect the union of label and value keys for the header.
	var labelKeys, valueKeys []string
	seenL, seenV := map[string]bool{}, map[string]bool{}
	for _, m := range ms {
		for _, kv := range m.Labels {
			if !seenL[kv.Key] {
				seenL[kv.Key] = true
				labelKeys = append(labelKeys, kv.Key)
			}
		}
		for _, kv := range m.Values {
			if !seenV[kv.Key] {
				seenV[kv.Key] = true
				valueKeys = append(valueKeys, kv.Key)
			}
		}
	}
	sort.Strings(valueKeys)
	header := append(append([]string{}, labelKeys...), "seconds")
	header = append(header, valueKeys...)
	rows := make([][]string, 0, len(ms))
	for _, m := range ms {
		row := make([]string, 0, len(header))
		for _, k := range labelKeys {
			v, _ := m.Get(k)
			row = append(row, v)
		}
		row = append(row, fmt.Sprintf("%.4f", m.Seconds))
		for _, k := range valueKeys {
			v := "-"
			for _, kv := range m.Values {
				if kv.Key == k {
					v = kv.Value
					break
				}
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
}

// timeIt runs f and returns its wall-clock duration in seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}
