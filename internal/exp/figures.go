package exp

import (
	"fmt"
	"io"
	"math/rand"

	"egocensus/internal/centers"
	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/linkpred"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
)

// edgeFactor is the paper's edge density: |E| = 5 |V|.
const edgeFactor = 5

// numLabels is the paper's label alphabet size.
const numLabels = 4

func sizesFor(scale Scale, unit, small, paper []int) []int {
	switch scale {
	case Small:
		return small
	case Paper:
		return paper
	default:
		return unit
	}
}

func labeledGraph(n int, seed int64) *graph.Graph {
	g := gen.PreferentialAttachment(n, edgeFactor, seed)
	gen.AssignLabels(g, numLabels, seed+1)
	return g
}

// ptOptions prebuilds the 12 high-degree centers the paper treats as an
// offline index (Section IV-B4 pre-computes center distances), so census
// timings cover query evaluation only.
func ptOptions(g *graph.Graph, seed int64) core.Options {
	idx := centers.Build(g, 12, centers.ByDegree, seed)
	return core.Options{Seed: seed, PMDCenters: idx, ClusterCenters: idx}
}

func clq3() *pattern.Pattern {
	return pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"})
}

func clq3Unlb() *pattern.Pattern {
	return pattern.Clique("clq3-unlb", 3, nil)
}

func progressf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// Fig4a compares the CN matcher against the GQL baseline across graph
// sizes for the labeled clq3 and clq4 patterns (paper: 200K–1M nodes,
// speedups 10–140x).
func Fig4a(cfg Config, progress io.Writer) ([]Measurement, error) {
	sizes := sizesFor(cfg.Scale,
		[]int{2000, 4000},
		[]int{20000, 40000, 60000, 80000, 100000},
		[]int{200000, 400000, 600000, 800000, 1000000})
	pats := []*pattern.Pattern{
		clq3(),
		pattern.Clique("clq4", 4, []string{"l0", "l1", "l2", "l3"}),
	}
	var out []Measurement
	for _, n := range sizes {
		g := labeledGraph(n, cfg.Seed)
		g.BuildProfiles()
		for _, p := range pats {
			for _, m := range []match.Matcher{match.CN{}, match.GQL{}} {
				var found int
				secs := timeIt(func() {
					found = len(match.FindMatches(m, g, p))
				})
				out = append(out, Measurement{
					Labels: []KV{
						{"size", fmt.Sprint(n)},
						{"pattern", p.Name},
						{"alg", m.Name()},
					},
					Seconds: secs,
					Values:  []KV{{"matches", fmt.Sprint(found)}},
				})
				progressf(progress, "fig4a size=%d pattern=%s alg=%s: %.3fs (%d matches)\n",
					n, p.Name, m.Name(), secs, found)
			}
		}
	}
	return out, nil
}

// Fig4b compares CN against GQL on one graph across the Figure 3 pattern
// set (paper: 1M nodes; GQL's sqr run took 37 hours, 480x CN).
func Fig4b(cfg Config, progress io.Writer) ([]Measurement, error) {
	n := map[Scale]int{Unit: 5000, Small: 50000, Paper: 1000000}[cfg.Scale]
	g := labeledGraph(n, cfg.Seed)
	g.BuildProfiles()
	pats := []*pattern.Pattern{
		clq3(),
		pattern.Clique("clq4", 4, []string{"l0", "l1", "l2", "l3"}),
		pattern.Square("sqr", []string{"l0", "l1", "l0", "l1"}),
	}
	var out []Measurement
	for _, p := range pats {
		for _, m := range []match.Matcher{match.CN{}, match.GQL{}} {
			var found int
			secs := timeIt(func() {
				found = len(match.FindMatches(m, g, p))
			})
			out = append(out, Measurement{
				Labels: []KV{
					{"size", fmt.Sprint(n)},
					{"pattern", p.Name},
					{"alg", m.Name()},
				},
				Seconds: secs,
				Values:  []KV{{"matches", fmt.Sprint(found)}},
			})
			progressf(progress, "fig4b pattern=%s alg=%s: %.3fs (%d matches)\n", p.Name, m.Name(), secs, found)
		}
	}
	return out, nil
}

// runCensus times one census configuration.
func runCensus(g *graph.Graph, spec core.Spec, alg core.Algorithm, opt core.Options) (Measurement, error) {
	var res *core.Result
	var err error
	secs := timeIt(func() {
		res, err = core.Count(g, spec, alg, opt)
	})
	if err != nil {
		return Measurement{}, err
	}
	var total int64
	for _, c := range res.Counts {
		total += c
	}
	return Measurement{
		Seconds: secs,
		Values: []KV{
			{"matches", fmt.Sprint(res.NumMatches)},
			{"totalCount", fmt.Sprint(total)},
		},
	}, nil
}

// Fig4c runs the unlabeled triangle census (k=2) across graph sizes for
// all six algorithms. ND-BAS runs only at the smallest size unless
// IncludeNDBas is set (the paper reports it 218x slower than ND-PVOT at
// 20K nodes and omits it from the plot).
func Fig4c(cfg Config, progress io.Writer) ([]Measurement, error) {
	sizes := sizesFor(cfg.Scale,
		[]int{500, 1000, 2000},
		[]int{5000, 10000, 20000},
		[]int{20000, 40000, 60000, 80000, 100000})
	var out []Measurement
	for si, n := range sizes {
		g := gen.PreferentialAttachment(n, edgeFactor, cfg.Seed)
		g.BuildProfiles()
		spec := core.Spec{Pattern: clq3Unlb(), K: 2}
		opt := ptOptions(g, cfg.Seed)
		for _, alg := range core.Algorithms {
			if alg == core.NDBas && si > 0 && !cfg.IncludeNDBas {
				continue
			}
			m, err := runCensus(g, spec, alg, opt)
			if err != nil {
				return nil, err
			}
			m.Labels = []KV{{"size", fmt.Sprint(n)}, {"alg", string(alg)}}
			out = append(out, m)
			progressf(progress, "fig4c size=%d alg=%s: %.3fs\n", n, alg, m.Seconds)
		}
	}
	return out, nil
}

// Fig4d runs the labeled triangle census (k=2, 4 labels) across graph
// sizes; pattern-driven algorithms win because the pattern is selective.
func Fig4d(cfg Config, progress io.Writer) ([]Measurement, error) {
	sizes := sizesFor(cfg.Scale,
		[]int{1000, 2000, 4000},
		[]int{20000, 50000, 100000},
		[]int{200000, 400000, 600000, 800000, 1000000})
	algs := []core.Algorithm{core.NDDiff, core.NDPvot, core.PTBas, core.PTRnd, core.PTOpt}
	var out []Measurement
	for _, n := range sizes {
		g := labeledGraph(n, cfg.Seed)
		g.BuildProfiles()
		spec := core.Spec{Pattern: clq3(), K: 2}
		opt := ptOptions(g, cfg.Seed)
		for _, alg := range algs {
			m, err := runCensus(g, spec, alg, opt)
			if err != nil {
				return nil, err
			}
			m.Labels = []KV{{"size", fmt.Sprint(n)}, {"alg", string(alg)}}
			out = append(out, m)
			progressf(progress, "fig4d size=%d alg=%s: %.3fs\n", n, alg, m.Seconds)
		}
	}
	return out, nil
}

// Fig4e varies the focal-node selectivity R of WHERE RND() < R on an
// unlabeled graph: node-driven runtimes grow linearly with R while
// pattern-driven runtimes stay flat.
func Fig4e(cfg Config, progress io.Writer) ([]Measurement, error) {
	n := map[Scale]int{Unit: 2000, Small: 20000, Paper: 500000}[cfg.Scale]
	g := gen.PreferentialAttachment(n, edgeFactor, cfg.Seed)
	g.BuildProfiles()
	algs := []core.Algorithm{core.NDDiff, core.NDPvot, core.PTBas, core.PTOpt}
	opt := ptOptions(g, cfg.Seed)
	var out []Measurement
	for _, r := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r*100)))
		var focal []graph.NodeID
		for i := 0; i < g.NumNodes(); i++ {
			if rng.Float64() < r {
				focal = append(focal, graph.NodeID(i))
			}
		}
		spec := core.Spec{Pattern: clq3Unlb(), K: 2, Focal: focal}
		for _, alg := range algs {
			m, err := runCensus(g, spec, alg, opt)
			if err != nil {
				return nil, err
			}
			m.Labels = []KV{
				{"size", fmt.Sprint(n)},
				{"R", fmt.Sprintf("%.0f%%", r*100)},
				{"alg", string(alg)},
			}
			out = append(out, m)
			progressf(progress, "fig4e R=%.0f%% alg=%s: %.3fs\n", r*100, alg, m.Seconds)
		}
	}
	return out, nil
}

// Fig4f varies the number of PMD centers (0–24) and their selection
// strategy (DEG-CNTR vs RND-CNTR) while holding the clustering centers
// fixed at 12 high-degree nodes, isolating the distance-initialization
// effect exactly as the paper does.
func Fig4f(cfg Config, progress io.Writer) ([]Measurement, error) {
	n := map[Scale]int{Unit: 2000, Small: 20000, Paper: 1000000}[cfg.Scale]
	g := labeledGraph(n, cfg.Seed)
	g.BuildProfiles()
	spec := core.Spec{Pattern: clq3(), K: 2}
	clusterIdx := centers.Build(g, 12, centers.ByDegree, cfg.Seed)
	var out []Measurement
	for _, strat := range []struct {
		name string
		s    centers.Strategy
	}{{"DEG-CNTR", centers.ByDegree}, {"RND-CNTR", centers.Random}} {
		for _, nc := range []int{0, 4, 8, 12, 16, 20, 24} {
			opt := core.Options{
				Seed:           cfg.Seed,
				PMDCenters:     centers.Build(g, nc, strat.s, cfg.Seed+int64(nc)),
				ClusterCenters: clusterIdx,
			}
			m, err := runCensus(g, spec, core.PTOpt, opt)
			if err != nil {
				return nil, err
			}
			m.Labels = []KV{
				{"size", fmt.Sprint(n)},
				{"strategy", strat.name},
				{"centers", fmt.Sprint(nc)},
			}
			out = append(out, m)
			progressf(progress, "fig4f %s centers=%d: %.3fs\n", strat.name, nc, m.Seconds)
		}
	}
	return out, nil
}

// Fig4g compares NO-CLUST, RND-CLUST and OPT-CLUST (K-means over center
// distance features) while varying the cluster count.
func Fig4g(cfg Config, progress io.Writer) ([]Measurement, error) {
	n := map[Scale]int{Unit: 2000, Small: 20000, Paper: 1000000}[cfg.Scale]
	clusterCounts := map[Scale][]int{
		Unit:  {10, 20, 40, 80},
		Small: {50, 100, 200, 400},
		Paper: {100, 200, 300, 400, 500, 600},
	}[cfg.Scale]
	g := labeledGraph(n, cfg.Seed)
	g.BuildProfiles()
	spec := core.Spec{Pattern: clq3(), K: 2}
	var out []Measurement

	baseOpt := ptOptions(g, cfg.Seed)
	noClust := baseOpt
	noClust.NoClustering = true
	m, err := runCensus(g, spec, core.PTOpt, noClust)
	if err != nil {
		return nil, err
	}
	m.Labels = []KV{{"size", fmt.Sprint(n)}, {"variant", "NO-CLUST"}, {"clusters", "-"}}
	out = append(out, m)
	progressf(progress, "fig4g NO-CLUST: %.3fs\n", m.Seconds)

	for _, variant := range []struct {
		name   string
		random bool
	}{{"RND-CLUST", true}, {"OPT-CLUST", false}} {
		for _, k := range clusterCounts {
			opt := baseOpt
			opt.Clusters = k
			opt.RandomClustering = variant.random
			m, err := runCensus(g, spec, core.PTOpt, opt)
			if err != nil {
				return nil, err
			}
			m.Labels = []KV{
				{"size", fmt.Sprint(n)},
				{"variant", variant.name},
				{"clusters", fmt.Sprint(k)},
			}
			out = append(out, m)
			progressf(progress, "fig4g %s clusters=%d: %.3fs\n", variant.name, k, m.Seconds)
		}
	}
	return out, nil
}

// Fig4h runs the link-prediction experiment: a temporal co-authorship
// corpus (the DBLP substitute) split into a 2001–2005 training graph and
// 2006–2010 new collaborations; precision@50 and @600 for the nine census
// measures, Jaccard and random; plus the PT-OPT vs PT-BAS (and optionally
// ND-BAS) runtime comparison of Section V-B.
func Fig4h(cfg Config, progress io.Writer) ([]Measurement, error) {
	ccfg := gen.DefaultCoauthConfig()
	switch cfg.Scale {
	case Unit:
		ccfg.Authors, ccfg.PapersPerYear = 500, 80
	case Small:
		ccfg.Authors, ccfg.PapersPerYear = 1500, 250
	}
	ccfg.Seed = cfg.Seed
	corpus := gen.GenerateCoauthorship(ccfg)
	train, authorNode := corpus.Graph(2001, 2005)
	train.BuildProfiles()
	positives := map[core.Pair]bool{}
	for pr := range corpus.NewPairs(2006, 2010) {
		na, oka := authorNode[pr[0]]
		nb, okb := authorNode[pr[1]]
		if oka && okb {
			positives[core.MakePair(na, nb)] = true
		}
	}
	eval := &linkpred.Eval{Train: train, Positives: positives}
	trainOpt := ptOptions(train, cfg.Seed)
	progressf(progress, "fig4h corpus: %d authors, %d train edges, %d positives\n",
		train.NumNodes(), train.NumEdges(), len(positives))

	var out []Measurement
	record := func(name, alg string, secs float64, scores map[core.Pair]float64) {
		m := Measurement{
			Labels:  []KV{{"measure", name}, {"alg", alg}},
			Seconds: secs,
			Values: []KV{
				{"p@50", fmt.Sprintf("%.4f", eval.PrecisionAtK(scores, 50))},
				{"p@600", fmt.Sprintf("%.4f", eval.PrecisionAtK(scores, 600))},
			},
		}
		out = append(out, m)
		progressf(progress, "fig4h %s (%s): %.3fs p@50=%s p@600=%s\n",
			name, alg, secs, m.Values[0].Value, m.Values[1].Value)
	}

	for _, meas := range linkpred.Measures() {
		var scores map[core.Pair]float64
		var err error
		secsOpt := timeIt(func() {
			scores, err = meas.Score(train, core.PTOpt, trainOpt)
		})
		if err != nil {
			return nil, err
		}
		record(meas.Name, "PT-OPT", secsOpt, scores)

		var basScores map[core.Pair]float64
		secsBas := timeIt(func() {
			basScores, err = meas.Score(train, core.PTBas, trainOpt)
		})
		if err != nil {
			return nil, err
		}
		record(meas.Name, "PT-BAS", secsBas, basScores)

		if cfg.IncludeNDBas || cfg.Scale == Unit {
			// ND-BAS needs an explicit pair list; give it exactly the
			// non-zero pairs (a concession in its favor — the paper ran
			// all pairs and reports it orders of magnitude slower).
			pairs := make([]core.Pair, 0, len(scores))
			for pr := range scores {
				pairs = append(pairs, pr)
			}
			spec := core.PairSpec{
				Spec:  core.Spec{Pattern: meas.Pattern(), K: meas.R},
				Mode:  core.Intersection,
				Pairs: pairs,
			}
			var ndRes *core.PairResult
			secsND := timeIt(func() {
				ndRes, err = core.CountPairs(train, spec, core.NDBas, core.Options{Seed: cfg.Seed})
			})
			if err != nil {
				return nil, err
			}
			ndScores := make(map[core.Pair]float64, len(ndRes.Counts))
			for pr, c := range ndRes.Counts {
				ndScores[pr] = float64(c)
			}
			record(meas.Name, "ND-BAS", secsND, ndScores)
		}
	}

	jsecs := timeIt(func() {
		scores := linkpred.Jaccard(train)
		record("jaccard", "-", 0, scores)
	})
	out[len(out)-1].Seconds = jsecs

	rnd := linkpred.RandomScores(train, 5000, cfg.Seed+99)
	record("random", "-", 0, rnd)
	return out, nil
}
