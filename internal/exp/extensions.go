package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
	"egocensus/internal/signature"
)

// FigExt measures the repository's extensions beyond the paper: the
// distance-shortcut ablation, parallel-worker scaling, batched
// multi-pattern evaluation, incremental maintenance vs recomputation,
// match-sampling approximation error, and signature pruning power. It is
// registered as figure "ext" in cmd/experiments.
func FigExt(cfg Config, progress io.Writer) ([]Measurement, error) {
	n := map[Scale]int{Unit: 2000, Small: 20000, Paper: 200000}[cfg.Scale]
	g := labeledGraph(n, cfg.Seed)
	g.BuildProfiles()
	spec := core.Spec{Pattern: clq3(), K: 2}
	base := ptOptions(g, cfg.Seed)
	var out []Measurement
	add := func(m Measurement, name, config string) {
		m.Labels = append([]KV{{"experiment", name}, {"config", config}}, m.Labels...)
		out = append(out, m)
		progressf(progress, "ext %s %s: %.3fs\n", name, config, m.Seconds)
	}

	// Distance shortcuts (Section IV-B2 ablation).
	m, err := runCensus(g, spec, core.PTOpt, base)
	if err != nil {
		return nil, err
	}
	add(m, "shortcuts", "on")
	noSc := base
	noSc.DisableShortcuts = true
	if m, err = runCensus(g, spec, core.PTOpt, noSc); err != nil {
		return nil, err
	}
	add(m, "shortcuts", "off")

	// Parallel workers.
	for _, w := range []int{1, 2, 4, 8} {
		opt := base
		opt.Workers = w
		if m, err = runCensus(g, spec, core.PTOpt, opt); err != nil {
			return nil, err
		}
		add(m, "workers-ptopt", fmt.Sprint(w))
		if m, err = runCensus(g, spec, core.NDPvot, opt); err != nil {
			return nil, err
		}
		add(m, "workers-ndpvot", fmt.Sprint(w))
	}

	// Batched multi-pattern evaluation.
	specs := []core.Spec{
		{Pattern: clq3Unlb(), K: 2},
		{Pattern: clq3(), K: 2},
	}
	secs := timeIt(func() {
		_, err = core.CountMany(g, specs, base)
	})
	if err != nil {
		return nil, err
	}
	add(Measurement{Seconds: secs}, "count-many", "batched")
	secs = timeIt(func() {
		for _, s := range specs {
			if _, err = core.Count(g, s, core.NDPvot, base); err != nil {
				return
			}
		}
	})
	if err != nil {
		return nil, err
	}
	add(Measurement{Seconds: secs}, "count-many", "separate")

	// Incremental maintenance vs recomputation (k=1; see DESIGN.md for the
	// k>=2 caveat).
	incSpec := core.Spec{Pattern: clq3Unlb(), K: 1}
	gInc := gen.PreferentialAttachment(n, edgeFactor, cfg.Seed+7)
	inc, err := core.NewIncremental(gInc, incSpec, core.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	const edges = 50
	secs = timeIt(func() {
		for i := 0; i < edges; i++ {
			a := graph.NodeID(rng.Intn(gInc.NumNodes()))
			b := graph.NodeID(rng.Intn(gInc.NumNodes()))
			if a != b {
				inc.AddEdge(a, b)
			}
		}
	})
	add(Measurement{Seconds: secs / edges}, "incremental", "per-edge")
	secs = timeIt(func() {
		_, err = core.Count(gInc, incSpec, core.NDPvot, core.Options{Seed: cfg.Seed})
	})
	if err != nil {
		return nil, err
	}
	add(Measurement{Seconds: secs}, "incremental", "recompute")

	// Approximation error vs sampling rate.
	exact, err := core.Count(g, spec, core.PTOpt, base)
	if err != nil {
		return nil, err
	}
	var exactTotal float64
	for _, c := range exact.Counts {
		exactTotal += float64(c)
	}
	for _, rate := range []float64{0.1, 0.25, 0.5, 1.0} {
		var approx *core.ApproxResult
		secs := timeIt(func() {
			approx, err = core.CountApprox(g, spec, rate, base)
		})
		if err != nil {
			return nil, err
		}
		var estTotal float64
		for _, e := range approx.Est {
			estTotal += e
		}
		relErr := 0.0
		if exactTotal > 0 {
			relErr = math.Abs(estTotal-exactTotal) / exactTotal
		}
		add(Measurement{
			Seconds: secs,
			Values: []KV{
				{"relError", fmt.Sprintf("%.4f", relErr)},
				{"sampled", fmt.Sprint(approx.SampledMatches)},
			},
		}, "approx", fmt.Sprintf("rate=%.2f", rate))
	}

	// Signature pruning power for a clq4 query.
	idx, err := signature.Build(g, signature.Config{K: 1})
	if err != nil {
		return nil, err
	}
	q := clq4ForSig()
	qsig, err := idx.QuerySignatures(q)
	if err != nil {
		return nil, err
	}
	kept := len(idx.Candidates(g, q, qsig, 0))
	add(Measurement{
		Values: []KV{
			{"candidates", fmt.Sprint(kept)},
			{"of", fmt.Sprint(g.NumNodes())},
			{"keptFrac", fmt.Sprintf("%.4f", float64(kept)/float64(g.NumNodes()))},
		},
	}, "signature", "clq4-prune")

	return out, nil
}

func clq4ForSig() *pattern.Pattern {
	return pattern.Clique("clq4", 4, nil)
}
