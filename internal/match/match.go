// Package match implements subgraph pattern matching (Section III of the
// paper): the paper's CN algorithm built on candidate neighbor sets
// (Algorithm 1), a reimplementation of the GraphQL matching strategy (GQL)
// used as the paper's baseline, and a brute-force reference matcher used to
// cross-validate both in tests.
//
// Matchers enumerate embeddings (variable assignments). The census layer
// deduplicates automorphic embeddings of the same subgraph with
// Deduplicate.
package match

import (
	"sort"

	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// Matcher finds all embeddings of a pattern in a graph.
type Matcher interface {
	// Name identifies the algorithm ("CN", "GQL", "BRUTE").
	Name() string
	// Embeddings returns every assignment of graph nodes to pattern nodes
	// that satisfies the pattern's structure, labels, predicates, and
	// negated edges. Automorphic images of the same subgraph appear once
	// per automorphism.
	Embeddings(g *graph.Graph, p *pattern.Pattern) []pattern.Match
}

// NodeSet is a set of graph nodes that masked matching can be restricted
// to. graph.Reach implements it.
type NodeSet interface {
	// Contains reports set membership.
	Contains(n graph.NodeID) bool
	// Members lists the set's nodes. The order is unspecified; the slice
	// must not be modified.
	Members() []graph.NodeID
}

// MaskedMatcher is a Matcher that can enumerate the embeddings whose image
// lies entirely inside a node subset, matching in place on the parent
// graph. Because a k-hop neighborhood subgraph is induced — it contains
// every parent edge between its nodes — masked matching is equivalent to
// extracting the subgraph and matching inside it, and the node-driven
// census drivers use it to skip extraction entirely.
type MaskedMatcher interface {
	Matcher
	// EmbeddingsWithin is Embeddings restricted to within; nil means the
	// whole graph.
	EmbeddingsWithin(g *graph.Graph, p *pattern.Pattern, within NodeSet) []pattern.Match
}

// MaskedCounter is a MaskedMatcher that can count distinct matches
// without materializing the embedding list. The census drivers use it to
// run the per-focal counting loop with no per-call heap allocation.
type MaskedCounter interface {
	MaskedMatcher
	// NewCountRun returns a reusable counting session. A CountRun serves
	// one goroutine at a time; census drivers hold one per worker.
	NewCountRun() CountRun
}

// CountRun is a reusable distinct-match counting session.
type CountRun interface {
	// CountWithin returns the number of distinct matches of p inside
	// within (nil means the whole graph) under Deduplicate's identity
	// (subNodes participates for COUNTSP semantics), plus the number of
	// embeddings enumerated. It is equivalent to
	//
	//	embs := m.EmbeddingsWithin(g, p, within)
	//	return CountDistinct(p, embs, subNodes), len(embs)
	//
	// without allocating either list.
	CountWithin(g *graph.Graph, p *pattern.Pattern, within NodeSet, subNodes []int) (distinct, embeddings int)
}

// Stoppable is a Matcher whose enumeration can be interrupted from the
// outside. The census layer injects a cancellation poll so that a context
// cancel or resource limit reaches into long match enumerations instead of
// waiting for them to finish.
type Stoppable interface {
	Matcher
	// WithStop returns a matcher that polls stop (epoch-counted, so the
	// callback may be arbitrarily expensive) during enumeration and
	// abandons the search once it returns true, returning the embeddings
	// found so far. A nil stop returns the receiver unchanged.
	WithStop(stop func() bool) Matcher
}

// Deduplicate collapses automorphic embeddings of the same subgraph into a
// single match (Section II: a match is a subgraph isomorphic to P). When
// subNodes is non-nil the subpattern image participates in match identity,
// so the same subgraph with a different subpattern assignment is kept
// (COUNTSP semantics). The result is ordered deterministically.
func Deduplicate(p *pattern.Pattern, embeddings []pattern.Match, subNodes []int) []pattern.Match {
	seen := make(map[string]struct{}, len(embeddings))
	out := make([]pattern.Match, 0, len(embeddings))
	var key []byte
	for _, m := range embeddings {
		key = p.AppendKey(key[:0], m, subNodes)
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return lessMatch(out[i], out[j]) })
	return out
}

// CountDistinct returns the number of distinct matches among embeddings —
// len(Deduplicate(...)) without materializing or sorting the deduplicated
// slice. The census counting loops use it.
func CountDistinct(p *pattern.Pattern, embeddings []pattern.Match, subNodes []int) int {
	if len(embeddings) == 0 {
		return 0
	}
	seen := make(map[string]struct{}, len(embeddings))
	var key []byte
	for _, m := range embeddings {
		key = p.AppendKey(key[:0], m, subNodes)
		if _, dup := seen[string(key)]; !dup {
			seen[string(key)] = struct{}{}
		}
	}
	return len(seen)
}

func lessMatch(a, b pattern.Match) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// FindMatches runs matcher m and deduplicates the embeddings, yielding the
// paper's set of matches M.
func FindMatches(m Matcher, g *graph.Graph, p *pattern.Pattern) []pattern.Match {
	return Deduplicate(p, m.Embeddings(g, p), nil)
}

// nodesByLabel groups the graph's nodes by label ID. Index 0 (NoLabel)
// holds unlabeled nodes.
func nodesByLabel(g *graph.Graph) [][]graph.NodeID {
	byLabel := make([][]graph.NodeID, g.Labels().Size())
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		l := g.Label(id)
		byLabel[l] = append(byLabel[l], id)
	}
	return byLabel
}

// patternProfile summarizes the neighborhood constraints of one pattern
// node: the number of positive neighbors required per (constrained) label,
// and the total positive degree.
type patternProfile struct {
	perLabel map[graph.LabelID]int32
	degree   int
}

func buildPatternProfile(g *graph.Graph, p *pattern.Pattern, v int) patternProfile {
	prof := patternProfile{perLabel: map[graph.LabelID]int32{}}
	for _, u := range p.PositiveNeighbors(v) {
		prof.degree++
		if l := p.Node(u).Label; l != "" {
			if id, ok := g.Labels().Lookup(l); ok {
				prof.perLabel[id]++
			} else {
				// The label does not occur in the graph at all: mark the
				// profile unsatisfiable via an impossible requirement.
				prof.perLabel[graph.NoLabel] = int32(g.NumNodes() + 1)
			}
		}
	}
	return prof
}

func (pp patternProfile) matches(g *graph.Graph, n graph.NodeID) bool {
	if g.Degree(n) < pp.degree {
		return false
	}
	np := g.NodeProfile(n)
	//egolint:allow detrange order-insensitive conjunction: the loop only ANDs per-label requirement checks, so iteration order never reaches the result
	for l, c := range pp.perLabel {
		if int(l) >= len(np) || np[l] < c {
			return false
		}
	}
	return true
}

// enumerateCandidates performs step 1 of Algorithm 1: profile-filtered
// candidate sets C(v) for every pattern node. Shared by CN and GQL.
func enumerateCandidates(g *graph.Graph, p *pattern.Pattern) [][]graph.NodeID {
	byLabel := nodesByLabel(g)
	cands := make([][]graph.NodeID, p.NumNodes())
	for v := 0; v < p.NumNodes(); v++ {
		prof := buildPatternProfile(g, p, v)
		var pool []graph.NodeID
		if l := p.Node(v).Label; l != "" {
			if id, ok := g.Labels().Lookup(l); ok {
				pool = byLabel[id]
			}
		} else {
			pool = nil // all nodes
		}
		var out []graph.NodeID
		if pool != nil {
			for _, n := range pool {
				if prof.matches(g, n) {
					out = append(out, n)
				}
			}
		} else if p.Node(v).Label == "" {
			for i := 0; i < g.NumNodes(); i++ {
				n := graph.NodeID(i)
				if prof.matches(g, n) {
					out = append(out, n)
				}
			}
		}
		cands[v] = out
	}
	return cands
}

// enumerateCandidatesWithin is enumerateCandidates restricted to a node
// subset: candidates are drawn from within's members instead of label
// pools. Profiles and degrees are the parent graph's — supersets of the
// induced subgraph's, so the filter is sound (never drops a true
// candidate); adjacency is verified exactly by the candidate neighbor
// sets, which are mask-restricted.
func enumerateCandidatesWithin(g *graph.Graph, p *pattern.Pattern, within NodeSet) [][]graph.NodeID {
	if within == nil {
		return enumerateCandidates(g, p)
	}
	members := within.Members()
	cands := make([][]graph.NodeID, p.NumNodes())
	for v := 0; v < p.NumNodes(); v++ {
		prof := buildPatternProfile(g, p, v)
		want := graph.NoLabel
		if l := p.Node(v).Label; l != "" {
			id, ok := g.Labels().Lookup(l)
			if !ok {
				continue // label absent from the graph: no candidates
			}
			want = id
		}
		var out []graph.NodeID
		for _, n := range members {
			if want != graph.NoLabel && g.Label(n) != want {
				continue
			}
			if prof.matches(g, n) {
				out = append(out, n)
			}
		}
		cands[v] = out
	}
	return cands
}

// edgeReq captures the direction requirements between a pair of adjacent
// pattern nodes, aggregated over all positive edges between them.
type edgeReq struct {
	needOut bool // an edge v -> v' must exist (image: n -> n')
	needIn  bool // an edge v' -> v must exist (image: n' -> n)
	needAny bool // an undirected pattern edge must exist in some direction
}

// pairReqs[v][j] is the requirement between v and its j-th positive
// neighbor (as returned by PositiveNeighbors).
func pairRequirements(p *pattern.Pattern) [][]edgeReq {
	reqs := make([][]edgeReq, p.NumNodes())
	for v := 0; v < p.NumNodes(); v++ {
		nbrs := p.PositiveNeighbors(v)
		reqs[v] = make([]edgeReq, len(nbrs))
		for j, u := range nbrs {
			var r edgeReq
			for _, e := range p.Edges() {
				if e.Negated {
					continue
				}
				switch {
				case e.From == v && e.To == u:
					if e.Directed {
						r.needOut = true
					} else {
						r.needAny = true
					}
				case e.From == u && e.To == v:
					if e.Directed {
						r.needIn = true
					} else {
						r.needAny = true
					}
				}
			}
			reqs[v][j] = r
		}
	}
	return reqs
}

// neighborSets returns the out- and in-neighbor membership sets of n. For
// undirected graphs both views are the incident set.
func neighborSets(g *graph.Graph, n graph.NodeID) (out, in map[graph.NodeID]bool) {
	out = make(map[graph.NodeID]bool, len(g.Out(n)))
	for _, h := range g.Out(n) {
		out[h.To] = true
	}
	if !g.Directed() {
		return out, out
	}
	in = make(map[graph.NodeID]bool, len(g.In(n)))
	for _, h := range g.In(n) {
		in[h.To] = true
	}
	return out, in
}

// satisfies reports whether graph node n' can be the image of pattern node
// u given that n is the image of v, under requirement r.
func (r edgeReq) satisfies(nPrime graph.NodeID, out, in map[graph.NodeID]bool) bool {
	if r.needOut && !out[nPrime] {
		return false
	}
	if r.needIn && !in[nPrime] {
		return false
	}
	if r.needAny && !out[nPrime] && !in[nPrime] {
		return false
	}
	return true
}

// distinctNeighbors returns the deduplicated union of out- and in-neighbors
// of n.
func distinctNeighbors(g *graph.Graph, n graph.NodeID) []graph.NodeID {
	if !g.Directed() {
		outs := g.Out(n)
		res := make([]graph.NodeID, len(outs))
		for i, h := range outs {
			res[i] = h.To
		}
		return res
	}
	seen := make(map[graph.NodeID]bool, len(g.Out(n))+len(g.In(n)))
	res := make([]graph.NodeID, 0, len(g.Out(n))+len(g.In(n)))
	for _, h := range g.Out(n) {
		if !seen[h.To] {
			seen[h.To] = true
			res = append(res, h.To)
		}
	}
	for _, h := range g.In(n) {
		if !seen[h.To] {
			seen[h.To] = true
			res = append(res, h.To)
		}
	}
	return res
}
