package match

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

func matchSetKeys(p *pattern.Pattern, ms []pattern.Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = p.Key(m, nil)
	}
	sort.Strings(keys)
	return keys
}

func sameMatchSets(t *testing.T, p *pattern.Pattern, a, b []pattern.Match, nameA, nameB string) {
	t.Helper()
	ka := matchSetKeys(p, a)
	kb := matchSetKeys(p, b)
	if len(ka) != len(kb) {
		t.Fatalf("%s found %d matches, %s found %d", nameA, len(ka), nameB, len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("match sets differ at %d: %s=%q %s=%q", i, nameA, ka[i], nameB, kb[i])
		}
	}
}

func triangleGraph() *graph.Graph {
	// Two triangles sharing an edge: (0,1,2) and (1,2,3).
	g := graph.New(false)
	g.AddNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g
}

func TestCNTriangleCount(t *testing.T) {
	g := triangleGraph()
	p := pattern.Clique("clq3", 3, nil)
	ms := FindMatches(CN{}, g, p)
	if len(ms) != 2 {
		t.Fatalf("triangles = %d want 2", len(ms))
	}
}

func TestEmbeddingsIncludeAutomorphisms(t *testing.T) {
	g := triangleGraph()
	p := pattern.Clique("clq3", 3, nil)
	emb := CN{}.Embeddings(g, p)
	if len(emb) != 12 { // 2 triangles x 3! automorphisms
		t.Fatalf("embeddings = %d want 12", len(emb))
	}
	if got := len(Deduplicate(p, emb, nil)); got != 2 {
		t.Fatalf("deduplicated = %d want 2", got)
	}
}

func TestDeduplicateWithSubpattern(t *testing.T) {
	g := triangleGraph()
	p := pattern.Clique("clq3", 3, nil)
	if err := p.AddSubpattern("hub", []int{0}); err != nil {
		t.Fatal(err)
	}
	sub, _ := p.Subpattern("hub")
	emb := CN{}.Embeddings(g, p)
	// Each triangle counts once per distinct hub image: 3 per triangle.
	if got := len(Deduplicate(p, emb, sub)); got != 6 {
		t.Fatalf("subpattern-deduplicated = %d want 6", got)
	}
}

func TestLabeledMatching(t *testing.T) {
	g := triangleGraph()
	g.SetLabel(0, "x")
	g.SetLabel(1, "x")
	g.SetLabel(2, "y")
	g.SetLabel(3, "y")
	p := pattern.Clique("clq3", 3, []string{"x", "x", "y"})
	ms := FindMatches(CN{}, g, p)
	if len(ms) != 1 {
		t.Fatalf("labeled triangles = %d want 1 (0,1,2)", len(ms))
	}
	p2 := pattern.Clique("clq3", 3, []string{"y", "y", "x"})
	ms2 := FindMatches(CN{}, g, p2)
	if len(ms2) != 1 {
		t.Fatalf("labeled triangles = %d want 1 (1,2,3)", len(ms2))
	}
	p3 := pattern.Clique("clq3", 3, []string{"x", "x", "x"})
	if got := FindMatches(CN{}, g, p3); len(got) != 0 {
		t.Fatalf("expected no all-x triangles, got %d", len(got))
	}
}

func TestUnknownLabelMatchesNothing(t *testing.T) {
	g := triangleGraph()
	p := pattern.Clique("clq3", 3, []string{"zz", "zz", "zz"})
	if got := FindMatches(CN{}, g, p); len(got) != 0 {
		t.Fatalf("unknown label matched %d", len(got))
	}
	// Unlabeled pattern node with a neighbor constrained to an unknown label.
	p2 := pattern.SingleEdge("e", []string{"", "zz"})
	if got := FindMatches(CN{}, g, p2); len(got) != 0 {
		t.Fatalf("unknown neighbor label matched %d", len(got))
	}
}

func TestDirectedMatching(t *testing.T) {
	g := graph.New(true)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(a, c)

	p := pattern.New("dtriad")
	pa := p.MustAddNode("A", "")
	pb := p.MustAddNode("B", "")
	pc := p.MustAddNode("C", "")
	p.MustAddEdge(pa, pb, true, false)
	p.MustAddEdge(pb, pc, true, false)
	p.MustAddEdge(pa, pc, true, false)

	ms := FindMatches(CN{}, g, p)
	if len(ms) != 1 {
		t.Fatalf("directed triads = %d want 1", len(ms))
	}
	if ms[0][pa] != a || ms[0][pb] != b || ms[0][pc] != c {
		t.Fatalf("wrong assignment %v", ms[0])
	}
}

func TestCoordinatorTriad(t *testing.T) {
	g := graph.New(true)
	nodes := make([]graph.NodeID, 4)
	for i := range nodes {
		nodes[i] = g.AddNode()
		g.SetLabel(nodes[i], "org1")
	}
	g.SetLabel(nodes[3], "org2")
	g.AddEdge(nodes[0], nodes[1]) // A -> B
	g.AddEdge(nodes[1], nodes[2]) // B -> C: open triad, same org
	g.AddEdge(nodes[0], nodes[3]) // A -> D (different org)
	g.AddEdge(nodes[3], nodes[2]) // D -> C

	p := pattern.CoordinatorTriad("triad")
	ms := FindMatches(CN{}, g, p)
	// Only 0->1->2 is an open same-label triad; 0->3->2 has mixed labels.
	if len(ms) != 1 {
		t.Fatalf("coordinator triads = %d want 1", len(ms))
	}
	if ms[0][1] != nodes[1] {
		t.Fatalf("coordinator should be node 1, got %v", ms[0])
	}
	// Closing A -> C violates the negated edge.
	g.AddEdge(nodes[0], nodes[2])
	if got := FindMatches(CN{}, g, p); len(got) != 0 {
		t.Fatalf("closed triad still matched: %d", len(got))
	}
}

func TestSignedTrianglePredicates(t *testing.T) {
	g := triangleGraph()
	// Triangle (0,1,2): signs -,+,+  => unstable (1 negative)
	// Triangle (1,2,3): signs +,+,+  => stable
	g.SetEdgeAttr(g.FindEdge(0, 1), "sign", "-")
	g.SetEdgeAttr(g.FindEdge(1, 2), "sign", "+")
	g.SetEdgeAttr(g.FindEdge(0, 2), "sign", "+")
	g.SetEdgeAttr(g.FindEdge(1, 3), "sign", "+")
	g.SetEdgeAttr(g.FindEdge(2, 3), "sign", "+")

	one := pattern.UnstableTriangle("u1", 1)
	if got := FindMatches(CN{}, g, one); len(got) != 1 {
		t.Fatalf("1-negative triangles = %d want 1", len(got))
	}
	three := pattern.UnstableTriangle("u3", 3)
	if got := FindMatches(CN{}, g, three); len(got) != 0 {
		t.Fatalf("3-negative triangles = %d want 0", len(got))
	}
}

func TestSingleNodePattern(t *testing.T) {
	g := triangleGraph()
	g.SetLabel(0, "x")
	g.SetLabel(1, "x")
	p := pattern.SingleNode("n", "x")
	if got := FindMatches(CN{}, g, p); len(got) != 2 {
		t.Fatalf("single-node matches = %d want 2", len(got))
	}
	p2 := pattern.SingleNode("n", "")
	if got := FindMatches(CN{}, g, p2); len(got) != 4 {
		t.Fatalf("unlabeled single-node matches = %d want 4", len(got))
	}
}

func TestProfilePruningRespectsDegree(t *testing.T) {
	// star center has degree 3; leaves degree 1. A 4-clique pattern needs
	// degree >= 3 everywhere, so candidates after profile filter should
	// exclude leaves and matching must find nothing.
	g := graph.New(false)
	c := g.AddNode()
	for i := 0; i < 3; i++ {
		l := g.AddNode()
		g.AddEdge(c, l)
	}
	p := pattern.Clique("clq4", 4, nil)
	if got := FindMatches(CN{}, g, p); len(got) != 0 {
		t.Fatalf("clique in star = %d want 0", len(got))
	}
}

func TestGQLAgreesOnFixedCases(t *testing.T) {
	g := triangleGraph()
	for _, p := range []*pattern.Pattern{
		pattern.Clique("clq3", 3, nil),
		pattern.Square("sqr", nil),
		pattern.Chain("ch3", 3, nil),
		pattern.SingleEdge("e", nil),
	} {
		cn := FindMatches(CN{}, g, p)
		gql := FindMatches(GQL{}, g, p)
		brute := FindMatches(Brute{}, g, p)
		sameMatchSets(t, p, cn, gql, "CN", "GQL")
		sameMatchSets(t, p, cn, brute, "CN", "BRUTE")
	}
}

func randomLabeledGraph(seed int64, n, m, labels int) *graph.Graph {
	g := gen.ErdosRenyi(n, m, seed)
	if labels > 0 {
		gen.AssignLabels(g, labels, seed+1)
	}
	return g
}

// The central matching property: CN, GQL and brute force agree on random
// graphs across a spread of patterns.
func TestMatchersAgreeProperty(t *testing.T) {
	patterns := []func() *pattern.Pattern{
		func() *pattern.Pattern { return pattern.Clique("clq3", 3, nil) },
		func() *pattern.Pattern { return pattern.Clique("clq3l", 3, []string{"l0", "l1", "l0"}) },
		func() *pattern.Pattern { return pattern.Square("sqr", nil) },
		func() *pattern.Pattern { return pattern.Chain("ch4", 4, []string{"l0", "", "l1", ""}) },
		func() *pattern.Pattern { return pattern.Star("st4", 4, nil) },
	}
	f := func(seed int64) bool {
		g := randomLabeledGraph(seed, 18, 36, 2)
		for _, mk := range patterns {
			p := mk()
			cn := matchSetKeys(p, FindMatches(CN{}, g, p))
			gql := matchSetKeys(p, FindMatches(GQL{}, g, p))
			brute := matchSetKeys(p, FindMatches(Brute{}, g, p))
			if len(cn) != len(brute) || len(gql) != len(brute) {
				t.Logf("seed %d pattern %s: cn=%d gql=%d brute=%d", seed, p.Name, len(cn), len(gql), len(brute))
				return false
			}
			for i := range cn {
				if cn[i] != brute[i] || gql[i] != brute[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchersAgreeDirectedProperty(t *testing.T) {
	mkGraph := func(seed int64) *graph.Graph {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(true)
		g.AddNodes(14)
		seen := map[[2]graph.NodeID]bool{}
		for i := 0; i < 30; i++ {
			a := graph.NodeID(rng.Intn(14))
			b := graph.NodeID(rng.Intn(14))
			if a == b || seen[[2]graph.NodeID{a, b}] {
				continue
			}
			seen[[2]graph.NodeID{a, b}] = true
			g.AddEdge(a, b)
		}
		gen.AssignLabels(g, 2, seed+1)
		return g
	}
	mkPatterns := func() []*pattern.Pattern {
		triad := pattern.New("dtriad")
		a := triad.MustAddNode("A", "")
		b := triad.MustAddNode("B", "")
		c := triad.MustAddNode("C", "")
		triad.MustAddEdge(a, b, true, false)
		triad.MustAddEdge(b, c, true, false)
		triad.MustAddEdge(a, c, true, true)

		recip := pattern.New("recip")
		x := recip.MustAddNode("X", "")
		y := recip.MustAddNode("Y", "")
		recip.MustAddEdge(x, y, true, false)
		recip.MustAddEdge(y, x, true, false)

		return []*pattern.Pattern{triad, recip, pattern.CoordinatorTriad("coord")}
	}
	f := func(seed int64) bool {
		g := mkGraph(seed)
		for _, p := range mkPatterns() {
			cn := matchSetKeys(p, FindMatches(CN{}, g, p))
			brute := matchSetKeys(p, FindMatches(Brute{}, g, p))
			gql := matchSetKeys(p, FindMatches(GQL{}, g, p))
			if len(cn) != len(brute) || len(gql) != len(brute) {
				t.Logf("seed %d pattern %s: cn=%d gql=%d brute=%d", seed, p.Name, len(cn), len(gql), len(brute))
				return false
			}
			for i := range cn {
				if cn[i] != brute[i] || gql[i] != brute[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchersOnPreferentialAttachment(t *testing.T) {
	g := gen.PreferentialAttachment(200, 3, 11)
	gen.AssignLabels(g, 4, 12)
	p := pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"})
	cn := FindMatches(CN{}, g, p)
	gql := FindMatches(GQL{}, g, p)
	sameMatchSets(t, p, cn, gql, "CN", "GQL")
	if len(cn) == 0 {
		t.Log("warning: no labeled triangles in this instance")
	}
}

func TestEmptyPattern(t *testing.T) {
	g := triangleGraph()
	p := pattern.New("empty")
	if got := (CN{}).Embeddings(g, p); got != nil {
		t.Fatal("empty pattern should yield nil")
	}
	if got := (GQL{}).Embeddings(g, p); got != nil {
		t.Fatal("empty pattern should yield nil (GQL)")
	}
	if got := (Brute{}).Embeddings(g, p); got != nil {
		t.Fatal("empty pattern should yield nil (BRUTE)")
	}
}

func TestMatcherNames(t *testing.T) {
	if (CN{}).Name() != "CN" || (GQL{}).Name() != "GQL" || (Brute{}).Name() != "BRUTE" {
		t.Fatal("matcher names wrong")
	}
}

func TestPatternLargerThanGraph(t *testing.T) {
	g := graph.New(false)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b)
	p := pattern.Clique("clq3", 3, nil)
	if got := FindMatches(CN{}, g, p); len(got) != 0 {
		t.Fatalf("matches = %d want 0", len(got))
	}
}

// Negated edges verified independently of EvalAll: every returned
// embedding must lack the forbidden adjacency when checked directly
// against the graph's edge list.
func TestNegatedEdgeIndependentCheck(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(16, 40, seed)
		p := pattern.New("openpath")
		a := p.MustAddNode("A", "")
		b := p.MustAddNode("B", "")
		c := p.MustAddNode("C", "")
		p.MustAddEdge(a, b, false, false)
		p.MustAddEdge(b, c, false, false)
		p.MustAddEdge(a, c, false, true)
		for _, m := range FindMatches(CN{}, g, p) {
			// direct scan of the edge table, bypassing FindEdge/EvalAll
			for e := 0; e < g.NumEdges(); e++ {
				ed := g.Edge(graph.EdgeID(e))
				if (ed.From == m[a] && ed.To == m[c]) || (ed.From == m[c] && ed.To == m[a]) {
					return false
				}
			}
			if !g.HasEdge(m[a], m[b]) || !g.HasEdge(m[b], m[c]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Dedup invariant: the number of embeddings of an unlabeled n-clique is
// exactly n! per distinct match.
func TestCliqueAutomorphismFactor(t *testing.T) {
	g := gen.ErdosRenyi(14, 45, 77)
	for _, n := range []int{3, 4} {
		p := pattern.Clique("clq", n, nil)
		emb := len(CN{}.Embeddings(g, p))
		ms := len(FindMatches(CN{}, g, p))
		fact := 1
		for i := 2; i <= n; i++ {
			fact *= i
		}
		if emb != ms*fact {
			t.Fatalf("clq%d: %d embeddings for %d matches (want factor %d)", n, emb, ms, fact)
		}
	}
}
