package match

import (
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// Brute is a reference matcher used to cross-validate CN and GQL in tests:
// plain backtracking over all graph nodes with direct structure, label,
// predicate, and negated-edge checks. Exponential; only for small graphs.
type Brute struct{}

// Name implements Matcher.
func (Brute) Name() string { return "BRUTE" }

// Embeddings implements Matcher.
func (Brute) Embeddings(g *graph.Graph, p *pattern.Pattern) []pattern.Match {
	if p.NumNodes() == 0 {
		return nil
	}
	np := p.NumNodes()
	reqs := pairRequirements(p)
	assignment := make(pattern.Match, np)
	used := make(map[graph.NodeID]bool, np)
	var results []pattern.Match

	var recurse func(v int)
	recurse = func(v int) {
		if v == np {
			m := make(pattern.Match, np)
			copy(m, assignment)
			if p.EvalAll(g, m) {
				results = append(results, m)
			}
			return
		}
		wantLabel := p.Node(v).Label
	nodes:
		for i := 0; i < g.NumNodes(); i++ {
			n := graph.NodeID(i)
			if used[n] {
				continue
			}
			if wantLabel != "" && g.LabelString(n) != wantLabel {
				continue
			}
			// check positive edges to already-assigned neighbors
			for j, u := range p.PositiveNeighbors(v) {
				if u >= v || assignment[u] < 0 {
					continue
				}
				r := reqs[v][j]
				img := assignment[u]
				if r.needOut && !directedEdgeExists(g, n, img) {
					continue nodes
				}
				if r.needIn && !directedEdgeExists(g, img, n) {
					continue nodes
				}
				if r.needAny && !directedEdgeExists(g, n, img) && !directedEdgeExists(g, img, n) {
					continue nodes
				}
			}
			assignment[v] = n
			used[n] = true
			recurse(v + 1)
			delete(used, n)
			assignment[v] = -1
		}
	}
	for i := range assignment {
		assignment[i] = -1
	}
	recurse(0)
	return results
}
