package match

import (
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// GQL reimplements the matching strategy of GraphQL (He & Singh, SIGMOD
// 2008), the paper's baseline: profile-filtered candidates, iterative
// refinement through local semi-perfect bipartite matching between pattern
// and candidate neighborhoods, and a backtracking search that scans
// candidate *sets* (rather than candidate neighbor sets) and verifies
// adjacency against the graph for every assigned neighbor. The search
// stage is what the CN algorithm's candidate neighbor sets avoid, and is
// the source of the orders-of-magnitude gap reported in Fig 4(a)/(b).
type GQL struct {
	// RefinementPasses is the number of pseudo-isomorphism refinement
	// sweeps (GraphQL's refinement level). Zero means the default of 2.
	RefinementPasses int
}

// Name implements Matcher.
func (GQL) Name() string { return "GQL" }

// Embeddings implements Matcher.
func (m GQL) Embeddings(g *graph.Graph, p *pattern.Pattern) []pattern.Match {
	if p.NumNodes() == 0 {
		return nil
	}
	passes := m.RefinementPasses
	if passes <= 0 {
		passes = 2
	}
	reqs := pairRequirements(p)
	cand := enumerateCandidates(g, p)
	inCand := make([]map[graph.NodeID]bool, p.NumNodes())
	for v, list := range cand {
		inCand[v] = make(map[graph.NodeID]bool, len(list))
		for _, n := range list {
			inCand[v][n] = true
		}
	}

	// Iterative refinement: n stays a candidate for v only if there is a
	// semi-perfect matching from v's pattern neighbors to n's graph
	// neighbors in which each pattern neighbor u is matched to a distinct
	// graph neighbor that is a candidate for u and satisfies the edge
	// direction requirements.
	for pass := 0; pass < passes; pass++ {
		changed := false
		for v := 0; v < p.NumNodes(); v++ {
			nbrs := p.PositiveNeighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			live := cand[v][:0]
			for _, n := range cand[v] {
				if semiPerfectMatching(g, n, nbrs, reqs[v], inCand) {
					live = append(live, n)
				} else {
					delete(inCand[v], n)
					changed = true
				}
			}
			cand[v] = live
		}
		if !changed {
			break
		}
	}

	return gqlSearch(g, p, cand, inCand, reqs)
}

// semiPerfectMatching runs Kuhn's augmenting-path algorithm on the
// bipartite graph between v's pattern neighbors (left) and n's graph
// neighbors (right).
func semiPerfectMatching(g *graph.Graph, n graph.NodeID, nbrs []int, reqs []edgeReq, inCand []map[graph.NodeID]bool) bool {
	out, in := neighborSets(g, n)
	gnbrs := distinctNeighbors(g, n)
	if len(gnbrs) < len(nbrs) {
		return false
	}
	// adj[j] lists the indices into gnbrs usable by pattern neighbor j.
	adj := make([][]int, len(nbrs))
	for j, u := range nbrs {
		for i, nb := range gnbrs {
			if nb == n {
				continue
			}
			if !inCand[u][nb] {
				continue
			}
			if !reqs[j].satisfies(nb, out, in) {
				continue
			}
			adj[j] = append(adj[j], i)
		}
		if len(adj[j]) == 0 {
			return false
		}
	}
	matchOf := make([]int, len(gnbrs)) // right -> left, -1 free
	for i := range matchOf {
		matchOf[i] = -1
	}
	var visited []bool
	var tryAugment func(j int) bool
	tryAugment = func(j int) bool {
		for _, i := range adj[j] {
			if visited[i] {
				continue
			}
			visited[i] = true
			if matchOf[i] < 0 || tryAugment(matchOf[i]) {
				matchOf[i] = j
				return true
			}
		}
		return false
	}
	for j := range nbrs {
		visited = make([]bool, len(gnbrs))
		if !tryAugment(j) {
			return false
		}
	}
	return true
}

// gqlSearch is the GraphQL-style retrieve-and-join: for each pattern node
// in the search order, scan its full candidate list and keep candidates
// adjacent (with the right direction) to the images of all previously
// assigned pattern neighbors.
func gqlSearch(g *graph.Graph, p *pattern.Pattern, cand [][]graph.NodeID, inCand []map[graph.NodeID]bool, reqs [][]edgeReq) []pattern.Match {
	order := p.SearchOrder()
	n := p.NumNodes()
	posInOrder := make([]int, n)
	for i, v := range order {
		posInOrder[v] = i
	}
	type backEdge struct {
		u   int     // earlier pattern node
		req edgeReq // requirement between order[i] and u, from order[i]'s perspective
	}
	earlier := make([][]backEdge, n)
	for i := 1; i < n; i++ {
		v := order[i]
		for j, u := range p.PositiveNeighbors(v) {
			if posInOrder[u] < i {
				earlier[i] = append(earlier[i], backEdge{u: u, req: reqs[v][j]})
			}
		}
	}

	assignment := make(pattern.Match, n)
	used := make(map[graph.NodeID]bool, n)
	var results []pattern.Match

	var recurse func(i int)
	recurse = func(i int) {
		if i == n {
			m := make(pattern.Match, n)
			copy(m, assignment)
			if p.EvalAll(g, m) {
				results = append(results, m)
			}
			return
		}
		v := order[i]
	cands:
		for _, c := range cand[v] {
			if used[c] {
				continue
			}
			// Adjacency verification against the graph for every earlier
			// neighbor — the per-candidate work GraphQL pays.
			for _, b := range earlier[i] {
				// b.req is from v's perspective: needOut means edge
				// v -> u, i.e. image c -> assignment[u].
				img := assignment[b.u]
				if b.req.needOut && !directedEdgeExists(g, c, img) {
					continue cands
				}
				if b.req.needIn && !directedEdgeExists(g, img, c) {
					continue cands
				}
				if b.req.needAny && !directedEdgeExists(g, c, img) && !directedEdgeExists(g, img, c) {
					continue cands
				}
			}
			assignment[v] = c
			used[c] = true
			recurse(i + 1)
			delete(used, c)
		}
	}
	recurse(0)
	return results
}

// directedEdgeExists reports whether an edge a -> b exists (any edge for
// undirected graphs), by scanning a's adjacency list.
func directedEdgeExists(g *graph.Graph, a, b graph.NodeID) bool {
	if !g.Directed() {
		return g.HasEdge(a, b)
	}
	for _, h := range g.Out(a) {
		if h.To == b {
			return true
		}
	}
	return false
}
