package match

import (
	"math/rand"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// sliceSet is a minimal NodeSet over an explicit member list.
type sliceSet struct {
	nodes []graph.NodeID
	set   map[graph.NodeID]bool
}

func newSliceSet(nodes []graph.NodeID) sliceSet {
	s := sliceSet{nodes: nodes, set: make(map[graph.NodeID]bool, len(nodes))}
	for _, n := range nodes {
		s.set[n] = true
	}
	return s
}

func (s sliceSet) Contains(n graph.NodeID) bool { return s.set[n] }
func (s sliceSet) Members() []graph.NodeID      { return s.nodes }

func countViaEmbeddings(m MaskedMatcher, g *graph.Graph, p *pattern.Pattern, within NodeSet, subNodes []int) (int, int) {
	embs := m.EmbeddingsWithin(g, p, within)
	return CountDistinct(p, embs, subNodes), len(embs)
}

// TestCountRunMatchesCountDistinct cross-checks the zero-alloc counting
// path against the materializing path across random graphs, patterns,
// masks, and subpattern identities — reusing one CountRun throughout, as
// census workers do.
func TestCountRunMatchesCountDistinct(t *testing.T) {
	patterns := []*pattern.Pattern{
		pattern.Clique("clq3", 3, nil),
		pattern.Clique("clq3l", 3, []string{"l0", "l1", "l0"}),
		pattern.Square("sqr", nil),
		pattern.Chain("ch4", 4, []string{"l0", "", "l1", ""}),
		pattern.Star("st4", 4, nil),
	}
	run := (CN{}).NewCountRun()
	rng := rand.New(rand.NewSource(5))
	for seed := int64(0); seed < 12; seed++ {
		g := randomLabeledGraph(seed, 20, 44, 2)
		// A random mask of about half the nodes, plus the nil mask.
		var masked []graph.NodeID
		for i := 0; i < g.NumNodes(); i++ {
			if rng.Intn(2) == 0 {
				masked = append(masked, graph.NodeID(i))
			}
		}
		masks := []NodeSet{nil, newSliceSet(masked)}
		for _, p := range patterns {
			for _, within := range masks {
				for _, subNodes := range [][]int{nil, {0}} {
					wantD, wantE := countViaEmbeddings(CN{}, g, p, within, subNodes)
					gotD, gotE := run.CountWithin(g, p, within, subNodes)
					if gotD != wantD || gotE != wantE {
						t.Fatalf("seed %d pattern %s mask=%v sub=%v: CountWithin = (%d, %d), want (%d, %d)",
							seed, p.Name, within != nil, subNodes, gotD, gotE, wantD, wantE)
					}
				}
			}
		}
	}
}

// TestHubKernelEquivalence forces the bitmap-AND path: a preferential-
// attachment graph large enough that its hubs clear HubDegreeThreshold,
// checked against brute force and against the scalar path on an
// identical graph whose hub cache is never built (directed graphs skip
// it, so instead compare against GQL which never uses bitmaps).
func TestHubKernelEquivalence(t *testing.T) {
	g := gen.PreferentialAttachment(400, 6, 3)
	gen.AssignLabels(g, 3, 4)
	g.BuildHubBitmaps()
	if g.HubCount() == 0 {
		t.Fatal("test graph has no hubs; raise density")
	}
	for _, p := range []*pattern.Pattern{
		pattern.Clique("clq3", 3, nil),
		pattern.Star("st4", 4, []string{"", "l0", "l1", "l2"}),
		pattern.Square("sqr", nil),
	} {
		cn := FindMatches(CN{}, g, p)
		gql := FindMatches(GQL{}, g, p)
		sameMatchSets(t, p, cn, gql, "CN(hub)", "GQL")

		run := (CN{}).NewCountRun()
		gotD, _ := run.CountWithin(g, p, nil, nil)
		if gotD != len(cn) {
			t.Fatalf("pattern %s: CountWithin distinct = %d, want %d", p.Name, gotD, len(cn))
		}
	}
}

// TestHubKernelMasked drives the hub path under a mask that excludes part
// of the hub's neighborhood, so the candidate bitmaps differ from the
// full adjacency.
func TestHubKernelMasked(t *testing.T) {
	g := gen.PreferentialAttachment(300, 5, 9)
	g.BuildHubBitmaps()
	var members []graph.NodeID
	for i := 0; i < g.NumNodes(); i += 2 {
		members = append(members, graph.NodeID(i))
	}
	within := newSliceSet(members)
	p := pattern.Clique("clq3", 3, nil)
	// Oracle: masked matching equals full matching filtered to embeddings
	// whose entire image lies in the mask (the subgraph is induced).
	var filtered []pattern.Match
	for _, m := range (GQL{}).Embeddings(g, p) {
		ok := true
		for _, n := range m {
			if !within.Contains(n) {
				ok = false
				break
			}
		}
		if ok {
			filtered = append(filtered, m)
		}
	}
	want := Deduplicate(p, filtered, nil)
	got := Deduplicate(p, (CN{}).EmbeddingsWithin(g, p, within), nil)
	sameMatchSets(t, p, got, want, "CN(hub,masked)", "GQL(filtered)")
}

// TestCountRunStopped verifies that a pre-tripped stop yields a clean,
// empty result instead of a partial or corrupted one.
func TestCountRunStopped(t *testing.T) {
	g := gen.PreferentialAttachment(200, 4, 1)
	p := pattern.Clique("clq3", 3, nil)
	run := CN{Stop: func() bool { return true }}.NewCountRun()
	d, e := run.CountWithin(g, p, nil, nil)
	full, _ := (CN{}).NewCountRun().CountWithin(g, p, nil, nil)
	if d > full || e < d {
		t.Fatalf("stopped run: distinct=%d embeddings=%d (full=%d)", d, e, full)
	}
	// The same run object must recover for subsequent un-stopped use.
	run2 := (CN{}).NewCountRun()
	d2, _ := run2.CountWithin(g, p, nil, nil)
	if d2 != full {
		t.Fatalf("fresh run after stop: %d, want %d", d2, full)
	}
}

func TestKeysetBasics(t *testing.T) {
	var k keyset
	k.reset()
	keys := [][]byte{[]byte("a"), []byte("bb"), []byte("a"), []byte(""), []byte("ccc"), []byte("bb")}
	wantNew := []bool{true, true, false, true, true, false}
	for i, key := range keys {
		if got := k.insert(key); got != wantNew[i] {
			t.Fatalf("insert %q (#%d) = %v, want %v", key, i, got, wantNew[i])
		}
	}
	if k.count != 4 {
		t.Fatalf("count = %d, want 4", k.count)
	}
	k.reset()
	if k.count != 0 {
		t.Fatalf("count after reset = %d", k.count)
	}
	if !k.insert([]byte("a")) {
		t.Fatal("reset did not clear membership")
	}
}

func TestKeysetGrowth(t *testing.T) {
	var k keyset
	k.reset()
	buf := make([]byte, 4)
	for i := 0; i < 1000; i++ {
		buf[0], buf[1], buf[2], buf[3] = byte(i), byte(i>>8), byte(i>>16), 7
		if !k.insert(buf) {
			t.Fatalf("key %d reported duplicate", i)
		}
	}
	if k.count != 1000 {
		t.Fatalf("count = %d, want 1000", k.count)
	}
	for i := 0; i < 1000; i++ {
		buf[0], buf[1], buf[2], buf[3] = byte(i), byte(i>>8), byte(i>>16), 7
		if k.insert(buf) {
			t.Fatalf("key %d lost after growth", i)
		}
	}
}

// BenchmarkCountRunSteadyState measures the per-focal allocation bill of
// the counting path the census drivers use.
func BenchmarkCountRunSteadyState(b *testing.B) {
	g := gen.PreferentialAttachment(1000, 5, 1)
	gen.AssignLabels(g, 4, 2)
	g.BuildCSR()
	g.BuildHubBitmaps()
	p := pattern.Clique("clq3", 3, nil)
	run := (CN{}).NewCountRun()
	run.CountWithin(g, p, nil, nil) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.CountWithin(g, p, nil, nil)
	}
}
