package match

import (
	"sync"

	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// CN is the paper's candidate-neighbor pattern matching algorithm
// (Algorithm 1): profile-filtered candidates, per-candidate candidate
// neighbor sets, simultaneous pruning of both, and match extraction that
// joins candidate neighbor sets instead of scanning candidate sets.
//
// The implementation runs on flat, pooled data structures: candidate
// membership and candidate positions live in epoch-stamped dense arrays
// (no per-run maps), candidate neighbor sets are carved from per-pattern-
// node arenas, and neighbor iteration uses the graph's CSR view. CN also
// implements MaskedMatcher, enumerating embeddings restricted to a node
// subset in place — the node-driven baseline census matches inside k-hop
// neighborhoods without extracting subgraphs.
type CN struct {
	// Stop, when non-nil, is polled (epoch-counted) during candidate
	// construction, pruning, and extraction; once it returns true the run
	// winds down and returns the embeddings found so far. Set via WithStop.
	Stop func() bool
}

// Name implements Matcher.
func (CN) Name() string { return "CN" }

// WithStop implements Stoppable.
func (c CN) WithStop(stop func() bool) Matcher {
	c.Stop = stop
	return c
}

// cnScratch is the pooled flat working memory of one matching run. The
// member/pos planes are indexed [v*numNodes + node]; epoch stamping makes
// per-run reset O(1).
type cnScratch struct {
	member []int32 // member[v*n+node] == epoch ⇒ node ∈ C(v) and live
	pos    []int32 // index of node within cand[v], valid when member stamped
	outDir []int32 // current candidate's out-neighbor marks (dirEpoch)
	inDir  []int32 // current candidate's in-neighbor marks (directed only)
	nbrBuf []graph.NodeID
	epoch  int32
	dirEp  int32
}

var cnScratchPool = sync.Pool{New: func() any { return new(cnScratch) }}

func acquireCNScratch(planes, n int) *cnScratch {
	sc := cnScratchPool.Get().(*cnScratch)
	if len(sc.member) < planes*n {
		sc.member = make([]int32, planes*n)
		sc.pos = make([]int32, planes*n)
		sc.epoch = 0
	}
	if len(sc.outDir) < n {
		sc.outDir = make([]int32, n)
		sc.inDir = make([]int32, n)
		sc.dirEp = 0
	}
	sc.epoch++
	if sc.epoch <= 0 { // wraparound: clear and restart
		for i := range sc.member {
			sc.member[i] = 0
		}
		sc.epoch = 1
	}
	return sc
}

func (sc *cnScratch) release() { cnScratchPool.Put(sc) }

// cnState holds the candidate structures for one matching run.
type cnState struct {
	g  *graph.Graph
	p  *pattern.Pattern
	n  int // number of graph nodes
	sc *cnScratch

	cand [][]graph.NodeID   // C(v) in enumeration order (dead entries skipped via member)
	reqs [][]edgeReq        // direction requirements per (v, j)
	cn   [][][]graph.NodeID // cn[v][pos*deg(v)+j] = CN(n, v, v_j)

	stop  func() bool // optional cancellation poll (see CN.Stop)
	ticks uint32      // epoch counter for halted
	halt  bool        // latched once stop() returned true
}

// cnCheckEvery is the epoch length of the cancellation poll: one stop()
// call per this many halted() probes keeps the hot loops branch-cheap.
const cnCheckEvery = 4096

// halted reports whether the run must wind down, polling stop once per
// epoch and latching the result so subsequent probes are a field read.
func (st *cnState) halted() bool {
	if st.halt {
		return true
	}
	if st.stop == nil {
		return false
	}
	st.ticks++
	if st.ticks%cnCheckEvery != 0 {
		return false
	}
	if st.stop() {
		st.halt = true
	}
	return st.halt
}

func (st *cnState) live(v int, n graph.NodeID) bool {
	return st.sc.member[v*st.n+int(n)] == st.sc.epoch
}

func (st *cnState) kill(v int, n graph.NodeID) {
	st.sc.member[v*st.n+int(n)] = 0
}

func (st *cnState) posOf(v int, n graph.NodeID) int32 {
	return st.sc.pos[v*st.n+int(n)]
}

// Embeddings implements Matcher.
func (c CN) Embeddings(g *graph.Graph, p *pattern.Pattern) []pattern.Match {
	return c.EmbeddingsWithin(g, p, nil)
}

// EmbeddingsWithin implements MaskedMatcher: it enumerates the embeddings
// whose every image node lies in `within` (nil means the whole graph),
// matching directly against the parent graph. Because an induced
// neighborhood subgraph contains exactly the parent edges between its
// nodes, masked matching is equivalent to extracting the subgraph and
// matching inside it — minus the extraction.
func (c CN) EmbeddingsWithin(g *graph.Graph, p *pattern.Pattern, within NodeSet) []pattern.Match {
	if p.NumNodes() == 0 {
		return nil
	}
	st := &cnState{g: g, p: p, n: g.NumNodes(), reqs: pairRequirements(p), stop: c.Stop}
	st.sc = acquireCNScratch(p.NumNodes(), st.n)
	defer st.sc.release()

	// Step 1: enumerate candidates and stamp membership/positions.
	st.cand = enumerateCandidatesWithin(g, p, within)
	for v, list := range st.cand {
		base := v * st.n
		for i, n := range list {
			st.sc.member[base+int(n)] = st.sc.epoch
			st.sc.pos[base+int(n)] = int32(i)
		}
	}

	// Step 2: initialize candidate neighbor sets.
	st.initCandidateNeighbors()

	// Step 3: simultaneously prune candidates and candidate neighbors.
	st.prune()

	// Step 4: extract matches by joining candidate neighbor sets.
	return st.extract()
}

// candNeighbors returns the distinct-neighbor iteration list of n: the CSR
// out slice for undirected graphs (one entry per half-edge, matching the
// adjacency representation), or the deduplicated out∪in union for directed
// graphs, built in the scratch buffer. Must be consumed before the next
// candNeighbors call.
func (st *cnState) candNeighbors(n graph.NodeID) []graph.NodeID {
	if !st.g.Directed() {
		return st.g.OutNeighbors(n)
	}
	sc := st.sc
	buf := sc.nbrBuf[:0]
	// outDir doubles as the dedup mark here; it is re-stamped below.
	sc.dirEp++
	for _, nb := range st.g.OutNeighbors(n) {
		if sc.outDir[nb] != sc.dirEp {
			sc.outDir[nb] = sc.dirEp
			buf = append(buf, nb)
		}
	}
	for _, nb := range st.g.InNeighbors(n) {
		if sc.outDir[nb] != sc.dirEp {
			sc.outDir[nb] = sc.dirEp
			buf = append(buf, nb)
		}
	}
	sc.nbrBuf = buf
	return buf
}

// markDirections stamps n's out- and in-neighbor sets so edge-direction
// requirements test in O(1).
func (st *cnState) markDirections(n graph.NodeID) {
	sc := st.sc
	sc.dirEp++
	for _, nb := range st.g.OutNeighbors(n) {
		sc.outDir[nb] = sc.dirEp
	}
	if st.g.Directed() {
		for _, nb := range st.g.InNeighbors(n) {
			sc.inDir[nb] = sc.dirEp
		}
	}
}

// reqOK tests requirement r for neighbor nb of the currently marked
// candidate.
func (st *cnState) reqOK(r edgeReq, nb graph.NodeID) bool {
	sc := st.sc
	hasOut := sc.outDir[nb] == sc.dirEp
	hasIn := hasOut
	if st.g.Directed() {
		hasIn = sc.inDir[nb] == sc.dirEp
	}
	if r.needOut && !hasOut {
		return false
	}
	if r.needIn && !hasIn {
		return false
	}
	if r.needAny && !hasOut && !hasIn {
		return false
	}
	return true
}

func (st *cnState) initCandidateNeighbors() {
	p := st.p
	st.cn = make([][][]graph.NodeID, p.NumNodes())
	for v := 0; v < p.NumNodes(); v++ {
		nbrs := p.PositiveNeighbors(v)
		deg := len(nbrs)
		sets := make([][]graph.NodeID, len(st.cand[v])*deg)
		st.cn[v] = sets
		if deg == 0 {
			continue
		}
		// Arena sized by an upper bound on total CN entries; if an append
		// ever grows past it, earlier sets keep their old backing — safe,
		// merely unshared.
		bound := 0
		for _, n := range st.cand[v] {
			bound += st.g.Degree(n) * deg
		}
		arena := make([]graph.NodeID, 0, bound)
		for ci, n := range st.cand[v] {
			if st.halted() {
				return
			}
			// The neighbor list must be captured per candidate because the
			// directed variant shares the scratch buffer.
			neighbors := st.candNeighbors(n)
			st.markDirections(n)
			for j, u := range nbrs {
				req := st.reqs[v][j]
				ubase := u * st.n
				start := len(arena)
				for _, nb := range neighbors {
					if nb == n {
						continue
					}
					if st.sc.member[ubase+int(nb)] != st.sc.epoch {
						continue
					}
					if !st.reqOK(req, nb) {
						continue
					}
					arena = append(arena, nb)
				}
				sets[ci*deg+j] = arena[start:len(arena):len(arena)]
			}
		}
	}
}

// prune alternates the two pruning rules of Section III-C until fixpoint:
// drop candidates with an empty candidate neighbor set, and drop candidate
// neighbors that are no longer candidates themselves.
func (st *cnState) prune() {
	p := st.p
	for changed := true; changed && !st.halted(); {
		changed = false
		// Rule 1: every candidate needs a non-empty CN set per pattern
		// neighbor.
		for v := 0; v < p.NumNodes(); v++ {
			deg := len(p.PositiveNeighbors(v))
			for ci, n := range st.cand[v] {
				if st.halted() {
					return
				}
				if !st.live(v, n) {
					continue
				}
				ok := true
				for j := 0; j < deg; j++ {
					if len(st.cn[v][ci*deg+j]) == 0 {
						ok = false
						break
					}
				}
				if !ok {
					st.kill(v, n)
					changed = true
				}
			}
		}
		// Rule 2: candidate neighbors must still be candidates.
		for v := 0; v < p.NumNodes(); v++ {
			nbrs := p.PositiveNeighbors(v)
			deg := len(nbrs)
			for ci, n := range st.cand[v] {
				if st.halted() {
					return
				}
				if !st.live(v, n) {
					continue
				}
				for j := 0; j < deg; j++ {
					u := nbrs[j]
					ubase := u * st.n
					set := st.cn[v][ci*deg+j]
					liveSet := set[:0]
					for _, nb := range set {
						if st.sc.member[ubase+int(nb)] == st.sc.epoch {
							liveSet = append(liveSet, nb)
						} else {
							changed = true
						}
					}
					st.cn[v][ci*deg+j] = liveSet
				}
			}
		}
	}
}

// extract performs the forward join of Algorithm 1 lines 14-21 as a
// backtracking search over the connected-prefix order: the possible images
// of the next pattern node are the intersection of the candidate neighbor
// sets of the already-assigned neighbors.
func (st *cnState) extract() []pattern.Match {
	p := st.p
	order := p.SearchOrder()
	n := p.NumNodes()

	// posInOrder[v] = position of pattern node v in the order.
	posInOrder := make([]int, n)
	for i, v := range order {
		posInOrder[v] = i
	}
	// earlier[i] = for order[i], the list of (assigned pattern node u,
	// index j of order[i] in u's PositiveNeighbors list).
	type backEdge struct{ u, j int }
	earlier := make([][]backEdge, n)
	for i := 1; i < n; i++ {
		v := order[i]
		for _, u := range p.PositiveNeighbors(v) {
			if posInOrder[u] < i {
				// find index of v within u's neighbor list
				for j, w := range p.PositiveNeighbors(u) {
					if w == v {
						earlier[i] = append(earlier[i], backEdge{u, j})
						break
					}
				}
			}
		}
	}

	assignment := make(pattern.Match, n)
	used := make([]graph.NodeID, 0, n)
	isUsed := func(c graph.NodeID) bool {
		for _, x := range used {
			if x == c {
				return true
			}
		}
		return false
	}
	var results []pattern.Match

	// cnSet returns CN(assignment[u], u, u's j-th pattern neighbor).
	cnSet := func(b backEdge) []graph.NodeID {
		img := assignment[b.u]
		deg := len(p.PositiveNeighbors(b.u))
		return st.cn[b.u][int(st.posOf(b.u, img))*deg+b.j]
	}

	var recurse func(i int)
	recurse = func(i int) {
		if st.halted() {
			return
		}
		if i == n {
			m := make(pattern.Match, n)
			copy(m, assignment)
			if p.EvalAll(st.g, m) {
				results = append(results, m)
			}
			return
		}
		v := order[i]
		if i == 0 {
			for _, cand := range st.cand[v] {
				if !st.live(v, cand) {
					continue
				}
				assignment[v] = cand
				used = append(used, cand)
				recurse(1)
				used = used[:len(used)-1]
			}
			return
		}
		// Intersect the candidate neighbor sets of all earlier neighbors,
		// seeding from the smallest set.
		be := earlier[i]
		smallest := -1
		size := int(^uint(0) >> 1)
		for idx, b := range be {
			if set := cnSet(b); len(set) < size {
				size = len(set)
				smallest = idx
			}
		}
		if smallest < 0 {
			return // disconnected order; Validate prevents this
		}
		seed := cnSet(be[smallest])
	cands:
		for _, cand := range seed {
			if isUsed(cand) {
				continue
			}
			for idx, b := range be {
				if idx == smallest {
					continue
				}
				if !contains(cnSet(b), cand) {
					continue cands
				}
			}
			assignment[v] = cand
			used = append(used, cand)
			recurse(i + 1)
			used = used[:len(used)-1]
		}
	}
	recurse(0)
	return results
}

func contains(list []graph.NodeID, n graph.NodeID) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}
