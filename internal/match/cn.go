package match

import (
	"bytes"
	"sync"

	"egocensus/internal/bitset"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// CN is the paper's candidate-neighbor pattern matching algorithm
// (Algorithm 1): profile-filtered candidates, per-candidate candidate
// neighbor sets, simultaneous pruning of both, and match extraction that
// joins candidate neighbor sets instead of scanning candidate sets.
//
// The implementation runs on a reusable runner: candidate membership and
// positions live in epoch-stamped dense planes, candidate lists and
// candidate neighbor sets are carved from grow-only per-plane arenas, and
// pattern-derived structures (direction requirements, compiled label
// profiles, search order, back edges) are compiled once per (graph,
// pattern) pair and cached. Candidate-neighbor construction for
// high-degree nodes runs on the bitset kernels: the node's cached hub
// bitmap is ANDed against a per-pattern-node candidate bitmap, replacing
// one membership probe per adjacency entry with one word-AND per 64
// nodes. CN implements MaskedMatcher (enumeration restricted to a node
// subset, in place on the parent graph) and MaskedCounter (distinct-match
// counting with no per-call heap allocation in steady state).
type CN struct {
	// Stop, when non-nil, is polled (epoch-counted) during candidate
	// construction, pruning, and extraction; once it returns true the run
	// winds down and returns the embeddings found so far. Set via WithStop.
	Stop func() bool
}

// Name implements Matcher.
func (CN) Name() string { return "CN" }

// WithStop implements Stoppable.
func (c CN) WithStop(stop func() bool) Matcher {
	c.Stop = stop
	return c
}

// Embeddings implements Matcher.
func (c CN) Embeddings(g *graph.Graph, p *pattern.Pattern) []pattern.Match {
	return c.EmbeddingsWithin(g, p, nil)
}

// EmbeddingsWithin implements MaskedMatcher: it enumerates the embeddings
// whose every image node lies in `within` (nil means the whole graph),
// matching directly against the parent graph. Because an induced
// neighborhood subgraph contains exactly the parent edges between its
// nodes, masked matching is equivalent to extracting the subgraph and
// matching inside it — minus the extraction.
func (c CN) EmbeddingsWithin(g *graph.Graph, p *pattern.Pattern, within NodeSet) []pattern.Match {
	r := runnerPool.Get().(*cnRunner)
	r.stop = c.Stop
	var out []pattern.Match
	r.run(g, p, within, func(m pattern.Match) {
		cp := make(pattern.Match, len(m))
		copy(cp, m)
		out = append(out, cp)
	})
	r.stop = nil
	runnerPool.Put(r)
	return out
}

// NewCountRun implements MaskedCounter. The returned run owns a private
// runner — it is reusable but not safe for concurrent use; the census
// drivers hold one per worker.
func (c CN) NewCountRun() CountRun {
	cr := &cnCountRun{r: new(cnRunner), stop: c.Stop}
	cr.emitFn = cr.onMatch
	return cr
}

// cnCountRun counts distinct matches through a persistent runner and an
// open-addressed key set over an AppendKey byte arena, replacing the
// map[string]struct{} (and its per-key string allocations) of
// CountDistinct on the census hot path.
type cnCountRun struct {
	r        *cnRunner
	stop     func() bool
	emitFn   func(pattern.Match)
	p        *pattern.Pattern
	subNodes []int
	embs     int
}

func (cr *cnCountRun) onMatch(m pattern.Match) {
	cr.embs++
	r := cr.r
	r.keyBuf = cr.p.AppendKey(r.keyBuf[:0], m, cr.subNodes)
	r.ks.insert(r.keyBuf)
}

// CountWithin implements CountRun.
func (cr *cnCountRun) CountWithin(g *graph.Graph, p *pattern.Pattern, within NodeSet, subNodes []int) (distinct, embeddings int) {
	r := cr.r
	r.stop = cr.stop
	cr.p, cr.subNodes, cr.embs = p, subNodes, 0
	r.ks.reset()
	r.run(g, p, within, cr.emitFn)
	return r.ks.count, cr.embs
}

var runnerPool = sync.Pool{New: func() any { return new(cnRunner) }}

// cnCheckEvery is the epoch length of the cancellation poll: one stop()
// call per this many halted() probes keeps the hot loops branch-cheap.
const cnCheckEvery = 4096

// backEdge points from a pattern node in the search order back to an
// already-assigned positive neighbor u; j is the index of the current
// node within u's PositiveNeighbors list.
type backEdge struct{ u, j int32 }

// labelReq is one entry of a compiled neighborhood profile: the candidate
// must have at least count neighbors carrying label.
type labelReq struct {
	label graph.LabelID
	count int32
}

// compiledProfile is buildPatternProfile flattened for the hot path: the
// node's own label constraint plus per-label neighbor requirements as a
// scan-friendly slice instead of a map.
type compiledProfile struct {
	label      graph.LabelID
	hasLabel   bool
	impossible bool // a required label does not occur in the graph at all
	perLabel   []labelReq
	degree     int
}

func (cp *compiledProfile) matches(g *graph.Graph, n graph.NodeID) bool {
	if g.Degree(n) < cp.degree {
		return false
	}
	np := g.NodeProfile(n)
	for _, lr := range cp.perLabel {
		if int(lr.label) >= len(np) || np[lr.label] < lr.count {
			return false
		}
	}
	return true
}

// compiledPattern caches every pattern-derived structure a matching run
// needs, so repeated runs over the same (graph, pattern) pair — one per
// focal node in a census — recompute nothing. labelsSize guards against
// a mutable graph growing its label dictionary between runs.
type compiledPattern struct {
	g          *graph.Graph
	p          *pattern.Pattern
	labelsSize int
	reqs       [][]edgeReq
	profiles   []compiledProfile
	deg        []int32 // len(PositiveNeighbors(v))
	order      []int
	earlier    [][]backEdge
}

func compilePattern(g *graph.Graph, p *pattern.Pattern) *compiledPattern {
	n := p.NumNodes()
	pc := &compiledPattern{
		g: g, p: p, labelsSize: g.Labels().Size(),
		reqs:     pairRequirements(p),
		profiles: make([]compiledProfile, n),
		deg:      make([]int32, n),
	}
	for v := 0; v < n; v++ {
		prof := compiledProfile{}
		if l := p.Node(v).Label; l != "" {
			prof.hasLabel = true
			if id, ok := g.Labels().Lookup(l); ok {
				prof.label = id
			} else {
				prof.impossible = true
			}
		}
		for _, u := range p.PositiveNeighbors(v) {
			prof.degree++
			if l := p.Node(u).Label; l != "" {
				id, ok := g.Labels().Lookup(l)
				if !ok {
					prof.impossible = true
					continue
				}
				found := false
				for i := range prof.perLabel {
					if prof.perLabel[i].label == id {
						prof.perLabel[i].count++
						found = true
						break
					}
				}
				if !found {
					prof.perLabel = append(prof.perLabel, labelReq{id, 1})
				}
			}
		}
		pc.profiles[v] = prof
		pc.deg[v] = int32(len(p.PositiveNeighbors(v)))
	}
	pc.order = p.SearchOrder()
	posInOrder := make([]int, n)
	for i, v := range pc.order {
		posInOrder[v] = i
	}
	pc.earlier = make([][]backEdge, n)
	for i := 1; i < n; i++ {
		v := pc.order[i]
		for _, u := range p.PositiveNeighbors(v) {
			if posInOrder[u] >= i {
				continue
			}
			for j, w := range p.PositiveNeighbors(u) {
				if w == v {
					pc.earlier[i] = append(pc.earlier[i], backEdge{int32(u), int32(j)})
					break
				}
			}
		}
	}
	return pc
}

// cnRunner is the reusable working state of CN matching runs. All buffers
// are grow-only: after the first run over a given graph/pattern size the
// steady state allocates nothing. A runner serves one goroutine at a
// time.
type cnRunner struct {
	stop  func() bool
	ticks uint32
	halt  bool

	g  *graph.Graph
	p  *pattern.Pattern
	pc *compiledPattern
	n  int // graph nodes

	pats []*compiledPattern // small MRU cache of compiled patterns

	// Epoch-stamped planes indexed [v*n + node].
	member []int32 // member[v*n+node] == epoch ⇒ node ∈ C(v) and live
	pos    []int32 // index of node within cand[v], valid when member stamped
	epoch  int32

	// Direction marks for the current candidate (scalar path).
	outDir []int32
	inDir  []int32
	dirEp  int32
	nbrBuf []graph.NodeID

	cand     [][]graph.NodeID   // per-plane candidate lists (reused buffers)
	cnArenas [][]graph.NodeID   // per-plane CN entry arenas
	cnSets   [][][]graph.NodeID // cnSets[v][ci*deg+j] = CN(n, v, v_j)
	candBits [][]uint64         // per-plane candidate bitmaps (hub kernel)
	bitsUsed []bool             // which candBits planes are live this run

	assignment pattern.Match
	used       []graph.NodeID
	emit       func(pattern.Match)

	keyBuf []byte
	ks     keyset
}

// halted reports whether the run must wind down, polling stop once per
// epoch and latching the result so subsequent probes are a field read.
func (r *cnRunner) halted() bool {
	if r.halt {
		return true
	}
	if r.stop == nil {
		return false
	}
	r.ticks++
	if r.ticks%cnCheckEvery != 0 {
		return false
	}
	if r.stop() {
		r.halt = true
	}
	return r.halt
}

func (r *cnRunner) live(v int, n graph.NodeID) bool {
	return r.member[v*r.n+int(n)] == r.epoch
}

func (r *cnRunner) kill(v int, n graph.NodeID) {
	r.member[v*r.n+int(n)] = 0
}

func (r *cnRunner) posOf(v int, n graph.NodeID) int32 {
	return r.pos[v*r.n+int(n)]
}

// compiled returns the cached compiled form of (g, p), compiling on first
// sight. The cache is a small MRU list: a census touches a handful of
// patterns against one graph.
func (r *cnRunner) compiled(g *graph.Graph, p *pattern.Pattern) *compiledPattern {
	ls := g.Labels().Size()
	for _, pc := range r.pats {
		if pc.g == g && pc.p == p && pc.labelsSize == ls {
			return pc
		}
	}
	pc := compilePattern(g, p)
	if len(r.pats) >= 8 {
		copy(r.pats, r.pats[1:])
		r.pats = r.pats[:len(r.pats)-1]
	}
	r.pats = append(r.pats, pc)
	return pc
}

// begin sizes the planes and per-plane buffers for a run and opens a new
// epoch.
func (r *cnRunner) begin(g *graph.Graph, p *pattern.Pattern, pc *compiledPattern) {
	r.g, r.p, r.pc = g, p, pc
	r.n = g.NumNodes()
	r.halt = false
	planes := p.NumNodes()
	if need := planes * r.n; len(r.member) < need {
		r.member = make([]int32, need)
		r.pos = make([]int32, need)
		r.epoch = 0
	}
	if len(r.outDir) < r.n {
		r.outDir = make([]int32, r.n)
		r.inDir = make([]int32, r.n)
		r.dirEp = 0
	}
	r.epoch++
	if r.epoch <= 0 { // wraparound: clear and restart
		for i := range r.member {
			r.member[i] = 0
		}
		r.epoch = 1
	}
	for len(r.cand) < planes {
		r.cand = append(r.cand, nil)
		r.cnArenas = append(r.cnArenas, nil)
		r.cnSets = append(r.cnSets, nil)
		r.candBits = append(r.candBits, nil)
		r.bitsUsed = append(r.bitsUsed, false)
	}
	for v := 0; v < planes; v++ {
		r.cand[v] = r.cand[v][:0]
		r.bitsUsed[v] = false
	}
	if cap(r.assignment) < planes {
		r.assignment = make(pattern.Match, planes)
	}
	r.assignment = r.assignment[:planes]
	r.used = r.used[:0]
}

// run executes one full matching run, calling emit for every embedding
// that passes EvalAll. The emitted Match is the runner's reused
// assignment buffer — callers must copy if they retain it.
func (r *cnRunner) run(g *graph.Graph, p *pattern.Pattern, within NodeSet, emit func(pattern.Match)) {
	if p == nil || p.NumNodes() == 0 {
		return
	}
	pc := r.compiled(g, p)
	r.begin(g, p, pc)
	r.emit = emit
	defer func() {
		r.emit = nil
		r.cleanupBits()
	}()
	r.enumerate(within)
	r.initCandidateNeighbors()
	r.prune()
	r.extract()
}

// enumerate performs step 1 of Algorithm 1 with compiled profiles:
// candidates come from within's members (or the whole node range) and
// membership/position planes are stamped.
func (r *cnRunner) enumerate(within NodeSet) {
	g := r.g
	planes := r.p.NumNodes()
	var members []graph.NodeID
	if within != nil {
		members = within.Members()
	}
	for v := 0; v < planes; v++ {
		prof := &r.pc.profiles[v]
		if prof.impossible {
			continue
		}
		out := r.cand[v]
		if within != nil {
			for _, n := range members {
				if prof.hasLabel && g.Label(n) != prof.label {
					continue
				}
				if prof.matches(g, n) {
					out = append(out, n)
				}
			}
		} else {
			for i := 0; i < r.n; i++ {
				n := graph.NodeID(i)
				if prof.hasLabel && g.Label(n) != prof.label {
					continue
				}
				if prof.matches(g, n) {
					out = append(out, n)
				}
			}
		}
		r.cand[v] = out
		base := v * r.n
		for i, n := range out {
			r.member[base+int(n)] = r.epoch
			r.pos[base+int(n)] = int32(i)
		}
	}
}

// candBitsFor returns plane u's candidate bitmap, building it on first
// use in this run. Planes are kept all-zero between runs (cleanupBits),
// so building is pure bit-setting over the candidate list.
func (r *cnRunner) candBitsFor(u int) []uint64 {
	cb := r.candBits[u]
	if w := bitset.Words(r.n); len(cb) < w {
		cb = make([]uint64, w)
		r.candBits[u] = cb
	}
	if !r.bitsUsed[u] {
		r.bitsUsed[u] = true
		for _, n := range r.cand[u] {
			bitset.SetBit(cb, int(n))
		}
	}
	return cb
}

// cleanupBits restores the all-zero invariant of candidate bitmaps by
// clearing exactly the bits this run set.
func (r *cnRunner) cleanupBits() {
	for u := range r.bitsUsed {
		if !r.bitsUsed[u] {
			continue
		}
		cb := r.candBits[u]
		for _, n := range r.cand[u] {
			bitset.ClearBit(cb, int(n))
		}
		r.bitsUsed[u] = false
	}
}

// candNeighbors returns the distinct-neighbor iteration list of n: the CSR
// out slice for undirected graphs (one entry per half-edge, matching the
// adjacency representation), or the deduplicated out∪in union for directed
// graphs, built in the scratch buffer. Must be consumed before the next
// candNeighbors call.
func (r *cnRunner) candNeighbors(n graph.NodeID) []graph.NodeID {
	if !r.g.Directed() {
		return r.g.OutNeighbors(n)
	}
	buf := r.nbrBuf[:0]
	// outDir doubles as the dedup mark here; it is re-stamped below.
	r.dirEp++
	for _, nb := range r.g.OutNeighbors(n) {
		if r.outDir[nb] != r.dirEp {
			r.outDir[nb] = r.dirEp
			buf = append(buf, nb)
		}
	}
	for _, nb := range r.g.InNeighbors(n) {
		if r.outDir[nb] != r.dirEp {
			r.outDir[nb] = r.dirEp
			buf = append(buf, nb)
		}
	}
	r.nbrBuf = buf
	return buf
}

// markDirections stamps n's out- and in-neighbor sets so edge-direction
// requirements test in O(1).
func (r *cnRunner) markDirections(n graph.NodeID) {
	r.dirEp++
	for _, nb := range r.g.OutNeighbors(n) {
		r.outDir[nb] = r.dirEp
	}
	if r.g.Directed() {
		for _, nb := range r.g.InNeighbors(n) {
			r.inDir[nb] = r.dirEp
		}
	}
}

// reqOK tests requirement req for neighbor nb of the currently marked
// candidate.
func (r *cnRunner) reqOK(req edgeReq, nb graph.NodeID) bool {
	hasOut := r.outDir[nb] == r.dirEp
	hasIn := hasOut
	if r.g.Directed() {
		hasIn = r.inDir[nb] == r.dirEp
	}
	if req.needOut && !hasOut {
		return false
	}
	if req.needIn && !hasIn {
		return false
	}
	if req.needAny && !hasOut && !hasIn {
		return false
	}
	return true
}

// initCandidateNeighbors builds CN(n, v, v_j) for every candidate. Two
// kernels: hub candidates on undirected graphs AND their cached neighbor
// bitmap against the candidate bitmap of the pattern neighbor (every
// direction requirement is trivially satisfied there, since any incident
// neighbor has the edge in both orientations); everything else walks the
// adjacency list with epoch-stamped membership probes. The hub kernel
// collapses parallel edges into one entry; the census deduplicates
// matches by subgraph key, so counts are unaffected.
func (r *cnRunner) initCandidateNeighbors() {
	g, p := r.g, r.p
	planes := p.NumNodes()
	hubRows := g.HubRows() // nil for directed graphs
	for v := 0; v < planes; v++ {
		nbrs := p.PositiveNeighbors(v)
		deg := len(nbrs)
		nSets := len(r.cand[v]) * deg
		sets := r.cnSets[v]
		if cap(sets) < nSets {
			sets = make([][]graph.NodeID, nSets)
		} else {
			sets = sets[:nSets]
		}
		r.cnSets[v] = sets
		if deg == 0 || nSets == 0 {
			continue
		}
		// Arena sized by an upper bound on total CN entries; the hub
		// kernel only ever produces fewer (deduplicated) entries, so the
		// bound holds for both paths and sets never move once carved.
		bound := 0
		for _, n := range r.cand[v] {
			bound += g.Degree(n) * deg
		}
		arena := r.cnArenas[v]
		if cap(arena) < bound {
			arena = make([]graph.NodeID, 0, bound)
		} else {
			arena = arena[:0]
		}
		for ci, n := range r.cand[v] {
			if r.halted() {
				r.cnArenas[v] = arena
				return
			}
			var hub []uint64
			if hubRows != nil && int(n) < len(hubRows) {
				hub = hubRows[n]
			}
			if hub != nil {
				selfLoop := bitset.TestBit(hub, int(n))
				for j, u := range nbrs {
					cb := r.candBitsFor(u)
					start := len(arena)
					if selfLoop && bitset.TestBit(cb, int(n)) {
						bitset.ClearBit(cb, int(n))
						arena = bitset.AppendAnd(arena, hub, cb)
						bitset.SetBit(cb, int(n))
					} else {
						arena = bitset.AppendAnd(arena, hub, cb)
					}
					sets[ci*deg+j] = arena[start:len(arena):len(arena)]
				}
				continue
			}
			// The neighbor list must be captured per candidate because the
			// directed variant shares the scratch buffer.
			neighbors := r.candNeighbors(n)
			if !g.Directed() {
				// Every neighbor carries the edge in both orientations, so
				// any direction requirement holds and the direction stamps
				// are dead weight: probe the membership plane only.
				for j, u := range nbrs {
					mem := r.member[u*r.n : (u+1)*r.n]
					start := len(arena)
					for _, nb := range neighbors {
						if nb != n && mem[nb] == r.epoch {
							arena = append(arena, nb)
						}
					}
					sets[ci*deg+j] = arena[start:len(arena):len(arena)]
				}
				continue
			}
			r.markDirections(n)
			for j, u := range nbrs {
				req := r.pc.reqs[v][j]
				ubase := u * r.n
				start := len(arena)
				for _, nb := range neighbors {
					if nb == n {
						continue
					}
					if r.member[ubase+int(nb)] != r.epoch {
						continue
					}
					if !r.reqOK(req, nb) {
						continue
					}
					arena = append(arena, nb)
				}
				sets[ci*deg+j] = arena[start:len(arena):len(arena)]
			}
		}
		r.cnArenas[v] = arena
	}
}

// prune alternates the two pruning rules of Section III-C until fixpoint:
// drop candidates with an empty candidate neighbor set, and drop candidate
// neighbors that are no longer candidates themselves. Rule 2 entries only
// die when rule 1 killed a candidate, so the (common) round where rule 1
// finds nothing is already the fixpoint and skips the rule-2 sweep — the
// sweep touches every CN entry and dominates the cost of pruning.
func (r *cnRunner) prune() {
	p := r.p
	for !r.halted() {
		// Rule 1: every candidate needs a non-empty CN set per pattern
		// neighbor.
		killed := false
		for v := 0; v < p.NumNodes(); v++ {
			deg := int(r.pc.deg[v])
			for ci, n := range r.cand[v] {
				if r.halted() {
					return
				}
				if !r.live(v, n) {
					continue
				}
				ok := true
				for j := 0; j < deg; j++ {
					if len(r.cnSets[v][ci*deg+j]) == 0 {
						ok = false
						break
					}
				}
				if !ok {
					r.kill(v, n)
					killed = true
				}
			}
		}
		if !killed {
			return
		}
		// Rule 2: candidate neighbors must still be candidates. Filtering
		// cannot re-trigger rule 1 by itself, so no change tracking: the
		// next rule-1 pass re-examines every set length anyway.
		for v := 0; v < p.NumNodes(); v++ {
			nbrs := p.PositiveNeighbors(v)
			deg := len(nbrs)
			for ci, n := range r.cand[v] {
				if r.halted() {
					return
				}
				if !r.live(v, n) {
					continue
				}
				for j := 0; j < deg; j++ {
					u := nbrs[j]
					ubase := u * r.n
					set := r.cnSets[v][ci*deg+j]
					liveSet := set[:0]
					for _, nb := range set {
						if r.member[ubase+int(nb)] == r.epoch {
							liveSet = append(liveSet, nb)
						}
					}
					r.cnSets[v][ci*deg+j] = liveSet
				}
			}
		}
	}
}

// cnSet returns CN(assignment[u], u, u's j-th pattern neighbor).
func (r *cnRunner) cnSet(b backEdge) []graph.NodeID {
	u := int(b.u)
	img := r.assignment[u]
	deg := int(r.pc.deg[u])
	return r.cnSets[u][int(r.posOf(u, img))*deg+int(b.j)]
}

func (r *cnRunner) isUsed(c graph.NodeID) bool {
	for _, x := range r.used {
		if x == c {
			return true
		}
	}
	return false
}

// extract performs the forward join of Algorithm 1 lines 14-21 as a
// backtracking search over the connected-prefix order: the possible images
// of the next pattern node are the intersection of the candidate neighbor
// sets of the already-assigned neighbors.
func (r *cnRunner) extract() { r.extractStep(0) }

func (r *cnRunner) extractStep(i int) {
	if r.halted() {
		return
	}
	p, pc := r.p, r.pc
	n := p.NumNodes()
	if i == n {
		if p.EvalAll(r.g, r.assignment) {
			r.emit(r.assignment)
		}
		return
	}
	v := pc.order[i]
	if i == 0 {
		for _, cand := range r.cand[v] {
			if !r.live(v, cand) {
				continue
			}
			r.assignment[v] = cand
			r.used = append(r.used, cand)
			r.extractStep(1)
			r.used = r.used[:len(r.used)-1]
		}
		return
	}
	// Intersect the candidate neighbor sets of all earlier neighbors,
	// seeding from the smallest set.
	be := pc.earlier[i]
	smallest := -1
	size := int(^uint(0) >> 1)
	for idx := range be {
		if set := r.cnSet(be[idx]); len(set) < size {
			size = len(set)
			smallest = idx
		}
	}
	if smallest < 0 {
		return // disconnected order; Validate prevents this
	}
	seed := r.cnSet(be[smallest])
cands:
	for _, cand := range seed {
		if r.isUsed(cand) {
			continue
		}
		for idx := range be {
			if idx == smallest {
				continue
			}
			if !contains(r.cnSet(be[idx]), cand) {
				continue cands
			}
		}
		r.assignment[v] = cand
		r.used = append(r.used, cand)
		r.extractStep(i + 1)
		r.used = r.used[:len(r.used)-1]
	}
}

func contains(list []graph.NodeID, n graph.NodeID) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}

// keyset is an epoch-stamped open-addressing set of byte keys backed by a
// single arena — the zero-allocation counterpart of map[string]struct{}
// for distinct-match counting. Keys are canonical AppendKey encodings;
// reset is O(1) via epoch bump, and all storage is reused across runs.
type keyset struct {
	slotEpoch []int32
	slotKey   []int32
	epoch     int32
	arena     []byte
	off       []int32 // key i = arena[off[i]:off[i+1]]; len = count+1
	count     int
}

func (k *keyset) reset() {
	k.count = 0
	k.arena = k.arena[:0]
	k.off = append(k.off[:0], 0)
	k.epoch++
	if k.epoch <= 0 { // wraparound: clear and restart
		for i := range k.slotEpoch {
			k.slotEpoch[i] = 0
		}
		k.epoch = 1
	}
}

func (k *keyset) key(i int32) []byte { return k.arena[k.off[i]:k.off[i+1]] }

func fnv32a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// insert adds key to the set, reporting whether it was new. The key bytes
// are copied into the arena.
func (k *keyset) insert(key []byte) bool {
	if len(k.slotEpoch) == 0 {
		k.slotEpoch = make([]int32, 64)
		k.slotKey = make([]int32, 64)
		if k.epoch == 0 {
			k.epoch = 1
		}
		if len(k.off) == 0 {
			k.off = append(k.off, 0)
		}
	}
	if (k.count+1)*4 > len(k.slotEpoch)*3 {
		k.grow()
	}
	mask := uint32(len(k.slotEpoch) - 1)
	i := fnv32a(key) & mask
	for {
		if k.slotEpoch[i] != k.epoch {
			k.slotEpoch[i] = k.epoch
			k.slotKey[i] = int32(k.count)
			k.arena = append(k.arena, key...)
			k.off = append(k.off, int32(len(k.arena)))
			k.count++
			return true
		}
		if bytes.Equal(k.key(k.slotKey[i]), key) {
			return false
		}
		i = (i + 1) & mask
	}
}

// grow doubles the slot table and rehashes the live keys.
func (k *keyset) grow() {
	old, oldKey := k.slotEpoch, k.slotKey
	n := len(old) * 2
	k.slotEpoch = make([]int32, n)
	k.slotKey = make([]int32, n)
	mask := uint32(n - 1)
	for idx, ep := range old {
		if ep != k.epoch {
			continue
		}
		ki := oldKey[idx]
		i := fnv32a(k.key(ki)) & mask
		for k.slotEpoch[i] == k.epoch {
			i = (i + 1) & mask
		}
		k.slotEpoch[i] = k.epoch
		k.slotKey[i] = ki
	}
}
