package match

import (
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// CN is the paper's candidate-neighbor pattern matching algorithm
// (Algorithm 1): profile-filtered candidates, per-candidate candidate
// neighbor sets, simultaneous pruning of both, and match extraction that
// joins candidate neighbor sets instead of scanning candidate sets.
type CN struct{}

// Name implements Matcher.
func (CN) Name() string { return "CN" }

// cnState holds the candidate structures for one matching run.
type cnState struct {
	g *graph.Graph
	p *pattern.Pattern

	cand   [][]graph.NodeID                    // C(v), live list
	inCand []map[graph.NodeID]bool             // membership view of C(v)
	reqs   [][]edgeReq                         // direction requirements per (v, j)
	cn     []map[graph.NodeID][][]graph.NodeID // cn[v][n][j] = CN(n, v, v_j)
}

// Embeddings implements Matcher.
func (CN) Embeddings(g *graph.Graph, p *pattern.Pattern) []pattern.Match {
	if p.NumNodes() == 0 {
		return nil
	}
	st := &cnState{g: g, p: p, reqs: pairRequirements(p)}

	// Step 1: enumerate candidates.
	st.cand = enumerateCandidates(g, p)
	st.inCand = make([]map[graph.NodeID]bool, p.NumNodes())
	for v, list := range st.cand {
		st.inCand[v] = make(map[graph.NodeID]bool, len(list))
		for _, n := range list {
			st.inCand[v][n] = true
		}
	}

	// Step 2: initialize candidate neighbor sets.
	st.initCandidateNeighbors()

	// Step 3: simultaneously prune candidates and candidate neighbors.
	st.prune()

	// Step 4: extract matches by joining candidate neighbor sets.
	return st.extract()
}

func (st *cnState) initCandidateNeighbors() {
	p, g := st.p, st.g
	st.cn = make([]map[graph.NodeID][][]graph.NodeID, p.NumNodes())
	for v := 0; v < p.NumNodes(); v++ {
		nbrs := p.PositiveNeighbors(v)
		st.cn[v] = make(map[graph.NodeID][][]graph.NodeID, len(st.cand[v]))
		for _, n := range st.cand[v] {
			out, in := neighborSets(g, n)
			sets := make([][]graph.NodeID, len(nbrs))
			for j, u := range nbrs {
				req := st.reqs[v][j]
				var set []graph.NodeID
				for _, nb := range distinctNeighbors(g, n) {
					if nb == n {
						continue
					}
					if !st.inCand[u][nb] {
						continue
					}
					if !req.satisfies(nb, out, in) {
						continue
					}
					set = append(set, nb)
				}
				sets[j] = set
			}
			st.cn[v][n] = sets
		}
	}
}

// prune alternates the two pruning rules of Section III-C until fixpoint:
// drop candidates with an empty candidate neighbor set, and drop candidate
// neighbors that are no longer candidates themselves.
func (st *cnState) prune() {
	p := st.p
	for changed := true; changed; {
		changed = false
		// Rule 1: every candidate needs a non-empty CN set per pattern
		// neighbor.
		for v := 0; v < p.NumNodes(); v++ {
			live := st.cand[v][:0]
			for _, n := range st.cand[v] {
				ok := true
				for _, set := range st.cn[v][n] {
					if len(set) == 0 {
						ok = false
						break
					}
				}
				if ok {
					live = append(live, n)
				} else {
					delete(st.inCand[v], n)
					delete(st.cn[v], n)
					changed = true
				}
			}
			st.cand[v] = live
		}
		// Rule 2: candidate neighbors must still be candidates.
		for v := 0; v < p.NumNodes(); v++ {
			nbrs := p.PositiveNeighbors(v)
			for n, sets := range st.cn[v] {
				for j := range sets {
					u := nbrs[j]
					liveSet := sets[j][:0]
					for _, nb := range sets[j] {
						if st.inCand[u][nb] {
							liveSet = append(liveSet, nb)
						} else {
							changed = true
						}
					}
					sets[j] = liveSet
				}
				st.cn[v][n] = sets
			}
		}
	}
}

// extract performs the forward join of Algorithm 1 lines 14-21 as a
// backtracking search over the connected-prefix order: the possible images
// of the next pattern node are the intersection of the candidate neighbor
// sets of the already-assigned neighbors.
func (st *cnState) extract() []pattern.Match {
	p := st.p
	order := p.SearchOrder()
	n := p.NumNodes()

	// posInOrder[v] = position of pattern node v in the order.
	posInOrder := make([]int, n)
	for i, v := range order {
		posInOrder[v] = i
	}
	// earlier[i] = for order[i], the list of (assigned pattern node u,
	// index j of order[i] in u's PositiveNeighbors list).
	type backEdge struct{ u, j int }
	earlier := make([][]backEdge, n)
	for i := 1; i < n; i++ {
		v := order[i]
		for _, u := range p.PositiveNeighbors(v) {
			if posInOrder[u] < i {
				// find index of v within u's neighbor list
				for j, w := range p.PositiveNeighbors(u) {
					if w == v {
						earlier[i] = append(earlier[i], backEdge{u, j})
						break
					}
				}
			}
		}
	}

	assignment := make(pattern.Match, n)
	used := make(map[graph.NodeID]bool, n)
	var results []pattern.Match

	var recurse func(i int)
	recurse = func(i int) {
		if i == n {
			m := make(pattern.Match, n)
			copy(m, assignment)
			if p.EvalAll(st.g, m) {
				results = append(results, m)
			}
			return
		}
		v := order[i]
		if i == 0 {
			for _, cand := range st.cand[v] {
				assignment[v] = cand
				used[cand] = true
				recurse(1)
				delete(used, cand)
			}
			return
		}
		// Intersect the candidate neighbor sets of all earlier neighbors,
		// seeding from the smallest set.
		be := earlier[i]
		smallest := -1
		size := int(^uint(0) >> 1)
		for idx, b := range be {
			set := st.cn[b.u][assignment[b.u]][b.j]
			if len(set) < size {
				size = len(set)
				smallest = idx
			}
		}
		if smallest < 0 {
			return // disconnected order; Validate prevents this
		}
		seed := st.cn[be[smallest].u][assignment[be[smallest].u]][be[smallest].j]
	cands:
		for _, cand := range seed {
			if used[cand] {
				continue
			}
			for idx, b := range be {
				if idx == smallest {
					continue
				}
				if !contains(st.cn[b.u][assignment[b.u]][b.j], cand) {
					continue cands
				}
			}
			assignment[v] = cand
			used[cand] = true
			recurse(i + 1)
			delete(used, cand)
		}
	}
	recurse(0)
	return results
}

func contains(list []graph.NodeID, n graph.NodeID) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}
