package core

import (
	"fmt"

	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// Incremental maintains a single-node census over a growing graph: after
// every edge insertion the per-node counts are updated without recomputing
// the census from scratch. This extends the paper toward dynamic graphs
// (its algorithms are batch-only); deletions are not supported because the
// underlying graph is append-only.
//
// An inserted edge (u, v) changes the census in three ways, each handled
// separately:
//
//  1. New matches appear — every new match must use the new edge as the
//     image of some positive pattern edge, so a constrained search seeded
//     at (u, v) finds exactly the additions.
//  2. Matches die — only through negated pattern edges whose image the new
//     edge completes; candidates are matches containing both u and v.
//  3. Neighborhoods grow — shortest distances can only shrink, so a
//     surviving match M can only gain containing nodes. Only matches with
//     an anchor within k-1 hops of u or v can be affected; for those,
//     N[M] is recomputed before and after the insertion and the difference
//     is credited.
type Incremental struct {
	g    *graph.Graph
	spec Spec
	opt  Options

	counts    []int64
	matches   []pattern.Match
	alive     []bool
	keys      map[string]int // canonical binary match key -> index
	byNode    map[graph.NodeID][]int
	anchorIdx []int
	subNodes  []int
	keyBuf    []byte
	numAlive  int
}

// NewIncremental computes the initial census (all nodes focal) and returns
// the maintained state. Patterns must have at least one positive edge
// (isolated-node patterns would gain matches on AddNode, which carries no
// label yet).
func NewIncremental(g *graph.Graph, spec Spec, opt Options) (*Incremental, error) {
	if spec.Focal != nil {
		return nil, fmt.Errorf("census: incremental maintenance tracks all nodes; Focal must be nil")
	}
	if err := spec.Validate(g); err != nil {
		return nil, err
	}
	hasPositive := false
	for _, e := range spec.Pattern.Edges() {
		if !e.Negated {
			hasPositive = true
			break
		}
	}
	if !hasPositive {
		return nil, fmt.Errorf("census: incremental maintenance requires a pattern with at least one positive edge")
	}
	inc := &Incremental{
		g:         g,
		spec:      spec,
		opt:       opt,
		counts:    make([]int64, g.NumNodes()),
		keys:      map[string]int{},
		byNode:    map[graph.NodeID][]int{},
		anchorIdx: spec.anchorNodes(),
		subNodes:  spec.subNodesForKey(),
	}
	for _, m := range globalMatches(g, spec, opt) {
		inc.insertMatch(m, true)
	}
	return inc, nil
}

// insertMatch registers a match; when credit is true the containing nodes'
// counts are incremented. Dedup uses the same binary canonical keys
// (Pattern.AppendKey) the batch drivers use — the fmt-based string keys
// this path once built allocated an order of magnitude more per match.
func (inc *Incremental) insertMatch(m pattern.Match, credit bool) {
	inc.keyBuf = inc.spec.Pattern.AppendKey(inc.keyBuf[:0], m, inc.subNodes)
	key := string(inc.keyBuf)
	if _, dup := inc.keys[key]; dup {
		return
	}
	idx := len(inc.matches)
	inc.matches = append(inc.matches, m)
	inc.alive = append(inc.alive, true)
	inc.keys[key] = idx
	inc.numAlive++
	seen := map[graph.NodeID]bool{}
	for _, n := range m {
		if !seen[n] {
			seen[n] = true
			inc.byNode[n] = append(inc.byNode[n], idx)
		}
	}
	if credit {
		for n := range inc.containingNodes(m) {
			inc.counts[n]++
		}
	}
}

// containingNodes computes N[M]: the nodes whose k-hop neighborhood
// contains all anchor images (per-anchor BFS intersection, as in PT-BAS).
func (inc *Incremental) containingNodes(m pattern.Match) map[graph.NodeID]bool {
	anchors := matchAnchors(inc.spec, inc.anchorIdx, m)
	var res map[graph.NodeID]bool
	s := graph.AcquireScratch(inc.g.NumNodes())
	defer s.Release()
	for _, a := range anchors {
		reach := inc.g.KHop(a, inc.spec.K, s)
		if res == nil {
			res = make(map[graph.NodeID]bool, reach.Len())
			for _, n := range reach.Nodes {
				res[n] = true
			}
			continue
		}
		for n := range res {
			if !reach.Contains(n) {
				delete(res, n)
			}
		}
	}
	return res
}

// Counts returns the maintained per-node counts (live slice; do not
// modify).
func (inc *Incremental) Counts() []int64 { return inc.counts }

// NumMatches returns the number of live matches.
func (inc *Incremental) NumMatches() int { return inc.numAlive }

// Graph exposes the maintained graph. Mutate it only through AddNode and
// AddEdge (and attribute setters on nodes/edges not yet matched).
func (inc *Incremental) Graph() *graph.Graph { return inc.g }

// AddNode appends a node (no matches can involve it until edges arrive).
func (inc *Incremental) AddNode() graph.NodeID {
	id := inc.g.AddNode()
	inc.noteNode()
	return id
}

// noteNode extends the count column after a node append performed on the
// underlying graph (directly by AddNode, or externally by a Maintainer
// driving a shared replica).
func (inc *Incremental) noteNode() {
	inc.counts = append(inc.counts, 0)
}

// edgeTxn carries one edge insertion's pre-state between beforeAdd (which
// must run while the graph still lacks the edge) and afterAdd (which runs
// once it is inserted). The split lets a Maintainer apply a single graph
// mutation on behalf of many registered queries.
type edgeTxn struct {
	u, v     graph.NodeID
	affected map[int]bool
	before   map[int]map[graph.NodeID]bool
}

// AddEdge inserts the edge u-v (u -> v for directed graphs) and updates
// the census.
func (inc *Incremental) AddEdge(u, v graph.NodeID) graph.EdgeID {
	t := inc.beforeAdd(u, v)
	e := inc.g.AddEdge(u, v)
	inc.afterAdd(t)
	return e
}

// beforeAdd collects the pre-insertion state the update needs: which
// matches may be affected, and their containment sets under the old
// distances. The graph must not yet contain the edge.
func (inc *Incremental) beforeAdd(u, v graph.NodeID) *edgeTxn {
	k := inc.spec.K

	// Matches whose containment sets may grow: an anchor within k-1 of
	// either endpoint (old distances). Matches containing both endpoints
	// may die through negated edges; include them so their old N[M] is
	// known.
	affected := map[int]bool{}
	if k >= 1 {
		collect := func(src graph.NodeID) {
			inc.g.BFS(src, k-1, func(n graph.NodeID, _ int) bool {
				for _, mi := range inc.byNode[n] {
					if inc.alive[mi] && inc.isAnchorImage(mi, n) {
						affected[mi] = true
					}
				}
				return true
			})
		}
		collect(u)
		collect(v)
	}
	for _, mi := range inc.byNode[u] {
		if inc.alive[mi] && inc.matchContains(mi, v) {
			affected[mi] = true
		}
	}

	before := make(map[int]map[graph.NodeID]bool, len(affected))
	for mi := range affected {
		before[mi] = inc.containingNodes(inc.matches[mi])
	}
	return &edgeTxn{u: u, v: v, affected: affected, before: before}
}

// afterAdd applies the census update for an edge insertion whose
// pre-state t was collected by beforeAdd; the graph must now contain the
// edge.
func (inc *Incremental) afterAdd(t *edgeTxn) {
	u, v := t.u, t.v

	// Deaths: negated-edge images completed by (u, v).
	for _, mi := range inc.byNode[u] {
		if !inc.alive[mi] || !inc.matchContains(mi, v) {
			continue
		}
		m := inc.matches[mi]
		if inc.spec.Pattern.EvalAll(inc.g, m) {
			continue
		}
		inc.alive[mi] = false
		inc.numAlive--
		old := t.before[mi]
		if old == nil {
			// Not collected above (k == 0 with anchors elsewhere): its
			// containment set is unchanged by the new edge except through
			// the edge itself, which cannot shrink it; recompute works
			// because death accounting only needs the pre-insertion set,
			// and for k == 0 distances are insertion-invariant.
			old = inc.containingNodes(m)
		}
		for n := range old {
			inc.counts[n]--
		}
	}

	// Growth of surviving affected matches: distances only shrink, so the
	// new containment set is a superset of the old one.
	for mi := range t.affected {
		if !inc.alive[mi] {
			continue
		}
		after := inc.containingNodes(inc.matches[mi])
		for n := range after {
			if !t.before[mi][n] {
				inc.counts[n]++
			}
		}
	}

	// New matches: constrained search with (u, v) as the image of each
	// compatible positive pattern edge.
	for _, m := range inc.newEmbeddings(u, v) {
		inc.insertMatch(m, true)
	}
}

// rebuild recomputes the census state from scratch against the current
// graph. The Maintainer falls back to it for mutations the incremental
// update rules do not cover (label changes, which can create and destroy
// matches anywhere the label appears).
func (inc *Incremental) rebuild() {
	inc.counts = make([]int64, inc.g.NumNodes())
	inc.matches = inc.matches[:0]
	inc.alive = inc.alive[:0]
	inc.keys = map[string]int{}
	inc.byNode = map[graph.NodeID][]int{}
	inc.numAlive = 0
	for _, m := range globalMatches(inc.g, inc.spec, inc.opt) {
		inc.insertMatch(m, true)
	}
}

func (inc *Incremental) isAnchorImage(mi int, n graph.NodeID) bool {
	m := inc.matches[mi]
	for _, idx := range inc.anchorIdx {
		if m[idx] == n {
			return true
		}
	}
	return false
}

func (inc *Incremental) matchContains(mi int, n graph.NodeID) bool {
	for _, x := range inc.matches[mi] {
		if x == n {
			return true
		}
	}
	return false
}

// newEmbeddings finds all embeddings that map some positive pattern edge
// onto the newly inserted edge (u, v). Standard backtracking restricted to
// the fixed seed pair; the pattern is connected, so every other node is
// reached through adjacency.
func (inc *Incremental) newEmbeddings(u, v graph.NodeID) []pattern.Match {
	p := inc.spec.Pattern
	g := inc.g
	var out []pattern.Match

	labelOK := func(idx int, n graph.NodeID) bool {
		want := p.Node(idx).Label
		return want == "" || g.LabelString(n) == want
	}

	seeds := [][2]graph.NodeID{{u, v}, {v, u}}

	for _, e := range p.Edges() {
		if e.Negated {
			continue
		}
		for _, seed := range seeds {
			a, b := seed[0], seed[1]
			if e.Directed && g.Directed() && (a != u || b != v) {
				// The new edge runs u -> v; a directed pattern edge can
				// only map From->To onto it in that orientation.
				continue
			}
			if a == b || !labelOK(e.From, a) || !labelOK(e.To, b) {
				continue
			}
			assignment := make(pattern.Match, p.NumNodes())
			for i := range assignment {
				assignment[i] = -1
			}
			assignment[e.From], assignment[e.To] = a, b
			inc.extend(assignment, map[graph.NodeID]bool{a: true, b: true}, &out)
		}
	}
	return out
}

// extend grows a partial assignment until complete, choosing next an
// unassigned pattern node adjacent to an assigned one.
func (inc *Incremental) extend(assignment pattern.Match, used map[graph.NodeID]bool, out *[]pattern.Match) {
	p := inc.spec.Pattern
	g := inc.g

	next := -1
	var anchorAssigned int
	for idx := 0; idx < p.NumNodes() && next < 0; idx++ {
		if assignment[idx] >= 0 {
			continue
		}
		for _, nb := range p.PositiveNeighbors(idx) {
			if assignment[nb] >= 0 {
				next = idx
				anchorAssigned = nb
				break
			}
		}
	}
	if next < 0 {
		// Complete (the pattern is connected, so no unassigned node can
		// lack an assigned neighbor unless all are assigned).
		m := make(pattern.Match, len(assignment))
		copy(m, assignment)
		if checkPositiveEdges(g, p, m) && p.EvalAll(g, m) {
			*out = append(*out, m)
		}
		return
	}
	wantLabel := p.Node(next).Label
	base := assignment[anchorAssigned]
	for _, cand := range distinctNeighborsUndirected(g, base) {
		if used[cand] {
			continue
		}
		if wantLabel != "" && g.LabelString(cand) != wantLabel {
			continue
		}
		assignment[next] = cand
		used[cand] = true
		inc.extend(assignment, used, out)
		delete(used, cand)
		assignment[next] = -1
	}
}

// checkPositiveEdges verifies every positive pattern edge under m
// (the extension only guaranteed one adjacency per node).
func checkPositiveEdges(g *graph.Graph, p *pattern.Pattern, m pattern.Match) bool {
	for _, e := range p.Edges() {
		if e.Negated {
			continue
		}
		a, b := m[e.From], m[e.To]
		if e.Directed && g.Directed() {
			if !hasDirectedEdge(g, a, b) {
				return false
			}
		} else if !hasDirectedEdge(g, a, b) && !hasDirectedEdge(g, b, a) {
			return false
		}
	}
	return true
}

func hasDirectedEdge(g *graph.Graph, a, b graph.NodeID) bool {
	for _, h := range g.Out(a) {
		if h.To == b {
			return true
		}
	}
	return false
}

func distinctNeighborsUndirected(g *graph.Graph, n graph.NodeID) []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	add := func(m graph.NodeID) {
		if m != n && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	for _, h := range g.Out(n) {
		add(h.To)
	}
	if g.Directed() {
		for _, h := range g.In(n) {
			add(h.To)
		}
	}
	return out
}
