package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"egocensus/internal/centers"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// bruteCounts computes the reference census directly from the definition:
// global matches, then per-focal containment of the anchor images.
func bruteCounts(t *testing.T, g *graph.Graph, spec Spec) []int64 {
	t.Helper()
	counts := make([]int64, g.NumNodes())
	matches := globalMatches(g, spec, Options{})
	anchorIdx := spec.anchorNodes()
	for _, n := range spec.focalList(g) {
		reach := g.KHopNodes(n, spec.K)
		for _, m := range matches {
			inside := true
			for _, idx := range anchorIdx {
				if _, ok := reach[m[idx]]; !ok {
					inside = false
					break
				}
			}
			if inside {
				counts[n]++
			}
		}
	}
	return counts
}

func checkAllAlgorithms(t *testing.T, g *graph.Graph, spec Spec, opt Options) {
	t.Helper()
	want := bruteCounts(t, g, spec)
	for _, alg := range Algorithms {
		res, err := Count(g, spec, alg, opt)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for n := range want {
			focal := spec.Focal == nil
			if !focal {
				for _, f := range spec.Focal {
					if int(f) == n {
						focal = true
						break
					}
				}
			}
			if !focal {
				continue
			}
			if res.Counts[n] != want[n] {
				t.Fatalf("%s: node %d count = %d want %d (k=%d pattern=%s sub=%q)",
					alg, n, res.Counts[n], want[n], spec.K, spec.Pattern.Name, spec.Subpattern)
			}
		}
	}
}

func TestAllAlgorithmsTriangleSmall(t *testing.T) {
	g := gen.ErdosRenyi(30, 70, 3)
	for k := 0; k <= 3; k++ {
		spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: k}
		checkAllAlgorithms(t, g, spec, Options{})
	}
}

func TestAllAlgorithmsLabeled(t *testing.T) {
	g := gen.ErdosRenyi(40, 100, 5)
	gen.AssignLabels(g, 3, 6)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2}
	checkAllAlgorithms(t, g, spec, Options{})
}

func TestAllAlgorithmsSquare(t *testing.T) {
	g := gen.ErdosRenyi(25, 60, 7)
	spec := Spec{Pattern: pattern.Square("sqr", nil), K: 2}
	checkAllAlgorithms(t, g, spec, Options{})
}

func TestAllAlgorithmsWithFocalSubset(t *testing.T) {
	g := gen.ErdosRenyi(35, 80, 9)
	focal := []graph.NodeID{0, 3, 7, 11, 19, 34}
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 2, Focal: focal}
	checkAllAlgorithms(t, g, spec, Options{})
}

func TestAllAlgorithmsSingleNodePattern(t *testing.T) {
	// single_node census at k=1 counts nodes in the closed 1-neighborhood:
	// degree + 1 on simple graphs (the Section I degree reduction).
	g := gen.ErdosRenyi(30, 60, 11)
	spec := Spec{Pattern: pattern.SingleNode("n", ""), K: 1}
	res, err := Count(g, spec, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.NumNodes(); n++ {
		if got, want := res.Counts[n], int64(g.Degree(graph.NodeID(n))+1); got != want {
			t.Fatalf("node %d: single-node census %d want degree+1 = %d", n, got, want)
		}
	}
	checkAllAlgorithms(t, g, spec, Options{})
}

func TestEdgeCensusMatchesClusteringNumerator(t *testing.T) {
	// Counting single_edge at k=1 counts the edges among a node's closed
	// neighborhood: deg(n) + #(edges between neighbors) — the clustering
	// coefficient numerator plus the node's own incident edges.
	g := gen.ErdosRenyi(25, 60, 13)
	spec := Spec{Pattern: pattern.SingleEdge("e", nil), K: 1}
	res, err := Count(g, spec, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		nbrs := map[graph.NodeID]bool{id: true}
		for _, h := range g.Out(id) {
			nbrs[h.To] = true
		}
		var want int64
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(graph.EdgeID(e))
			if nbrs[ed.From] && nbrs[ed.To] {
				want++
			}
		}
		if res.Counts[n] != want {
			t.Fatalf("node %d: edge census %d want %d", n, res.Counts[n], want)
		}
	}
}

func TestSubpatternCensus(t *testing.T) {
	// Coordinator triads counted at k=0: the count for node n is the
	// number of open same-label directed triads in which n is the middle
	// node (Table I row 4).
	g := graph.New(true)
	nodes := make([]graph.NodeID, 5)
	for i := range nodes {
		nodes[i] = g.AddNode()
		g.SetLabel(nodes[i], "org1")
	}
	g.AddEdge(nodes[0], nodes[1])
	g.AddEdge(nodes[1], nodes[2]) // 0->1->2 open: coordinator = 1
	g.AddEdge(nodes[3], nodes[1]) // 3->1->2 open: coordinator = 1
	g.AddEdge(nodes[2], nodes[4]) // 1->2->4 open: coordinator = 2

	spec := Spec{Pattern: pattern.CoordinatorTriad("triad"), Subpattern: "coordinator", K: 0}
	for _, alg := range Algorithms {
		res, err := Count(g, spec, alg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		wantCounts := map[graph.NodeID]int64{nodes[1]: 2, nodes[2]: 1}
		for n := 0; n < g.NumNodes(); n++ {
			if res.Counts[n] != wantCounts[graph.NodeID(n)] {
				t.Fatalf("%s: node %d = %d want %d", alg, n, res.Counts[n], wantCounts[graph.NodeID(n)])
			}
		}
	}
}

func TestSubpatternCensusRandom(t *testing.T) {
	g := gen.ErdosRenyi(25, 55, 17)
	p := pattern.Clique("clq3", 3, nil)
	if err := p.AddSubpattern("corner", []int{0}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 2; k++ {
		spec := Spec{Pattern: p, Subpattern: "corner", K: k}
		checkAllAlgorithms(t, g, spec, Options{})
	}
}

func TestAlgorithmsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(20+rng.Intn(15), 50+rng.Intn(30), seed)
		gen.AssignLabels(g, 1+rng.Intn(3), seed+1)
		k := rng.Intn(3)
		var p *pattern.Pattern
		switch rng.Intn(3) {
		case 0:
			p = pattern.Clique("clq3", 3, nil)
		case 1:
			p = pattern.SingleEdge("e", []string{"l0", ""})
		default:
			p = pattern.Chain("ch3", 3, nil)
		}
		spec := Spec{Pattern: p, K: k}
		want := bruteCounts(t, g, spec)
		opt := Options{Seed: seed}
		for _, alg := range Algorithms {
			res, err := Count(g, spec, alg, opt)
			if err != nil {
				t.Log(err)
				return false
			}
			for n := range want {
				if res.Counts[n] != want[n] {
					t.Logf("seed %d alg %s node %d: %d want %d (k=%d, pat=%s)",
						seed, alg, n, res.Counts[n], want[n], k, p.Name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPTOptionVariants(t *testing.T) {
	g := gen.PreferentialAttachment(150, 3, 21)
	gen.AssignLabels(g, 3, 22)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2}
	want := bruteCounts(t, g, spec)
	variants := []Options{
		{},               // defaults: 12 deg centers, |M|/4 clusters
		{NumCenters: -1}, // centers disabled
		{NumCenters: 4, CenterStrategy: centers.Random, Seed: 5},
		{NoClustering: true},
		{RandomClustering: true, Clusters: 3, Seed: 6},
		{Clusters: 2},
		{KMeansIters: 1},
	}
	for i, opt := range variants {
		for _, alg := range []Algorithm{PTOpt, PTRnd} {
			res, err := Count(g, spec, alg, opt)
			if err != nil {
				t.Fatalf("variant %d %s: %v", i, alg, err)
			}
			for n := range want {
				if res.Counts[n] != want[n] {
					t.Fatalf("variant %d %s: node %d = %d want %d", i, alg, n, res.Counts[n], want[n])
				}
			}
		}
	}
}

func TestPTOptSeparateCenterIndexes(t *testing.T) {
	// Fig 4(f) isolates PMD centers from clustering centers.
	g := gen.PreferentialAttachment(120, 3, 31)
	gen.AssignLabels(g, 2, 32)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l0", "l1"}), K: 2}
	want := bruteCounts(t, g, spec)
	clusterIdx := centers.Build(g, 12, centers.ByDegree, 0)
	for _, npmd := range []int{0, 2, 8} {
		opt := Options{
			PMDCenters:     centers.Build(g, npmd, centers.ByDegree, 0),
			ClusterCenters: clusterIdx,
		}
		res, err := Count(g, spec, PTOpt, opt)
		if err != nil {
			t.Fatal(err)
		}
		for n := range want {
			if res.Counts[n] != want[n] {
				t.Fatalf("pmd centers %d: node %d = %d want %d", npmd, n, res.Counts[n], want[n])
			}
		}
	}
}

func TestCountValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 15, 1)
	if _, err := Count(g, Spec{Pattern: nil, K: 1}, NDPvot, Options{}); err == nil {
		t.Fatal("nil pattern should error")
	}
	p := pattern.Clique("clq3", 3, nil)
	if _, err := Count(g, Spec{Pattern: p, K: -1}, NDPvot, Options{}); err == nil {
		t.Fatal("negative k should error")
	}
	if _, err := Count(g, Spec{Pattern: p, K: 1, Subpattern: "nope"}, NDPvot, Options{}); err == nil {
		t.Fatal("unknown subpattern should error")
	}
	if _, err := Count(g, Spec{Pattern: p, K: 1, Focal: []graph.NodeID{99}}, NDPvot, Options{}); err == nil {
		t.Fatal("out-of-range focal should error")
	}
	if _, err := Count(g, Spec{Pattern: p, K: 1}, Algorithm("BOGUS"), Options{}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	disc := pattern.New("disc")
	disc.MustAddNode("A", "")
	disc.MustAddNode("B", "")
	if _, err := Count(g, Spec{Pattern: disc, K: 1}, NDPvot, Options{}); err == nil {
		t.Fatal("disconnected pattern should error")
	}
}

func TestNoMatches(t *testing.T) {
	g := gen.ErdosRenyi(20, 25, 41)
	spec := Spec{Pattern: pattern.Clique("clq5", 5, nil), K: 2}
	for _, alg := range Algorithms {
		res, err := Count(g, spec, alg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for n, c := range res.Counts {
			if c != 0 {
				t.Fatalf("%s: node %d = %d want 0", alg, n, c)
			}
		}
	}
}

func TestDirectedCensus(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := graph.New(true)
	g.AddNodes(20)
	seen := map[[2]graph.NodeID]bool{}
	for i := 0; i < 45; i++ {
		a, b := graph.NodeID(rng.Intn(20)), graph.NodeID(rng.Intn(20))
		if a == b || seen[[2]graph.NodeID{a, b}] {
			continue
		}
		seen[[2]graph.NodeID{a, b}] = true
		g.AddEdge(a, b)
	}
	p := pattern.New("dpath")
	a := p.MustAddNode("A", "")
	b := p.MustAddNode("B", "")
	c := p.MustAddNode("C", "")
	p.MustAddEdge(a, b, true, false)
	p.MustAddEdge(b, c, true, false)
	spec := Spec{Pattern: p, K: 1}
	checkAllAlgorithms(t, g, spec, Options{})
}

func TestNumMatchesReported(t *testing.T) {
	g := gen.ErdosRenyi(25, 60, 61)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 2}
	res, err := Count(g, spec, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := len(globalMatches(g, spec, Options{}))
	if res.NumMatches != want {
		t.Fatalf("NumMatches = %d want %d", res.NumMatches, want)
	}
	if want == 0 {
		t.Skip("instance has no triangles")
	}
}
