package core

import (
	"reflect"
	"strings"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/pattern"
	"egocensus/internal/plan"
)

// TestForcedAlgorithmParity runs representative queries under every
// algorithm with a census driver and checks the tables are identical —
// the optimizer is free to pick any of them, so they must agree.
func TestForcedAlgorithmParity(t *testing.T) {
	g := gen.PreferentialAttachment(120, 3, 5)
	gen.AssignLabels(g, 3, 6)
	queries := []string{
		`PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes ORDER BY COUNT DESC LIMIT 10`,
		`PATTERN lw { ?A-?B; ?B-?C; [?A.LABEL='l0']; SUBPATTERN mid {?B;} }
SELECT ID, COUNTSP(mid, lw, SUBGRAPH(ID, 1)) FROM nodes WHERE LABEL = 'l1'`,
	}
	for _, src := range queries {
		var want *Table
		for _, alg := range []Algorithm{NDBas, NDDiff, NDPvot, PTBas, PTRnd, PTOpt} {
			e := NewEngine(g)
			e.Alg = alg
			e.Seed = 42
			tables, err := e.Execute(src)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			tab := tables[0]
			if tab.Algorithm != alg {
				t.Fatalf("forced %s but ran %s", alg, tab.Algorithm)
			}
			if want == nil {
				want = tab
				continue
			}
			if !reflect.DeepEqual(tab.Rows, want.Rows) {
				t.Fatalf("%s disagrees with %s on %q:\n%v\nvs\n%v",
					alg, want.Algorithm, src, tab.Rows, want.Rows)
			}
		}
	}
}

// TestForcedAlgorithmParityPairwise covers the pairwise drivers (ND-DIFF
// has none and is substituted by the optimizer, so it is exercised too).
func TestForcedAlgorithmParityPairwise(t *testing.T) {
	g := gen.PreferentialAttachment(40, 3, 7)
	src := `PATTERN e1 { ?A-?B; }
SELECT n1.ID, n2.ID, COUNTP(e1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2 WHERE RND() < 0.2`
	var want *Table
	for _, alg := range []Algorithm{NDBas, NDDiff, NDPvot, PTBas, PTRnd, PTOpt} {
		e := NewEngine(g)
		e.Alg = alg
		e.Seed = 7
		tables, err := e.Execute(src)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		tab := tables[0]
		if want == nil {
			want = tab
			continue
		}
		if !reflect.DeepEqual(tab.Rows, want.Rows) {
			t.Fatalf("%s disagrees with %s:\n%v\nvs\n%v", alg, want.Algorithm, tab.Rows, want.Rows)
		}
	}
}

// TestPatternsReturnsCopy guards against the old catalog-leak: callers
// mutating the returned map must not corrupt the engine.
func TestPatternsReturnsCopy(t *testing.T) {
	e := NewEngine(gen.ErdosRenyi(10, 20, 3))
	p := pattern.New("keep")
	p.MustAddNode("A", "")
	if err := e.DefinePattern(p); err != nil {
		t.Fatal(err)
	}
	m := e.Patterns()
	delete(m, "keep")
	m["rogue"] = p
	if _, ok := e.Patterns()["keep"]; !ok {
		t.Fatal("deleting from the returned map removed the engine's pattern")
	}
	if _, ok := e.Patterns()["rogue"]; ok {
		t.Fatal("inserting into the returned map leaked into the engine")
	}
}

// TestDuplicatePatternPolicy: redefinition is rejected uniformly — by
// DefinePattern, and by scripts against both programmatic and scripted
// prior definitions.
func TestDuplicatePatternPolicy(t *testing.T) {
	e := NewEngine(gen.ErdosRenyi(10, 20, 3))
	p := pattern.New("dup")
	p.MustAddNode("A", "")
	if err := e.DefinePattern(p); err != nil {
		t.Fatal(err)
	}
	if err := e.DefinePattern(p); err == nil || !strings.Contains(err.Error(), "already defined") {
		t.Fatalf("DefinePattern dup err = %v", err)
	}
	if _, err := e.Execute(`PATTERN dup { ?A-?B; }
SELECT ID, COUNTP(dup, SUBGRAPH(ID, 1)) FROM nodes`); err == nil || !strings.Contains(err.Error(), "already defined") {
		t.Fatalf("script redefinition err = %v", err)
	}
	// The failed script must not have clobbered the original (1-node)
	// definition.
	if got := e.Patterns()["dup"].NumNodes(); got != 1 {
		t.Fatalf("catalog pattern mutated: %d nodes", got)
	}
	// A script defining a genuinely new pattern persists it.
	if _, err := e.Execute(`PATTERN fresh { ?A-?B; }
SELECT ID, COUNTP(fresh, SUBGRAPH(ID, 1)) FROM nodes`); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Patterns()["fresh"]; !ok {
		t.Fatal("script-defined pattern not retained")
	}
}

// TestExecStatsPopulated checks the per-stage measurements thread
// through to the table.
func TestExecStatsPopulated(t *testing.T) {
	g := gen.PreferentialAttachment(60, 3, 9)
	e := NewEngine(g)
	tables, err := e.Execute(`PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes WHERE RND() < 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	st := tables[0].Stats
	if st.PlanTime <= 0 || st.CensusTime <= 0 {
		t.Fatalf("missing stage times: %+v", st)
	}
	if st.FocalCount <= 0 || st.FocalCount >= g.NumNodes() {
		t.Fatalf("RND()-filtered focal count = %d of %d", st.FocalCount, g.NumNodes())
	}
	if st.Rows != len(tables[0].Rows) {
		t.Fatalf("Rows stat %d != %d rows", st.Rows, len(tables[0].Rows))
	}
	if tables[0].Elapsed != st.CensusTime {
		t.Fatal("Elapsed must mirror CensusTime")
	}
	if tables[0].Plan == nil || tables[0].Plan.TotalCost <= 0 {
		t.Fatal("plan not attached")
	}
}

// TestPlanAgainstSourceWithoutHydration: EXPLAIN through a Source must
// not materialize the graph.
func TestPlanAgainstSourceWithoutHydration(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 15)
	src := plan.FromGraph(g)
	e := NewEngineFromSource(src)
	tables, err := e.Execute(`PATTERN e1 { ?A-?B; }
EXPLAIN SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if e.G != nil {
		t.Fatal("EXPLAIN hydrated the graph")
	}
	if len(tables[0].Rows) == 0 {
		t.Fatal("no plan rows")
	}
	// A real query hydrates lazily and runs.
	tables, err = e.Execute(`SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if e.G == nil {
		t.Fatal("query did not hydrate the graph")
	}
	if len(tables[0].TypedRows) != g.NumNodes() {
		t.Fatalf("rows = %d", len(tables[0].TypedRows))
	}
}
