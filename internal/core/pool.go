package core

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"egocensus/internal/graph"
)

// workerPanic carries a panic out of a pool worker goroutine: the pool
// captures the first one (with its original stack), lets the remaining
// workers drain, and rethrows it on the coordinating goroutine so it
// propagates to the caller — for engine queries, to the execution
// boundary's recover, which converts it to a *InternalError.
type workerPanic struct {
	val   any
	stack []byte
}

// panicBox latches the first worker panic.
type panicBox struct {
	mu sync.Mutex
	wp *workerPanic
}

func (b *panicBox) capture() {
	if r := recover(); r != nil {
		b.mu.Lock()
		if b.wp == nil {
			b.wp = &workerPanic{val: r, stack: debug.Stack()}
		}
		b.mu.Unlock()
	}
}

// rethrow re-panics the captured worker panic, if any, on the calling
// goroutine.
func (b *panicBox) rethrow() {
	if b.wp != nil {
		panic(b.wp)
	}
}

// DefaultWorkers is the worker count the front ends use for "auto"
// parallelism: one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// prepare eagerly builds the graph's shared read-only indexes (CSR
// adjacency, label profiles) so parallel census workers never race on a
// lazy build.
func prepare(g *graph.Graph) {
	g.BuildCSR()
	g.BuildProfiles()
}

// parallelFor runs body(i) for every i in [0, n) across up to `workers`
// goroutines. Work items are claimed through an atomic counter, so uneven
// item costs balance across workers. workers <= 1 (or n <= 1) runs inline.
// body must only touch per-item or per-goroutine state.
//
// gd (nil allowed) is checked before each item claim: once it stops, no
// further items start and every worker drains within one item. Bodies with
// long inner loops tick the guard themselves for sub-item latency.
func parallelFor(gd *guard, workers, n int, body func(i int)) {
	parallelForWorker(gd, workers, n, func(_, i int) { body(i) })
}

// parallelForWorker is parallelFor with the worker index passed to the
// body, for callers that keep per-worker state (scratch vectors, RNGs).
func parallelForWorker(gd *guard, workers, n int, body func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if gd.check() != nil {
				return
			}
			body(0, i)
			gd.focalTick()
		}
		return
	}
	var box panicBox
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			defer box.capture()
			for {
				if gd.check() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(w, i)
				gd.focalTick()
			}
		}()
	}
	wg.Wait()
	box.rethrow()
}

// parallelMerge runs body(w, counts, i) for every i in [0, n), giving each
// worker w a private int64 accumulator vector the same length as dst, and
// sums the vectors into dst afterwards. Because int64 addition is
// commutative and associative, the merged result is identical for every
// worker count — parallel censuses stay bit-for-bit equal to sequential
// ones. workers <= 1 accumulates directly into dst.
//
// On a guard stop, the per-worker vectors accumulated so far are still
// merged, so dst holds the partial census the typed errors carry.
func parallelMerge(gd *guard, workers, n int, dst []int64, body func(w int, counts []int64, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if gd.check() != nil {
				return
			}
			body(0, dst, i)
			gd.focalTick()
		}
		return
	}
	perWorker := make([][]int64, workers)
	gd.chargeMem(int64(workers) * int64(len(dst)) * 8)
	var box panicBox
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		perWorker[w] = make([]int64, len(dst))
		go func() {
			defer wg.Done()
			defer box.capture()
			for {
				if gd.check() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(w, perWorker[w], i)
				gd.focalTick()
			}
		}()
	}
	wg.Wait()
	for _, pc := range perWorker {
		for i, c := range pc {
			dst[i] += c
		}
	}
	box.rethrow()
}
