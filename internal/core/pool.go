package core

import (
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"egocensus/internal/graph"
)

// workerPanic carries a panic out of a pool worker goroutine: the pool
// captures the first one (with its original stack), lets the remaining
// workers drain, and rethrows it on the coordinating goroutine so it
// propagates to the caller — for engine queries, to the execution
// boundary's recover, which converts it to a *InternalError.
type workerPanic struct {
	val   any
	stack []byte
}

// panicBox latches the first worker panic.
type panicBox struct {
	mu sync.Mutex
	wp *workerPanic
}

func (b *panicBox) capture() {
	if r := recover(); r != nil {
		b.mu.Lock()
		if b.wp == nil {
			b.wp = &workerPanic{val: r, stack: debug.Stack()}
		}
		b.mu.Unlock()
	}
}

// rethrow re-panics the captured worker panic, if any, on the calling
// goroutine.
func (b *panicBox) rethrow() {
	if b.wp != nil {
		panic(b.wp)
	}
}

// DefaultWorkers is the worker count the front ends use for "auto"
// parallelism: one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// maxWorkers caps absurd worker requests: beyond this, more goroutines
// only add scheduling overhead and per-worker accumulator memory.
func maxWorkers() int {
	if m := 32 * runtime.NumCPU(); m > 256 {
		return m
	}
	return 256
}

// EffectiveWorkers is the single place worker counts are clamped and
// validated: negative values mean "auto" (DefaultWorkers), zero keeps
// the zero-value Options meaning of sequential execution, and absurd
// requests are capped. Both CLIs report this value so users see the
// parallelism they actually got.
func EffectiveWorkers(requested int) int {
	switch {
	case requested < 0:
		return DefaultWorkers()
	case requested == 0:
		return 1
	case requested > maxWorkers():
		return maxWorkers()
	}
	return requested
}

// prepare eagerly builds the graph's shared read-only indexes (CSR
// adjacency, label profiles, hub-neighbor bitmaps) so parallel census
// workers never race on a lazy build.
func prepare(g *graph.Graph) {
	g.BuildCSR()
	g.BuildProfiles()
	g.BuildHubBitmaps()
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler
//
// The census workloads are degree-skewed: on preferential-attachment
// graphs a handful of hub focals cost orders of magnitude more than the
// median. Items are therefore ordered by descending estimated cost,
// grouped into chunks of roughly equal total cost, and dealt round-robin
// to per-worker deques — so the most expensive work starts first and no
// single worker is stuck with all of it. Owners pop their deque from the
// front (costliest chunks first); idle workers steal from other deques'
// backs (cheapest chunks, minimizing conflict with the owner).
//
// Stealing changes only WHICH worker runs an item, never the result:
// bodies write disjoint per-item slots or per-worker accumulators that
// merge commutatively (parallelMerge), so census tables stay
// bit-identical across worker counts and steal interleavings.

// schedChunksPerWorker controls chunk granularity: more chunks per
// worker means finer stealing at slightly more queue traffic.
const schedChunksPerWorker = 8

// stealDelay, when non-nil, is called before every steal attempt with
// the stealing worker's index. It exists for tests to inject randomized
// steal timing and must be nil in production.
var stealDelay func(worker int)

// chunk is a half-open range of positions in the scheduler's item order.
type chunk struct{ start, end int32 }

// wsQueue is one worker's deque of chunks. A plain mutex suffices:
// operations are per-chunk, not per-item, so the lock is cold.
type wsQueue struct {
	mu     sync.Mutex
	chunks []chunk
	head   int
	tail   int // exclusive
}

func (q *wsQueue) popFront() (chunk, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= q.tail {
		return chunk{}, false
	}
	c := q.chunks[q.head]
	q.head++
	return c, true
}

func (q *wsQueue) popBack() (chunk, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= q.tail {
		return chunk{}, false
	}
	q.tail--
	return q.chunks[q.tail], true
}

// affinity steers chunk seeding for partitioned graphs: items are
// grouped by shard and each shard's chunks seed the shard's home worker
// (shard mod workers), so workers start on data their shard's ingest
// lane produced and cross-shard traffic happens only through stealing
// when a deque drains. Affinity changes only the seeding, never the
// result: bodies stay commutative, so censuses are bit-identical with
// and without it.
type affinity struct {
	shards int
	shard  func(i int) int
}

// buildSchedule orders the items by descending cost (identity order when
// cost is nil) and cuts the order into chunks of roughly equal total
// cost. Items whose individual cost exceeds the chunk target become
// singleton chunks, so a hub focal never drags neighbors into its chunk.
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func buildSchedule(n, workers int, cost func(i int) int64) (ord []int32, chunks []chunk) {
	ord = make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	var costs []int64
	total := int64(n)
	if cost != nil {
		costs = make([]int64, n)
		total = 0
		for i := 0; i < n; i++ {
			c := cost(i)
			if c < 1 {
				c = 1
			}
			costs[i] = c
			total += c
		}
		sort.SliceStable(ord, func(a, b int) bool { return costs[ord[a]] > costs[ord[b]] })
	}
	target := total / int64(workers*schedChunksPerWorker)
	if target < 1 {
		target = 1
	}
	var acc int64
	start := 0
	for idx := 0; idx < n; idx++ {
		if costs != nil {
			acc += costs[ord[idx]]
		} else {
			acc++
		}
		if acc >= target {
			chunks = append(chunks, chunk{int32(start), int32(idx + 1)})
			start = idx + 1
			acc = 0
		}
	}
	if start < n {
		chunks = append(chunks, chunk{int32(start), int32(n)})
	}
	return ord, chunks
}

// buildScheduleAff is buildSchedule for a partitioned graph: items order
// by (shard, descending cost), chunks never span a shard boundary, and
// every chunk carries its shard's home worker. The chunk-size target is
// still global, so a small shard just yields fewer chunks for thieves.
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func buildScheduleAff(n, workers int, cost func(i int) int64, aff *affinity) (ord []int32, chunks []chunk, home []int) {
	ord = make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	shardOf := make([]int32, n)
	costs := make([]int64, n)
	total := int64(0)
	for i := 0; i < n; i++ {
		shardOf[i] = int32(aff.shard(i))
		c := int64(1)
		if cost != nil {
			if c = cost(i); c < 1 {
				c = 1
			}
		}
		costs[i] = c
		total += c
	}
	sort.SliceStable(ord, func(a, b int) bool {
		sa, sb := shardOf[ord[a]], shardOf[ord[b]]
		if sa != sb {
			return sa < sb
		}
		return costs[ord[a]] > costs[ord[b]]
	})
	target := total / int64(workers*schedChunksPerWorker)
	if target < 1 {
		target = 1
	}
	var acc int64
	start := 0
	cut := func(end int) {
		chunks = append(chunks, chunk{int32(start), int32(end)})
		home = append(home, int(shardOf[ord[start]])%workers)
		start = end
		acc = 0
	}
	for idx := 0; idx < n; idx++ {
		acc += costs[ord[idx]]
		atBoundary := idx+1 < n && shardOf[ord[idx+1]] != shardOf[ord[idx]]
		if acc >= target || atBoundary {
			cut(idx + 1)
		}
	}
	if start < n {
		cut(n)
	}
	return ord, chunks, home
}

// runStealing executes every scheduled item across the workers with
// work stealing. body observes (executing worker, item index); gd (nil
// allowed) is polled per item. home (nil allowed) assigns chunk k to a
// specific worker's deque instead of round-robin.
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func runStealing(gd *guard, workers int, ord []int32, chunks []chunk, home []int, body func(w, i int)) {
	queues := make([]*wsQueue, workers)
	for w := range queues {
		queues[w] = &wsQueue{}
	}
	// Deal chunks round-robin in descending-cost order: chunk k (the
	// k-th costliest) goes to worker k mod workers, so every worker
	// starts on heavy work and light chunks land at the deque backs
	// where thieves take them first. Shard-affine schedules override the
	// deal with each chunk's home worker.
	for k, c := range chunks {
		q := queues[k%workers]
		if home != nil {
			q = queues[home[k]]
		}
		q.chunks = append(q.chunks, c)
		q.tail++
	}
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			defer box.capture()
			own := queues[w]
			for {
				if gd.check() != nil {
					return
				}
				c, ok := own.popFront()
				if !ok {
					c, ok = stealFrom(queues, w)
				}
				if !ok {
					return
				}
				for idx := c.start; idx < c.end; idx++ {
					if gd.check() != nil {
						return
					}
					body(w, int(ord[idx]))
					gd.focalTick()
				}
			}
		}()
	}
	wg.Wait()
	box.rethrow()
}

// stealFrom scans the other deques for a chunk, taking from the back.
func stealFrom(queues []*wsQueue, w int) (chunk, bool) {
	for off := 1; off < len(queues); off++ {
		if stealDelay != nil {
			stealDelay(w)
		}
		if c, ok := queues[(w+off)%len(queues)].popBack(); ok {
			return c, true
		}
	}
	return chunk{}, false
}

// parallelFor runs body(i) for every i in [0, n) across up to `workers`
// goroutines with uniform cost estimates. workers <= 1 (or n <= 1) runs
// inline. body must only touch per-item or per-goroutine state.
//
// gd (nil allowed) is checked before each item: once it stops, no
// further items start and every worker drains within one item. Bodies
// with long inner loops tick the guard themselves for sub-item latency.
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelFor(gd *guard, workers, n int, body func(i int)) {
	parallelForWorkerCost(gd, workers, n, nil, func(_, i int) { body(i) })
}

// parallelForCost is parallelFor with a per-item cost estimate steering
// the work-stealing schedule (nil means uniform).
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelForCost(gd *guard, workers, n int, cost func(i int) int64, body func(i int)) {
	parallelForWorkerCost(gd, workers, n, cost, func(_, i int) { body(i) })
}

// parallelForCostAff is parallelForCost with optional shard affinity
// (nil aff behaves exactly like parallelForCost).
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelForCostAff(gd *guard, workers, n int, cost func(i int) int64, aff *affinity, body func(i int)) {
	parallelForWorkerCostAff(gd, workers, n, cost, aff, func(_, i int) { body(i) })
}

// parallelForWorker is parallelFor with the worker index passed to the
// body, for callers that keep per-worker state (scratch vectors, RNGs).
// Stealing may run any item on any worker; bodies must not rely on a
// fixed item→worker mapping for correctness.
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelForWorker(gd *guard, workers, n int, body func(w, i int)) {
	parallelForWorkerCost(gd, workers, n, nil, body)
}

// parallelForWorkerCost is the scheduler's general form: per-item cost
// estimates (nil = uniform) plus worker-indexed bodies.
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelForWorkerCost(gd *guard, workers, n int, cost func(i int) int64, body func(w, i int)) {
	parallelForWorkerCostAff(gd, workers, n, cost, nil, body)
}

// parallelForWorkerCostAff adds optional shard affinity to the general
// form: with a non-nil aff, chunks stay within shard boundaries and seed
// their shard's home worker.
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelForWorkerCostAff(gd *guard, workers, n int, cost func(i int) int64, aff *affinity, body func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if gd.check() != nil {
				return
			}
			body(0, i)
			gd.focalTick()
		}
		return
	}
	var ord []int32
	var chunks []chunk
	var home []int
	if aff != nil {
		ord, chunks, home = buildScheduleAff(n, workers, cost, aff)
	} else {
		ord, chunks = buildSchedule(n, workers, cost)
	}
	runStealing(gd, workers, ord, chunks, home, body)
}

// parallelMerge runs body(w, counts, i) for every i in [0, n), giving each
// worker w a private int64 accumulator vector the same length as dst, and
// sums the vectors into dst afterwards. Because int64 addition is
// commutative and associative, the merged result is identical for every
// worker count and steal interleaving — parallel censuses stay
// bit-for-bit equal to sequential ones. workers <= 1 accumulates
// directly into dst.
//
// On a guard stop, the per-worker vectors accumulated so far are still
// merged, so dst holds the partial census the typed errors carry.
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelMerge(gd *guard, workers, n int, dst []int64, body func(w int, counts []int64, i int)) {
	parallelMergeCost(gd, workers, n, nil, dst, body)
}

// parallelMergeCost is parallelMerge with a per-item cost estimate
// steering the work-stealing schedule (nil means uniform).
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelMergeCost(gd *guard, workers, n int, cost func(i int) int64, dst []int64, body func(w int, counts []int64, i int)) {
	parallelMergeCostAff(gd, workers, n, cost, nil, dst, body)
}

// parallelMergeCostAff is parallelMergeCost with optional shard affinity
// (nil aff behaves exactly like parallelMergeCost).
//
//egolint:deterministic bit-identical merge contract (PR 1/PR 5): results must be equal across worker counts and steal timing
func parallelMergeCostAff(gd *guard, workers, n int, cost func(i int) int64, aff *affinity, dst []int64, body func(w int, counts []int64, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if gd.check() != nil {
				return
			}
			body(0, dst, i)
			gd.focalTick()
		}
		return
	}
	perWorker := make([][]int64, workers)
	gd.chargeMem(int64(workers) * int64(len(dst)) * 8)
	for w := range perWorker {
		perWorker[w] = make([]int64, len(dst))
	}
	var ord []int32
	var chunks []chunk
	var home []int
	if aff != nil {
		ord, chunks, home = buildScheduleAff(n, workers, cost, aff)
	} else {
		ord, chunks = buildSchedule(n, workers, cost)
	}
	runStealing(gd, workers, ord, chunks, home, func(w, i int) { body(w, perWorker[w], i) })
	// Merge in worker-index order; addition commutes, so the result is
	// independent of which worker executed which item.
	for _, pc := range perWorker {
		for i, c := range pc {
			dst[i] += c
		}
	}
}
