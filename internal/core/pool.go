package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"egocensus/internal/graph"
)

// DefaultWorkers is the worker count the front ends use for "auto"
// parallelism: one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// prepare eagerly builds the graph's shared read-only indexes (CSR
// adjacency, label profiles) so parallel census workers never race on a
// lazy build.
func prepare(g *graph.Graph) {
	g.BuildCSR()
	g.BuildProfiles()
}

// parallelFor runs body(i) for every i in [0, n) across up to `workers`
// goroutines. Work items are claimed through an atomic counter, so uneven
// item costs balance across workers. workers <= 1 (or n <= 1) runs inline.
// body must only touch per-item or per-goroutine state.
func parallelFor(workers, n int, body func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// parallelForWorker is parallelFor with the worker index passed to the
// body, for callers that keep per-worker state (scratch vectors, RNGs).
func parallelForWorker(workers, n int, body func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(w, i)
			}
		}()
	}
	wg.Wait()
}

// parallelMerge runs body(w, counts, i) for every i in [0, n), giving each
// worker w a private int64 accumulator vector the same length as dst, and
// sums the vectors into dst afterwards. Because int64 addition is
// commutative and associative, the merged result is identical for every
// worker count — parallel censuses stay bit-for-bit equal to sequential
// ones. workers <= 1 accumulates directly into dst.
func parallelMerge(workers, n int, dst []int64, body func(w int, counts []int64, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(0, dst, i)
		}
		return
	}
	perWorker := make([][]int64, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		perWorker[w] = make([]int64, len(dst))
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(w, perWorker[w], i)
			}
		}()
	}
	wg.Wait()
	for _, pc := range perWorker {
		for i, c := range pc {
			dst[i] += c
		}
	}
}
