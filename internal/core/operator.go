package core

import (
	"sort"
	"time"

	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/plan"
)

// This file is the execute layer of the query pipeline: physical
// operators compiled from an optimized plan.Physical, each wrapping one
// stage of census evaluation and recording its measurements.

// ExecStats records per-stage measurements of one query's physical
// pipeline, threaded into the result Table (and egosh's \timing).
type ExecStats struct {
	// ParseTime covers lexing and parsing. Prepared executions report
	// zero: the statement was parsed once at Prepare time.
	ParseTime time.Duration
	// PlanTime covers logical plan construction plus cost-based
	// optimization. Prepared executions served from the plan cache report
	// only the cache probe.
	PlanTime time.Duration
	// PlanCached reports that the optimized plan came from the engine's
	// plan cache (same fingerprint, same statistics epoch) — parse and
	// optimization were both skipped.
	PlanCached bool
	// ResultCached reports that the whole table came from the engine's
	// result cache: no pipeline stage ran, and the stage timings below
	// describe the execution that originally produced the rows.
	ResultCached bool
	// FocalTime covers WHERE resolution to focal nodes or pairs.
	FocalTime time.Duration
	// FocalCount is the focal-set size after WHERE: nodes for single-node
	// censuses, unordered candidate pairs for node-driven pairwise ones.
	// Pattern-driven pairwise evaluation resolves pairs lazily from the
	// match set and reports -1.
	FocalCount int
	// CensusTime covers the census drivers proper (Table.Elapsed mirrors
	// it for backwards compatibility).
	CensusTime time.Duration
	// MatchSetSize is |M|, the global match-set size summed over
	// aggregates (0 for ND-BAS, which never materializes it).
	MatchSetSize int
	// RenderTime covers pair-row emission, ORDER BY/LIMIT, and cell
	// rendering.
	RenderTime time.Duration
	// Rows is the emitted row count.
	Rows int
}

// Operator is one stage of a physical execution pipeline. Operators
// mutate the shared execution state in order and record their
// measurements into the table's ExecStats.
type Operator interface {
	// Name identifies the stage for timing displays.
	Name() string
	Run(st *execState) error
}

// execState is the mutable state a pipeline threads through its
// operators. It deliberately does not reference the Engine: everything an
// execution needs is copied in up front, so any number of pipelines can
// run concurrently over a shared engine without touching shared state.
type execState struct {
	g        *graph.Graph
	phys     *plan.Physical
	q        *lang.SelectStmt
	gd       *guard // one guard spans the whole pipeline (nil: ungoverned)
	seed     int64  // RND() stream seed
	opt      Options
	params   map[string]string // $name bindings (nil: parameter-free)
	specs    []Spec
	pairSpec *PairSpec
	results  []*Result
	table    *Table
}

// compile lowers an optimized plan to its operator pipeline.
func compile(phys *plan.Physical) []Operator {
	if phys.Pair {
		return []Operator{focalSelectOp{}, pairCensusOp{}, renderOp{}}
	}
	return []Operator{focalSelectOp{}, censusOp{}, renderOp{}}
}

// passes evaluates the WHERE clause for a focal binding (node or ordered
// pair) with the deterministic RND() stream and the execution's parameter
// bindings.
func (st *execState) passes(nodes ...graph.NodeID) (bool, error) {
	if st.q.Where == nil {
		return true, nil
	}
	bindings := make([]lang.Binding, len(nodes))
	for i, n := range nodes {
		bindings[i] = lang.Binding{Alias: st.q.Aliases[i], Node: n}
	}
	a, b := int64(nodes[0]), int64(0)
	if len(nodes) > 1 {
		b = int64(nodes[1])
	}
	return lang.EvalWhereParams(st.q.Where, st.g, bindings, rndStream(st.seed, a, b), st.params)
}

// focalSelectOp resolves the WHERE clause to the focal node set (or, for
// node-driven pairwise evaluation, the explicit pair list).
type focalSelectOp struct{}

// Name implements Operator.
func (focalSelectOp) Name() string { return "focal-select" }

// Run implements Operator.
func (focalSelectOp) Run(st *execState) error {
	start := time.Now()
	defer func() { st.table.Stats.FocalTime = time.Since(start) }()

	tk := ticker{gd: st.gd}
	if !st.phys.Pair {
		st.table.Stats.FocalCount = st.g.NumNodes()
		if st.q.Where == nil {
			return nil
		}
		var focal []graph.NodeID
		for i := 0; i < st.g.NumNodes(); i++ {
			if tk.tick() != nil {
				return st.gd.failure(nil, nil)
			}
			n := graph.NodeID(i)
			ok, err := st.passes(n)
			if err != nil {
				return err
			}
			if ok {
				focal = append(focal, n)
			}
		}
		if focal == nil {
			focal = []graph.NodeID{} // empty but non-nil: nothing selected
		}
		for i := range st.specs {
			st.specs[i].Focal = focal
		}
		st.table.Stats.FocalCount = len(focal)
		return nil
	}

	// Node-driven pairwise evaluation needs the pair list up front:
	// enumerate ordered pairs passing WHERE. Pattern-driven evaluation
	// produces non-zero pairs directly and filters afterwards.
	alg := st.phys.Algorithm(0)
	if alg != plan.NDBas && alg != plan.NDPvot {
		st.table.Stats.FocalCount = -1
		return nil
	}
	seen := map[Pair]bool{}
	for i := 0; i < st.g.NumNodes(); i++ {
		for j := 0; j < st.g.NumNodes(); j++ {
			if tk.tick() != nil {
				return st.gd.failure(nil, nil)
			}
			if i == j {
				continue
			}
			a, b := graph.NodeID(i), graph.NodeID(j)
			ok, err := st.passes(a, b)
			if err != nil {
				return err
			}
			if ok {
				seen[MakePair(a, b)] = true
			}
		}
	}
	st.pairSpec.Pairs = make([]Pair, 0, len(seen))
	for pr := range seen {
		st.pairSpec.Pairs = append(st.pairSpec.Pairs, pr)
	}
	st.table.Stats.FocalCount = len(st.pairSpec.Pairs)
	return nil
}

// censusOp runs the single-node census drivers chosen by the optimizer
// and materializes the typed result rows.
type censusOp struct{}

// Name implements Operator.
func (censusOp) Name() string { return "census" }

// Run implements Operator.
func (censusOp) Run(st *execState) error {
	start := time.Now()
	switch {
	case st.phys.Batched:
		// Multiple aggregates sharing one BFS per focal node.
		st.table.Algorithm = NDPvot
		results, err := countManyGuarded(st.g, st.specs, st.opt, st.gd)
		if err != nil {
			return err
		}
		st.results = results
	default:
		st.table.Algorithm = Algorithm(st.phys.Algorithm(0))
		for i, spec := range st.specs {
			if err := spec.Validate(st.g); err != nil {
				return err
			}
			res, err := countGuarded(st.g, spec, Algorithm(st.phys.Algorithm(i)), st.opt, st.gd)
			if err != nil {
				return err
			}
			st.results = append(st.results, res)
		}
	}
	st.table.Stats.CensusTime = time.Since(start)
	st.table.Elapsed = st.table.Stats.CensusTime

	for _, res := range st.results {
		st.table.NumMatches += res.NumMatches
	}
	st.table.Stats.MatchSetSize = st.table.NumMatches
	st.table.Header = header(st.q)
	for _, n := range st.specs[0].focalList(st.g) {
		if st.gd.chargeRows(1) != nil {
			break
		}
		counts := make([]int64, len(st.results))
		for i, res := range st.results {
			counts[i] = res.Counts[n]
		}
		st.table.TypedRows = append(st.table.TypedRows,
			Row{Focal: []graph.NodeID{n}, Count: counts[0], Counts: counts})
	}
	var partial *Result
	if len(st.results) > 0 {
		partial = st.results[0]
	}
	return st.gd.failure(partial, nil)
}

// pairCensusOp runs the pairwise census driver and emits the ordered
// rows passing WHERE.
type pairCensusOp struct{}

// Name implements Operator.
func (pairCensusOp) Name() string { return "pair-census" }

// Run implements Operator.
func (pairCensusOp) Run(st *execState) error {
	alg := Algorithm(st.phys.Algorithm(0))
	if err := st.pairSpec.Validate(st.g); err != nil {
		return err
	}
	start := time.Now()
	res, err := countPairsGuarded(st.g, *st.pairSpec, alg, st.opt, st.gd)
	if err != nil {
		return err
	}
	st.table.Stats.CensusTime = time.Since(start)
	st.table.Elapsed = st.table.Stats.CensusTime
	st.table.Algorithm = alg
	st.table.NumMatches = res.NumMatches
	st.table.Stats.MatchSetSize = res.NumMatches
	st.table.Header = header(st.q)

	// Emit ordered rows for each non-zero unordered pair that passes
	// WHERE, deterministically sorted. This is row production, so its
	// time accrues to the render stage.
	emitStart := time.Now()
	defer func() { st.table.Stats.RenderTime += time.Since(emitStart) }()
	pairs := make([]Pair, 0, len(res.Counts))
	for pr, c := range res.Counts {
		if c != 0 {
			pairs = append(pairs, pr)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	tk := ticker{gd: st.gd}
	for _, pr := range pairs {
		if tk.tick() != nil {
			break
		}
		c := res.Counts[pr]
		for _, ord := range [][2]graph.NodeID{{pr.A, pr.B}, {pr.B, pr.A}} {
			ok, err := st.passes(ord[0], ord[1])
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			st.table.TypedRows = append(st.table.TypedRows,
				Row{Focal: []graph.NodeID{ord[0], ord[1]}, Count: c})
		}
	}
	return st.gd.failure(nil, res)
}

// renderOp applies ORDER BY/LIMIT and renders string cells.
type renderOp struct{}

// Name implements Operator.
func (renderOp) Name() string { return "render" }

// Run implements Operator.
func (renderOp) Run(st *execState) error {
	start := time.Now()
	finishTable(st.g, st.q, st.table)
	st.table.Stats.RenderTime += time.Since(start)
	st.table.Stats.Rows = len(st.table.Rows)
	return nil
}
