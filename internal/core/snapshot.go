package core

import (
	"context"

	"egocensus/internal/graph"
)

// Snapshot-pinned census entry points. A graph.Snapshot wraps a frozen
// graph whose reads (including the lazy CSR and profile builds the
// drivers trigger) are safe under any concurrency, so census evaluation
// runs on it unchanged while a Writer keeps publishing newer versions.
// Every result is exact for the pinned epoch.

// CountSnapshot runs a single-node census against one pinned version.
func CountSnapshot(s *graph.Snapshot, spec Spec, alg Algorithm, opt Options) (*Result, error) {
	return Count(s.Graph(), spec, alg, opt)
}

// CountSnapshotContext is CountSnapshot under a context (cancellation and
// resource limits as in CountContext).
func CountSnapshotContext(ctx context.Context, s *graph.Snapshot, spec Spec, alg Algorithm, opt Options) (*Result, error) {
	return CountContext(ctx, s.Graph(), spec, alg, opt)
}

// CountPairsSnapshot runs a pairwise census against one pinned version.
func CountPairsSnapshot(s *graph.Snapshot, spec PairSpec, alg Algorithm, opt Options) (*PairResult, error) {
	return CountPairs(s.Graph(), spec, alg, opt)
}

// CountPairsSnapshotContext is CountPairsSnapshot under a context.
func CountPairsSnapshotContext(ctx context.Context, s *graph.Snapshot, spec PairSpec, alg Algorithm, opt Options) (*PairResult, error) {
	return CountPairsContext(ctx, s.Graph(), spec, alg, opt)
}
