package core

import (
	"container/heap"
	"context"
	"sort"

	"egocensus/internal/graph"
)

// This file implements the top-k census evaluation the paper lists as
// future work ("top-k query evaluation techniques to more efficiently
// identify the nodes with the highest pattern census counts"): return
// only the k focal nodes with the highest counts.
//
// For node-driven evaluation, the full census is computed and a bounded
// heap selects the top k. For pattern-driven evaluation, counts for all
// touched nodes are produced by the same counting phase, so the heap
// selection is the only extra cost either way; the win over a full census
// is avoiding materializing and sorting the complete result.

// NodeCount is one ranked census result.
type NodeCount struct {
	Node  graph.NodeID
	Count int64
}

// TopK evaluates a single-node census and returns the k focal nodes with
// the highest counts, ordered by count descending (ties broken by node ID
// ascending, deterministically). k <= 0 returns nil.
func TopK(g *graph.Graph, spec Spec, k int, alg Algorithm, opt Options) ([]NodeCount, error) {
	return TopKContext(context.Background(), g, spec, k, alg, opt) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// TopKContext is TopK under a context; the underlying census evaluation is
// cancellable and resource-bounded per opt.Limits.
func TopKContext(ctx context.Context, g *graph.Graph, spec Spec, k int, alg Algorithm, opt Options) ([]NodeCount, error) {
	if k <= 0 {
		return nil, nil
	}
	res, err := CountContext(ctx, g, spec, alg, opt)
	if err != nil {
		return nil, err
	}
	return SelectTopK(res.Counts, spec.focalList(g), k), nil
}

// SelectTopK picks the k focal nodes with the highest counts using a
// bounded min-heap (O(n log k)).
func SelectTopK(counts []int64, focal []graph.NodeID, k int) []NodeCount {
	if k <= 0 {
		return nil
	}
	h := &countHeap{}
	heap.Init(h)
	for _, n := range focal {
		nc := NodeCount{Node: n, Count: counts[n]}
		if h.Len() < k {
			heap.Push(h, nc)
			continue
		}
		if less(h.items[0], nc) {
			h.items[0] = nc
			heap.Fix(h, 0)
		}
	}
	out := make([]NodeCount, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(NodeCount)
	}
	return out
}

// TopKPairs evaluates a pairwise census and returns the k pairs with the
// highest counts — the ranking step of the link-prediction experiment.
func TopKPairs(g *graph.Graph, spec PairSpec, k int, alg Algorithm, opt Options) ([]PairCount, error) {
	return TopKPairsContext(context.Background(), g, spec, k, alg, opt) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// TopKPairsContext is TopKPairs under a context; the underlying pairwise
// evaluation is cancellable and resource-bounded per opt.Limits.
func TopKPairsContext(ctx context.Context, g *graph.Graph, spec PairSpec, k int, alg Algorithm, opt Options) ([]PairCount, error) {
	if k <= 0 {
		return nil, nil
	}
	res, err := CountPairsContext(ctx, g, spec, alg, opt)
	if err != nil {
		return nil, err
	}
	ranked := make([]PairCount, 0, len(res.Counts))
	for pr, c := range res.Counts {
		ranked = append(ranked, PairCount{Pair: pr, Count: c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		if ranked[i].Pair.A != ranked[j].Pair.A {
			return ranked[i].Pair.A < ranked[j].Pair.A
		}
		return ranked[i].Pair.B < ranked[j].Pair.B
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, nil
}

// PairCount is one ranked pairwise census result.
type PairCount struct {
	Pair  Pair
	Count int64
}

// less orders NodeCounts ascending by (count, then reversed node ID), so
// the heap root is the weakest entry and ties prefer smaller node IDs in
// the final ranking.
func less(a, b NodeCount) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Node > b.Node
}

type countHeap struct {
	items []NodeCount
}

func (h *countHeap) Len() int           { return len(h.items) }
func (h *countHeap) Less(i, j int) bool { return less(h.items[i], h.items[j]) }
func (h *countHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *countHeap) Push(x interface{}) { h.items = append(h.items, x.(NodeCount)) }
func (h *countHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
