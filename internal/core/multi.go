package core

import (
	"context"
	"fmt"

	"egocensus/internal/graph"
)

// CountMany evaluates several censuses with the same radius k and focal
// set in one pass: the dominant cost of node-driven evaluation — one
// k-hop BFS per focal node — is paid once and shared by every pattern
// (each with its own pivot index), instead of once per pattern. Useful for
// workloads that ask several questions of the same neighborhoods, e.g. the
// link-prediction measures or the clustering-coefficient reduction.
//
// Results are returned in spec order and are identical to running
// Count(..., NDPvot, ...) per spec.
func CountMany(g *graph.Graph, specs []Spec, opt Options) ([]*Result, error) {
	return CountManyContext(context.Background(), g, specs, opt) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// CountManyContext is CountMany under a context: cancellation and
// opt.Limits stop the shared pass within a bounded interval; the typed
// error carries the first spec's partial census as a progress indicator.
func CountManyContext(ctx context.Context, g *graph.Graph, specs []Spec, opt Options) ([]*Result, error) {
	gd, cancel := newGuard(ctx, opt.Limits)
	defer cancel()
	return countManyGuarded(g, specs, opt, gd)
}

//egolint:deterministic census drivers must be bit-identical across runs, algorithms, and worker counts
func countManyGuarded(g *graph.Graph, specs []Spec, opt Options, gd *guard) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	k := specs[0].K
	for i, spec := range specs {
		if err := spec.Validate(g); err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		if spec.K != k {
			return nil, fmt.Errorf("census: CountMany requires a uniform radius (spec %d has k=%d, want %d)", i, spec.K, k)
		}
		if !sameFocal(specs[0].Focal, spec.Focal) {
			return nil, fmt.Errorf("census: CountMany requires a uniform focal set")
		}
	}

	// Per-spec pivot machinery, as in countNDPvot.
	type pvState struct {
		matches []patternMatch
		index   [][]int32
		maxV    int
		distant [][]int
	}
	states := make([]*pvState, len(specs))
	results := make([]*Result, len(specs))
	for i, spec := range specs {
		matches, err := globalMatchesGuarded(g, spec, opt, gd)
		if err != nil {
			return nil, err
		}
		results[i] = &Result{Counts: make([]int64, g.NumNodes()), NumMatches: len(matches)}
		if len(matches) == 0 {
			continue
		}
		anchorIdx := spec.anchorNodes()
		dist := spec.Pattern.Distances()
		pivot, maxV := -1, int(^uint(0)>>1)
		for _, x := range anchorIdx {
			ecc := 0
			for _, y := range anchorIdx {
				if dist[x][y] > ecc {
					ecc = dist[x][y]
				}
			}
			if ecc < maxV {
				pivot, maxV = x, ecc
			}
		}
		distant := make([][]int, maxV+2)
		for _, u := range anchorIdx {
			for j := 1; j <= maxV; j++ {
				if dist[pivot][u] >= j {
					distant[j] = append(distant[j], u)
				}
			}
		}
		st := &pvState{maxV: maxV, distant: distant, index: buildPMI(g.NumNodes(), matches, pivot)}
		st.matches = make([]patternMatch, len(matches))
		for mi, m := range matches {
			st.matches[mi] = m
		}
		states[i] = st
	}

	prepare(g)
	focal := specs[0].focalList(g)
	gd.setFocalTotal(len(focal))
	focalCost := func(i int) int64 { return 1 + int64(g.Degree(focal[i])) }
	parallelForCostAff(gd, opt.workers(), len(focal), focalCost, opt.focalAffinity(focal), func(fi int) {
		n := focal[fi]
		s := graph.AcquireScratch(g.NumNodes())
		defer s.Release()
		reach := g.KHop(n, k, s) // the shared traversal
		tk := ticker{gd: gd}
		for i, st := range states {
			if st == nil {
				continue
			}
			var count int64
			for _, nPrime := range reach.Nodes {
				if tk.tick() != nil {
					return
				}
				bucket := st.index[nPrime]
				if len(bucket) == 0 {
					continue
				}
				d := int(reach.Dist(nPrime))
				if d+st.maxV <= k {
					count += int64(len(bucket))
					continue
				}
				checkIdx := k - d + 1
				if checkIdx < 1 {
					checkIdx = 1
				}
				if checkIdx >= len(st.distant) {
					checkIdx = len(st.distant) - 1
				}
				toCheck := st.distant[checkIdx]
				for _, mi := range bucket {
					m := st.matches[mi]
					inside := true
					for _, u := range toCheck {
						if !reach.Contains(m[u]) {
							inside = false
							break
						}
					}
					if inside {
						count++
					}
				}
			}
			results[i].Counts[n] = count
		}
	})
	if len(results) > 0 {
		if err := gd.failure(results[0], nil); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// patternMatch aliases the match representation for the state table.
type patternMatch = []graph.NodeID

func sameFocal(a, b []graph.NodeID) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
