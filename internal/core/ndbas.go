package core

import (
	"egocensus/internal/graph"
	"egocensus/internal/match"
)

// countNDBas is the node-driven baseline (Section IV-A): match the pattern
// inside S(n, k) for every focal node. It repeats overlapping work across
// neighborhoods and is computationally infeasible beyond small graphs —
// the paper reports 218x slower than ND-PVOT at 20K nodes — but it is the
// semantic reference the other algorithms are validated against.
//
// With a masked matcher (the default CN), the per-node matching runs in
// place on the parent graph restricted to the k-hop reach, so no subgraph
// is ever extracted; other matchers fall back to extraction. Focal nodes
// are processed in parallel across Options.Workers — each owns a disjoint
// result slot, so workers write counts directly.
//
// Cancellation is checked before every focal node and, through the
// matcher's stop hook, inside each per-node enumeration; on a stop the
// counts written so far are returned as the partial census.
//
// COUNTSP censuses cannot be answered inside the neighborhood (the pattern
// may extend beyond it while only the subpattern image must lie inside),
// so for those the baseline degrades to the naive global scheme the paper
// describes as the starting point of pivot indexing: match globally, then
// containment-check every match against every focal node.
//
//egolint:deterministic census drivers must be bit-identical across runs, algorithms, and worker counts
func countNDBas(g *graph.Graph, spec Spec, opt Options, gd *guard) (*Result, error) {
	if spec.Subpattern != "" {
		return countNDBasSubpattern(g, spec, opt, gd)
	}
	res := &Result{Counts: make([]int64, g.NumNodes())}
	gd.chargeMem(int64(g.NumNodes()) * 8)
	m := opt.matcherFor(gd)
	focal := spec.focalList(g)
	gd.setFocalTotal(len(focal))
	prepare(g)
	// Per-focal cost estimate for the work-stealing schedule: the k-hop
	// BFS and the in-neighborhood matching both scale with the focal's
	// degree, so hubs sort to the front of the deques.
	focalCost := func(i int) int64 { return 1 + int64(g.Degree(focal[i])) }

	if mc, ok := m.(match.MaskedCounter); ok {
		// Zero-allocation hot path: one reusable counting run per worker;
		// candidate planes, CN arenas, and the distinct-key set all live
		// in the run and are reused across focals. The reach mask is also
		// per-worker — passing the Reach value itself would box it into the
		// NodeSet interface and put one heap allocation back per focal.
		workers := opt.workers()
		runs := make([]match.CountRun, workers)
		masks := make([]*reachMask, workers)
		parallelForWorkerCostAff(gd, workers, len(focal), focalCost, opt.focalAffinity(focal), func(w, i int) {
			run := runs[w]
			if run == nil {
				run = mc.NewCountRun()
				runs[w] = run
				masks[w] = new(reachMask)
			}
			n := focal[i]
			s := graph.AcquireScratch(g.NumNodes())
			mask := masks[w]
			mask.r = g.KHop(n, spec.K, s)
			distinct, _ := run.CountWithin(g, spec.Pattern, mask, nil)
			res.Counts[n] = int64(distinct)
			s.Release()
		})
		return res, gd.failure(res, nil)
	}

	if mm, ok := m.(match.MaskedMatcher); ok {
		parallelForCostAff(gd, opt.workers(), len(focal), focalCost, opt.focalAffinity(focal), func(i int) {
			n := focal[i]
			s := graph.AcquireScratch(g.NumNodes())
			reach := g.KHop(n, spec.K, s)
			emb := mm.EmbeddingsWithin(g, spec.Pattern, reach)
			res.Counts[n] = int64(match.CountDistinct(spec.Pattern, emb, nil))
			s.Release()
		})
		return res, gd.failure(res, nil)
	}

	parallelForCostAff(gd, opt.workers(), len(focal), focalCost, opt.focalAffinity(focal), func(i int) {
		n := focal[i]
		sg := g.EgoSubgraph(n, spec.K)
		emb := m.Embeddings(sg.G, spec.Pattern)
		res.Counts[n] = int64(match.CountDistinct(spec.Pattern, emb, nil))
	})
	return res, gd.failure(res, nil)
}

// reachMask adapts a graph.Reach to match.NodeSet behind a reusable
// pointer, so the per-focal masked count does not re-box the reach value.
type reachMask struct{ r graph.Reach }

func (m *reachMask) Contains(n graph.NodeID) bool { return m.r.Contains(n) }
func (m *reachMask) Members() []graph.NodeID      { return m.r.Nodes }

// countNDBasSubpattern is the naive O(|V_sigma| * |M| * |V_SP|) scheme.
func countNDBasSubpattern(g *graph.Graph, spec Spec, opt Options, gd *guard) (*Result, error) {
	res := &Result{Counts: make([]int64, g.NumNodes())}
	gd.chargeMem(int64(g.NumNodes()) * 8)
	matches, err := globalMatchesGuarded(g, spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res.NumMatches = len(matches)
	anchorIdx := spec.anchorNodes()
	focal := spec.focalList(g)
	gd.setFocalTotal(len(focal))
	prepare(g)
	focalCost := func(i int) int64 { return 1 + int64(g.Degree(focal[i])) }
	parallelForWorkerCostAff(gd, opt.workers(), len(focal), focalCost, opt.focalAffinity(focal), func(w, i int) {
		n := focal[i]
		s := graph.AcquireScratch(g.NumNodes())
		reach := g.KHop(n, spec.K, s)
		var count int64
		tk := ticker{gd: gd}
		for _, m := range matches {
			if tk.tick() != nil {
				break
			}
			inside := true
			for _, idx := range anchorIdx {
				if !reach.Contains(m[idx]) {
					inside = false
					break
				}
			}
			if inside {
				count++
			}
		}
		res.Counts[n] = count
		s.Release()
	})
	return res, gd.failure(res, nil)
}
