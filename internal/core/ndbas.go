package core

import (
	"egocensus/internal/graph"
	"egocensus/internal/match"
)

// countNDBas is the node-driven baseline (Section IV-A): extract S(n, k)
// for every focal node and run pattern matching inside it. It repeats
// overlapping work across neighborhoods and is computationally infeasible
// beyond small graphs — the paper reports 218x slower than ND-PVOT at 20K
// nodes — but it is the semantic reference the other algorithms are
// validated against.
//
// COUNTSP censuses cannot be answered inside the extracted subgraph (the
// pattern may extend beyond the neighborhood while only the subpattern
// image must lie inside), so for those the baseline degrades to the naive
// global scheme the paper describes as the starting point of pivot
// indexing: match globally, then containment-check every match against
// every focal node.
func countNDBas(g *graph.Graph, spec Spec, opt Options) (*Result, error) {
	if spec.Subpattern != "" {
		return countNDBasSubpattern(g, spec, opt)
	}
	res := &Result{Counts: make([]int64, g.NumNodes())}
	m := opt.matcher()
	for _, n := range spec.focalList(g) {
		sg := g.EgoSubgraph(n, spec.K)
		emb := m.Embeddings(sg.G, spec.Pattern)
		res.Counts[n] = int64(len(match.Deduplicate(spec.Pattern, emb, nil)))
	}
	return res, nil
}

// countNDBasSubpattern is the naive O(|V_sigma| * |M| * |V_SP|) scheme.
func countNDBasSubpattern(g *graph.Graph, spec Spec, opt Options) (*Result, error) {
	res := &Result{Counts: make([]int64, g.NumNodes())}
	matches := globalMatches(g, spec, opt)
	res.NumMatches = len(matches)
	anchorIdx := spec.anchorNodes()
	for _, n := range spec.focalList(g) {
		reach := g.KHopNodes(n, spec.K)
		for _, m := range matches {
			inside := true
			for _, idx := range anchorIdx {
				if _, ok := reach[m[idx]]; !ok {
					inside = false
					break
				}
			}
			if inside {
				res.Counts[n]++
			}
		}
	}
	return res, nil
}
