package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/plan"
)

// Prepared is a compiled census query: parsed once, fingerprinted, and
// executed any number of times with per-call parameter bindings. It is
// immutable after Prepare and safe for unlimited concurrent callers —
// each execution copies what it needs and runs through the stateless
// executor.
//
// Executions reuse work through two engine-level caches, both keyed by
// the query fingerprint and the snapshot epoch:
//
//   - the plan cache holds the optimized physical plan per statistics
//     epoch, so a warm execution skips parsing AND planning
//     (ExecStats.PlanCached);
//   - the result cache holds whole tables per (epoch, parameters, seed),
//     so a repeated execution against an unchanged version returns
//     without running any pipeline stage (ExecStats.ResultCached).
//
// A Writer publish advances the epoch and both caches miss naturally; no
// invalidation hooks exist or are needed.
type Prepared struct {
	e          *Engine
	q          *lang.SelectStmt
	fp         lang.Fingerprint
	paramNames []string
	parseTime  time.Duration
}

// ErrNotOneSelect reports Prepare input that does not contain exactly one
// SELECT statement. Serving layers use it to fall back to script
// execution for multi-statement requests.
var ErrNotOneSelect = errors.New("prepared: want exactly one SELECT")

// ParamError reports missing or unexpected parameter bindings for a
// prepared execution.
type ParamError struct {
	// Missing lists declared parameters with no binding; Unknown lists
	// bindings that match no declared parameter. Both are sorted.
	Missing []string
	Unknown []string
}

// Error implements error.
func (e *ParamError) Error() string {
	switch {
	case len(e.Missing) > 0 && len(e.Unknown) > 0:
		return fmt.Sprintf("prepared: missing parameters %v, unknown parameters %v", e.Missing, e.Unknown)
	case len(e.Missing) > 0:
		return fmt.Sprintf("prepared: missing parameters %v", e.Missing)
	default:
		return fmt.Sprintf("prepared: unknown parameters %v", e.Unknown)
	}
}

// ExecOptions are per-execution knobs for a prepared query.
type ExecOptions struct {
	// Limits overrides the engine's resource limits for this execution
	// when non-nil (a request deadline or row cap from a serving layer).
	Limits *Limits
	// NoResultCache bypasses the result cache for this execution: the
	// query runs fully and its table is not stored. Benchmarks use it to
	// measure plan-cache-only latency.
	NoResultCache bool
}

// Prepare parses src — optional PATTERN definitions followed by exactly
// one SELECT — and compiles it into a reusable Prepared. Patterns the
// text defines are added to the engine catalog (redefinition is a parse
// error, so preparing the same text twice requires the definitions to be
// outside, or the statement to be prepared once and reused). The
// statement may reference $name parameters in WHERE predicates and in
// pattern attribute predicates; Params reports them.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	parseStart := time.Now()
	script, err := lang.ParseWith(src, e.Patterns())
	if err != nil {
		return nil, err
	}
	parseTime := time.Since(parseStart)
	qs := script.Queries()
	if len(qs) != 1 {
		return nil, fmt.Errorf("%w, got %d", ErrNotOneSelect, len(qs))
	}
	e.adoptPatterns(script.Patterns)
	q := qs[0]
	fp, err := lang.QueryFingerprint(q, script.Patterns)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		e:          e,
		q:          q,
		fp:         fp,
		paramNames: lang.QueryParams(q, script.Patterns),
		parseTime:  parseTime,
	}, nil
}

// Params returns the sorted $name parameters the statement declares.
func (p *Prepared) Params() []string {
	out := make([]string, len(p.paramNames))
	copy(out, p.paramNames)
	return out
}

// Fingerprint returns the statement's canonical cache key.
func (p *Prepared) Fingerprint() lang.Fingerprint { return p.fp }

// Query returns the parsed statement (read-only).
func (p *Prepared) Query() *lang.SelectStmt { return p.q }

// Execute runs the prepared statement with the given parameter bindings.
func (p *Prepared) Execute(params map[string]string) (*Table, error) {
	return p.ExecuteContext(context.Background(), params, ExecOptions{}) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// ExecuteContext runs the prepared statement: validate bindings, pin the
// current snapshot, probe the result cache, then the plan cache, and only
// on a cold plan pay optimization. Safe for unlimited concurrent callers.
func (p *Prepared) ExecuteContext(ctx context.Context, params map[string]string, opts ExecOptions) (*Table, error) {
	if err := p.checkParams(params); err != nil {
		return nil, err
	}
	e := p.e
	config := e.configTag()
	pinned, epoch := e.pin()

	opt := e.optionsFor()
	if opts.Limits != nil {
		opt.Limits = *opts.Limits
	}

	rkey := resultKey{
		fp:     p.fp,
		epoch:  epoch,
		config: config,
		seed:   e.Seed,
		params: canonicalParams(params),
	}
	useResultCache := !p.q.Explain && !opts.NoResultCache
	if useResultCache {
		if t, ok := e.results().get(rkey); ok {
			return t, nil
		}
	}

	planStart := time.Now()
	pkey := planCacheKey(p.fp, epoch, config)
	phys, cached, err := p.planFor(pkey, pinned)
	if err != nil {
		return nil, err
	}
	base := ExecStats{PlanTime: time.Since(planStart), PlanCached: cached}

	if p.q.Explain {
		t := explainTable(p.q, phys, base)
		t.Epoch = epoch
		return t, nil
	}
	g, err := e.graphFor(pinned)
	if err != nil {
		return nil, err
	}
	t, err := execute(ctx, execRequest{
		q:      p.q,
		phys:   phys,
		g:      g,
		epoch:  epoch,
		seed:   e.Seed,
		opt:    opt,
		params: params,
		base:   base,
	})
	if err != nil {
		return nil, err
	}
	if useResultCache {
		e.results().put(rkey, t)
	}
	return t, nil
}

// planFor resolves the optimized plan through the plan cache, optimizing
// against the pinned version's statistics and filling the cache on a
// miss. Concurrent misses for the same key may both optimize; last write
// wins, and both plans are equivalent (same query, same statistics).
func (p *Prepared) planFor(key plan.CacheKey, pinned *graph.Snapshot) (*plan.Physical, bool, error) {
	if v, ok := p.e.plans().Get(key); ok {
		return v.(*plan.Physical), true, nil
	}
	s, err := p.e.statsFor(pinned)
	if err != nil {
		return nil, false, err
	}
	phys, err := p.e.planWith(p.q, s)
	if err != nil {
		return nil, false, err
	}
	p.e.plans().Put(key, phys)
	return phys, false, nil
}

// planCacheKey builds the plan-cache key for a fingerprint at one
// statistics epoch under one engine configuration.
func planCacheKey(fp lang.Fingerprint, epoch, config uint64) plan.CacheKey {
	return plan.CacheKey{Fingerprint: fp, Epoch: epoch, Config: config}
}

// configTag hashes the engine configuration that shapes plans and
// results (forced algorithm, optimizer knobs, tuning options), so cache
// entries from different configurations never collide.
func (e *Engine) configTag() uint64 {
	h := fnv.New64a()
	io.WriteString(h, string(e.Alg))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(e.Opt.KMeansIters)))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(int64(e.Opt.NumCenters)))
	h.Write(b[:])
	return h.Sum64()
}

// checkParams validates bindings against the declared parameter set.
func (p *Prepared) checkParams(params map[string]string) error {
	var pe ParamError
	for _, name := range p.paramNames {
		if _, ok := params[name]; !ok {
			pe.Missing = append(pe.Missing, name)
		}
	}
	for name := range params {
		if !p.declares(name) {
			pe.Unknown = append(pe.Unknown, name)
		}
	}
	if len(pe.Missing) == 0 && len(pe.Unknown) == 0 {
		return nil
	}
	sort.Strings(pe.Unknown) // Missing is already sorted (paramNames is)
	return &pe
}

func (p *Prepared) declares(name string) bool {
	for _, n := range p.paramNames {
		if n == name {
			return true
		}
	}
	return false
}
