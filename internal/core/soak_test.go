package core

import (
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/pattern"
)

// TestSoakAllAlgorithmsLargeGraph cross-validates every algorithm on a
// moderately large preferential-attachment graph — the workload class of
// the paper's evaluation — including k=3 neighborhoods. Skipped with
// -short.
func TestSoakAllAlgorithmsLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	g := gen.PreferentialAttachment(1500, 5, 99)
	gen.AssignLabels(g, 4, 100)
	specs := []Spec{
		{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2},
		{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 3},
		{Pattern: pattern.Square("sqr", []string{"l0", "l1", "l0", "l1"}), K: 2},
	}
	for _, spec := range specs {
		var want []int64
		for _, alg := range Algorithms {
			if alg == NDBas {
				continue // quadratic; covered at smaller sizes
			}
			res, err := Count(g, spec, alg, Options{Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if want == nil {
				want = res.Counts
				continue
			}
			for n := range want {
				if res.Counts[n] != want[n] {
					t.Fatalf("%s (k=%d, %s): node %d = %d, first algorithm said %d",
						alg, spec.K, spec.Pattern.Name, n, res.Counts[n], want[n])
				}
			}
		}
	}
}

// TestSoakPairwiseLargeGraph cross-validates the pairwise evaluators on a
// larger instance. Skipped with -short.
func TestSoakPairwiseLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	g := gen.PreferentialAttachment(400, 4, 101)
	gen.AssignLabels(g, 4, 102)
	spec := PairSpec{
		Spec: Spec{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 1},
		Mode: Intersection,
	}
	ref, err := CountPairs(g, spec, PTBas, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{PTOpt, PTRnd} {
		res, err := CountPairs(g, spec, alg, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Counts) != len(ref.Counts) {
			t.Fatalf("%s: %d pairs vs %d", alg, len(res.Counts), len(ref.Counts))
		}
		for pr, c := range ref.Counts {
			if res.Counts[pr] != c {
				t.Fatalf("%s: pair %v = %d want %d", alg, pr, res.Counts[pr], c)
			}
		}
	}
	// ND-PVOT over the non-zero pair list.
	pairs := make([]Pair, 0, len(ref.Counts))
	for pr := range ref.Counts {
		pairs = append(pairs, pr)
	}
	nd := spec
	nd.Pairs = pairs
	res, err := CountPairs(g, nd, NDPvot, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for pr, c := range ref.Counts {
		if res.Counts[pr] != c {
			t.Fatalf("ND-PVOT: pair %v = %d want %d", pr, res.Counts[pr], c)
		}
	}
}
