package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"egocensus/internal/graph"
)

func preparedTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := stressSeedGraph(t, false, 40, 90, 11)
	for i := 0; i < g.NumNodes(); i++ {
		kind := "even"
		if i%2 == 1 {
			kind = "odd"
		}
		g.SetNodeAttr(graph.NodeID(i), "kind", kind)
	}
	return g
}

const preparedSrc = `
PATTERN tri { ?A-?B; ?B-?C; ?C-?A; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k
`

func TestPreparedMatchesDirectExecution(t *testing.T) {
	g := preparedTestGraph(t)

	direct := NewEngine(g)
	want, err := direct.Execute(`
PATTERN tri { ?A-?B; ?B-?C; ?C-?A; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = 'odd'
`)
	if err != nil {
		t.Fatal(err)
	}

	e := NewEngine(g)
	p, err := e.Prepare(preparedSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Params(); !reflect.DeepEqual(got, []string{"k"}) {
		t.Fatalf("Params = %v", got)
	}
	got, err := p.Execute(map[string]string{"k": "odd"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want[0].Rows) {
		t.Fatalf("prepared rows differ from direct execution:\n%v\nvs\n%v", got.Rows, want[0].Rows)
	}
	if got.Stats.PlanCached || got.Stats.ResultCached {
		t.Fatalf("cold execution reported cache hits: %+v", got.Stats)
	}

	// Different binding: plan is warm, result is not.
	warm, err := p.Execute(map[string]string{"k": "even"})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.PlanCached {
		t.Fatal("second execution should hit the plan cache")
	}
	if warm.Stats.ResultCached {
		t.Fatal("different parameters must not hit the result cache")
	}

	// Same binding as the first call: whole table from the result cache.
	hit, err := p.Execute(map[string]string{"k": "odd"})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Stats.ResultCached {
		t.Fatal("repeat execution should hit the result cache")
	}
	if !reflect.DeepEqual(hit.Rows, want[0].Rows) {
		t.Fatal("cached rows differ")
	}

	cs := e.CacheStats()
	// exec1: plan miss; exec2: plan hit; exec3: result hit short-circuits
	// before the plan probe.
	if cs.Plan.Hits != 1 || cs.Plan.Misses != 1 {
		t.Fatalf("plan cache stats = %+v", cs.Plan)
	}
	if cs.Result.Hits != 1 || cs.Result.Misses != 2 || cs.Result.Entries != 2 {
		t.Fatalf("result cache stats = %+v", cs.Result)
	}
}

func TestPreparedParamValidation(t *testing.T) {
	e := NewEngine(preparedTestGraph(t))
	p, err := e.Prepare(preparedSrc)
	if err != nil {
		t.Fatal(err)
	}
	var pe *ParamError
	if _, err := p.Execute(nil); !errors.As(err, &pe) || len(pe.Missing) != 1 {
		t.Fatalf("missing binding: err = %v", err)
	}
	if _, err := p.Execute(map[string]string{"k": "odd", "extra": "x"}); !errors.As(err, &pe) || len(pe.Unknown) != 1 {
		t.Fatalf("unknown binding: err = %v", err)
	}
}

func TestPreparedPatternParams(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	for i, kind := range []string{"hub", "gene", "gene", "protein"} {
		g.SetNodeAttr(graph.NodeID(i), "kind", kind)
	}
	e := NewEngine(g)
	p, err := e.Prepare(`
PATTERN typed_edge { ?A-?B; [?B.kind=$want]; }
SELECT ID, COUNTP(typed_edge, SUBGRAPH(ID, 1)) FROM nodes
`)
	if err != nil {
		t.Fatal(err)
	}
	counts := func(params map[string]string) map[string]string {
		t.Helper()
		tab, err := p.Execute(params)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		for _, row := range tab.Rows {
			out[row[0]] = row[1]
		}
		return out
	}
	if got := counts(map[string]string{"want": "gene"}); got["0"] != "2" {
		t.Fatalf("gene neighbors of hub = %s, want 2 (all: %v)", got["0"], got)
	}
	if got := counts(map[string]string{"want": "protein"}); got["0"] != "1" {
		t.Fatalf("protein neighbors of hub = %s, want 1 (all: %v)", got["0"], got)
	}
}

func TestPreparedEpochInvalidation(t *testing.T) {
	w := graph.NewWriter(stressSeedGraph(t, false, 24, 50, 3))
	e := NewEngineLive(w)
	p, err := e.Prepare(`
PATTERN tri { ?A-?B; ?B-?C; ?C-?A; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes
`)
	if err != nil {
		t.Fatal(err)
	}
	bind := map[string]string{}
	t1, err := p.Execute(bind)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.Execute(bind)
	if err != nil {
		t.Fatal(err)
	}
	if !t2.Stats.ResultCached || t2.Epoch != t1.Epoch {
		t.Fatalf("same epoch should hit: cached=%v epochs %d/%d", t2.Stats.ResultCached, t1.Epoch, t2.Epoch)
	}

	// Publish: the epoch advances and both caches must miss.
	n := w.AddNode()
	w.SetLabel(n, "l0")
	if _, err := w.Publish(); err != nil {
		t.Fatal(err)
	}
	t3, err := p.Execute(bind)
	if err != nil {
		t.Fatal(err)
	}
	if t3.Epoch == t1.Epoch {
		t.Fatal("epoch did not advance after publish")
	}
	if t3.Stats.ResultCached || t3.Stats.PlanCached {
		t.Fatalf("stale-epoch caches served after publish: %+v", t3.Stats)
	}
	if len(t3.Rows) != len(t1.Rows)+1 {
		t.Fatalf("new node missing from fresh execution: %d rows vs %d", len(t3.Rows), len(t1.Rows))
	}
}

func TestPreparedExecOptions(t *testing.T) {
	e := NewEngine(preparedTestGraph(t))
	p, err := e.Prepare(preparedSrc)
	if err != nil {
		t.Fatal(err)
	}
	bind := map[string]string{"k": "odd"}
	if _, err := p.Execute(bind); err != nil {
		t.Fatal(err)
	}
	// NoResultCache forces a full run even with a warm result.
	tab, err := p.ExecuteContext(context.Background(), bind, ExecOptions{NoResultCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Stats.ResultCached {
		t.Fatal("NoResultCache execution served from result cache")
	}
	if !tab.Stats.PlanCached {
		t.Fatal("NoResultCache execution should still reuse the plan")
	}
	// A per-execution limit override surfaces as a LimitError.
	var le *LimitError
	_, err = p.ExecuteContext(context.Background(), bind,
		ExecOptions{NoResultCache: true, Limits: &Limits{MaxResultRows: 1}})
	if !errors.As(err, &le) {
		t.Fatalf("limit override: err = %v", err)
	}
}

func TestPreparedExplain(t *testing.T) {
	e := NewEngine(preparedTestGraph(t))
	p, err := e.Prepare(`
PATTERN tri2 { ?A-?B; ?B-?C; ?C-?A; }
EXPLAIN SELECT ID, COUNTP(tri2, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k
`)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := p.Execute(map[string]string{"k": "odd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 || tab.Header[0] != "plan" {
		t.Fatalf("explain table malformed: %+v", tab)
	}
	// EXPLAIN never populates the result cache.
	if _, err := p.Execute(map[string]string{"k": "odd"}); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Result.Entries != 0 {
		t.Fatalf("explain populated result cache: %+v", st.Result)
	}
}

func TestPreparedRejectsMultipleSelects(t *testing.T) {
	e := NewEngine(preparedTestGraph(t))
	_, err := e.Prepare(`
PATTERN a { ?A; }
SELECT ID, COUNTP(a, SUBGRAPH(ID, 1)) FROM nodes;
SELECT ID, COUNTP(a, SUBGRAPH(ID, 2)) FROM nodes
`)
	if err == nil {
		t.Fatal("Prepare accepted two SELECTs")
	}
}

// TestStressPreparedConcurrentLiveGraph shares one engine and one
// Prepared across goroutines over a mutating live graph: every execution
// must be internally consistent with the epoch it reports, and cache hits
// must return the same rows a fresh run over that epoch produces. CI runs
// the Stress tests with -race -count=3.
func TestStressPreparedConcurrentLiveGraph(t *testing.T) {
	const (
		readers    = 6
		rounds     = 12
		maxBatches = 120
	)
	w := graph.NewWriter(stressSeedGraph(t, false, 24, 50, 5))
	e := NewEngineLive(w)
	p, err := e.Prepare(`
PATTERN tri { ?A-?B; ?B-?C; ?C-?A; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k
`)
	if err != nil {
		t.Fatal(err)
	}

	var stop sync.WaitGroup
	done := make(chan struct{})
	stop.Add(1)
	go func() {
		defer stop.Done()
		for i := 0; i < maxBatches; i++ {
			select {
			case <-done:
				return
			default:
			}
			n := w.AddNode()
			w.SetLabel(n, "l0")
			w.SetNodeAttr(n, "kind", fmt.Sprintf("k%d", i%3))
			a := graph.NodeID(i % int(n))
			if a != n {
				w.AddEdge(a, n)
			}
			if _, err := w.Publish(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			bind := map[string]string{"k": fmt.Sprintf("k%d", r%3)}
			for i := 0; i < rounds; i++ {
				tab, err := p.ExecuteContext(context.Background(), bind, ExecOptions{})
				if err != nil {
					t.Errorf("reader %d round %d: %v", r, i, err)
					return
				}
				// Reference: a fresh uncached run over the same bindings.
				// Epochs may differ (the writer keeps publishing), so only
				// compare when the reference lands on the same version.
				ref, err := p.ExecuteContext(context.Background(), bind, ExecOptions{NoResultCache: true})
				if err != nil {
					t.Errorf("reader %d round %d (reference): %v", r, i, err)
					return
				}
				if ref.Epoch == tab.Epoch && !reflect.DeepEqual(ref.Rows, tab.Rows) {
					t.Errorf("reader %d round %d epoch %d: cached rows diverge from fresh run", r, i, tab.Epoch)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(done)
	stop.Wait()

	cs := e.CacheStats()
	if cs.Plan.Hits+cs.Plan.Misses == 0 || cs.Result.Hits+cs.Result.Misses == 0 {
		t.Fatalf("caches never probed: %+v", cs)
	}
}
