package core

import (
	"testing"

	"egocensus/internal/gen"
)

func TestMultiAggregateQuery(t *testing.T) {
	g := gen.PreferentialAttachment(150, 4, 3)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
PATTERN e1 { ?A-?B; }
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)), COUNTP(e1, SUBGRAPH(ID, 1)), COUNTP(tri, SUBGRAPH(ID, 1))
FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Header) != 4 {
		t.Fatalf("header = %v", tab.Header)
	}
	// Cross-check against separate single-aggregate runs.
	for i, name := range []string{"n1", "e1", "tri"} {
		spec := Spec{Pattern: e.Patterns()[name], K: 1}
		want, err := Count(g, spec, NDPvot, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.TypedRows {
			if row.Counts[i] != want.Counts[row.Focal[0]] {
				t.Fatalf("aggregate %d node %d: %d want %d", i, row.Focal[0], row.Counts[i], want.Counts[row.Focal[0]])
			}
		}
	}
	// Rendered cells line up with the typed values.
	for r, row := range tab.TypedRows {
		for i := 0; i < 3; i++ {
			cell := tab.Rows[r][i+1]
			if cell == "" {
				t.Fatalf("row %d missing aggregate cell %d", r, i)
			}
		}
		if tab.Rows[r][1] == tab.Rows[r][2] && row.Counts[0] != row.Counts[1] {
			t.Fatalf("row %d cells do not track counts", r)
		}
	}
}

func TestMultiAggregateForcedPTAlgorithm(t *testing.T) {
	g := gen.ErdosRenyi(40, 100, 5)
	e := NewEngine(g)
	e.Alg = PTOpt
	tables, err := e.Execute(`
PATTERN e1 { ?A-?B; }
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 2)), COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].Algorithm != PTOpt {
		t.Fatalf("algorithm = %s", tables[0].Algorithm)
	}
	for _, name := range []string{"e1", "tri"} {
		spec := Spec{Pattern: e.Patterns()[name], K: 2}
		want, err := Count(g, spec, NDBas, Options{})
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		if name == "tri" {
			i = 1
		}
		for _, row := range tables[0].TypedRows {
			if row.Counts[i] != want.Counts[row.Focal[0]] {
				t.Fatalf("%s node %d: %d want %d", name, row.Focal[0], row.Counts[i], want.Counts[row.Focal[0]])
			}
		}
	}
}

func TestMultiAggregateOrderByUsesFirst(t *testing.T) {
	g := gen.ErdosRenyi(30, 70, 7)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
PATTERN e1 { ?A-?B; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)), COUNTP(e1, SUBGRAPH(ID, 1))
FROM nodes ORDER BY COUNT DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].TypedRows
	for i := 1; i < len(rows); i++ {
		if rows[i].Counts[0] > rows[i-1].Counts[0] {
			t.Fatal("ORDER BY COUNT must sort by the first aggregate")
		}
	}
}

func TestMultiAggregateValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 9)
	e := NewEngine(g)
	// Mismatched neighborhoods.
	if _, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)), COUNTP(n1, SUBGRAPH(ID, 2)) FROM nodes`); err == nil {
		t.Fatal("mixed radii should be rejected")
	}
	// Pairwise with multiple aggregates.
	if _, err := e.Execute(`
PATTERN n2 { ?A; }
SELECT n1.ID, n2.ID,
  COUNTP(n2, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)),
  COUNTP(n2, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2`); err == nil {
		t.Fatal("pairwise multi-aggregate should be rejected")
	}
}
