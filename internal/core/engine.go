package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/pattern"
)

// Engine executes parsed census scripts against a graph. It keeps a
// pattern catalog across Execute calls, picks an evaluation algorithm per
// query (or uses a forced one), resolves WHERE predicates to focal
// nodes/pairs, and renders result tables.
type Engine struct {
	// G is the database graph.
	G *graph.Graph
	// Alg forces an algorithm for every query; empty selects automatically
	// (pattern-driven for selective patterns, node-driven otherwise).
	Alg Algorithm
	// Opt tunes the algorithms.
	Opt Options
	// Seed drives the RND() sampling predicate deterministically.
	Seed int64

	catalog map[string]*pattern.Pattern
}

// NewEngine returns an engine over g.
func NewEngine(g *graph.Graph) *Engine {
	return &Engine{G: g, catalog: map[string]*pattern.Pattern{}}
}

// Row is one result row: the focal node(s) in FROM-clause order and the
// census count(s).
type Row struct {
	Focal []graph.NodeID
	// Count is the first aggregate's value (the common case of one
	// COUNTP/COUNTSP per query).
	Count int64
	// Counts holds every aggregate's value in SELECT-list order; nil means
	// the single Count value.
	Counts []int64
}

// Table is one query's result. Pairwise censuses report only rows with a
// non-zero count (pattern-driven evaluation produces exactly those), and
// never pair a node with itself.
type Table struct {
	// Query is the executed statement.
	Query *lang.SelectStmt
	// Header holds one label per SELECT item.
	Header []string
	// Rows holds the string-rendered cells, parallel to TypedRows.
	Rows [][]string
	// TypedRows holds the underlying focal nodes and counts.
	TypedRows []Row
	// Algorithm records which evaluator ran.
	Algorithm Algorithm
	// NumMatches is the size of the global match set (where applicable).
	NumMatches int
	// Elapsed is the wall-clock evaluation time of the census (excluding
	// parsing and WHERE-based focal selection).
	Elapsed time.Duration
}

// DefinePattern registers a programmatically built pattern so queries can
// reference it by name.
func (e *Engine) DefinePattern(p *pattern.Pattern) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, dup := e.catalog[p.Name]; dup {
		return fmt.Errorf("engine: pattern %s already defined", p.Name)
	}
	e.catalog[p.Name] = p
	return nil
}

// Patterns exposes the engine's pattern catalog (shared map; treat as
// read-only).
func (e *Engine) Patterns() map[string]*pattern.Pattern { return e.catalog }

// Execute parses src (PATTERN definitions and SELECT queries) and runs
// every query, returning one table per query in order.
func (e *Engine) Execute(src string) ([]*Table, error) {
	script, err := lang.ParseWith(src, e.catalog)
	if err != nil {
		return nil, err
	}
	for name, p := range script.Patterns {
		e.catalog[name] = p
	}
	var tables []*Table
	for _, q := range script.Queries() {
		t, err := e.Run(q)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Run executes one parsed query.
func (e *Engine) Run(q *lang.SelectStmt) (*Table, error) {
	aggs := q.CountItems()
	if len(aggs) == 0 {
		return nil, fmt.Errorf("engine: query has no COUNTP/COUNTSP aggregate")
	}
	specs := make([]Spec, len(aggs))
	for i, agg := range aggs {
		pat, ok := e.catalog[agg.PatternName]
		if !ok {
			return nil, fmt.Errorf("engine: unknown pattern %q", agg.PatternName)
		}
		specs[i] = Spec{
			Pattern:    pat,
			Subpattern: agg.Subpattern,
			K:          agg.Neighborhood.K,
		}
	}
	if q.Explain {
		return e.explain(q, aggs, specs)
	}
	if aggs[0].Neighborhood.Kind == lang.NSubgraph {
		return e.runSingle(q, specs)
	}
	if len(aggs) > 1 {
		return nil, fmt.Errorf("engine: pairwise queries support a single aggregate")
	}
	return e.runPair(q, aggs[0], specs[0])
}

// explain reports the evaluation plan of a query without running it.
func (e *Engine) explain(q *lang.SelectStmt, aggs []*lang.CountAgg, specs []Spec) (*Table, error) {
	t := &Table{Query: q, Header: []string{"plan"}}
	emit := func(format string, args ...interface{}) {
		t.Rows = append(t.Rows, []string{fmt.Sprintf(format, args...)})
	}
	pairwise := aggs[0].Neighborhood.Kind != lang.NSubgraph
	var alg Algorithm
	switch {
	case pairwise:
		alg = e.Alg
		if alg == "" {
			alg = PTOpt
		}
		emit("pairwise census: %s, radius k=%d", aggs[0].Neighborhood.Kind, specs[0].K)
		emit("algorithm: %s (pattern-driven default for pairs; node-driven would enumerate the quadratic pair space)", alg)
	case len(specs) > 1 && (e.Alg == "" || e.Alg == NDPvot):
		alg = NDPvot
		emit("single-node census: %d aggregates over SUBGRAPH(ID, %d)", len(specs), specs[0].K)
		emit("algorithm: ND-PVOT batched (CountMany shares one BFS per focal node across aggregates)")
	default:
		alg = e.chooseAlgorithm(specs[0].Pattern)
		emit("single-node census: SUBGRAPH(ID, %d)", specs[0].K)
		why := "forced by engine configuration"
		if e.Alg == "" {
			if alg == PTOpt {
				why = "auto: pattern is selective (labels/predicates), search from matches"
			} else {
				why = "auto: pattern is non-selective, search from nodes (pivot index)"
			}
		}
		emit("algorithm: %s (%s)", alg, why)
	}
	for i, spec := range specs {
		p := spec.Pattern
		labeled := 0
		negated := 0
		for j := 0; j < p.NumNodes(); j++ {
			if p.Node(j).Label != "" {
				labeled++
			}
		}
		for _, ed := range p.Edges() {
			if ed.Negated {
				negated++
			}
		}
		pivot, ecc := p.Pivot(nil)
		emit("aggregate %d: pattern %s — %d nodes (%d labeled), %d edges (%d negated), %d predicates; pivot ?%s (eccentricity %d)",
			i+1, p.Name, p.NumNodes(), labeled, len(p.Edges()), negated, len(p.Predicates()), p.Node(pivot).Var, ecc)
		if spec.Subpattern != "" {
			sub, _ := p.Subpattern(spec.Subpattern)
			emit("aggregate %d: COUNTSP anchors = subpattern %q (%d of %d nodes)", i+1, spec.Subpattern, len(sub), p.NumNodes())
		}
	}
	if q.Where != nil {
		emit("focal restriction: WHERE clause evaluated per %s", map[bool]string{false: "node", true: "ordered pair"}[pairwise])
	} else {
		emit("focal restriction: none (all nodes)")
	}
	if alg == PTOpt || alg == PTRnd {
		emit("PT options: %d centers, clusters=|M|/4 (overridable), K-means iters %d", e.Opt.numCenters(), e.Opt.kmeansIters())
	}
	if q.Order != nil || q.Limit > 0 {
		emit("post-processing: ORDER BY/LIMIT applied after counting")
	}
	t.Algorithm = alg
	return t, nil
}

// chooseAlgorithm applies the paper's guidance: pattern-driven evaluation
// wins for selective patterns (label constraints or predicates shrink the
// match set), node-driven pivot indexing wins for non-selective ones
// (Sections V-A3 and V-A4).
func (e *Engine) chooseAlgorithm(p *pattern.Pattern) Algorithm {
	if e.Alg != "" {
		return e.Alg
	}
	selective := len(p.Predicates()) > 0
	for i := 0; i < p.NumNodes(); i++ {
		if p.Node(i).Label != "" {
			selective = true
			break
		}
	}
	if selective {
		return PTOpt
	}
	return NDPvot
}

func (e *Engine) runSingle(q *lang.SelectStmt, specs []Spec) (*Table, error) {
	alias := q.Aliases[0]
	var focal []graph.NodeID
	if q.Where != nil {
		for i := 0; i < e.G.NumNodes(); i++ {
			n := graph.NodeID(i)
			ok, err := lang.EvalWhere(q.Where, e.G, []lang.Binding{{Alias: alias, Node: n}},
				e.rndStream(int64(n), 0))
			if err != nil {
				return nil, err
			}
			if ok {
				focal = append(focal, n)
			}
		}
		if focal == nil {
			focal = []graph.NodeID{} // empty but non-nil: nothing selected
		}
		for i := range specs {
			specs[i].Focal = focal
		}
	}

	start := time.Now()
	var results []*Result
	var alg Algorithm
	switch {
	case len(specs) == 1:
		alg = e.chooseAlgorithm(specs[0].Pattern)
		res, err := Count(e.G, specs[0], alg, e.Opt)
		if err != nil {
			return nil, err
		}
		results = []*Result{res}
	case e.Alg == "" || e.Alg == NDPvot:
		// Multiple aggregates over the same neighborhood: share the
		// per-node traversal (CountMany is ND-PVOT-based).
		alg = NDPvot
		var err error
		results, err = CountMany(e.G, specs, e.Opt)
		if err != nil {
			return nil, err
		}
	default:
		alg = e.Alg
		for _, spec := range specs {
			res, err := Count(e.G, spec, alg, e.Opt)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
	}

	t := &Table{Query: q, Algorithm: alg, Elapsed: time.Since(start)}
	for _, res := range results {
		t.NumMatches += res.NumMatches
	}
	t.Header = header(q)
	for _, n := range specs[0].focalList(e.G) {
		counts := make([]int64, len(results))
		for i, res := range results {
			counts[i] = res.Counts[n]
		}
		t.TypedRows = append(t.TypedRows, Row{Focal: []graph.NodeID{n}, Count: counts[0], Counts: counts})
	}
	e.finishTable(q, t)
	return t, nil
}

// finishTable applies ORDER BY and LIMIT, then renders the string cells.
func (e *Engine) finishTable(q *lang.SelectStmt, t *Table) {
	if q.Order != nil {
		ob := q.Order
		// keyLess compares the ORDER BY key only; equal keys fall through
		// to an ascending focal-ID tie-break regardless of direction.
		keyCmp := func(a, b Row) int {
			if ob.ByCount {
				switch {
				case a.Count < b.Count:
					return -1
				case a.Count > b.Count:
					return 1
				}
				return 0
			}
			av := e.columnValue(q, a, ob.Col)
			bv := e.columnValue(q, b, ob.Col)
			if av == bv {
				return 0
			}
			if pattern.Compare(pattern.OpLt, av, bv) {
				return -1
			}
			return 1
		}
		sort.SliceStable(t.TypedRows, func(i, j int) bool {
			a, b := t.TypedRows[i], t.TypedRows[j]
			c := keyCmp(a, b)
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			for x := range a.Focal {
				if a.Focal[x] != b.Focal[x] {
					return a.Focal[x] < b.Focal[x]
				}
			}
			return false
		})
	}
	if q.Limit > 0 && len(t.TypedRows) > q.Limit {
		t.TypedRows = t.TypedRows[:q.Limit]
	}
	t.Rows = t.Rows[:0]
	for _, row := range t.TypedRows {
		t.Rows = append(t.Rows, e.renderRow(q, row))
	}
}

// columnValue resolves a column reference for one row (as in renderRow).
func (e *Engine) columnValue(q *lang.SelectStmt, row Row, ref lang.ColumnRef) string {
	n := row.Focal[0]
	if ref.Alias != "" {
		for i, a := range q.Aliases {
			if a == ref.Alias && i < len(row.Focal) {
				n = row.Focal[i]
				break
			}
		}
	}
	if strings.EqualFold(ref.Name, "ID") {
		return strconv.Itoa(int(n))
	}
	v, _ := e.G.NodeAttr(n, ref.Name)
	return v
}

func (e *Engine) runPair(q *lang.SelectStmt, agg *lang.CountAgg, spec Spec) (*Table, error) {
	mode := Intersection
	if agg.Neighborhood.Kind == lang.NUnion {
		mode = Union
	}
	pspec := PairSpec{Spec: spec, Mode: mode}
	// Pairwise censuses default to pattern-driven evaluation regardless of
	// selectivity: it produces exactly the non-zero pairs, while
	// node-driven evaluation must enumerate the quadratic pair space.
	alg := e.Alg
	if alg == "" {
		alg = PTOpt
	}
	// Node-driven pairwise evaluation needs the pair list up front:
	// enumerate ordered pairs passing WHERE. Pattern-driven evaluation
	// produces non-zero pairs directly and filters afterwards.
	nodeDriven := alg == NDBas || alg == NDPvot || alg == NDDiff
	if alg == NDDiff {
		alg = NDPvot // ND-DIFF has no pairwise variant (Appendix B)
	}
	passes := func(a, b graph.NodeID) (bool, error) {
		if q.Where == nil {
			return true, nil
		}
		return lang.EvalWhere(q.Where, e.G, []lang.Binding{
			{Alias: q.Aliases[0], Node: a},
			{Alias: q.Aliases[1], Node: b},
		}, e.rndStream(int64(a), int64(b)))
	}
	if nodeDriven {
		seen := map[Pair]bool{}
		for i := 0; i < e.G.NumNodes(); i++ {
			for j := 0; j < e.G.NumNodes(); j++ {
				if i == j {
					continue
				}
				a, b := graph.NodeID(i), graph.NodeID(j)
				ok, err := passes(a, b)
				if err != nil {
					return nil, err
				}
				if ok {
					seen[MakePair(a, b)] = true
				}
			}
		}
		pspec.Pairs = make([]Pair, 0, len(seen))
		for pr := range seen {
			pspec.Pairs = append(pspec.Pairs, pr)
		}
	}
	start := time.Now()
	res, err := CountPairs(e.G, pspec, alg, e.Opt)
	if err != nil {
		return nil, err
	}
	t := &Table{Query: q, Algorithm: alg, NumMatches: res.NumMatches, Elapsed: time.Since(start)}
	t.Header = header(q)
	// Emit ordered rows for each non-zero unordered pair that passes
	// WHERE, deterministically sorted.
	pairs := make([]Pair, 0, len(res.Counts))
	for pr, c := range res.Counts {
		if c != 0 {
			pairs = append(pairs, pr)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, pr := range pairs {
		c := res.Counts[pr]
		for _, ord := range [][2]graph.NodeID{{pr.A, pr.B}, {pr.B, pr.A}} {
			ok, err := passes(ord[0], ord[1])
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			t.TypedRows = append(t.TypedRows, Row{Focal: []graph.NodeID{ord[0], ord[1]}, Count: c})
		}
	}
	e.finishTable(q, t)
	return t, nil
}

// rndStream returns a deterministic RND() source for a focal node or pair:
// the value depends only on the engine seed and the focal identity, not on
// evaluation order.
func (e *Engine) rndStream(a, b int64) func() float64 {
	state := uint64(e.Seed)*0x9E3779B97F4A7C15 ^ uint64(a+1)*0xBF58476D1CE4E5B9 ^ uint64(b+1)*0x94D049BB133111EB
	return func() float64 {
		// splitmix64 step
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
}

func header(q *lang.SelectStmt) []string {
	var h []string
	for _, it := range q.Items {
		if it.Col != nil {
			h = append(h, it.Col.String())
			continue
		}
		if it.Count.Subpattern != "" {
			h = append(h, fmt.Sprintf("COUNTSP(%s, %s)", it.Count.Subpattern, it.Count.PatternName))
		} else {
			h = append(h, fmt.Sprintf("COUNTP(%s)", it.Count.PatternName))
		}
	}
	return h
}

// renderRow formats each SELECT item for one result row.
func (e *Engine) renderRow(q *lang.SelectStmt, row Row) []string {
	aliasNode := func(alias string) graph.NodeID {
		if alias == "" {
			return row.Focal[0]
		}
		for i, a := range q.Aliases {
			if a == alias && i < len(row.Focal) {
				return row.Focal[i]
			}
		}
		return row.Focal[0]
	}
	var out []string
	aggIdx := 0
	for _, it := range q.Items {
		if it.Count != nil {
			v := row.Count
			if row.Counts != nil && aggIdx < len(row.Counts) {
				v = row.Counts[aggIdx]
			}
			aggIdx++
			out = append(out, strconv.FormatInt(v, 10))
			continue
		}
		n := aliasNode(it.Col.Alias)
		if strings.EqualFold(it.Col.Name, "ID") {
			out = append(out, strconv.Itoa(int(n)))
			continue
		}
		v, _ := e.G.NodeAttr(n, it.Col.Name)
		out = append(out, v)
	}
	return out
}

// FormatTable renders a result table as aligned text.
func FormatTable(t *Table) string {
	var b strings.Builder
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
