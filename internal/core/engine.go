package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/pattern"
	"egocensus/internal/plan"
)

// Engine is the session facade over the query pipeline's four layers: it
// parses census scripts (internal/lang), builds and optimizes logical
// plans against a statistics snapshot (internal/plan), compiles them to
// physical operator pipelines over the census drivers (operator.go), and
// renders result tables (render.go). It keeps a pattern catalog across
// Execute calls.
//
// The execution pipeline itself is stateless: every query copies what it
// needs out of the engine up front, so one engine serves any number of
// concurrent Execute/Run/Prepared calls. The configuration fields (G,
// Alg, Opt, Seed, Source) are read at query time without synchronization
// — set them before sharing the engine and treat them as frozen after.
type Engine struct {
	// G is the database graph. Engines built from a Source leave it nil
	// until a query executes (see Graph); planning and EXPLAIN need only
	// the statistics snapshot.
	G *graph.Graph
	// Alg forces an algorithm for every query; empty lets the cost-based
	// optimizer choose per query from the statistics snapshot.
	Alg Algorithm
	// Opt tunes the algorithms.
	Opt Options
	// Seed drives the RND() sampling predicate deterministically.
	Seed int64
	// Source supplies planner statistics and lazily hydrates the graph.
	Source plan.Source

	// mu guards the mutable session state below: the pattern catalog, the
	// memoized statistics, lazy graph hydration, and cache construction.
	mu      sync.Mutex
	stats   *graph.Stats
	catalog map[string]*pattern.Pattern

	// planCache holds compiled plans for prepared queries, keyed by
	// (fingerprint, statistics epoch, engine config); resultCache holds
	// whole result tables for prepared executions, keyed additionally by
	// the bound parameters and seed. Both are lazily built with default
	// capacities; see ConfigureCaches.
	planCache   *plan.Cache
	resultCache *resultCache
}

// Default cache capacities (see ConfigureCaches).
const (
	DefaultPlanCacheEntries = 256
	DefaultResultCacheBytes = 64 << 20
)

// NewEngine returns an engine over an in-memory graph.
func NewEngine(g *graph.Graph) *Engine {
	return &Engine{G: g, Source: plan.FromGraph(g), catalog: map[string]*pattern.Pattern{}}
}

// NewEngineFromSource returns an engine that plans against src's
// statistics and hydrates the full graph only when a query actually
// executes — EXPLAIN against a disk store never pays materialization.
func NewEngineFromSource(src plan.Source) *Engine {
	return &Engine{Source: src, catalog: map[string]*pattern.Pattern{}}
}

// NewEngineLive returns an engine over a mutating graph: each query pins
// the writer's latest published snapshot for its whole run (planning,
// EXPLAIN statistics, and execution all observe one epoch, reported as
// Table.Epoch), while the writer keeps publishing concurrently. Queries
// never block mutation and vice versa.
func NewEngineLive(w *graph.Writer) *Engine {
	return NewEngineFromSource(plan.FromWriter(w))
}

// NewEngineLiveSharded is NewEngineLive over a sharded writer: queries
// pin composed snapshots the same way, planning statistics aggregate
// per-shard computations, and executions inherit the store's partitioner
// so the census scheduler seeds work shard-affinely.
func NewEngineLiveSharded(w *graph.ShardedWriter) *Engine {
	return NewEngineFromSource(plan.FromShardedWriter(w))
}

// optionsFor resolves the execution options for one run: the engine's
// defaults, plus — when the engine serves a partitioned source and the
// caller has not pinned a partitioner explicitly — the source's
// partitioner for shard-affine scheduling.
func (e *Engine) optionsFor() Options {
	opt := e.Opt
	if !opt.Partitioner.Enabled() {
		if ps, ok := e.Source.(plan.PartitionedSource); ok {
			opt.Partitioner = ps.Partitioner()
		}
	}
	return opt
}

// ConfigureCaches sizes the prepared-query caches: planEntries bounds the
// plan cache entry count and resultBytes budgets the result cache
// (approximate bytes of cached tables). Zero or negative disables the
// respective cache. Call before sharing the engine across goroutines.
func (e *Engine) ConfigureCaches(planEntries int, resultBytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.planCache = plan.NewCache(planEntries)
	e.resultCache = newResultCache(resultBytes)
}

// plans returns the plan cache, building it at the default capacity on
// first use.
func (e *Engine) plans() *plan.Cache {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.planCache == nil {
		e.planCache = plan.NewCache(DefaultPlanCacheEntries)
	}
	return e.planCache
}

// results returns the result cache, building it at the default budget on
// first use.
func (e *Engine) results() *resultCache {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.resultCache == nil {
		e.resultCache = newResultCache(DefaultResultCacheBytes)
	}
	return e.resultCache
}

// CacheStats reports the prepared-query cache counters.
type CacheStats struct {
	Plan   plan.CacheStats  `json:"plan"`
	Result ResultCacheStats `json:"result"`
}

// CacheStats returns point-in-time counters for both caches.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{Plan: e.plans().Stats(), Result: e.results().Stats()}
}

// graphField reads e.G under the session lock: lazy hydration writes it
// concurrently with queries on a shared engine.
func (e *Engine) graphField() *graph.Graph {
	e.mu.Lock()
	g := e.G
	e.mu.Unlock()
	return g
}

// snapshotSource returns the engine's source as a SnapshotSource when it
// is versioned and no explicit graph pins the engine to one version.
func (e *Engine) snapshotSource() (plan.SnapshotSource, bool) {
	if e.graphField() != nil {
		return nil, false
	}
	ss, ok := e.Source.(plan.SnapshotSource)
	return ss, ok
}

// Graph returns the database graph, hydrating it from the Source on
// first use. For a versioned source this is the latest published
// snapshot's graph and is intentionally NOT cached on the engine —
// each call observes the current version.
func (e *Engine) Graph() (*graph.Graph, error) {
	if g := e.graphField(); g != nil {
		return g, nil
	}
	if e.Source == nil {
		return nil, fmt.Errorf("engine: no graph and no source")
	}
	g, err := e.Source.Graph()
	if err != nil {
		return nil, err
	}
	if _, live := e.Source.(plan.SnapshotSource); !live {
		// Hydrate once; a concurrent first query may have won the race.
		e.mu.Lock()
		if e.G == nil {
			e.G = g
		}
		g = e.G
		e.mu.Unlock()
	}
	return g, nil
}

// Stats returns the statistics snapshot the optimizer plans against,
// memoized for static sources. Versioned sources memoize per epoch
// themselves, so the engine never serves stale statistics for a graph
// that has since published new versions.
func (e *Engine) Stats() (*graph.Stats, error) {
	if ss, ok := e.snapshotSource(); ok {
		return ss.GraphStats()
	}
	e.mu.Lock()
	if e.stats != nil {
		s := e.stats
		e.mu.Unlock()
		return s, nil
	}
	e.mu.Unlock()
	var s *graph.Stats
	switch {
	case e.Source != nil:
		var err error
		if s, err = e.Source.GraphStats(); err != nil {
			return nil, err
		}
	case e.graphField() != nil:
		s = graph.ComputeStats(e.graphField())
	default:
		return nil, fmt.Errorf("engine: no graph and no source")
	}
	e.mu.Lock()
	if e.stats == nil {
		e.stats = s
	}
	s = e.stats
	e.mu.Unlock()
	return s, nil
}

// Row is one result row: the focal node(s) in FROM-clause order and the
// census count(s).
type Row struct {
	Focal []graph.NodeID
	// Count is the first aggregate's value (the common case of one
	// COUNTP/COUNTSP per query).
	Count int64
	// Counts holds every aggregate's value in SELECT-list order; nil means
	// the single Count value.
	Counts []int64
}

// Table is one query's result. Pairwise censuses report only rows with a
// non-zero count (pattern-driven evaluation produces exactly those), and
// never pair a node with itself.
type Table struct {
	// Query is the executed statement.
	Query *lang.SelectStmt
	// Header holds one label per SELECT item.
	Header []string
	// Rows holds the string-rendered cells, parallel to TypedRows.
	Rows [][]string
	// TypedRows holds the underlying focal nodes and counts.
	TypedRows []Row
	// Algorithm records which evaluator ran (the first aggregate's choice
	// when a multi-aggregate query mixes algorithms; see Plan for all).
	Algorithm Algorithm
	// NumMatches is the size of the global match set (where applicable).
	NumMatches int
	// Elapsed is the wall-clock evaluation time of the census (excluding
	// parsing and WHERE-based focal selection); it mirrors
	// Stats.CensusTime.
	Elapsed time.Duration
	// Plan is the optimized plan the query executed under.
	Plan *plan.Physical
	// Stats breaks the execution down per pipeline stage.
	Stats ExecStats
	// Epoch is the graph version the query pinned when the engine serves a
	// versioned source (NewEngineLive): planning statistics and execution
	// both observed exactly this snapshot. Zero for static sources.
	Epoch uint64
}

// DefinePattern registers a programmatically built pattern so queries can
// reference it by name. Redefining an existing name is an error — the
// same policy the parser applies to PATTERN statements.
func (e *Engine) DefinePattern(p *pattern.Pattern) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.catalog[p.Name]; dup {
		return fmt.Errorf("engine: pattern %s already defined", p.Name)
	}
	e.catalog[p.Name] = p
	return nil
}

// Patterns returns a copy of the engine's pattern catalog; mutating the
// returned map does not affect the engine.
func (e *Engine) Patterns() map[string]*pattern.Pattern {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]*pattern.Pattern, len(e.catalog))
	for name, p := range e.catalog {
		out[name] = p
	}
	return out
}

// adoptPatterns merges the patterns a parse produced into the catalog,
// skipping names that already exist (the parser rejects genuine
// redefinitions; existing entries here are the catalog seed itself).
func (e *Engine) adoptPatterns(parsed map[string]*pattern.Pattern) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, p := range parsed {
		if _, exists := e.catalog[name]; !exists {
			e.catalog[name] = p
		}
	}
}

// Execute parses src (PATTERN definitions and SELECT queries) and runs
// every query, returning one table per query in order. Patterns the
// script defines are added to the catalog; redefining an existing name
// is a parse error (the policy DefinePattern also enforces), so only
// genuinely new definitions are copied in.
func (e *Engine) Execute(src string) ([]*Table, error) {
	return e.ExecuteContext(context.Background(), src) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// ExecuteContext is Execute under a context: every query runs cancellable
// and resource-bounded (see RunContext). Tables of queries completed before
// a failure are not returned; the typed error's PartialTable carries the
// failing query's partial output.
func (e *Engine) ExecuteContext(ctx context.Context, src string) ([]*Table, error) {
	parseStart := time.Now()
	script, err := lang.ParseWith(src, e.Patterns())
	if err != nil {
		return nil, err
	}
	parseTime := time.Since(parseStart)
	e.adoptPatterns(script.Patterns)
	var tables []*Table
	for _, q := range script.Queries() {
		t, err := e.runContext(ctx, q, nil, ExecStats{ParseTime: parseTime})
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Plan builds and optimizes the logical plan for one parsed query
// without executing it, against the current version's statistics.
func (e *Engine) Plan(q *lang.SelectStmt) (*plan.Physical, error) {
	s, err := e.Stats()
	if err != nil {
		return nil, err
	}
	return e.planWith(q, s)
}

// planWith optimizes q against an explicit statistics snapshot, so a
// pinned query plans against the same version it executes on.
func (e *Engine) planWith(q *lang.SelectStmt, s *graph.Stats) (*plan.Physical, error) {
	logical, err := plan.Build(q, e.Patterns())
	if err != nil {
		return nil, err
	}
	return plan.Optimize(logical, plan.Env{
		Stats:       s,
		Forced:      string(e.Alg),
		KMeansIters: e.Opt.KMeansIters,
	})
}

// Run executes one parsed query: optimize, then (unless EXPLAIN) compile
// to a physical pipeline and run it.
func (e *Engine) Run(q *lang.SelectStmt) (*Table, error) {
	return e.RunContext(context.Background(), q) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// RunContext is Run under a context. Cancellation, deadline expiry, and
// the resource limits of e.Opt.Limits stop the pipeline within a bounded
// interval, surfacing as a *CanceledError or *LimitError whose
// PartialTable carries whatever rows the pipeline had produced. Panics
// anywhere in the execution pipeline (including census worker goroutines,
// which forward theirs to the coordinating goroutine) are converted to a
// *InternalError with the query text and optimized plan attached —
// unrecoverable runtime corruption aborts the process before any recover
// runs, so the conversion never masks it.
func (e *Engine) RunContext(ctx context.Context, q *lang.SelectStmt) (*Table, error) {
	return e.runContext(ctx, q, nil, ExecStats{})
}

// pin resolves the snapshot a query should observe: versioned sources pin
// one snapshot up front so planning statistics, EXPLAIN output, and
// execution all see the same epoch regardless of concurrent publishes.
func (e *Engine) pin() (*graph.Snapshot, uint64) {
	if ss, ok := e.snapshotSource(); ok {
		snap := ss.Snapshot()
		return snap, snap.Epoch()
	}
	return nil, 0
}

// statsFor returns planning statistics for a pinned snapshot (or the
// engine's current statistics when unpinned).
func (e *Engine) statsFor(pinned *graph.Snapshot) (*graph.Stats, error) {
	if pinned != nil {
		ss, _ := e.snapshotSource()
		return ss.StatsAt(pinned)
	}
	return e.Stats()
}

// graphFor returns the execution graph for a pinned snapshot (or the
// engine's graph when unpinned).
func (e *Engine) graphFor(pinned *graph.Snapshot) (*graph.Graph, error) {
	if pinned != nil {
		return pinned.Graph(), nil
	}
	return e.Graph()
}

// runContext is the uncached execution path shared by Run/Execute: plan
// against the pinned version, then hand off to the stateless executor.
func (e *Engine) runContext(ctx context.Context, q *lang.SelectStmt, params map[string]string, base ExecStats) (*Table, error) {
	pinned, epoch := e.pin()
	planStart := time.Now()
	s, err := e.statsFor(pinned)
	if err != nil {
		return nil, err
	}
	phys, err := e.planWith(q, s)
	if err != nil {
		return nil, err
	}
	base.PlanTime = time.Since(planStart)
	if q.Explain {
		t := explainTable(q, phys, base)
		t.Epoch = epoch
		return t, nil
	}
	g, err := e.graphFor(pinned)
	if err != nil {
		return nil, err
	}
	return execute(ctx, execRequest{
		q:      q,
		phys:   phys,
		g:      g,
		epoch:  epoch,
		seed:   e.Seed,
		opt:    e.optionsFor(),
		params: params,
		base:   base,
	})
}

// execRequest carries everything one execution needs. It is built per
// call and never shared, which is what makes the executor safe for
// unlimited concurrent callers over one engine.
type execRequest struct {
	q      *lang.SelectStmt
	phys   *plan.Physical
	g      *graph.Graph
	epoch  uint64
	seed   int64
	opt    Options
	params map[string]string
	// base carries measurements taken before execution (parse and plan
	// stages, cache flags).
	base ExecStats
}

// execute compiles the physical plan to its operator pipeline and runs
// it. This is the stateless executor: it reads nothing through the
// engine.
func execute(ctx context.Context, req execRequest) (*Table, error) {
	gd, cancel := newGuard(ctx, req.opt.Limits)
	defer cancel()
	st := &execState{
		g:      req.g,
		phys:   req.phys,
		q:      req.q,
		gd:     gd,
		seed:   req.seed,
		opt:    req.opt,
		params: req.params,
		table: &Table{
			Query: req.q,
			Plan:  req.phys,
			Stats: req.base,
			Epoch: req.epoch,
		},
	}
	st.specs = make([]Spec, len(req.phys.Aggs))
	for i, agg := range req.phys.Aggs {
		pat, err := agg.Pattern.BindParams(req.params)
		if err != nil {
			return nil, err
		}
		st.specs[i] = Spec{Pattern: pat, Subpattern: agg.Subpattern, K: req.phys.K}
	}
	if req.phys.Pair {
		mode := Intersection
		if req.phys.Union {
			mode = Union
		}
		st.pairSpec = &PairSpec{Spec: st.specs[0], Mode: mode}
	}
	if err := runPipeline(st); err != nil {
		attachPartialTable(err, st)
		return nil, err
	}
	return st.table, nil
}

// runPipeline executes the compiled operator pipeline, converting panics
// to *InternalError at this boundary.
func runPipeline(st *execState) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ie := &InternalError{Query: st.q.String(), Plan: st.phys.Explain()}
		if wp, ok := r.(*workerPanic); ok {
			// A census worker goroutine panicked; its original panic value
			// and stack were carried to this goroutine by the pool.
			ie.Panic, ie.Stack = wp.val, wp.stack
		} else {
			ie.Panic, ie.Stack = r, debug.Stack()
		}
		err = ie
	}()
	for _, op := range compile(st.phys) {
		if err := op.Run(st); err != nil {
			return err
		}
	}
	return nil
}

// attachPartialTable links the partially built result table into a typed
// cancellation/limit failure, rendering the accumulated rows first so
// callers can print what completed without reaching into engine internals.
func attachPartialTable(err error, st *execState) {
	var ce *CanceledError
	var le *LimitError
	switch {
	case errors.As(err, &ce), errors.As(err, &le):
	default:
		return
	}
	t := st.table
	if t.Header == nil {
		t.Header = header(st.q)
	}
	finishTable(st.g, st.q, t)
	if ce != nil {
		ce.PartialTable = t
		return
	}
	le.PartialTable = t
}

// explainTable renders the optimized plan tree as a one-column table.
func explainTable(q *lang.SelectStmt, phys *plan.Physical, base ExecStats) *Table {
	t := &Table{
		Query:     q,
		Header:    []string{"plan"},
		Plan:      phys,
		Algorithm: Algorithm(phys.Algorithm(0)),
		Stats:     base,
	}
	for _, line := range strings.Split(strings.TrimRight(phys.Explain(), "\n"), "\n") {
		t.Rows = append(t.Rows, []string{line})
	}
	return t
}

// rndStream returns a deterministic RND() source for a focal node or pair:
// the value depends only on the seed and the focal identity, not on
// evaluation order.
func rndStream(seed, a, b int64) func() float64 {
	state := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(a+1)*0xBF58476D1CE4E5B9 ^ uint64(b+1)*0x94D049BB133111EB
	return func() float64 {
		// splitmix64 step
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
}
