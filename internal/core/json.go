package core

// This file is the JSON rendering of result tables — one shape shared by
// cmd/census -json and the HTTP serving layer, so clients see identical
// structures regardless of transport.

// TableJSON is the wire form of one result table.
type TableJSON struct {
	// Query is the executed statement, rendered canonically.
	Query string `json:"query"`
	// Header and Rows carry the rendered table.
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Algorithm is the evaluator that ran (empty for EXPLAIN).
	Algorithm string `json:"algorithm,omitempty"`
	// NumMatches is the global match-set size where applicable.
	NumMatches int `json:"num_matches"`
	// Epoch is the snapshot version the query observed (zero for static
	// sources).
	Epoch uint64 `json:"epoch"`
	// Stats breaks the execution down per pipeline stage.
	Stats ExecStatsJSON `json:"stats"`
}

// ExecStatsJSON is the wire form of ExecStats. Durations are microseconds.
type ExecStatsJSON struct {
	ParseMicros  int64 `json:"parse_us"`
	PlanMicros   int64 `json:"plan_us"`
	PlanCached   bool  `json:"plan_cached"`
	ResultCached bool  `json:"result_cached"`
	FocalMicros  int64 `json:"focal_us"`
	FocalCount   int   `json:"focal_count"`
	CensusMicros int64 `json:"census_us"`
	MatchSetSize int   `json:"match_set_size"`
	RenderMicros int64 `json:"render_us"`
	Rows         int   `json:"rows"`
}

// NewTableJSON converts a result table to its wire form.
func NewTableJSON(t *Table) TableJSON {
	out := TableJSON{
		Query:      t.Query.String(),
		Header:     t.Header,
		Rows:       t.Rows,
		Algorithm:  string(t.Algorithm),
		NumMatches: t.NumMatches,
		Epoch:      t.Epoch,
		Stats: ExecStatsJSON{
			ParseMicros:  t.Stats.ParseTime.Microseconds(),
			PlanMicros:   t.Stats.PlanTime.Microseconds(),
			PlanCached:   t.Stats.PlanCached,
			ResultCached: t.Stats.ResultCached,
			FocalMicros:  t.Stats.FocalTime.Microseconds(),
			FocalCount:   t.Stats.FocalCount,
			CensusMicros: t.Stats.CensusTime.Microseconds(),
			MatchSetSize: t.Stats.MatchSetSize,
			RenderMicros: t.Stats.RenderTime.Microseconds(),
			Rows:         t.Stats.Rows,
		},
	}
	if out.Header == nil {
		out.Header = []string{}
	}
	if out.Rows == nil {
		out.Rows = [][]string{}
	}
	return out
}
