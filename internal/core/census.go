// Package core implements the paper's primary contribution: evaluation
// algorithms for ego-centric pattern census queries (Section IV and
// Appendix B). Given a pattern and a neighborhood radius k, a census
// assigns to every focal node (or node pair) the number of pattern matches
// contained in its k-hop neighborhood (or in the intersection/union of two
// neighborhoods).
//
// Node-driven algorithms (ND-BAS, ND-DIFF, ND-PVOT) search from nodes to
// pattern matches; pattern-driven algorithms (PT-BAS, PT-RND, PT-OPT)
// search from pattern matches to nodes. All six produce identical counts;
// they differ only in cost.
package core

import (
	"context"
	"fmt"
	"sort"

	"egocensus/internal/centers"
	"egocensus/internal/graph"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
)

// Algorithm names a census evaluation algorithm.
type Algorithm string

// The algorithms of Section IV.
const (
	NDBas  Algorithm = "ND-BAS"
	NDDiff Algorithm = "ND-DIFF"
	NDPvot Algorithm = "ND-PVOT"
	PTBas  Algorithm = "PT-BAS"
	PTRnd  Algorithm = "PT-RND"
	PTOpt  Algorithm = "PT-OPT"
)

// Algorithms lists every census algorithm in presentation order.
var Algorithms = []Algorithm{NDBas, NDDiff, NDPvot, PTBas, PTRnd, PTOpt}

// Spec describes a single-node census task: COUNTP(pattern, SUBGRAPH(ID,k))
// or COUNTSP(sub, pattern, SUBGRAPH(ID, k)).
type Spec struct {
	// Pattern is the pattern graph to count.
	Pattern *pattern.Pattern
	// Subpattern optionally names a subpattern of Pattern; when set, a
	// match is counted for a node if the *subpattern image* lies inside
	// the neighborhood (COUNTSP). Empty means the whole pattern must lie
	// inside (COUNTP).
	Subpattern string
	// K is the neighborhood radius (k >= 0).
	K int
	// Focal restricts the census to these nodes (V_sigma(G)); nil means
	// every node.
	Focal []graph.NodeID
}

// Validate checks the spec against the graph.
func (s Spec) Validate(g *graph.Graph) error {
	if s.Pattern == nil {
		return fmt.Errorf("census: nil pattern")
	}
	if err := s.Pattern.Validate(); err != nil {
		return err
	}
	if s.K < 0 {
		return fmt.Errorf("census: negative radius k=%d", s.K)
	}
	if s.Subpattern != "" {
		if _, ok := s.Pattern.Subpattern(s.Subpattern); !ok {
			return fmt.Errorf("census: pattern %s has no subpattern %q", s.Pattern.Name, s.Subpattern)
		}
	}
	for _, n := range s.Focal {
		if n < 0 || int(n) >= g.NumNodes() {
			return fmt.Errorf("census: focal node %d out of range", n)
		}
	}
	return nil
}

// anchorNodes returns the pattern node indices whose images must lie in
// the neighborhood: the subpattern for COUNTSP, all nodes for COUNTP.
func (s Spec) anchorNodes() []int {
	if s.Subpattern != "" {
		sub, _ := s.Pattern.Subpattern(s.Subpattern)
		return sub
	}
	all := make([]int, s.Pattern.NumNodes())
	for i := range all {
		all[i] = i
	}
	return all
}

// subNodesForKey returns the dedup key qualifier: for COUNTSP the
// subpattern image distinguishes automorphic embeddings; for COUNTP it
// does not.
func (s Spec) subNodesForKey() []int {
	if s.Subpattern == "" {
		return nil
	}
	sub, _ := s.Pattern.Subpattern(s.Subpattern)
	return sub
}

// focalList materializes the focal node list (all nodes when unrestricted).
func (s Spec) focalList(g *graph.Graph) []graph.NodeID {
	if s.Focal != nil {
		return s.Focal
	}
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	return all
}

// focalSet returns a membership vector for the focal nodes, or nil when
// every node is focal.
func (s Spec) focalSet(g *graph.Graph) []bool {
	if s.Focal == nil {
		return nil
	}
	set := make([]bool, g.NumNodes())
	for _, n := range s.Focal {
		set[n] = true
	}
	return set
}

// Options tunes algorithm internals. The zero value reproduces the paper's
// defaults.
type Options struct {
	// Matcher finds pattern matches; nil means the CN algorithm.
	Matcher match.Matcher

	// NumCenters is the number of high-degree centers for PT-OPT/PT-RND
	// (paper default 12). Negative disables centers entirely.
	NumCenters int
	// CenterStrategy picks DEG-CNTR (default) or RND-CNTR.
	CenterStrategy centers.Strategy
	// PMDCenters, when non-nil, overrides the center index used for
	// traversal-distance initialization — Fig 4(f) isolates the PMD effect
	// by varying these while holding clustering centers fixed.
	PMDCenters *centers.Index
	// ClusterCenters, when non-nil, overrides the center index used to
	// build K-means feature vectors.
	ClusterCenters *centers.Index

	// Clusters is the K for pattern-match clustering; 0 means the paper's
	// default of |M|/4. Ignored with NoClustering.
	Clusters int
	// NoClustering processes every match independently (NO-CLUST).
	NoClustering bool
	// RandomClustering assigns matches to clusters uniformly at random
	// (RND-CLUST) instead of K-means (OPT-CLUST).
	RandomClustering bool
	// KMeansIters bounds the K-means iterations (paper default 10).
	KMeansIters int

	// DisableShortcuts turns off the pattern-distance initialization of
	// Section IV-B2 (ablation only; anchors still seed their own zero
	// distances).
	DisableShortcuts bool

	// Seed drives the random choices (center sampling, K-means seeding,
	// PT-RND ordering).
	Seed int64

	// Workers bounds the parallelism of the counting phase (ND-PVOT focal
	// nodes, PT-OPT/PT-RND clusters). Zero or one runs sequentially;
	// negative values mean "auto" (one worker per CPU); absurd values are
	// capped. See EffectiveWorkers.
	Workers int

	// Limits bounds the resources evaluation may consume (match-set size,
	// result rows, wall-clock deadline, approximate memory). Exceeding a
	// limit surfaces as a *LimitError carrying partial results. The zero
	// value imposes no limits.
	Limits Limits

	// Partitioner, when enabled (more than one shard), makes the
	// work-stealing scheduler seed focal-node chunks shard-affinely:
	// chunks stay within shard boundaries and land on the shard's home
	// worker, with cross-shard stealing only when a deque drains. The
	// zero value disables affinity. Engines over a sharded store inject
	// the store's partitioner automatically. Affinity never changes
	// results, only which worker computes them.
	Partitioner graph.Partitioner
}

// focalAffinity derives the scheduler affinity for a focal-node list, or
// nil when the partitioner is disabled.
func (o Options) focalAffinity(focal []graph.NodeID) *affinity {
	if !o.Partitioner.Enabled() {
		return nil
	}
	p := o.Partitioner
	return &affinity{shards: p.Shards(), shard: func(i int) int { return p.Shard(focal[i]) }}
}

func (o Options) workers() int { return EffectiveWorkers(o.Workers) }

func (o Options) matcher() match.Matcher {
	if o.Matcher == nil {
		return match.CN{}
	}
	return o.Matcher
}

// matcherFor returns the configured matcher with the guard's stop callback
// injected when both the guard and the matcher support it, so cancellation
// reaches into match enumeration instead of waiting for it to finish.
func (o Options) matcherFor(gd *guard) match.Matcher {
	m := o.matcher()
	if gd == nil {
		return m
	}
	if s, ok := m.(match.Stoppable); ok {
		return s.WithStop(gd.stopFunc())
	}
	return m
}

func (o Options) numCenters() int {
	if o.NumCenters < 0 {
		return 0
	}
	if o.NumCenters == 0 {
		return 12
	}
	return o.NumCenters
}

func (o Options) kmeansIters() int {
	if o.KMeansIters <= 0 {
		return 10
	}
	return o.KMeansIters
}

// Result is a census result: per-focal-node match counts.
type Result struct {
	// Counts[n] is the number of matches for focal node n. Entries for
	// non-focal nodes are zero and not meaningful.
	Counts []int64
	// NumMatches is |M|, the global number of pattern matches found (0 for
	// ND-BAS, which never materializes the global match set).
	NumMatches int
}

// Count evaluates a single-node census with the chosen algorithm.
func Count(g *graph.Graph, spec Spec, alg Algorithm, opt Options) (*Result, error) {
	return CountContext(context.Background(), g, spec, alg, opt) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// CountContext evaluates a single-node census under ctx: cancellation and
// the limits in opt.Limits are enforced inside the drivers with periodic
// low-overhead checks, so evaluation returns within a bounded interval of
// cancellation. A stop surfaces as a *CanceledError or *LimitError
// carrying progress stats and the partial census accumulated so far.
func CountContext(ctx context.Context, g *graph.Graph, spec Spec, alg Algorithm, opt Options) (*Result, error) {
	if err := spec.Validate(g); err != nil {
		return nil, err
	}
	gd, cancel := newGuard(ctx, opt.Limits)
	defer cancel()
	return countGuarded(g, spec, alg, opt, gd)
}

// countGuarded dispatches to the drivers under an existing guard (the
// engine shares one guard across a whole query pipeline).
//
//egolint:deterministic census drivers must be bit-identical across runs, algorithms, and worker counts
func countGuarded(g *graph.Graph, spec Spec, alg Algorithm, opt Options, gd *guard) (*Result, error) {
	switch alg {
	case NDBas:
		return countNDBas(g, spec, opt, gd)
	case NDDiff:
		return countNDDiff(g, spec, opt, gd)
	case NDPvot:
		return countNDPvot(g, spec, opt, gd)
	case PTBas:
		return countPTBas(g, spec, opt, gd)
	case PTOpt:
		return countPTDriven(g, spec, opt, false, gd)
	case PTRnd:
		return countPTDriven(g, spec, opt, true, gd)
	default:
		return nil, fmt.Errorf("census: unknown algorithm %q", alg)
	}
}

// globalMatches finds the deduplicated set of matches of the spec's
// pattern in g (ungoverned form, for batch paths and tests).
func globalMatches(g *graph.Graph, spec Spec, opt Options) []pattern.Match {
	emb := opt.matcher().Embeddings(g, spec.Pattern)
	return match.Deduplicate(spec.Pattern, emb, spec.subNodesForKey())
}

// globalMatchesGuarded is globalMatches under a guard: enumeration aborts
// within one check epoch of a stop, and the deduplicated match set is
// charged against the MaxMatches and MemoryBudget limits.
func globalMatchesGuarded(g *graph.Graph, spec Spec, opt Options, gd *guard) ([]pattern.Match, error) {
	emb := opt.matcherFor(gd).Embeddings(g, spec.Pattern)
	if gd.stopped() {
		return nil, gd.failure(nil, nil)
	}
	matches := match.Deduplicate(spec.Pattern, emb, spec.subNodesForKey())
	// Dominant cost of the match set: one NodeID per pattern node per
	// match, plus slice headers.
	perMatch := int64(spec.Pattern.NumNodes())*4 + 24
	gd.chargeMem(int64(len(matches)) * perMatch)
	if err := gd.chargeMatches(len(matches)); err != nil {
		return nil, gd.failure(nil, nil)
	}
	return matches, nil
}

// matchAnchors returns the deduplicated image nodes of the spec's anchor
// pattern nodes under m, i.e. the graph nodes that must fall inside the
// neighborhood. Small anchor sets (the common case — pattern nodes) dedup
// by linear scan; larger ones sort to avoid quadratic work.
func matchAnchors(spec Spec, anchorIdx []int, m pattern.Match) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(anchorIdx))
	if len(anchorIdx) <= 8 {
		for _, idx := range anchorIdx {
			img := m[idx]
			dup := false
			for _, x := range out {
				if x == img {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, img)
			}
		}
		return out
	}
	for _, idx := range anchorIdx {
		out = append(out, m[idx])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}
