package core

import (
	"fmt"
	"sync"

	"egocensus/internal/graph"
)

// Maintainer keeps any number of registered census queries incrementally
// up to date against a stream of published mutation batches (graph.Delta)
// from a Writer. It owns a private mutable replica of the graph — cloned
// from the snapshot it starts at — so it controls exactly when each
// mutation lands: for an edge insertion, every query's pre-insertion
// state is collected first (Incremental.beforeAdd), the replica mutates
// once, then every query applies its update (afterAdd). Label changes
// fall outside the incremental update rules and trigger a per-query
// rebuild at the end of the batch.
//
// Attach subscribes a maintainer to a Writer with an unbounded queue and
// a worker goroutine, so publishes never wait on census maintenance;
// CatchUp blocks until the maintainer has applied every batch up to an
// epoch. Counts snapshots are served under the maintainer's lock.
type Maintainer struct {
	mu      sync.Mutex
	applied sync.Cond

	g         *graph.Graph // private mutable replica
	epoch     uint64       // last applied batch
	queries   map[string]*Incremental
	queue     []graph.Delta
	queueCond sync.Cond
	stopped   bool
	workerErr error
}

// NewMaintainer starts maintenance from snapshot s: the replica graph is
// a deep clone of s, and deltas are accepted strictly in epoch order from
// s.Epoch()+1 on.
func NewMaintainer(s *graph.Snapshot) *Maintainer {
	mt := &Maintainer{
		g:       s.Graph().Clone(),
		epoch:   s.Epoch(),
		queries: map[string]*Incremental{},
	}
	mt.applied.L = &mt.mu
	mt.queueCond.L = &mt.mu
	return mt
}

// Register adds a census query under a name, computing its initial state
// against the replica's current version. Registering a duplicate name or
// an unsupported spec (see NewIncremental) fails.
func (mt *Maintainer) Register(name string, spec Spec, opt Options) error {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if _, dup := mt.queries[name]; dup {
		return fmt.Errorf("census: maintained query %q already registered", name)
	}
	inc, err := NewIncremental(mt.g, spec, opt)
	if err != nil {
		return err
	}
	mt.queries[name] = inc
	return nil
}

// Apply folds one published batch into the replica and every registered
// query. Batches must arrive in epoch order; an already-applied epoch is
// skipped (idempotent replay), a gap is an error.
func (mt *Maintainer) Apply(d graph.Delta) error {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.applyLocked(d)
}

func (mt *Maintainer) applyLocked(d graph.Delta) error {
	if d.Epoch <= mt.epoch {
		return nil
	}
	if d.Epoch != mt.epoch+1 {
		return fmt.Errorf("census: delta epoch %d arrived with maintainer at %d (gap)", d.Epoch, mt.epoch)
	}
	needRebuild := false
	for _, op := range d.Ops {
		switch op.Kind {
		case graph.OpAddNode:
			mt.g.AddNode()
			for _, inc := range mt.queries {
				inc.noteNode()
			}
		case graph.OpAddEdge:
			u, v := graph.NodeID(op.A), graph.NodeID(op.B)
			if needRebuild {
				// Incremental state is already invalid this batch; just
				// mutate the replica, the rebuild below covers everything.
				mt.g.AddEdge(u, v)
				continue
			}
			txns := make(map[string]*edgeTxn, len(mt.queries))
			for name, inc := range mt.queries {
				txns[name] = inc.beforeAdd(u, v)
			}
			mt.g.AddEdge(u, v)
			for name, inc := range mt.queries {
				inc.afterAdd(txns[name])
			}
		case graph.OpSetLabel:
			if mt.g.LabelString(graph.NodeID(op.A)) != op.Val {
				mt.g.SetLabel(graph.NodeID(op.A), op.Val)
				needRebuild = true
			}
		case graph.OpSetNodeAttr:
			if op.Key == graph.LabelAttr {
				if mt.g.LabelString(graph.NodeID(op.A)) != op.Val {
					mt.g.SetLabel(graph.NodeID(op.A), op.Val)
					needRebuild = true
				}
				continue
			}
			// Non-label attributes never participate in pattern matching.
			mt.g.SetNodeAttr(graph.NodeID(op.A), op.Key, op.Val)
		case graph.OpSetEdgeAttr:
			mt.g.SetEdgeAttr(graph.EdgeID(op.A), op.Key, op.Val)
		default:
			return fmt.Errorf("census: delta epoch %d carries unknown op kind %d", d.Epoch, op.Kind)
		}
	}
	if needRebuild {
		for _, inc := range mt.queries {
			inc.rebuild()
		}
	}
	mt.epoch = d.Epoch
	mt.applied.Broadcast()
	return nil
}

// Attach subscribes the maintainer to w: every batch the writer publishes
// is queued and applied by a worker goroutine, so publishing never waits
// on census maintenance. The returned stop function detaches the worker
// (already-queued batches are dropped); the subscription on w remains but
// becomes a cheap no-op. The maintainer must be positioned at the
// writer's current epoch (or earlier batches must already be queued).
func (mt *Maintainer) Attach(w *graph.Writer) (stop func()) {
	w.Subscribe(func(_ *graph.Snapshot, d graph.Delta) {
		mt.mu.Lock()
		if !mt.stopped {
			mt.queue = append(mt.queue, d)
			mt.queueCond.Signal()
		}
		mt.mu.Unlock()
	})
	go mt.worker()
	return func() {
		mt.mu.Lock()
		mt.stopped = true
		mt.queueCond.Broadcast()
		mt.applied.Broadcast()
		mt.mu.Unlock()
	}
}

func (mt *Maintainer) worker() {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for {
		for len(mt.queue) == 0 && !mt.stopped {
			mt.queueCond.Wait()
		}
		if mt.stopped {
			return
		}
		d := mt.queue[0]
		mt.queue = mt.queue[1:]
		if err := mt.applyLocked(d); err != nil {
			mt.workerErr = err
			mt.stopped = true
			mt.applied.Broadcast()
			return
		}
	}
}

// CatchUp blocks until every batch up to epoch has been applied (or the
// maintainer stopped), returning the maintainer's position and any worker
// error.
func (mt *Maintainer) CatchUp(epoch uint64) (uint64, error) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for mt.epoch < epoch && !mt.stopped {
		mt.applied.Wait()
	}
	return mt.epoch, mt.workerErr
}

// Epoch returns the last applied batch epoch.
func (mt *Maintainer) Epoch() uint64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.epoch
}

// Counts returns a copy of a registered query's maintained per-node
// counts and the epoch they are valid at.
func (mt *Maintainer) Counts(name string) ([]int64, uint64, error) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	inc, ok := mt.queries[name]
	if !ok {
		return nil, 0, fmt.Errorf("census: no maintained query %q", name)
	}
	return append([]int64(nil), inc.Counts()...), mt.epoch, nil
}

// NumMatches returns the live match count of a registered query.
func (mt *Maintainer) NumMatches(name string) (int, error) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	inc, ok := mt.queries[name]
	if !ok {
		return 0, fmt.Errorf("census: no maintained query %q", name)
	}
	return inc.NumMatches(), nil
}

// Queries returns the registered query names.
func (mt *Maintainer) Queries() []string {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	names := make([]string, 0, len(mt.queries))
	for name := range mt.queries {
		names = append(names, name)
	}
	return names
}
