package core

import (
	"strings"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

func TestEngineSingleNodeQuery(t *testing.T) {
	g := gen.ErdosRenyi(20, 45, 7)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN clq3 { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tab := tables[0]
	if len(tab.TypedRows) != g.NumNodes() {
		t.Fatalf("rows = %d want %d", len(tab.TypedRows), g.NumNodes())
	}
	// Validate against the direct API.
	spec := Spec{Pattern: e.Patterns()["clq3"], K: 2}
	want, err := Count(g, spec, NDBas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.TypedRows {
		if row.Count != want.Counts[row.Focal[0]] {
			t.Fatalf("node %d count %d want %d", row.Focal[0], row.Count, want.Counts[row.Focal[0]])
		}
	}
	if tab.Algorithm == "" {
		t.Fatal("table must record the chosen algorithm")
	}
	if tab.Plan == nil || len(tab.Plan.Choices) != 1 {
		t.Fatal("table must carry the optimized plan")
	}
}

func TestEngineAutoSelectedMatchesForced(t *testing.T) {
	// Whatever the optimizer picks for a selective labeled pattern, the
	// counts must agree with a forced baseline run.
	g := gen.ErdosRenyi(20, 45, 7)
	gen.AssignLabels(g, 2, 8)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN lt { ?A-?B; [?A.LABEL='l0']; [?B.LABEL='l0']; }
SELECT ID, COUNTP(lt, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Pattern: e.Patterns()["lt"], K: 1}
	want, err := Count(g, spec, NDBas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].TypedRows {
		if row.Count != want.Counts[row.Focal[0]] {
			t.Fatalf("node %d count %d want %d (alg %s)",
				row.Focal[0], row.Count, want.Counts[row.Focal[0]], tables[0].Algorithm)
		}
	}
	// The selective pattern must estimate a smaller match set than the
	// unrestricted edge pattern on the same graph.
	unsel, err := e.Execute(`
PATTERN e1 { ?A-?B; }
EXPLAIN SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if sel, all := tables[0].Plan.Choices[0].Matches, unsel[0].Plan.Choices[0].Matches; sel >= all {
		t.Fatalf("selective |M| estimate %.1f should be below unrestricted %.1f", sel, all)
	}
}

func TestEngineForcedAlgorithm(t *testing.T) {
	g := gen.ErdosRenyi(15, 30, 9)
	e := NewEngine(g)
	e.Alg = PTBas
	tables, err := e.Execute(`
PATTERN e1 { ?A-?B; }
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].Algorithm != PTBas {
		t.Fatalf("algorithm = %s want PT-BAS", tables[0].Algorithm)
	}
}

func TestEngineWherePredicate(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 11)
	for i := 0; i < g.NumNodes(); i++ {
		if i%2 == 0 {
			g.SetNodeAttr(graph.NodeID(i), "kind", "even")
		}
	}
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = 'even'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].TypedRows) != 10 {
		t.Fatalf("rows = %d want 10", len(tables[0].TypedRows))
	}
	for _, row := range tables[0].TypedRows {
		if row.Focal[0]%2 != 0 {
			t.Fatalf("odd node %d selected", row.Focal[0])
		}
	}
}

func TestEngineRndSelectivity(t *testing.T) {
	g := gen.ErdosRenyi(200, 400, 13)
	e := NewEngine(g)
	e.Seed = 5
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes WHERE RND() < 0.3`)
	if err != nil {
		t.Fatal(err)
	}
	got := len(tables[0].TypedRows)
	if got < 30 || got > 90 {
		t.Fatalf("RND() < 0.3 selected %d of 200 nodes", got)
	}
	// Deterministic given the seed.
	tables2, err := e.Execute(`SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes WHERE RND() < 0.3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables2[0].TypedRows) != got {
		t.Fatal("RND() selection should be deterministic per seed")
	}
}

func TestEnginePairQuery(t *testing.T) {
	g := gen.ErdosRenyi(12, 26, 17)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT n1.ID, n2.ID, COUNTP(n1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2
WHERE n1.ID > n2.ID`)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.TypedRows) == 0 {
		t.Fatal("no pair rows")
	}
	for _, row := range tab.TypedRows {
		if row.Focal[0] <= row.Focal[1] {
			t.Fatalf("row violates WHERE n1.ID > n2.ID: %v", row.Focal)
		}
		// Check the count against direct extraction.
		want := int64(g.EgoIntersection(row.Focal[0], row.Focal[1], 1).G.NumNodes())
		if row.Count != want {
			t.Fatalf("pair %v count %d want %d", row.Focal, row.Count, want)
		}
	}
}

func TestEnginePairNodeDriven(t *testing.T) {
	g := gen.ErdosRenyi(10, 22, 19)
	e := NewEngine(g)
	e.Alg = NDPvot
	tables, err := e.Execute(`
PATTERN e1 { ?A-?B; }
SELECT n1.ID, n2.ID, COUNTP(e1, SUBGRAPH-UNION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID`)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against PT-OPT on the same query.
	e2 := NewEngine(g)
	e2.Alg = PTOpt
	if err := e2.DefinePattern(pattern.SingleEdge("e1", nil)); err != nil {
		t.Fatal(err)
	}
	tables2, err := e2.Execute(`
SELECT n1.ID, n2.ID, COUNTP(e1, SUBGRAPH-UNION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID`)
	if err != nil {
		t.Fatal(err)
	}
	rowsKey := func(tab *Table) map[[2]graph.NodeID]int64 {
		m := map[[2]graph.NodeID]int64{}
		for _, r := range tab.TypedRows {
			m[[2]graph.NodeID{r.Focal[0], r.Focal[1]}] = r.Count
		}
		return m
	}
	a, b := rowsKey(tables[0]), rowsKey(tables2[0])
	if len(a) != len(b) {
		t.Fatalf("row counts differ: ND %d PT %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("pair %v: ND %d PT %d", k, v, b[k])
		}
	}
}

func TestEngineCoordinatorQuery(t *testing.T) {
	g := graph.New(true)
	nodes := make([]graph.NodeID, 4)
	for i := range nodes {
		nodes[i] = g.AddNode()
		g.SetLabel(nodes[i], "org1")
	}
	g.AddEdge(nodes[0], nodes[1])
	g.AddEdge(nodes[1], nodes[2])
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN triad {
  ?A->?B; ?B->?C; ?A!->?C;
  [?A.LABEL=?B.LABEL];
  [?B.LABEL=?C.LABEL];
  SUBPATTERN coordinator {?B;}
}
SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[graph.NodeID]int64{}
	for _, row := range tables[0].TypedRows {
		counts[row.Focal[0]] = row.Count
	}
	if counts[nodes[1]] != 1 || counts[nodes[0]] != 0 || counts[nodes[2]] != 0 {
		t.Fatalf("coordinator counts wrong: %v", counts)
	}
}

func TestEngineMultipleQueries(t *testing.T) {
	g := gen.ErdosRenyi(15, 30, 23)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
PATTERN e1 { ?A-?B; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes;
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d want 2", len(tables))
	}
}

func TestEngineCatalogPersistsAcrossExecutes(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 29)
	e := NewEngine(g)
	if _, err := e.Execute(`PATTERN n1 { ?A; }`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes`); err != nil {
		t.Fatalf("pattern from earlier Execute should be visible: %v", err)
	}
}

func TestEngineDefinePattern(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 31)
	e := NewEngine(g)
	if err := e.DefinePattern(pattern.Clique("k3", 3, nil)); err != nil {
		t.Fatal(err)
	}
	if err := e.DefinePattern(pattern.Clique("k3", 3, nil)); err == nil {
		t.Fatal("duplicate DefinePattern should error")
	}
	bad := pattern.New("bad")
	if err := e.DefinePattern(bad); err == nil {
		t.Fatal("invalid pattern should error")
	}
	if _, err := e.Execute(`SELECT ID, COUNTP(k3, SUBGRAPH(ID, 2)) FROM nodes`); err != nil {
		t.Fatal(err)
	}
}

func TestEngineErrors(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 37)
	e := NewEngine(g)
	if _, err := e.Execute(`SELECT ID, COUNTP(missing, SUBGRAPH(ID, 1)) FROM nodes`); err == nil {
		t.Fatal("unknown pattern should error")
	}
	if _, err := e.Execute(`garbage`); err == nil {
		t.Fatal("parse error should propagate")
	}
}

func TestFormatTable(t *testing.T) {
	g := gen.ErdosRenyi(5, 8, 41)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable(tables[0])
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 rows
		t.Fatalf("formatted lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "ID") || !strings.Contains(lines[0], "COUNTP(n1)") {
		t.Fatalf("header wrong: %s", lines[0])
	}
}

func TestEngineAttrColumnRendering(t *testing.T) {
	g := graph.New(false)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b)
	g.SetNodeAttr(a, "name", "alice")
	g.SetNodeAttr(b, "name", "bob")
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT ID, name, COUNTP(n1, SUBGRAPH(ID, 0)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].Rows[0][1] != "alice" || tables[0].Rows[1][1] != "bob" {
		t.Fatalf("attr column wrong: %v", tables[0].Rows)
	}
	// Every node contains exactly itself at k=0.
	for _, r := range tables[0].TypedRows {
		if r.Count != 1 {
			t.Fatalf("k=0 single-node census should be 1, got %d", r.Count)
		}
	}
}

func TestEnginePairQueryWithRnd(t *testing.T) {
	g := gen.ErdosRenyi(14, 30, 43)
	e := NewEngine(g)
	e.Seed = 7
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT n1.ID, n2.ID, COUNTP(n1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2
WHERE n1.ID > n2.ID AND RND() < 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	first := tables[0]
	// Deterministic per seed and independent of evaluation order.
	tables2, err := e.Execute(`
SELECT n1.ID, n2.ID, COUNTP(n1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2
WHERE n1.ID > n2.ID AND RND() < 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.TypedRows) != len(tables2[0].TypedRows) {
		t.Fatalf("RND pair sampling not deterministic: %d vs %d rows",
			len(first.TypedRows), len(tables2[0].TypedRows))
	}
	for _, row := range first.TypedRows {
		if row.Focal[0] <= row.Focal[1] {
			t.Fatalf("row violates n1.ID > n2.ID: %v", row.Focal)
		}
	}
}

func TestEngineEmptyFocalSelection(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 47)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes WHERE ID > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].TypedRows) != 0 {
		t.Fatalf("rows = %d want 0", len(tables[0].TypedRows))
	}
}

func TestEngineElapsedPopulated(t *testing.T) {
	g := gen.ErdosRenyi(50, 120, 53)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

func TestExplainSingle(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 59)
	gen.AssignLabels(g, 2, 60)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN lt { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL='l0']; }
EXPLAIN SELECT ID, COUNTP(lt, SUBGRAPH(ID, 2)) FROM nodes WHERE RND() < 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if tab.Algorithm == "" {
		t.Fatal("EXPLAIN table must record the chosen algorithm")
	}
	plan := strings.Join(flatten(tab.Rows), "\n")
	for _, frag := range []string{
		"Plan [cost-based", "Census", "FocalSelect [WHERE RND()",
		"PatternDef [lt", "NodeScan", "candidates for lt", "<- chosen",
	} {
		if !strings.Contains(plan, frag) {
			t.Fatalf("plan missing %q:\n%s", frag, plan)
		}
	}
	if len(tab.TypedRows) != 0 {
		t.Fatal("EXPLAIN must not produce result rows")
	}
}

func TestExplainPairAndBatch(t *testing.T) {
	g := gen.ErdosRenyi(15, 30, 61)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
PATTERN e1 { ?A-?B; }
EXPLAIN SELECT n1.ID, n2.ID, COUNTP(e1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2;
EXPLAIN SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)), COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes;`)
	if err != nil {
		t.Fatal(err)
	}
	pairPlan := strings.Join(flatten(tables[0].Rows), "\n")
	if !strings.Contains(pairPlan, "PairCensus") || !strings.Contains(pairPlan, "INTERSECTION") {
		t.Fatalf("pair plan wrong:\n%s", pairPlan)
	}
	// ND-DIFF has no pairwise driver, so it must never appear as a
	// candidate for a pair census.
	if strings.Contains(pairPlan, "ND-DIFF") {
		t.Fatalf("ND-DIFF offered for pairwise census:\n%s", pairPlan)
	}
	multiPlan := strings.Join(flatten(tables[1].Rows), "\n")
	if !strings.Contains(multiPlan, "candidates for n1") || !strings.Contains(multiPlan, "candidates for e1") {
		t.Fatalf("multi-aggregate plan wrong:\n%s", multiPlan)
	}
}

func TestExplainParseErrors(t *testing.T) {
	g := gen.ErdosRenyi(5, 8, 63)
	e := NewEngine(g)
	if _, err := e.Execute(`EXPLAIN PATTERN p {?A;}`); err == nil {
		t.Fatal("EXPLAIN PATTERN should be rejected")
	}
}

func flatten(rows [][]string) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}
