package core

import (
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// countNDDiff is the differential counting algorithm (Algorithm 3, after
// the GADDI-style shared-neighborhood idea): matches are indexed by every
// anchor node they contain; focal nodes are visited in a
// neighbor-following order, and each node's match set is derived from the
// previous node's by removing matches touching the receding frontier
// (N_k(prev) - N_k(cur)) and adding matches touching the advancing
// frontier (N_k(cur) - N_k(prev)) that are fully contained.
func countNDDiff(g *graph.Graph, spec Spec, opt Options) (*Result, error) {
	res := &Result{Counts: make([]int64, g.NumNodes())}
	matches := globalMatches(g, spec, opt)
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}
	anchorIdx := spec.anchorNodes()

	// Index every match under each of its (distinct) anchor images.
	index := make(map[graph.NodeID][]int32)
	for i, m := range matches {
		for _, a := range matchAnchors(spec, anchorIdx, m) {
			index[a] = append(index[a], int32(i))
		}
	}

	focal := spec.focalList(g)
	remaining := make(map[graph.NodeID]bool, len(focal))
	for _, n := range focal {
		remaining[n] = true
	}

	contained := func(m pattern.Match, reach map[graph.NodeID]int) bool {
		for _, idx := range anchorIdx {
			if _, ok := reach[m[idx]]; !ok {
				return false
			}
		}
		return true
	}

	current := make(map[int32]bool) // M[current] as match indices
	var prevReach map[graph.NodeID]int

	// Process focal nodes, following graph neighbors while possible.
	for _, start := range focal {
		if !remaining[start] {
			continue
		}
		cur := start
		prevReach = nil
		for {
			delete(remaining, cur)
			reach := g.KHopNodes(cur, spec.K)
			if prevReach == nil {
				for k := range current {
					delete(current, k)
				}
				// N1 = full neighborhood.
				for n := range reach {
					for _, mi := range index[n] {
						if !current[mi] && contained(matches[mi], reach) {
							current[mi] = true
						}
					}
				}
			} else {
				// Remove matches touching N2 = N_k(prev) - N_k(cur).
				for n := range prevReach {
					if _, ok := reach[n]; ok {
						continue
					}
					for _, mi := range index[n] {
						delete(current, mi)
					}
				}
				// Add matches touching N1 = N_k(cur) - N_k(prev).
				for n := range reach {
					if _, ok := prevReach[n]; ok {
						continue
					}
					for _, mi := range index[n] {
						if !current[mi] && contained(matches[mi], reach) {
							current[mi] = true
						}
					}
				}
			}
			res.Counts[cur] = int64(len(current))

			// Continue with an unprocessed focal neighbor if one exists.
			next := graph.NodeID(-1)
			for _, h := range g.Out(cur) {
				if remaining[h.To] {
					next = h.To
					break
				}
			}
			if next < 0 && g.Directed() {
				for _, h := range g.In(cur) {
					if remaining[h.To] {
						next = h.To
						break
					}
				}
			}
			if next < 0 {
				break
			}
			prevReach = reach
			cur = next
		}
	}
	return res, nil
}
