package core

import (
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// countNDDiff is the differential counting algorithm (Algorithm 3, after
// the GADDI-style shared-neighborhood idea): matches are indexed by every
// anchor node they contain; focal nodes are visited in a
// neighbor-following order, and each node's match set is derived from the
// previous node's by removing matches touching the receding frontier
// (N_k(prev) - N_k(cur)) and adding matches touching the advancing
// frontier (N_k(cur) - N_k(prev)) that are fully contained.
//
// The neighbor-following order decomposes the focal nodes into chains that
// depend only on adjacency, not on the match sets, so the chains are
// carved out first and then processed in parallel across Options.Workers —
// each chain owns disjoint result slots. Within a chain, the current match
// set is an epoch-stamped dense vector and the two live neighborhoods are
// pooled scratch reaches.
//
//egolint:deterministic census drivers must be bit-identical across runs, algorithms, and worker counts
func countNDDiff(g *graph.Graph, spec Spec, opt Options, gd *guard) (*Result, error) {
	res := &Result{Counts: make([]int64, g.NumNodes())}
	gd.chargeMem(int64(g.NumNodes()) * 8)
	matches, err := globalMatchesGuarded(g, spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}
	anchorIdx := spec.anchorNodes()
	prepare(g)

	// Index every match under each of its (distinct) anchor images.
	index := make([][]int32, g.NumNodes())
	for i, m := range matches {
		for _, a := range matchAnchors(spec, anchorIdx, m) {
			index[a] = append(index[a], int32(i))
		}
	}

	// Decompose the focal list into neighbor-following chains. The
	// successor rule (first unprocessed out-neighbor, then in-neighbor)
	// reproduces the sequential visiting order exactly.
	focal := spec.focalList(g)
	remaining := make([]bool, g.NumNodes())
	for _, n := range focal {
		remaining[n] = true
	}
	var chains [][]graph.NodeID
	for _, start := range focal {
		if !remaining[start] {
			continue
		}
		chain := []graph.NodeID{start}
		remaining[start] = false
		for cur := start; ; {
			next := graph.NodeID(-1)
			for _, nb := range g.OutNeighbors(cur) {
				if remaining[nb] {
					next = nb
					break
				}
			}
			if next < 0 && g.Directed() {
				for _, nb := range g.InNeighbors(cur) {
					if remaining[nb] {
						next = nb
						break
					}
				}
			}
			if next < 0 {
				break
			}
			remaining[next] = false
			chain = append(chain, next)
			cur = next
		}
		chains = append(chains, chain)
	}
	// Chains are the parallel work units; a stop also breaks out of the
	// node loop inside a chain, so long chains stay responsive.
	gd.setFocalTotal(len(focal))

	contained := func(m pattern.Match, reach graph.Reach) bool {
		for _, idx := range anchorIdx {
			if !reach.Contains(m[idx]) {
				return false
			}
		}
		return true
	}

	// Per-worker current-set vectors, epoch-stamped per chain. Workers are
	// identified by the chain-claiming goroutine, so each chain allocates
	// nothing beyond its first use of the pooled scratches.
	workers := opt.workers()
	cur := make([][]int32, workers)
	curEpoch := make([]int32, workers)
	runChain := func(w int, chain []graph.NodeID) {
		if cur[w] == nil {
			cur[w] = make([]int32, len(matches))
		}
		inCur := cur[w]
		sa := graph.AcquireScratch(g.NumNodes())
		sb := graph.AcquireScratch(g.NumNodes())
		defer sa.Release()
		defer sb.Release()

		curEpoch[w]++
		epoch := curEpoch[w]
		if epoch <= 0 { // wraparound
			for i := range inCur {
				inCur[i] = 0
			}
			curEpoch[w] = 1
			epoch = 1
		}
		var count int64
		var prevReach graph.Reach
		havePrev := false
		tk := ticker{gd: gd}
		for ci, n := range chain {
			if gd.stopped() {
				return
			}
			s := sa
			if ci%2 == 1 {
				s = sb
			}
			reach := g.KHop(n, spec.K, s)
			if !havePrev {
				for _, nb := range reach.Nodes {
					if tk.tick() != nil {
						return
					}
					for _, mi := range index[nb] {
						if inCur[mi] != epoch && contained(matches[mi], reach) {
							inCur[mi] = epoch
							count++
						}
					}
				}
			} else {
				// Remove matches touching N2 = N_k(prev) - N_k(cur).
				for _, nb := range prevReach.Nodes {
					if tk.tick() != nil {
						return
					}
					if reach.Contains(nb) {
						continue
					}
					for _, mi := range index[nb] {
						if inCur[mi] == epoch {
							inCur[mi] = 0
							count--
						}
					}
				}
				// Add matches touching N1 = N_k(cur) - N_k(prev).
				for _, nb := range reach.Nodes {
					if tk.tick() != nil {
						return
					}
					if prevReach.Contains(nb) {
						continue
					}
					for _, mi := range index[nb] {
						if inCur[mi] != epoch && contained(matches[mi], reach) {
							inCur[mi] = epoch
							count++
						}
					}
				}
			}
			res.Counts[n] = count
			gd.focalTick()
			prevReach = reach
			havePrev = true
		}
	}

	if workers <= 1 || len(chains) == 1 {
		for _, chain := range chains {
			if gd.check() != nil {
				break
			}
			runChain(0, chain)
		}
		return res, gd.failure(res, nil)
	}
	// Chain cost for the work-stealing schedule: each node in a chain
	// pays one k-hop frontier diff proportional to its degree.
	chainCost := func(i int) int64 {
		c := int64(0)
		for _, n := range chains[i] {
			c += 1 + int64(g.Degree(n))
		}
		return c
	}
	parallelForWorkerCost(gd, workers, len(chains), chainCost, func(w, i int) {
		runChain(w, chains[i])
	})
	return res, gd.failure(res, nil)
}
