package core

import (
	"math"
	"sort"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

func TestTopKMatchesFullCensus(t *testing.T) {
	g := gen.PreferentialAttachment(200, 4, 3)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 2}
	full, err := Count(g, spec, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopK(g, spec, 10, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("top-k length = %d", len(top))
	}
	// Reference ranking.
	type nc struct {
		n graph.NodeID
		c int64
	}
	ref := make([]nc, g.NumNodes())
	for i := range ref {
		ref[i] = nc{graph.NodeID(i), full.Counts[i]}
	}
	sort.Slice(ref, func(i, j int) bool {
		if ref[i].c != ref[j].c {
			return ref[i].c > ref[j].c
		}
		return ref[i].n < ref[j].n
	})
	for i, got := range top {
		if got.Node != ref[i].n || got.Count != ref[i].c {
			t.Fatalf("rank %d: got (%d,%d) want (%d,%d)", i, got.Node, got.Count, ref[i].n, ref[i].c)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 5)
	spec := Spec{Pattern: pattern.SingleNode("n", ""), K: 1}
	if top, err := TopK(g, spec, 0, NDPvot, Options{}); err != nil || top != nil {
		t.Fatalf("k=0 should be nil: %v %v", top, err)
	}
	top, err := TopK(g, spec, 100, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != g.NumNodes() {
		t.Fatalf("k > n should return all nodes: %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("ranking not descending")
		}
	}
}

func TestTopKWithFocalSubset(t *testing.T) {
	g := gen.ErdosRenyi(30, 70, 7)
	focal := []graph.NodeID{1, 5, 9}
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1, Focal: focal}
	top, err := TopK(g, spec, 10, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("top-k over 3 focal nodes = %d entries", len(top))
	}
	for _, e := range top {
		if e.Node != 1 && e.Node != 5 && e.Node != 9 {
			t.Fatalf("non-focal node %d in top-k", e.Node)
		}
	}
}

func TestTopKPairs(t *testing.T) {
	g := gen.ErdosRenyi(15, 35, 9)
	spec := PairSpec{
		Spec: Spec{Pattern: pattern.SingleNode("n", ""), K: 1},
		Mode: Intersection,
	}
	full, err := CountPairs(g, spec, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopKPairs(g, spec, 5, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) > 5 {
		t.Fatalf("top-k pairs = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("pair ranking not descending")
		}
	}
	if len(top) > 0 {
		best := top[0].Count
		for _, c := range full.Counts {
			if c > best {
				t.Fatal("top pair is not maximal")
			}
		}
	}
	if got, err := TopKPairs(g, spec, 0, PTOpt, Options{}); err != nil || got != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestApproxExactAtRateOne(t *testing.T) {
	g := gen.PreferentialAttachment(150, 3, 11)
	gen.AssignLabels(g, 2, 12)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l0", "l1"}), K: 2}
	exact, err := Count(g, spec, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := CountApprox(g, spec, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if approx.SampledMatches != approx.NumMatches {
		t.Fatal("rate 1 should keep every match")
	}
	for n := range exact.Counts {
		if math.Abs(approx.Est[n]-float64(exact.Counts[n])) > 1e-9 {
			t.Fatalf("node %d: approx %v exact %d", n, approx.Est[n], exact.Counts[n])
		}
	}
}

func TestApproxEstimatesAggregate(t *testing.T) {
	g := gen.PreferentialAttachment(400, 5, 13)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 2}
	exact, err := Count(g, spec, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var exactTotal float64
	for _, c := range exact.Counts {
		exactTotal += float64(c)
	}
	approx, err := CountApprox(g, spec, 0.5, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if approx.SampledMatches == 0 || approx.SampledMatches >= approx.NumMatches {
		t.Fatalf("sample size implausible: %d of %d", approx.SampledMatches, approx.NumMatches)
	}
	var estTotal float64
	for _, e := range approx.Est {
		estTotal += e
	}
	relErr := math.Abs(estTotal-exactTotal) / exactTotal
	if relErr > 0.25 {
		t.Fatalf("aggregate relative error %.3f too high (est %.0f exact %.0f)", relErr, estTotal, exactTotal)
	}
}

func TestApproxValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 15)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1}
	if _, err := CountApprox(g, spec, 0, Options{}); err == nil {
		t.Fatal("rate 0 should error")
	}
	if _, err := CountApprox(g, spec, 1.5, Options{}); err == nil {
		t.Fatal("rate > 1 should error")
	}
	empty := Spec{Pattern: pattern.Clique("clq9", 9, nil), K: 1}
	res, err := CountApprox(g, empty, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMatches != 0 || res.SampledMatches != 0 {
		t.Fatal("no matches expected")
	}
}

func TestParallelWorkersMatchSequential(t *testing.T) {
	g := gen.PreferentialAttachment(300, 4, 17)
	gen.AssignLabels(g, 3, 18)
	specs := []Spec{
		{Pattern: pattern.Clique("clq3", 3, nil), K: 2},
		{Pattern: pattern.Clique("clq3l", 3, []string{"l0", "l1", "l2"}), K: 2},
	}
	for _, spec := range specs {
		for _, alg := range []Algorithm{NDPvot, PTOpt, PTRnd} {
			seq, err := Count(g, spec, alg, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Count(g, spec, alg, Options{Seed: 1, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for n := range seq.Counts {
				if seq.Counts[n] != par.Counts[n] {
					t.Fatalf("%s %s node %d: seq %d par %d", spec.Pattern.Name, alg, n, seq.Counts[n], par.Counts[n])
				}
			}
		}
	}
}

func TestParallelWorkersWithFocalSubset(t *testing.T) {
	g := gen.ErdosRenyi(50, 120, 19)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1,
		Focal: []graph.NodeID{0, 7, 13, 21, 44}}
	seq, err := Count(g, spec, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Count(g, spec, NDPvot, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for n := range seq.Counts {
		if seq.Counts[n] != par.Counts[n] {
			t.Fatalf("node %d: seq %d par %d", n, seq.Counts[n], par.Counts[n])
		}
	}
}

func TestDisableShortcutsStillCorrect(t *testing.T) {
	g := gen.PreferentialAttachment(200, 4, 23)
	gen.AssignLabels(g, 3, 24)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2}
	want, err := Count(g, spec, PTOpt, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Count(g, spec, PTOpt, Options{Seed: 1, DisableShortcuts: true})
	if err != nil {
		t.Fatal(err)
	}
	for n := range want.Counts {
		if want.Counts[n] != got.Counts[n] {
			t.Fatalf("node %d: with shortcuts %d, without %d", n, want.Counts[n], got.Counts[n])
		}
	}
}
