package core

import (
	"context"
	"fmt"
	"math/rand"

	"egocensus/internal/graph"
	"egocensus/internal/match"
)

// PairMode selects the pairwise neighborhood combinator.
type PairMode int

const (
	// Intersection censuses SUBGRAPH-INTERSECTION(n1, n2, k).
	Intersection PairMode = iota
	// Union censuses SUBGRAPH-UNION(n1, n2, k).
	Union
)

// String renders the mode in query syntax.
func (m PairMode) String() string {
	if m == Union {
		return "SUBGRAPH-UNION"
	}
	return "SUBGRAPH-INTERSECTION"
}

// Pair is an unordered node pair in canonical (A < B) order.
type Pair struct {
	A, B graph.NodeID
}

// MakePair returns the canonical form of a pair.
func MakePair(a, b graph.NodeID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// PairSpec describes a pairwise census:
// COUNTP(pattern, SUBGRAPH-INTERSECTION/UNION(n1, n2, k)).
type PairSpec struct {
	Spec
	Mode PairMode
	// Pairs restricts the census to these pairs; nil means all pairs with
	// a non-zero count (pattern-driven evaluation naturally produces
	// exactly those).
	Pairs []Pair
}

// PairResult maps pairs to counts. Pairs absent from the map have count 0.
type PairResult struct {
	Counts     map[Pair]int64
	NumMatches int
}

// CountPairs evaluates a pairwise census. Pattern-driven algorithms
// (PT-BAS, PT-OPT, PT-RND share the per-match neighborhood machinery)
// report every pair with a non-zero count; node-driven algorithms (ND-BAS,
// ND-PVOT) require an explicit pair list.
func CountPairs(g *graph.Graph, spec PairSpec, alg Algorithm, opt Options) (*PairResult, error) {
	return CountPairsContext(context.Background(), g, spec, alg, opt) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// CountPairsContext is CountPairs under a context: cancellation and the
// limits in opt.Limits stop evaluation within a bounded interval, surfacing
// as a *CanceledError or *LimitError carrying the partial pair counts.
func CountPairsContext(ctx context.Context, g *graph.Graph, spec PairSpec, alg Algorithm, opt Options) (*PairResult, error) {
	if err := spec.Validate(g); err != nil {
		return nil, err
	}
	gd, cancel := newGuard(ctx, opt.Limits)
	defer cancel()
	return countPairsGuarded(g, spec, alg, opt, gd)
}

// countPairsGuarded dispatches to the pairwise drivers under an existing
// guard.
//
//egolint:deterministic census drivers must be bit-identical across runs, algorithms, and worker counts
func countPairsGuarded(g *graph.Graph, spec PairSpec, alg Algorithm, opt Options, gd *guard) (*PairResult, error) {
	switch alg {
	case NDBas:
		return pairNDBas(g, spec, opt, gd)
	case NDPvot:
		return pairNDPvot(g, spec, opt, gd)
	case PTBas:
		return pairPTDriven(g, spec, opt, gd)
	case PTOpt:
		return pairPTOpt(g, spec, opt, false, gd)
	case PTRnd:
		return pairPTOpt(g, spec, opt, true, gd)
	default:
		return nil, fmt.Errorf("census: algorithm %q does not support pairwise censuses", alg)
	}
}

// pairAdder builds the shared pair-emission closure: it filters against the
// requested pair list, charges each newly materialized pair as one result
// row, and accumulates counts. Emission loops poll gd.stopped() so the
// O(pairs) phases wind down within one epoch of a stop.
func pairAdder(res *PairResult, spec PairSpec, gd *guard) func(a, b graph.NodeID, c int64) {
	var wanted map[Pair]bool
	if spec.Pairs != nil {
		wanted = make(map[Pair]bool, len(spec.Pairs))
		for _, pr := range spec.Pairs {
			wanted[MakePair(pr.A, pr.B)] = true
		}
	}
	tk := &ticker{gd: gd}
	return func(a, b graph.NodeID, c int64) {
		tk.tick() // runs the full check once per epoch, raising the flag
		pr := MakePair(a, b)
		if wanted != nil && !wanted[pr] {
			return
		}
		if _, ok := res.Counts[pr]; !ok {
			if gd.chargeRows(1) != nil {
				return
			}
			// ~48 bytes per map entry (key + value + bucket overhead).
			gd.chargeMem(48)
		}
		res.Counts[pr] += c
	}
}

// pairNDBas extracts the intersection/union induced subgraph per pair and
// matches inside it — the reference semantics (COUNTP only; COUNTSP
// censuses fall back to global matching plus containment checks).
func pairNDBas(g *graph.Graph, spec PairSpec, opt Options, gd *guard) (*PairResult, error) {
	if spec.Pairs == nil {
		return nil, fmt.Errorf("census: ND-BAS pairwise requires an explicit pair list")
	}
	res := &PairResult{Counts: make(map[Pair]int64, len(spec.Pairs))}
	if spec.Subpattern != "" {
		return pairNDContainment(g, spec, opt, gd)
	}
	m := opt.matcherFor(gd)
	gd.setFocalTotal(len(spec.Pairs))
	for _, pr := range spec.Pairs {
		if gd.check() != nil {
			break
		}
		var sg *graph.Subgraph
		if spec.Mode == Intersection {
			sg = g.EgoIntersection(pr.A, pr.B, spec.K)
		} else {
			sg = g.EgoUnion(pr.A, pr.B, spec.K)
		}
		if sg.G.NumNodes() == 0 {
			gd.focalTick()
			continue
		}
		emb := m.Embeddings(sg.G, spec.Pattern)
		if c := int64(len(match.Deduplicate(spec.Pattern, emb, nil))); c > 0 {
			if gd.chargeRows(1) != nil {
				break
			}
			res.Counts[MakePair(pr.A, pr.B)] = c
		}
		gd.focalTick()
	}
	return res, gd.failure(nil, res)
}

// pairNDContainment matches globally and containment-checks each anchor
// image against the combined neighborhood of each pair.
func pairNDContainment(g *graph.Graph, spec PairSpec, opt Options, gd *guard) (*PairResult, error) {
	res := &PairResult{Counts: make(map[Pair]int64, len(spec.Pairs))}
	matches, err := globalMatchesGuarded(g, spec.Spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res.NumMatches = len(matches)
	anchorIdx := spec.anchorNodes()
	gd.setFocalTotal(len(spec.Pairs))
	sa := graph.AcquireScratch(g.NumNodes())
	sb := graph.AcquireScratch(g.NumNodes())
	defer sa.Release()
	defer sb.Release()
	tk := ticker{gd: gd}
	for _, pr := range spec.Pairs {
		if gd.check() != nil {
			break
		}
		ra := g.KHop(pr.A, spec.K, sa)
		rb := g.KHop(pr.B, spec.K, sb)
		var count int64
		for _, m := range matches {
			if tk.tick() != nil {
				break
			}
			inside := true
			for _, idx := range anchorIdx {
				inA := ra.Contains(m[idx])
				inB := rb.Contains(m[idx])
				if spec.Mode == Intersection {
					if !inA || !inB {
						inside = false
						break
					}
				} else if !inA && !inB {
					inside = false
					break
				}
			}
			if inside {
				count++
			}
		}
		if count > 0 {
			if gd.chargeRows(1) != nil {
				break
			}
			res.Counts[MakePair(pr.A, pr.B)] = count
		}
		gd.focalTick()
	}
	return res, gd.failure(nil, res)
}

// pairNDPvot adapts the pivot indexing algorithm to pairs (Appendix B):
// the traversal set becomes the intersection/union of the two k-hop
// neighborhoods, and d(n, n') becomes max(d1, d2) for intersections and
// min(d1, d2) for unions.
func pairNDPvot(g *graph.Graph, spec PairSpec, opt Options, gd *guard) (*PairResult, error) {
	if spec.Pairs == nil {
		return nil, fmt.Errorf("census: ND-PVOT pairwise requires an explicit pair list")
	}
	res := &PairResult{Counts: make(map[Pair]int64, len(spec.Pairs))}
	matches, err := globalMatchesGuarded(g, spec.Spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}
	p := spec.Pattern
	anchorIdx := spec.anchorNodes()
	dist := p.Distances()
	pivot, maxV := -1, int(^uint(0)>>1)
	for _, x := range anchorIdx {
		ecc := 0
		for _, y := range anchorIdx {
			if dist[x][y] > ecc {
				ecc = dist[x][y]
			}
		}
		if ecc < maxV {
			pivot, maxV = x, ecc
		}
	}
	index := buildPMI(g.NumNodes(), matches, pivot)

	inCombined := func(n graph.NodeID, ra, rb graph.Reach) bool {
		inA := ra.Contains(n)
		inB := rb.Contains(n)
		if spec.Mode == Intersection {
			return inA && inB
		}
		return inA || inB
	}

	gd.setFocalTotal(len(spec.Pairs))
	sa := graph.AcquireScratch(g.NumNodes())
	sb := graph.AcquireScratch(g.NumNodes())
	defer sa.Release()
	defer sb.Release()
	tk := ticker{gd: gd}
	for _, pr := range spec.Pairs {
		if gd.check() != nil {
			break
		}
		ra := g.KHop(pr.A, spec.K, sa)
		rb := g.KHop(pr.B, spec.K, sb)
		var count int64
		visit := func(nPrime graph.NodeID, d int) {
			tk.tick()
			bucket := index[nPrime]
			if len(bucket) == 0 {
				return
			}
			if d+maxV <= spec.K {
				count += int64(len(bucket))
				return
			}
			for _, mi := range bucket {
				m := matches[mi]
				inside := true
				for _, u := range anchorIdx {
					if dist[pivot][u]+d <= spec.K {
						continue // cannot escape
					}
					if !inCombined(m[u], ra, rb) {
						inside = false
						break
					}
				}
				if inside {
					count++
				}
			}
		}
		if spec.Mode == Intersection {
			for _, n := range ra.Nodes {
				if gd.stopped() {
					break
				}
				d2 := rb.Dist(n)
				if d2 < 0 {
					continue
				}
				d := int(ra.Dist(n))
				if int(d2) > d {
					d = int(d2)
				}
				visit(n, d)
			}
		} else {
			for _, n := range ra.Nodes {
				if gd.stopped() {
					break
				}
				d := int(ra.Dist(n))
				if d2 := rb.Dist(n); d2 >= 0 && int(d2) < d {
					d = int(d2)
				}
				visit(n, d)
			}
			for _, n := range rb.Nodes {
				if gd.stopped() {
					break
				}
				if ra.Contains(n) {
					continue // already visited
				}
				visit(n, int(rb.Dist(n)))
			}
		}
		if count > 0 {
			if gd.chargeRows(1) != nil {
				break
			}
			res.Counts[MakePair(pr.A, pr.B)] = count
		}
		gd.focalTick()
	}
	return res, gd.failure(nil, res)
}

// pairPTOpt is the optimized pattern-driven pairwise evaluator: matches
// are clustered exactly as in the single-node PT-OPT, each cluster runs one
// simultaneous traversal producing per-node anchor-distance vectors, and
// pairs are emitted per match from those shared vectors (Appendix B).
func pairPTOpt(g *graph.Graph, spec PairSpec, opt Options, randomOrder bool, gd *guard) (*PairResult, error) {
	res := &PairResult{Counts: make(map[Pair]int64)}
	matches, err := globalMatchesGuarded(g, spec.Spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}
	anchorIdx := spec.anchorNodes()

	pmdCenters, clusterCenters := resolveCenters(g, opt)
	clusters := clusterMatches(g, spec.Spec, opt, matches, anchorIdx, clusterCenters, gd)
	pdist := spec.Pattern.Distances()
	tr := &traversal{
		g:           g,
		k:           spec.K,
		pmdCenters:  pmdCenters,
		randomOrder: randomOrder,
		noShortcuts: opt.DisableShortcuts,
		rng:         rand.New(rand.NewSource(opt.Seed + 1)),
		gd:          gd,
	}

	add := pairAdder(res, spec, gd)

	gd.setFocalTotal(len(matches))
	k := int32(spec.K)
	for _, cluster := range clusters {
		if gd.check() != nil {
			break
		}
		pmd, anchorPos := tr.computePMD(matches, cluster, anchorIdx, pdist)
		for _, mi := range cluster {
			if gd.stopped() {
				break
			}
			m := matches[mi]
			anchors := matchAnchors(spec.Spec, anchorIdx, m)
			if len(anchors) > 63 {
				return nil, fmt.Errorf("census: union/intersection supports at most 63 anchor nodes, got %d", len(anchors))
			}
			full := uint64(1)<<uint(len(anchors)) - 1
			positions := make([]int, len(anchors))
			for i, a := range anchors {
				positions[i] = anchorPos[a]
			}
			if spec.Mode == Intersection {
				var nm []graph.NodeID
				for n, v := range pmd {
					inAll := true
					for _, pos := range positions {
						if v[pos] > k {
							inAll = false
							break
						}
					}
					if inAll {
						nm = append(nm, n)
					}
				}
				for i := 0; i < len(nm) && !gd.stopped(); i++ {
					for j := i + 1; j < len(nm); j++ {
						add(nm[i], nm[j], 1)
					}
				}
				gd.focalTick()
				continue
			}
			groups := make(map[uint64][]graph.NodeID)
			covered := make(map[graph.NodeID]bool)
			for n, v := range pmd {
				var mask uint64
				for i, pos := range positions {
					if v[pos] <= k {
						mask |= 1 << uint(i)
					}
				}
				if mask != 0 {
					groups[mask] = append(groups[mask], n)
					covered[n] = true
				}
			}
			var complement []graph.NodeID
			if len(groups[full]) > 0 {
				for i := 0; i < g.NumNodes(); i++ {
					if !covered[graph.NodeID(i)] {
						complement = append(complement, graph.NodeID(i))
					}
				}
			}
			emitUnionPairs(gd, groups, full, complement, add)
			gd.focalTick()
		}
	}
	return res, gd.failure(nil, res)
}

// emitUnionPairs adds one count for every unordered node pair whose masks
// OR to the full anchor set. complement lists the nodes with an empty mask
// (every graph node outside the traversed region): they pair with nodes
// whose own mask already covers all anchors. The O(pairs) emission loops
// poll the guard so a stop cuts them short within one group row.
func emitUnionPairs(gd *guard, groups map[uint64][]graph.NodeID, full uint64, complement []graph.NodeID, add func(a, b graph.NodeID, c int64)) {
	if gf := groups[full]; len(gf) > 0 {
		for _, a := range gf {
			if gd.stopped() {
				return
			}
			for _, b := range complement {
				add(a, b, 1)
			}
		}
	}
	maskList := make([]uint64, 0, len(groups))
	for mask := range groups {
		maskList = append(maskList, mask)
	}
	for i := 0; i < len(maskList) && !gd.stopped(); i++ {
		for j := i; j < len(maskList); j++ {
			x, y := maskList[i], maskList[j]
			if x|y != full {
				continue
			}
			gx, gy := groups[x], groups[y]
			if i == j {
				for a := 0; a < len(gx) && !gd.stopped(); a++ {
					for b := a + 1; b < len(gx); b++ {
						add(gx[a], gx[b], 1)
					}
				}
			} else {
				for _, a := range gx {
					if gd.stopped() {
						break
					}
					for _, b := range gy {
						add(a, b, 1)
					}
				}
			}
		}
	}
}

// pairPTDriven processes each match once: compute the set of nodes within
// k hops of each anchor, then emit pairs. For intersections every pair of
// nodes that both reach all anchors gets the match (N[M] x N[M]); for
// unions, nodes are grouped by the bitmask of anchors they reach and every
// pair of masks whose union covers all anchors contributes (the paper's
// 2-partition scheme, counted exactly once per pair).
func pairPTDriven(g *graph.Graph, spec PairSpec, opt Options, gd *guard) (*PairResult, error) {
	res := &PairResult{Counts: make(map[Pair]int64)}
	matches, err := globalMatchesGuarded(g, spec.Spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}
	anchorIdx := spec.anchorNodes()

	add := pairAdder(res, spec, gd)

	gd.setFocalTotal(len(matches))
	for _, m := range matches {
		if gd.check() != nil {
			break
		}
		anchors := matchAnchors(spec.Spec, anchorIdx, m)
		if len(anchors) > 63 {
			return nil, fmt.Errorf("census: union/intersection supports at most 63 anchor nodes, got %d", len(anchors))
		}
		// masks[n] = bitmask of anchors within k hops of n.
		masks := make(map[graph.NodeID]uint64)
		s := graph.AcquireScratch(g.NumNodes())
		for i, a := range anchors {
			reach := g.KHop(a, spec.K, s)
			for _, n := range reach.Nodes {
				masks[n] |= 1 << uint(i)
			}
		}
		s.Release()
		full := uint64(1)<<uint(len(anchors)) - 1

		if spec.Mode == Intersection {
			var nm []graph.NodeID
			for n, mask := range masks {
				if mask == full {
					nm = append(nm, n)
				}
			}
			for i := 0; i < len(nm) && !gd.stopped(); i++ {
				for j := i + 1; j < len(nm); j++ {
					add(nm[i], nm[j], 1)
				}
			}
			gd.focalTick()
			continue
		}

		// Union: group nodes by mask, then pair up complementary groups.
		groups := make(map[uint64][]graph.NodeID)
		for n, mask := range masks {
			groups[mask] = append(groups[mask], n)
		}
		var complement []graph.NodeID
		if len(groups[full]) > 0 {
			for i := 0; i < g.NumNodes(); i++ {
				if _, ok := masks[graph.NodeID(i)]; !ok {
					complement = append(complement, graph.NodeID(i))
				}
			}
		}
		emitUnionPairs(gd, groups, full, complement, add)
		gd.focalTick()
	}
	return res, gd.failure(nil, res)
}
