package core

import (
	"sync"

	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// pmi is a pattern match index: for a designated pattern node v, pmi maps a
// graph node n' to the indices of the matches in which n' is the image of
// v (Section IV-A1).
type pmi map[graph.NodeID][]int32

func buildPMI(matches []pattern.Match, pivot int) pmi {
	idx := make(pmi, len(matches))
	for i, m := range matches {
		n := m[pivot]
		idx[n] = append(idx[n], int32(i))
	}
	return idx
}

// countNDPvot is the pivot indexing algorithm (Algorithm 2): find all
// matches once, index them by the image of an eccentricity-minimizing
// pivot node, then BFS each focal node's neighborhood and count index
// buckets — skipping containment checks whenever the triangle inequality
// through the pivot already guarantees containment, and otherwise checking
// only the pattern nodes that are distant enough from the pivot to be able
// to escape the neighborhood.
func countNDPvot(g *graph.Graph, spec Spec, opt Options) (*Result, error) {
	res := &Result{Counts: make([]int64, g.NumNodes())}
	matches := globalMatches(g, spec, opt)
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}

	p := spec.Pattern
	anchorIdx := spec.anchorNodes()

	// Pivot selection restricted to the anchor (subpattern) nodes, with
	// eccentricity measured over the anchors (the only nodes whose
	// containment matters).
	dist := p.Distances()
	pivot, maxV := -1, int(^uint(0)>>1)
	for _, x := range anchorIdx {
		ecc := 0
		for _, y := range anchorIdx {
			if dist[x][y] > ecc {
				ecc = dist[x][y]
			}
		}
		if ecc < maxV {
			pivot, maxV = x, ecc
		}
	}

	// distant[i] = anchor nodes u with d(pivot, u) >= i: the nodes that
	// require an explicit containment check when k - d(n, n') = i - 1.
	distant := make([][]int, maxV+2)
	for _, u := range anchorIdx {
		for i := 1; i <= maxV; i++ {
			if dist[pivot][u] >= i {
				distant[i] = append(distant[i], u)
			}
		}
	}

	index := buildPMI(matches, pivot)

	countFor := func(n graph.NodeID) int64 {
		reach := g.KHopNodes(n, spec.K)
		var count int64
		for nPrime, d := range reach {
			bucket, ok := index[nPrime]
			if !ok {
				continue
			}
			if d+maxV <= spec.K {
				// Containment guaranteed: d(n, mu(u)) <= d + d(pivot, u)
				// <= d + maxV <= k for every anchor u.
				count += int64(len(bucket))
				continue
			}
			// Only anchors with d(pivot, u) > k - d can escape S(n, k).
			checkIdx := spec.K - d + 1
			if checkIdx < 1 {
				checkIdx = 1
			}
			if checkIdx >= len(distant) {
				checkIdx = len(distant) - 1
			}
			toCheck := distant[checkIdx]
			for _, mi := range bucket {
				m := matches[mi]
				inside := true
				for _, u := range toCheck {
					if _, ok := reach[m[u]]; !ok {
						inside = false
						break
					}
				}
				if inside {
					count++
				}
			}
		}
		return count
	}

	focal := spec.focalList(g)
	workers := opt.workers()
	if workers <= 1 {
		for _, n := range focal {
			res.Counts[n] = countFor(n)
		}
		return res, nil
	}
	// Focal nodes are disjoint result slots, so workers write directly.
	var wg sync.WaitGroup
	chunk := (len(focal) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(focal) {
			break
		}
		hi := lo + chunk
		if hi > len(focal) {
			hi = len(focal)
		}
		wg.Add(1)
		go func(part []graph.NodeID) {
			defer wg.Done()
			for _, n := range part {
				res.Counts[n] = countFor(n)
			}
		}(focal[lo:hi])
	}
	wg.Wait()
	return res, nil
}
