package core

import (
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// buildPMI builds a pattern match index for a designated pattern node v: a
// dense per-graph-node table mapping n' to the indices of the matches in
// which n' is the image of v (Section IV-A1).
func buildPMI(numNodes int, matches []pattern.Match, pivot int) [][]int32 {
	idx := make([][]int32, numNodes)
	for i, m := range matches {
		n := m[pivot]
		idx[n] = append(idx[n], int32(i))
	}
	return idx
}

// countNDPvot is the pivot indexing algorithm (Algorithm 2): find all
// matches once, index them by the image of an eccentricity-minimizing
// pivot node, then BFS each focal node's neighborhood and count index
// buckets — skipping containment checks whenever the triangle inequality
// through the pivot already guarantees containment, and otherwise checking
// only the pattern nodes that are distant enough from the pivot to be able
// to escape the neighborhood. Focal nodes are processed in parallel across
// Options.Workers; each owns a disjoint result slot.
//
//egolint:deterministic census drivers must be bit-identical across runs, algorithms, and worker counts
func countNDPvot(g *graph.Graph, spec Spec, opt Options, gd *guard) (*Result, error) {
	res := &Result{Counts: make([]int64, g.NumNodes())}
	gd.chargeMem(int64(g.NumNodes()) * 8)
	matches, err := globalMatchesGuarded(g, spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}

	p := spec.Pattern
	anchorIdx := spec.anchorNodes()
	prepare(g)

	// Pivot selection restricted to the anchor (subpattern) nodes, with
	// eccentricity measured over the anchors (the only nodes whose
	// containment matters).
	dist := p.Distances()
	pivot, maxV := -1, int(^uint(0)>>1)
	for _, x := range anchorIdx {
		ecc := 0
		for _, y := range anchorIdx {
			if dist[x][y] > ecc {
				ecc = dist[x][y]
			}
		}
		if ecc < maxV {
			pivot, maxV = x, ecc
		}
	}

	// distant[i] = anchor nodes u with d(pivot, u) >= i: the nodes that
	// require an explicit containment check when k - d(n, n') = i - 1.
	distant := make([][]int, maxV+2)
	for _, u := range anchorIdx {
		for i := 1; i <= maxV; i++ {
			if dist[pivot][u] >= i {
				distant[i] = append(distant[i], u)
			}
		}
	}

	index := buildPMI(g.NumNodes(), matches, pivot)

	// Focal nodes are disjoint result slots, so workers write directly.
	focal := spec.focalList(g)
	gd.setFocalTotal(len(focal))
	focalCost := func(i int) int64 { return 1 + int64(g.Degree(focal[i])) }
	parallelForCostAff(gd, opt.workers(), len(focal), focalCost, opt.focalAffinity(focal), func(fi int) {
		n := focal[fi]
		s := graph.AcquireScratch(g.NumNodes())
		defer s.Release()
		reach := g.KHop(n, spec.K, s)
		var count int64
		tk := ticker{gd: gd}
		for _, nPrime := range reach.Nodes {
			if tk.tick() != nil {
				return
			}
			bucket := index[nPrime]
			if len(bucket) == 0 {
				continue
			}
			d := int(reach.Dist(nPrime))
			if d+maxV <= spec.K {
				// Containment guaranteed: d(n, mu(u)) <= d + d(pivot, u)
				// <= d + maxV <= k for every anchor u.
				count += int64(len(bucket))
				continue
			}
			// Only anchors with d(pivot, u) > k - d can escape S(n, k).
			checkIdx := spec.K - d + 1
			if checkIdx < 1 {
				checkIdx = 1
			}
			if checkIdx >= len(distant) {
				checkIdx = len(distant) - 1
			}
			toCheck := distant[checkIdx]
			for _, mi := range bucket {
				m := matches[mi]
				inside := true
				for _, u := range toCheck {
					if !reach.Contains(m[u]) {
						inside = false
						break
					}
				}
				if inside {
					count++
				}
			}
		}
		res.Counts[n] = count
	})
	return res, gd.failure(res, nil)
}
