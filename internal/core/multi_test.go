package core

import (
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

func TestCountManyMatchesIndividualRuns(t *testing.T) {
	g := gen.PreferentialAttachment(300, 4, 7)
	gen.AssignLabels(g, 3, 8)
	specs := []Spec{
		{Pattern: pattern.SingleNode("n", ""), K: 2},
		{Pattern: pattern.SingleEdge("e", nil), K: 2},
		{Pattern: pattern.Clique("clq3", 3, nil), K: 2},
		{Pattern: pattern.Clique("clq3l", 3, []string{"l0", "l1", "l2"}), K: 2},
	}
	batch, err := CountMany(g, specs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(specs) {
		t.Fatalf("results = %d", len(batch))
	}
	for i, spec := range specs {
		want, err := Count(g, spec, NDPvot, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].NumMatches != want.NumMatches {
			t.Fatalf("spec %d: NumMatches %d want %d", i, batch[i].NumMatches, want.NumMatches)
		}
		for n := range want.Counts {
			if batch[i].Counts[n] != want.Counts[n] {
				t.Fatalf("spec %d node %d: %d want %d", i, n, batch[i].Counts[n], want.Counts[n])
			}
		}
	}
}

func TestCountManyWithFocalAndSubpattern(t *testing.T) {
	g := gen.ErdosRenyi(40, 90, 9)
	p := pattern.Clique("clq3", 3, nil)
	if err := p.AddSubpattern("corner", []int{0}); err != nil {
		t.Fatal(err)
	}
	focal := []graph.NodeID{0, 5, 9, 30}
	specs := []Spec{
		{Pattern: p, Subpattern: "corner", K: 1, Focal: focal},
		{Pattern: pattern.SingleEdge("e", nil), K: 1, Focal: focal},
	}
	batch, err := CountMany(g, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := Count(g, spec, NDPvot, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range focal {
			if batch[i].Counts[n] != want.Counts[n] {
				t.Fatalf("spec %d node %d: %d want %d", i, n, batch[i].Counts[n], want.Counts[n])
			}
		}
	}
}

func TestCountManyValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	if res, err := CountMany(g, nil, Options{}); err != nil || res != nil {
		t.Fatal("empty spec list should be a no-op")
	}
	mixedK := []Spec{
		{Pattern: pattern.SingleNode("n", ""), K: 1},
		{Pattern: pattern.SingleEdge("e", nil), K: 2},
	}
	if _, err := CountMany(g, mixedK, Options{}); err == nil {
		t.Fatal("mixed radii should error")
	}
	mixedFocal := []Spec{
		{Pattern: pattern.SingleNode("n", ""), K: 1},
		{Pattern: pattern.SingleEdge("e", nil), K: 1, Focal: []graph.NodeID{1}},
	}
	if _, err := CountMany(g, mixedFocal, Options{}); err == nil {
		t.Fatal("mixed focal sets should error")
	}
	bad := []Spec{{Pattern: nil, K: 1}}
	if _, err := CountMany(g, bad, Options{}); err == nil {
		t.Fatal("invalid spec should error")
	}
}

func TestCountManyNoMatches(t *testing.T) {
	g := gen.ErdosRenyi(15, 20, 3)
	specs := []Spec{
		{Pattern: pattern.Clique("clq6", 6, nil), K: 1},
		{Pattern: pattern.SingleNode("n", ""), K: 1},
	}
	batch, err := CountMany(g, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.NumNodes(); n++ {
		if batch[0].Counts[n] != 0 {
			t.Fatal("clq6 counts should be zero")
		}
		if batch[1].Counts[n] == 0 {
			t.Fatal("single-node counts should be positive")
		}
	}
}
