package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// The Stress tests exercise the MVCC contract under the race detector:
// census queries run concurrently with a mutating Writer, and every query
// must observe an internally consistent pinned snapshot — its counts must
// equal a from-scratch census over an independent deep copy of that
// snapshot's frozen view. CI runs them with -race -count=3.

func stressSeedGraph(t *testing.T, directed bool, nodes, edges int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(directed)
	g.AddNodes(nodes)
	for i := 0; i < edges; i++ {
		a := graph.NodeID(rng.Intn(nodes))
		b := graph.NodeID(rng.Intn(nodes))
		if a != b {
			g.AddEdge(a, b)
		}
	}
	gen.AssignLabels(g, 2, seed+1)
	return g
}

func TestStressConcurrentCensusWithWriter(t *testing.T) {
	const (
		nodes      = 30
		queries    = 4
		rounds     = 10
		maxBatches = 150 // bound the graph's growth so reference censuses stay cheap
	)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1}
	labeled := Spec{Pattern: pattern.Clique("lclq", 3, []string{"l0", "l0", "l1"}), K: 1}

	w := graph.NewWriter(stressSeedGraph(t, false, nodes, 60, 1))
	var stop atomic.Bool
	var readers, mutator sync.WaitGroup

	// Mutator: interleaved AddEdge / SetLabel / SetNodeAttr, publishing
	// small batches as fast as the readers can pin them.
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; !stop.Load() && i < maxBatches; i++ {
			for j := 0; j < 3; j++ {
				switch rng.Intn(4) {
				case 0:
					n := w.AddNode()
					w.SetLabel(n, fmt.Sprintf("l%d", rng.Intn(2)))
				case 1:
					w.SetLabel(graph.NodeID(rng.Intn(w.Stats().Nodes)), fmt.Sprintf("l%d", rng.Intn(2)))
				case 2:
					w.SetNodeAttr(graph.NodeID(rng.Intn(w.Stats().Nodes)), "touch", fmt.Sprint(i))
				default:
					a := graph.NodeID(rng.Intn(w.Stats().Nodes))
					b := graph.NodeID(rng.Intn(w.Stats().Nodes))
					if a != b {
						w.AddEdge(a, b)
					}
				}
			}
			if _, err := w.Publish(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for q := 0; q < queries; q++ {
		readers.Add(1)
		go func(q int) {
			defer readers.Done()
			alg := NDBas
			sp := spec
			if q%2 == 1 {
				alg = PTOpt
				sp = labeled
			}
			for r := 0; r < rounds; r++ {
				snap := w.Snapshot()
				got, err := CountSnapshot(snap, sp, alg, Options{Seed: 7})
				if err != nil {
					t.Errorf("query %d round %d: %v", q, r, err)
					return
				}
				// From-scratch reference over an independent deep copy of
				// the same pinned version.
				want, err := Count(snap.Graph().Clone(), sp, alg, Options{Seed: 7})
				if err != nil {
					t.Errorf("query %d round %d (reference): %v", q, r, err)
					return
				}
				if got.NumMatches != want.NumMatches || len(got.Counts) != len(want.Counts) {
					t.Errorf("query %d round %d epoch %d: matches %d vs %d, nodes %d vs %d",
						q, r, snap.Epoch(), got.NumMatches, want.NumMatches, len(got.Counts), len(want.Counts))
					return
				}
				for n := range got.Counts {
					if got.Counts[n] != want.Counts[n] {
						t.Errorf("query %d round %d epoch %d: node %d count %d, from-scratch %d",
							q, r, snap.Epoch(), n, got.Counts[n], want.Counts[n])
						return
					}
				}
			}
		}(q)
	}

	// The readers run a fixed round budget; the mutator loops until they
	// are done.
	readers.Wait()
	stop.Store(true)
	mutator.Wait()
}

func TestStressMaintainerFollowsWriter(t *testing.T) {
	const nodes = 24
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1}

	w := graph.NewWriter(stressSeedGraph(t, false, nodes, 30, 3))
	snap0 := w.Snapshot()

	var snaps sync.Map // epoch -> *graph.Snapshot
	snaps.Store(snap0.Epoch(), snap0)
	w.Subscribe(func(s *graph.Snapshot, _ graph.Delta) { snaps.Store(s.Epoch(), s) })

	mt := NewMaintainer(snap0)
	if err := mt.Register("clq3", spec, Options{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	stopMt := mt.Attach(w)
	defer stopMt()

	var wg sync.WaitGroup
	var published atomic.Uint64

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 40; i++ {
			for j := 0; j < 2; j++ {
				switch rng.Intn(6) {
				case 0:
					w.AddNode()
				case 1:
					// Label churn forces the maintainer's rebuild path.
					w.SetLabel(graph.NodeID(rng.Intn(w.Stats().Nodes)), fmt.Sprintf("l%d", rng.Intn(2)))
				default:
					a := graph.NodeID(rng.Intn(w.Stats().Nodes))
					b := graph.NodeID(rng.Intn(w.Stats().Nodes))
					if a != b {
						w.AddEdge(a, b)
					}
				}
			}
			s, err := w.Publish()
			if err != nil {
				t.Error(err)
				return
			}
			published.Store(s.Epoch())
		}
	}()

	// Verifier: repeatedly snapshot the maintained counts (atomically with
	// their epoch) and compare with a from-scratch census on the pinned
	// snapshot of exactly that epoch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 12; r++ {
			counts, epoch, err := mt.Counts("clq3")
			if err != nil {
				t.Error(err)
				return
			}
			sv, ok := snaps.Load(epoch)
			if !ok {
				t.Errorf("no recorded snapshot for epoch %d", epoch)
				return
			}
			want, err := CountSnapshot(sv.(*graph.Snapshot), spec, PTBas, Options{Seed: 7})
			if err != nil {
				t.Error(err)
				return
			}
			if len(counts) != len(want.Counts) {
				t.Errorf("epoch %d: maintained %d nodes, census %d", epoch, len(counts), len(want.Counts))
				return
			}
			for n := range counts {
				if counts[n] != want.Counts[n] {
					t.Errorf("epoch %d node %d: maintained %d, from-scratch %d", epoch, n, counts[n], want.Counts[n])
					return
				}
			}
		}
	}()

	wg.Wait()

	// Final convergence: catch up to the last published epoch and compare
	// exactly.
	last := published.Load()
	if ep, err := mt.CatchUp(last); err != nil || ep < last {
		t.Fatalf("catch-up: epoch %d err %v (want %d)", ep, err, last)
	}
	counts, epoch, err := mt.Counts("clq3")
	if err != nil || epoch < last {
		t.Fatalf("counts at %d (err %v), want >= %d", epoch, err, last)
	}
	sv, _ := snaps.Load(epoch)
	want, err := CountSnapshot(sv.(*graph.Snapshot), spec, PTBas, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for n := range counts {
		if counts[n] != want.Counts[n] {
			t.Fatalf("final epoch %d node %d: maintained %d, from-scratch %d", epoch, n, counts[n], want.Counts[n])
		}
	}
}

func TestStressLiveEngineQueriesDuringIngest(t *testing.T) {
	w := graph.NewWriter(stressSeedGraph(t, false, 30, 45, 5))
	e := NewEngineLive(w)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(6))
		for i := 0; !stop.Load() && i < 120; i++ {
			a := graph.NodeID(rng.Intn(w.Stats().Nodes))
			b := graph.NodeID(rng.Intn(w.Stats().Nodes))
			if a != b {
				w.AddEdge(a, b)
			}
			if rng.Intn(4) == 0 {
				n := w.AddNode()
				w.SetLabel(n, "l0")
			}
			if _, err := w.Publish(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const script = `PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes`
	var lastEpoch uint64
	for r := 0; r < 8; r++ {
		tables, err := e.Execute(script)
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("round %d: %v", r, err)
		}
		for _, tb := range tables {
			if tb.Epoch < lastEpoch {
				t.Errorf("round %d: epoch went backwards %d -> %d", r, lastEpoch, tb.Epoch)
			}
			lastEpoch = tb.Epoch
		}
		// Redefining the pattern next round would be an error; drop it.
		e2 := NewEngineLive(w)
		e = e2
	}
	stop.Store(true)
	wg.Wait()
}
