package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"egocensus/internal/gen"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
)

// TestParallelDeterminism verifies that the parallel counting phase is
// bit-for-bit identical to the sequential one: for every algorithm,
// Workers=1 and Workers=8 must produce the same Result.Counts on a seeded
// preferential-attachment graph. Run under -race by the soak suite, this
// also exercises the scratch pooling and per-worker merge paths for data
// races.
func TestParallelDeterminism(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 7)
	gen.AssignLabels(g, 3, 8)
	specs := []Spec{
		{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2},
		{Pattern: pattern.Chain("chain3", 3, []string{"l0", "l1", "l0"}), K: 1},
		{Pattern: pattern.CoordinatorTriad("triad"), Subpattern: "coordinator", K: 2},
	}
	for _, spec := range specs {
		for _, alg := range Algorithms {
			seq, err := Count(g, spec, alg, Options{Seed: 1, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", alg, spec.Pattern.Name, err)
			}
			par, err := Count(g, spec, alg, Options{Seed: 1, Workers: 8})
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", alg, spec.Pattern.Name, err)
			}
			if seq.NumMatches != par.NumMatches {
				t.Fatalf("%s/%s: NumMatches %d (1 worker) vs %d (8 workers)",
					alg, spec.Pattern.Name, seq.NumMatches, par.NumMatches)
			}
			for n := range seq.Counts {
				if seq.Counts[n] != par.Counts[n] {
					t.Fatalf("%s/%s: node %d = %d with 1 worker, %d with 8 workers",
						alg, spec.Pattern.Name, n, seq.Counts[n], par.Counts[n])
				}
			}
		}
	}
}

// TestMaskedMatchingEqualsExtraction pins the tentpole equivalence the
// ND-BAS rewrite relies on: matching inside the extracted ego subgraph
// equals masked matching on the parent graph, for labeled, unlabeled, and
// directed patterns.
func TestMaskedMatchingEqualsExtraction(t *testing.T) {
	und := gen.PreferentialAttachment(300, 4, 21)
	gen.AssignLabels(und, 3, 22)
	specs := []Spec{
		{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2},
		{Pattern: pattern.Clique("clq3u", 3, nil), K: 1},
		{Pattern: pattern.Star("star4", 4, []string{"l0", "l1", "l2", "l1"}), K: 2},
	}
	for _, spec := range specs {
		masked, err := Count(und, spec, NDBas, Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s masked: %v", spec.Pattern.Name, err)
		}
		// Forcing the GQL matcher (no EmbeddingsWithin) exercises the
		// extraction fallback.
		extracted, err := Count(und, spec, NDBas, Options{Matcher: match.GQL{}})
		if err != nil {
			t.Fatalf("%s extracted: %v", spec.Pattern.Name, err)
		}
		for n := range masked.Counts {
			if masked.Counts[n] != extracted.Counts[n] {
				t.Fatalf("%s: node %d = %d masked, %d extracted",
					spec.Pattern.Name, n, masked.Counts[n], extracted.Counts[n])
			}
		}
	}
}

// withStealDelay installs fn as the scheduler's steal-timing hook for the
// duration of the test. The hook is a package global, so tests using it
// must not run in parallel with each other.
func withStealDelay(t *testing.T, fn func(worker int)) {
	t.Helper()
	stealDelay = fn
	t.Cleanup(func() { stealDelay = nil })
}

// TestStealingDeterminismRandomTiming pins the scheduler's central
// contract: census tables are bit-identical regardless of which worker
// ends up running which item. Randomized sleeps and yields before every
// steal attempt perturb the chunk interleaving on each run; every
// algorithm at several worker counts must still reproduce the sequential
// counts exactly. The soak suite runs this under -race -count=3.
func TestStealingDeterminismRandomTiming(t *testing.T) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	withStealDelay(t, func(int) {
		mu.Lock()
		d := rng.Intn(60)
		mu.Unlock()
		if d < 30 {
			time.Sleep(time.Duration(d) * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	})
	g := gen.PreferentialAttachment(350, 4, 11)
	gen.AssignLabels(g, 3, 12)
	specs := []Spec{
		{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2},
		{Pattern: pattern.Clique("clq3u", 3, nil), K: 1},
		{Pattern: pattern.CoordinatorTriad("triad"), Subpattern: "coordinator", K: 2},
	}
	for _, spec := range specs {
		for _, alg := range Algorithms {
			seq, err := Count(g, spec, alg, Options{Seed: 1, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", alg, spec.Pattern.Name, err)
			}
			for _, w := range []int{3, 8} {
				par, err := Count(g, spec, alg, Options{Seed: 1, Workers: w})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", alg, spec.Pattern.Name, w, err)
				}
				if par.NumMatches != seq.NumMatches {
					t.Fatalf("%s/%s workers=%d: NumMatches %d, want %d",
						alg, spec.Pattern.Name, w, par.NumMatches, seq.NumMatches)
				}
				for n := range seq.Counts {
					if seq.Counts[n] != par.Counts[n] {
						t.Fatalf("%s/%s workers=%d: node %d = %d, want %d",
							alg, spec.Pattern.Name, w, n, par.Counts[n], seq.Counts[n])
					}
				}
			}
		}
	}
}

// TestStealingCancellationMidSteal cancels the query from inside the
// first steal attempt — the scheduler must drain promptly, return the
// typed cancellation error with a partial census, and never deadlock or
// corrupt counts. Steal attempts are guaranteed: every worker scans the
// other deques at least once while draining.
func TestStealingCancellationMidSteal(t *testing.T) {
	g := gen.PreferentialAttachment(400, 5, 13)
	gen.AssignLabels(g, 3, 14)
	spec := Spec{Pattern: pattern.Clique("clq3u", 3, nil), K: 1}
	full, err := Count(g, spec, NDBas, Options{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatalf("full census: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	withStealDelay(t, func(int) {
		once.Do(cancel)
		time.Sleep(50 * time.Microsecond)
	})
	res, err := CountContext(ctx, g, spec, NDBas, Options{Seed: 1, Workers: 8})
	if err == nil {
		t.Fatal("cancelled census returned no error")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CanceledError", err, err)
	}
	if ce.Partial == nil {
		t.Fatal("cancellation carried no partial census")
	}
	if res == nil || ce.Partial != res {
		t.Fatalf("error partial %p and returned result %p disagree", ce.Partial, res)
	}
	// ND-BAS focal slots are disjoint and written once: every slot of the
	// partial census is either untouched or the exact final count.
	for n, c := range ce.Partial.Counts {
		if c != 0 && c != full.Counts[n] {
			t.Fatalf("partial count for node %d = %d, want 0 or %d", n, c, full.Counts[n])
		}
	}
}

// TestEffectiveWorkers pins the one place worker counts are clamped.
func TestEffectiveWorkers(t *testing.T) {
	if got := EffectiveWorkers(0); got != 1 {
		t.Fatalf("EffectiveWorkers(0) = %d, want 1", got)
	}
	if got := EffectiveWorkers(-3); got != DefaultWorkers() {
		t.Fatalf("EffectiveWorkers(-3) = %d, want DefaultWorkers() = %d", got, DefaultWorkers())
	}
	if got := EffectiveWorkers(5); got != 5 {
		t.Fatalf("EffectiveWorkers(5) = %d, want 5", got)
	}
	if got := EffectiveWorkers(1 << 20); got != maxWorkers() {
		t.Fatalf("EffectiveWorkers(1<<20) = %d, want maxWorkers() = %d", got, maxWorkers())
	}
}

// TestBuildSchedule covers the scheduler's chunking directly: the chunks
// partition the descending-cost order exactly, and an item costlier than
// the chunk target is chunked alone so a hub never drags cheap neighbors
// behind it.
func TestBuildSchedule(t *testing.T) {
	costs := []int64{1, 1000, 3, 1, 900, 2, 1, 1, 5, 1, 1, 4}
	ord, chunks := buildSchedule(len(costs), 2, func(i int) int64 { return costs[i] })
	if len(ord) != len(costs) {
		t.Fatalf("order has %d items, want %d", len(ord), len(costs))
	}
	for i := 1; i < len(ord); i++ {
		if costs[ord[i-1]] < costs[ord[i]] {
			t.Fatalf("order not descending by cost at %d: %d before %d", i, costs[ord[i-1]], costs[ord[i]])
		}
	}
	seen := make([]bool, len(costs))
	last := int32(0)
	for _, c := range chunks {
		if c.start != last {
			t.Fatalf("chunk starts at %d, want %d (gap or overlap)", c.start, last)
		}
		last = c.end
		for idx := c.start; idx < c.end; idx++ {
			if seen[ord[idx]] {
				t.Fatalf("item %d scheduled twice", ord[idx])
			}
			seen[ord[idx]] = true
		}
	}
	if last != int32(len(costs)) {
		t.Fatalf("chunks end at %d, want %d", last, len(costs))
	}
	// The two hubs dominate the total, so each must sit in its own chunk
	// (they are the two costliest items, i.e. order positions 0 and 1).
	if chunks[0] != (chunk{0, 1}) || chunks[1] != (chunk{1, 2}) {
		t.Fatalf("hubs not isolated: chunks = %+v", chunks[:2])
	}
}

// TestParallelForHelpers covers the pool helpers directly: full coverage of
// the index space, worker clamping, and merge equivalence.
func TestParallelForHelpers(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		hits := make([]int64, 100)
		parallelFor(nil, workers, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallelFor(workers=%d): index %d visited %d times", workers, i, h)
			}
		}
		dst := make([]int64, 10)
		parallelMerge(nil, workers, 40, dst, func(w int, counts []int64, i int) {
			counts[i%10] += int64(i)
		})
		for i, v := range dst {
			want := int64(i + (i + 10) + (i + 20) + (i + 30))
			if v != want {
				t.Fatalf("parallelMerge(workers=%d): slot %d = %d, want %d", workers, i, v, want)
			}
		}
		seen := make([]int64, 25)
		parallelForWorker(nil, workers, len(seen), func(w, i int) { seen[i]++ })
		for i, h := range seen {
			if h != 1 {
				t.Fatalf("parallelForWorker(workers=%d): index %d visited %d times", workers, i, h)
			}
		}
	}
}
