package core

import (
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
)

// TestParallelDeterminism verifies that the parallel counting phase is
// bit-for-bit identical to the sequential one: for every algorithm,
// Workers=1 and Workers=8 must produce the same Result.Counts on a seeded
// preferential-attachment graph. Run under -race by the soak suite, this
// also exercises the scratch pooling and per-worker merge paths for data
// races.
func TestParallelDeterminism(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 7)
	gen.AssignLabels(g, 3, 8)
	specs := []Spec{
		{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2},
		{Pattern: pattern.Chain("chain3", 3, []string{"l0", "l1", "l0"}), K: 1},
		{Pattern: pattern.CoordinatorTriad("triad"), Subpattern: "coordinator", K: 2},
	}
	for _, spec := range specs {
		for _, alg := range Algorithms {
			seq, err := Count(g, spec, alg, Options{Seed: 1, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", alg, spec.Pattern.Name, err)
			}
			par, err := Count(g, spec, alg, Options{Seed: 1, Workers: 8})
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", alg, spec.Pattern.Name, err)
			}
			if seq.NumMatches != par.NumMatches {
				t.Fatalf("%s/%s: NumMatches %d (1 worker) vs %d (8 workers)",
					alg, spec.Pattern.Name, seq.NumMatches, par.NumMatches)
			}
			for n := range seq.Counts {
				if seq.Counts[n] != par.Counts[n] {
					t.Fatalf("%s/%s: node %d = %d with 1 worker, %d with 8 workers",
						alg, spec.Pattern.Name, n, seq.Counts[n], par.Counts[n])
				}
			}
		}
	}
}

// TestMaskedMatchingEqualsExtraction pins the tentpole equivalence the
// ND-BAS rewrite relies on: matching inside the extracted ego subgraph
// equals masked matching on the parent graph, for labeled, unlabeled, and
// directed patterns.
func TestMaskedMatchingEqualsExtraction(t *testing.T) {
	und := gen.PreferentialAttachment(300, 4, 21)
	gen.AssignLabels(und, 3, 22)
	specs := []Spec{
		{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"}), K: 2},
		{Pattern: pattern.Clique("clq3u", 3, nil), K: 1},
		{Pattern: pattern.Star("star4", 4, []string{"l0", "l1", "l2", "l1"}), K: 2},
	}
	for _, spec := range specs {
		masked, err := Count(und, spec, NDBas, Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s masked: %v", spec.Pattern.Name, err)
		}
		// Forcing the GQL matcher (no EmbeddingsWithin) exercises the
		// extraction fallback.
		extracted, err := Count(und, spec, NDBas, Options{Matcher: match.GQL{}})
		if err != nil {
			t.Fatalf("%s extracted: %v", spec.Pattern.Name, err)
		}
		for n := range masked.Counts {
			if masked.Counts[n] != extracted.Counts[n] {
				t.Fatalf("%s: node %d = %d masked, %d extracted",
					spec.Pattern.Name, n, masked.Counts[n], extracted.Counts[n])
			}
		}
	}
}

// TestParallelForHelpers covers the pool helpers directly: full coverage of
// the index space, worker clamping, and merge equivalence.
func TestParallelForHelpers(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		hits := make([]int64, 100)
		parallelFor(nil, workers, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallelFor(workers=%d): index %d visited %d times", workers, i, h)
			}
		}
		dst := make([]int64, 10)
		parallelMerge(nil, workers, 40, dst, func(w int, counts []int64, i int) {
			counts[i%10] += int64(i)
		})
		for i, v := range dst {
			want := int64(i + (i + 10) + (i + 20) + (i + 30))
			if v != want {
				t.Fatalf("parallelMerge(workers=%d): slot %d = %d, want %d", workers, i, v, want)
			}
		}
		seen := make([]int64, 25)
		parallelForWorker(nil, workers, len(seen), func(w, i int) { seen[i]++ })
		for i, h := range seen {
			if h != 1 {
				t.Fatalf("parallelForWorker(workers=%d): index %d visited %d times", workers, i, h)
			}
		}
	}
}
