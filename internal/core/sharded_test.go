package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"egocensus/internal/graph"
	"egocensus/internal/pattern"
	"egocensus/internal/plan"
)

// TestScheduleAffShardBoundaries pins the shard-affine schedule's shape:
// focal order groups shards ascending with cost-descending items inside
// each, chunks never straddle a shard boundary, and every chunk's home
// worker is its shard modulo the worker count.
func TestScheduleAffShardBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ n, workers, shards int }{
		{1, 1, 1}, {7, 2, 2}, {64, 4, 4}, {200, 3, 8}, {50, 8, 2}, {33, 5, 33},
	} {
		p := graph.NewPartitioner(tc.shards)
		cost := make([]int64, tc.n)
		for i := range cost {
			cost[i] = int64(1 + rng.Intn(100))
		}
		aff := &affinity{shards: tc.shards, shard: func(i int) int { return p.Shard(graph.NodeID(i)) }}
		ord, chunks, home := buildScheduleAff(tc.n, tc.workers, func(i int) int64 { return cost[i] }, aff)

		if len(ord) != tc.n {
			t.Fatalf("%+v: ord len %d", tc, len(ord))
		}
		seen := make([]bool, tc.n)
		for _, i := range ord {
			if seen[i] {
				t.Fatalf("%+v: ord repeats %d", tc, i)
			}
			seen[i] = true
		}
		prevShard := -1
		for k := 1; k < len(ord); k++ {
			a, b := int(ord[k-1]), int(ord[k])
			sa, sb := aff.shard(a), aff.shard(b)
			if sb < sa {
				t.Fatalf("%+v: shard order regresses at %d (%d after %d)", tc, k, sb, sa)
			}
			if sa == sb && cost[a] < cost[b] {
				t.Fatalf("%+v: cost order regresses inside shard %d", tc, sa)
			}
		}
		if len(home) != len(chunks) {
			t.Fatalf("%+v: %d homes for %d chunks", tc, len(home), len(chunks))
		}
		covered := 0
		for k, c := range chunks {
			if c.start >= c.end {
				t.Fatalf("%+v: empty chunk %d", tc, k)
			}
			s := aff.shard(int(ord[c.start]))
			for i := c.start; i < c.end; i++ {
				if got := aff.shard(int(ord[i])); got != s {
					t.Fatalf("%+v: chunk %d mixes shards %d and %d", tc, k, s, got)
				}
			}
			if home[k] != s%tc.workers {
				t.Fatalf("%+v: chunk %d home %d, want %d", tc, k, home[k], s%tc.workers)
			}
			covered += int(c.end - c.start)
			if s < prevShard {
				t.Fatalf("%+v: chunk shards out of order", tc)
			}
			prevShard = s
		}
		if covered != tc.n {
			t.Fatalf("%+v: chunks cover %d of %d items", tc, covered, tc.n)
		}
	}
}

// TestShardAffinityCensusParity runs every algorithm with and without a
// partitioner: affinity reroutes scheduling only, so counts are equal.
func TestShardAffinityCensusParity(t *testing.T) {
	g := stressSeedGraph(t, false, 60, 180, 17)
	specs := []Spec{
		{Pattern: pattern.Clique("clq3", 3, nil), K: 1},
		{Pattern: pattern.Clique("lclq", 3, []string{"l0", "l0", "l1"}), K: 1},
	}
	for _, alg := range Algorithms {
		for si, spec := range specs {
			want, err := Count(g, spec, alg, Options{Seed: 7, Workers: 4})
			if err != nil {
				t.Fatalf("%s spec %d: %v", alg, si, err)
			}
			for _, shards := range []int{1, 3, 4} {
				got, err := Count(g, spec, alg, Options{Seed: 7, Workers: 4, Partitioner: graph.NewPartitioner(shards)})
				if err != nil {
					t.Fatalf("%s spec %d P=%d: %v", alg, si, shards, err)
				}
				if got.NumMatches != want.NumMatches || !reflect.DeepEqual(got.Counts, want.Counts) {
					t.Fatalf("%s spec %d P=%d: affine census diverges (matches %d vs %d)",
						alg, si, shards, got.NumMatches, want.NumMatches)
				}
			}
		}
	}
}

// TestStressShardedCensusDuringIngest is the sharded twin of
// TestStressConcurrentCensusWithWriter: census queries (scheduled
// shard-affinely through the writer's partitioner) run against pinned
// snapshots while four shard lanes ingest concurrently, and every result
// must match a from-scratch census on an independent copy.
func TestStressShardedCensusDuringIngest(t *testing.T) {
	const (
		shards     = 4
		nodes      = 30
		queries    = 4
		rounds     = 8
		maxBatches = 120
	)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1}
	labeled := Spec{Pattern: pattern.Clique("lclq", 3, []string{"l0", "l0", "l1"}), K: 1}

	w := graph.NewShardedWriter(stressSeedGraph(t, false, nodes, 60, 8), shards)
	var stop atomic.Bool
	var readers, mutator sync.WaitGroup

	mutator.Add(1)
	go func() {
		defer mutator.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; !stop.Load() && i < maxBatches; i++ {
			for j := 0; j < 3; j++ {
				switch rng.Intn(4) {
				case 0:
					n := w.AddNode()
					w.SetLabel(n, fmt.Sprintf("l%d", rng.Intn(2)))
				case 1:
					w.SetLabel(graph.NodeID(rng.Intn(w.Stats().Nodes)), fmt.Sprintf("l%d", rng.Intn(2)))
				case 2:
					w.SetNodeAttr(graph.NodeID(rng.Intn(w.Stats().Nodes)), "touch", fmt.Sprint(i))
				default:
					a := graph.NodeID(rng.Intn(w.Stats().Nodes))
					b := graph.NodeID(rng.Intn(w.Stats().Nodes))
					if a != b {
						w.AddEdge(a, b)
					}
				}
			}
			if _, err := w.Publish(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for q := 0; q < queries; q++ {
		readers.Add(1)
		go func(q int) {
			defer readers.Done()
			alg := NDBas
			sp := spec
			if q%2 == 1 {
				alg = PTOpt
				sp = labeled
			}
			for r := 0; r < rounds; r++ {
				snap := w.Snapshot()
				got, err := CountSnapshot(snap, sp, alg, Options{Seed: 7, Partitioner: w.Partitioner()})
				if err != nil {
					t.Errorf("query %d round %d: %v", q, r, err)
					return
				}
				want, err := Count(snap.Graph().Clone(), sp, alg, Options{Seed: 7})
				if err != nil {
					t.Errorf("query %d round %d (reference): %v", q, r, err)
					return
				}
				if got.NumMatches != want.NumMatches || !reflect.DeepEqual(got.Counts, want.Counts) {
					t.Errorf("query %d round %d epoch %d: sharded census diverges (matches %d vs %d)",
						q, r, snap.Epoch(), got.NumMatches, want.NumMatches)
					return
				}
			}
		}(q)
	}

	readers.Wait()
	stop.Store(true)
	mutator.Wait()
}

// TestEngineInjectsSourcePartitioner checks the engine picks up the
// partitioner from a sharded source — and leaves an explicit option
// alone.
func TestEngineInjectsSourcePartitioner(t *testing.T) {
	g := stressSeedGraph(t, false, 30, 60, 12)
	w := graph.NewShardedWriter(g.Clone(), 4)
	e := NewEngineLiveSharded(w)
	if got := e.optionsFor().Partitioner; !got.Enabled() || got.Shards() != 4 {
		t.Fatalf("injected partitioner: enabled=%v shards=%d", got.Enabled(), got.Shards())
	}
	// An explicit option wins over the source's.
	e.Opt.Partitioner = graph.NewPartitioner(2)
	if got := e.optionsFor().Partitioner; got.Shards() != 2 {
		t.Fatalf("explicit partitioner overridden: shards=%d", got.Shards())
	}
	e.Opt.Partitioner = graph.Partitioner{}

	// Unsharded live engines stay unaffine.
	plainW := graph.NewWriter(g.Clone())
	if got := NewEngineLive(plainW).optionsFor().Partitioner; got.Enabled() {
		t.Fatal("plain writer source injected a partitioner")
	}

	// End to end: the sharded engine's results match an unsharded engine
	// over the same graph.
	const script = `PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes`
	want, err := NewEngine(g).Execute(script)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(script)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0].Rows, want[0].Rows) {
		t.Fatal("sharded engine rows differ from unsharded engine")
	}
}

// TestShardedWriterSourceStats checks the shard-parallel statistics
// aggregation matches the sequential computation, memoized per epoch.
func TestShardedWriterSourceStats(t *testing.T) {
	w := graph.NewShardedWriter(stressSeedGraph(t, false, 50, 150, 14), 4)
	src := plan.FromShardedWriter(w)
	snap := src.Snapshot()
	got, err := src.StatsAt(snap)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ComputeStats(snap.Graph())
	want.Epoch = snap.Epoch()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded stats diverge:\ngot  %+v\nwant %+v", got, want)
	}
	again, err := src.StatsAt(snap)
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("same-epoch stats were recomputed, not memoized")
	}

	// A publish advances the epoch and refreshes the memo.
	w.AddNodes(3)
	if _, err := w.Publish(); err != nil {
		t.Fatal(err)
	}
	snap2 := src.Snapshot()
	got2, err := src.StatsAt(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Epoch != snap2.Epoch() || got2.Nodes != want.Nodes+3 {
		t.Fatalf("post-publish stats: %+v", got2)
	}
}

// TestPreparedConcurrentPrepareStampede prepares the same statement from
// many goroutines at once: every caller must get a working Prepared, and
// the plan cache must converge on exactly one entry for the fingerprint.
func TestPreparedConcurrentPrepareStampede(t *testing.T) {
	e := NewEngine(preparedTestGraph(t))
	if err := e.DefinePattern(pattern.Clique("tri", 3, nil)); err != nil {
		t.Fatal(err)
	}
	const src = `SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k`

	const callers = 8
	var wg sync.WaitGroup
	rows := make([][][]string, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p, err := e.Prepare(src)
			if err != nil {
				errs[c] = err
				return
			}
			tb, err := p.Execute(map[string]string{"k": "odd"})
			if err != nil {
				errs[c] = err
				return
			}
			rows[c] = tb.Rows
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", c, err)
		}
	}
	for c := 1; c < callers; c++ {
		if !reflect.DeepEqual(rows[c], rows[0]) {
			t.Fatalf("caller %d rows diverge from caller 0", c)
		}
	}
	if n := e.plans().Len(); n != 1 {
		t.Fatalf("plan cache holds %d entries after stampede, want 1", n)
	}
}
