package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/pattern"
)

// This file is the render layer of the query pipeline: ORDER BY/LIMIT
// post-processing and formatting of typed rows into string cells.

// finishTable applies ORDER BY and LIMIT, then renders the string cells.
func finishTable(g *graph.Graph, q *lang.SelectStmt, t *Table) {
	if q.Order != nil {
		ob := q.Order
		// keyCmp compares the ORDER BY key only; equal keys fall through
		// to an ascending focal-ID tie-break regardless of direction.
		keyCmp := func(a, b Row) int {
			if ob.ByCount {
				switch {
				case a.Count < b.Count:
					return -1
				case a.Count > b.Count:
					return 1
				}
				return 0
			}
			av := columnValue(g, q, a, ob.Col)
			bv := columnValue(g, q, b, ob.Col)
			if av == bv {
				return 0
			}
			if pattern.Compare(pattern.OpLt, av, bv) {
				return -1
			}
			return 1
		}
		sort.SliceStable(t.TypedRows, func(i, j int) bool {
			a, b := t.TypedRows[i], t.TypedRows[j]
			c := keyCmp(a, b)
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			for x := range a.Focal {
				if a.Focal[x] != b.Focal[x] {
					return a.Focal[x] < b.Focal[x]
				}
			}
			return false
		})
	}
	if q.Limit > 0 && len(t.TypedRows) > q.Limit {
		t.TypedRows = t.TypedRows[:q.Limit]
	}
	t.Rows = t.Rows[:0]
	for _, row := range t.TypedRows {
		t.Rows = append(t.Rows, renderRow(g, q, row))
	}
}

// columnValue resolves a column reference for one row (as in renderRow).
func columnValue(g *graph.Graph, q *lang.SelectStmt, row Row, ref lang.ColumnRef) string {
	n := row.Focal[0]
	if ref.Alias != "" {
		for i, a := range q.Aliases {
			if a == ref.Alias && i < len(row.Focal) {
				n = row.Focal[i]
				break
			}
		}
	}
	if strings.EqualFold(ref.Name, "ID") {
		return strconv.Itoa(int(n))
	}
	v, _ := g.NodeAttr(n, ref.Name)
	return v
}

func header(q *lang.SelectStmt) []string {
	var h []string
	for _, it := range q.Items {
		if it.Col != nil {
			h = append(h, it.Col.String())
			continue
		}
		if it.Count.Subpattern != "" {
			h = append(h, fmt.Sprintf("COUNTSP(%s, %s)", it.Count.Subpattern, it.Count.PatternName))
		} else {
			h = append(h, fmt.Sprintf("COUNTP(%s)", it.Count.PatternName))
		}
	}
	return h
}

// renderRow formats each SELECT item for one result row.
func renderRow(g *graph.Graph, q *lang.SelectStmt, row Row) []string {
	aliasNode := func(alias string) graph.NodeID {
		if alias == "" {
			return row.Focal[0]
		}
		for i, a := range q.Aliases {
			if a == alias && i < len(row.Focal) {
				return row.Focal[i]
			}
		}
		return row.Focal[0]
	}
	var out []string
	aggIdx := 0
	for _, it := range q.Items {
		if it.Count != nil {
			v := row.Count
			if row.Counts != nil && aggIdx < len(row.Counts) {
				v = row.Counts[aggIdx]
			}
			aggIdx++
			out = append(out, strconv.FormatInt(v, 10))
			continue
		}
		n := aliasNode(it.Col.Alias)
		if strings.EqualFold(it.Col.Name, "ID") {
			out = append(out, strconv.Itoa(int(n)))
			continue
		}
		v, _ := g.NodeAttr(n, it.Col.Name)
		out = append(out, v)
	}
	return out
}

// FormatTable renders a result table as aligned text.
func FormatTable(t *Table) string {
	var b strings.Builder
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
