package core

import (
	"math/rand"

	"egocensus/internal/centers"
	"egocensus/internal/graph"
	"egocensus/internal/kmeans"
	"egocensus/internal/pattern"
)

// countPTDriven is the optimized pattern-driven algorithm of Section IV-B
// (Algorithm 4 plus match clustering): matches are clustered by their
// center-distance feature vectors, and each cluster is processed with one
// simultaneous traversal that computes, for every node near the cluster,
// its distance to every anchor node — initialized with pattern-distance
// shortcuts and center-based triangle-inequality bounds, and driven in
// best-first order by an O(1) array bucket queue (or random order for the
// PT-RND ablation).
//
//egolint:deterministic census drivers must be bit-identical across runs, algorithms, and worker counts
func countPTDriven(g *graph.Graph, spec Spec, opt Options, randomOrder bool, gd *guard) (*Result, error) {
	matches, err := globalMatchesGuarded(g, spec, opt, gd)
	if err != nil {
		return nil, err
	}
	counts, err := ptCensusOnMatches(g, spec, opt, matches, randomOrder, gd)
	res := &Result{Counts: counts, NumMatches: len(matches)}
	if err != nil {
		return nil, err
	}
	return res, gd.failure(res, nil)
}

// ptCensusOnMatches runs the pattern-driven counting phase over an
// explicit match list (used by the exact algorithms and by the sampling
// approximation). Clusters are processed in parallel when Options.Workers
// exceeds one.
func ptCensusOnMatches(g *graph.Graph, spec Spec, opt Options, matches []pattern.Match, randomOrder bool, gd *guard) ([]int64, error) {
	counts := make([]int64, g.NumNodes())
	gd.chargeMem(int64(g.NumNodes()) * 8)
	if len(matches) == 0 || gd.stopped() {
		return counts, nil
	}
	anchorIdx := spec.anchorNodes()
	focal := spec.focalSet(g)
	pmdCenters, clusterCenters := resolveCenters(g, opt)
	clusters := clusterMatches(g, spec, opt, matches, anchorIdx, clusterCenters, gd)

	// Pattern distances for the shortcut initialization.
	pdist := spec.Pattern.Distances()
	prepare(g)

	// Each worker owns a lazily created traversal with a private rng; the
	// per-worker count vectors (cluster membership passes may touch any
	// node) are summed by parallelMerge, so any worker count yields the
	// same census. Clusters are the focal units for cancellation and
	// progress; the traversal ticks the guard inside its expansion loop so
	// large clusters stay responsive.
	gd.setFocalTotal(len(clusters))
	trs := make([]*traversal, opt.workers())
	// Cluster cost for the work-stealing schedule: one simultaneous
	// traversal per cluster, driven by the number of member matches.
	clusterCost := func(ci int) int64 { return int64(len(clusters[ci])) }
	parallelMergeCost(gd, opt.workers(), len(clusters), clusterCost, counts, func(w int, dst []int64, ci int) {
		tr := trs[w]
		if tr == nil {
			tr = &traversal{
				g:           g,
				k:           spec.K,
				pmdCenters:  pmdCenters,
				randomOrder: randomOrder,
				noShortcuts: opt.DisableShortcuts,
				rng:         rand.New(rand.NewSource(opt.Seed + 1 + int64(w))),
				gd:          gd,
			}
			trs[w] = tr
		}
		tr.processCluster(matches, clusters[ci], anchorIdx, pdist, focal, dst)
	})
	return counts, nil
}

// resolveCenters builds the PMD and clustering center indexes per the
// options (shared by default).
func resolveCenters(g *graph.Graph, opt Options) (pmd, cluster *centers.Index) {
	pmd = opt.PMDCenters
	cluster = opt.ClusterCenters
	if pmd == nil && cluster == nil {
		shared := centers.Build(g, opt.numCenters(), opt.CenterStrategy, opt.Seed)
		return shared, shared
	}
	if pmd == nil {
		pmd = centers.Build(g, opt.numCenters(), opt.CenterStrategy, opt.Seed)
	}
	if cluster == nil {
		cluster = pmd
	}
	return pmd, cluster
}

// clusterMatches groups match indices per Section IV-B5: K-means over
// F(M) = <d(c_i, m_j)> feature vectors (OPT-CLUST), uniform random
// assignment (RND-CLUST), or one singleton cluster per match (NO-CLUST).
// The paper's default cluster count is |M|/4.
func clusterMatches(g *graph.Graph, spec Spec, opt Options, matches []pattern.Match, anchorIdx []int, clusterCenters *centers.Index, gd *guard) [][]int {
	n := len(matches)
	if opt.NoClustering || n == 1 || (clusterCenters.Len() == 0 && !opt.RandomClustering) {
		out := make([][]int, n)
		for i := range out {
			out[i] = []int{i}
		}
		return out
	}
	k := opt.Clusters
	if k <= 0 {
		k = n / 4
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	var assign []int
	if opt.RandomClustering {
		assign = kmeans.RandomAssign(n, k, opt.Seed+2)
	} else {
		// Feature extraction and the K-means sweeps both scale with
		// |M|·k·|centers| — the dominant pre-counting cost — so each polls
		// the guard; on a stop the counting loop below sees the flag and
		// the caller abandons before processing any cluster.
		feats := make([][]float64, n)
		nc := clusterCenters.Len()
		gd.chargeMem(int64(n) * int64(nc*len(anchorIdx)) * 8)
		tk := ticker{gd: gd}
		for i, m := range matches {
			if tk.tick() != nil {
				break
			}
			f := make([]float64, 0, nc*len(anchorIdx))
			for c := 0; c < nc; c++ {
				for _, idx := range anchorIdx {
					d := clusterCenters.FromCenter(c, m[idx])
					if d < 0 {
						d = int32(g.NumNodes()) // unreachable sentinel
					}
					f = append(f, float64(d))
				}
			}
			feats[i] = f
		}
		if gd.stopped() {
			out := make([][]int, n)
			for i := range out {
				out[i] = []int{i}
			}
			return out
		}
		assign = kmeans.ClusterStop(feats, k, opt.kmeansIters(), opt.Seed+3, gd.stopFunc()).Assign
	}
	groups := make(map[int][]int)
	for i, c := range assign {
		groups[c] = append(groups[c], i)
	}
	out := make([][]int, 0, len(groups))
	for c := 0; c < k; c++ {
		if g, ok := groups[c]; ok {
			out = append(out, g)
		}
	}
	return out
}

// traversal carries the per-run state of the simultaneous expansion.
type traversal struct {
	g           *graph.Graph
	k           int
	pmdCenters  *centers.Index
	randomOrder bool
	noShortcuts bool
	rng         *rand.Rand
	gd          *guard
}

// processCluster runs one simultaneous traversal around all matches of the
// cluster and increments counts for every focal node whose k-hop
// neighborhood contains some match's full anchor set.
func (tr *traversal) processCluster(matches []pattern.Match, cluster []int, anchorIdx []int, pdist [][]int, focal []bool, counts []int64) {
	pmd, anchorPos := tr.computePMD(matches, cluster, anchorIdx, pdist)
	k := tr.k
	// Membership pass: a node gets one count per match whose anchors are
	// all within k.
	tk := ticker{gd: tr.gd}
	for n, v := range pmd {
		if tk.tick() != nil {
			return
		}
		if focal != nil && !focal[n] {
			continue
		}
		for _, mi := range cluster {
			m := matches[mi]
			inside := true
			for _, idx := range anchorIdx {
				if v[anchorPos[m[idx]]] > int32(k) {
					inside = false
					break
				}
			}
			if inside {
				counts[n]++
			}
		}
	}
}

// computePMD runs the simultaneous best-first (or random-order) traversal
// for one cluster of matches and returns, for every touched node, the
// vector of capped distances to each distinct anchor node of the cluster.
func (tr *traversal) computePMD(matches []pattern.Match, cluster []int, anchorIdx []int, pdist [][]int) (map[graph.NodeID][]int32, map[graph.NodeID]int) {
	g, k := tr.g, tr.k
	cap16 := int32(k + 1)

	// Collect the distinct anchor nodes of the cluster.
	anchorPos := make(map[graph.NodeID]int)
	var anchors []graph.NodeID
	for _, mi := range cluster {
		for _, idx := range anchorIdx {
			n := matches[mi][idx]
			if _, ok := anchorPos[n]; !ok {
				anchorPos[n] = len(anchors)
				anchors = append(anchors, n)
			}
		}
	}
	na := len(anchors)

	// Precompute d(anchor_i, c) for the center-based bounds.
	nc := tr.pmdCenters.Len()
	var anchorCenter [][]int32
	if nc > 0 {
		anchorCenter = make([][]int32, na)
		for i, a := range anchors {
			row := make([]int32, nc)
			for c := 0; c < nc; c++ {
				d := tr.pmdCenters.FromCenter(c, a)
				if d < 0 || d > cap16 {
					d = cap16
				}
				row[c] = d
			}
			anchorCenter[i] = row
		}
	}

	// pmd[n][i] = capped upper bound on d(n, anchors[i]). The map is the
	// traversal's dominant allocation, so every vector is charged against
	// the memory budget as it is created.
	pmd := make(map[graph.NodeID][]int32, 256)
	vecBytes := int64(na)*4 + 48 // vector payload + map entry overhead
	newVec := func() []int32 {
		tr.gd.chargeMem(vecBytes)
		v := make([]int32, na)
		for i := range v {
			v[i] = cap16
		}
		return v
	}

	// Distance shortcuts: within each match, pattern distances bound the
	// image distances (Section IV-B2). With shortcuts disabled (ablation)
	// every anchor still seeds its own zero distance.
	for _, mi := range cluster {
		m := matches[mi]
		for _, xi := range anchorIdx {
			a := m[xi]
			va, ok := pmd[a]
			if !ok {
				va = newVec()
				pmd[a] = va
			}
			if tr.noShortcuts {
				va[anchorPos[a]] = 0
				continue
			}
			for _, yi := range anchorIdx {
				b := m[yi]
				d := int32(pdist[xi][yi])
				if d > cap16 {
					d = cap16
				}
				if pos := anchorPos[b]; d < va[pos] {
					va[pos] = d
				}
			}
		}
	}

	// Center-based seeding: centers enter the queue with exact distances,
	// so they are never reinserted (Section IV-B4).
	if nc > 0 {
		for c := 0; c < nc; c++ {
			cn := tr.pmdCenters.Centers[c]
			vc, ok := pmd[cn]
			if !ok {
				vc = newVec()
				pmd[cn] = vc
			}
			for i := range anchors {
				d := anchorCenter[i][c]
				if d < vc[i] {
					vc[i] = d
				}
			}
		}
	}

	score := func(v []int32) int {
		s := 0
		for _, d := range v {
			s += int(d)
		}
		return s
	}

	q := newQueue(tr.randomOrder, (k+1)*na, tr.rng)
	for n, v := range pmd {
		q.push(n, score(v))
	}

	tk := ticker{gd: tr.gd}
	for {
		if tk.tick() != nil {
			return pmd, anchorPos
		}
		n, ok := q.pop()
		if !ok {
			break
		}
		vn := pmd[n]
		// Expand only when the node can still improve something: some
		// anchor distance < k means neighbors may be within k.
		expand := false
		for _, d := range vn {
			if d < int32(k) {
				expand = true
				break
			}
		}
		if !expand {
			continue
		}
		for _, h := range g.Out(n) {
			tr.relax(n, h.To, vn, pmd, anchorCenter, nc, cap16, newVec, score, q)
		}
		if g.Directed() {
			for _, h := range g.In(n) {
				tr.relax(n, h.To, vn, pmd, anchorCenter, nc, cap16, newVec, score, q)
			}
		}
	}

	return pmd, anchorPos
}

// relax propagates distance bounds from n to its neighbor nb, applying the
// center-based triangle-inequality bound on first touch, and requeues nb
// when any bound improved.
func (tr *traversal) relax(n, nb graph.NodeID, vn []int32, pmd map[graph.NodeID][]int32, anchorCenter [][]int32, nc int, cap16 int32, newVec func() []int32, score func([]int32) int, q queue) {
	if nb == n {
		return
	}
	vb, seen := pmd[nb]
	improved := false
	if !seen {
		vb = newVec()
		// First touch: PMD_m[n'] = min(PMD_m[n]+1, min_c d(m,c)+d(c,n')).
		for i := range vb {
			best := vn[i] + 1
			if best > cap16 {
				best = cap16
			}
			for c := 0; c < nc; c++ {
				dcn := tr.pmdCenters.FromCenter(c, nb)
				if dcn < 0 {
					continue
				}
				if b := anchorCenter[i][c] + dcn; b < best {
					best = b
				}
			}
			if best < cap16 {
				improved = true
			}
			vb[i] = best
		}
		pmd[nb] = vb
		if improved {
			q.push(nb, score(vb))
		}
		return
	}
	for i := range vb {
		if d := vn[i] + 1; d < vb[i] {
			vb[i] = d
			improved = true
		}
	}
	if improved {
		q.push(nb, score(vb))
	}
}

// queue abstracts the traversal ordering: an array bucket priority queue
// for best-first order (O(1) push/pop because scores are bounded by
// (k+1)|V_P|, Section IV-B3) or a uniform random queue for PT-RND.
type queue interface {
	push(n graph.NodeID, score int)
	pop() (graph.NodeID, bool)
}

func newQueue(random bool, maxScore int, rng *rand.Rand) queue {
	if random {
		return &randomQueue{rng: rng, in: map[graph.NodeID]bool{}}
	}
	return &bucketQueue{buckets: make([][]graph.NodeID, maxScore+1), latest: map[graph.NodeID]int{}}
}

// bucketQueue stores nodes in an array indexed by score; stale entries
// (score no longer current) are skipped lazily at pop time.
type bucketQueue struct {
	buckets [][]graph.NodeID
	latest  map[graph.NodeID]int
	low     int
	size    int
}

func (q *bucketQueue) push(n graph.NodeID, score int) {
	if score < 0 {
		score = 0
	}
	if score >= len(q.buckets) {
		score = len(q.buckets) - 1
	}
	q.latest[n] = score
	q.buckets[score] = append(q.buckets[score], n)
	q.size++
	if score < q.low {
		q.low = score
	}
}

func (q *bucketQueue) pop() (graph.NodeID, bool) {
	for q.size > 0 {
		for q.low < len(q.buckets) && len(q.buckets[q.low]) == 0 {
			q.low++
		}
		if q.low >= len(q.buckets) {
			q.size = 0
			return 0, false
		}
		b := q.buckets[q.low]
		n := b[len(b)-1]
		q.buckets[q.low] = b[:len(b)-1]
		q.size--
		if cur, ok := q.latest[n]; ok && cur == q.low {
			delete(q.latest, n)
			return n, true
		}
		// stale entry: the node was reinserted with a better score
	}
	return 0, false
}

// randomQueue pops a uniformly random pending node (the PT-RND ablation).
type randomQueue struct {
	items []graph.NodeID
	in    map[graph.NodeID]bool
	rng   *rand.Rand
}

func (q *randomQueue) push(n graph.NodeID, score int) {
	if q.in[n] {
		return
	}
	q.in[n] = true
	q.items = append(q.items, n)
}

func (q *randomQueue) pop() (graph.NodeID, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	i := q.rng.Intn(len(q.items))
	n := q.items[i]
	q.items[i] = q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	delete(q.in, n)
	return n, true
}
