package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// The cancellation graph is sized so that every census driver runs for
// many seconds on the triangle census below — a cancel fired shortly after
// the start always lands mid-evaluation. It is built once and shared
// read-only across the tests in this file.
var (
	cancelGraphOnce sync.Once
	cancelGraph     *graph.Graph
)

func cancellationGraph() *graph.Graph {
	cancelGraphOnce.Do(func() {
		cancelGraph = gen.PreferentialAttachment(4000, 10, 1)
		prepare(cancelGraph)
	})
	return cancelGraph
}

func triangleSpec() Spec {
	return Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 2}
}

// cancelBound is how long after the cancel a driver may keep running: one
// epoch of wind-down per worker plus scheduling slack.
const cancelBound = 250 * time.Millisecond

// assertCanceled checks the typed-error contract of a canceled evaluation:
// a *CanceledError unwrapping to context.Canceled, returned within
// cancelBound of the cancel.
func assertCanceled(t *testing.T, err error, start time.Time, delay time.Duration) *CanceledError {
	t.Helper()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("evaluation finished (in %v) instead of observing the cancel at %v", elapsed, delay)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T (%v), want *CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false (cause %v)", ce.Cause)
	}
	if budget := delay + cancelBound; elapsed > budget {
		t.Fatalf("returned %v after the cancel, want <= %v", elapsed-delay, cancelBound)
	}
	return ce
}

func TestCancellationAllAlgorithms(t *testing.T) {
	g := cancellationGraph()
	spec := triangleSpec()
	const delay = 100 * time.Millisecond
	for _, alg := range Algorithms {
		t.Run(string(alg), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			time.AfterFunc(delay, cancel)
			start := time.Now()
			_, err := CountContext(ctx, g, spec, alg, Options{Workers: 2})
			ce := assertCanceled(t, err, start, delay)
			if ce.Progress.Elapsed <= 0 {
				t.Errorf("progress snapshot missing elapsed time: %+v", ce.Progress)
			}
		})
	}
}

func TestCancellationPairwise(t *testing.T) {
	g := cancellationGraph()
	const delay = 100 * time.Millisecond
	for _, tc := range []struct {
		name string
		mode PairMode
	}{
		{"INTERSECTION", Intersection},
		{"UNION", Union},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := PairSpec{Spec: triangleSpec(), Mode: tc.mode}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			time.AfterFunc(delay, cancel)
			start := time.Now()
			_, err := CountPairsContext(ctx, g, spec, PTOpt, Options{Workers: 2})
			assertCanceled(t, err, start, delay)
		})
	}
}

func TestDeadlineLimit(t *testing.T) {
	g := cancellationGraph()
	const deadline = 50 * time.Millisecond
	opt := Options{Workers: 2, Limits: Limits{Deadline: deadline}}
	start := time.Now()
	_, err := Count(g, triangleSpec(), NDBas, opt)
	elapsed := time.Since(start)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T (%v), want *CanceledError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false (cause %v)", ce.Cause)
	}
	if budget := deadline + cancelBound; elapsed > budget {
		t.Fatalf("returned %v after the deadline, want <= %v", elapsed-deadline, cancelBound)
	}
}

func TestMaxMatchesLimit(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 3)
	opt := Options{Limits: Limits{MaxMatches: 5}}
	_, err := Count(g, triangleSpec(), PTBas, opt)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T (%v), want *LimitError", err, err)
	}
	if le.Limit != "max-matches" {
		t.Fatalf("limit = %q, want max-matches", le.Limit)
	}
	if le.Actual <= le.Value {
		t.Fatalf("actual %d should exceed value %d", le.Actual, le.Value)
	}
}

func TestMemoryBudgetLimit(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 3)
	opt := Options{Limits: Limits{MemoryBudget: 64}}
	_, err := Count(g, triangleSpec(), PTBas, opt)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T (%v), want *LimitError", err, err)
	}
	if le.Limit != "memory-budget" {
		t.Fatalf("limit = %q, want memory-budget", le.Limit)
	}
}

func TestEngineRowLimitPartialTable(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 3)
	e := NewEngine(g)
	e.Opt.Limits = Limits{MaxResultRows: 5}
	_, err := e.Execute(`
		PATTERN t { ?A-?B; ?B-?C; ?A-?C; }
		SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes;`)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T (%v), want *LimitError", err, err)
	}
	if le.Limit != "max-result-rows" {
		t.Fatalf("limit = %q, want max-result-rows", le.Limit)
	}
	if le.PartialTable == nil {
		t.Fatal("no partial table attached")
	}
	if n := len(le.PartialTable.Rows); n == 0 || n > 5 {
		t.Fatalf("partial table has %d rendered rows, want 1..5", n)
	}
}

func TestEngineCancelTypedError(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 2)
	e := NewEngine(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before execution even starts
	_, err := e.ExecuteContext(ctx, `
		PATTERN t { ?A-?B; ?B-?C; ?A-?C; }
		SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes;`)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T (%v), want *CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false (cause %v)", ce.Cause)
	}
}

// panicMatcher simulates a bug inside match enumeration.
type panicMatcher struct{}

func (panicMatcher) Name() string { return "PANIC" }
func (panicMatcher) Embeddings(*graph.Graph, *pattern.Pattern) []pattern.Match {
	panic("boom: injected matcher failure")
}

func TestEnginePanicToInternalError(t *testing.T) {
	g := gen.ErdosRenyi(50, 120, 2)
	e := NewEngine(g)
	e.Alg = PTBas
	e.Opt.Matcher = panicMatcher{}
	_, err := e.Execute(`
		PATTERN t { ?A-?B; ?B-?C; ?A-?C; }
		SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes;`)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T (%v), want *InternalError", err, err)
	}
	if ie.Panic != "boom: injected matcher failure" {
		t.Fatalf("panic value = %v", ie.Panic)
	}
	if ie.Query == "" || ie.Plan == "" {
		t.Fatalf("internal error missing context: query=%q plan=%q", ie.Query, ie.Plan)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("internal error missing stack")
	}
}

func TestWorkerPanicForwarded(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was not rethrown on the coordinating goroutine")
		}
		wp, ok := r.(*workerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *workerPanic", r, r)
		}
		if wp.val != "worker boom" {
			t.Fatalf("panic value = %v", wp.val)
		}
		if len(wp.stack) == 0 {
			t.Fatal("worker panic lost its stack")
		}
	}()
	parallelFor(nil, 4, 100, func(i int) {
		if i == 17 {
			panic("worker boom")
		}
	})
}
