package core

import (
	"container/list"
	"sort"
	"strings"
	"sync"

	"egocensus/internal/lang"
)

// resultKey identifies one cached census result: the query fingerprint,
// the snapshot epoch it ran against, the engine configuration, the RND()
// seed (sampling predicates are seed-deterministic), and the canonical
// parameter bindings. A Writer publish advances the epoch, so results
// computed on superseded versions stop hitting and age out — the cache
// never needs explicit invalidation.
type resultKey struct {
	fp     lang.Fingerprint
	epoch  uint64
	config uint64
	seed   int64
	params string
}

// canonicalParams flattens parameter bindings into a deterministic string
// for cache keying.
func canonicalParams(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(name)
		b.WriteByte(0)
		b.WriteString(params[name])
		b.WriteByte(0)
	}
	return b.String()
}

// ResultCacheStats are cumulative counters for the result cache.
type ResultCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// Bytes is the approximate resident size of the cached tables.
	Bytes int64 `json:"bytes"`
}

// resultCache is a byte-budgeted, concurrency-safe LRU of whole result
// tables for prepared executions. Sizes are approximate — rendered cells,
// typed rows, and struct overhead — which is enough to keep the resident
// set near the budget.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[resultKey]*list.Element
	lru     *list.List // front = most recent
	stats   ResultCacheStats
}

type resultEntry struct {
	key   resultKey
	table *Table
	size  int64
}

// newResultCache returns a result cache with the given byte budget; zero
// or negative disables caching.
func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget:  budget,
		entries: make(map[resultKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns a copy of the cached table marked ResultCached. The copy
// shares row storage with the cached original; callers must treat result
// tables as read-only (every renderer does).
func (c *resultCache) get(key resultKey) (*Table, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	cp := *el.Value.(*resultEntry).table
	cp.Stats.ResultCached = true
	return &cp, true
}

// put inserts a table, evicting least-recently-used entries until the
// budget holds. A table larger than the whole budget is not cached.
func (c *resultCache) put(key resultKey, t *Table) {
	if c == nil || c.budget <= 0 {
		return
	}
	size := tableBytes(t)
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*resultEntry)
		c.bytes += size - ent.size
		ent.table, ent.size = t, size
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&resultEntry{key: key, table: t, size: size})
		c.bytes += size
	}
	for c.bytes > c.budget && c.lru.Len() > 1 {
		last := c.lru.Back()
		ent := last.Value.(*resultEntry)
		c.lru.Remove(last)
		delete(c.entries, ent.key)
		c.bytes -= ent.size
		c.stats.Evictions++
	}
}

// Stats returns a point-in-time copy of the counters.
func (c *resultCache) Stats() ResultCacheStats {
	if c == nil {
		return ResultCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	st.Bytes = c.bytes
	return st
}

// tableBytes approximates the resident size of a result table.
func tableBytes(t *Table) int64 {
	const (
		tableOverhead = 256
		rowOverhead   = 48 // slice headers + Row struct
		cellOverhead  = 16 // string header
	)
	size := int64(tableOverhead)
	for _, row := range t.Rows {
		size += rowOverhead
		for _, cell := range row {
			size += cellOverhead + int64(len(cell))
		}
	}
	for _, row := range t.TypedRows {
		size += rowOverhead + int64(8*len(row.Focal)) + int64(8*len(row.Counts))
	}
	for _, h := range t.Header {
		size += cellOverhead + int64(len(h))
	}
	return size
}
