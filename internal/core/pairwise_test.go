package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// brutePairCounts computes the reference pairwise census from the
// definition: global matches, anchors contained in the combined
// neighborhood.
func brutePairCounts(t *testing.T, g *graph.Graph, spec PairSpec, pairs []Pair) map[Pair]int64 {
	t.Helper()
	matches := globalMatches(g, spec.Spec, Options{})
	anchorIdx := spec.anchorNodes()
	out := make(map[Pair]int64)
	for _, pr := range pairs {
		ra := g.KHopNodes(pr.A, spec.K)
		rb := g.KHopNodes(pr.B, spec.K)
		for _, m := range matches {
			inside := true
			for _, idx := range anchorIdx {
				_, inA := ra[m[idx]]
				_, inB := rb[m[idx]]
				if spec.Mode == Intersection {
					if !inA || !inB {
						inside = false
						break
					}
				} else if !inA && !inB {
					inside = false
					break
				}
			}
			if inside {
				out[MakePair(pr.A, pr.B)]++
			}
		}
	}
	return out
}

func allPairs(g *graph.Graph) []Pair {
	var pairs []Pair
	for a := 0; a < g.NumNodes(); a++ {
		for b := a + 1; b < g.NumNodes(); b++ {
			pairs = append(pairs, Pair{graph.NodeID(a), graph.NodeID(b)})
		}
	}
	return pairs
}

func checkPairAlgorithms(t *testing.T, g *graph.Graph, spec PairSpec) {
	t.Helper()
	pairs := spec.Pairs
	if pairs == nil {
		pairs = allPairs(g)
	}
	want := brutePairCounts(t, g, spec, pairs)
	for _, alg := range []Algorithm{NDBas, NDPvot, PTBas, PTOpt, PTRnd} {
		res, err := CountPairs(g, spec, alg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for _, pr := range pairs {
			key := MakePair(pr.A, pr.B)
			if res.Counts[key] != want[key] {
				t.Fatalf("%s (%v): pair %v = %d want %d (k=%d, pattern=%s)",
					alg, spec.Mode, key, res.Counts[key], want[key], spec.K, spec.Pattern.Name)
			}
		}
		// No spurious pairs either.
		for key, c := range res.Counts {
			if c != 0 && want[key] != c {
				t.Fatalf("%s (%v): spurious pair %v = %d want %d", alg, spec.Mode, key, c, want[key])
			}
		}
	}
}

func TestPairwiseIntersectionNode(t *testing.T) {
	g := gen.ErdosRenyi(16, 32, 71)
	spec := PairSpec{
		Spec: Spec{Pattern: pattern.SingleNode("n", ""), K: 1},
		Mode: Intersection,
	}
	spec.Pairs = allPairs(g)
	checkPairAlgorithms(t, g, spec)
}

func TestPairwiseIntersectionTriangle(t *testing.T) {
	g := gen.ErdosRenyi(14, 35, 73)
	spec := PairSpec{
		Spec: Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 2},
		Mode: Intersection,
	}
	spec.Pairs = allPairs(g)
	checkPairAlgorithms(t, g, spec)
}

func TestPairwiseUnionEdge(t *testing.T) {
	g := gen.ErdosRenyi(12, 26, 79)
	spec := PairSpec{
		Spec: Spec{Pattern: pattern.SingleEdge("e", nil), K: 1},
		Mode: Union,
	}
	spec.Pairs = allPairs(g)
	checkPairAlgorithms(t, g, spec)
}

func TestPairwiseJaccardComponents(t *testing.T) {
	// Jaccard coefficient = |N(a) ∩ N(b)| / |N(a) ∪ N(b)| can be computed
	// from two pairwise single-node censuses (Section I reduction).
	g := gen.ErdosRenyi(15, 30, 83)
	inter := PairSpec{Spec: Spec{Pattern: pattern.SingleNode("n", ""), K: 1}, Mode: Intersection}
	union := PairSpec{Spec: Spec{Pattern: pattern.SingleNode("n", ""), K: 1}, Mode: Union}
	ri, err := CountPairs(g, inter, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ru, err := CountPairs(g, union, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < g.NumNodes(); a++ {
		for b := a + 1; b < g.NumNodes(); b++ {
			na := g.KHopNodes(graph.NodeID(a), 1)
			nb := g.KHopNodes(graph.NodeID(b), 1)
			var wantI, wantU int64
			for n := range na {
				if _, ok := nb[n]; ok {
					wantI++
				}
			}
			wantU = int64(len(na)) + int64(len(nb)) - wantI
			key := MakePair(graph.NodeID(a), graph.NodeID(b))
			if ri.Counts[key] != wantI {
				t.Fatalf("pair %v intersection = %d want %d", key, ri.Counts[key], wantI)
			}
			if ru.Counts[key] != wantU {
				t.Fatalf("pair %v union = %d want %d", key, ru.Counts[key], wantU)
			}
		}
	}
}

func TestPairwisePairListRestriction(t *testing.T) {
	g := gen.ErdosRenyi(18, 40, 89)
	pairs := []Pair{{0, 5}, {2, 9}, {1, 17}}
	spec := PairSpec{
		Spec:  Spec{Pattern: pattern.SingleEdge("e", nil), K: 2},
		Mode:  Intersection,
		Pairs: pairs,
	}
	want := brutePairCounts(t, g, spec, pairs)
	for _, alg := range []Algorithm{NDBas, NDPvot, PTBas, PTOpt} {
		res, err := CountPairs(g, spec, alg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Counts) > len(pairs) {
			t.Fatalf("%s: returned %d pairs, expected at most %d", alg, len(res.Counts), len(pairs))
		}
		for _, pr := range pairs {
			key := MakePair(pr.A, pr.B)
			if res.Counts[key] != want[key] {
				t.Fatalf("%s: pair %v = %d want %d", alg, key, res.Counts[key], want[key])
			}
		}
	}
}

func TestPairwiseSubpattern(t *testing.T) {
	g := gen.ErdosRenyi(14, 30, 97)
	p := pattern.Clique("clq3", 3, nil)
	if err := p.AddSubpattern("corner", []int{0}); err != nil {
		t.Fatal(err)
	}
	spec := PairSpec{
		Spec: Spec{Pattern: p, Subpattern: "corner", K: 1},
		Mode: Intersection,
	}
	spec.Pairs = allPairs(g)
	want := brutePairCounts(t, g, spec, spec.Pairs)
	for _, alg := range []Algorithm{NDBas, NDPvot, PTBas, PTOpt} {
		res, err := CountPairs(g, spec, alg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for _, pr := range spec.Pairs {
			key := MakePair(pr.A, pr.B)
			if res.Counts[key] != want[key] {
				t.Fatalf("%s: pair %v = %d want %d", alg, key, res.Counts[key], want[key])
			}
		}
	}
}

func TestPairwiseAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(10+rng.Intn(8), 20+rng.Intn(15), seed)
		mode := Intersection
		if rng.Intn(2) == 1 {
			mode = Union
		}
		var p *pattern.Pattern
		if rng.Intn(2) == 0 {
			p = pattern.SingleNode("n", "")
		} else {
			p = pattern.SingleEdge("e", nil)
		}
		k := 1 + rng.Intn(2)
		spec := PairSpec{Spec: Spec{Pattern: p, K: k}, Mode: mode}
		spec.Pairs = allPairs(g)
		want := brutePairCounts(t, g, spec, spec.Pairs)
		for _, alg := range []Algorithm{NDBas, NDPvot, PTBas, PTOpt, PTRnd} {
			res, err := CountPairs(g, spec, alg, Options{Seed: seed})
			if err != nil {
				t.Log(err)
				return false
			}
			for _, pr := range spec.Pairs {
				key := MakePair(pr.A, pr.B)
				if res.Counts[key] != want[key] {
					t.Logf("seed %d %s %v pair %v: %d want %d", seed, alg, mode, key, res.Counts[key], want[key])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseErrors(t *testing.T) {
	g := gen.ErdosRenyi(10, 15, 101)
	spec := PairSpec{Spec: Spec{Pattern: pattern.SingleNode("n", ""), K: 1}, Mode: Intersection}
	if _, err := CountPairs(g, spec, NDBas, Options{}); err == nil {
		t.Fatal("ND-BAS without pair list should error")
	}
	if _, err := CountPairs(g, spec, NDPvot, Options{}); err == nil {
		t.Fatal("ND-PVOT without pair list should error")
	}
	if _, err := CountPairs(g, spec, NDDiff, Options{}); err == nil {
		t.Fatal("ND-DIFF pairwise should be unsupported")
	}
}

func TestPairModeString(t *testing.T) {
	if Intersection.String() != "SUBGRAPH-INTERSECTION" || Union.String() != "SUBGRAPH-UNION" {
		t.Fatal("mode strings wrong")
	}
}

func TestMakePairCanonical(t *testing.T) {
	if MakePair(5, 2) != (Pair{2, 5}) || MakePair(2, 5) != (Pair{2, 5}) {
		t.Fatal("MakePair not canonical")
	}
}
