package core

import (
	"strings"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

func TestOrderByCountDescLimit(t *testing.T) {
	g := gen.PreferentialAttachment(100, 3, 5)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes ORDER BY COUNT DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.TypedRows) != 5 || len(tab.Rows) != 5 {
		t.Fatalf("rows = %d want 5", len(tab.TypedRows))
	}
	for i := 1; i < len(tab.TypedRows); i++ {
		if tab.TypedRows[i].Count > tab.TypedRows[i-1].Count {
			t.Fatal("not descending")
		}
	}
	// Agrees with TopK.
	spec := Spec{Pattern: e.Patterns()["tri"], K: 2}
	top, err := TopK(g, spec, 5, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.TypedRows {
		if row.Focal[0] != top[i].Node || row.Count != top[i].Count {
			t.Fatalf("row %d: (%d,%d) vs TopK (%d,%d)",
				i, row.Focal[0], row.Count, top[i].Node, top[i].Count)
		}
	}
}

func TestOrderByCountAsc(t *testing.T) {
	g := gen.ErdosRenyi(30, 70, 7)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes ORDER BY COUNT ASC`)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].TypedRows
	for i := 1; i < len(rows); i++ {
		if rows[i].Count < rows[i-1].Count {
			t.Fatal("not ascending")
		}
		if rows[i].Count == rows[i-1].Count && rows[i].Focal[0] < rows[i-1].Focal[0] {
			t.Fatal("tie-break not by node ID")
		}
	}
}

func TestOrderByColumn(t *testing.T) {
	g := graph.New(false)
	names := []string{"carol", "alice", "bob"}
	for _, n := range names {
		id := g.AddNode()
		g.SetNodeAttr(id, "name", n)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT name, COUNTP(n1, SUBGRAPH(ID, 0)) FROM nodes ORDER BY name ASC`)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{tables[0].Rows[0][0], tables[0].Rows[1][0], tables[0].Rows[2][0]}
	if got[0] != "alice" || got[1] != "bob" || got[2] != "carol" {
		t.Fatalf("order = %v", got)
	}
}

func TestOrderByPairQuery(t *testing.T) {
	g := gen.ErdosRenyi(12, 28, 9)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 { ?A; }
SELECT n1.ID, n2.ID, COUNTP(n1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2
WHERE n1.ID > n2.ID
ORDER BY COUNT DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].TypedRows
	if len(rows) > 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Count > rows[i-1].Count {
			t.Fatal("pair rows not descending")
		}
	}
}

func TestOrderByParseErrors(t *testing.T) {
	g := gen.ErdosRenyi(5, 8, 1)
	e := NewEngine(g)
	cases := []string{
		`PATTERN n1 {?A;} SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes LIMIT 0`,
		`PATTERN n2 {?A;} SELECT ID, COUNTP(n2, SUBGRAPH(ID, 1)) FROM nodes ORDER BY zz.name`,
		`PATTERN n3 {?A;} SELECT ID, COUNTP(n3, SUBGRAPH(ID, 1)) FROM nodes ORDER COUNT`,
	}
	for _, src := range cases {
		if _, err := e.Execute(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestOrderByStringRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(5, 8, 1)
	e := NewEngine(g)
	tables, err := e.Execute(`
PATTERN n1 {?A;}
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 1)) FROM nodes ORDER BY COUNT DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].Query.String()
	for _, frag := range []string{"ORDER BY COUNT DESC", "LIMIT 2"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendered query missing %q: %s", frag, s)
		}
	}
}
