package core

import (
	"context"
	"fmt"
	"math/rand"

	"egocensus/internal/graph"
)

// This file implements the match-sampling approximation the paper lists
// as future work ("approximation techniques for even larger graphs"): the
// global match set is found once, each match is kept independently with
// probability p, and the pattern-driven counting phase runs only on the
// sample. Scaling the sampled counts by 1/p yields an unbiased estimator
// of every node's census count (each match contributes to a node's count
// independently of the others), and the expensive phase — neighborhood
// expansion around matches — shrinks by a factor of p.

// ApproxResult holds estimated census counts.
type ApproxResult struct {
	// Est[n] is the estimated census count of node n (0 for non-focal
	// nodes).
	Est []float64
	// NumMatches is the size of the full match set.
	NumMatches int
	// SampledMatches is the size of the random sample actually counted.
	SampledMatches int
	// SampleRate is the applied sampling probability.
	SampleRate float64
}

// CountApprox estimates a single-node census by match sampling with the
// pattern-driven counting machinery. sampleRate must be in (0, 1]; a rate
// of 1 reproduces the exact PT-OPT result.
func CountApprox(g *graph.Graph, spec Spec, sampleRate float64, opt Options) (*ApproxResult, error) {
	return CountApproxContext(context.Background(), g, spec, sampleRate, opt) //egolint:allow ctxflow sanctioned root: public non-Context convenience wrapper; cancellation-aware callers use the Context variant
}

// CountApproxContext is CountApprox under a context; cancellation and
// opt.Limits stop the sampled counting phase within a bounded interval.
func CountApproxContext(ctx context.Context, g *graph.Graph, spec Spec, sampleRate float64, opt Options) (*ApproxResult, error) {
	if err := spec.Validate(g); err != nil {
		return nil, err
	}
	if sampleRate <= 0 || sampleRate > 1 {
		return nil, fmt.Errorf("census: sample rate %v outside (0, 1]", sampleRate)
	}
	gd, cancel := newGuard(ctx, opt.Limits)
	defer cancel()
	matches, err := globalMatchesGuarded(g, spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res := &ApproxResult{
		Est:        make([]float64, g.NumNodes()),
		NumMatches: len(matches),
		SampleRate: sampleRate,
	}
	if len(matches) == 0 {
		return res, nil
	}
	sample := matches
	if sampleRate < 1 {
		rng := rand.New(rand.NewSource(opt.Seed + 17))
		sample = sample[:0:0]
		for _, m := range matches {
			if rng.Float64() < sampleRate {
				sample = append(sample, m)
			}
		}
	}
	res.SampledMatches = len(sample)
	counts, err := ptCensusOnMatches(g, spec, opt, sample, false, gd)
	if err != nil {
		return nil, err
	}
	if err := gd.failure(nil, nil); err != nil {
		return nil, err
	}
	inv := 1 / sampleRate
	for n, c := range counts {
		res.Est[n] = float64(c) * inv
	}
	return res, nil
}
