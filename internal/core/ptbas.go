package core

import (
	"egocensus/internal/graph"
)

// countPTBas is the pattern-driven baseline (Section IV-B): process every
// match independently; BFS the k-hop neighborhood of each anchor node,
// start from the anchor with the fewest k-hop neighbors, and keep the
// nodes reachable within k hops from every other anchor. Each surviving
// focal node's count is incremented by one per match.
func countPTBas(g *graph.Graph, spec Spec, opt Options) (*Result, error) {
	res := &Result{Counts: make([]int64, g.NumNodes())}
	matches := globalMatches(g, spec, opt)
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}
	anchorIdx := spec.anchorNodes()
	focal := spec.focalSet(g)

	for _, m := range matches {
		anchors := matchAnchors(spec, anchorIdx, m)
		// One BFS per anchor; may re-traverse shared edges — that is the
		// inefficiency simultaneous traversal removes.
		reaches := make([]map[graph.NodeID]int, len(anchors))
		minIdx := 0
		for i, a := range anchors {
			reaches[i] = g.KHopNodes(a, spec.K)
			if len(reaches[i]) < len(reaches[minIdx]) {
				minIdx = i
			}
		}
		for n := range reaches[minIdx] {
			inAll := true
			for i := range reaches {
				if i == minIdx {
					continue
				}
				if _, ok := reaches[i][n]; !ok {
					inAll = false
					break
				}
			}
			if !inAll {
				continue
			}
			if focal != nil && !focal[n] {
				continue
			}
			res.Counts[n]++
		}
	}
	return res, nil
}
