package core

import (
	"egocensus/internal/graph"
)

// countPTBas is the pattern-driven baseline (Section IV-B): process every
// match independently; BFS the k-hop neighborhood of each anchor node,
// start from the anchor with the fewest k-hop neighbors, and keep the
// nodes reachable within k hops from every other anchor. Matches are
// processed in parallel across Options.Workers with per-worker count
// vectors merged at the end (int64 sums are order-invariant, so parallel
// results equal sequential ones exactly).
//
//egolint:deterministic census drivers must be bit-identical across runs, algorithms, and worker counts
func countPTBas(g *graph.Graph, spec Spec, opt Options, gd *guard) (*Result, error) {
	res := &Result{Counts: make([]int64, g.NumNodes())}
	gd.chargeMem(int64(g.NumNodes()) * 8)
	matches, err := globalMatchesGuarded(g, spec, opt, gd)
	if err != nil {
		return nil, err
	}
	res.NumMatches = len(matches)
	if len(matches) == 0 {
		return res, nil
	}
	anchorIdx := spec.anchorNodes()
	focal := spec.focalSet(g)
	prepare(g)

	maxAnchors := len(anchorIdx)
	gd.setFocalTotal(len(matches))
	// Match cost for the work-stealing schedule: one BFS per anchor,
	// each seeded by the anchor image's degree.
	matchCost := func(mi int) int64 {
		c := int64(0)
		for _, idx := range anchorIdx {
			c += 1 + int64(g.Degree(matches[mi][idx]))
		}
		return c
	}
	parallelMergeCost(gd, opt.workers(), len(matches), matchCost, res.Counts, func(w int, counts []int64, mi int) {
		m := matches[mi]
		anchors := matchAnchors(spec, anchorIdx, m)
		// One BFS per anchor; may re-traverse shared edges — that is the
		// inefficiency simultaneous traversal removes. Each reach needs its
		// own scratch because all stay live for the intersection.
		scratches := make([]*graph.Scratch, 0, maxAnchors)
		reaches := make([]graph.Reach, 0, maxAnchors)
		minIdx := 0
		for i, a := range anchors {
			s := graph.AcquireScratch(g.NumNodes())
			scratches = append(scratches, s)
			reaches = append(reaches, g.KHop(a, spec.K, s))
			if reaches[i].Len() < reaches[minIdx].Len() {
				minIdx = i
			}
		}
		tk := ticker{gd: gd}
		for _, n := range reaches[minIdx].Nodes {
			if tk.tick() != nil {
				break
			}
			inAll := true
			for i := range reaches {
				if i == minIdx {
					continue
				}
				if !reaches[i].Contains(n) {
					inAll = false
					break
				}
			}
			if !inAll {
				continue
			}
			if focal != nil && !focal[n] {
				continue
			}
			counts[n]++
		}
		for _, s := range scratches {
			s.Release()
		}
	})
	return res, gd.failure(res, nil)
}
