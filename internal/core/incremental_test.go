package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// checkIncrementalAgainstRecompute grows a graph edge by edge and compares
// the maintained counts with a full recomputation after every insertion.
func checkIncrementalAgainstRecompute(t *testing.T, directed bool, spec Spec, seed int64, nodes, edges int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(directed)
	g.AddNodes(nodes)
	if spec.Pattern.Node(0).Label != "" || hasLabelConstraint(spec.Pattern) {
		gen.AssignLabels(g, 2, seed+1)
	}
	inc, err := NewIncremental(g, spec, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]graph.NodeID]bool{}
	for added := 0; added < edges; added++ {
		a := graph.NodeID(rng.Intn(nodes))
		b := graph.NodeID(rng.Intn(nodes))
		if a == b {
			continue
		}
		key := [2]graph.NodeID{a, b}
		if !directed && a > b {
			key = [2]graph.NodeID{b, a}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		inc.AddEdge(a, b)

		want, err := Count(inc.Graph(), spec, PTOpt, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for n := range want.Counts {
			if inc.Counts()[n] != want.Counts[n] {
				t.Fatalf("after %d edges (last %d-%d): node %d incremental %d recompute %d (pattern %s k=%d)",
					added+1, a, b, n, inc.Counts()[n], want.Counts[n], spec.Pattern.Name, spec.K)
			}
		}
		if inc.NumMatches() != want.NumMatches {
			t.Fatalf("match count drifted: %d vs %d", inc.NumMatches(), want.NumMatches)
		}
	}
}

func hasLabelConstraint(p *pattern.Pattern) bool {
	for i := 0; i < p.NumNodes(); i++ {
		if p.Node(i).Label != "" {
			return true
		}
	}
	return false
}

func TestIncrementalTriangle(t *testing.T) {
	for _, k := range []int{0, 1, 2} {
		spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: k}
		checkIncrementalAgainstRecompute(t, false, spec, int64(40+k), 12, 40)
	}
}

func TestIncrementalLabeled(t *testing.T) {
	spec := Spec{Pattern: pattern.Clique("clq3", 3, []string{"l0", "l0", "l1"}), K: 1}
	checkIncrementalAgainstRecompute(t, false, spec, 50, 12, 40)
}

func TestIncrementalNegatedEdge(t *testing.T) {
	// Open path with a forbidden chord: inserting the chord kills matches.
	p := pattern.New("open")
	a := p.MustAddNode("A", "")
	b := p.MustAddNode("B", "")
	c := p.MustAddNode("C", "")
	p.MustAddEdge(a, b, false, false)
	p.MustAddEdge(b, c, false, false)
	p.MustAddEdge(a, c, false, true)
	spec := Spec{Pattern: p, K: 1}
	checkIncrementalAgainstRecompute(t, false, spec, 60, 10, 35)
}

func TestIncrementalSubpattern(t *testing.T) {
	p := pattern.Clique("clq3", 3, nil)
	if err := p.AddSubpattern("corner", []int{0}); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Pattern: p, Subpattern: "corner", K: 1}
	checkIncrementalAgainstRecompute(t, false, spec, 70, 10, 35)
}

func TestIncrementalDirectedTriad(t *testing.T) {
	spec := Spec{Pattern: pattern.CoordinatorTriad("triad"), Subpattern: "coordinator", K: 0}
	checkIncrementalAgainstRecompute(t, true, spec, 80, 10, 40)
}

func TestIncrementalDirectedPath(t *testing.T) {
	p := pattern.New("dpath")
	a := p.MustAddNode("A", "")
	b := p.MustAddNode("B", "")
	c := p.MustAddNode("C", "")
	p.MustAddEdge(a, b, true, false)
	p.MustAddEdge(b, c, true, false)
	spec := Spec{Pattern: p, K: 1}
	checkIncrementalAgainstRecompute(t, true, spec, 90, 10, 40)
}

func TestIncrementalAddNode(t *testing.T) {
	g := gen.ErdosRenyi(8, 14, 3)
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1}
	inc, err := NewIncremental(g, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := inc.AddNode()
	if int(n) != 8 || len(inc.Counts()) != 9 || inc.Counts()[8] != 0 {
		t.Fatal("AddNode bookkeeping wrong")
	}
	// Wire the new node into a triangle.
	inc.AddEdge(n, 0)
	inc.AddEdge(n, 1)
	want, err := Count(inc.Graph(), spec, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Counts {
		if inc.Counts()[i] != want.Counts[i] {
			t.Fatalf("node %d: %d vs %d", i, inc.Counts()[i], want.Counts[i])
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	g := gen.ErdosRenyi(5, 8, 1)
	if _, err := NewIncremental(g, Spec{Pattern: pattern.SingleNode("n", ""), K: 1}, Options{}); err == nil {
		t.Fatal("edge-less pattern should be rejected")
	}
	spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1, Focal: []graph.NodeID{0}}
	if _, err := NewIncremental(g, spec, Options{}); err == nil {
		t.Fatal("focal restriction should be rejected")
	}
}

func TestIncrementalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(false)
		n := 8 + rng.Intn(6)
		g.AddNodes(n)
		spec := Spec{Pattern: pattern.Clique("clq3", 3, nil), K: 1 + rng.Intn(2)}
		inc, err := NewIncremental(g, spec, Options{Seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		for i := 0; i < 25; i++ {
			a := graph.NodeID(rng.Intn(n))
			b := graph.NodeID(rng.Intn(n))
			if a == b {
				continue
			}
			if g.HasEdge(a, b) {
				continue
			}
			inc.AddEdge(a, b)
		}
		want, err := Count(inc.Graph(), spec, NDPvot, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		for i := range want.Counts {
			if inc.Counts()[i] != want.Counts[i] {
				t.Logf("seed %d node %d: %d vs %d", seed, i, inc.Counts()[i], want.Counts[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
