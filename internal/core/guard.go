package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// guard carries one evaluation's cancellation and resource-limit state.
// The hot census loops consult it through epoch-counted tickers (one
// check per checkEvery units) and through a single atomic load per focal
// unit, so the overhead stays branch-cheap; once any worker observes a
// stop cause, the stopFlag fans the stop out to every other worker within
// one epoch. A nil *guard is valid and disables all checking — the
// context-free entry points pass nil and pay nothing.
type guard struct {
	ctx    context.Context
	done   <-chan struct{}
	limits Limits

	stopFlag atomic.Bool
	mu       sync.Mutex
	cause    error

	start      time.Time
	focalDone  atomic.Int64
	focalTotal atomic.Int64
	matches    atomic.Int64
	rows       atomic.Int64
	mem        atomic.Int64
}

// checkEvery is the epoch length of the hot-loop cancellation checks: one
// real check per ~4096 focal-node/match units keeps the loops branch-cheap
// while bounding the reaction latency to a few thousand cheap iterations.
const checkEvery = 4096

// newGuard builds the guard for one evaluation, applying the Deadline
// limit as a derived context. It returns a nil guard (no checking at all)
// when the context can never be canceled and no limits are set. The
// returned cancel must be called when evaluation finishes.
func newGuard(ctx context.Context, limits Limits) (*guard, context.CancelFunc) {
	if limits.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limits.Deadline)
		return &guard{ctx: ctx, done: ctx.Done(), limits: limits, start: time.Now()}, cancel
	}
	if ctx.Done() == nil && limits == (Limits{}) {
		return nil, func() {}
	}
	return &guard{ctx: ctx, done: ctx.Done(), limits: limits, start: time.Now()}, func() {}
}

// stop records the first stop cause and raises the flag every worker polls.
func (gd *guard) stop(cause error) {
	gd.mu.Lock()
	if gd.cause == nil {
		gd.cause = cause
	}
	gd.mu.Unlock()
	gd.stopFlag.Store(true)
}

// stopped reports whether evaluation must wind down (one atomic load).
func (gd *guard) stopped() bool {
	return gd != nil && gd.stopFlag.Load()
}

// err returns the recorded stop cause.
func (gd *guard) err() error {
	if gd == nil {
		return nil
	}
	gd.mu.Lock()
	defer gd.mu.Unlock()
	return gd.cause
}

// check is the full cancellation check: stop flag, then context. It is
// called once per focal unit by the worker pool and once per epoch by the
// hot-loop tickers.
func (gd *guard) check() error {
	if gd == nil {
		return nil
	}
	if gd.stopFlag.Load() {
		return gd.err()
	}
	select {
	case <-gd.done:
		gd.stop(gd.ctx.Err())
		return gd.err()
	default:
		return nil
	}
}

// setFocalTotal records the focal-unit denominator for progress reports.
func (gd *guard) setFocalTotal(n int) {
	if gd != nil {
		gd.focalTotal.Store(int64(n))
	}
}

// focalTick counts one completed focal unit.
func (gd *guard) focalTick() {
	if gd != nil {
		gd.focalDone.Add(1)
	}
}

// chargeMatches accounts n global matches against MaxMatches.
func (gd *guard) chargeMatches(n int) error {
	if gd == nil {
		return nil
	}
	total := gd.matches.Add(int64(n))
	if gd.limits.MaxMatches > 0 && total > int64(gd.limits.MaxMatches) {
		gd.stop(&limitStop{kind: "max-matches", value: int64(gd.limits.MaxMatches), actual: total})
	}
	return gd.check()
}

// chargeRows accounts n result rows against MaxResultRows.
func (gd *guard) chargeRows(n int) error {
	if gd == nil {
		return nil
	}
	total := gd.rows.Add(int64(n))
	if gd.limits.MaxResultRows > 0 && total > int64(gd.limits.MaxResultRows) {
		gd.stop(&limitStop{kind: "max-result-rows", value: int64(gd.limits.MaxResultRows), actual: total})
		return gd.err()
	}
	return nil
}

// chargeMem accounts bytes against MemoryBudget.
func (gd *guard) chargeMem(bytes int64) error {
	if gd == nil {
		return nil
	}
	total := gd.mem.Add(bytes)
	if gd.limits.MemoryBudget > 0 && total > gd.limits.MemoryBudget {
		gd.stop(&limitStop{kind: "memory-budget", value: gd.limits.MemoryBudget, actual: total})
		return gd.err()
	}
	return nil
}

// progress snapshots the counters.
func (gd *guard) progress() Progress {
	if gd == nil {
		return Progress{}
	}
	return Progress{
		FocalDone:   gd.focalDone.Load(),
		FocalTotal:  gd.focalTotal.Load(),
		Matches:     gd.matches.Load(),
		Rows:        gd.rows.Load(),
		MemoryBytes: gd.mem.Load(),
		Elapsed:     time.Since(gd.start),
	}
}

// failure converts the recorded stop cause into the typed public error,
// attaching partial results. It returns nil when evaluation was not
// stopped, so drivers end with `return res, gd.failure(res, nil)`-style
// epilogues only where an explicit nil check reads worse.
func (gd *guard) failure(partial *Result, pairs *PairResult) error {
	cause := gd.err()
	if cause == nil {
		return nil
	}
	prog := gd.progress()
	var ls *limitStop
	if errors.As(cause, &ls) {
		return &LimitError{
			Limit:        ls.kind,
			Value:        ls.value,
			Actual:       ls.actual,
			Progress:     prog,
			Partial:      partial,
			PartialPairs: pairs,
		}
	}
	return &CanceledError{
		Cause:        cause,
		Progress:     prog,
		Partial:      partial,
		PartialPairs: pairs,
	}
}

// stopFunc returns the callback injected into stoppable matchers: a full
// check (the matcher itself epoch-counts its calls).
func (gd *guard) stopFunc() func() bool {
	if gd == nil {
		return nil
	}
	return func() bool { return gd.check() != nil }
}

// ticker is the per-worker epoch counter for hot loops: tick returns a
// non-nil error at most once per checkEvery calls, when the full check
// fails. Each worker owns its ticker, so ticking is a local increment.
type ticker struct {
	gd *guard
	n  uint32
}

// tick counts one hot-loop unit and runs the full check once per epoch.
func (t *ticker) tick() error {
	if t.gd == nil {
		return nil
	}
	t.n++
	if t.n%checkEvery != 0 {
		return nil
	}
	return t.gd.check()
}
