package core

import (
	"fmt"
	"time"
)

// This file defines the failure taxonomy of census evaluation: resource
// limits (Limits), the partial-progress snapshot every failure carries
// (Progress), and the three typed errors callers branch on — CanceledError
// (context cancellation or deadline), LimitError (a configured resource
// limit was exceeded), and InternalError (a panic inside the engine
// converted at the execution boundary). Cancellation and limit failures
// carry whatever partial census results had accumulated, so callers can
// degrade gracefully instead of losing everything.

// Limits bounds the resources one census evaluation may consume. The zero
// value imposes no limits.
type Limits struct {
	// MaxMatches caps |M|, the global match-set size the pattern-driven
	// and index-based algorithms materialize. 0 means unlimited.
	MaxMatches int
	// MaxResultRows caps the number of result rows (focal nodes for
	// single-node censuses, non-zero pairs for pairwise ones). 0 means
	// unlimited.
	MaxResultRows int
	// Deadline bounds wall-clock evaluation time; expiry surfaces as a
	// *CanceledError wrapping context.DeadlineExceeded. 0 means no
	// deadline.
	Deadline time.Duration
	// MemoryBudget caps the approximate bytes of the dominant evaluation
	// allocations (match set, per-worker count vectors, traversal distance
	// vectors). Accounting is coarse — it tracks the structures that grow
	// with |M| and |V|, not every allocation. 0 means unlimited.
	MemoryBudget int64
}

// Progress is the partial-progress snapshot attached to cancellation and
// limit failures.
type Progress struct {
	// FocalDone counts focal units fully processed before the stop: focal
	// nodes for node-driven algorithms, matches or clusters for
	// pattern-driven ones.
	FocalDone int64
	// FocalTotal is the total number of those units (0 when the stop
	// happened before the counting phase began).
	FocalTotal int64
	// Matches is the number of global matches found before the stop.
	Matches int64
	// Rows is the number of result rows produced before the stop.
	Rows int64
	// MemoryBytes is the approximate bytes charged against the memory
	// budget.
	MemoryBytes int64
	// Elapsed is the wall-clock time from evaluation start to the stop.
	Elapsed time.Duration
}

// String renders the snapshot for diagnostics.
func (p Progress) String() string {
	return fmt.Sprintf("%d/%d focal units, %d matches, %d rows, %v elapsed",
		p.FocalDone, p.FocalTotal, p.Matches, p.Rows, p.Elapsed.Round(time.Millisecond))
}

// CanceledError reports that evaluation stopped because its context was
// canceled or its deadline expired. Partial results accumulated before the
// stop are attached; counts for focal units not yet processed are zero.
type CanceledError struct {
	// Cause is context.Canceled or context.DeadlineExceeded.
	Cause error
	// Progress snapshots how far evaluation got.
	Progress Progress
	// Partial holds the partial single-node census (nil for pairwise
	// evaluation or when the stop preceded the counting phase).
	Partial *Result
	// PartialPairs holds the partial pairwise census (nil for single-node
	// evaluation).
	PartialPairs *PairResult
	// PartialTable holds the partially rendered result table when the
	// failure crossed the engine's render stage (nil below the engine).
	PartialTable *Table
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("census: evaluation canceled (%v) after %s", e.Cause, e.Progress)
}

// Unwrap exposes the context cause, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work.
func (e *CanceledError) Unwrap() error { return e.Cause }

// LimitError reports that evaluation stopped because a configured resource
// limit was exceeded. Partial results accumulated before the stop are
// attached.
type LimitError struct {
	// Limit names the exceeded limit: "max-matches", "max-result-rows" or
	// "memory-budget".
	Limit string
	// Value is the configured bound.
	Value int64
	// Actual is the observed value that exceeded it.
	Actual int64
	// Progress snapshots how far evaluation got.
	Progress Progress
	// Partial holds the partial single-node census (nil for pairwise
	// evaluation or when the stop preceded the counting phase).
	Partial *Result
	// PartialPairs holds the partial pairwise census (nil for single-node
	// evaluation).
	PartialPairs *PairResult
	// PartialTable holds the partially rendered result table when the
	// failure crossed the engine's render stage (nil below the engine).
	PartialTable *Table
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("census: %s limit exceeded (%d > %d) after %s", e.Limit, e.Actual, e.Value, e.Progress)
}

// InternalError reports a panic inside the engine's execution pipeline,
// converted to an error at the execution boundary with the query and plan
// attached. Unrecoverable runtime corruption (concurrent map writes, stack
// exhaustion) aborts the process before any recover() runs, so converting
// every recoverable panic never masks it.
type InternalError struct {
	// Query is the text of the query that was executing.
	Query string
	// Plan is the rendered optimized plan, when planning had completed.
	Plan string
	// Panic is the recovered panic value.
	Panic any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *InternalError) Error() string {
	return fmt.Sprintf("census: internal error: %v (query: %s)", e.Panic, e.Query)
}

// limitStop is the guard-internal stop cause for an exceeded limit; the
// driver boundary converts it into a *LimitError with progress attached.
type limitStop struct {
	kind   string
	value  int64
	actual int64
}

func (l *limitStop) Error() string {
	return fmt.Sprintf("%s limit exceeded (%d > %d)", l.kind, l.actual, l.value)
}
