package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := New(200)
	if s.Count() != 0 {
		t.Fatalf("new set not empty: %d", s.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 127, 199} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	s.Add(63) // idempotent
	if s.Count() != 6 {
		t.Fatalf("Count after duplicate Add = %d, want 6", s.Count())
	}
	s.Remove(63)
	if s.Contains(63) || s.Count() != 5 {
		t.Fatalf("Remove(63) failed: contains=%v count=%d", s.Contains(63), s.Count())
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatalf("Clear left %d bits", s.Count())
	}
}

func TestGrowPreservesBits(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(9)
	s.Grow(500)
	if !s.Contains(3) || !s.Contains(9) {
		t.Fatal("Grow dropped bits")
	}
	s.Add(499)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
}

func TestWords(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := Words(n); got != want {
			t.Errorf("Words(%d) = %d, want %d", n, got, want)
		}
	}
}

// refSets builds two random bitmaps plus reference map-sets for an oracle.
func refSets(t *testing.T, rng *rand.Rand, n, aw, bw int) (a, b []uint64, am, bm map[int]bool) {
	t.Helper()
	a, b = make([]uint64, aw), make([]uint64, bw)
	am, bm = map[int]bool{}, map[int]bool{}
	for i := 0; i < n; i++ {
		v := rng.Intn(aw * 64)
		SetBit(a, v)
		am[v] = true
		v = rng.Intn(bw * 64)
		SetBit(b, v)
		bm[v] = true
	}
	return
}

func TestCountKernelsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		aw := 1 + rng.Intn(8)
		bw := 1 + rng.Intn(8)
		a, b, am, bm := refSets(t, rng, rng.Intn(200), aw, bw)

		wantAnd, wantOr, wantAndNot := 0, len(bm), 0
		for v := range am {
			if bm[v] {
				wantAnd++
			} else {
				wantAndNot++
				wantOr++
			}
		}
		if got := AndCount(a, b); got != wantAnd {
			t.Fatalf("trial %d: AndCount = %d, want %d", trial, got, wantAnd)
		}
		if got := AndCount(b, a); got != wantAnd {
			t.Fatalf("trial %d: AndCount swapped = %d, want %d", trial, got, wantAnd)
		}
		if got := OrCount(a, b); got != wantOr {
			t.Fatalf("trial %d: OrCount = %d, want %d", trial, got, wantOr)
		}
		if got := AndNotCount(a, b); got != wantAndNot {
			t.Fatalf("trial %d: AndNotCount = %d, want %d", trial, got, wantAndNot)
		}
		dst := make([]uint64, aw)
		if got := AndInto(dst, a, b); got != wantAnd {
			t.Fatalf("trial %d: AndInto count = %d, want %d", trial, got, wantAnd)
		}
		if got := CountWords(dst); got != wantAnd {
			t.Fatalf("trial %d: AndInto dst popcount = %d, want %d", trial, got, wantAnd)
		}
	}
}

func TestAppendAndAscendingAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		a, b, am, bm := refSets(t, rng, rng.Intn(300), 1+rng.Intn(6), 1+rng.Intn(6))
		var want []int32
		for v := range am {
			if bm[v] {
				want = append(want, int32(v))
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := AppendAnd[int32](nil, a, b)
		if len(got) != len(want) {
			t.Fatalf("trial %d: AppendAnd len = %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: AppendAnd[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
	// Appending to a non-empty prefix keeps it.
	a := make([]uint64, 1)
	b := make([]uint64, 1)
	SetBit(a, 5)
	SetBit(b, 5)
	out := AppendAnd([]int32{-1}, a, b)
	if len(out) != 2 || out[0] != -1 || out[1] != 5 {
		t.Fatalf("AppendAnd prefix handling: %v", out)
	}
}

func TestForEachOrderAndCoverage(t *testing.T) {
	w := make([]uint64, 3)
	want := []int{0, 1, 63, 64, 100, 191}
	for _, v := range want {
		SetBit(w, v)
	}
	var got []int
	ForEach(w, func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestIntersectSortedCount(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mk := func(n, max int) []int32 {
		seen := map[int32]bool{}
		for len(seen) < n {
			seen[int32(rng.Intn(max))] = true
		}
		out := make([]int32, 0, n)
		for v := range seen {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	oracle := func(a, b []int32) int {
		m := map[int32]bool{}
		for _, v := range a {
			m[v] = true
		}
		c := 0
		for _, v := range b {
			if m[v] {
				c++
			}
		}
		return c
	}
	// Balanced, skewed (forcing the gallop path), and edge cases.
	shapes := [][2]int{{0, 10}, {10, 0}, {5, 5}, {50, 60}, {3, 500}, {500, 3}, {1, 1000}, {40, 2000}}
	for trial, sh := range shapes {
		for rep := 0; rep < 10; rep++ {
			a := mk(sh[0], 4000)
			b := mk(sh[1], 4000)
			want := oracle(a, b)
			if got := IntersectSortedCount(a, b); got != want {
				t.Fatalf("shape %d rep %d: IntersectSortedCount = %d, want %d (|a|=%d |b|=%d)",
					trial, rep, got, want, len(a), len(b))
			}
		}
	}
	// Identical lists through the gallop path.
	long := mk(100, 200)
	short := append([]int32(nil), long[:4]...)
	if got := IntersectSortedCount(short, long); got != 4 {
		t.Fatalf("subset gallop: got %d, want 4", got)
	}
}

func TestGallopCountFrontier(t *testing.T) {
	// Values past the end of long must not loop or miscount.
	long := []int32{1, 2, 3}
	short := []int32{0, 2, 5, 9}
	if got := gallopCount(short, long); got != 1 {
		t.Fatalf("gallopCount = %d, want 1", got)
	}
}

func BenchmarkAndCount(b *testing.B) {
	n := 4096
	x := make([]uint64, Words(n))
	y := make([]uint64, Words(n))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n/3; i++ {
		SetBit(x, rng.Intn(n))
		SetBit(y, rng.Intn(n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCount(x, y)
	}
}

func BenchmarkIntersectSortedSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	short := make([]int32, 8)
	long := make([]int32, 4096)
	for i := range long {
		long[i] = int32(i * 3)
	}
	for i := range short {
		short[i] = long[rng.Intn(len(long))]
	}
	sort.Slice(short, func(i, j int) bool { return short[i] < short[j] })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectSortedCount(short, long)
	}
}
