// Package bitset implements the dense-set kernels the census hot paths
// run on: word-aligned bitmaps with popcount-based intersection, union,
// and difference counting, set-bit iteration, and adaptive sorted-list
// intersection with galloping search for skewed operand sizes.
//
// The kernels are deliberately branch-light and allocation-free: every
// operation works in place on caller-owned []uint64 words so pooled
// scratch (epoch-stamped planes, per-worker arenas) can reuse backing
// storage across millions of calls. Nodes are plain non-negative ints;
// the graph and match layers convert their 32-bit node IDs at the call
// boundary, which the compiler erases.
package bitset

import "math/bits"

// wordShift/wordMask factor the /64 and %64 of bit addressing.
const (
	wordShift = 6
	wordMask  = 63
)

// Words returns the number of 64-bit words needed to hold n bits.
func Words(n int) int { return (n + wordMask) >> wordShift }

// Set is a fixed-capacity dense bitmap. The zero value is an empty set of
// capacity 0; Grow before use. Set is a thin wrapper — the free functions
// below operate on raw word slices so planes carved from a shared arena
// need no header per plane.
type Set struct {
	W []uint64
}

// New returns a Set with capacity for n bits, all clear.
func New(n int) *Set { return &Set{W: make([]uint64, Words(n))} }

// Grow ensures capacity for n bits, preserving existing bits. Growth
// reallocates; callers that share the backing array must re-slice.
func (s *Set) Grow(n int) {
	if w := Words(n); w > len(s.W) {
		nw := make([]uint64, w)
		copy(nw, s.W)
		s.W = nw
	}
}

// Clear zeroes every word.
func (s *Set) Clear() { ClearWords(s.W) }

// Add sets bit i.
func (s *Set) Add(i int) { s.W[i>>wordShift] |= 1 << uint(i&wordMask) }

// Remove clears bit i.
func (s *Set) Remove(i int) { s.W[i>>wordShift] &^= 1 << uint(i&wordMask) }

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	return s.W[i>>wordShift]&(1<<uint(i&wordMask)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int { return CountWords(s.W) }

// ClearWords zeroes a word slice (the compiler lowers this loop to
// memclr).
func ClearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// ClearBit clears bit i in w.
func ClearBit(w []uint64, i int) { w[i>>wordShift] &^= 1 << uint(i&wordMask) }

// SetBit sets bit i in w.
func SetBit(w []uint64, i int) { w[i>>wordShift] |= 1 << uint(i&wordMask) }

// TestBit reports whether bit i is set in w.
func TestBit(w []uint64, i int) bool {
	return w[i>>wordShift]&(1<<uint(i&wordMask)) != 0
}

// CountWords returns the total popcount of w.
func CountWords(w []uint64) int {
	c := 0
	for _, x := range w {
		c += bits.OnesCount64(x)
	}
	return c
}

// AndCount returns |a ∩ b| without materializing the intersection — one
// load-and-popcount pass over min(len(a), len(b)) words.
func AndCount(a, b []uint64) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, x := range a {
		c += bits.OnesCount64(x & b[i])
	}
	return c
}

// AndNotCount returns |a \ b|.
func AndNotCount(a, b []uint64) int {
	c := 0
	for i, x := range a {
		var y uint64
		if i < len(b) {
			y = b[i]
		}
		c += bits.OnesCount64(x &^ y)
	}
	return c
}

// OrCount returns |a ∪ b|.
func OrCount(a, b []uint64) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, x := range a {
		c += bits.OnesCount64(x | b[i])
	}
	for _, y := range b[len(a):] {
		c += bits.OnesCount64(y)
	}
	return c
}

// AndInto stores a ∩ b into dst (len(dst) must cover both operands'
// common prefix; extra dst words are zeroed) and returns the popcount.
func AndInto(dst, a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for i := 0; i < n; i++ {
		w := a[i] & b[i]
		dst[i] = w
		c += bits.OnesCount64(w)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return c
}

// AppendAnd appends the elements of a ∩ b to out in ascending order and
// returns the extended slice. This is the hot kernel behind candidate-
// neighbor set construction for hub nodes: one word-AND plus a
// trailing-zero scan per 64 node IDs, instead of one membership probe per
// adjacency entry. Generic over int32-kinded element types so callers
// append their own node ID types without a conversion pass.
func AppendAnd[T ~int32](out []T, a, b []uint64) []T {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		w := a[i] & b[i]
		base := T(i << wordShift)
		for w != 0 {
			out = append(out, base+T(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every set bit of w in ascending order.
func ForEach(w []uint64, fn func(i int)) {
	for i, x := range w {
		base := i << wordShift
		for x != 0 {
			fn(base + bits.TrailingZeros64(x))
			x &= x - 1
		}
	}
}

// gallopRatio is the size skew at which IntersectSortedCount switches
// from a linear merge to galloping search: when one sorted list is more
// than gallopRatio times longer than the other, binary-search probing of
// the long side beats walking it.
const gallopRatio = 16

// IntersectSortedCount returns |a ∩ b| for two ascending-sorted int32
// lists (duplicates count once per matching pair position — callers pass
// duplicate-free lists). It adapts to skew: comparable sizes use a linear
// merge; heavily skewed sizes gallop through the longer list.
func IntersectSortedCount(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) > gallopRatio*len(a) {
		return gallopCount(a, b)
	}
	c, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// gallopCount counts members of the short list present in the long one by
// doubling probes followed by binary search, advancing a frontier so each
// lookup scans only the remaining suffix.
func gallopCount(short, long []int32) int {
	c, lo := 0, 0
	for _, v := range short {
		// Gallop: find the first index >= lo with long[idx] >= v.
		step := 1
		hi := lo
		for hi < len(long) && long[hi] < v {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(long) {
			hi = len(long)
		}
		// Binary search in (lo-1, hi].
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if long[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(long) && long[lo] == v {
			c++
			lo++
		}
		if lo >= len(long) {
			break
		}
	}
	return c
}
